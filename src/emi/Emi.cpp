//===- Emi.cpp - Equivalence-modulo-inputs machinery -------------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "emi/Emi.h"
#include "minicl/ASTQueries.h"
#include "minicl/Parser.h"
#include "minicl/Printer.h"
#include "minicl/Sema.h"
#include "minicl/TypeRules.h"
#include "support/Rng.h"

#include <cstring>

using namespace clfuzz;

//===----------------------------------------------------------------------===//
// Pruning (§5)
//===----------------------------------------------------------------------===//

namespace {

/// Applies the three pruning strategies within one EMI block.
class Pruner {
public:
  Pruner(ASTContext &Ctx, const PruneOptions &Opts, Rng &R)
      : Ctx(Ctx), Opts(Opts), AdjLift(Opts.adjustedLift()), R(R) {}

  unsigned Prunings = 0;

  /// Prunes the children of a compound statement in place.
  void pruneCompound(CompoundStmt *C);

private:
  bool isBranch(const Stmt *S) const {
    return isa<IfStmt, ForStmt, WhileStmt, DoStmt>(S);
  }
  bool isPrunableLeaf(const Stmt *S) const {
    // DeclStmts are kept: deleting one could orphan later uses.
    return isa<ExprStmt, NullStmt, BreakStmt, ContinueStmt,
               BarrierStmt>(S);
  }

  /// Produces the lift expansion of a branch node (§5): if -> S;T,
  /// loops -> init;body' with the outermost break/continue removed.
  std::vector<Stmt *> liftChildren(Stmt *S);
  /// Removes break/continue statements binding to this loop level.
  Stmt *stripOuterJumps(Stmt *S);

  ASTContext &Ctx;
  PruneOptions Opts;
  double AdjLift;
  Rng &R;
};

} // namespace

Stmt *Pruner::stripOuterJumps(Stmt *S) {
  switch (S->getKind()) {
  case Stmt::StmtKind::Break:
  case Stmt::StmtKind::Continue:
    return Ctx.makeStmt<NullStmt>();
  case Stmt::StmtKind::Compound: {
    auto *C = cast<CompoundStmt>(S);
    for (Stmt *&Child : C->body())
      Child = stripOuterJumps(Child);
    return C;
  }
  case Stmt::StmtKind::If: {
    auto *If = cast<IfStmt>(S);
    If->setThen(stripOuterJumps(If->getThen()));
    if (If->getElse())
      If->setElse(stripOuterJumps(If->getElse()));
    return If;
  }
  // Nested loops capture their own break/continue.
  default:
    return S;
  }
}

std::vector<Stmt *> Pruner::liftChildren(Stmt *S) {
  std::vector<Stmt *> Out;
  switch (S->getKind()) {
  case Stmt::StmtKind::If: {
    auto *If = cast<IfStmt>(S);
    Out.push_back(If->getThen());
    if (If->getElse())
      Out.push_back(If->getElse());
    break;
  }
  case Stmt::StmtKind::For: {
    auto *For = cast<ForStmt>(S);
    if (For->getInit())
      Out.push_back(For->getInit());
    Out.push_back(stripOuterJumps(For->getBody()));
    break;
  }
  case Stmt::StmtKind::While:
    Out.push_back(stripOuterJumps(cast<WhileStmt>(S)->getBody()));
    break;
  case Stmt::StmtKind::Do:
    Out.push_back(stripOuterJumps(cast<DoStmt>(S)->getBody()));
    break;
  default:
    assert(false && "lift applied to a non-branch node");
    break;
  }
  return Out;
}

void Pruner::pruneCompound(CompoundStmt *C) {
  std::vector<Stmt *> NewBody;
  for (Stmt *S : C->body()) {
    if (isPrunableLeaf(S)) {
      if (R.chance(Opts.PLeaf)) {
        ++Prunings;
        continue; // deleted
      }
      NewBody.push_back(S);
      continue;
    }
    if (isBranch(S)) {
      // compound is applied before lift (§5).
      if (R.chance(Opts.PCompound)) {
        ++Prunings;
        continue; // whole subtree deleted
      }
      if (R.chance(AdjLift)) {
        ++Prunings;
        for (Stmt *Child : liftChildren(S)) {
          // Recurse into the promoted children.
          if (auto *CC = dyn_cast<CompoundStmt>(Child))
            pruneCompound(CC);
          NewBody.push_back(Child);
        }
        continue;
      }
      // Keep the branch; prune inside it.
      if (auto *If = dyn_cast<IfStmt>(S)) {
        if (auto *T = dyn_cast<CompoundStmt>(If->getThen()))
          pruneCompound(T);
        if (If->getElse())
          if (auto *E = dyn_cast<CompoundStmt>(If->getElse()))
            pruneCompound(E);
      } else if (auto *For = dyn_cast<ForStmt>(S)) {
        if (auto *B = dyn_cast<CompoundStmt>(For->getBody()))
          pruneCompound(B);
      } else if (auto *W = dyn_cast<WhileStmt>(S)) {
        if (auto *B = dyn_cast<CompoundStmt>(W->getBody()))
          pruneCompound(B);
      } else if (auto *D = dyn_cast<DoStmt>(S)) {
        if (auto *B = dyn_cast<CompoundStmt>(D->getBody()))
          pruneCompound(B);
      }
      NewBody.push_back(S);
      continue;
    }
    // Declarations and nested compounds.
    if (auto *CC = dyn_cast<CompoundStmt>(S))
      pruneCompound(CC);
    NewBody.push_back(S);
  }
  C->body() = std::move(NewBody);
}

unsigned clfuzz::pruneEmiBlocks(ASTContext &Ctx,
                                const PruneOptions &Opts) {
  assert(Opts.valid() && "p_compound + p_lift must not exceed 1");
  Rng R(Opts.Seed ^ 0xe111e111e111e111ULL);
  Pruner P(Ctx, Opts, R);
  for (FunctionDecl *F : Ctx.program().functions()) {
    if (!F->getBody())
      continue;
    forEachStmt(F->getBody(), [&P](const Stmt *S) {
      const auto *If = dyn_cast<IfStmt>(S);
      if (!If || !If->isEmiBlock())
        return;
      if (auto *Body =
              dyn_cast<CompoundStmt>(const_cast<IfStmt *>(If)->getThen()))
        P.pruneCompound(Body);
    });
  }
  return P.Prunings;
}

TestCase clfuzz::makeEmiVariant(const GenOptions &BaseOpts,
                                const PruneOptions &Prune) {
  GeneratedKernel K = generateKernel(BaseOpts);
  pruneEmiBlocks(*K.Ctx, Prune);
  TestCase T;
  T.Name = std::string(genModeName(K.Mode)) + " seed " +
           std::to_string(K.Seed) + " emi-variant " +
           std::to_string(Prune.Seed);
  T.Source = printProgram(K.Ctx->program(), K.Ctx->types());
  T.Range = K.Range;
  T.Buffers = K.Buffers;
  return T;
}

std::vector<PruneOptions> clfuzz::paperPruneSweep(uint64_t SeedBase) {
  static const double Probs[] = {0.0, 0.3, 0.6, 1.0};
  std::vector<PruneOptions> Sweep;
  for (double PL : Probs)
    for (double PC : Probs)
      for (double PLift : Probs) {
        if (PC + PLift > 1.0 + 1e-9)
          continue;
        PruneOptions P;
        P.PLeaf = PL;
        P.PCompound = PC;
        P.PLift = PLift;
        P.Seed = SeedBase + Sweep.size();
        Sweep.push_back(P);
      }
  return Sweep;
}

//===----------------------------------------------------------------------===//
// Injection into existing kernels (§5, Table 3)
//===----------------------------------------------------------------------===//

namespace {

/// A small statement generator for injected EMI block bodies. With
/// substitutions on, it reads and writes scalar variables of the host
/// kernel (the paper's #define-renaming has the same effect: block
/// code operates on host data); with substitutions off it declares its
/// own locals and touches nothing else.
class EmiBodyGen {
public:
  EmiBodyGen(ASTContext &Ctx, Rng &R, std::vector<VarDecl *> HostVars,
             bool Substitutions)
      : Ctx(Ctx), Types(Ctx.types()), R(R),
        HostVars(std::move(HostVars)), Subst(Substitutions) {}

  std::vector<Stmt *> genBody(unsigned NumStmts, unsigned Depth);

private:
  Expr *genExpr(const ScalarType *T, unsigned Depth);
  Stmt *genStmt(unsigned Depth);
  VarDecl *pickTarget();

  ASTContext &Ctx;
  TypeContext &Types;
  Rng &R;
  std::vector<VarDecl *> HostVars;
  std::vector<VarDecl *> OwnVars;
  bool Subst;
  unsigned Counter = 0;
};

} // namespace

Expr *EmiBodyGen::genExpr(const ScalarType *T, unsigned Depth) {
  if (Depth == 0 || R.chance(0.3)) {
    // Leaf: literal or a readable variable.
    std::vector<VarDecl *> Pool = OwnVars;
    if (Subst)
      Pool.insert(Pool.end(), HostVars.begin(), HostVars.end());
    if (!Pool.empty() && R.chance(0.5)) {
      VarDecl *V = Pool[R.below(Pool.size())];
      Expr *E = Ctx.ref(V);
      if (E->getType() != T)
        E = Ctx.makeExpr<CastExpr>(E, T);
      return E;
    }
    return Ctx.intLit(maskToWidth(R.below(1024), T->bitWidth()), T);
  }
  Expr *A = genExpr(T, Depth - 1);
  Expr *B = genExpr(T, Depth - 1);
  if (T->isSigned() || R.chance(0.4)) {
    static const Builtin Safe[] = {Builtin::SafeAdd, Builtin::SafeSub,
                                   Builtin::SafeMul, Builtin::SafeDiv};
    TypedResult Res = buildBuiltinCall(Ctx, Safe[R.below(4)], {A, B});
    return Res.E;
  }
  static const BinOp Ops[] = {BinOp::Add, BinOp::BitXor, BinOp::BitAnd,
                              BinOp::BitOr};
  TypedResult Res = buildBinary(Ctx, Ops[R.below(4)], A, B);
  Expr *E = Res.E;
  if (E->getType() != T)
    E = Ctx.makeExpr<CastExpr>(E, T);
  return E;
}

VarDecl *EmiBodyGen::pickTarget() {
  std::vector<VarDecl *> Pool = OwnVars;
  if (Subst)
    Pool.insert(Pool.end(), HostVars.begin(), HostVars.end());
  if (Pool.empty())
    return nullptr;
  return Pool[R.below(Pool.size())];
}

Stmt *EmiBodyGen::genStmt(unsigned Depth) {
  switch (R.below(Depth > 0 ? 4 : 3)) {
  case 0: {
    const ScalarType *T =
        R.chance(0.5) ? Types.intTy() : Types.uintTy();
    VarDecl *D = Ctx.makeVar("emi_" + std::to_string(Counter++), T,
                             AddressSpace::Private);
    D->setInit(genExpr(T, 2));
    OwnVars.push_back(D);
    return Ctx.makeStmt<DeclStmt>(D);
  }
  case 1: {
    VarDecl *Target = pickTarget();
    if (!Target || !isa<ScalarType>(Target->getType()))
      return Ctx.makeStmt<NullStmt>();
    const auto *T = cast<ScalarType>(Target->getType());
    TypedResult Res = buildAssign(Ctx, AssignOp::Assign,
                                  Ctx.ref(Target), genExpr(T, 2));
    return Res.E ? static_cast<Stmt *>(Ctx.makeStmt<ExprStmt>(Res.E))
                 : static_cast<Stmt *>(Ctx.makeStmt<NullStmt>());
  }
  case 2: {
    VarDecl *I = Ctx.makeVar("emi_i" + std::to_string(Counter++),
                             Types.intTy(), AddressSpace::Private);
    I->setInit(Ctx.intLit(0));
    TypedResult Cond = buildBinary(
        Ctx, BinOp::Lt, Ctx.ref(I),
        Ctx.intLit(static_cast<int>(R.range(1, 6))));
    TypedResult Step =
        buildAssign(Ctx, AssignOp::Add, Ctx.ref(I), Ctx.intLit(1));
    // Declarations inside the loop body go out of scope with it.
    size_t OuterVars = OwnVars.size();
    std::vector<Stmt *> Body;
    Body.push_back(genStmt(0));
    if (R.chance(0.3))
      Body.push_back(Ctx.makeStmt<BreakStmt>());
    OwnVars.resize(OuterVars);
    return Ctx.makeStmt<ForStmt>(
        Ctx.makeStmt<DeclStmt>(I), Cond.E, Step.E,
        Ctx.makeStmt<CompoundStmt>(std::move(Body)));
  }
  default: {
    TypedResult Cond = buildBinary(
        Ctx, BinOp::Ne, genExpr(Types.intTy(), 1),
        genExpr(Types.intTy(), 1));
    size_t OuterVars = OwnVars.size();
    std::vector<Stmt *> Then;
    Then.push_back(genStmt(Depth - 1));
    OwnVars.resize(OuterVars);
    return Ctx.makeStmt<IfStmt>(
        Cond.E, Ctx.makeStmt<CompoundStmt>(std::move(Then)), nullptr);
  }
  }
}

std::vector<Stmt *> EmiBodyGen::genBody(unsigned NumStmts,
                                        unsigned Depth) {
  std::vector<Stmt *> Body;
  for (unsigned I = 0; I != NumStmts; ++I)
    Body.push_back(genStmt(Depth));
  return Body;
}

bool clfuzz::injectEmiIntoTest(const TestCase &Base,
                               const InjectOptions &Opts, TestCase &Out,
                               DiagEngine &Diags) {
  auto Ctx = std::make_unique<ASTContext>();
  if (!parseProgram(Base.Source, *Ctx, Diags))
    return false;
  FunctionDecl *Kernel = Ctx->program().kernel();
  if (!Kernel || !Kernel->getBody()) {
    Diags.error(SourceLoc{}, "test case has no kernel to inject into");
    return false;
  }
  TypeContext &Types = Ctx->types();
  Rng R(Opts.Seed ^ 0x13ec7104e111b10cULL);

  // Add the dead parameter.
  VarDecl *Dead = Ctx->makeVar(
      "emi_dead", Types.pointer(Types.intTy(), AddressSpace::Global),
      AddressSpace::Private);
  Dead->setParam(true);
  Kernel->addParam(Dead);

  // Collect host scalar variables visible at kernel top level
  // (parameters and top-level locals) for substitution binding.
  std::vector<VarDecl *> HostVars;
  for (VarDecl *P : Kernel->params())
    if (isa<ScalarType>(P->getType()) && !P->isConst())
      HostVars.push_back(P);
  for (Stmt *S : Kernel->getBody()->body())
    if (auto *DS = dyn_cast<DeclStmt>(S)) {
      VarDecl *D = DS->getDecl();
      if (isa<ScalarType>(D->getType()) &&
          D->getAddressSpace() == AddressSpace::Private &&
          !D->isVolatile())
        HostVars.push_back(D);
    }

  // Build and place the blocks. Injection points are positions in the
  // kernel's top-level body *after* the declarations we may
  // substitute against.
  auto &Body = Kernel->getBody()->body();
  size_t FirstSafe = 0;
  for (size_t I = 0; I != Body.size(); ++I)
    if (isa<DeclStmt>(Body[I]))
      FirstSafe = I + 1;

  int EmiId = 0;
  for (unsigned B = 0; B != Opts.NumBlocks; ++B) {
    unsigned R1 = 1 + static_cast<unsigned>(
                          R.below(Opts.DeadArrayLength - 1));
    unsigned R2 = static_cast<unsigned>(R.below(R1));
    TypedResult L = buildIndex(*Ctx, Ctx->ref(Dead),
                               Ctx->intLit(static_cast<int>(R1)));
    TypedResult Rr = buildIndex(*Ctx, Ctx->ref(Dead),
                                Ctx->intLit(static_cast<int>(R2)));
    TypedResult Cond = buildBinary(*Ctx, BinOp::Lt, L.E, Rr.E);

    EmiBodyGen Gen(*Ctx, R, HostVars, Opts.Substitutions);
    std::vector<Stmt *> BlockBody =
        Gen.genBody(static_cast<unsigned>(R.range(2, 4)), 2);
    if (R.chance(Opts.InfiniteLoopProbability))
      BlockBody.push_back(Ctx->makeStmt<WhileStmt>(
          Ctx->intLit(1),
          Ctx->makeStmt<CompoundStmt>(std::vector<Stmt *>{})));

    auto *If = Ctx->makeStmt<IfStmt>(
        Cond.E, Ctx->makeStmt<CompoundStmt>(std::move(BlockBody)),
        nullptr);
    If->setEmiId(EmiId++);
    size_t Pos = FirstSafe + R.below(Body.size() - FirstSafe + 1);
    Body.insert(Body.begin() + Pos, If);
  }

  // Apply the variant's pruning.
  pruneEmiBlocks(*Ctx, Opts.Prune);

  // Re-validate before printing.
  DiagEngine PostDiags;
  if (!checkProgram(*Ctx, PostDiags)) {
    Diags.error(SourceLoc{}, "EMI injection produced an invalid program: " +
                                 PostDiags.str());
    return false;
  }

  Out = Base;
  Out.Name = Base.Name + " +emi(seed=" + std::to_string(Opts.Seed) +
             (Opts.Substitutions ? ",subst" : "") + ")";
  Out.Source = printProgram(Ctx->program(), Types);
  BufferSpec DB;
  DB.Space = AddressSpace::Global;
  DB.IsDeadArray = true;
  DB.InitBytes.resize(Opts.DeadArrayLength * 4);
  for (unsigned J = 0; J != Opts.DeadArrayLength; ++J) {
    int32_t V = static_cast<int32_t>(J);
    std::memcpy(&DB.InitBytes[J * 4], &V, 4);
  }
  Out.Buffers.push_back(std::move(DB));
  return true;
}
