//===- Emi.h - Equivalence-modulo-inputs machinery --------------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// EMI testing for OpenCL kernels via *dead-by-construction* code (§5):
///
///  * the generator plants blocks `if (dead[r1] < dead[r2]) {...}` with
///    r2 < r1 so the guard is false under the host's dead[j] = j
///    initialisation;
///  * variants prune statements inside EMI blocks with the paper's
///    three strategies - *leaf* (delete leaf statements with
///    probability p_leaf), *compound* (delete branch statements with
///    p_compound) and the novel *lift* (splice a branch node's
///    children into its parent, removing the loop's outermost
///    break/continue), applied with the adjusted probability
///    p'_lift = p_lift / (1 - p_compound), requiring
///    p_compound + p_lift <= 1;
///  * blocks can also be injected into *existing* kernels (the Table 3
///    experiment over Parboil/Rodinia), binding free variables either
///    by declaring them locally or by substituting names from the host
///    kernel (§5 "Injecting into real-world kernels").
///
/// All variants of a base must print the same output; any divergence
/// on one configuration is a miscompilation (§3.2, metamorphic
/// oracle).
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_EMI_EMI_H
#define CLFUZZ_EMI_EMI_H

#include "device/Driver.h"
#include "gen/Generator.h"

namespace clfuzz {

/// Pruning strategy probabilities (§5). The constraint
/// PCompound + PLift <= 1 must hold.
struct PruneOptions {
  double PLeaf = 0.0;
  double PCompound = 0.0;
  double PLift = 0.0;
  uint64_t Seed = 0;

  bool valid() const { return PCompound + PLift <= 1.0 + 1e-9; }
  /// The adjusted lift probability p'_lift (§5).
  double adjustedLift() const {
    if (PLift == 0.0)
      return 0.0;
    return PLift / (1.0 - PCompound);
  }
};

/// Prunes every EMI-flagged block in \p Ctx's program in place.
/// DeclStmts are never leaf-deleted (a deleted declaration could leave
/// dangling uses; whole-subtree compound deletion is safe because
/// scoping confines uses). Returns the number of prunings performed.
unsigned pruneEmiBlocks(ASTContext &Ctx, const PruneOptions &Opts);

/// Regenerates the base kernel for \p BaseOpts, prunes its EMI blocks
/// with \p Prune and returns the variant as a runnable test case.
TestCase makeEmiVariant(const GenOptions &BaseOpts,
                        const PruneOptions &Prune);

/// The full 40-variant sweep of §7.4: every combination of
/// p_leaf/p_compound/p_lift over {0, 0.3, 0.6, 1} satisfying
/// p_compound + p_lift <= 1.
std::vector<PruneOptions> paperPruneSweep(uint64_t SeedBase);

/// Options for injecting EMI blocks into an existing kernel (Table 3).
struct InjectOptions {
  uint64_t Seed = 0;
  unsigned NumBlocks = 1;
  /// Bind free variables to existing host-kernel variables via
  /// substitution (on) or declare fresh locals inside the block (off).
  bool Substitutions = false;
  unsigned DeadArrayLength = 16;
  /// Pruning applied to the injected blocks (variant generation).
  PruneOptions Prune;
  /// Include a dead `while (1) { }` with this probability (the paper's
  /// config-8 timeout trigger).
  double InfiniteLoopProbability = 0.15;
};

/// Parses \p Base.Source, injects EMI blocks into its kernel, appends
/// the host-initialised dead array to the buffer plan and returns the
/// new test case. Returns false on failure (diagnostics in \p Diags).
bool injectEmiIntoTest(const TestCase &Base, const InjectOptions &Opts,
                       TestCase &Out, DiagEngine &Diags);

} // namespace clfuzz

#endif // CLFUZZ_EMI_EMI_H
