//===- Layout.h - Struct/union/array memory layout --------------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes sizes, alignments and field offsets for MiniCL types using
/// the standard C layout rules (OpenCL mandates fixed primitive widths
/// and two's complement, §3.1 of the paper).
///
/// The engine also implements the *struct-layout bug models* observed
/// in the paper:
///
///  * `CharStructInitBug` (Figure 1(a), AMD): aggregate *initialisation*
///    uses packed (padding-free) offsets for structs whose leading char
///    field is followed by a wider member, while member *access* uses
///    correct padded offsets. `s = {1, 1}; s.a + s.b` then yields 1
///    instead of 2 exactly as the paper reports.
///
///  * `UnionInitBug` (Figure 2(a), NVIDIA -O0): a union initialiser
///    writes only the leading bytes corresponding to the *wrong*
///    member's first field and leaves the rest of the member
///    uninitialised (modelled as 0xff garbage), reproducing the
///    0xffff0001 result.
///
/// Bug models are part of the layout engine because the real defects
/// were inconsistencies between two compiler paths that both consult
/// layout.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_LAYOUT_LAYOUT_H
#define CLFUZZ_LAYOUT_LAYOUT_H

#include "minicl/Type.h"

#include <cstdint>

namespace clfuzz {

/// Layout bug knobs (see file comment). All default to off, giving
/// standard C layout.
struct LayoutOptions {
  bool CharStructInitBug = false;
  bool UnionInitBug = false;
};

/// Size/alignment/offset oracle for one compilation.
class LayoutEngine {
public:
  explicit LayoutEngine(LayoutOptions Opts = LayoutOptions())
      : Opts(Opts) {}

  /// Size of \p Ty in bytes (pointers are 8 bytes).
  uint64_t sizeOf(const Type *Ty) const;

  /// Natural alignment of \p Ty in bytes.
  uint64_t alignOf(const Type *Ty) const;

  /// Byte offset of field \p Index inside \p RT, as used by member
  /// access (always standard).
  uint64_t fieldOffset(const RecordType *RT, unsigned Index) const;

  /// Byte offset of field \p Index as used when *initialising* an
  /// aggregate. Differs from fieldOffset only when CharStructInitBug
  /// triggers on \p RT.
  uint64_t initFieldOffset(const RecordType *RT, unsigned Index) const;

  /// True if the Figure 1(a) bug model mislays \p RT's initialisation.
  bool charStructBugTriggers(const RecordType *RT) const;

  /// True if the Figure 2(a) bug model corrupts initialisation of the
  /// union \p RT. When it does, only \p CorruptBytes of the first
  /// member are written by an initialiser; the rest are garbage.
  bool unionInitBugTriggers(const RecordType *RT,
                            uint64_t &CorruptBytes) const;

  const LayoutOptions &options() const { return Opts; }

private:
  uint64_t packedFieldOffset(const RecordType *RT, unsigned Index) const;

  LayoutOptions Opts;
};

} // namespace clfuzz

#endif // CLFUZZ_LAYOUT_LAYOUT_H
