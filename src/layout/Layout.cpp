//===- Layout.cpp - Struct/union/array memory layout -----------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "layout/Layout.h"

using namespace clfuzz;

static uint64_t alignTo(uint64_t Value, uint64_t Align) {
  assert(Align != 0 && (Align & (Align - 1)) == 0 &&
         "alignment must be a power of two");
  return (Value + Align - 1) & ~(Align - 1);
}

uint64_t LayoutEngine::sizeOf(const Type *Ty) const {
  switch (Ty->getKind()) {
  case Type::TypeKind::Void:
    assert(false && "void has no size");
    return 0;
  case Type::TypeKind::Scalar:
    return cast<ScalarType>(Ty)->byteWidth();
  case Type::TypeKind::Vector: {
    const auto *VT = cast<VectorType>(Ty);
    return static_cast<uint64_t>(VT->getElementType()->byteWidth()) *
           VT->getNumLanes();
  }
  case Type::TypeKind::Pointer:
    return 8;
  case Type::TypeKind::Array: {
    const auto *AT = cast<ArrayType>(Ty);
    return sizeOf(AT->getElementType()) * AT->getNumElements();
  }
  case Type::TypeKind::Record: {
    const auto *RT = cast<RecordType>(Ty);
    assert(RT->isComplete() && "layout query on incomplete record");
    if (RT->isUnion()) {
      uint64_t Size = 0;
      for (const RecordField &F : RT->fields())
        Size = std::max(Size, sizeOf(F.Ty));
      return alignTo(Size == 0 ? 1 : Size, alignOf(RT));
    }
    uint64_t Offset = 0;
    for (unsigned I = 0, E = RT->getNumFields(); I != E; ++I) {
      Offset = alignTo(Offset, alignOf(RT->getField(I).Ty));
      Offset += sizeOf(RT->getField(I).Ty);
    }
    return alignTo(Offset == 0 ? 1 : Offset, alignOf(RT));
  }
  }
  assert(false && "unknown type kind");
  return 0;
}

uint64_t LayoutEngine::alignOf(const Type *Ty) const {
  switch (Ty->getKind()) {
  case Type::TypeKind::Void:
    return 1;
  case Type::TypeKind::Scalar:
    return cast<ScalarType>(Ty)->byteWidth();
  case Type::TypeKind::Vector:
    // OpenCL aligns vectors to their full size.
    return sizeOf(Ty);
  case Type::TypeKind::Pointer:
    return 8;
  case Type::TypeKind::Array:
    return alignOf(cast<ArrayType>(Ty)->getElementType());
  case Type::TypeKind::Record: {
    const auto *RT = cast<RecordType>(Ty);
    uint64_t Align = 1;
    for (const RecordField &F : RT->fields())
      Align = std::max(Align, alignOf(F.Ty));
    return Align;
  }
  }
  assert(false && "unknown type kind");
  return 1;
}

uint64_t LayoutEngine::fieldOffset(const RecordType *RT,
                                   unsigned Index) const {
  assert(Index < RT->getNumFields() && "field index out of range");
  if (RT->isUnion())
    return 0;
  uint64_t Offset = 0;
  for (unsigned I = 0; I <= Index; ++I) {
    Offset = alignTo(Offset, alignOf(RT->getField(I).Ty));
    if (I == Index)
      return Offset;
    Offset += sizeOf(RT->getField(I).Ty);
  }
  return Offset;
}

uint64_t LayoutEngine::packedFieldOffset(const RecordType *RT,
                                         unsigned Index) const {
  if (RT->isUnion())
    return 0;
  uint64_t Offset = 0;
  for (unsigned I = 0; I != Index; ++I)
    Offset += sizeOf(RT->getField(I).Ty);
  return Offset;
}

bool LayoutEngine::charStructBugTriggers(const RecordType *RT) const {
  if (!Opts.CharStructInitBug || RT->isUnion() || RT->getNumFields() < 2)
    return false;
  // The AMD defect: any struct starting with a char followed by a
  // larger member is miscompiled (§6, "Problems with structs").
  const auto *First = dyn_cast<ScalarType>(RT->getField(0).Ty);
  if (!First || First->byteWidth() != 1)
    return false;
  return sizeOf(RT->getField(1).Ty) > 1;
}

uint64_t LayoutEngine::initFieldOffset(const RecordType *RT,
                                       unsigned Index) const {
  if (charStructBugTriggers(RT))
    return packedFieldOffset(RT, Index);
  return fieldOffset(RT, Index);
}

bool LayoutEngine::unionInitBugTriggers(const RecordType *RT,
                                        uint64_t &CorruptBytes) const {
  if (!Opts.UnionInitBug || !RT->isUnion() || RT->getNumFields() < 2)
    return false;
  // The NVIDIA defect initialised only the two bytes of the *other*
  // member's leading short field (Figure 2(a)'s union U { uint a;
  // struct { short c; ... } b; }). Trigger on exactly that shape: a
  // 4-byte-or-wider leading scalar member and a later record member
  // whose first field is a 2-byte integer.
  const auto *First = dyn_cast<ScalarType>(RT->getField(0).Ty);
  if (!First || First->byteWidth() < 4)
    return false;
  for (unsigned I = 1, E = RT->getNumFields(); I != E; ++I) {
    const auto *Inner = dyn_cast<RecordType>(RT->getField(I).Ty);
    if (!Inner || Inner->getNumFields() == 0)
      continue;
    const auto *InnerFirst =
        dyn_cast<ScalarType>(Inner->getField(0).Ty);
    if (InnerFirst && InnerFirst->byteWidth() == 2) {
      CorruptBytes = 2;
      return true;
    }
  }
  return false;
}
