//===- Benchmarks.h - Mini Parboil/Rodinia benchmark suite ------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ten hand-written MiniCL kernels standing in for the Parboil v2.5 /
/// Rodinia v2.8 benchmarks of the paper's Table 2 (bfs, cutcp, lbm,
/// sad, spmv, tpacf, heartwall, hotspot, myocyte, pathfinder). Each
/// keeps its namesake's computational shape but is integer-only (the
/// paper avoids floating point, §7.2) and sized for the simulator.
///
/// Two benchmarks deliberately contain the *data races the paper
/// discovered in the originals* (§2.4): spmv carries an unsynchronised
/// flag write (benign but racy) and myocyte a genuinely
/// order-dependent shared-scratch race. Both are confirmed by the VM's
/// race detector and excluded from the Table 3 harness, exactly as the
/// paper excludes them.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_CORPUS_BENCHMARKS_H
#define CLFUZZ_CORPUS_BENCHMARKS_H

#include "device/Driver.h"

#include <string>
#include <vector>

namespace clfuzz {

/// One benchmark: metadata (Table 2 columns) plus a runnable test.
struct Benchmark {
  std::string Suite;       ///< "Parboil" or "Rodinia"
  std::string Name;
  std::string Description;
  unsigned NumKernels = 1;
  bool UsesFloatInPaper = false; ///< the original's FP column
  bool HasPlantedRace = false;   ///< spmv, myocyte
  TestCase Test;

  unsigned linesOfCode() const;
};

/// Builds the full ten-benchmark suite (deterministic host data).
std::vector<Benchmark> buildBenchmarkSuite();

/// The subset usable for EMI testing (excludes the racy spmv and
/// myocyte, as §7.2 does).
std::vector<Benchmark> emiBenchmarkSuite();

} // namespace clfuzz

#endif // CLFUZZ_CORPUS_BENCHMARKS_H
