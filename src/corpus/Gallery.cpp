//===- Gallery.cpp - The Figure 1/2 bug gallery -------------------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "corpus/Gallery.h"

#include <cstring>

using namespace clfuzz;

namespace {

NDRange singleThread() {
  NDRange R;
  R.Global[0] = 1;
  R.Local[0] = 1;
  return R;
}

NDRange twoThreads() {
  NDRange R;
  R.Global[0] = 2;
  R.Local[0] = 2;
  return R;
}

BufferSpec ulongOut(uint64_t Threads) {
  BufferSpec B;
  B.Space = AddressSpace::Global;
  B.InitBytes.assign(Threads * 8, 0);
  B.IsOutput = true;
  return B;
}

BufferSpec intZeros(size_t N) {
  BufferSpec B;
  B.Space = AddressSpace::Global;
  B.InitBytes.assign(N * 4, 0);
  return B;
}

GalleryEntry makeEntry(const char *Id, const char *Caption,
                       const char *Source, NDRange Range,
                       std::vector<BufferSpec> Buffers) {
  GalleryEntry E;
  E.Id = Id;
  E.Caption = Caption;
  E.Test.Name = std::string("figure ") + Id;
  E.Test.Source = Source;
  E.Test.Range = Range;
  E.Test.Buffers = std::move(Buffers);
  return E;
}

} // namespace

std::vector<GalleryEntry> clfuzz::buildFigure1Gallery() {
  std::vector<GalleryEntry> G;

  // --- Figure 1(a): char-then-short struct, AMD with optimisations.
  {
    GalleryEntry E = makeEntry(
        "1(a)", "configs 5+, 6+, 16+ yield result 1 (expected: 2)",
        "struct S { char a; short b; };\n"
        "kernel void k(global ulong *out) {\n"
        "  struct S s = { 1, 1 };\n"
        "  out[get_global_id(0)] = s.a + s.b;\n"
        "}\n",
        singleThread(), {ulongOut(1)});
    for (int Id : {5, 6, 16})
      E.Buggy.push_back({Id, true, RunStatus::Ok, true, 2 - 1});
    G.push_back(std::move(E));
  }

  // --- Figure 1(b): struct copy with a volatile member, anon GPU -O0.
  {
    GalleryEntry E = makeEntry(
        "1(b)", "configs 10-, 11- yield result 0 (expected: 1)",
        "typedef struct {\n"
        "  short a; int b; volatile char c;\n"
        "  int d; int e; short f[10];\n"
        "} S;\n"
        "kernel void k(global ulong *out) {\n"
        "  S s; S *p = &s;\n"
        "  S t = {0, 0, 0, 0, 0, {0, 0, 0, 0, 0, 0, 0, 1, 0, 0}};\n"
        "  s = t; out[get_global_id(0)] = p->f[7];\n"
        "}\n",
        singleThread(), {ulongOut(1)});
    for (int Id : {10, 11})
      E.Buggy.push_back({Id, false, RunStatus::Ok, true, 0});
    G.push_back(std::move(E));
  }

  // --- Figure 1(c): vector inside a struct, Altera internal error.
  {
    GalleryEntry E = makeEntry(
        "1(c)",
        "configs 20+-, 21+- yield internal errors when vectors appear "
        "in structs",
        "kernel void k(global ulong *out) {\n"
        "  struct S { int4 x; };\n"
        "  struct S s = { (int4)((int2)(1, 1), 1, 1) };\n"
        "  out[get_global_id(0)] = s.x.w;\n"
        "}\n",
        singleThread(), {ulongOut(1)});
    for (int Id : {20, 21})
      for (bool Opt : {false, true})
        E.Buggy.push_back({Id, Opt, RunStatus::BuildFailure, false, 0});
    G.push_back(std::move(E));
  }

  // --- Figure 1(d): store through pointer after a barrier, config 17.
  {
    GalleryEntry E = makeEntry(
        "1(d)", "configs 17+- yield result 2 (expected result: 3)",
        "typedef struct { int x; int y; } S;\n"
        "void f(S *p) { p->x = 2; }\n"
        "kernel void k(global ulong *out) {\n"
        "  S s = { 1, 1 }; barrier(CLK_LOCAL_MEM_FENCE);\n"
        "  f(&s); out[get_global_id(0)] = s.x + s.y;\n"
        "}\n",
        singleThread(), {ulongOut(1)});
    for (bool Opt : {false, true})
      E.Buggy.push_back({17, Opt, RunStatus::Ok, true, 2});
    G.push_back(std::move(E));
  }

  // --- Figure 1(e): compile hang on an (unreachable) infinite loop.
  {
    GalleryEntry E = makeEntry(
        "1(e)",
        "configs 8+-, 7+- enter an infinite loop during compilation",
        "kernel void k(global int *p) {\n"
        "  for (int i = 0; i < 197; i++)\n"
        "    if (*p)\n"
        "      while (1) { }\n"
        "}\n",
        singleThread(), {intZeros(1)});
    for (int Id : {7, 8})
      for (bool Opt : {false, true})
        E.Buggy.push_back({Id, Opt, RunStatus::Timeout, false, 0});
    G.push_back(std::move(E));
  }

  // --- Figure 1(f): slow compilation of big struct + barrier, config
  // 18 with optimisations.
  {
    GalleryEntry E = makeEntry(
        "1(f)", "config 18+ takes more than 20s to compile this kernel",
        "typedef struct { int a; int *b; ulong c[9][9][3]; } S;\n"
        "kernel void k(global ulong *out) {\n"
        "  S s; S *p = &s; S t = { 0, &p->a, { { { 0 } } } };\n"
        "  s = t;\n"
        "  barrier(CLK_LOCAL_MEM_FENCE);\n"
        "  out[get_global_id(0)] = p->c[0][0][1];\n"
        "}\n",
        singleThread(), {ulongOut(1)});
    E.Buggy.push_back({18, true, RunStatus::Timeout, false, 0});
    G.push_back(std::move(E));
  }

  return G;
}

std::vector<GalleryEntry> clfuzz::buildFigure2Gallery() {
  std::vector<GalleryEntry> G;

  // --- Figure 2(a): union initialisation, NVIDIA -O0.
  {
    GalleryEntry E = makeEntry(
        "2(a)",
        "configs 1-, 2-, 3-, 4- yield 0xffff0001 due to incorrect "
        "union initialization (expected: 1)",
        "struct S { short c; long d; };\n"
        "union U { uint a; struct S b; };\n"
        "struct T { union U u[1]; ulong x; ulong y; };\n"
        "kernel void k(global ulong *out, global int *in) {\n"
        "  struct T c;\n"
        "  struct T t = { {{1}}, in[get_global_id(0)], "
        "in[get_global_id(1)] };\n"
        "  c = t;\n"
        "  ulong total = 0;\n"
        "  for (int i = 0; i < 1; i++) total += c.u[i].a;\n"
        "  out[get_global_id(0)] = total;\n"
        "}\n",
        singleThread(), {ulongOut(1), intZeros(2)});
    for (int Id : {1, 2, 3, 4})
      E.Buggy.push_back({Id, false, RunStatus::Ok, true, 0xffff0001ULL});
    G.push_back(std::move(E));
  }

  // --- Figure 2(b): constant-folded vector rotate, config 14.
  {
    GalleryEntry E = makeEntry(
        "2(b)", "config 14+- yields result 0xffffffff (expected: 1)",
        "kernel void k(global ulong *out) {\n"
        "  out[get_global_id(0)] = rotate((uint2)(1, 1), "
        "(uint2)(0, 0)).x;\n"
        "}\n",
        singleThread(), {ulongOut(1)});
    for (bool Opt : {false, true})
      E.Buggy.push_back({14, Opt, RunStatus::Ok, true, 0xffffffffULL});
    G.push_back(std::move(E));
  }

  // --- Figure 2(c): barriers + forward declaration, Intel CPUs.
  {
    GalleryEntry E = makeEntry(
        "2(c)",
        "configs 12-, 13- yield [1,0]-class wrong results; 14-, 15- "
        "crash with a segmentation fault",
        "int f();\n"
        "void g(int *p) { barrier(CLK_LOCAL_MEM_FENCE); *p = f(); }\n"
        "void h(int *p) { g(p); }\n"
        "int f() { barrier(CLK_LOCAL_MEM_FENCE); return 1; }\n"
        "kernel void k(global ulong *out) {\n"
        "  int x = 0; h(&x); out[get_global_id(0)] = x;\n"
        "}\n",
        twoThreads(), {ulongOut(2)});
    for (int Id : {12, 13})
      E.Buggy.push_back({Id, false, RunStatus::Ok, true, 0});
    for (int Id : {14, 15})
      E.Buggy.push_back({Id, false, RunStatus::Crash, false, 0});
    G.push_back(std::move(E));
  }

  // --- Figure 2(d): barrier in an unreachable loop body (the paper's
  // complex trailing expression is elided); 14-/15- misbehave.
  {
    GalleryEntry E = makeEntry(
        "2(d)",
        "configs 14-, 15- misbehave (the paper reports [0,1], expected "
        "[0,0]; our models crash, the same defect family)",
        "typedef struct { int a; int * volatile * b; int c; } S;\n"
        "void f(S *s) {\n"
        "  for (s->a = 0; s->a > 0; s->a = 0) {\n"
        "    int x = 1; int *p = &s->c;\n"
        "    barrier(CLK_LOCAL_MEM_FENCE);\n"
        "    *p = safe_add(x, s->c);\n"
        "  }\n"
        "}\n"
        "kernel void k(global ulong *out) {\n"
        "  S s = { 1, 0, 0 }; f(&s);\n"
        "  out[get_global_id(0)] = (uint)s.a;\n"
        "}\n",
        twoThreads(), {ulongOut(2)});
    for (int Id : {14, 15})
      E.Buggy.push_back({Id, false, RunStatus::Crash, false, 0});
    G.push_back(std::move(E));
  }

  // --- Figure 2(e): comparison chain with a group id, config 9+.
  {
    GalleryEntry E = makeEntry(
        "2(e)", "config 9+ yields result 0 (expected: 1)",
        "void f(int *p) {\n"
        "  if ((((((*p - get_group_id(0)) != 1u) >> *p) < 2) >= *p)) {\n"
        "    *p = 1;\n"
        "  }\n"
        "}\n"
        "kernel void k(global ulong *out) {\n"
        "  int x = 0; f(&x); out[get_global_id(0)] = x;\n"
        "}\n",
        singleThread(), {ulongOut(1)});
    E.Buggy.push_back({9, true, RunStatus::Ok, true, 0});
    G.push_back(std::move(E));
  }

  // --- Figure 2(f): the comma operator, Oclgrind.
  {
    GalleryEntry E = makeEntry(
        "2(f)", "config 19+- yields result 0 (expected: 0xffffffff)",
        "kernel void k(global ulong *out) {\n"
        "  short x = 1; uint y;\n"
        "  for (y = -1; y >= 1; ++y) { if (x , 1) break; }\n"
        "  out[get_global_id(0)] = y;\n"
        "}\n",
        singleThread(), {ulongOut(1)});
    for (bool Opt : {false, true})
      E.Buggy.push_back({19, Opt, RunStatus::Ok, true, 0});
    G.push_back(std::move(E));
  }

  return G;
}
