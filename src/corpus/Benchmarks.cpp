//===- Benchmarks.cpp - Mini Parboil/Rodinia benchmark suite -----------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "corpus/Benchmarks.h"
#include "support/Rng.h"
#include "support/StringUtil.h"

#include <cstring>

using namespace clfuzz;

unsigned Benchmark::linesOfCode() const {
  return countCodeLines(Test.Source);
}

namespace {

/// Builds an int32 buffer from values.
BufferSpec intBuffer(const std::vector<int32_t> &Values) {
  BufferSpec B;
  B.Space = AddressSpace::Global;
  B.InitBytes.resize(Values.size() * 4);
  std::memcpy(B.InitBytes.data(), Values.data(), B.InitBytes.size());
  return B;
}

/// The zeroed output buffer every benchmark writes (one ulong per
/// work-item).
BufferSpec outBuffer(uint64_t Threads) {
  BufferSpec B;
  B.Space = AddressSpace::Global;
  B.InitBytes.assign(Threads * 8, 0);
  B.IsOutput = true;
  return B;
}

NDRange range1d(uint32_t Global, uint32_t Local) {
  NDRange R;
  R.Global[0] = Global;
  R.Local[0] = Local;
  return R;
}

/// Deterministic pseudo-input data.
std::vector<int32_t> patternData(size_t N, uint64_t Seed, int32_t Lo,
                                 int32_t Hi) {
  Rng R(Seed);
  std::vector<int32_t> V(N);
  for (size_t I = 0; I != N; ++I)
    V[I] = static_cast<int32_t>(R.range(Lo, Hi));
  return V;
}

//===--------------------------------------------------------------------===//
// Kernel sources
//===--------------------------------------------------------------------===//

const char *BfsSource = R"(
// Parboil bfs: one pull-based level-expansion step over a CSR graph.
kernel void bfs_step(global ulong *out, global int *row_ptr,
                     global int *cols, global int *level_in,
                     global int *params)
{
  int n = params[0];
  int depth = params[1];
  int i = (int)get_global_id(0);
  int lv = level_in[i];
  if (i < n && lv < 0) {
    int first = row_ptr[i];
    int last = row_ptr[i + 1];
    for (int e = first; e < last; e += 1) {
      int nb = cols[e];
      if (level_in[nb] == depth)
        lv = depth + 1;
    }
  }
  out[get_global_id(0)] = (ulong)(uint)(lv + 1);
}
)";

const char *CutcpSource = R"(
// Parboil cutcp: cutoff-limited potential accumulation on a 2D grid
// (integer charges; the original uses floating point).
kernel void cutcp(global ulong *out, global int *atoms,
                  global int *params)
{
  int natoms = params[0];
  int cutoff2 = params[1];
  int gx = (int)get_global_id(0);
  int px = gx % 16;
  int py = gx / 16;
  int pot = 0;
  for (int a = 0; a < natoms; a += 1) {
    int dx = px - atoms[a * 3];
    int dy = py - atoms[a * 3 + 1];
    int d2 = dx * dx + dy * dy;
    if (d2 < cutoff2)
      pot += atoms[a * 3 + 2] * (cutoff2 - d2);
  }
  out[get_global_id(0)] = (ulong)(uint)pot;
}
)";

const char *LbmSource = R"(
// Parboil lbm: one stream-and-collide step of a three-speed 1D
// lattice (fixed-point collision).
kernel void lbm(global ulong *out, global int *f0, global int *f1,
                global int *f2, global int *params)
{
  int n = params[0];
  int omega = params[1];
  int i = (int)get_global_id(0);
  int left = (i + n - 1) % n;
  int right = (i + 1) % n;
  int a = f0[i];
  int b = f1[left];
  int c = f2[right];
  int rho = a + b + c;
  int u = b - c;
  int eq0 = rho / 2;
  int eq1 = (rho + 3 * u) / 4;
  int eq2 = (rho - 3 * u) / 4;
  int n0 = a + omega * (eq0 - a) / 8;
  int n1 = b + omega * (eq1 - b) / 8;
  int n2 = c + omega * (eq2 - c) / 8;
  out[get_global_id(0)] =
      (ulong)(uint)(n0 * 65536 + n1 * 256 + n2);
}
)";

const char *SadSource = R"(
// Parboil sad: 4x4-block sum of absolute differences between two
// frames (the original splits this over three kernels).
kernel void sad(global ulong *out, global int *cur, global int *ref,
                global int *params)
{
  int width = params[0];
  int i = (int)get_global_id(0);
  int blocks_x = width / 4;
  int bx = (i % blocks_x) * 4;
  int by = (i / blocks_x) * 4;
  uint acc = 0u;
  for (int y = 0; y < 4; y += 1) {
    for (int x = 0; x < 4; x += 1) {
      int c = cur[(by + y) * width + bx + x];
      int r = ref[(by + y) * width + bx + x];
      acc += abs(c - r);
    }
  }
  out[get_global_id(0)] = (ulong)acc;
}
)";

const char *SpmvSource = R"(
// Parboil spmv: CSR sparse matrix-vector product. The unsynchronised
// write to flag[0] reproduces the data race the paper discovered in
// the original benchmark (benign here: every writer stores 1).
kernel void spmv(global ulong *out, global int *row_ptr,
                 global int *cols, global int *vals, global int *x,
                 global int *flag)
{
  int row = (int)get_global_id(0);
  int acc = 0;
  for (int j = row_ptr[row]; j < row_ptr[row + 1]; j += 1)
    acc += vals[j] * x[cols[j]];
  if (acc != 0)
    flag[0] = 1;
  out[get_global_id(0)] = (ulong)(uint)acc;
}
)";

const char *TpacfSource = R"(
// Parboil tpacf: pair-distance histogram with local-memory
// privatisation and atomic updates.
kernel void tpacf(global ulong *out, global int *pts,
                  global int *params)
{
  local uint hist[8];
  int npts = params[0];
  uint lid = (uint)get_local_id(0);
  if (lid < 8u)
    hist[lid] = 0u;
  barrier(CLK_LOCAL_MEM_FENCE);
  int i = (int)get_global_id(0);
  int xi = pts[i * 2];
  int yi = pts[i * 2 + 1];
  for (int j = 0; j < npts; j += 1) {
    int dx = xi - pts[j * 2];
    int dy = yi - pts[j * 2 + 1];
    int bin = (dx * dx + dy * dy) % 8;
    atomic_inc(&hist[(uint)bin]);
  }
  barrier(CLK_LOCAL_MEM_FENCE);
  uint acc = 0u;
  for (int b = 0; b < 8; b += 1)
    acc = acc * 31u + hist[b];
  out[get_global_id(0)] = (ulong)acc;
}
)";

const char *HeartwallSource = R"(
// Rodinia heartwall: template matching against a frame window,
// followed by a work-group tree reduction of the best score.
int window_score(global int *frame, global int *tmpl, int base,
                 int twidth, int width)
{
  int score = 0;
  for (int y = 0; y < 4; y += 1) {
    for (int x = 0; x < twidth; x += 1) {
      int f = frame[base + y * width + x];
      int t = tmpl[y * twidth + x];
      int d = f - t;
      score += d * d;
    }
  }
  return score;
}

kernel void heartwall(global ulong *out, global int *frame,
                      global int *tmpl, global int *params)
{
  local int best[64];
  int width = params[0];
  int twidth = params[1];
  uint lid = (uint)get_local_id(0);
  int gid = (int)get_global_id(0);
  int score = window_score(frame, tmpl, gid, twidth, width);
  best[lid] = score;
  barrier(CLK_LOCAL_MEM_FENCE);
  for (uint stride = 32u; stride > 0u; stride /= 2u) {
    if (lid < stride)
      best[lid] = min(best[lid], best[lid + stride]);
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  out[get_global_id(0)] = (ulong)(uint)(score - best[0]);
}
)";

const char *HotspotSource = R"(
// Rodinia hotspot: iterated 1D thermal stencil with a local-memory
// tile and halo cells (fixed-point update).
kernel void hotspot(global ulong *out, global int *temp,
                    global int *power, global int *params)
{
  local int tile[18];
  int n = params[0];
  int steps = params[1];
  uint lid = (uint)get_local_id(0);
  int gid = (int)get_global_id(0);
  tile[lid + 1u] = temp[gid];
  if (lid == 0u)
    tile[0] = temp[(gid + n - 1) % n];
  if (lid == 15u)
    tile[17] = temp[(gid + 1) % n];
  barrier(CLK_LOCAL_MEM_FENCE);
  int t = tile[lid + 1u];
  for (int s = 0; s < steps; s += 1) {
    int l = tile[lid];
    int r = tile[lid + 2u];
    t = t + (power[gid] + (l + r - 2 * t)) / 4;
    barrier(CLK_LOCAL_MEM_FENCE);
    tile[lid + 1u] = t;
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  out[get_global_id(0)] = (ulong)(uint)t;
}
)";

const char *MyocyteSource = R"(
// Rodinia myocyte: coupled cell-state integration. The shared scratch
// slot is written and read without synchronisation - the genuinely
// order-dependent data race the paper discovered in the original.
kernel void myocyte(global ulong *out, global int *state,
                    global int *scratch, global int *params)
{
  int steps = params[0];
  int i = (int)get_global_id(0);
  int v = state[i];
  for (int s = 0; s < steps; s += 1) {
    scratch[i % 8] = v;
    int coupling = scratch[(i + 1) % 8];
    v = v + (coupling - v) / 4 + s;
  }
  out[get_global_id(0)] = (ulong)(uint)v;
}
)";

const char *PathfinderSource = R"(
// Rodinia pathfinder: dynamic-programming minimum path over a cost
// grid, row by row, with double-buffered local memory.
kernel void pathfinder(global ulong *out, global int *wall,
                       global int *params)
{
  local int cost[2][16];
  int rows = params[0];
  uint lid = (uint)get_local_id(0);
  int gid = (int)get_global_id(0);
  int width = (int)get_global_size(0);
  cost[0][lid] = wall[gid];
  barrier(CLK_LOCAL_MEM_FENCE);
  int cur = 0;
  for (int r = 1; r < rows; r += 1) {
    int lo = (int)lid - 1 < 0 ? (int)lid : (int)lid - 1;
    int hi = (int)lid + 1 > 15 ? (int)lid : (int)lid + 1;
    int m = min(min(cost[cur][(uint)lo], cost[cur][lid]),
                cost[cur][(uint)hi]);
    int nxt = 1 - cur;
    cost[nxt][lid] = m + wall[r * width + gid];
    barrier(CLK_LOCAL_MEM_FENCE);
    cur = nxt;
  }
  out[get_global_id(0)] = (ulong)(uint)cost[cur][lid];
}
)";

} // namespace

std::vector<Benchmark> clfuzz::buildBenchmarkSuite() {
  std::vector<Benchmark> Suite;

  // --- Parboil bfs: ring graph with chords, 64 nodes.
  {
    Benchmark B;
    B.Suite = "Parboil";
    B.Name = "bfs";
    B.Description = "Graph breadth-first search";
    B.Test.Name = "bfs";
    B.Test.Source = BfsSource;
    B.Test.Range = range1d(64, 16);
    const int N = 64;
    std::vector<int32_t> RowPtr, Cols;
    for (int I = 0; I != N; ++I) {
      RowPtr.push_back(static_cast<int32_t>(Cols.size()));
      Cols.push_back((I + 1) % N);
      Cols.push_back((I + N - 1) % N);
      if (I % 4 == 0)
        Cols.push_back((I + 13) % N);
    }
    RowPtr.push_back(static_cast<int32_t>(Cols.size()));
    std::vector<int32_t> Level(N, -1);
    Level[0] = 0;
    Level[1] = 1;
    Level[63] = 1;
    B.Test.Buffers.push_back(outBuffer(64));
    B.Test.Buffers.push_back(intBuffer(RowPtr));
    B.Test.Buffers.push_back(intBuffer(Cols));
    B.Test.Buffers.push_back(intBuffer(Level));
    B.Test.Buffers.push_back(intBuffer({N, 1}));
    Suite.push_back(std::move(B));
  }

  // --- Parboil cutcp: 256 grid points, 24 atoms.
  {
    Benchmark B;
    B.Suite = "Parboil";
    B.Name = "cutcp";
    B.Description = "Molecular modeling simulation";
    B.UsesFloatInPaper = true;
    B.Test.Name = "cutcp";
    B.Test.Source = CutcpSource;
    B.Test.Range = range1d(256, 32);
    std::vector<int32_t> Atoms = patternData(24 * 3, 0xA70A5, 0, 15);
    B.Test.Buffers.push_back(outBuffer(256));
    B.Test.Buffers.push_back(intBuffer(Atoms));
    B.Test.Buffers.push_back(intBuffer({24, 40}));
    Suite.push_back(std::move(B));
  }

  // --- Parboil lbm: 128 lattice sites.
  {
    Benchmark B;
    B.Suite = "Parboil";
    B.Name = "lbm";
    B.Description = "Fluid dynamics simulation";
    B.UsesFloatInPaper = true;
    B.Test.Name = "lbm";
    B.Test.Source = LbmSource;
    B.Test.Range = range1d(128, 16);
    B.Test.Buffers.push_back(outBuffer(128));
    B.Test.Buffers.push_back(intBuffer(patternData(128, 0x1b1, 1, 40)));
    B.Test.Buffers.push_back(intBuffer(patternData(128, 0x1b2, 1, 40)));
    B.Test.Buffers.push_back(intBuffer(patternData(128, 0x1b3, 1, 40)));
    B.Test.Buffers.push_back(intBuffer({128, 3}));
    Suite.push_back(std::move(B));
  }

  // --- Parboil sad: 32x32 frames, 64 blocks.
  {
    Benchmark B;
    B.Suite = "Parboil";
    B.Name = "sad";
    B.Description = "Video processing";
    B.NumKernels = 3; // the original splits SAD over three kernels
    B.Test.Name = "sad";
    B.Test.Source = SadSource;
    B.Test.Range = range1d(64, 16);
    B.Test.Buffers.push_back(outBuffer(64));
    B.Test.Buffers.push_back(
        intBuffer(patternData(32 * 32, 0x5ad1, 0, 255)));
    B.Test.Buffers.push_back(
        intBuffer(patternData(32 * 32, 0x5ad2, 0, 255)));
    B.Test.Buffers.push_back(intBuffer({32}));
    Suite.push_back(std::move(B));
  }

  // --- Parboil spmv: 64 rows, ~4 entries each (racy flag).
  {
    Benchmark B;
    B.Suite = "Parboil";
    B.Name = "spmv";
    B.Description = "Linear algebra";
    B.UsesFloatInPaper = true;
    B.HasPlantedRace = true;
    B.Test.Name = "spmv";
    B.Test.Source = SpmvSource;
    B.Test.Range = range1d(64, 16);
    const int N = 64;
    Rng R(0x59b37);
    std::vector<int32_t> RowPtr, Cols, Vals;
    for (int I = 0; I != N; ++I) {
      RowPtr.push_back(static_cast<int32_t>(Cols.size()));
      unsigned Count = 2 + static_cast<unsigned>(R.below(4));
      for (unsigned K = 0; K != Count; ++K) {
        Cols.push_back(static_cast<int32_t>(R.below(N)));
        Vals.push_back(static_cast<int32_t>(R.range(-9, 9)));
      }
    }
    RowPtr.push_back(static_cast<int32_t>(Cols.size()));
    B.Test.Buffers.push_back(outBuffer(64));
    B.Test.Buffers.push_back(intBuffer(RowPtr));
    B.Test.Buffers.push_back(intBuffer(Cols));
    B.Test.Buffers.push_back(intBuffer(Vals));
    B.Test.Buffers.push_back(intBuffer(patternData(N, 0x59b38, -5, 5)));
    B.Test.Buffers.push_back(intBuffer({0}));
    Suite.push_back(std::move(B));
  }

  // --- Parboil tpacf: 64 points.
  {
    Benchmark B;
    B.Suite = "Parboil";
    B.Name = "tpacf";
    B.Description = "Nbody method";
    B.UsesFloatInPaper = true;
    B.Test.Name = "tpacf";
    B.Test.Source = TpacfSource;
    B.Test.Range = range1d(64, 16);
    B.Test.Buffers.push_back(outBuffer(64));
    B.Test.Buffers.push_back(
        intBuffer(patternData(64 * 2, 0x79acf, 0, 31)));
    B.Test.Buffers.push_back(intBuffer({64}));
    Suite.push_back(std::move(B));
  }

  // --- Rodinia heartwall: 64-sample window match.
  {
    Benchmark B;
    B.Suite = "Rodinia";
    B.Name = "heartwall";
    B.Description = "Medical imaging";
    B.UsesFloatInPaper = true;
    B.Test.Name = "heartwall";
    B.Test.Source = HeartwallSource;
    B.Test.Range = range1d(64, 64);
    const int Width = 128, TWidth = 8;
    B.Test.Buffers.push_back(outBuffer(64));
    B.Test.Buffers.push_back(
        intBuffer(patternData(Width * 8, 0x4ea27, 0, 63)));
    B.Test.Buffers.push_back(
        intBuffer(patternData(TWidth * 4, 0x4ea28, 0, 63)));
    B.Test.Buffers.push_back(intBuffer({Width, TWidth}));
    Suite.push_back(std::move(B));
  }

  // --- Rodinia hotspot: 64 cells, 6 steps.
  {
    Benchmark B;
    B.Suite = "Rodinia";
    B.Name = "hotspot";
    B.Description = "Thermal physics simulation";
    B.UsesFloatInPaper = true;
    B.Test.Name = "hotspot";
    B.Test.Source = HotspotSource;
    B.Test.Range = range1d(64, 16);
    B.Test.Buffers.push_back(outBuffer(64));
    B.Test.Buffers.push_back(
        intBuffer(patternData(64, 0x407507, 20, 90)));
    B.Test.Buffers.push_back(intBuffer(patternData(64, 0x407508, 0, 9)));
    B.Test.Buffers.push_back(intBuffer({64, 6}));
    Suite.push_back(std::move(B));
  }

  // --- Rodinia myocyte: 32 cells, 5 steps (genuine race).
  {
    Benchmark B;
    B.Suite = "Rodinia";
    B.Name = "myocyte";
    B.Description = "Medical simulation";
    B.UsesFloatInPaper = true;
    B.HasPlantedRace = true;
    B.Test.Name = "myocyte";
    B.Test.Source = MyocyteSource;
    B.Test.Range = range1d(32, 8);
    B.Test.Buffers.push_back(outBuffer(32));
    B.Test.Buffers.push_back(
        intBuffer(patternData(32, 0x301c1e, -50, 50)));
    B.Test.Buffers.push_back(intBuffer(std::vector<int32_t>(8, 0)));
    B.Test.Buffers.push_back(intBuffer({5}));
    Suite.push_back(std::move(B));
  }

  // --- Rodinia pathfinder: 16-wide groups, 12 rows.
  {
    Benchmark B;
    B.Suite = "Rodinia";
    B.Name = "pathfinder";
    B.Description = "Dynamic programming";
    B.Test.Name = "pathfinder";
    B.Test.Source = PathfinderSource;
    B.Test.Range = range1d(64, 16);
    B.Test.Buffers.push_back(outBuffer(64));
    B.Test.Buffers.push_back(
        intBuffer(patternData(12 * 64, 0xbf1d3e, 0, 9)));
    B.Test.Buffers.push_back(intBuffer({12}));
    Suite.push_back(std::move(B));
  }

  return Suite;
}

std::vector<Benchmark> clfuzz::emiBenchmarkSuite() {
  std::vector<Benchmark> All = buildBenchmarkSuite();
  std::vector<Benchmark> Usable;
  for (Benchmark &B : All)
    if (!B.HasPlantedRace)
      Usable.push_back(std::move(B));
  return Usable;
}
