//===- Gallery.h - The Figure 1/2 bug gallery -------------------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runnable versions of the twelve compiler-bug kernels of the paper's
/// Figures 1 (below-threshold configurations) and 2 (above-threshold
/// configurations), each annotated with the configurations it is
/// expected to misbehave on and the expected correct result. The
/// fig1/fig2 bench harnesses replay every entry against the simulated
/// zoo and print expected-vs-observed.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_CORPUS_GALLERY_H
#define CLFUZZ_CORPUS_GALLERY_H

#include "device/Driver.h"

#include <string>
#include <vector>

namespace clfuzz {

/// One gallery kernel.
struct GalleryEntry {
  std::string Id;      ///< e.g. "1(a)"
  std::string Caption; ///< paraphrase of the figure caption
  TestCase Test;

  /// What a specific configuration is expected to do with this kernel.
  struct Expectation {
    int ConfigId;
    bool Opt;
    RunStatus ExpectedStatus = RunStatus::Ok;
    /// When Ok: the result differs from the reference.
    bool ExpectWrongValue = false;
    /// When nonzero: the exact wrong out[0] the paper reports.
    uint64_t ExpectedWrongHead0 = 0;
  };
  std::vector<Expectation> Buggy;

  /// Reference out[0] (valid when HasReferenceHead0).
  uint64_t ReferenceHead0 = 0;
  bool HasReferenceHead0 = false;
};

/// Builds the Figure 1 entries (1(a) .. 1(f)).
std::vector<GalleryEntry> buildFigure1Gallery();

/// Builds the Figure 2 entries (2(a) .. 2(f)).
std::vector<GalleryEntry> buildFigure2Gallery();

} // namespace clfuzz

#endif // CLFUZZ_CORPUS_GALLERY_H
