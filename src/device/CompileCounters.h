//===- CompileCounters.h - Per-phase compile profiler -----------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cumulative per-process counters for the compile pipeline, the
/// VmCounters analogue for everything that happens before (and around)
/// a launch: parse, sema, front-end clone, pass pipeline, codegen and
/// kernel execution, each with an invocation count and total
/// wall-clock nanoseconds. Updated once per phase per cell from
/// device/Driver.cpp — never from inner loops — and surfaced by
/// `--stats` (compile_* lines) and per campaign by the scheduler's
/// around-step snapshot/delta accounting. Worker processes
/// (procs/remote backends) accumulate their own, exactly like the VM
/// counters; the coordinator only sees cells it compiled in-process.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_DEVICE_COMPILECOUNTERS_H
#define CLFUZZ_DEVICE_COMPILECOUNTERS_H

#include <cstdint>

namespace clfuzz {

/// The instrumented pipeline phases, in pipeline order.
enum class CompilePhase : uint8_t {
  Parse,   ///< parseProgram over the kernel source
  Sema,    ///< checkProgram over the parsed unit
  Clone,   ///< cloneContext of a shared front end (minicl/ASTClone.h)
  Opt,     ///< PassManager build + run
  Codegen, ///< compileToBytecode
  Exec,    ///< launchKernel (VM wall-clock as seen by the driver)
};

/// Snapshot of the per-process compile counters (monotonic).
struct CompileCounters {
  uint64_t Parses = 0;
  uint64_t ParseNs = 0;
  uint64_t Semas = 0;
  uint64_t SemaNs = 0;
  uint64_t Clones = 0;
  uint64_t CloneNs = 0;
  uint64_t Opts = 0;
  uint64_t OptNs = 0;
  uint64_t Codegens = 0;
  uint64_t CodegenNs = 0;
  uint64_t Execs = 0;
  uint64_t ExecNs = 0;

  /// Total pipeline nanoseconds; by construction the per-phase lines
  /// sum exactly to this.
  uint64_t totalNs() const {
    return ParseNs + SemaNs + CloneNs + OptNs + CodegenNs + ExecNs;
  }
};

/// Reads the process-wide counters (relaxed atomics; safe from any
/// thread).
CompileCounters compileCounters();

/// Charges one completed phase: +1 invocation, +Ns wall-clock. Called
/// by the driver; not a stable external API.
void addCompilePhaseSample(CompilePhase P, uint64_t Ns);

} // namespace clfuzz

#endif // CLFUZZ_DEVICE_COMPILECOUNTERS_H
