//===- DeviceConfig.cpp - The simulated (device, compiler) zoo --------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "device/DeviceConfig.h"

using namespace clfuzz;

const char *DeviceConfig::typeName() const {
  switch (Type) {
  case Kind::GPU:
    return "GPU";
  case Kind::CPU:
    return "CPU";
  case Kind::Accelerator:
    return "Accelerator";
  case Kind::Emulator:
    return "Emulator";
  case Kind::FPGA:
    return "FPGA";
  }
  return "?";
}

/// NVIDIA GPUs (configurations 1-4): solid optimising compiler; at -O0
/// the Figure 2(a) union-initialisation bug plus LLVM attribute ICEs;
/// at +O the safe-shift fold model and a small crash lottery.
static DeviceConfig nvidiaConfig(int Id, const std::string &Sdk,
                                 const std::string &Device,
                                 const std::string &Driver,
                                 const std::string &Os) {
  DeviceConfig C;
  C.Id = Id;
  C.Sdk = Sdk;
  C.Device = Device;
  C.Driver = Driver;
  C.OpenClVersion = "1.1";
  C.Os = Os;
  C.Type = DeviceConfig::Kind::GPU;
  C.Salt = 0x1000 + Id;
  C.PaperAboveThreshold = true;
  C.IceMessages = {"Wrong type for attribute zeroext",
                   "Wrong type for attribute signext",
                   "Attributes after last parameter!"};
  C.BugsO0.Layout.UnionInitBug = true;
  C.BugsO0.EmiDceBugRate = 0.008;
  C.BugsO0.BuildFailLottery = 0.04;
  C.BugsO0.CrashLottery = 0.045;
  C.BugsO0.SpeedFactor = 0.16;
  C.BugsO2.ShiftSafeFoldBug = true;
  C.BugsO2.EmiDceBugRate = 0.008;
  C.BugsO2.CrashLottery = 0.055;
  C.BugsO2.SpeedFactor = 8.0;
  return C;
}

/// AMD configurations (5, 6 GPU; 16 CPU): the Figure 1(a) char-struct
/// bug with optimisations, irreducible-control-flow rejection at +O,
/// and the paper's machine-crash problem as a high crash lottery.
static DeviceConfig amdConfig(int Id, const std::string &Device,
                              DeviceConfig::Kind Type) {
  DeviceConfig C;
  C.Id = Id;
  C.Sdk = "AMD 2.9-1";
  C.Device = Device;
  C.Driver = "Catalyst 14.9";
  C.OpenClVersion = "1.2";
  C.Os = "Windows 7 Enterprise";
  C.Type = Type;
  C.Salt = 0x2000 + Id;
  C.PaperAboveThreshold = false;
  C.IceMessages = {"unsupported irreducible control flow detected"};
  C.BugsO0.CrashLottery = 0.23;
  C.BugsO0.SpeedFactor = 2.0;
  C.BugsO2.Layout.CharStructInitBug = true;
  C.BugsO2.BuildFailLottery = 0.16;
  C.BugsO2.CrashLottery = 0.23;
  C.BugsO2.SpeedFactor = 2.5;
  return C;
}

/// Intel GPU configurations (7, 8): struct miscompiles at both levels,
/// machine crashes, and the Figure 1(e) compile hang on infinite
/// loops.
static DeviceConfig intelGpuConfig(int Id, const std::string &Device,
                                   const std::string &Driver,
                                   const std::string &Os) {
  DeviceConfig C;
  C.Id = Id;
  C.Sdk = "Intel 4.6";
  C.Device = Device;
  C.Driver = Driver;
  C.OpenClVersion = "1.2";
  C.Os = Os;
  C.Type = DeviceConfig::Kind::GPU;
  C.Salt = 0x3000 + Id;
  C.PaperAboveThreshold = false;
  C.IceMessages = {"internal error: backend selection failure"};
  for (DeviceBugModel *B : {&C.BugsO0, &C.BugsO2}) {
    B->Layout.CharStructInitBug = true;
    B->Layout.UnionInitBug = true;
    B->CompileHangOnInfiniteLoop = true;
    B->CrashLottery = 0.16;
    B->SpeedFactor = 2.0;
  }
  return C;
}

/// The anonymous GPU vendor (9-11). Configuration 9 carries driver
/// fixes (above threshold) but keeps the Figure 2(e) comparison bug;
/// 10 and 11 are older drivers with -O0 struct miscompiles and enough
/// instability to fall below the threshold.
static DeviceConfig anonGpuConfig(int Id, const std::string &Driver,
                                  bool Fixed) {
  DeviceConfig C;
  C.Id = Id;
  C.Sdk = "Anon. SDK 1";
  C.Device = "Anon. device 1";
  C.Driver = Driver;
  C.OpenClVersion = "1.1";
  C.Os = "Linux (anon. version)";
  C.Type = DeviceConfig::Kind::GPU;
  C.Salt = 0x4000 + Id;
  C.PaperAboveThreshold = Fixed;
  C.IceMessages = {"internal compiler error (anonymised)"};
  if (Fixed) {
    // Config 9: no build failures at all (the vendor fuzzes in-house,
    // §7.3), a high wrong-code rate from the comparison model, heavy
    // timeouts.
    for (DeviceBugModel *B : {&C.BugsO0, &C.BugsO2}) {
      B->CmpMinusOneBug = true;
      B->CrashLottery = 0.03;
      B->SpeedFactor = 0.05;
    }
  } else {
    C.BugsO0.Layout.CharStructInitBug = true;
    C.BugsO0.Layout.UnionInitBug = true;
    C.BugsO0.VolatileStructCopyBug = true; // Figure 1(b)
    C.BugsO0.CmpMinusOneBug = true;
    C.BugsO0.BuildFailLottery = 0.15;
    C.BugsO0.CrashLottery = 0.12;
    C.BugsO0.SpeedFactor = 0.3;
    C.BugsO2.CmpMinusOneBug = true;
    C.BugsO2.BuildFailLottery = 0.15;
    C.BugsO2.CrashLottery = 0.12;
    C.BugsO2.SpeedFactor = 0.3;
  }
  return C;
}

/// Intel CPU configurations 12/13: the Figure 2(c) barrier-call bug at
/// -O0, pass ICEs ("Intel OpenCL Barrier", "Intel OpenCL Vectorizer")
/// at +O.
static DeviceConfig intelCpuConfig(int Id, const std::string &Driver,
                                   const std::string &OclVersion) {
  DeviceConfig C;
  C.Id = Id;
  C.Sdk = "Intel 4.6";
  C.Device = "Intel Core i7-4770 @ 3.40 GHz";
  C.Driver = Driver;
  C.OpenClVersion = OclVersion;
  C.Os = "Windows 7 Enterprise";
  C.Type = DeviceConfig::Kind::CPU;
  C.Salt = 0x5000 + Id;
  C.PaperAboveThreshold = true;
  C.IceMessages = {
      "Both operands to ICmp instruction are not of the same type!",
      "Call parameter type does not match function signature!",
      "Instruction does not dominate all uses!",
      "Intel OpenCL Barrier pass failure",
      "Intel OpenCL Vectorizer pass failure"};
  C.BugsO0.BarrierCallRetvalBug = true;
  C.BugsO0.EmiDceBugRate = 0.012;
  C.BugsO0.CrashLottery = 0.085;
  C.BugsO0.SpeedFactor = 0.15;
  C.BugsO2.EmiDceBugRate = 0.012;
  C.BugsO2.BuildFailLottery = 0.004;
  C.BugsO2.CrashLottery = 0.065;
  C.BugsO2.SpeedFactor = 0.06;
  return C;
}

std::vector<DeviceConfig> clfuzz::buildConfigRegistry() {
  std::vector<DeviceConfig> R;

  // 1-4: NVIDIA GPUs.
  R.push_back(nvidiaConfig(1, "NVIDIA 6.5.19", "NVIDIA GeForce GTX Titan",
                           "343.22", "Ubuntu 14.04.1 LTS"));
  R.push_back(nvidiaConfig(2, "NVIDIA 6.5.19", "NVIDIA GeForce GTX 770",
                           "343.22", "Ubuntu 14.04.1 LTS"));
  R.push_back(nvidiaConfig(3, "NVIDIA 7.0.28", "NVIDIA Tesla M2050",
                           "346.47", "RHEL Server 6.5"));
  R.push_back(nvidiaConfig(4, "NVIDIA 7.0.28", "NVIDIA Tesla K40c",
                           "346.47", "RHEL Server 6.5"));
  // NVIDIA 346.47 fixed the reported build failures (§6).
  R[2].BugsO0.BuildFailLottery = 0.0;
  R[3].BugsO0.BuildFailLottery = 0.0;

  // 5-6: AMD GPUs.
  R.push_back(amdConfig(5, "AMD Radeon HD7970 GHz edition",
                        DeviceConfig::Kind::GPU));
  R.push_back(amdConfig(6, "ATI Radeon HD 6570 650MHz",
                        DeviceConfig::Kind::GPU));

  // 7-8: Intel GPUs.
  R.push_back(intelGpuConfig(7, "Intel HD Graphics 4600",
                             "10.18.10.3960", "Windows 7 Enterprise"));
  R.push_back(intelGpuConfig(8, "Intel HD Graphics 4000",
                             "10.18.10.3412", "Windows 8.1 Pro"));

  // 9-11: anonymous GPU vendor.
  R.push_back(anonGpuConfig(9, "Anon. driver 1c", /*Fixed=*/true));
  R.push_back(anonGpuConfig(10, "Anon. driver 1b", /*Fixed=*/false));
  R.push_back(anonGpuConfig(11, "Anon. driver 1a", /*Fixed=*/false));

  // 12-13: Intel i7 CPUs (two driver versions).
  R.push_back(intelCpuConfig(12, "4.6.0.92", "2.0"));
  R.push_back(intelCpuConfig(13, "4.2.0.76", "1.2"));

  // 14: Intel i5 CPU - barrier-in-function segfaults at -O0; the
  // Figure 2(b) rotate fold and safe-shift fold with optimisations.
  // Figure 2(b) reports 14 wrong at both levels, so the rotate fold
  // runs in a mandatory constant-folding stage we model by enabling it
  // at -O0 too (the driver's "-O0" evidently still folds constants; we
  // schedule a fold-only pipeline for it).
  {
    DeviceConfig C;
    C.Id = 14;
    C.Sdk = "Intel 4.6";
    C.Device = "Intel Core i5-3317U @ 1.70 GHz";
    C.Driver = "3.0.1.10878";
    C.OpenClVersion = "1.2";
    C.Os = "Windows 8.1 Pro";
    C.Type = DeviceConfig::Kind::CPU;
    C.Salt = 0x5014;
    C.PaperAboveThreshold = true;
    C.IceMessages = {"barrier lowering assertion failure"};
    C.BugsO0.BarrierInFunctionCrash = true;
    C.BugsO0.RotateFoldBug = true;
    C.BugsO0.CrashLottery = 0.006;
    C.BugsO0.BuildFailLottery = 0.002;
    C.BugsO0.SpeedFactor = 0.14;
    C.BugsO2.RotateFoldBug = true;
    C.BugsO2.ShiftSafeFoldBug = true;
    C.BugsO2.CrashLottery = 0.03;
    C.BugsO2.BuildFailLottery = 0.008;
    C.BugsO2.SpeedFactor = 0.12;
    R.push_back(std::move(C));
  }

  // 15: Intel Xeon CPU - rejects legal int/size_t mixtures at both
  // levels (identical bf rates, §7.3); barrier-in-function segfaults
  // at -O0; safe-shift fold at +O.
  {
    DeviceConfig C;
    C.Id = 15;
    C.Sdk = "Intel XE 2013 R20";
    C.Device = "Intel Xeon X5650 @ 2.67GHz";
    C.Driver = "1.2 build 56860";
    C.OpenClVersion = "1.2";
    C.Os = "RHEL Server 6.5";
    C.Type = DeviceConfig::Kind::CPU;
    C.Salt = 0x5015;
    C.PaperAboveThreshold = true;
    C.IceMessages = {
        "error: invalid operands to binary expression "
        "('int' and 'size_t')"};
    C.BugsO0.RejectSizeTMix = true;
    C.BugsO0.BarrierInFunctionCrash = true;
    C.BugsO0.CrashLottery = 0.008;
    C.BugsO0.SpeedFactor = 0.12;
    C.BugsO2.RejectSizeTMix = true;
    C.BugsO2.ShiftSafeFoldBug = true;
    C.BugsO2.CrashLottery = 0.025;
    C.BugsO2.SpeedFactor = 0.08;
    R.push_back(std::move(C));
  }

  // 16: AMD compiler on an Intel Xeon CPU (same driver as 5/6).
  {
    DeviceConfig C = amdConfig(16, "Intel Xeon E5-2609 v2 @ 2.50GHz",
                               DeviceConfig::Kind::CPU);
    C.Os = "Windows 7 Enterprise";
    R.push_back(std::move(C));
  }

  // 17: anonymous CPU vendor - the Figure 1(d) struct-plus-barrier
  // miscompile at both levels.
  {
    DeviceConfig C;
    C.Id = 17;
    C.Sdk = "Anon. SDK 2";
    C.Device = "Anon. device 2";
    C.Driver = "Anon. driver 2";
    C.OpenClVersion = "1.1";
    C.Os = "Linux (anon. verson)";
    C.Type = DeviceConfig::Kind::CPU;
    C.Salt = 0x6017;
    C.PaperAboveThreshold = false;
    C.IceMessages = {"internal compiler error (anonymised)"};
    for (DeviceBugModel *B : {&C.BugsO0, &C.BugsO2}) {
      B->BarrierCallRetvalBug = true;
      B->Layout.CharStructInitBug = true;
      B->BuildFailLottery = 0.08;
      B->CrashLottery = 0.14;
      B->SpeedFactor = 0.8;
    }
    R.push_back(std::move(C));
  }

  // 18: Intel Xeon Phi - prohibitively slow compilation of large
  // structs with barriers (Figure 1(f)) puts it below the threshold.
  {
    DeviceConfig C;
    C.Id = 18;
    C.Sdk = "Intel XE 2013 R2";
    C.Device = "Intel Xeon Phi";
    C.Driver = "5889-14";
    C.OpenClVersion = "1.2";
    C.Os = "RHEL Server 6.5";
    C.Type = DeviceConfig::Kind::Accelerator;
    C.Salt = 0x7018;
    C.PaperAboveThreshold = false;
    C.IceMessages = {"offload backend failure"};
    C.BugsO0.CrashLottery = 0.10;
    C.BugsO0.SpeedFactor = 0.8;
    C.BugsO2.SlowStructBarrierCompile = true;
    C.BugsO2.CrashLottery = 0.10;
    C.BugsO2.SpeedFactor = 0.8;
    R.push_back(std::move(C));
  }

  // 19: Oclgrind - no optimiser; the Figure 2(f) comma bug and a
  // vector swizzle defect give the very high wrong-code rate of §7.3;
  // slow emulation gives the timeout rate.
  {
    DeviceConfig C;
    C.Id = 19;
    C.Sdk = "Intel 4.6";
    C.Device = "Oclgrind v14.5";
    C.Driver = "LLVM 3.2, SPIR 1.2";
    C.OpenClVersion = "1.2";
    C.Os = "Ubuntu 14.04";
    C.Type = DeviceConfig::Kind::Emulator;
    C.Salt = 0x8019;
    C.PaperAboveThreshold = true;
    C.NoOptimizer = true;
    for (DeviceBugModel *B : {&C.BugsO0, &C.BugsO2}) {
      B->CommaDropsRhsBug = true;
      B->SwizzleHighLaneBug = true;
      B->CrashLottery = 0.002;
      B->SpeedFactor = 0.10;
    }
    R.push_back(std::move(C));
  }

  // 20-21: Altera FPGA toolchain (emulated and real). Both reject
  // vector logical operations and vectors in structs (Figure 1(c));
  // the real FPGA flow mostly fails outright (§6).
  for (int Id : {20, 21}) {
    DeviceConfig C;
    C.Id = Id;
    C.Sdk = "Altera 14.0";
    C.Device = Id == 20 ? "Altera PCIe-385N D5 (Emulated)"
                        : "Altera PCIe-385N D5";
    C.Driver = "aoc 14.0 build 200";
    C.OpenClVersion = "1.0";
    C.Os = "CentOS 6.5";
    C.Type = Id == 20 ? DeviceConfig::Kind::Emulator
                      : DeviceConfig::Kind::FPGA;
    C.Salt = 0x9000 + Id;
    C.PaperAboveThreshold = false;
    C.IceMessages = {"LLVM IR generation error",
                     "aoc: internal error during RTL elaboration"};
    for (DeviceBugModel *B : {&C.BugsO0, &C.BugsO2}) {
      B->RejectVectorLogicalOps = true;
      B->RejectVectorsInStructs = true;
      B->BuildFailLottery = Id == 20 ? 0.12 : 0.55;
      B->CrashLottery = Id == 20 ? 0.05 : 0.25;
      B->SpeedFactor = 0.5;
    }
    R.push_back(std::move(C));
  }

  return R;
}

const DeviceConfig &
clfuzz::configById(const std::vector<DeviceConfig> &Registry, int Id) {
  for (const DeviceConfig &C : Registry)
    if (C.Id == Id)
      return C;
  assert(false && "unknown configuration id");
  return Registry.front();
}

std::vector<int> clfuzz::paperAboveThresholdIds() {
  return {1, 2, 3, 4, 9, 12, 13, 14, 15, 19};
}
