//===- CompileCounters.cpp - Per-phase compile profiler ----------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "device/CompileCounters.h"

#include <atomic>

using namespace clfuzz;

namespace {

struct PhaseCell {
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Ns{0};
};

// Indexed by CompilePhase.
PhaseCell GPhases[6];

} // namespace

void clfuzz::addCompilePhaseSample(CompilePhase P, uint64_t Ns) {
  PhaseCell &C = GPhases[static_cast<unsigned>(P)];
  C.Count.fetch_add(1, std::memory_order_relaxed);
  C.Ns.fetch_add(Ns, std::memory_order_relaxed);
}

CompileCounters clfuzz::compileCounters() {
  auto Read = [](CompilePhase P, uint64_t &Count, uint64_t &Ns) {
    const PhaseCell &C = GPhases[static_cast<unsigned>(P)];
    Count = C.Count.load(std::memory_order_relaxed);
    Ns = C.Ns.load(std::memory_order_relaxed);
  };
  CompileCounters S;
  Read(CompilePhase::Parse, S.Parses, S.ParseNs);
  Read(CompilePhase::Sema, S.Semas, S.SemaNs);
  Read(CompilePhase::Clone, S.Clones, S.CloneNs);
  Read(CompilePhase::Opt, S.Opts, S.OptNs);
  Read(CompilePhase::Codegen, S.Codegens, S.CodegenNs);
  Read(CompilePhase::Exec, S.Execs, S.ExecNs);
  return S;
}
