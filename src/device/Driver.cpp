//===- Driver.cpp - Simulated OpenCL driver (compile + run) -----------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "device/Driver.h"
#include "device/CompileCounters.h"
#include "minicl/ASTClone.h"
#include "minicl/ASTQueries.h"
#include "minicl/Parser.h"
#include "minicl/Sema.h"
#include "opt/ConstEval.h"
#include "opt/Pass.h"
#include "support/Hash.h"
#include "vm/Codegen.h"
#include "vm/VM.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>

using namespace clfuzz;

const char *clfuzz::runStatusName(RunStatus S) {
  switch (S) {
  case RunStatus::BuildFailure:
    return "bf";
  case RunStatus::Crash:
    return "c";
  case RunStatus::Timeout:
    return "to";
  case RunStatus::Ok:
    return "ok";
  }
  return "?";
}

TestCase TestCase::fromGenerated(const GeneratedKernel &K) {
  TestCase T;
  T.Name = std::string(genModeName(K.Mode)) + " seed " +
           std::to_string(K.Seed);
  T.Source = K.Source;
  T.Range = K.Range;
  T.Buffers = K.Buffers;
  return T;
}

namespace {

/// Phase-timing scope: charges elapsed wall-clock to one CompilePhase
/// counter on destruction.
class PhaseTimer {
public:
  explicit PhaseTimer(CompilePhase P)
      : P(P), Start(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    addCompilePhaseSample(
        P, static_cast<uint64_t>(
               std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now() - Start)
                   .count()));
  }

private:
  CompilePhase P;
  std::chrono::steady_clock::time_point Start;
};

/// Strips implicit casts for pattern checks against the pre-conversion
/// operand types.
const Expr *stripImplicit(const Expr *E) {
  while (const auto *ICE = dyn_cast<ImplicitCastExpr>(E))
    E = ICE->getSubExpr();
  return E;
}

/// True if the expression subtree contains a size_t-typed node (a
/// work-item query or arithmetic over one).
bool mentionsSizeT(const Expr *E) {
  if (const auto *ST = dyn_cast_if_present<ScalarType>(E->getType()))
    if (ST->isSizeT())
      return true;
  bool Found = false;
  // Cheap recursion through the few child kinds that matter.
  switch (E->getKind()) {
  case Expr::ExprKind::Unary:
    Found = mentionsSizeT(cast<UnaryExpr>(E)->getSubExpr());
    break;
  case Expr::ExprKind::Binary:
    Found = mentionsSizeT(cast<BinaryExpr>(E)->getLHS()) ||
            mentionsSizeT(cast<BinaryExpr>(E)->getRHS());
    break;
  case Expr::ExprKind::ImplicitCast:
    Found = mentionsSizeT(cast<ImplicitCastExpr>(E)->getSubExpr());
    break;
  default:
    break;
  }
  return Found;
}

/// Front-end defect checks of the configuration bug models. Returns a
/// non-empty message when the program is rejected.
std::string frontEndChecks(const ASTContext &Ctx,
                           const DeviceBugModel &Bugs) {
  std::string Error;

  if (Bugs.RejectVectorsInStructs) {
    for (const RecordType *RT : Ctx.types().records())
      for (const RecordField &F : RT->fields())
        if (F.Ty->isVector())
          return "internal error: LLVM IR generation failed for vector "
                 "member '" +
                 F.Name + "'";
  }

  for (const FunctionDecl *F : Ctx.program().functions()) {
    if (!F->getBody() || !Error.empty())
      break;
    forEachExprUntil(F->getBody(), [&](const Expr *E) -> bool {
      if (Bugs.RejectSizeTMix) {
        // Compound assignments mixing int with size_t (`x |= gx`, §6).
        if (const auto *A = dyn_cast<AssignExpr>(E)) {
          if (A->getOp() != AssignOp::Assign) {
            const auto *LS = dyn_cast_if_present<ScalarType>(
                A->getLHS()->getType());
            if (LS && LS->isSigned() && !LS->isSizeT() &&
                mentionsSizeT(stripImplicit(A->getRHS()))) {
              Error = "error: invalid operands to binary expression "
                      "('int' and 'size_t')";
              return true;
            }
          }
        }
      }
      if (const auto *B = dyn_cast<BinaryExpr>(E)) {
        if (Bugs.RejectVectorLogicalOps && isLogicalOp(B->getOp()) &&
            B->getLHS()->getType()->isVector()) {
          Error = "error: logical operation on vector operands is not "
                  "supported";
          return true;
        }
        if (Bugs.RejectSizeTMix && !isComparisonOp(B->getOp()) &&
            !isLogicalOp(B->getOp()) && B->getOp() != BinOp::Comma) {
          const Expr *L = stripImplicit(B->getLHS());
          const Expr *R = stripImplicit(B->getRHS());
          const auto *LS = dyn_cast_if_present<ScalarType>(L->getType());
          const auto *RS = dyn_cast_if_present<ScalarType>(R->getType());
          if (LS && RS) {
            bool Mixes = (mentionsSizeT(L) && RS->isSigned() &&
                          !RS->isSizeT()) ||
                         (mentionsSizeT(R) && LS->isSigned() &&
                          !LS->isSizeT());
            if (Mixes) {
              Error = "error: invalid operands to binary expression "
                      "('int' and 'size_t')";
              return true;
            }
          }
        }
      }
      return false;
    });
    if (Bugs.CompileHangOnInfiniteLoop && Error.empty()) {
      forEachStmtUntil(F->getBody(), [&](const Stmt *S) -> bool {
        const Expr *Cond = nullptr;
        if (const auto *W = dyn_cast<WhileStmt>(S))
          Cond = W->getCond();
        else if (const auto *Fo = dyn_cast<ForStmt>(S))
          Cond = Fo->getCond();
        if (!Cond) {
          if (isa<ForStmt>(S) && !cast<ForStmt>(S)->getCond()) {
            Error = "<compile hang>"; // for(;;)
            return true;
          }
          return false;
        }
        if (auto V = evalConstExpr(Cond))
          if (V->Lanes[0] != 0) {
            Error = "<compile hang>";
            return true;
          }
        return false;
      });
    }
  }
  return Error;
}

/// True when the Figure 1(f) slow-compilation model triggers: a large
/// record together with any barrier.
bool slowStructBarrierTriggers(const ASTContext &Ctx) {
  LayoutEngine L;
  bool BigStruct = false;
  for (const RecordType *RT : Ctx.types().records())
    if (RT->isComplete() && !RT->isUnion() && L.sizeOf(RT) >= 64)
      BigStruct = true;
  if (!BigStruct)
    return false;
  for (const FunctionDecl *F : Ctx.program().functions())
    if (functionContainsBarrier(F))
      return true;
  return false;
}

/// Deterministic lottery draw in [0,1) keyed on (source, salt, opt).
double lotteryDraw(uint64_t SourceHash, uint64_t Salt, bool Opt,
                   uint64_t Stream) {
  Fnv64 H;
  H.addU64(SourceHash);
  H.addU64(Salt);
  H.addU64(Opt ? 0x5eed : 0xdead);
  H.addU64(Stream);
  return static_cast<double>(H.value() >> 11) * 0x1.0p-53;
}

/// True when compilation with \p Bugs at \p RunOptimizer schedules no
/// pass at all, i.e. the AST that leaves the front end is the AST the
/// code generator sees. Mirrors buildPipeline: passes are added for
/// the four o2 stages, BarrierCallRetvalBug, EmiDceBugRate, and the
/// RotateFoldBug-forced constant folder.
bool pipelineIsEmpty(const DeviceBugModel &Bugs, bool RunOptimizer) {
  return !RunOptimizer && !Bugs.RotateFoldBug &&
         !Bugs.BarrierCallRetvalBug && Bugs.EmiDceBugRate == 0.0 &&
         !Bugs.BreakOnShiftBug && !Bugs.BreakOnAndBug &&
         !Bugs.ShiftMarkBug && !Bugs.MarkBreakBug;
}

/// The PassOptions the pipeline stage runs with — shared between
/// compileAndRun and the exported passPipelineOptionsFor so the
/// triage bisector names exactly the passes a cell executed.
PassOptions passPipelineOptions(const DeviceBugModel &Bugs,
                                bool RunOptimizer, uint64_t Salt,
                                uint64_t SourceHash) {
  PassOptions PO = RunOptimizer ? PassOptions::o2() : PassOptions::o0();
  if (!RunOptimizer && Bugs.RotateFoldBug) {
    // Mandatory constant-folding stage (see configuration 14).
    PO.EnableConstFold = true;
  }
  PO.RotateFoldBug = Bugs.RotateFoldBug;
  PO.ShiftSafeFoldBug = Bugs.ShiftSafeFoldBug;
  PO.CmpMinusOneBug = Bugs.CmpMinusOneBug;
  PO.BarrierCallRetvalBug = Bugs.BarrierCallRetvalBug;
  PO.EmiDceBugRate = Bugs.EmiDceBugRate;
  PO.BreakOnShiftBug = Bugs.BreakOnShiftBug;
  PO.BreakOnAndBug = Bugs.BreakOnAndBug;
  PO.ShiftMarkBug = Bugs.ShiftMarkBug;
  PO.MarkBreakBug = Bugs.MarkBreakBug;
  // Mix the variant's source into the salt: the defect depends on the
  // exact surrounding code, which is what makes it EMI-sensitive.
  PO.BugSalt = Salt ^ SourceHash;
  return PO;
}

RunOutcome compileAndRun(const TestCase &Test, const DeviceBugModel &Bugs,
                         bool RunOptimizer, bool OptFlagForLottery,
                         uint64_t Salt,
                         const std::vector<std::string> &IceMessages,
                         const RunSettings &Settings,
                         const TestFrontEnd *SharedFE) {
  RunOutcome Out;
  uint64_t SourceHash = fnv64(Test.Source);
  // Geometry hash: identical across EMI variants of one base. Crash
  // and ICE lotteries draw a base-level susceptibility from it and a
  // per-variant coin from the source, so flaky failures cluster per
  // base (as real driver instability does) while the marginal rate in
  // differential campaigns stays at the configured value.
  Fnv64 GH;
  for (int I = 0; I != 3; ++I) {
    GH.addU64(Test.Range.Global[I]);
    GH.addU64(Test.Range.Local[I]);
  }
  for (const BufferSpec &B : Test.Buffers)
    GH.addU64(B.InitBytes.size());
  uint64_t GeomHash = GH.value();
  auto SplitLottery = [&](double Rate, uint64_t Stream) {
    if (Rate <= 0.0)
      return false;
    double BaseDraw = lotteryDraw(GeomHash, Salt, OptFlagForLottery,
                                  Stream);
    double VariantDraw = lotteryDraw(SourceHash, Salt,
                                     OptFlagForLottery, Stream + 100);
    return BaseDraw < 2.0 * Rate && VariantDraw < 0.5;
  };

  // --- 1. front end (parse + sema). A shared front end replaces the
  // per-cell re-parse. Pass-free cells read it directly: codegen and
  // the front-end defect checks never mutate. Cells whose pipeline
  // mutates the AST deep-clone it instead — structurally identical to
  // what a re-parse would build, so outputs are byte-identical — and
  // hand the private copy to the PassManager, leaving the shared AST
  // pristine for the other cells of the column.
  bool PipelineEmpty = pipelineIsEmpty(Bugs, RunOptimizer);
  ASTContext OwnCtx;
  std::unique_ptr<ASTContext> ClonedCtx;
  ASTContext *CtxPtr = nullptr;
  if (SharedFE && (PipelineEmpty || compileCloneEnabled())) {
    if (!SharedFE->ok()) {
      Out.Status = RunStatus::BuildFailure;
      Out.Message = SharedFE->diagnostics();
      return Out;
    }
    if (PipelineEmpty) {
      CtxPtr = &SharedFE->context();
    } else {
      PhaseTimer T(CompilePhase::Clone);
      ClonedCtx = cloneContext(SharedFE->context());
      CtxPtr = ClonedCtx.get();
    }
  } else {
    DiagEngine Diags;
    bool FeOk;
    {
      PhaseTimer T(CompilePhase::Parse);
      FeOk = parseProgram(Test.Source, OwnCtx, Diags);
    }
    if (FeOk) {
      PhaseTimer T(CompilePhase::Sema);
      FeOk = checkProgram(OwnCtx, Diags);
    }
    if (!FeOk) {
      Out.Status = RunStatus::BuildFailure;
      Out.Message = Diags.str();
      return Out;
    }
    CtxPtr = &OwnCtx;
  }
  ASTContext &Ctx = *CtxPtr;

  // --- 2. configuration-specific front-end defects
  std::string FeError = frontEndChecks(Ctx, Bugs);
  if (FeError == "<compile hang>") {
    Out.Status = RunStatus::Timeout;
    Out.Message = "compiler did not terminate";
    return Out;
  }
  if (!FeError.empty()) {
    Out.Status = RunStatus::BuildFailure;
    Out.Message = FeError;
    return Out;
  }
  if (Bugs.SlowStructBarrierCompile && slowStructBarrierTriggers(Ctx)) {
    Out.Status = RunStatus::Timeout;
    Out.Message = "compilation exceeded the time limit (large struct "
                  "with barrier)";
    return Out;
  }
  if (SplitLottery(Bugs.BuildFailLottery, 1)) {
    Out.Status = RunStatus::BuildFailure;
    Out.Message = IceMessages.empty()
                      ? "internal compiler error"
                      : IceMessages[fnv64(Test.Source) %
                                    IceMessages.size()];
    return Out;
  }

  // --- 3. pass pipeline (skipped outright when pipelineIsEmpty
  // guarantees buildPipeline would schedule nothing; running an empty
  // PassManager is a no-op, so skipping changes nothing).
  if (!PipelineEmpty) {
    PhaseTimer T(CompilePhase::Opt);
    PassOptions PO =
        passPipelineOptions(Bugs, RunOptimizer, Salt, SourceHash);
    PassManager PM = buildPipeline(PO, Ctx);
    // The triage bisector's subset probes select pipeline positions
    // via Settings.PassMask; the default mask runs everything.
    PM.run(Ctx, Settings.PassMask);
  }

  // --- 4. code generation
  CodegenOptions CG;
  CG.Layout = Bugs.Layout;
  CG.CommaDropsRhsBug = Bugs.CommaDropsRhsBug;
  CG.SwizzleHighLaneBug = Bugs.SwizzleHighLaneBug;
  CG.VolatileStructCopyBug = Bugs.VolatileStructCopyBug;
  CodegenResult CR = [&] {
    PhaseTimer T(CompilePhase::Codegen);
    return compileToBytecode(Ctx, CG);
  }();
  if (!CR.Ok) {
    Out.Status = RunStatus::BuildFailure;
    Out.Message = CR.Error;
    return Out;
  }

  // --- 5. runtime defect models
  if (Bugs.BarrierInFunctionCrash) {
    for (const FunctionDecl *F : Ctx.program().functions())
      if (!F->isKernel() && functionContainsBarrier(F)) {
        Out.Status = RunStatus::Crash;
        Out.Message = "segmentation fault (barrier inside function)";
        return Out;
      }
  }
  if (SplitLottery(Bugs.CrashLottery, 2)) {
    Out.Status = RunStatus::Crash;
    Out.Message = "runtime crash (driver instability model)";
    return Out;
  }

  // --- 6. host setup and launch
  std::vector<Buffer> Buffers;
  int OutIndex = -1;
  for (const BufferSpec &Spec : Test.Buffers) {
    Buffer B;
    B.Space = Spec.Space;
    B.Bytes = Spec.InitBytes;
    if (Spec.IsDeadArray && Settings.InvertDead) {
      // dead[j] = d-1-j makes every EMI guard true.
      size_t N = B.Bytes.size() / 4;
      for (size_t J = 0; J != N; ++J) {
        int32_t V = static_cast<int32_t>(N - 1 - J);
        std::memcpy(&B.Bytes[J * 4], &V, 4);
      }
    }
    if (Spec.IsOutput)
      OutIndex = static_cast<int>(Buffers.size());
    Buffers.push_back(std::move(B));
  }
  std::vector<KernelArg> Args;
  for (unsigned I = 0; I != Buffers.size(); ++I)
    Args.push_back(KernelArg::buffer(I));

  LaunchOptions LO;
  LO.Range = Test.Range;
  LO.SchedulerSeed = Settings.SchedulerSeed;
  LO.DetectRaces = Settings.DetectRaces;
  LO.StepBudget = static_cast<uint64_t>(
      static_cast<double>(Settings.BaseStepBudget) * Bugs.SpeedFactor);
  if (LO.StepBudget == 0)
    LO.StepBudget = 1;

  LaunchResult LR = [&] {
    PhaseTimer T(CompilePhase::Exec);
    return launchKernel(CR.Module, Buffers, Args, LO);
  }();
  Out.Steps = LR.StepsExecuted;
  Out.RaceFound = LR.RaceFound;
  Out.RaceMessage = LR.RaceMessage;
  switch (LR.Status) {
  case LaunchStatus::Success:
    break;
  case LaunchStatus::Timeout:
    Out.Status = RunStatus::Timeout;
    Out.Message = LR.Message;
    return Out;
  case LaunchStatus::Trap:
  case LaunchStatus::BarrierDivergence:
  case LaunchStatus::InvalidLaunch:
    Out.Status = RunStatus::Crash;
    Out.Message = LR.Message;
    return Out;
  }

  // --- 7. read back the printed result
  Out.Status = RunStatus::Ok;
  if (OutIndex >= 0) {
    const Buffer &OB = Buffers[OutIndex];
    Out.OutputHash = fnv64(OB.Bytes.data(), OB.Bytes.size());
    size_t Words = OB.Bytes.size() / 8;
    for (size_t I = 0; I != std::min<size_t>(Words, 8); ++I)
      Out.OutputHead.push_back(OB.readScalar(I * 8, 8));
  }
  return Out;
}

} // namespace

TestFrontEnd::TestFrontEnd(const TestCase &Test)
    : Ctx(std::make_unique<ASTContext>()) {
  DiagEngine Diags;
  {
    PhaseTimer T(CompilePhase::Parse);
    ParseOk = parseProgram(Test.Source, *Ctx, Diags);
  }
  if (ParseOk) {
    PhaseTimer T(CompilePhase::Sema);
    ParseOk = checkProgram(*Ctx, Diags);
  }
  if (!ParseOk)
    this->Diags = Diags.str();
}

TestFrontEnd::~TestFrontEnd() = default;
TestFrontEnd::TestFrontEnd(TestFrontEnd &&) noexcept = default;
TestFrontEnd &TestFrontEnd::operator=(TestFrontEnd &&) noexcept = default;

namespace {

/// -1 = unresolved (consult the environment once), else 0/1.
std::atomic<int> GCloneMode{-1};

} // namespace

bool clfuzz::compileCloneEnabled() {
  int Mode = GCloneMode.load(std::memory_order_relaxed);
  if (Mode < 0) {
    Mode = 1;
    if (const char *Env = std::getenv("CLFUZZ_COMPILE_CLONE"))
      if (std::strcmp(Env, "0") == 0 || std::strcmp(Env, "off") == 0 ||
          std::strcmp(Env, "false") == 0)
        Mode = 0;
    GCloneMode.store(Mode, std::memory_order_relaxed);
  }
  return Mode != 0;
}

void clfuzz::setCompileCloneEnabled(bool Enabled) {
  GCloneMode.store(Enabled ? 1 : 0, std::memory_order_relaxed);
}

FrontEndUse clfuzz::frontEndUseFor(const DeviceConfig *Config,
                                   bool OptEnabled) {
  bool Empty;
  if (!Config) {
    // Reference runs use the clean bug model: its pipeline is empty
    // exactly when the optimiser is off.
    Empty = !OptEnabled;
  } else {
    bool RunOptimizer = OptEnabled && !Config->NoOptimizer;
    Empty = pipelineIsEmpty(Config->bugs(OptEnabled), RunOptimizer);
  }
  if (Empty)
    return FrontEndUse::ReadShared;
  return compileCloneEnabled() ? FrontEndUse::ClonePrivate
                               : FrontEndUse::Reparse;
}

RunOutcome clfuzz::runTestOnConfig(const TestCase &Test,
                                   const DeviceConfig &Config,
                                   bool OptEnabled,
                                   const RunSettings &Settings,
                                   const TestFrontEnd *SharedFE) {
  const DeviceBugModel &Bugs = Config.bugs(OptEnabled);
  bool RunOptimizer = OptEnabled && !Config.NoOptimizer;
  return compileAndRun(Test, Bugs, RunOptimizer, OptEnabled, Config.Salt,
                       Config.IceMessages, Settings, SharedFE);
}

PassOptions clfuzz::passPipelineOptionsFor(const DeviceConfig &Config,
                                           bool OptEnabled,
                                           const TestCase &Test) {
  const DeviceBugModel &Bugs = Config.bugs(OptEnabled);
  bool RunOptimizer = OptEnabled && !Config.NoOptimizer;
  return passPipelineOptions(Bugs, RunOptimizer, Config.Salt,
                             fnv64(Test.Source));
}

RunOutcome clfuzz::runTestOnReference(const TestCase &Test, bool Optimize,
                                      const RunSettings &Settings,
                                      const TestFrontEnd *SharedFE) {
  DeviceBugModel Clean;
  Clean.SpeedFactor = 16.0; // a fast, reliable host
  return compileAndRun(Test, Clean, Optimize, Optimize,
                       /*Salt=*/0, {}, Settings, SharedFE);
}
