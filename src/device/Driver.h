//===- Driver.h - Simulated OpenCL driver (compile + run) -------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated equivalent of clCreateProgramWithSource +
/// clBuildProgram + clEnqueueNDRangeKernel: takes a test case (source
/// text plus host launch plan), compiles it through a configuration's
/// front end / pass pipeline / code generator (each with that
/// configuration's bug models) and executes it on the VM. Outcomes
/// mirror the paper's classification: build failure (bf), runtime
/// crash (c), timeout (to) or a computed result whose comparison
/// across configurations or EMI variants is the oracle's job.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_DEVICE_DRIVER_H
#define CLFUZZ_DEVICE_DRIVER_H

#include "device/DeviceConfig.h"
#include "gen/Generator.h"
#include "opt/Pass.h"

#include <memory>
#include <string>
#include <vector>

namespace clfuzz {

class ASTContext;

/// One test program plus its host-side launch plan. The source text is
/// the canonical representation: drivers re-parse it per run,
/// mirroring OpenCL's online compilation.
struct TestCase {
  std::string Name;
  std::string Source;
  NDRange Range;
  std::vector<BufferSpec> Buffers;

  static TestCase fromGenerated(const GeneratedKernel &K);
};

/// Per-run host settings.
struct RunSettings {
  /// Baseline dynamic-instruction budget, scaled by the
  /// configuration's SpeedFactor (the stand-in for the paper's
  /// 60-second timeout; 300 s for Oclgrind is modelled by the
  /// per-config factor).
  uint64_t BaseStepBudget = 8'000'000;
  uint64_t SchedulerSeed = 1;
  /// Inverts the dead array (dead[j] = d-1-j) so EMI blocks become
  /// live; used to discard base programs whose EMI blocks were placed
  /// in already-dead code (§7.4).
  bool InvertDead = false;
  bool DetectRaces = false;

  /// Pass-pipeline subset selector: bit I set means the pass at
  /// pipeline position I runs (in pipeline order). The default ~0
  /// runs the full pipeline — the everyday case. The triage bisector
  /// (src/triage/) probes subsets by varying this, so a probe is an
  /// ordinary ExecJob: serialized on the wire, cached by descriptor,
  /// executed on any backend unchanged.
  uint64_t PassMask = ~uint64_t(0);

  /// Fault-injection hooks, honoured by runExecJob() before the driver
  /// is entered. They exist so tests can prove the process-pool
  /// backend isolates worker failures; no campaign path sets them.
  bool DebugHardAbort = false; ///< abort() the executing process
  uint32_t DebugSpinMs = 0;    ///< stall this long (runaway-job model)
};

/// Outcome classes, in the paper's vocabulary.
enum class RunStatus : uint8_t {
  BuildFailure, ///< bf
  Crash,        ///< c (compiler or runtime; the paper merges them)
  Timeout,      ///< to
  Ok,           ///< computed a result
};

const char *runStatusName(RunStatus S);

/// The result of one (test, configuration, opt level) run.
struct RunOutcome {
  RunStatus Status = RunStatus::BuildFailure;
  std::string Message;
  /// Fingerprint of the printed output (comma-separated out[] values);
  /// equal fingerprints mean equal outputs.
  uint64_t OutputHash = 0;
  /// The first few output words, for human-readable reports.
  std::vector<uint64_t> OutputHead;
  uint64_t Steps = 0;
  bool RaceFound = false;
  std::string RaceMessage;

  bool ok() const { return Status == RunStatus::Ok; }
};

/// A test case's parsed-and-checked front end, computed once and
/// shared across the cells of a campaign column (one kernel run
/// against many configurations). Parsing and semantic checking are
/// configuration-independent — bug models only act from the
/// configuration-specific front-end checks onwards — so every cell of
/// a column can start from this one AST: pass-free cells read it
/// directly, and cells whose pipeline mutates the AST deep-clone it
/// (minicl/ASTClone.h) instead of re-running parse + sema (see
/// frontEndUseFor).
///
/// Sharing is observationally identical to per-cell parsing: the
/// parser is deterministic, so every cell would reconstruct this exact
/// AST from the same source, and a clone is structurally identical to
/// the AST a re-parse would build. Not thread-safe; a column executes
/// on one worker.
class TestFrontEnd {
public:
  explicit TestFrontEnd(const TestCase &Test);
  ~TestFrontEnd();
  TestFrontEnd(TestFrontEnd &&) noexcept;
  TestFrontEnd &operator=(TestFrontEnd &&) noexcept;

  /// False when the program failed to parse or check; every cell of
  /// the column then reports the same BuildFailure.
  bool ok() const { return ParseOk; }
  const std::string &diagnostics() const { return Diags; }
  ASTContext &context() const { return *Ctx; }

private:
  std::unique_ptr<ASTContext> Ctx;
  bool ParseOk = false;
  std::string Diags;
};

/// How a cell consumes a shared TestFrontEnd. The single admission
/// rule for column execution and the driver (they must agree, so it
/// lives in exactly one helper).
enum class FrontEndUse : uint8_t {
  /// The cell's pass pipeline is empty: codegen and the front-end
  /// defect checks only read, so the cell uses the shared AST as-is.
  ReadShared,
  /// The pipeline mutates the AST: the cell deep-clones the shared
  /// front end and hands the private copy to the PassManager.
  ClonePrivate,
  /// Clone-based sharing is disabled (compileCloneEnabled() == false)
  /// and the pipeline is non-empty: the cell re-parses the source —
  /// the pre-clone behaviour, kept as a byte-identity baseline.
  Reparse,
};

/// The admission rule for a run of \p Config (null = reference) at
/// \p OptEnabled against a shared TestFrontEnd.
FrontEndUse frontEndUseFor(const DeviceConfig *Config, bool OptEnabled);

/// Process-wide clone-don't-reparse toggle, resolved once from
/// `CLFUZZ_COMPILE_CLONE=0|off|false` (default on) unless overridden
/// (the `--compile-clone=` flag, conformance tests). Output is
/// byte-identical either way; off restores the per-cell re-parse.
bool compileCloneEnabled();
void setCompileCloneEnabled(bool Enabled);

/// Compiles and runs \p Test on \p Config with optimisations
/// enabled/disabled. \p SharedFE, when non-null, supplies the parsed
/// front end, read or cloned per frontEndUseFor; otherwise the source
/// is re-parsed (byte-identical outcome either way).
RunOutcome runTestOnConfig(const TestCase &Test,
                           const DeviceConfig &Config, bool OptEnabled,
                           const RunSettings &Settings = RunSettings(),
                           const TestFrontEnd *SharedFE = nullptr);

/// Reference run: no bug models, optimisations optional. Used by
/// tests, the EMI machinery and the reducer as a well-tested baseline
/// (the analogue of a trusted Oclgrind build).
RunOutcome runTestOnReference(const TestCase &Test, bool Optimize,
                              const RunSettings &Settings = RunSettings(),
                              const TestFrontEnd *SharedFE = nullptr);

/// The exact PassOptions the driver would hand buildPipeline for a
/// run of \p Test on \p Config at \p OptEnabled — the single source
/// of truth for the pipeline a cell executes (compileAndRun uses the
/// same derivation). The triage bisector calls this to learn the
/// pipeline's pass names without re-running compilation.
PassOptions passPipelineOptionsFor(const DeviceConfig &Config,
                                   bool OptEnabled, const TestCase &Test);

} // namespace clfuzz

#endif // CLFUZZ_DEVICE_DRIVER_H
