//===- Driver.h - Simulated OpenCL driver (compile + run) -------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated equivalent of clCreateProgramWithSource +
/// clBuildProgram + clEnqueueNDRangeKernel: takes a test case (source
/// text plus host launch plan), compiles it through a configuration's
/// front end / pass pipeline / code generator (each with that
/// configuration's bug models) and executes it on the VM. Outcomes
/// mirror the paper's classification: build failure (bf), runtime
/// crash (c), timeout (to) or a computed result whose comparison
/// across configurations or EMI variants is the oracle's job.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_DEVICE_DRIVER_H
#define CLFUZZ_DEVICE_DRIVER_H

#include "device/DeviceConfig.h"
#include "gen/Generator.h"

#include <string>
#include <vector>

namespace clfuzz {

/// One test program plus its host-side launch plan. The source text is
/// the canonical representation: drivers re-parse it per run,
/// mirroring OpenCL's online compilation.
struct TestCase {
  std::string Name;
  std::string Source;
  NDRange Range;
  std::vector<BufferSpec> Buffers;

  static TestCase fromGenerated(const GeneratedKernel &K);
};

/// Per-run host settings.
struct RunSettings {
  /// Baseline dynamic-instruction budget, scaled by the
  /// configuration's SpeedFactor (the stand-in for the paper's
  /// 60-second timeout; 300 s for Oclgrind is modelled by the
  /// per-config factor).
  uint64_t BaseStepBudget = 8'000'000;
  uint64_t SchedulerSeed = 1;
  /// Inverts the dead array (dead[j] = d-1-j) so EMI blocks become
  /// live; used to discard base programs whose EMI blocks were placed
  /// in already-dead code (§7.4).
  bool InvertDead = false;
  bool DetectRaces = false;

  /// Fault-injection hooks, honoured by runExecJob() before the driver
  /// is entered. They exist so tests can prove the process-pool
  /// backend isolates worker failures; no campaign path sets them.
  bool DebugHardAbort = false; ///< abort() the executing process
  uint32_t DebugSpinMs = 0;    ///< stall this long (runaway-job model)
};

/// Outcome classes, in the paper's vocabulary.
enum class RunStatus : uint8_t {
  BuildFailure, ///< bf
  Crash,        ///< c (compiler or runtime; the paper merges them)
  Timeout,      ///< to
  Ok,           ///< computed a result
};

const char *runStatusName(RunStatus S);

/// The result of one (test, configuration, opt level) run.
struct RunOutcome {
  RunStatus Status = RunStatus::BuildFailure;
  std::string Message;
  /// Fingerprint of the printed output (comma-separated out[] values);
  /// equal fingerprints mean equal outputs.
  uint64_t OutputHash = 0;
  /// The first few output words, for human-readable reports.
  std::vector<uint64_t> OutputHead;
  uint64_t Steps = 0;
  bool RaceFound = false;
  std::string RaceMessage;

  bool ok() const { return Status == RunStatus::Ok; }
};

/// Compiles and runs \p Test on \p Config with optimisations
/// enabled/disabled.
RunOutcome runTestOnConfig(const TestCase &Test,
                           const DeviceConfig &Config, bool OptEnabled,
                           const RunSettings &Settings = RunSettings());

/// Reference run: no bug models, optimisations optional. Used by
/// tests, the EMI machinery and the reducer as a well-tested baseline
/// (the analogue of a trusted Oclgrind build).
RunOutcome runTestOnReference(const TestCase &Test, bool Optimize,
                              const RunSettings &Settings = RunSettings());

} // namespace clfuzz

#endif // CLFUZZ_DEVICE_DRIVER_H
