//===- DeviceConfig.h - The simulated (device, compiler) zoo ----*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 21 simulated OpenCL configurations of the paper's Table 1. A
/// configuration is a (device, driver) pair: ours couple a device
/// class, a per-optimisation-level *bug model*, a speed factor (step
/// budget scaling; emulators and the anonymous GPU time out more) and
/// lottery rates for the failure classes the paper reports without a
/// reproducible mechanism (driver ICEs and machine crashes).
///
/// Bug models with a known mechanism are implemented mechanically in
/// the layout engine, the pass pipeline or codegen - see DESIGN.md for
/// the mapping to the paper's Figures 1 and 2. Lotteries are
/// deterministic in (source hash, configuration salt, opt level), so a
/// given kernel always behaves identically on a given configuration.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_DEVICE_DEVICECONFIG_H
#define CLFUZZ_DEVICE_DEVICECONFIG_H

#include "layout/Layout.h"

#include <string>
#include <vector>

namespace clfuzz {

/// Per-(configuration, optimisation level) defect knobs.
struct DeviceBugModel {
  // --- front end
  /// Rejects legal int/size_t operand mixtures (configuration 15, §6).
  bool RejectSizeTMix = false;
  /// Rejects logical operations on vectors (Altera, §6 "Front-end
  /// issues").
  bool RejectVectorLogicalOps = false;
  /// Internal error when vectors appear inside structs (Figure 1(c)).
  bool RejectVectorsInStructs = false;
  /// Compiler hangs on programs containing a constant-true infinite
  /// loop (Figure 1(e); also the Table 3 config-8 timeout cause).
  bool CompileHangOnInfiniteLoop = false;
  /// Compilation becomes prohibitively slow for programs combining a
  /// large struct with a barrier (Figure 1(f), Xeon Phi).
  bool SlowStructBarrierCompile = false;
  /// Probability of a driver internal build error (deterministic
  /// lottery on the source hash); message drawn from IceMessages.
  double BuildFailLottery = 0.0;

  // --- layout / codegen
  LayoutOptions Layout;          ///< Figure 1(a) / 2(a) models
  bool CommaDropsRhsBug = false; ///< Figure 2(f)
  bool SwizzleHighLaneBug = false;
  bool VolatileStructCopyBug = false; ///< Figure 1(b)

  // --- pass pipeline
  bool RotateFoldBug = false;       ///< Figure 2(b)
  bool ShiftSafeFoldBug = false;    ///< NVIDIA/Intel fold model
  bool CmpMinusOneBug = false;      ///< Figure 2(e)
  bool BarrierCallRetvalBug = false;///< Figure 2(c)
  /// Per-occurrence probability of the EMI-sensitive empty-block
  /// elimination defect (variants of one base diverge, §7.4).
  double EmiDceBugRate = 0.0;
  /// Fault-injection passes for the triage conformance suite — no
  /// registry configuration sets these; tests build custom configs
  /// with known minimal faulty pass sets (opt/Pass.h documents each).
  bool BreakOnShiftBug = false;
  bool BreakOnAndBug = false;
  bool ShiftMarkBug = false;
  bool MarkBreakBug = false;

  // --- runtime
  /// Kernel crashes when any helper function contains a barrier
  /// (the 14-/15- segfault class of Figure 2(c)).
  bool BarrierInFunctionCrash = false;
  /// Probability of a runtime crash (deterministic lottery).
  double CrashLottery = 0.0;
  /// Multiplier on the step budget; < 1 models slower devices and
  /// produces the paper's timeout rates.
  double SpeedFactor = 1.0;
};

/// One row of Table 1.
struct DeviceConfig {
  int Id = 0;
  std::string Sdk;
  std::string Device;
  std::string Driver;
  std::string OpenClVersion;
  std::string Os;
  enum class Kind : uint8_t { GPU, CPU, Accelerator, Emulator, FPGA };
  Kind Type = Kind::GPU;

  DeviceBugModel BugsO0; ///< behaviour with -cl-opt-disable
  DeviceBugModel BugsO2; ///< behaviour with default optimisation
  /// Oclgrind does not optimise: the optimising pipeline is empty at
  /// both levels (§7.3 observes 19- and 19+ are practically identical).
  bool NoOptimizer = false;
  /// Salt decorrelating this configuration's lotteries.
  uint64_t Salt = 0;
  /// ICE messages used by the build-failure lottery (vendor flavour).
  std::vector<std::string> IceMessages;

  /// The paper's Table 1 classification (used as the expected value in
  /// tests of the Table 1 harness).
  bool PaperAboveThreshold = false;

  const DeviceBugModel &bugs(bool OptEnabled) const {
    return OptEnabled ? BugsO2 : BugsO0;
  }

  const char *typeName() const;
};

/// Builds the full 21-configuration registry of Table 1.
std::vector<DeviceConfig> buildConfigRegistry();

/// Finds a configuration by Table 1 id (1-based); asserts on failure.
const DeviceConfig &configById(const std::vector<DeviceConfig> &Registry,
                               int Id);

/// The configurations above the paper's reliability threshold
/// (Table 1 final column): ids 1-4, 9, 12-15, 19.
std::vector<int> paperAboveThresholdIds();

} // namespace clfuzz

#endif // CLFUZZ_DEVICE_DEVICECONFIG_H
