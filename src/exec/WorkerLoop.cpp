//===- WorkerLoop.cpp - clfuzz worker: socket-fed job executor ---------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "exec/WorkerLoop.h"

#include "exec/FleetRegistry.h"
#include "exec/ProcessPool.h"
#include "exec/WireProtocol.h"
#include "support/Backoff.h"
#include "support/Hash.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

using namespace clfuzz;

/// Per-connection state. The service thread reads frames and feeds
/// the queue; runner threads drain it and write outcome frames (the
/// write mutex serializes outcomes and heartbeat acks on the socket).
struct WorkerServer::Connection {
  /// Written once at accept time, closed by ~Connection (which runs
  /// only after the service thread was joined) — so every other
  /// thread may read it freely and shutdown() it to force EOF, with
  /// no close/reuse race.
  int Fd = -1;
  std::thread Service;
  std::atomic<bool> Done{false};

  ~Connection() {
#if defined(__unix__) || defined(__APPLE__)
    if (Fd >= 0)
      ::close(Fd);
#endif
  }

  std::mutex WriteMu;
  std::mutex QueueMu;
  std::condition_variable QueueCV;
  std::deque<wire::DecodedJob> Queue;
  bool Closing = false;

  /// Rendezvous connections arrive with the join handshake already
  /// done by the dialer; serveConnection skips straight to frames.
  bool PreAccepted = false;
  /// Executions on this connection only — the FlapAfterJobs trigger
  /// (flapping is per die/redial cycle, unlike DieAfterJobs).
  std::atomic<size_t> SessionExecuted{0};
};

#if defined(__unix__) || defined(__APPLE__)

#include <cerrno>
#include <csignal>
#include <sys/socket.h>

WorkerServer::WorkerServer(WorkerOptions O) : Opts(std::move(O)) {
  ExecOptions E;
  E.Threads = Opts.Jobs;
  ResolvedJobs = E.resolvedThreads();

  // One cache for the whole server: every slot of every connection
  // consults it, so a reference run dispatched by one coordinator
  // serves every later coordinator too. Salted by this worker's
  // per-job deadline, exactly like a coordinator-side cache.
  OutcomeCacheOptions CO;
  CO.Mode = Opts.Cache;
  CO.Dir = Opts.CacheDir;
  if (Opts.CacheMemMb)
    CO.MemBudgetBytes = static_cast<size_t>(Opts.CacheMemMb) << 20;
  ExecOptions SaltSource;
  SaltSource.ProcTimeoutMs = Opts.ProcTimeoutMs;
  CO.KeySalt = cacheKeySalt(SaltSource);
  Cache = makeOutcomeCache(CO);
  StaleLeft.store(Opts.StaleJoins);
}

void WorkerServer::noteCacheGeneration(uint64_t Gen) {
  uint64_t Prev = CacheGen.exchange(Gen);
  if (Cache && Prev != 0 && Prev != Gen)
    Cache->clear();
}

WorkerServer::~WorkerServer() { stop(); }

bool WorkerServer::start() {
  if (!Opts.Connect.empty()) {
    // Rendezvous mode: no listener — the dialer owns the (single)
    // coordinator connection and its redial schedule.
    size_t Colon = Opts.Connect.rfind(':');
    if (Colon == std::string::npos || Colon == 0 ||
        Colon + 1 == Opts.Connect.size())
      return false;
    long Port = std::atol(Opts.Connect.c_str() + Colon + 1);
    if (Port <= 0 || Port > 65535)
      return false;
    DialHost = Opts.Connect.substr(0, Colon);
    DialPort = static_cast<unsigned>(Port);
    Dialer = std::thread([this] { dialerLoop(); });
    return true;
  }
  ListenFd = wire::listenTcp(Opts.Host, Opts.Port, BoundPort);
  if (ListenFd < 0)
    return false;
  Acceptor = std::thread([this] { acceptLoop(); });
  return true;
}

void WorkerServer::stop() {
  // shutdown() (not close()) wakes threads blocked in accept/read;
  // fds are closed only after every thread that could touch them was
  // joined, so there is no close/reuse race.
  if (!Stopping.exchange(true) && ListenFd >= 0)
    ::shutdown(ListenFd, SHUT_RDWR);
  StopCV.notify_all(); // wake a dialer parked in its backoff sleep
  if (Acceptor.joinable())
    Acceptor.join();
  // The acceptor is gone and the dialer (below) will find Stopping
  // set under ConnsMu before registering anything new, so after
  // closeAllSockets the connection set only shrinks; wake every
  // service and runner thread, then join and destroy them all
  // (~Connection closes each fd).
  closeAllSockets();
  if (Dialer.joinable())
    Dialer.join();
  std::vector<std::unique_ptr<Connection>> Doomed;
  {
    std::lock_guard<std::mutex> Lock(ConnsMu);
    Doomed.swap(Conns);
  }
  for (auto &Conn : Doomed)
    if (Conn->Service.joinable())
      Conn->Service.join();
  // A DieAfterJobs runner thread may call closeAllSockets() — which
  // shutdown()s the listen fd — right up until the joins above, so
  // only now may its number be closed and released for reuse.
  int Fd = ListenFd.exchange(-1);
  if (Fd >= 0)
    ::close(Fd);
}

void WorkerServer::closeAllSockets() {
  {
    std::lock_guard<std::mutex> Lock(ConnsMu);
    for (auto &Conn : Conns) {
      if (Conn->Fd >= 0)
        ::shutdown(Conn->Fd, SHUT_RDWR);
      std::lock_guard<std::mutex> QLock(Conn->QueueMu);
      Conn->Closing = true;
      Conn->QueueCV.notify_all();
    }
    if (ListenFd >= 0)
      ::shutdown(ListenFd, SHUT_RDWR);
  }
  StopCV.notify_all(); // a dialer parked in backoff must re-check Died
}

void WorkerServer::sleepInterruptible(unsigned Ms) {
  std::unique_lock<std::mutex> Lock(StopMu);
  StopCV.wait_for(Lock, std::chrono::milliseconds(Ms),
                  [this] { return Stopping.load() || Died.load(); });
}

// How long a fresh connection may dawdle before its hello (listen
// mode) or the coordinator before its join-ack (rendezvous mode).
static constexpr unsigned HandshakeTimeoutMs = 10000;

// Redial schedule of a rendezvous worker: quick first retry, settle
// at a few seconds. Jitter is seeded per endpoint so a bounced fleet
// does not thunder back in lockstep, yet each worker's schedule is
// reproducible.
static BackoffPolicy workerRedialPolicy() {
  BackoffPolicy P;
  P.InitialMs = 100;
  P.MaxMs = 5000;
  P.Multiplier = 2;
  P.Jitter = 0.2;
  return P;
}

void WorkerServer::dialerLoop() {
  Backoff Redial(workerRedialPolicy(), fnv64(Opts.Connect) ^ fnv64(Opts.Host));
  while (!Stopping.load() && !Died.load() && !Drained.load()) {
    int Fd = wire::connectTcp(DialHost, DialPort, 2000);
    if (Fd < 0) {
      sleepInterruptible(Redial.nextDelayMs());
      continue;
    }

    // Join handshake: announce our cache generation and concurrency,
    // wait for the verdict. StaleJoins rehearses the stale-generation
    // path by lying for the first N attempts.
    wire::setRecvTimeout(Fd, HandshakeTimeoutMs);
    uint64_t Gen = wire::CacheGeneration;
    bool LieAboutGen = StaleLeft.load() > 0;
    if (LieAboutGen)
      Gen += 1;
    bool Ok = wire::writeFrame(Fd, wire::FrameType::Join,
                               wire::encodeJoin(Gen, ResolvedJobs));
    wire::Frame F;
    std::string Why;
    if (Ok) {
      wire::ReadStatus RS = wire::readFrame(Fd, F, &Why);
      Ok = RS == wire::ReadStatus::Ok && F.Type == wire::FrameType::JoinAck;
      if (!Ok)
        logFleetDrop("worker", Opts.Connect,
                     RS == wire::ReadStatus::Malformed
                         ? (Why == "version mismatch"
                                ? "handshake-version-mismatch"
                                : "handshake-garbage")
                         : "peer-reset");
    } else {
      logFleetDrop("worker", Opts.Connect, "peer-reset");
    }
    wire::DecodedJoinAck Ack;
    if (Ok) {
      try {
        Ack = wire::decodeJoinAck(F);
      } catch (const std::exception &) {
        logFleetDrop("worker", Opts.Connect, "malformed-payload");
        Ok = false;
      }
    }
    if (Ok && !Ack.Accepted) {
      // Refused — almost always a stale cache generation. Adopt the
      // coordinator's generation (clearing a mismatched cache) and
      // redial; the next join announces the right one.
      logFleetDrop("worker", Opts.Connect, "stale-cache-generation");
      noteCacheGeneration(Ack.CacheGen);
      if (LieAboutGen)
        StaleLeft.fetch_sub(1);
      Ok = false;
    }
    if (!Ok) {
      ::close(Fd);
      sleepInterruptible(Redial.nextDelayMs());
      continue;
    }

    noteCacheGeneration(Ack.CacheGen);
    wire::setRecvTimeout(Fd, 0);
    Redial.reset();

    auto Conn = std::make_unique<Connection>();
    Conn->Fd = Fd;
    Conn->PreAccepted = true;
    Connection *C = Conn.get();
    {
      std::lock_guard<std::mutex> Lock(ConnsMu);
      if (Stopping.load())
        break; // ~Connection closes the fd
      Conns.push_back(std::move(Conn));
    }
    Joins.fetch_add(1);
    // Serve inline: the dialer owns exactly one connection at a time,
    // and a connection ending is precisely the redial trigger.
    serveConnection(*C);
  }
}

void WorkerServer::acceptLoop() {
  for (;;) {
    // Reap finished connections so a long-lived worker doesn't
    // accumulate dead thread objects.
    {
      std::lock_guard<std::mutex> Lock(ConnsMu);
      for (auto It = Conns.begin(); It != Conns.end();) {
        if ((*It)->Done.load()) {
          if ((*It)->Service.joinable())
            (*It)->Service.join();
          It = Conns.erase(It);
        } else {
          ++It;
        }
      }
    }

    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Stopping.load()) {
      if (Fd >= 0)
        ::close(Fd);
      break;
    }
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      break; // listen socket gone
    }

    auto Conn = std::make_unique<Connection>();
    Conn->Fd = Fd;
    Connection *C = Conn.get();
    {
      std::lock_guard<std::mutex> Lock(ConnsMu);
      Conns.push_back(std::move(Conn));
    }
    C->Service = std::thread([this, C] { serveConnection(*C); });
  }
  // ListenFd stays valid until stop() closes it (after this thread is
  // joined); closing it here would race the shutdown() calls.
}

void WorkerServer::serveConnection(Connection &Conn) {
  // Keepalive is the backstop against a coordinator machine vanishing
  // without a FIN. DropReason feeds the structured teardown log: every
  // connection end names its cause on stderr, greppable in chaos CI.
  int KeepAlive = 1;
  ::setsockopt(Conn.Fd, SOL_SOCKET, SO_KEEPALIVE, &KeepAlive,
               sizeof(KeepAlive));
  std::string Peer = peerName(Conn.Fd);
  std::string DropReason = "peer-reset";
  wire::Frame F;
  bool Accepted = Conn.PreAccepted;
  if (!Accepted) {
    // Handshake: the first frame must be a well-formed hello of our
    // protocol version, and it must arrive promptly — a client that
    // connects and says nothing (port scanner, load-balancer health
    // probe) must not pin this thread and fd forever. After the
    // handshake the timeout is lifted: an idle coordinator between
    // shards is healthy.
    wire::setRecvTimeout(Conn.Fd, HandshakeTimeoutMs);
    std::string Why;
    wire::ReadStatus RS = wire::readFrame(Conn.Fd, F, &Why);
    if (RS == wire::ReadStatus::Ok && F.Type == wire::FrameType::Hello) {
      try {
        noteCacheGeneration(wire::decodeHello(F));
        Accepted = wire::writeFrame(Conn.Fd, wire::FrameType::HelloAck,
                                    wire::encodeHelloAck(ResolvedJobs));
      } catch (const std::exception &) {
        DropReason = "malformed-payload";
      }
    } else if (RS == wire::ReadStatus::Malformed) {
      DropReason = Why == "version mismatch" ? "handshake-version-mismatch"
                                             : "handshake-garbage";
    } else if (RS == wire::ReadStatus::Ok) {
      DropReason = "handshake-garbage"; // well-formed, but not a hello
    }
    if (Accepted)
      wire::setRecvTimeout(Conn.Fd, 0);
  }

  std::vector<std::thread> Runners;
  if (Accepted && !Opts.IgnoreJobs)
    for (unsigned I = 0; I != ResolvedJobs; ++I)
      Runners.emplace_back([this, &Conn] { runnerLoop(Conn); });

  while (Accepted) {
    std::string Why;
    wire::ReadStatus RS = wire::readFrame(Conn.Fd, F, &Why);
    if (RS != wire::ReadStatus::Ok) {
      DropReason =
          RS == wire::ReadStatus::Malformed ? "garbage-frame" : "peer-reset";
      break;
    }
    if (F.Type == wire::FrameType::Shutdown) {
      DropReason = "shutdown";
      break;
    }
    try {
      if (F.Type == wire::FrameType::Job) {
        wire::DecodedJob Job = wire::decodeJob(F);
        if (Opts.IgnoreJobs)
          continue; // the wedged-worker model: swallow it
        std::lock_guard<std::mutex> Lock(Conn.QueueMu);
        Conn.Queue.push_back(std::move(Job));
        Conn.QueueCV.notify_one();
      } else if (F.Type == wire::FrameType::Heartbeat) {
        if (Opts.IgnoreJobs)
          continue;
        std::lock_guard<std::mutex> Lock(Conn.WriteMu);
        if (!wire::writeFrame(Conn.Fd, wire::FrameType::HeartbeatAck,
                              F.Payload)) {
          DropReason = "peer-reset";
          break;
        }
      }
      // Other valid-but-unexpected types (hello twice, outcome from a
      // coordinator) are ignored: the header said they are from our
      // protocol version, so skipping keeps the stream in sync.
    } catch (const std::exception &) {
      DropReason = "malformed-payload";
      break; // the stream is poisoned
    }
  }

  {
    std::lock_guard<std::mutex> Lock(Conn.QueueMu);
    Conn.Closing = true;
    Conn.QueueCV.notify_all();
  }
  for (std::thread &T : Runners)
    T.join();
  // A graceful drain ends with the coordinator's shutdown frame once
  // our window emptied — only then is the drain complete.
  if (DrainRequested.load() && DropReason == "shutdown") {
    DropReason = "drained";
    Drained.store(true);
  }
  logFleetDrop("worker", Peer, DropReason);
  // Mark reapable but leave the fd to ~Connection: writing Fd here
  // would race closeAllSockets() reading it to shutdown().
  ::shutdown(Conn.Fd, SHUT_RDWR);
  Conn.Done.store(true);
}

void WorkerServer::runnerLoop(Connection &Conn) {
  // Each slot owns a single-subprocess process pool: the fork
  // isolation, per-job wall-clock kill and crash-retry semantics (and
  // therefore the outcome *messages*) are exactly --backend=procs'.
  ExecOptions E;
  E.Threads = 1;
  E.Backend = BackendKind::Procs;
  E.ProcTimeoutMs = Opts.ProcTimeoutMs;
  std::unique_ptr<ExecBackend> Local = makeProcessPoolBackend(E);

  for (;;) {
    wire::DecodedJob Job;
    {
      std::unique_lock<std::mutex> Lock(Conn.QueueMu);
      Conn.QueueCV.wait(Lock,
                        [&] { return Conn.Closing || !Conn.Queue.empty(); });
      if (Conn.Queue.empty())
        return;
      Job = std::move(Conn.Queue.front());
      Conn.Queue.pop_front();
    }

    // Consult the worker-side outcome cache first: a repeated
    // descriptor (the reference run every configuration column
    // re-dispatches, a reduction re-probe) is answered without a
    // fork. Descriptors are pure (exec/JobSerialize.h), so a cached
    // outcome is byte-identical to a fresh execution.
    RunOutcome O;
    OutcomeCache::Key K;
    bool FromCache = false;
    if (Cache) {
      K = Cache->keyOf(Job.Job.view());
      FromCache = Cache->lookup(K, O);
    }
    if (!FromCache) {
      bool ExecutorFailed = false;
      try {
        O = Local->run({Job.Job.view()}).at(0);
      } catch (const std::exception &Ex) {
        O.Status = RunStatus::Crash;
        O.Message = std::string("worker: ") + Ex.what();
        ExecutorFailed = true;
      }
      // Only genuine job outcomes are cacheable. A synthesized Crash
      // from a failing *executor* (fork failure, fd exhaustion) is
      // this worker's transient trouble, not a property of the
      // descriptor — memoizing it would serve the failure forever.
      if (Cache && !ExecutorFailed)
        Cache->store(K, O);
    }

    bool RequestDrain = false;
    if (FromCache) {
      CacheServed.fetch_add(1);
    } else {
      size_t Count = Executed.fetch_add(1) + 1;
      if (Opts.DieAfterJobs && Count >= Opts.DieAfterJobs) {
        // Die *before* sending this outcome: the coordinator sees the
        // connection drop with the job (and its window-mates) still in
        // flight — the failure mode the requeue/reassembly logic must
        // survive.
        if (Count == Opts.DieAfterJobs) {
          logFleetDrop("worker", peerName(Conn.Fd), "die-injected");
          Died.store(true);
          closeAllSockets();
        }
        continue;
      }
      size_t Session = Conn.SessionExecuted.fetch_add(1) + 1;
      if (Opts.FlapAfterJobs && Session >= Opts.FlapAfterJobs) {
        // Flap: suppress this outcome and kill just this connection —
        // the dialer (rendezvous) or the coordinator (static list)
        // redials, and the cycle repeats. Unlike DieAfterJobs the
        // server survives.
        if (Session == Opts.FlapAfterJobs) {
          logFleetDrop("worker", peerName(Conn.Fd), "flap-injected");
          ::shutdown(Conn.Fd, SHUT_RDWR);
        }
        continue;
      }
      // Drain *after* this outcome goes out: the leave frame follows
      // the last executed job under the same write lock, so the
      // coordinator's view is "outcome, then leave" — never a lost
      // job.
      if (Opts.DrainAfterJobs && Count == Opts.DrainAfterJobs)
        RequestDrain = true;
    }

    std::lock_guard<std::mutex> Lock(Conn.WriteMu);
    wire::writeFrame(Conn.Fd, wire::FrameType::Outcome,
                     wire::encodeOutcome(Job.Tag, O));
    if (RequestDrain && !DrainRequested.exchange(true))
      wire::writeFrame(Conn.Fd, wire::FrameType::Leave, wire::encodeLeave());
  }
}

namespace {
volatile std::sig_atomic_t GWorkerStop = 0;
void workerSignal(int) { GWorkerStop = 1; }
} // namespace

int clfuzz::runWorkerCommand(const WorkerOptions &Opts) {
  WorkerServer Server(Opts);
  if (!Server.start()) {
    if (!Opts.Connect.empty())
      std::fprintf(stderr, "clfuzz worker: bad --connect endpoint '%s'\n",
                   Opts.Connect.c_str());
    else
      std::fprintf(stderr, "clfuzz worker: cannot listen on %s:%u\n",
                   Opts.Host.c_str(), Opts.Port);
    return 1;
  }
  // The CI scripts parse these lines (ephemeral port in listen mode,
  // liveness in rendezvous mode); keep the formats stable. jobs= is
  // the count actually advertised in hello-acks / joins, not the raw
  // flag.
  if (!Opts.Connect.empty())
    std::printf("clfuzz worker dialing %s (jobs=%u, proc-timeout-ms=%u)\n",
                Opts.Connect.c_str(), Server.jobsPerConnection(),
                Opts.ProcTimeoutMs);
  else
    std::printf("clfuzz worker listening on %s:%u (jobs=%u, "
                "proc-timeout-ms=%u)\n",
                Opts.Host.c_str(), Server.port(),
                Server.jobsPerConnection(), Opts.ProcTimeoutMs);
  std::fflush(stdout);

  std::signal(SIGINT, workerSignal);
  std::signal(SIGTERM, workerSignal);
  while (!GWorkerStop && !Server.died() && !Server.drained())
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  Server.stop();
  if (Opts.Cache != CacheMode::Off) {
    // CI greps this line to assert a warm fleet actually served from
    // cache; keep the format stable.
    OutcomeCacheStats CS = Server.cacheStats();
    std::printf("clfuzz worker cache: hits=%llu misses=%llu\n",
                static_cast<unsigned long long>(CS.Hits),
                static_cast<unsigned long long>(CS.Misses));
    std::fflush(stdout);
  }
  return 0;
}

#else // no sockets on this platform

WorkerServer::WorkerServer(WorkerOptions O) : Opts(std::move(O)) {}
WorkerServer::~WorkerServer() = default;
void WorkerServer::noteCacheGeneration(uint64_t) {}
bool WorkerServer::start() { return false; }
void WorkerServer::stop() {}
void WorkerServer::closeAllSockets() {}
void WorkerServer::acceptLoop() {}
void WorkerServer::dialerLoop() {}
void WorkerServer::sleepInterruptible(unsigned) {}
void WorkerServer::serveConnection(Connection &) {}
void WorkerServer::runnerLoop(Connection &) {}

int clfuzz::runWorkerCommand(const WorkerOptions &) {
  std::fprintf(stderr,
               "clfuzz worker: POSIX sockets are unavailable on this "
               "platform\n");
  return 1;
}

#endif
