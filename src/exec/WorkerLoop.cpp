//===- WorkerLoop.cpp - clfuzz worker: socket-fed job executor ---------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "exec/WorkerLoop.h"

#include "exec/ProcessPool.h"
#include "exec/WireProtocol.h"

#include <chrono>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

using namespace clfuzz;

/// Per-connection state. The service thread reads frames and feeds
/// the queue; runner threads drain it and write outcome frames (the
/// write mutex serializes outcomes and heartbeat acks on the socket).
struct WorkerServer::Connection {
  /// Written once at accept time, closed by ~Connection (which runs
  /// only after the service thread was joined) — so every other
  /// thread may read it freely and shutdown() it to force EOF, with
  /// no close/reuse race.
  int Fd = -1;
  std::thread Service;
  std::atomic<bool> Done{false};

  ~Connection() {
#if defined(__unix__) || defined(__APPLE__)
    if (Fd >= 0)
      ::close(Fd);
#endif
  }

  std::mutex WriteMu;
  std::mutex QueueMu;
  std::condition_variable QueueCV;
  std::deque<wire::DecodedJob> Queue;
  bool Closing = false;
};

#if defined(__unix__) || defined(__APPLE__)

#include <cerrno>
#include <csignal>
#include <sys/socket.h>

WorkerServer::WorkerServer(WorkerOptions O) : Opts(std::move(O)) {
  ExecOptions E;
  E.Threads = Opts.Jobs;
  ResolvedJobs = E.resolvedThreads();

  // One cache for the whole server: every slot of every connection
  // consults it, so a reference run dispatched by one coordinator
  // serves every later coordinator too. Salted by this worker's
  // per-job deadline, exactly like a coordinator-side cache.
  OutcomeCacheOptions CO;
  CO.Mode = Opts.Cache;
  CO.Dir = Opts.CacheDir;
  if (Opts.CacheMemMb)
    CO.MemBudgetBytes = static_cast<size_t>(Opts.CacheMemMb) << 20;
  ExecOptions SaltSource;
  SaltSource.ProcTimeoutMs = Opts.ProcTimeoutMs;
  CO.KeySalt = cacheKeySalt(SaltSource);
  Cache = makeOutcomeCache(CO);
}

void WorkerServer::noteCacheGeneration(uint64_t Gen) {
  uint64_t Prev = CacheGen.exchange(Gen);
  if (Cache && Prev != 0 && Prev != Gen)
    Cache->clear();
}

WorkerServer::~WorkerServer() { stop(); }

bool WorkerServer::start() {
  ListenFd = wire::listenTcp(Opts.Host, Opts.Port, BoundPort);
  if (ListenFd < 0)
    return false;
  Acceptor = std::thread([this] { acceptLoop(); });
  return true;
}

void WorkerServer::stop() {
  // shutdown() (not close()) wakes threads blocked in accept/read;
  // fds are closed only after every thread that could touch them was
  // joined, so there is no close/reuse race.
  if (!Stopping.exchange(true) && ListenFd >= 0)
    ::shutdown(ListenFd, SHUT_RDWR);
  if (Acceptor.joinable())
    Acceptor.join();
  // The acceptor is gone, so the connection set is final; wake every
  // service and runner thread, then join and destroy them all
  // (~Connection closes each fd).
  closeAllSockets();
  std::vector<std::unique_ptr<Connection>> Doomed;
  {
    std::lock_guard<std::mutex> Lock(ConnsMu);
    Doomed.swap(Conns);
  }
  for (auto &Conn : Doomed)
    if (Conn->Service.joinable())
      Conn->Service.join();
  // A DieAfterJobs runner thread may call closeAllSockets() — which
  // shutdown()s the listen fd — right up until the joins above, so
  // only now may its number be closed and released for reuse.
  int Fd = ListenFd.exchange(-1);
  if (Fd >= 0)
    ::close(Fd);
}

void WorkerServer::closeAllSockets() {
  std::lock_guard<std::mutex> Lock(ConnsMu);
  for (auto &Conn : Conns) {
    if (Conn->Fd >= 0)
      ::shutdown(Conn->Fd, SHUT_RDWR);
    std::lock_guard<std::mutex> QLock(Conn->QueueMu);
    Conn->Closing = true;
    Conn->QueueCV.notify_all();
  }
  if (ListenFd >= 0)
    ::shutdown(ListenFd, SHUT_RDWR);
}

void WorkerServer::acceptLoop() {
  for (;;) {
    // Reap finished connections so a long-lived worker doesn't
    // accumulate dead thread objects.
    {
      std::lock_guard<std::mutex> Lock(ConnsMu);
      for (auto It = Conns.begin(); It != Conns.end();) {
        if ((*It)->Done.load()) {
          if ((*It)->Service.joinable())
            (*It)->Service.join();
          It = Conns.erase(It);
        } else {
          ++It;
        }
      }
    }

    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Stopping.load()) {
      if (Fd >= 0)
        ::close(Fd);
      break;
    }
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      break; // listen socket gone
    }

    auto Conn = std::make_unique<Connection>();
    Conn->Fd = Fd;
    Connection *C = Conn.get();
    {
      std::lock_guard<std::mutex> Lock(ConnsMu);
      Conns.push_back(std::move(Conn));
    }
    C->Service = std::thread([this, C] { serveConnection(*C); });
  }
  // ListenFd stays valid until stop() closes it (after this thread is
  // joined); closing it here would race the shutdown() calls.
}

// How long a fresh connection may dawdle before its hello.
static constexpr unsigned HandshakeTimeoutMs = 10000;

void WorkerServer::serveConnection(Connection &Conn) {
  // Handshake: the first frame must be a well-formed hello of our
  // protocol version, and it must arrive promptly — a client that
  // connects and says nothing (port scanner, load-balancer health
  // probe) must not pin this thread and fd forever. After the
  // handshake the timeout is lifted: an idle coordinator between
  // shards is healthy. Keepalive stays on as the backstop against a
  // coordinator machine vanishing without a FIN.
  wire::setRecvTimeout(Conn.Fd, HandshakeTimeoutMs);
  int KeepAlive = 1;
  ::setsockopt(Conn.Fd, SOL_SOCKET, SO_KEEPALIVE, &KeepAlive,
               sizeof(KeepAlive));
  wire::Frame F;
  bool Accepted = false;
  if (wire::readFrame(Conn.Fd, F) == wire::ReadStatus::Ok &&
      F.Type == wire::FrameType::Hello) {
    try {
      noteCacheGeneration(wire::decodeHello(F));
      Accepted = wire::writeFrame(Conn.Fd, wire::FrameType::HelloAck,
                                  wire::encodeHelloAck(ResolvedJobs));
    } catch (const std::exception &) {
    }
  }
  if (Accepted)
    wire::setRecvTimeout(Conn.Fd, 0);

  std::vector<std::thread> Runners;
  if (Accepted && !Opts.IgnoreJobs)
    for (unsigned I = 0; I != ResolvedJobs; ++I)
      Runners.emplace_back([this, &Conn] { runnerLoop(Conn); });

  while (Accepted) {
    wire::ReadStatus RS = wire::readFrame(Conn.Fd, F);
    if (RS != wire::ReadStatus::Ok)
      break;
    if (F.Type == wire::FrameType::Shutdown)
      break;
    try {
      if (F.Type == wire::FrameType::Job) {
        wire::DecodedJob Job = wire::decodeJob(F);
        if (Opts.IgnoreJobs)
          continue; // the wedged-worker model: swallow it
        std::lock_guard<std::mutex> Lock(Conn.QueueMu);
        Conn.Queue.push_back(std::move(Job));
        Conn.QueueCV.notify_one();
      } else if (F.Type == wire::FrameType::Heartbeat) {
        if (Opts.IgnoreJobs)
          continue;
        std::lock_guard<std::mutex> Lock(Conn.WriteMu);
        if (!wire::writeFrame(Conn.Fd, wire::FrameType::HeartbeatAck,
                              F.Payload))
          break;
      }
      // Other valid-but-unexpected types (hello twice, outcome from a
      // coordinator) are ignored: the header said they are from our
      // protocol version, so skipping keeps the stream in sync.
    } catch (const std::exception &) {
      break; // malformed payload: the stream is poisoned
    }
  }

  {
    std::lock_guard<std::mutex> Lock(Conn.QueueMu);
    Conn.Closing = true;
    Conn.QueueCV.notify_all();
  }
  for (std::thread &T : Runners)
    T.join();
  // Mark reapable but leave the fd to ~Connection: writing Fd here
  // would race closeAllSockets() reading it to shutdown().
  ::shutdown(Conn.Fd, SHUT_RDWR);
  Conn.Done.store(true);
}

void WorkerServer::runnerLoop(Connection &Conn) {
  // Each slot owns a single-subprocess process pool: the fork
  // isolation, per-job wall-clock kill and crash-retry semantics (and
  // therefore the outcome *messages*) are exactly --backend=procs'.
  ExecOptions E;
  E.Threads = 1;
  E.Backend = BackendKind::Procs;
  E.ProcTimeoutMs = Opts.ProcTimeoutMs;
  std::unique_ptr<ExecBackend> Local = makeProcessPoolBackend(E);

  for (;;) {
    wire::DecodedJob Job;
    {
      std::unique_lock<std::mutex> Lock(Conn.QueueMu);
      Conn.QueueCV.wait(Lock,
                        [&] { return Conn.Closing || !Conn.Queue.empty(); });
      if (Conn.Queue.empty())
        return;
      Job = std::move(Conn.Queue.front());
      Conn.Queue.pop_front();
    }

    // Consult the worker-side outcome cache first: a repeated
    // descriptor (the reference run every configuration column
    // re-dispatches, a reduction re-probe) is answered without a
    // fork. Descriptors are pure (exec/JobSerialize.h), so a cached
    // outcome is byte-identical to a fresh execution.
    RunOutcome O;
    OutcomeCache::Key K;
    bool FromCache = false;
    if (Cache) {
      K = Cache->keyOf(Job.Job.view());
      FromCache = Cache->lookup(K, O);
    }
    if (!FromCache) {
      bool ExecutorFailed = false;
      try {
        O = Local->run({Job.Job.view()}).at(0);
      } catch (const std::exception &Ex) {
        O.Status = RunStatus::Crash;
        O.Message = std::string("worker: ") + Ex.what();
        ExecutorFailed = true;
      }
      // Only genuine job outcomes are cacheable. A synthesized Crash
      // from a failing *executor* (fork failure, fd exhaustion) is
      // this worker's transient trouble, not a property of the
      // descriptor — memoizing it would serve the failure forever.
      if (Cache && !ExecutorFailed)
        Cache->store(K, O);
    }

    if (FromCache) {
      CacheServed.fetch_add(1);
    } else {
      size_t Count = Executed.fetch_add(1) + 1;
      if (Opts.DieAfterJobs && Count >= Opts.DieAfterJobs) {
        // Die *before* sending this outcome: the coordinator sees the
        // connection drop with the job (and its window-mates) still in
        // flight — the failure mode the requeue/reassembly logic must
        // survive.
        if (Count == Opts.DieAfterJobs) {
          Died.store(true);
          closeAllSockets();
        }
        continue;
      }
    }

    std::lock_guard<std::mutex> Lock(Conn.WriteMu);
    wire::writeFrame(Conn.Fd, wire::FrameType::Outcome,
                     wire::encodeOutcome(Job.Tag, O));
  }
}

namespace {
volatile std::sig_atomic_t GWorkerStop = 0;
void workerSignal(int) { GWorkerStop = 1; }
} // namespace

int clfuzz::runWorkerCommand(const WorkerOptions &Opts) {
  WorkerServer Server(Opts);
  if (!Server.start()) {
    std::fprintf(stderr, "clfuzz worker: cannot listen on %s:%u\n",
                 Opts.Host.c_str(), Opts.Port);
    return 1;
  }
  // The CI scripts parse this line to learn an ephemeral port; keep
  // the format stable. jobs= is the count actually advertised in
  // hello-acks, not the raw flag.
  std::printf("clfuzz worker listening on %s:%u (jobs=%u, "
              "proc-timeout-ms=%u)\n",
              Opts.Host.c_str(), Server.port(),
              Server.jobsPerConnection(), Opts.ProcTimeoutMs);
  std::fflush(stdout);

  std::signal(SIGINT, workerSignal);
  std::signal(SIGTERM, workerSignal);
  while (!GWorkerStop && !Server.died())
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  Server.stop();
  if (Opts.Cache != CacheMode::Off) {
    // CI greps this line to assert a warm fleet actually served from
    // cache; keep the format stable.
    OutcomeCacheStats CS = Server.cacheStats();
    std::printf("clfuzz worker cache: hits=%llu misses=%llu\n",
                static_cast<unsigned long long>(CS.Hits),
                static_cast<unsigned long long>(CS.Misses));
    std::fflush(stdout);
  }
  return 0;
}

#else // no sockets on this platform

WorkerServer::WorkerServer(WorkerOptions O) : Opts(std::move(O)) {}
WorkerServer::~WorkerServer() = default;
void WorkerServer::noteCacheGeneration(uint64_t) {}
bool WorkerServer::start() { return false; }
void WorkerServer::stop() {}
void WorkerServer::closeAllSockets() {}
void WorkerServer::acceptLoop() {}
void WorkerServer::serveConnection(Connection &) {}
void WorkerServer::runnerLoop(Connection &) {}

int clfuzz::runWorkerCommand(const WorkerOptions &) {
  std::fprintf(stderr,
               "clfuzz worker: POSIX sockets are unavailable on this "
               "platform\n");
  return 1;
}

#endif
