//===- RemoteBackend.cpp - Socket-fed multi-host execution backend -----------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "exec/RemoteBackend.h"

#include "exec/FleetRegistry.h"

#include <stdexcept>

using namespace clfuzz;

std::vector<std::string> clfuzz::splitWorkerList(const std::string &List) {
  std::vector<std::string> Out;
  size_t Start = 0;
  while (Start <= List.size()) {
    size_t Comma = List.find(',', Start);
    if (Comma == std::string::npos)
      Comma = List.size();
    std::string Entry = List.substr(Start, Comma - Start);
    // Trim surrounding whitespace.
    size_t B = Entry.find_first_not_of(" \t");
    size_t E = Entry.find_last_not_of(" \t");
    if (B != std::string::npos)
      Out.push_back(Entry.substr(B, E - B + 1));
    Start = Comma + 1;
  }
  return Out;
}

#if defined(__unix__) || defined(__APPLE__)

#include "exec/WireProtocol.h"
#include "support/Backoff.h"
#include "support/Hash.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <map>
#include <poll.h>
#include <thread>
#include <unistd.h>

namespace {

using Clock = std::chrono::steady_clock;

class RemoteBackendImpl final : public ExecBackend {
public:
  explicit RemoteBackendImpl(const ExecOptions &Opts)
      : TimeoutMs(Opts.RemoteTimeoutMs), HeartbeatMs(Opts.RemoteHeartbeatMs),
        Fleet(Opts.Fleet) {
    if (Opts.RemoteWorkers.empty() && !Fleet)
      throw std::runtime_error(
          "remote backend: no workers configured (--workers=host:port,...)");
    for (const std::string &Spec : Opts.RemoteWorkers) {
      size_t Colon = Spec.rfind(':');
      if (Colon == std::string::npos || Colon == 0 ||
          Colon + 1 == Spec.size())
        throw std::runtime_error("remote backend: malformed worker '" +
                                 Spec + "' (expected host:port)");
      long Port = std::atol(Spec.c_str() + Colon + 1);
      if (Port <= 0 || Port > 65535)
        throw std::runtime_error("remote backend: bad port in worker '" +
                                 Spec + "'");
      Link L;
      L.Host = Spec.substr(0, Colon);
      L.Port = static_cast<unsigned>(Port);
      // Deterministic per-endpoint jitter seed: the schedule of a
      // given fleet spec is reproducible run to run, yet distinct
      // endpoints never re-dial in lockstep.
      L.Dial = Backoff(redialPolicy(), fnv64(Spec));
      Links.push_back(std::move(L));
    }
  }

  ~RemoteBackendImpl() override {
    for (Link &L : Links)
      if (L.alive()) {
        wire::writeFrame(L.Fd, wire::FrameType::Shutdown, {});
        ::close(L.Fd);
        L.Fd = -1;
      }
  }

  BackendKind kind() const override { return BackendKind::Remote; }

  unsigned concurrency() const override {
    // Lazy-dials like run() so sources sizing their generation waves
    // see the real fleet width; never throws (a disconnected fleet is
    // an execution-time error, and 1 is a safe width).
    auto *Self = const_cast<RemoteBackendImpl *>(this);
    Self->adoptJoined();
    Self->ensureLinks(/*Require=*/false);
    unsigned Sum = 0;
    for (const Link &L : Links)
      if (L.alive() && !L.Draining)
        Sum += L.Advertised;
    return Sum ? Sum : 1;
  }

  std::vector<RunOutcome> run(const std::vector<ExecJob> &Jobs) override;

private:
  struct Link {
    std::string Host;
    unsigned Port = 0;
    /// "host:port" of an adopted rendezvous worker (getpeername);
    /// static links derive their name from Host:Port instead.
    std::string Peer;
    int Fd = -1;
    /// Joined via the fleet registry: the worker dialled us, so when
    /// the link drops the *worker* redials — this side never does.
    bool Dynamic = false;
    /// The worker sent a leave frame: let the in-flight window
    /// finish, dispatch nothing new, then close gracefully.
    bool Draining = false;
    /// Slot count from the hello-ack; the in-flight window is twice
    /// this (one round trip of pipelining).
    unsigned Advertised = 1;
    /// Tag (== submission index) -> dispatch deadline
    /// (time_point::max() when no deadline is armed).
    std::map<uint64_t, Clock::time_point> InFlight;
    Clock::time_point LastRecv{};
    bool PingOutstanding = false;
    Clock::time_point PingSent{};
    /// A failed dial parks the endpoint until this instant; the delay
    /// comes from the jittered exponential Dial schedule, so a down
    /// machine costs one connect timeout per widening window, not one
    /// per batch. Desperate reconnects (no live worker at all) ignore
    /// the park but still advance the schedule.
    Clock::time_point NextDialAfter{};
    Backoff Dial;
    /// The endpoint has answered a handshake at least once — later
    /// dials are *re*dials and count as fleet_redials.
    bool EverConnected = false;

    bool alive() const { return Fd >= 0; }
    bool busy() const { return alive() && !InFlight.empty(); }
    size_t window() const { return size_t(Advertised) * 2; }
    std::string name() const {
      return Dynamic ? Peer : Host + ":" + std::to_string(Port);
    }
  };

  static BackoffPolicy redialPolicy() {
    BackoffPolicy P;
    P.InitialMs = 200;
    P.MaxMs = 5000;
    P.Multiplier = 2;
    P.Jitter = 0.2;
    return P;
  }

  void armSteadyTimeout(int Fd) const;
  bool dialLink(Link &L, bool IgnorePark);
  void ensureLinks(bool Require);
  bool adoptJoined();
  void dropLink(Link &L);

  std::vector<Link> Links;
  unsigned TimeoutMs;
  unsigned HeartbeatMs;
  std::shared_ptr<FleetRegistry> Fleet;
  uint64_t NextNonce = 1;

  static constexpr unsigned ConnectTimeoutMs = 2000;
  static constexpr unsigned HandshakeTimeoutMs = 5000;
  /// Total wall-clock budget of the no-worker-left reconnect loop
  /// before run() gives up loudly.
  static constexpr unsigned ReconnectBudgetMs = 3000;
};

// Steady state: the event loop poll()s before every read, so this
// receive timeout can only fire on a worker that stalled *mid-frame*
// — the one wedge neither the deadline sweep nor the heartbeat can
// see, because both are scheduled by the (blocked) event loop.
void RemoteBackendImpl::armSteadyTimeout(int Fd) const {
  unsigned Steady = 30000;
  if (HeartbeatMs)
    Steady = std::min(Steady, std::max(2 * HeartbeatMs, 1000u));
  if (TimeoutMs)
    Steady = std::min(Steady, std::max(TimeoutMs + 1000, 1000u));
  wire::setRecvTimeout(Fd, Steady);
}

bool RemoteBackendImpl::dialLink(Link &L, bool IgnorePark) {
  if (L.Dynamic)
    return false; // the worker dials us, never the reverse
  if (!IgnorePark && Clock::now() < L.NextDialAfter)
    return false;
  if (L.EverConnected)
    noteFleetRedial();
  int Fd = wire::connectTcp(L.Host, L.Port, ConnectTimeoutMs);
  bool Ok = Fd >= 0;
  if (Ok) {
    wire::setRecvTimeout(Fd, HandshakeTimeoutMs);
    Ok = wire::writeFrame(Fd, wire::FrameType::Hello,
                          wire::encodeHello(wire::CacheGeneration));
  }
  wire::Frame F;
  if (Ok)
    Ok = wire::readFrame(Fd, F) == wire::ReadStatus::Ok &&
         F.Type == wire::FrameType::HelloAck;
  if (Ok) {
    try {
      L.Advertised = std::max(wire::decodeHelloAck(F), 1u);
    } catch (const std::exception &) {
      Ok = false;
    }
  }
  if (!Ok) {
    if (Fd >= 0)
      ::close(Fd);
    L.NextDialAfter =
        Clock::now() + std::chrono::milliseconds(L.Dial.nextDelayMs());
    return false;
  }
  armSteadyTimeout(Fd);
  L.Fd = Fd;
  L.InFlight.clear();
  L.LastRecv = Clock::now();
  L.PingOutstanding = false;
  L.Draining = false;
  L.NextDialAfter = {};
  L.Dial.reset();
  L.EverConnected = true;
  return true;
}

void RemoteBackendImpl::dropLink(Link &L) {
  if (L.Fd >= 0)
    ::close(L.Fd);
  L.Fd = -1;
  L.InFlight.clear();
  L.PingOutstanding = false;
  L.Draining = false;
}

/// Adopts every worker the registry has admitted since the last call,
/// and prunes dead dynamic links (their worker redials through the
/// registry, producing a fresh link — keeping the corpse would leak a
/// Links slot per flap). Callers must hold no Link pointers across
/// this call: the vector reshapes.
bool RemoteBackendImpl::adoptJoined() {
  if (!Fleet)
    return false;
  Links.erase(std::remove_if(Links.begin(), Links.end(),
                             [](const Link &L) {
                               return L.Dynamic && !L.alive();
                             }),
              Links.end());
  bool Any = false;
  for (JoinedWorker &W : Fleet->takeJoined()) {
    armSteadyTimeout(W.Fd);
    Link L;
    L.Peer = W.Peer;
    L.Fd = W.Fd;
    L.Dynamic = true;
    L.Advertised = std::max(W.Concurrency, 1u);
    L.LastRecv = Clock::now();
    Links.push_back(std::move(L));
    noteFleetJoin();
    Any = true;
  }
  return Any;
}

void RemoteBackendImpl::ensureLinks(bool Require) {
  auto TryAll = [&](bool IgnorePark) {
    unsigned Live = 0;
    for (Link &L : Links) {
      if (!L.alive())
        dialLink(L, IgnorePark);
      if (L.alive() && !L.Draining)
        ++Live;
    }
    return Live;
  };
  if (TryAll(/*IgnorePark=*/false) || !Require)
    return;
  // Nothing reachable and the caller cannot proceed without a worker:
  // keep re-dialling (and adopting rendezvous joins) on the jittered
  // backoff schedule for a bounded budget — a worker may be
  // restarting — then give up loudly; a campaign must never hang
  // silently on a dead fleet.
  Backoff Desperate(BackoffPolicy{50, 500, 2, 0.2},
                    fnv64("desperate-reconnect"));
  auto GiveUpAt = Clock::now() + std::chrono::milliseconds(ReconnectBudgetMs);
  while (Clock::now() < GiveUpAt) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(Desperate.nextDelayMs()));
    adoptJoined(); // a rendezvous worker may have joined meanwhile
    if (TryAll(/*IgnorePark=*/true))
      return;
  }
  std::string Tried;
  for (const Link &L : Links)
    Tried += (Tried.empty() ? "" : ", ") + L.name();
  if (Fleet)
    Tried += (Tried.empty() ? "" : "; ") + std::string("fleet registry :") +
             std::to_string(Fleet->port()) + " with no joined worker";
  throw std::runtime_error("remote backend: no reachable worker (tried " +
                           Tried + ")");
}

std::vector<RunOutcome>
RemoteBackendImpl::run(const std::vector<ExecJob> &Jobs) {
  std::vector<RunOutcome> Results(Jobs.size());
  if (Jobs.empty())
    return Results;

  adoptJoined();
  ensureLinks(/*Require=*/true);

  size_t NextJob = 0, Done = 0;
  std::vector<uint8_t> FailCount(Jobs.size(), 0);
  std::deque<size_t> RetryQueue;

  // A worker failure is ambiguous, exactly like a process-pool worker
  // death: the job may be the killer, or the worker may have died
  // under it (machine loss, operator, OOM). One requeue onto another
  // worker resolves it: an innocent job lands on its true result
  // (preserving bit-identity), a genuinely fatal job fails its second
  // worker too and is recorded — never silently dropped.
  auto RecordFailure = [&](uint64_t Tag, const std::string &How,
                           bool Deadline) {
    size_t Index = static_cast<size_t>(Tag);
    if (++FailCount[Index] <= 1) {
      RetryQueue.push_back(Index);
      noteFleetRequeues(1);
      return;
    }
    RunOutcome O;
    if (Deadline) {
      O.Status = RunStatus::Timeout;
      O.Message = "exceeded the remote job deadline (" +
                  std::to_string(TimeoutMs) +
                  " ms); worker disconnected by remote backend";
    } else {
      O.Status = RunStatus::Crash;
      O.Message = "remote worker connection lost (" + How +
                  "); isolated by remote backend";
    }
    Results[Index] = std::move(O);
    ++Done;
  };

  /// Tears a link down and requeues everything it had in flight.
  /// DeadlineTag (when HasDeadlineTag) is the job whose deadline
  /// expired — it fails as a deadline; window-mates fail as ordinary
  /// worker-death casualties. How lands verbatim in outcome messages
  /// (byte-compared campaign output — never reword); Slug is the
  /// kebab-case reason of the structured drop log.
  auto DropAndRequeue = [&](Link &L, const std::string &How,
                            const char *Slug, uint64_t DeadlineTag,
                            bool HasDeadlineTag) {
    std::map<uint64_t, Clock::time_point> Lost = std::move(L.InFlight);
    logFleetDrop("coordinator", L.name(), Slug);
    noteFleetEviction();
    dropLink(L);
    for (const auto &Entry : Lost)
      RecordFailure(Entry.first, How,
                    HasDeadlineTag && Entry.first == DeadlineTag);
  };

  auto Dispatch = [&] {
    for (Link &L : Links) {
      if (!L.alive() || L.Draining)
        continue;
      while (L.InFlight.size() < L.window()) {
        size_t Index;
        if (!RetryQueue.empty()) {
          Index = RetryQueue.front();
          RetryQueue.pop_front();
        } else if (NextJob < Jobs.size()) {
          Index = NextJob++;
        } else {
          break;
        }
        if (!wire::writeFrame(L.Fd, wire::FrameType::Job,
                              wire::encodeJob(Index, Jobs[Index]))) {
          // Died under the write: this job plus the window requeue.
          L.InFlight.emplace(Index, Clock::time_point::max());
          DropAndRequeue(L, "send failed", "send-failed", 0, false);
          break;
        }
        L.InFlight.emplace(
            Index, TimeoutMs ? Clock::now() + std::chrono::milliseconds(
                                                  TimeoutMs)
                             : Clock::time_point::max());
      }
    }
  };

  Dispatch();

  std::vector<pollfd> Fds;
  std::vector<Link *> FdOwner;
  while (Done < Jobs.size()) {
    // Shard boundaries are where the fleet breathes: adopt whatever
    // joined since the last iteration (reshapes Links — FdOwner is
    // rebuilt below), then make sure someone can still run jobs.
    if (adoptJoined())
      Dispatch();
    bool AnyBusy = false;
    for (Link &L : Links)
      AnyBusy = AnyBusy || L.busy();
    if (!AnyBusy) {
      // Jobs remain but nothing is in flight: every worker is dead or
      // drained. Re-dial the fleet (throws if nothing comes back) and
      // retry.
      ensureLinks(/*Require=*/true);
      Dispatch();
      continue;
    }

    // Poll every live link, not just the busy ones: an idle link is
    // exactly where a leave frame or an unannounced death shows up,
    // and both must be noticed before the next dispatch would trust
    // the link with jobs.
    Fds.clear();
    FdOwner.clear();
    for (Link &L : Links)
      if (L.alive()) {
        Fds.push_back({L.Fd, POLLIN, 0});
        FdOwner.push_back(&L);
      }

    // Poll until the next scheduled event: the earliest job deadline
    // or the earliest heartbeat action (probe due / probe overdue).
    auto Earliest = Clock::time_point::max();
    for (Link *L : FdOwner) {
      if (!L->busy())
        continue;
      if (TimeoutMs)
        for (const auto &Entry : L->InFlight)
          Earliest = std::min(Earliest, Entry.second);
      if (HeartbeatMs) {
        auto Hb = (L->PingOutstanding ? L->PingSent : L->LastRecv) +
                  std::chrono::milliseconds(HeartbeatMs);
        Earliest = std::min(Earliest, Hb);
      }
    }
    // With a registry, wake periodically even with no scheduled event
    // so fresh joins are adopted promptly mid-shard.
    int PollTimeout = Fleet ? 200 : -1;
    if (Earliest != Clock::time_point::max()) {
      auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      Earliest - Clock::now())
                      .count();
      int Ms = Left < 0 ? 0 : static_cast<int>(Left) + 1;
      PollTimeout = PollTimeout < 0 ? Ms : std::min(PollTimeout, Ms);
    }

    int Ready = ::poll(Fds.data(), Fds.size(), PollTimeout);
    if (Ready < 0) {
      if (errno == EINTR)
        continue;
      throw std::runtime_error("remote backend: poll failed");
    }

    for (size_t I = 0; I != Fds.size(); ++I) {
      if (!(Fds[I].revents & (POLLIN | POLLHUP | POLLERR)))
        continue;
      Link &L = *FdOwner[I];
      if (!L.alive())
        continue; // torn down earlier in this sweep
      wire::Frame F;
      wire::ReadStatus RS = wire::readFrame(L.Fd, F);
      if (RS != wire::ReadStatus::Ok) {
        DropAndRequeue(L,
                       RS == wire::ReadStatus::Eof ? "connection closed"
                                                   : "garbage frame",
                       RS == wire::ReadStatus::Eof ? "peer-closed"
                                                   : "garbage-frame",
                       0, false);
        continue;
      }
      try {
        if (F.Type == wire::FrameType::Outcome) {
          wire::DecodedOutcome D = wire::decodeOutcome(F);
          auto It = L.InFlight.find(D.Tag);
          if (It != L.InFlight.end()) {
            Results[static_cast<size_t>(D.Tag)] = std::move(D.Outcome);
            ++Done;
            L.InFlight.erase(It);
          }
          L.LastRecv = Clock::now();
          L.PingOutstanding = false;
        } else if (F.Type == wire::FrameType::HeartbeatAck) {
          wire::decodeHeartbeat(F);
          L.LastRecv = Clock::now();
          L.PingOutstanding = false;
        } else if (F.Type == wire::FrameType::Leave) {
          // Graceful drain: nothing new to this link; its in-flight
          // window completes normally (zero requeues), then the
          // finalize sweep below closes it.
          L.Draining = true;
          L.LastRecv = Clock::now();
        } else {
          throw std::runtime_error("unexpected " +
                                   std::string(wire::frameTypeName(F.Type)) +
                                   " frame");
        }
      } catch (const std::exception &E) {
        DropAndRequeue(L, E.what(), "protocol-error", 0, false);
      }
    }

    auto Now = Clock::now();

    if (TimeoutMs)
      for (Link &L : Links) {
        if (!L.busy())
          continue;
        uint64_t Expired = 0;
        bool HasExpired = false;
        for (const auto &Entry : L.InFlight)
          if (Entry.second <= Now) {
            Expired = Entry.first;
            HasExpired = true;
            break;
          }
        if (HasExpired)
          DropAndRequeue(L,
                         "a job missed the " + std::to_string(TimeoutMs) +
                             " ms remote deadline",
                         "deadline", Expired, true);
      }

    if (HeartbeatMs)
      for (Link &L : Links) {
        if (!L.busy())
          continue;
        auto Interval = std::chrono::milliseconds(HeartbeatMs);
        if (L.PingOutstanding) {
          if (Now >= L.PingSent + Interval)
            DropAndRequeue(L, "heartbeat unanswered", "heartbeat-miss", 0,
                           false);
        } else if (Now >= L.LastRecv + Interval) {
          if (wire::writeFrame(L.Fd, wire::FrameType::Heartbeat,
                               wire::encodeHeartbeat(NextNonce++))) {
            L.PingOutstanding = true;
            L.PingSent = Now;
          } else {
            DropAndRequeue(L, "send failed", "send-failed", 0, false);
          }
        }
      }

    // Finalize drains: a draining link whose window has emptied is
    // done — it handed every in-flight job back as a normal outcome.
    for (Link &L : Links)
      if (L.alive() && L.Draining && L.InFlight.empty()) {
        wire::writeFrame(L.Fd, wire::FrameType::Shutdown, {});
        logFleetDrop("coordinator", L.name(), "drained");
        noteFleetLeave();
        dropLink(L);
      }

    Dispatch();
  }
  return Results;
}

} // namespace

std::unique_ptr<ExecBackend>
clfuzz::makeRemoteBackend(const ExecOptions &Opts) {
  return std::make_unique<RemoteBackendImpl>(Opts);
}

#else // no POSIX sockets

std::unique_ptr<clfuzz::ExecBackend>
clfuzz::makeRemoteBackend(const clfuzz::ExecOptions &) {
  throw std::runtime_error(
      "remote backend: POSIX sockets are unavailable on this platform");
}

#endif
