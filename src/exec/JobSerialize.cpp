//===- JobSerialize.cpp - Wire format for cross-process jobs -----------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "exec/JobSerialize.h"
#include "device/DeviceConfig.h"
#include "support/Hash.h"

#include <cstring>
#include <stdexcept>

using namespace clfuzz;

void WireWriter::u32(uint32_t V) {
  for (int I = 0; I != 4; ++I)
    Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void WireWriter::u64(uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void WireWriter::f64(double V) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(V), "double must be 64-bit");
  std::memcpy(&Bits, &V, sizeof(Bits));
  u64(Bits);
}

void WireWriter::str(const std::string &S) {
  u32(static_cast<uint32_t>(S.size()));
  Buf.insert(Buf.end(), S.begin(), S.end());
}

void WireWriter::bytes(const std::vector<uint8_t> &B) {
  u32(static_cast<uint32_t>(B.size()));
  Buf.insert(Buf.end(), B.begin(), B.end());
}

void WireReader::need(size_t N) const {
  if (static_cast<size_t>(End - P) < N)
    throw std::runtime_error("truncated job frame");
}

uint8_t WireReader::u8() {
  need(1);
  return *P++;
}

uint32_t WireReader::u32() {
  need(4);
  uint32_t V = 0;
  for (int I = 0; I != 4; ++I)
    V |= static_cast<uint32_t>(*P++) << (8 * I);
  return V;
}

uint64_t WireReader::u64() {
  need(8);
  uint64_t V = 0;
  for (int I = 0; I != 8; ++I)
    V |= static_cast<uint64_t>(*P++) << (8 * I);
  return V;
}

double WireReader::f64() {
  uint64_t Bits = u64();
  double V;
  std::memcpy(&V, &Bits, sizeof(V));
  return V;
}

std::string WireReader::str() {
  uint32_t N = u32();
  need(N);
  std::string S(reinterpret_cast<const char *>(P), N);
  P += N;
  return S;
}

std::vector<uint8_t> WireReader::bytes() {
  uint32_t N = u32();
  need(N);
  std::vector<uint8_t> B(P, P + N);
  P += N;
  return B;
}

namespace {

void writeLayout(WireWriter &W, const LayoutOptions &L) {
  W.u8(L.CharStructInitBug);
  W.u8(L.UnionInitBug);
}

LayoutOptions readLayout(WireReader &R) {
  LayoutOptions L;
  L.CharStructInitBug = R.u8();
  L.UnionInitBug = R.u8();
  return L;
}

void writeBugModel(WireWriter &W, const DeviceBugModel &B) {
  W.u8(B.RejectSizeTMix);
  W.u8(B.RejectVectorLogicalOps);
  W.u8(B.RejectVectorsInStructs);
  W.u8(B.CompileHangOnInfiniteLoop);
  W.u8(B.SlowStructBarrierCompile);
  W.f64(B.BuildFailLottery);
  writeLayout(W, B.Layout);
  W.u8(B.CommaDropsRhsBug);
  W.u8(B.SwizzleHighLaneBug);
  W.u8(B.VolatileStructCopyBug);
  W.u8(B.RotateFoldBug);
  W.u8(B.ShiftSafeFoldBug);
  W.u8(B.CmpMinusOneBug);
  W.u8(B.BarrierCallRetvalBug);
  W.f64(B.EmiDceBugRate);
  W.u8(B.BreakOnShiftBug);
  W.u8(B.BreakOnAndBug);
  W.u8(B.ShiftMarkBug);
  W.u8(B.MarkBreakBug);
  W.u8(B.BarrierInFunctionCrash);
  W.f64(B.CrashLottery);
  W.f64(B.SpeedFactor);
}

DeviceBugModel readBugModel(WireReader &R) {
  DeviceBugModel B;
  B.RejectSizeTMix = R.u8();
  B.RejectVectorLogicalOps = R.u8();
  B.RejectVectorsInStructs = R.u8();
  B.CompileHangOnInfiniteLoop = R.u8();
  B.SlowStructBarrierCompile = R.u8();
  B.BuildFailLottery = R.f64();
  B.Layout = readLayout(R);
  B.CommaDropsRhsBug = R.u8();
  B.SwizzleHighLaneBug = R.u8();
  B.VolatileStructCopyBug = R.u8();
  B.RotateFoldBug = R.u8();
  B.ShiftSafeFoldBug = R.u8();
  B.CmpMinusOneBug = R.u8();
  B.BarrierCallRetvalBug = R.u8();
  B.EmiDceBugRate = R.f64();
  B.BreakOnShiftBug = R.u8();
  B.BreakOnAndBug = R.u8();
  B.ShiftMarkBug = R.u8();
  B.MarkBreakBug = R.u8();
  B.BarrierInFunctionCrash = R.u8();
  B.CrashLottery = R.f64();
  B.SpeedFactor = R.f64();
  return B;
}

void writeConfig(WireWriter &W, const DeviceConfig &C) {
  W.u32(static_cast<uint32_t>(C.Id));
  W.str(C.Sdk);
  W.str(C.Device);
  W.str(C.Driver);
  W.str(C.OpenClVersion);
  W.str(C.Os);
  W.u8(static_cast<uint8_t>(C.Type));
  writeBugModel(W, C.BugsO0);
  writeBugModel(W, C.BugsO2);
  W.u8(C.NoOptimizer);
  W.u64(C.Salt);
  W.u32(static_cast<uint32_t>(C.IceMessages.size()));
  for (const std::string &S : C.IceMessages)
    W.str(S);
  W.u8(C.PaperAboveThreshold);
}

DeviceConfig readConfig(WireReader &R) {
  DeviceConfig C;
  C.Id = static_cast<int>(R.u32());
  C.Sdk = R.str();
  C.Device = R.str();
  C.Driver = R.str();
  C.OpenClVersion = R.str();
  C.Os = R.str();
  C.Type = static_cast<DeviceConfig::Kind>(R.u8());
  C.BugsO0 = readBugModel(R);
  C.BugsO2 = readBugModel(R);
  C.NoOptimizer = R.u8();
  C.Salt = R.u64();
  uint32_t NumIce = R.u32();
  C.IceMessages.reserve(NumIce);
  for (uint32_t I = 0; I != NumIce; ++I)
    C.IceMessages.push_back(R.str());
  C.PaperAboveThreshold = R.u8();
  return C;
}

void writeTest(WireWriter &W, const TestCase &T) {
  W.str(T.Name);
  W.str(T.Source);
  for (int D = 0; D != 3; ++D)
    W.u32(T.Range.Global[D]);
  for (int D = 0; D != 3; ++D)
    W.u32(T.Range.Local[D]);
  W.u32(static_cast<uint32_t>(T.Buffers.size()));
  for (const BufferSpec &B : T.Buffers) {
    W.u8(static_cast<uint8_t>(B.Space));
    W.bytes(B.InitBytes);
    W.u8(B.IsDeadArray);
    W.u8(B.IsOutput);
  }
}

TestCase readTest(WireReader &R) {
  TestCase T;
  T.Name = R.str();
  T.Source = R.str();
  for (int D = 0; D != 3; ++D)
    T.Range.Global[D] = R.u32();
  for (int D = 0; D != 3; ++D)
    T.Range.Local[D] = R.u32();
  uint32_t NumBuffers = R.u32();
  T.Buffers.reserve(NumBuffers);
  for (uint32_t I = 0; I != NumBuffers; ++I) {
    BufferSpec B;
    B.Space = static_cast<AddressSpace>(R.u8());
    B.InitBytes = R.bytes();
    B.IsDeadArray = R.u8();
    B.IsOutput = R.u8();
    T.Buffers.push_back(std::move(B));
  }
  return T;
}

void writeSettings(WireWriter &W, const RunSettings &S) {
  W.u64(S.BaseStepBudget);
  W.u64(S.SchedulerSeed);
  W.u8(S.InvertDead);
  W.u8(S.DetectRaces);
  W.u8(S.DebugHardAbort);
  W.u32(S.DebugSpinMs);
  W.u64(S.PassMask);
}

RunSettings readSettings(WireReader &R) {
  RunSettings S;
  S.BaseStepBudget = R.u64();
  S.SchedulerSeed = R.u64();
  S.InvertDead = R.u8();
  S.DetectRaces = R.u8();
  S.DebugHardAbort = R.u8();
  S.DebugSpinMs = R.u32();
  S.PassMask = R.u64();
  return S;
}

} // namespace

ExecJob OwnedExecJob::view() const {
  ExecJob J;
  J.Test = &Test;
  J.Config = Config ? &*Config : nullptr;
  J.Opt = Opt;
  J.Settings = Settings;
  return J;
}

void clfuzz::serializeExecJob(WireWriter &W, const ExecJob &Job) {
  writeTest(W, *Job.Test);
  W.u8(Job.Config != nullptr);
  if (Job.Config)
    writeConfig(W, *Job.Config);
  W.u8(Job.Opt);
  writeSettings(W, Job.Settings);
}

OwnedExecJob clfuzz::deserializeExecJob(WireReader &R) {
  OwnedExecJob J;
  J.Test = readTest(R);
  if (R.u8())
    J.Config = readConfig(R);
  J.Opt = R.u8();
  J.Settings = readSettings(R);
  return J;
}

ExecColumn OwnedExecColumn::view() const {
  ExecColumn Col;
  Col.Jobs.reserve(Cells.size());
  for (const Cell &C : Cells) {
    ExecJob J;
    J.Test = &Test;
    J.Config = C.Config ? &*C.Config : nullptr;
    J.Opt = C.Opt;
    J.Settings = C.Settings;
    Col.Jobs.push_back(J);
  }
  return Col;
}

void clfuzz::serializeExecColumn(WireWriter &W, const ExecColumn &Column) {
  writeTest(W, *Column.Jobs.front().Test);
  W.u32(static_cast<uint32_t>(Column.Jobs.size()));
  for (const ExecJob &Job : Column.Jobs) {
    W.u8(Job.Config != nullptr);
    if (Job.Config)
      writeConfig(W, *Job.Config);
    W.u8(Job.Opt);
    writeSettings(W, Job.Settings);
  }
}

OwnedExecColumn clfuzz::deserializeExecColumn(WireReader &R) {
  OwnedExecColumn Col;
  Col.Test = readTest(R);
  uint32_t N = R.u32();
  Col.Cells.reserve(N);
  for (uint32_t I = 0; I != N; ++I) {
    OwnedExecColumn::Cell C;
    if (R.u8())
      C.Config = readConfig(R);
    C.Opt = R.u8();
    C.Settings = readSettings(R);
    Col.Cells.push_back(std::move(C));
  }
  return Col;
}

std::vector<uint8_t> clfuzz::descriptorBytes(const ExecJob &Job) {
  WireWriter W;
  serializeExecJob(W, Job);
  return W.buffer();
}

uint64_t clfuzz::hashDescriptor(const ExecJob &Job) {
  WireWriter W;
  serializeExecJob(W, Job);
  return fnv64(W.buffer().data(), W.buffer().size());
}

void clfuzz::serializeRunOutcome(WireWriter &W, const RunOutcome &O) {
  W.u8(static_cast<uint8_t>(O.Status));
  W.str(O.Message);
  W.u64(O.OutputHash);
  W.u32(static_cast<uint32_t>(O.OutputHead.size()));
  for (uint64_t V : O.OutputHead)
    W.u64(V);
  W.u64(O.Steps);
  W.u8(O.RaceFound);
  W.str(O.RaceMessage);
}

RunOutcome clfuzz::deserializeRunOutcome(WireReader &R) {
  RunOutcome O;
  O.Status = static_cast<RunStatus>(R.u8());
  O.Message = R.str();
  O.OutputHash = R.u64();
  uint32_t HeadLen = R.u32();
  O.OutputHead.reserve(HeadLen);
  for (uint32_t I = 0; I != HeadLen; ++I)
    O.OutputHead.push_back(R.u64());
  O.Steps = R.u64();
  O.RaceFound = R.u8();
  O.RaceMessage = R.str();
  return O;
}
