//===- WorkerLoop.h - clfuzz worker: socket-fed job executor ----*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The worker half of multi-host campaign execution: a TCP server
/// that accepts coordinator connections, speaks the framed protocol
/// of exec/WireProtocol.h (specified in docs/wire-protocol.md), and
/// runs each received ExecJob through a *local, fork-isolated*
/// process-pool slot — so a job that crashes the VM or blows its
/// wall-clock deadline kills one disposable subprocess on the worker
/// machine, is reported back as that job's Crash/Timeout outcome, and
/// the worker keeps serving. A `clfuzz worker` on another machine is
/// the paper's "many cores" knob turned past one host.
///
/// Shape: one service thread per accepted connection (a campaign
/// coordinator and several background reduction jobs can all be
/// clients of the same worker at once); per connection, `Jobs`
/// executor slots, each owning a single-subprocess ProcessPoolBackend
/// (exec/ProcessPool.h), so outcomes stream back as they complete —
/// possibly out of submission order, which is why every outcome
/// echoes its job's tag. Determinism is inherited wholesale: a job
/// descriptor is a pure function of its bytes (exec/JobSerialize.h),
/// so where it runs is unobservable in campaign output.
///
/// Two ways onto a fleet (docs/fleet.md): listen mode (the worker
/// binds a port and coordinators dial it — the static `--workers=`
/// flow) and rendezvous mode (`--connect=host:port`: the worker dials
/// the coordinator's FleetRegistry, registers with a wire-v3 join
/// frame, and redials on a jittered exponential backoff whenever the
/// connection drops — so the fleet grows mid-campaign and a bounced
/// worker rejoins by itself).
///
/// WorkerServer is embeddable (tests/RemoteBackendTest.cpp runs
/// loopback workers in-process); `clfuzz worker` wraps it in
/// runWorkerCommand. The fault-injection options model the failure
/// modes the coordinator must survive: DieAfterJobs hard-closes the
/// server before the Nth outcome is sent (worker death with jobs in
/// flight), IgnoreJobs swallows jobs and heartbeats (wedged worker),
/// DrainAfterJobs leaves gracefully, FlapAfterJobs kills and redials
/// the connection in a loop, StaleJoins rehearses the
/// stale-cache-generation rejection. Every connection teardown emits
/// the structured drop line of exec/FleetRegistry.h.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_EXEC_WORKERLOOP_H
#define CLFUZZ_EXEC_WORKERLOOP_H

#include "exec/OutcomeCache.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace clfuzz {

/// Configuration for a worker server (`clfuzz worker` flags map 1:1).
struct WorkerOptions {
  /// Interface to bind ("127.0.0.1" for loopback-only workers;
  /// "0.0.0.0" to serve a real fleet).
  std::string Host = "127.0.0.1";

  /// Listen port; 0 binds an ephemeral port (the bound port is
  /// reported by WorkerServer::port() and printed by `clfuzz worker`).
  unsigned Port = 0;

  /// Rendezvous mode (`--connect=host:port`): dial this coordinator's
  /// fleet registry and register instead of listening. Host/Port are
  /// ignored when set; the worker redials with jittered exponential
  /// backoff whenever the connection drops or a join is refused.
  std::string Connect;

  /// Executor slots per connection (0 = one per hardware thread).
  /// Advertised to the coordinator in the hello-ack so it can size
  /// its in-flight window.
  unsigned Jobs = 1;

  /// Wall-clock deadline per job, enforced by each slot's local
  /// process pool (0 = none). Outcome messages match --backend=procs
  /// with the same ProcTimeoutMs, keeping remote output bit-identical.
  unsigned ProcTimeoutMs = 0;

  /// Fault injection: after executing this many jobs (across all
  /// connections), hard-close every socket *before* sending the Nth
  /// outcome — a worker dying with jobs in flight. 0 disables.
  unsigned DieAfterJobs = 0;

  /// Fault injection: complete the handshake, then silently discard
  /// every job and heartbeat — a wedged worker the coordinator can
  /// only detect by timeout. Off by default, obviously.
  bool IgnoreJobs = false;

  /// Fault injection / operations: after executing this many jobs
  /// (across all connections), send a wire-v3 leave frame — the
  /// coordinator finishes this worker's in-flight window, dispatches
  /// nothing new, and closes gracefully with zero requeues. The
  /// worker process then exits (runWorkerCommand) or reports
  /// drained(). 0 disables.
  unsigned DrainAfterJobs = 0;

  /// Fault injection: a flapping worker — after executing this many
  /// jobs *on one connection*, suppress that outcome and hard-close
  /// the connection, then (in rendezvous mode) redial with backoff
  /// and do it again. Models the die/redial loop of a machine cycling
  /// under an unstable supply of anything. 0 disables. Keep it above
  /// the in-flight window (2 x Jobs) so every killed job completes on
  /// its retry before the next flap — the byte-identity chaos tests
  /// rely on that. 0 disables.
  unsigned FlapAfterJobs = 0;

  /// Fault injection, rendezvous mode only: announce a wrong cache
  /// generation in the first N join frames. The registry must refuse
  /// each (join-ack accepted=0), the worker must clear its cache and
  /// redial with backoff, and join N+1 succeeds. 0 disables.
  unsigned StaleJoins = 0;

  /// Worker-side outcome cache (`--cache=off|mem|disk`): repeated
  /// descriptors — the reference runs campaigns re-dispatch per
  /// configuration column, reduction re-probes — are served without a
  /// fork. Shared by every executor slot of every connection. Cleared
  /// when a coordinator's hello announces a different cache
  /// generation (exec/WireProtocol.h).
  CacheMode Cache = CacheMode::Off;
  /// Disk store root (`--cache-dir=`); survives worker restarts.
  std::string CacheDir;
  /// In-memory cache budget in MiB (`--cache-mem-mb=`; 0 = default).
  unsigned CacheMemMb = 0;
};

/// A running worker server. start() binds and begins accepting;
/// stop() (or the destructor) closes everything and joins all
/// threads, waiting for in-flight jobs to finish or die.
class WorkerServer {
public:
  explicit WorkerServer(WorkerOptions Opts = WorkerOptions());
  ~WorkerServer();

  WorkerServer(const WorkerServer &) = delete;
  WorkerServer &operator=(const WorkerServer &) = delete;

  /// Binds and starts the accept loop; false if the bind failed (port
  /// in use, no socket support on this platform).
  bool start();

  /// The actually bound port (after start(); resolves Port == 0).
  unsigned port() const { return BoundPort; }

  /// Executor slots per connection (Opts.Jobs with 0 resolved to the
  /// hardware concurrency) — the value advertised in every hello-ack.
  unsigned jobsPerConnection() const { return ResolvedJobs; }

  /// Closes the listen socket and every connection, then joins all
  /// service threads. Idempotent.
  void stop();

  /// Jobs fully executed so far (outcomes sent or suppressed by
  /// DieAfterJobs). Cache-served jobs are not executions and are not
  /// counted here — fault injection triggers on real work.
  size_t jobsExecuted() const { return Executed.load(); }

  /// Jobs answered from the worker-side outcome cache (0 without one).
  size_t jobsServedFromCache() const { return CacheServed.load(); }

  /// Outcome-cache counters (all zero when caching is off).
  OutcomeCacheStats cacheStats() const {
    return Cache ? Cache->stats() : OutcomeCacheStats();
  }

  /// True once DieAfterJobs tripped and the server self-destructed.
  bool died() const { return Died.load(); }

  /// True once a DrainAfterJobs leave completed (the draining
  /// connection was closed by the coordinator with its window empty).
  bool drained() const { return Drained.load(); }

  /// Rendezvous mode: joins accepted by the registry so far (a
  /// flapping worker accumulates one per redial cycle).
  size_t joinsCompleted() const { return Joins.load(); }

private:
  struct Connection;

  /// Handshake hook: a coordinator announcing a cache generation
  /// different from the one the cache was filled under drops every
  /// in-memory entry (disk entries are version-checked on read).
  void noteCacheGeneration(uint64_t Gen);

  void acceptLoop();
  /// Rendezvous mode: dial-join-serve-redial, on the worker-side
  /// backoff schedule, until stopped, died, or drained.
  void dialerLoop();
  /// Backoff/retry sleep that stop() and die/drain can interrupt.
  void sleepInterruptible(unsigned Ms);
  void serveConnection(Connection &Conn);
  void runnerLoop(Connection &Conn);
  /// Abrupt self-destruction (DieAfterJobs): closes every fd so all
  /// peers see EOF; threads wind down on their own and are joined by
  /// stop(). Safe to call from a runner thread.
  void closeAllSockets();

  WorkerOptions Opts;
  unsigned ResolvedJobs = 1;
  unsigned BoundPort = 0;
  std::atomic<int> ListenFd{-1};
  std::thread Acceptor;
  std::string DialHost; ///< parsed from Opts.Connect
  unsigned DialPort = 0;
  std::thread Dialer;
  std::mutex StopMu;
  std::condition_variable StopCV;
  std::atomic<bool> Stopping{false};
  std::atomic<bool> Died{false};
  std::atomic<bool> Drained{false};
  std::atomic<bool> DrainRequested{false};
  std::atomic<size_t> Joins{0};
  std::atomic<unsigned> StaleLeft{0};
  std::atomic<size_t> Executed{0};
  std::atomic<size_t> CacheServed{0};
  std::shared_ptr<OutcomeCache> Cache; ///< null when caching is off
  std::atomic<uint64_t> CacheGen{0};   ///< generation the cache holds

  std::mutex ConnsMu;
  std::vector<std::unique_ptr<Connection>> Conns;
};

/// Blocking entry point for `clfuzz worker`: starts a WorkerServer,
/// prints the "listening on host:port" line (stdout, flushed — the CI
/// scripts parse it to learn an ephemeral port), and serves until
/// SIGINT/SIGTERM. Returns a process exit code.
int runWorkerCommand(const WorkerOptions &Opts);

} // namespace clfuzz

#endif // CLFUZZ_EXEC_WORKERLOOP_H
