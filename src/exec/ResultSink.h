//===- ResultSink.h - Streaming result aggregation --------------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The consumer half of the streaming campaign pipeline
/// (TestSource -> ExecBackend -> ResultSink). A sink receives each
/// test's outcomes exactly once, keyed by the test's global submission
/// index and with the outcomes in job-expansion order — never in
/// completion order — so aggregation is bit-identical for every
/// backend, worker count and shard size. Sinks aggregate as results
/// stream past (a vote, a tally, an emitted row) and hold bounded
/// state: a paper-scale campaign flows through without the result set
/// ever being materialised.
///
/// Campaign-specific voting sinks (Tables 1/4/5) live with the
/// campaign drivers in src/oracle/Campaign.cpp; this file provides the
/// interface plus generic sinks and the CSV/JSON table emitters.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_EXEC_RESULTSINK_H
#define CLFUZZ_EXEC_RESULTSINK_H

#include "device/Driver.h"

#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace clfuzz {

/// Streaming consumer of campaign results.
class ResultSink {
public:
  virtual ~ResultSink();

  /// Called once per test, in submission order (TestIndex is the
  /// test's global index in the source's sequence). \p Outcomes holds
  /// the results of the test's jobs in the order they were expanded.
  virtual void consumeTest(size_t TestIndex, const TestCase &Test,
                           const std::vector<RunOutcome> &Outcomes) = 0;

  /// Called once after the source is exhausted.
  virtual void finish() {}
};

/// Counts outcome statuses across every job of every test.
class OutcomeTallySink : public ResultSink {
public:
  void consumeTest(size_t TestIndex, const TestCase &Test,
                   const std::vector<RunOutcome> &Outcomes) override;

  unsigned Tests = 0;
  unsigned Jobs = 0;
  std::map<RunStatus, unsigned> ByStatus;
};

/// Streams one CSV row per (test, job) to \p Out as results arrive:
/// test_index,test_name,job_label,status,output_hash,steps. The
/// header is written on construction (an empty campaign is still a
/// valid CSV). Job labels name the expansion order's cells (e.g.
/// "12+"); when fewer labels than jobs are given, the numeric job
/// index is used.
class CsvOutcomeSink : public ResultSink {
public:
  CsvOutcomeSink(std::FILE *Out, std::vector<std::string> JobLabels);

  void consumeTest(size_t TestIndex, const TestCase &Test,
                   const std::vector<RunOutcome> &Outcomes) override;

private:
  std::FILE *Out;
  std::vector<std::string> JobLabels;
};

/// Streams one JSON object per line (JSONL) per (test, job).
class JsonlOutcomeSink : public ResultSink {
public:
  JsonlOutcomeSink(std::FILE *Out, std::vector<std::string> JobLabels);

  void consumeTest(size_t TestIndex, const TestCase &Test,
                   const std::vector<RunOutcome> &Outcomes) override;

private:
  std::FILE *Out;
  std::vector<std::string> JobLabels;
};

//===----------------------------------------------------------------------===//
// Table emitters
//===----------------------------------------------------------------------===//

/// A finished table (Tables 1-5, the benchmark inventory, ...) in
/// emitter-neutral form: the harnesses build one of these from their
/// aggregated results and render it as CSV or JSON.
struct EmitTable {
  std::string Title;
  std::vector<std::string> Columns;
  std::vector<std::vector<std::string>> Rows;

  void addRow(std::vector<std::string> Row) { Rows.push_back(std::move(Row)); }
};

enum class TableFormat : uint8_t {
  Text, ///< the harness's native printf layout (emitTable ignores it)
  Csv,
  Json,
};

/// Parses a --format= value ("text", "csv", "json").
bool parseTableFormat(const std::string &Name, TableFormat &Out);

/// Renders \p T to \p Out as CSV (RFC-4180-style quoting) or as a JSON
/// object {"title", "columns", "rows"}. TableFormat::Text is the
/// caller's own layout and is not handled here.
void emitTable(const EmitTable &T, TableFormat Format, std::FILE *Out);

} // namespace clfuzz

#endif // CLFUZZ_EXEC_RESULTSINK_H
