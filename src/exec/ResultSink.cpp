//===- ResultSink.cpp - Streaming result aggregation -------------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "exec/ResultSink.h"
#include "support/StringUtil.h"

using namespace clfuzz;

ResultSink::~ResultSink() = default;

void OutcomeTallySink::consumeTest(size_t, const TestCase &,
                                   const std::vector<RunOutcome> &Outcomes) {
  ++Tests;
  for (const RunOutcome &O : Outcomes) {
    ++Jobs;
    ++ByStatus[O.Status];
  }
}

namespace {

const std::string &jobLabel(const std::vector<std::string> &Labels, size_t I,
                            std::string &Scratch) {
  if (I < Labels.size())
    return Labels[I];
  Scratch = std::to_string(I);
  return Scratch;
}

/// CSV field quoting (RFC 4180): quote when the value contains a
/// comma, quote or newline; double embedded quotes.
std::string csvField(const std::string &V) {
  if (V.find_first_of(",\"\n") == std::string::npos)
    return V;
  std::string Q = "\"";
  for (char C : V) {
    if (C == '"')
      Q += '"';
    Q += C;
  }
  Q += '"';
  return Q;
}

/// Minimal JSON string escaping.
std::string jsonString(const std::string &V) {
  std::string S = "\"";
  for (char C : V) {
    switch (C) {
    case '"':
      S += "\\\"";
      break;
    case '\\':
      S += "\\\\";
      break;
    case '\n':
      S += "\\n";
      break;
    case '\t':
      S += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        S += Buf;
      } else {
        S += C;
      }
    }
  }
  S += '"';
  return S;
}

} // namespace

CsvOutcomeSink::CsvOutcomeSink(std::FILE *Out,
                               std::vector<std::string> JobLabels)
    : Out(Out), JobLabels(std::move(JobLabels)) {
  // Header up front, so an empty campaign still emits a valid CSV.
  std::fprintf(Out, "test_index,test_name,job,status,output_hash,steps\n");
}

void CsvOutcomeSink::consumeTest(size_t TestIndex, const TestCase &Test,
                                 const std::vector<RunOutcome> &Outcomes) {
  std::string Scratch;
  for (size_t I = 0; I != Outcomes.size(); ++I) {
    const RunOutcome &O = Outcomes[I];
    std::fprintf(Out, "%zu,%s,%s,%s,%s,%llu\n", TestIndex,
                 csvField(Test.Name).c_str(),
                 csvField(jobLabel(JobLabels, I, Scratch)).c_str(),
                 runStatusName(O.Status),
                 O.ok() ? toHex(O.OutputHash).c_str() : "",
                 static_cast<unsigned long long>(O.Steps));
  }
}

JsonlOutcomeSink::JsonlOutcomeSink(std::FILE *Out,
                                   std::vector<std::string> JobLabels)
    : Out(Out), JobLabels(std::move(JobLabels)) {}

void JsonlOutcomeSink::consumeTest(size_t TestIndex, const TestCase &Test,
                                   const std::vector<RunOutcome> &Outcomes) {
  std::string Scratch;
  for (size_t I = 0; I != Outcomes.size(); ++I) {
    const RunOutcome &O = Outcomes[I];
    std::fprintf(Out,
                 "{\"test\":%zu,\"name\":%s,\"job\":%s,\"status\":\"%s\"",
                 TestIndex, jsonString(Test.Name).c_str(),
                 jsonString(jobLabel(JobLabels, I, Scratch)).c_str(),
                 runStatusName(O.Status));
    if (O.ok())
      std::fprintf(Out, ",\"output_hash\":\"%s\"",
                   toHex(O.OutputHash).c_str());
    else
      std::fprintf(Out, ",\"message\":%s", jsonString(O.Message).c_str());
    std::fprintf(Out, ",\"steps\":%llu}\n",
                 static_cast<unsigned long long>(O.Steps));
  }
}

bool clfuzz::parseTableFormat(const std::string &Name, TableFormat &Out) {
  if (Name == "text")
    Out = TableFormat::Text;
  else if (Name == "csv")
    Out = TableFormat::Csv;
  else if (Name == "json")
    Out = TableFormat::Json;
  else
    return false;
  return true;
}

void clfuzz::emitTable(const EmitTable &T, TableFormat Format,
                       std::FILE *Out) {
  switch (Format) {
  case TableFormat::Text:
    // The harnesses own their text layout; nothing to do here.
    return;
  case TableFormat::Csv: {
    for (size_t I = 0; I != T.Columns.size(); ++I)
      std::fprintf(Out, "%s%s", I ? "," : "", csvField(T.Columns[I]).c_str());
    std::fprintf(Out, "\n");
    for (const std::vector<std::string> &Row : T.Rows) {
      for (size_t I = 0; I != Row.size(); ++I)
        std::fprintf(Out, "%s%s", I ? "," : "", csvField(Row[I]).c_str());
      std::fprintf(Out, "\n");
    }
    return;
  }
  case TableFormat::Json: {
    std::fprintf(Out, "{\"title\":%s,\"columns\":[",
                 jsonString(T.Title).c_str());
    for (size_t I = 0; I != T.Columns.size(); ++I)
      std::fprintf(Out, "%s%s", I ? "," : "",
                   jsonString(T.Columns[I]).c_str());
    std::fprintf(Out, "],\"rows\":[");
    for (size_t R = 0; R != T.Rows.size(); ++R) {
      std::fprintf(Out, "%s[", R ? "," : "");
      for (size_t I = 0; I != T.Rows[R].size(); ++I)
        std::fprintf(Out, "%s%s", I ? "," : "",
                     jsonString(T.Rows[R][I]).c_str());
      std::fprintf(Out, "]");
    }
    std::fprintf(Out, "]}\n");
    return;
  }
  }
}
