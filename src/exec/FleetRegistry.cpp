//===- FleetRegistry.cpp - Rendezvous point for elastic fleets ---------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "exec/FleetRegistry.h"

#include "exec/WireProtocol.h"

#include <cstdio>
#include <stdexcept>

using namespace clfuzz;

//===----------------------------------------------------------------------===//
// Fleet counters
//===----------------------------------------------------------------------===//

namespace {

// Process-wide, relaxed: written only inside RemoteBackend::run(),
// which the campaign scheduler serializes per step, so snapshot/delta
// attribution (sched/CampaignScheduler.cpp) is exact — the same
// scheme as the triage counters (triage/Triage.cpp).
std::atomic<uint64_t> GFleetJoins{0};
std::atomic<uint64_t> GFleetLeaves{0};
std::atomic<uint64_t> GFleetEvictions{0};
std::atomic<uint64_t> GFleetRedials{0};
std::atomic<uint64_t> GFleetRequeues{0};

} // namespace

FleetCounters clfuzz::fleetCounters() {
  FleetCounters C;
  C.Joins = GFleetJoins.load(std::memory_order_relaxed);
  C.Leaves = GFleetLeaves.load(std::memory_order_relaxed);
  C.Evictions = GFleetEvictions.load(std::memory_order_relaxed);
  C.Redials = GFleetRedials.load(std::memory_order_relaxed);
  C.Requeues = GFleetRequeues.load(std::memory_order_relaxed);
  return C;
}

void clfuzz::noteFleetJoin() {
  GFleetJoins.fetch_add(1, std::memory_order_relaxed);
}
void clfuzz::noteFleetLeave() {
  GFleetLeaves.fetch_add(1, std::memory_order_relaxed);
}
void clfuzz::noteFleetEviction() {
  GFleetEvictions.fetch_add(1, std::memory_order_relaxed);
}
void clfuzz::noteFleetRedial() {
  GFleetRedials.fetch_add(1, std::memory_order_relaxed);
}
void clfuzz::noteFleetRequeues(uint64_t N) {
  GFleetRequeues.fetch_add(N, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Structured drop log
//===----------------------------------------------------------------------===//

void clfuzz::logFleetDrop(const char *Side, const std::string &Peer,
                          const std::string &Reason) {
  // One line, one write: chaos CI greps these out of interleaved
  // multi-process stderr, so the record must never tear.
  std::string Line = "clfuzz fleet: drop side=";
  Line += Side;
  Line += " peer=";
  Line += Peer.empty() ? "?" : Peer;
  Line += " reason=";
  Line += Reason;
  Line += "\n";
  std::fwrite(Line.data(), 1, Line.size(), stderr);
  std::fflush(stderr);
}

//===----------------------------------------------------------------------===//
// POSIX implementation
//===----------------------------------------------------------------------===//

#if defined(__unix__) || defined(__APPLE__)

#include <arpa/inet.h>
#include <cerrno>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

std::string clfuzz::peerName(int Fd) {
  struct sockaddr_storage Addr = {};
  socklen_t Len = sizeof(Addr);
  if (Fd < 0 || ::getpeername(Fd, reinterpret_cast<struct sockaddr *>(&Addr),
                              &Len) != 0)
    return "?";
  char Host[INET6_ADDRSTRLEN] = {0};
  unsigned Port = 0;
  if (Addr.ss_family == AF_INET) {
    auto *A4 = reinterpret_cast<struct sockaddr_in *>(&Addr);
    ::inet_ntop(AF_INET, &A4->sin_addr, Host, sizeof(Host));
    Port = ntohs(A4->sin_port);
  } else if (Addr.ss_family == AF_INET6) {
    auto *A6 = reinterpret_cast<struct sockaddr_in6 *>(&Addr);
    ::inet_ntop(AF_INET6, &A6->sin6_addr, Host, sizeof(Host));
    Port = ntohs(A6->sin6_port);
  } else {
    return "?";
  }
  return std::string(Host) + ":" + std::to_string(Port);
}

FleetRegistry::~FleetRegistry() { stop(); }

bool FleetRegistry::start(const std::string &Host, unsigned Port) {
  ListenFd = wire::listenTcp(Host, Port, BoundPort);
  if (ListenFd < 0)
    return false;
  Acceptor = std::thread([this] { acceptLoop(); });
  return true;
}

void FleetRegistry::stop() {
  // Same fd discipline as WorkerServer::stop(): shutdown() wakes the
  // blocked accept, fds are closed only after the thread that could
  // touch them is joined.
  if (!Stopping.exchange(true) && ListenFd >= 0)
    ::shutdown(ListenFd, SHUT_RDWR);
  if (Acceptor.joinable())
    Acceptor.join();
  int Fd = ListenFd.exchange(-1);
  if (Fd >= 0)
    ::close(Fd);
  std::vector<JoinedWorker> Orphans;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Orphans.swap(Pending);
  }
  for (JoinedWorker &W : Orphans)
    if (W.Fd >= 0)
      ::close(W.Fd);
}

std::vector<JoinedWorker> FleetRegistry::takeJoined() {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<JoinedWorker> Out;
  Out.swap(Pending);
  return Out;
}

// How long a dialler may take to produce its join frame. Generous for
// a LAN, small enough that a port scanner can't pin the accept thread
// — the handshake runs inline on it, so a stalled join delays (never
// deadlocks) later joiners.
static constexpr unsigned JoinHandshakeTimeoutMs = 2000;

void FleetRegistry::acceptLoop() {
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Stopping.load()) {
      if (Fd >= 0)
        ::close(Fd);
      break;
    }
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      break; // listen socket gone
    }

    std::string Peer = peerName(Fd);
    wire::setRecvTimeout(Fd, JoinHandshakeTimeoutMs);

    wire::Frame F;
    std::string Why;
    wire::ReadStatus RS = wire::readFrame(Fd, F, &Why);
    if (RS != wire::ReadStatus::Ok || F.Type != wire::FrameType::Join) {
      logFleetDrop("registry", Peer,
                   RS == wire::ReadStatus::Malformed
                       ? (Why == "version mismatch"
                              ? "handshake-version-mismatch"
                              : "handshake-garbage")
                       : RS == wire::ReadStatus::Eof ? "peer-reset"
                                                    : "handshake-garbage");
      ::close(Fd);
      continue;
    }

    wire::DecodedJoin Join;
    try {
      Join = wire::decodeJoin(F);
    } catch (const std::exception &) {
      logFleetDrop("registry", Peer, "malformed-payload");
      ::close(Fd);
      continue;
    }

    if (Join.CacheGen != wire::CacheGeneration) {
      // Stale generation: tell the worker ours so it clears its cache
      // and redials — the rendezvous twin of the v2 hello's
      // generation check.
      wire::writeFrame(Fd, wire::FrameType::JoinAck,
                       wire::encodeJoinAck(false, wire::CacheGeneration));
      logFleetDrop("registry", Peer, "stale-cache-generation");
      ::close(Fd);
      Rejected.fetch_add(1);
      continue;
    }

    if (!wire::writeFrame(Fd, wire::FrameType::JoinAck,
                          wire::encodeJoinAck(true, wire::CacheGeneration))) {
      logFleetDrop("registry", Peer, "peer-reset");
      ::close(Fd);
      continue;
    }

    wire::setRecvTimeout(Fd, 0);
    JoinedWorker W;
    W.Fd = Fd;
    W.Concurrency = Join.Concurrency ? Join.Concurrency : 1;
    W.Peer = Peer;
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Pending.push_back(W);
    }
    Accepted.fetch_add(1);
  }
}

#else // no sockets on this platform

std::string clfuzz::peerName(int) { return "?"; }
FleetRegistry::~FleetRegistry() = default;
bool FleetRegistry::start(const std::string &, unsigned) { return false; }
void FleetRegistry::stop() {}
std::vector<JoinedWorker> FleetRegistry::takeJoined() { return {}; }
void FleetRegistry::acceptLoop() {}

#endif

std::shared_ptr<FleetRegistry> clfuzz::makeFleetRegistry(
    const std::string &Host, unsigned Port) {
  auto R = std::make_shared<FleetRegistry>();
  if (!R->start(Host, Port))
    throw std::runtime_error("fleet registry: cannot listen on " + Host + ":" +
                             std::to_string(Port));
  return R;
}
