//===- ExecutionEngine.cpp - Parallel campaign execution ---------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "exec/ExecutionEngine.h"
#include "device/DeviceConfig.h"

#include <algorithm>

using namespace clfuzz;

unsigned ExecOptions::resolvedThreads() const {
  if (Threads != 0)
    return std::min(Threads, MaxThreads);
  unsigned HW = std::thread::hardware_concurrency();
  return HW == 0 ? 1 : std::min(HW, MaxThreads);
}

RunOutcome clfuzz::runExecJob(const ExecJob &Job) {
  if (Job.Config)
    return runTestOnConfig(*Job.Test, *Job.Config, Job.Opt, Job.Settings);
  return runTestOnReference(*Job.Test, Job.Opt, Job.Settings);
}

ExecutionEngine::ExecutionEngine(const ExecOptions &Opts)
    : NumThreads(Opts.resolvedThreads()) {
  // Serial engines never spawn workers; N threads means N-1 pool
  // workers plus the submitting thread, which joins every batch.
  for (unsigned I = 1; I < NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ExecutionEngine::~ExecutionEngine() {
  {
    std::lock_guard<std::mutex> Lock(M);
    ShuttingDown = true;
  }
  CV.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ExecutionEngine::workerLoop() {
  uint64_t SeenBatch = 0;
  for (;;) {
    const std::function<void(size_t)> *Work = nullptr;
    {
      std::unique_lock<std::mutex> Lock(M);
      CV.wait(Lock, [&] { return ShuttingDown || BatchId != SeenBatch; });
      if (ShuttingDown)
        return;
      SeenBatch = BatchId;
      Work = Body;
    }
    // Claim indices until the batch drains. Indices are claimed under
    // the lock; the body runs outside it.
    for (;;) {
      size_t I;
      {
        std::lock_guard<std::mutex> Lock(M);
        // The batch-id check keeps a straggler from claiming indices
        // of a batch submitted after its Work pointer was captured.
        if (BatchId != SeenBatch || NextIndex >= EndIndex)
          break;
        I = NextIndex++;
      }
      std::exception_ptr Err;
      try {
        (*Work)(I);
      } catch (...) {
        Err = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> Lock(M);
        if (Err && !FirstError)
          FirstError = Err;
        if (++DoneCount == EndIndex)
          DoneCV.notify_all();
      }
    }
  }
}

void ExecutionEngine::forEachIndex(
    size_t N, const std::function<void(size_t)> &BodyFn) {
  if (N == 0)
    return;
  if (NumThreads == 1 || N == 1) {
    // ExecPolicy::Serial (and trivial batches): the pre-engine inline
    // path, no synchronisation at all.
    for (size_t I = 0; I != N; ++I)
      BodyFn(I);
    return;
  }

  {
    std::lock_guard<std::mutex> Lock(M);
    Body = &BodyFn;
    NextIndex = 0;
    EndIndex = N;
    DoneCount = 0;
    FirstError = nullptr;
    ++BatchId;
  }
  CV.notify_all();

  // The submitting thread works the queue too, then waits for the
  // stragglers held by pool workers.
  for (;;) {
    size_t I;
    {
      std::lock_guard<std::mutex> Lock(M);
      if (NextIndex >= EndIndex)
        break;
      I = NextIndex++;
    }
    std::exception_ptr Err;
    try {
      BodyFn(I);
    } catch (...) {
      Err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> Lock(M);
      if (Err && !FirstError)
        FirstError = Err;
      ++DoneCount;
    }
  }

  std::exception_ptr Pending;
  {
    std::unique_lock<std::mutex> Lock(M);
    DoneCV.wait(Lock, [&] { return DoneCount == EndIndex; });
    Body = nullptr;
    Pending = FirstError;
    FirstError = nullptr;
  }
  if (Pending)
    std::rethrow_exception(Pending);
}

std::vector<RunOutcome>
ExecutionEngine::runBatch(const std::vector<ExecJob> &Jobs) {
  std::vector<RunOutcome> Results(Jobs.size());
  forEachIndex(Jobs.size(),
               [&](size_t I) { Results[I] = runExecJob(Jobs[I]); });
  return Results;
}
