//===- ExecutionEngine.cpp - Parallel campaign execution ---------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "exec/ExecutionEngine.h"
#include "device/DeviceConfig.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <memory>

using namespace clfuzz;

const char *clfuzz::backendKindName(BackendKind K) {
  switch (K) {
  case BackendKind::Inline:
    return "inline";
  case BackendKind::Threads:
    return "threads";
  case BackendKind::Procs:
    return "procs";
  case BackendKind::Remote:
    return "remote";
  }
  return "?";
}

bool clfuzz::parseBackendKind(const std::string &Name, BackendKind &Out) {
  if (Name == "inline")
    Out = BackendKind::Inline;
  else if (Name == "threads")
    Out = BackendKind::Threads;
  else if (Name == "procs")
    Out = BackendKind::Procs;
  else if (Name == "remote")
    Out = BackendKind::Remote;
  else
    return false;
  return true;
}

unsigned ExecOptions::resolvedThreads() const {
  if (Threads != 0)
    return std::min(Threads, MaxThreads);
  unsigned HW = std::thread::hardware_concurrency();
  return HW == 0 ? 1 : std::min(HW, MaxThreads);
}

RunOutcome clfuzz::runExecJob(const ExecJob &Job) {
  // Fault-injection hooks for the process-pool isolation tests: a hard
  // abort models a VM bug taking the worker process down; a spin
  // models a runaway execution the step budget cannot catch. Neither
  // is reachable from campaign code paths.
  if (Job.Settings.DebugHardAbort)
    std::abort();
  if (Job.Settings.DebugSpinMs)
    std::this_thread::sleep_for(
        std::chrono::milliseconds(Job.Settings.DebugSpinMs));
  if (Job.Config)
    return runTestOnConfig(*Job.Test, *Job.Config, Job.Opt, Job.Settings);
  return runTestOnReference(*Job.Test, Job.Opt, Job.Settings);
}

std::vector<ExecColumn>
clfuzz::groupIntoColumns(const std::vector<ExecJob> &Jobs) {
  std::vector<ExecColumn> Cols;
  for (const ExecJob &J : Jobs) {
    if (Cols.empty() || Cols.back().Jobs.front().Test != J.Test)
      Cols.emplace_back();
    Cols.back().Jobs.push_back(J);
  }
  return Cols;
}

std::vector<RunOutcome> clfuzz::runExecColumn(const ExecColumn &Column) {
  std::vector<RunOutcome> Out;
  Out.reserve(Column.Jobs.size());
  // Built on the first admissible cell; with cloning disabled, columns
  // whose every cell runs the optimiser (or an AST-mutating bug pass)
  // never pay the parse.
  std::unique_ptr<TestFrontEnd> FE;
  for (const ExecJob &J : Column.Jobs) {
    assert(J.Test == Column.Jobs.front().Test &&
           "column cells must share one test");
    // The fault-injection hooks bypass the driver entirely; route them
    // through runExecJob so the process-pool isolation tests see the
    // same behaviour on the column path.
    if (J.Settings.DebugHardAbort || J.Settings.DebugSpinMs) {
      Out.push_back(runExecJob(J));
      continue;
    }
    const TestFrontEnd *Shared = nullptr;
    if (frontEndUseFor(J.Config, J.Opt) != FrontEndUse::Reparse) {
      if (!FE)
        FE = std::make_unique<TestFrontEnd>(*J.Test);
      Shared = FE.get();
    }
    Out.push_back(J.Config
                      ? runTestOnConfig(*J.Test, *J.Config, J.Opt,
                                        J.Settings, Shared)
                      : runTestOnReference(*J.Test, J.Opt, J.Settings,
                                           Shared));
  }
  return Out;
}

ExecutionEngine::ExecutionEngine(const ExecOptions &Opts)
    : NumThreads(Opts.resolvedThreads()) {
  // Serial engines never spawn workers; N threads means N-1 pool
  // workers plus the submitting thread, which joins every batch.
  for (unsigned I = 1; I < NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ExecutionEngine::~ExecutionEngine() {
  {
    std::lock_guard<std::mutex> Lock(M);
    ShuttingDown = true;
  }
  CV.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ExecutionEngine::workerLoop() {
  uint64_t SeenBatch = 0;
  for (;;) {
    const std::function<void(size_t)> *Work = nullptr;
    unsigned Chunk = 1;
    {
      std::unique_lock<std::mutex> Lock(M);
      CV.wait(Lock, [&] { return ShuttingDown || BatchId != SeenBatch; });
      if (ShuttingDown)
        return;
      SeenBatch = BatchId;
      Work = Body;
      Chunk = BatchClaimChunk;
    }
    // Claim index chunks until the batch drains. Indices are claimed
    // under the lock; the bodies run outside it. Cheap batches claim
    // several indices per acquisition to cut lock traffic on wide
    // machines; results are keyed by index, so chunking never changes
    // output.
    for (;;) {
      size_t Begin, End;
      {
        std::lock_guard<std::mutex> Lock(M);
        // The batch-id check keeps a straggler from claiming indices
        // of a batch submitted after its Work pointer was captured.
        if (BatchId != SeenBatch || NextIndex >= EndIndex)
          break;
        Begin = NextIndex;
        End = std::min<size_t>(Begin + Chunk, EndIndex);
        NextIndex = End;
      }
      std::exception_ptr Err;
      for (size_t I = Begin; I != End; ++I) {
        try {
          (*Work)(I);
        } catch (...) {
          if (!Err)
            Err = std::current_exception();
        }
      }
      {
        std::lock_guard<std::mutex> Lock(M);
        if (Err && !FirstError)
          FirstError = Err;
        DoneCount += End - Begin;
        if (DoneCount == EndIndex)
          DoneCV.notify_all();
      }
    }
  }
}

void ExecutionEngine::forEachIndex(size_t N,
                                   const std::function<void(size_t)> &BodyFn,
                                   unsigned ClaimChunk) {
  if (N == 0)
    return;
  if (NumThreads == 1 || N == 1) {
    // ExecPolicy::Serial (and trivial batches): the pre-engine inline
    // path, no synchronisation at all — but the same exception
    // contract as the pool: every index runs, the first exception is
    // rethrown after the batch drains.
    std::exception_ptr First;
    for (size_t I = 0; I != N; ++I) {
      try {
        BodyFn(I);
      } catch (...) {
        if (!First)
          First = std::current_exception();
      }
    }
    if (First)
      std::rethrow_exception(First);
    return;
  }

  {
    std::lock_guard<std::mutex> Lock(M);
    Body = &BodyFn;
    NextIndex = 0;
    EndIndex = N;
    DoneCount = 0;
    BatchClaimChunk = std::max(1u, ClaimChunk);
    FirstError = nullptr;
    ++BatchId;
  }
  CV.notify_all();

  // The submitting thread works the queue too, then waits for the
  // stragglers held by pool workers.
  const unsigned Chunk = std::max(1u, ClaimChunk);
  for (;;) {
    size_t Begin, End;
    {
      std::lock_guard<std::mutex> Lock(M);
      if (NextIndex >= EndIndex)
        break;
      Begin = NextIndex;
      End = std::min<size_t>(Begin + Chunk, EndIndex);
      NextIndex = End;
    }
    std::exception_ptr Err;
    for (size_t I = Begin; I != End; ++I) {
      try {
        BodyFn(I);
      } catch (...) {
        if (!Err)
          Err = std::current_exception();
      }
    }
    {
      std::lock_guard<std::mutex> Lock(M);
      if (Err && !FirstError)
        FirstError = Err;
      DoneCount += End - Begin;
    }
  }

  std::exception_ptr Pending;
  {
    std::unique_lock<std::mutex> Lock(M);
    DoneCV.wait(Lock, [&] { return DoneCount == EndIndex; });
    Body = nullptr;
    Pending = FirstError;
    FirstError = nullptr;
  }
  if (Pending)
    std::rethrow_exception(Pending);
}

std::vector<RunOutcome>
ExecutionEngine::runBatch(const std::vector<ExecJob> &Jobs) {
  std::vector<RunOutcome> Results(Jobs.size());
  forEachIndex(Jobs.size(),
               [&](size_t I) { Results[I] = runExecJob(Jobs[I]); });
  return Results;
}
