//===- ProcessPool.cpp - Fork/exec-isolated execution backend ----------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "exec/ProcessPool.h"

#if defined(__unix__) || defined(__APPLE__)

#include "exec/JobSerialize.h"
#include "exec/WireProtocol.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <poll.h>
#include <stdexcept>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace clfuzz;

namespace {

// The exact-length fd I/O (readFull / writeFull / the SIGPIPE-safe
// write) started life here and moved to exec/WireProtocol.h when the
// remote backend arrived; the pool's pipe framing and the network
// framing share one implementation.
using wire::readFull;
using wire::writeFull;
using wire::writeFullNoSigpipe;

/// First payload byte of every frame the parent sends: one job
/// descriptor, or one campaign column (shared test serialized once,
/// one outcome frame streamed back per cell).
constexpr uint8_t JobFrameTag = 0;
constexpr uint8_t ColumnFrameTag = 1;

/// Worker subprocess loop: read a framed, tagged descriptor (a single
/// job or a whole column), execute it, write one framed outcome per
/// job. A zero-length frame (or EOF) is the shutdown signal. Never
/// returns.
[[noreturn]] void workerMain(int In, int Out) {
  // The worker owns its process: a parent that went away must surface
  // as a failed write (then _exit), not a SIGPIPE kill.
  ::signal(SIGPIPE, SIG_IGN);
  for (;;) {
    uint32_t Len = 0;
    if (!readFull(In, &Len, sizeof(Len)) || Len == 0)
      ::_exit(0);
    std::vector<uint8_t> Frame(Len);
    if (!readFull(In, Frame.data(), Len))
      ::_exit(1);

    WireReader R(Frame.data(), Frame.size());
    uint8_t Tag;
    try {
      Tag = R.u8();
    } catch (const std::exception &) {
      ::_exit(1);
    }

    std::vector<RunOutcome> Outs;
    if (Tag == JobFrameTag) {
      RunOutcome O;
      try {
        OwnedExecJob Job = deserializeExecJob(R);
        O = runExecJob(Job.view());
      } catch (const std::exception &E) {
        O.Status = RunStatus::Crash;
        O.Message = std::string("worker: ") + E.what();
      }
      Outs.push_back(std::move(O));
    } else if (Tag == ColumnFrameTag) {
      size_t Cells = 0;
      try {
        OwnedExecColumn Col = deserializeExecColumn(R);
        Cells = Col.Cells.size();
        Outs = runExecColumn(Col.view());
      } catch (const std::exception &E) {
        // An unreadable column frame means a torn protocol: die and
        // let the pool respawn us and retry the cells one by one. A
        // throw after deserialization is attributable, so answer it.
        if (Cells == 0)
          ::_exit(1);
        RunOutcome O;
        O.Status = RunStatus::Crash;
        O.Message = std::string("worker: ") + E.what();
        Outs.assign(Cells, O);
      }
    } else {
      ::_exit(1);
    }

    for (const RunOutcome &O : Outs) {
      WireWriter W;
      serializeRunOutcome(W, O);
      uint32_t RespLen = static_cast<uint32_t>(W.buffer().size());
      if (!writeFull(Out, &RespLen, sizeof(RespLen)) ||
          !writeFull(Out, W.buffer().data(), RespLen))
        ::_exit(1);
    }
  }
}

class ProcessPoolBackend final : public ExecBackend {
public:
  explicit ProcessPoolBackend(const ExecOptions &Opts)
      : NumWorkers(Opts.resolvedThreads()), TimeoutMs(Opts.ProcTimeoutMs) {}

  ~ProcessPoolBackend() override {
    for (Worker &W : Workers)
      stopWorker(W);
  }

  BackendKind kind() const override { return BackendKind::Procs; }
  unsigned concurrency() const override { return NumWorkers; }
  std::vector<RunOutcome> run(const std::vector<ExecJob> &Jobs) override;
  std::vector<RunOutcome>
  runColumns(const std::vector<ExecColumn> &Columns) override;

private:
  /// (begin index, cell count) spans over a flattened job vector, one
  /// per column.
  using ColumnSpans = std::vector<std::pair<size_t, size_t>>;
  struct Worker {
    pid_t Pid = -1;
    int ToChild = -1;   ///< parent writes job frames here
    int FromChild = -1; ///< parent reads outcome frames here
    /// Indices of the jobs in the worker's current frame whose
    /// outcomes have not arrived yet, in submission order.
    std::deque<size_t> InFlight;
    std::chrono::steady_clock::time_point Deadline;

    bool busy() const { return !InFlight.empty(); }
  };

  bool spawnWorker(Worker &W);
  void stopWorker(Worker &W);
  /// Reaps a dead worker and reports how it died ("signal 6 (SIGABRT)").
  std::string reapWorker(Worker &W);
  bool sendJobs(Worker &W, const std::vector<ExecJob> &Jobs,
                const std::deque<size_t> &Indices);
  bool sendColumn(Worker &W, const std::vector<ExecJob> &Jobs,
                  const std::deque<size_t> &Indices);
  /// The shared dispatch/poll loop behind run() and runColumns().
  /// With \p Spans null, jobs are adaptively batched into single-job
  /// frames; with spans, each span travels as one column frame (and
  /// retries always travel as single-job frames).
  std::vector<RunOutcome> execute(const std::vector<ExecJob> &Jobs,
                                  const ColumnSpans *Spans);

  unsigned NumWorkers;
  unsigned TimeoutMs;
  std::vector<Worker> Workers;
};

bool ProcessPoolBackend::spawnWorker(Worker &W) {
  int ToChild[2], FromChild[2];
  if (::pipe(ToChild) != 0)
    return false;
  if (::pipe(FromChild) != 0) {
    ::close(ToChild[0]);
    ::close(ToChild[1]);
    return false;
  }
  pid_t Pid = ::fork();
  if (Pid < 0) {
    ::close(ToChild[0]);
    ::close(ToChild[1]);
    ::close(FromChild[0]);
    ::close(FromChild[1]);
    return false;
  }
  if (Pid == 0) {
    // Child: keep only this worker's two pipe ends (including ends
    // inherited from siblings forked earlier — closing them is what
    // lets a sibling see EOF when the parent goes away).
    ::close(ToChild[1]);
    ::close(FromChild[0]);
    for (const Worker &Other : Workers) {
      if (Other.ToChild >= 0)
        ::close(Other.ToChild);
      if (Other.FromChild >= 0)
        ::close(Other.FromChild);
    }
    workerMain(ToChild[0], FromChild[1]);
  }
  ::close(ToChild[0]);
  ::close(FromChild[1]);
  W.Pid = Pid;
  W.ToChild = ToChild[1];
  W.FromChild = FromChild[0];
  W.InFlight.clear();
  return true;
}

void ProcessPoolBackend::stopWorker(Worker &W) {
  if (W.Pid < 0)
    return;
  // Polite shutdown frame first; SIGKILL if the worker is wedged.
  uint32_t Zero = 0;
  writeFullNoSigpipe(W.ToChild, &Zero, sizeof(Zero));
  ::close(W.ToChild);
  ::close(W.FromChild);
  int Status = 0;
  if (::waitpid(W.Pid, &Status, WNOHANG) == 0) {
    ::kill(W.Pid, SIGKILL);
    ::waitpid(W.Pid, &Status, 0);
  }
  W.Pid = -1;
  W.ToChild = W.FromChild = -1;
}

std::string ProcessPoolBackend::reapWorker(Worker &W) {
  ::close(W.ToChild);
  ::close(W.FromChild);
  int Status = 0;
  ::waitpid(W.Pid, &Status, 0);
  W.Pid = -1;
  W.ToChild = W.FromChild = -1;
  W.InFlight.clear();
  if (WIFSIGNALED(Status)) {
    int Sig = WTERMSIG(Status);
    return "signal " + std::to_string(Sig) + " (" + strsignal(Sig) + ")";
  }
  if (WIFEXITED(Status))
    return "exit status " + std::to_string(WEXITSTATUS(Status));
  return "unknown cause";
}

/// Serializes every indexed job into one contiguous frame run and
/// writes it with a single syscall - the batching amortisation. The
/// worker protocol is unchanged: it still reads one frame, runs it,
/// and responds, so a k-job batch is just k frames arriving at once
/// and k outcome frames streaming back as they complete.
bool ProcessPoolBackend::sendJobs(Worker &W, const std::vector<ExecJob> &Jobs,
                                  const std::deque<size_t> &Indices) {
  std::vector<uint8_t> Run;
  for (size_t Index : Indices) {
    WireWriter One;
    One.u8(JobFrameTag);
    serializeExecJob(One, Jobs[Index]);
    // The length prefix is a raw host-order uint32_t, matching the
    // readFull(&Len) on both protocol ends (parent and child are the
    // same binary on the same host; the WireWriter payload is
    // little-endian, the framing is not).
    uint32_t Len = static_cast<uint32_t>(One.buffer().size());
    const auto *P = reinterpret_cast<const uint8_t *>(&Len);
    Run.insert(Run.end(), P, P + sizeof(Len));
    Run.insert(Run.end(), One.buffer().begin(), One.buffer().end());
  }
  return writeFullNoSigpipe(W.ToChild, Run.data(), Run.size());
}

/// Serializes the indexed jobs — consecutive cells of one test — as a
/// single column frame: the test case crosses the pipe once and the
/// worker parses it once, answering with one outcome frame per cell in
/// order. Outcome frames are tens of bytes, far below pipe capacity,
/// so the worker never blocks writing responses and the protocol stays
/// deadlock-free.
bool ProcessPoolBackend::sendColumn(Worker &W,
                                    const std::vector<ExecJob> &Jobs,
                                    const std::deque<size_t> &Indices) {
  ExecColumn Col;
  Col.Jobs.reserve(Indices.size());
  for (size_t Index : Indices)
    Col.Jobs.push_back(Jobs[Index]);
  WireWriter One;
  One.u8(ColumnFrameTag);
  serializeExecColumn(One, Col);
  uint32_t Len = static_cast<uint32_t>(One.buffer().size());
  std::vector<uint8_t> Run;
  const auto *P = reinterpret_cast<const uint8_t *>(&Len);
  Run.insert(Run.end(), P, P + sizeof(Len));
  Run.insert(Run.end(), One.buffer().begin(), One.buffer().end());
  return writeFullNoSigpipe(W.ToChild, Run.data(), Run.size());
}

std::vector<RunOutcome>
ProcessPoolBackend::run(const std::vector<ExecJob> &Jobs) {
  return execute(Jobs, nullptr);
}

std::vector<RunOutcome>
ProcessPoolBackend::runColumns(const std::vector<ExecColumn> &Columns) {
  // A wall-clock deadline is enforced per frame head, so deadline
  // frames must stay single-job: fall back to the flatten default and
  // keep the kill-and-record logic exactly as it was.
  if (TimeoutMs)
    return ExecBackend::runColumns(Columns);
  std::vector<ExecJob> Flat;
  ColumnSpans Spans;
  Spans.reserve(Columns.size());
  for (const ExecColumn &Col : Columns) {
    Spans.emplace_back(Flat.size(), Col.Jobs.size());
    Flat.insert(Flat.end(), Col.Jobs.begin(), Col.Jobs.end());
  }
  return execute(Flat, &Spans);
}

std::vector<RunOutcome>
ProcessPoolBackend::execute(const std::vector<ExecJob> &Jobs,
                            const ColumnSpans *Spans) {
  std::vector<RunOutcome> Results(Jobs.size());
  if (Jobs.empty())
    return Results;

  // Lazy spawn: campaigns that stay on one backend never pay for the
  // others, and forking on the first batch keeps the child free of
  // inherited thread state (campaigns and reductions both run their
  // first batch before starting any helper thread). Mid-run respawns
  // can fork while helper threads are allocating; that is safe on the
  // platforms this backend compiles for because glibc/libSystem make
  // malloc consistent across fork, and a child only ever executes
  // workerMain's self-contained read/run/write loop.
  if (Workers.empty()) {
    Workers.resize(NumWorkers);
    for (Worker &W : Workers)
      if (!spawnWorker(W))
        throw std::runtime_error("process pool: fork failed");
  }

  using Clock = std::chrono::steady_clock;
  size_t NextJob = 0, NextSpan = 0, Done = 0;

  // Adaptive batching: cheap cells are sent several to a frame so the
  // serialization and syscall cost is amortised, sized so every worker
  // still gets at least two frames of the batch (late stragglers can
  // be balanced). Timeout-prone batches (a wall-clock deadline is set)
  // stay one-in-flight so the deadline and the kill stay per-job.
  // The cap of 8 keeps a frame run and its streamed responses far
  // below pipe capacity, which is what keeps the protocol
  // deadlock-free (the worker never blocks writing responses, so it
  // always drains the frames we blocked writing).
  const size_t MaxBatch =
      TimeoutMs ? 1
                : std::clamp<size_t>(
                      Jobs.size() / (size_t(NumWorkers) * 2), 1, 8);

  // A worker death is ambiguous: the job may have crashed it (the
  // fault procs exists to isolate) or the worker may have died for
  // unrelated reasons (OOM killer, operator) with an innocent job in
  // flight. Each job therefore gets one retry on a fresh worker: an
  // externally killed worker's job re-runs and yields its true result
  // (preserving cross-backend bit-identity), while a genuinely
  // crashing job — deterministic like every cell — kills the retry
  // worker too and is then recorded as its Crash outcome.
  std::vector<uint8_t> CrashCount(Jobs.size(), 0);
  std::vector<size_t> RetryQueue;

  auto CrashOutcome = [](const std::string &How) {
    RunOutcome O;
    O.Status = RunStatus::Crash;
    O.Message = "worker process died (" + How + "); isolated by process pool";
    return O;
  };
  auto TimeoutOutcome = [&] {
    RunOutcome O;
    O.Status = RunStatus::Timeout;
    O.Message = "exceeded process-pool wall-clock deadline (" +
                std::to_string(TimeoutMs) + " ms); worker killed";
    return O;
  };

  /// Records a worker death against its in-flight job: requeues the
  /// job on first failure, records a crash outcome on the second.
  /// Never silently drops a job.
  auto JobFailed = [&](size_t Index, const std::string &How) {
    if (++CrashCount[Index] <= 1) {
      RetryQueue.push_back(Index);
      return;
    }
    Results[Index] = CrashOutcome(How);
    ++Done;
  };

  // One frame in flight per worker; a frame carries one retry job, one
  // column, or up to MaxBatch fresh jobs. Retries always travel alone
  // (as single-job frames, even out of a column) so a genuinely
  // crashing job poisons nothing but itself on its second attempt.
  auto Dispatch = [&](Worker &W) {
    for (;;) {
      std::deque<size_t> Batch;
      bool AsColumn = false;
      if (!RetryQueue.empty()) {
        Batch.push_back(RetryQueue.back());
        RetryQueue.pop_back();
      } else if (Spans) {
        if (NextSpan < Spans->size()) {
          auto Span = (*Spans)[NextSpan++];
          for (size_t K = 0; K != Span.second; ++K)
            Batch.push_back(Span.first + K);
          // A one-cell column gains nothing from column framing.
          AsColumn = Batch.size() > 1;
        }
      } else {
        while (Batch.size() < MaxBatch && NextJob < Jobs.size())
          Batch.push_back(NextJob++);
      }
      if (Batch.empty())
        return;
      if (AsColumn ? sendColumn(W, Jobs, Batch) : sendJobs(W, Jobs, Batch)) {
        W.InFlight = std::move(Batch);
        W.Deadline = Clock::now() + std::chrono::milliseconds(
                                        TimeoutMs ? TimeoutMs : 0);
        return;
      }
      // The worker died before any batched job ever ran; recycle the
      // worker and treat it as every job's (retryable) failure.
      std::string How = reapWorker(W);
      for (size_t Index : Batch)
        JobFailed(Index, How);
      if (!spawnWorker(W))
        throw std::runtime_error("process pool: respawn failed");
    }
  };

  for (Worker &W : Workers)
    Dispatch(W);

  std::vector<pollfd> Fds;
  std::vector<Worker *> FdOwner;
  while (Done < Jobs.size()) {
    Fds.clear();
    FdOwner.clear();
    for (Worker &W : Workers)
      if (W.busy()) {
        Fds.push_back({W.FromChild, POLLIN, 0});
        FdOwner.push_back(&W);
      }

    int PollTimeout = -1;
    if (TimeoutMs) {
      auto Now = Clock::now();
      auto Earliest = Clock::time_point::max();
      for (Worker *W : FdOwner)
        Earliest = std::min(Earliest, W->Deadline);
      auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                      Earliest - Now)
                      .count();
      PollTimeout = Left < 0 ? 0 : static_cast<int>(Left) + 1;
    }

    int Ready = ::poll(Fds.data(), Fds.size(), PollTimeout);
    if (Ready < 0) {
      if (errno == EINTR)
        continue;
      throw std::runtime_error("process pool: poll failed");
    }

    for (size_t I = 0; I != Fds.size(); ++I) {
      if (!(Fds[I].revents & (POLLIN | POLLHUP | POLLERR)))
        continue;
      Worker &W = *FdOwner[I];
      // One outcome frame per readiness; further buffered responses
      // re-arm the fd on the next poll round.
      size_t Index = W.InFlight.front();
      uint32_t Len = 0;
      std::vector<uint8_t> Frame;
      bool Ok = readFull(W.FromChild, &Len, sizeof(Len));
      if (Ok) {
        Frame.resize(Len);
        Ok = readFull(W.FromChild, Frame.data(), Len);
      }
      if (Ok) {
        try {
          WireReader R(Frame.data(), Frame.size());
          Results[Index] = deserializeRunOutcome(R);
        } catch (const std::exception &) {
          Ok = false;
        }
      }
      if (Ok) {
        W.InFlight.pop_front();
        ++Done;
      } else {
        // Outcomes already streamed back stand; every job still in
        // the dead worker's frame fails (retryably).
        std::deque<size_t> Lost = std::move(W.InFlight);
        std::string How = reapWorker(W);
        for (size_t LostIndex : Lost)
          JobFailed(LostIndex, How);
        if (!spawnWorker(W))
          throw std::runtime_error("process pool: respawn failed");
      }
      if (!W.busy())
        Dispatch(W);
    }

    if (TimeoutMs) {
      auto Now = Clock::now();
      for (Worker &W : Workers) {
        if (!W.busy() || Now < W.Deadline)
          continue;
        // Deadline frames are single-job (MaxBatch == 1 whenever
        // TimeoutMs is set), so the head job is the runaway.
        size_t Index = W.InFlight.front();
        W.InFlight.pop_front();
        std::deque<size_t> Lost = std::move(W.InFlight);
        ::kill(W.Pid, SIGKILL);
        std::string How = reapWorker(W);
        Results[Index] = TimeoutOutcome();
        ++Done;
        for (size_t LostIndex : Lost)
          JobFailed(LostIndex, How);
        if (!spawnWorker(W))
          throw std::runtime_error("process pool: respawn failed");
        Dispatch(W);
      }
    }
  }
  return Results;
}

} // namespace

std::unique_ptr<ExecBackend>
clfuzz::makeProcessPoolBackend(const ExecOptions &Opts) {
  return std::make_unique<ProcessPoolBackend>(Opts);
}

#else // no fork(): degrade to the serial reference backend.

std::unique_ptr<clfuzz::ExecBackend>
clfuzz::makeProcessPoolBackend(const clfuzz::ExecOptions &) {
  return std::make_unique<clfuzz::InlineBackend>();
}

#endif
