//===- TestSource.h - Pull-based sharded test generation --------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The producer half of the streaming campaign pipeline
/// (TestSource -> ExecBackend -> ResultSink). A TestSource hands out
/// kernels in bounded shards instead of materialising a whole mode's
/// test set: a paper-scale run (10k kernels per mode) streams through
/// the pipeline holding at most ExecOptions::ShardSize TestCases alive
/// at a time.
///
/// Determinism discipline: a source's output sequence is a pure
/// function of its seed configuration — never of the shard size, the
/// backend, or the worker count. GeneratorSource scans consecutive
/// seeds and accepts in seed order (prefilter runs go through the
/// backend, acceptance happens on the calling thread), so pulling the
/// same source in shards of 1 or 1000 yields the same tests in the
/// same order.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_EXEC_TESTSOURCE_H
#define CLFUZZ_EXEC_TESTSOURCE_H

#include "emi/Emi.h"
#include "exec/ExecBackend.h"
#include "gen/Generator.h"

namespace clfuzz {

/// Pull-based producer of test kernels.
class TestSource {
public:
  virtual ~TestSource();

  /// Returns the next shard: at most \p MaxShard tests, empty when the
  /// source is exhausted. The sequence of tests (concatenated over all
  /// pulls) is independent of how it is sliced into shards.
  virtual std::vector<TestCase> next(unsigned MaxShard) = 0;

  /// Number of tests the source aims to produce in total, when known
  /// up front (0 = unknown). Used for progress reporting only.
  virtual unsigned plannedTotal() const { return 0; }
};

/// Streams one generator mode's campaign test set: scans consecutive
/// seeds from \p SeedBase (test K's kernel has seed SeedBase + scan
/// offset; campaign drivers add their per-mode stride before
/// constructing the source), optionally pre-filtering candidates on
/// configuration 1+ (§7.3) through the backend, and accepts in seed
/// order until the target count or the attempt cap is reached. The
/// accepted sequence matches a serial scan of the same seeds for any
/// shard size, backend or worker count.
class GeneratorSource final : public TestSource {
public:
  /// \p Config1 enables the §7.3 prefilter when non-null and
  /// \p Prefilter is set; candidates failing to build or terminate on
  /// it (optimisations on) are skipped without counting toward the
  /// accepted set.
  GeneratorSource(GenMode Mode, const GenOptions &BaseGen, uint64_t SeedBase,
                  unsigned Count, bool Prefilter, const DeviceConfig *Config1,
                  const RunSettings &Run, ExecBackend &Backend);

  std::vector<TestCase> next(unsigned MaxShard) override;
  unsigned plannedTotal() const override { return Count; }

private:
  GenOptions BaseGen;
  const DeviceConfig *Config1;
  RunSettings Run;
  ExecBackend &Backend;
  uint64_t NextSeed;
  unsigned Count;
  unsigned Produced = 0;
  unsigned Attempts = 0;
  unsigned MaxAttempts;
  bool Filter;
};

/// Streams the EMI prune variants of one base program (§7.4): the
/// paper's 40-variant sweep, regenerated and pruned through the
/// backend's in-process parallelism, shard by shard.
class EmiVariantSource final : public TestSource {
public:
  EmiVariantSource(const GenOptions &BaseGen, ExecBackend &Backend);

  std::vector<TestCase> next(unsigned MaxShard) override;
  unsigned plannedTotal() const override {
    return static_cast<unsigned>(Sweep.size());
  }

private:
  GenOptions BaseGen;
  ExecBackend &Backend;
  std::vector<PruneOptions> Sweep;
  size_t NextVariant = 0;
};

/// Wraps an already-materialised batch (bench harnesses, tests). Hands
/// the tests out in shards by moving them out behind an advancing
/// cursor — O(n) over the whole drain, with each consumed TestCase's
/// storage released as its shard is taken.
class VectorSource final : public TestSource {
public:
  explicit VectorSource(std::vector<TestCase> Tests)
      : Tests(std::move(Tests)) {}

  std::vector<TestCase> next(unsigned MaxShard) override;
  unsigned plannedTotal() const override {
    return static_cast<unsigned>(Tests.size());
  }

private:
  std::vector<TestCase> Tests;
  size_t NextTest = 0;
};

} // namespace clfuzz

#endif // CLFUZZ_EXEC_TESTSOURCE_H
