//===- FleetRegistry.h - Rendezvous point for elastic fleets ----*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coordinator side of rendezvous mode (docs/fleet.md): where a
/// statically-listed worker waits for the coordinator to dial *it*, a
/// rendezvous worker (`clfuzz worker --connect=host:port`) dials the
/// coordinator's FleetRegistry, registers with a wire-v3 join frame,
/// and is handed to the remote backend as a live link — so a fleet
/// can grow mid-campaign instead of being fixed at `--workers=` parse
/// time.
///
/// The registry owns exactly the handshake: accept, read one join,
/// check the cache generation, answer a join-ack, park the socket.
/// RemoteBackend drains the parked sockets (takeJoined()) at its
/// dispatch boundaries — every join is adopted between shards, never
/// mid-poll, which is what keeps adoption free of locking in the job
/// path. A worker joining with a stale cache generation is refused
/// (accepted=0 in the ack, so it clears its cache and redials with
/// backoff) — the same invariant the v2 hello enforces, at the only
/// point a rendezvous worker learns the coordinator's generation.
///
/// This header also hosts the fleet-wide observability shared by the
/// registry, the remote backend and the worker: the global fleet_*
/// counters --stats reports (attributed per campaign by the scheduler
/// exactly like the vm_*/compile_*/triage_* families) and the
/// structured one-line drop log every connection teardown emits.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_EXEC_FLEETREGISTRY_H
#define CLFUZZ_EXEC_FLEETREGISTRY_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace clfuzz {

//===----------------------------------------------------------------------===//
// Fleet counters (--stats `fleet_*` line)
//===----------------------------------------------------------------------===//

/// A snapshot of the process-wide fleet counters. All counting happens
/// inside RemoteBackend::run() — i.e. inside a serialized scheduler
/// step for sched campaigns — so per-campaign deltas sum exactly to
/// the global totals (the same contract as triage/Triage.h).
struct FleetCounters {
  uint64_t Joins = 0;     ///< rendezvous workers adopted as live links
  uint64_t Leaves = 0;    ///< graceful drains completed (zero requeues)
  uint64_t Evictions = 0; ///< live links dropped (death, wedge, garbage)
  uint64_t Redials = 0;   ///< reconnect attempts to known-dead endpoints
  uint64_t Requeues = 0;  ///< in-flight jobs requeued off a dropped link
};

/// Reads the current totals (relaxed; exact under the scheduler's
/// serialized stepping).
FleetCounters fleetCounters();

void noteFleetJoin();
void noteFleetLeave();
void noteFleetEviction();
void noteFleetRedial();
void noteFleetRequeues(uint64_t N);

//===----------------------------------------------------------------------===//
// Structured drop log
//===----------------------------------------------------------------------===//

/// Emits the one-line structured record every connection teardown in
/// the fleet layer produces, greppable in CI chaos logs:
///
///   clfuzz fleet: drop side=<worker|coordinator|registry>
///                 peer=<addr> reason=<kebab-slug>
///
/// Always stderr — campaign stdout is byte-compared against inline
/// runs and must not depend on fleet weather.
void logFleetDrop(const char *Side, const std::string &Peer,
                  const std::string &Reason);

/// "host:port" of the socket's peer, or "?" when the fd is gone.
std::string peerName(int Fd);

//===----------------------------------------------------------------------===//
// FleetRegistry
//===----------------------------------------------------------------------===//

/// A worker that completed the join handshake and is parked waiting
/// for the remote backend to adopt it. The fd is live, recv timeout
/// cleared, join-ack already sent; ownership transfers wholesale via
/// takeJoined().
struct JoinedWorker {
  int Fd = -1;
  uint32_t Concurrency = 1;
  std::string Peer; ///< "host:port" for logs and --stats
};

/// The rendezvous listener. One per coordinator process; carried in
/// ExecOptions::Fleet (a shared_ptr, like the outcome cache) so the
/// tool layer can create it once, print its ephemeral port, and every
/// remote backend sharing those options polls the same registry.
class FleetRegistry {
public:
  FleetRegistry() = default;
  ~FleetRegistry();

  FleetRegistry(const FleetRegistry &) = delete;
  FleetRegistry &operator=(const FleetRegistry &) = delete;

  /// Binds host:port (0 = ephemeral) and starts the accept thread;
  /// false if the bind failed.
  bool start(const std::string &Host, unsigned Port);

  /// The actually bound port (after start()).
  unsigned port() const { return BoundPort; }

  /// Closes the listen socket, joins the accept thread, and closes
  /// any parked-but-unadopted worker sockets. Idempotent.
  void stop();

  /// Drains the parked workers (handshake done, fds live). Ownership
  /// of the fds moves to the caller — the remote backend wraps each
  /// in a Link. Cheap when nothing joined (one mutex, empty swap).
  std::vector<JoinedWorker> takeJoined();

  /// Joins the accept thread has admitted / refused so far. Rejected
  /// joins are stale-cache-generation workers told to clear and
  /// redial; they are registry weather, not campaign work, so they
  /// are not part of the fleet_* counter family.
  uint64_t joinsAccepted() const { return Accepted.load(); }
  uint64_t joinsRejected() const { return Rejected.load(); }

private:
  void acceptLoop();

  unsigned BoundPort = 0;
  std::atomic<int> ListenFd{-1};
  std::thread Acceptor;
  std::atomic<bool> Stopping{false};
  std::atomic<uint64_t> Accepted{0};
  std::atomic<uint64_t> Rejected{0};

  std::mutex Mu;
  std::vector<JoinedWorker> Pending;
};

/// Creates and starts a registry; throws std::runtime_error when the
/// bind fails (mirrors makeRemoteBackend's fail-fast contract).
std::shared_ptr<FleetRegistry> makeFleetRegistry(const std::string &Host,
                                                 unsigned Port);

} // namespace clfuzz

#endif // CLFUZZ_EXEC_FLEETREGISTRY_H
