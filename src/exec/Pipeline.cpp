//===- Pipeline.cpp - Streaming campaign pipeline runner ---------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "exec/Pipeline.h"

#include <algorithm>

using namespace clfuzz;

ShardedCampaignRun::ShardedCampaignRun(
    TestSource &Source, ExecBackend &Backend, unsigned ShardSize,
    std::function<void(size_t TestIndex, const TestCase &Test,
                       std::vector<ExecJob> &Jobs)>
        ExpandJobs,
    ResultSink &Sink, std::function<void(size_t TestsDone)> Progress)
    : Source(Source), Backend(Backend),
      ShardSize(std::max(ShardSize, 1u)), ExpandJobs(std::move(ExpandJobs)),
      Sink(Sink), Progress(std::move(Progress)) {}

bool ShardedCampaignRun::step(unsigned DispatchPriority) {
  if (Done)
    return false;

  // The previous shard was destroyed before this pull: memory is
  // bounded by one shard of TestCases per pipeline.
  std::vector<TestCase> Shard = Source.next(ShardSize);
  if (Shard.empty()) {
    Done = true;
    Sink.finish();
    return false;
  }
  ++Stats.Shards;
  Stats.PeakResidentTests = std::max(Stats.PeakResidentTests, Shard.size());

  std::vector<ExecJob> Jobs;
  std::vector<size_t> JobStart(Shard.size() + 1);
  for (size_t T = 0; T != Shard.size(); ++T) {
    JobStart[T] = Jobs.size();
    ExpandJobs(Stats.Tests + T, Shard[T], Jobs);
  }
  JobStart[Shard.size()] = Jobs.size();

  // A shard's jobs are contiguous per test by construction (one
  // ExpandJobs call per test), so the whole configuration column of
  // each kernel reaches the backend as one unit: backends that can
  // parse the kernel once per column do, and the outcome vector is
  // byte-identical to a per-cell run() either way. A nonzero dispatch
  // priority only reorders the backend's in-flight window; the
  // outcome vector is re-keyed to submission order regardless.
  std::vector<ExecColumn> Columns = groupIntoColumns(Jobs);
  std::vector<RunOutcome> Outcomes;
  if (DispatchPriority != 0) {
    std::vector<unsigned> Priorities(Columns.size(), DispatchPriority);
    Outcomes = Backend.runColumnsPrioritized(Columns, Priorities);
  } else {
    Outcomes = Backend.runColumns(Columns);
  }
  Stats.Jobs += Jobs.size();

  // Consumption and progress both run on the calling thread — never
  // on a worker (thread or subprocess). Progress fires once per
  // test, preserving the historical serial cadence.
  for (size_t T = 0; T != Shard.size(); ++T) {
    std::vector<RunOutcome> TestOutcomes(
        std::make_move_iterator(Outcomes.begin() + JobStart[T]),
        std::make_move_iterator(Outcomes.begin() + JobStart[T + 1]));
    Sink.consumeTest(Stats.Tests + T, Shard[T], TestOutcomes);
    if (Progress)
      Progress(Stats.Tests + T + 1);
  }
  Stats.Tests += Shard.size();
  return true;
}

PipelineStats clfuzz::runShardedCampaign(
    TestSource &Source, ExecBackend &Backend, unsigned ShardSize,
    const std::function<void(size_t TestIndex, const TestCase &Test,
                             std::vector<ExecJob> &Jobs)> &ExpandJobs,
    ResultSink &Sink,
    const std::function<void(size_t TestsDone)> &Progress) {
  ShardedCampaignRun Run(Source, Backend, ShardSize, ExpandJobs, Sink,
                         Progress);
  while (Run.step())
    ;
  return Run.stats();
}
