//===- TestSource.cpp - Pull-based sharded test generation -------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "exec/TestSource.h"

#include <algorithm>

using namespace clfuzz;

TestSource::~TestSource() = default;

GeneratorSource::GeneratorSource(GenMode Mode, const GenOptions &BaseGen,
                                 uint64_t SeedBase, unsigned Count,
                                 bool Prefilter, const DeviceConfig *Config1,
                                 const RunSettings &Run, ExecBackend &Backend)
    : BaseGen(BaseGen), Config1(Config1), Run(Run), Backend(Backend),
      NextSeed(SeedBase), Count(Count), MaxAttempts(Count * 4),
      Filter(Prefilter && Config1 != nullptr) {
  this->BaseGen.Mode = Mode;
}

std::vector<TestCase> GeneratorSource::next(unsigned MaxShard) {
  MaxShard = std::max(MaxShard, 1u);
  std::vector<TestCase> Shard;

  while (Shard.size() < MaxShard && Produced < Count &&
         Attempts < MaxAttempts) {
    // A wave is capped at the shard's remaining capacity, so resident
    // TestCases (shard + in-flight candidates) never exceed MaxShard
    // — the O(ShardSize) memory bound holds even when the backend has
    // more workers than the shard has room. Within that cap, waves
    // are sized to keep every worker busy.
    unsigned Capacity =
        MaxShard - static_cast<unsigned>(Shard.size());
    unsigned Target = std::min<unsigned>(Count - Produced, Capacity);
    unsigned Wave = std::min(
        MaxAttempts - Attempts,
        std::max(Target, std::min(Backend.concurrency(), Capacity)));

    // Candidate generation is in-process work (closures over the AST
    // stack); the prefilter runs are serializable cells and go through
    // the backend proper.
    std::vector<TestCase> Candidates(Wave);
    Backend.forEachIndex(Wave, [&](size_t I) {
      GenOptions GO = BaseGen;
      GO.Seed = NextSeed + I;
      Candidates[I] = TestCase::fromGenerated(generateKernel(GO));
    });

    std::vector<uint8_t> Accepted(Wave, 1);
    if (Filter) {
      std::vector<ExecJob> Jobs;
      Jobs.reserve(Wave);
      for (const TestCase &C : Candidates)
        Jobs.push_back(ExecJob::onConfig(C, *Config1, /*Opt=*/true, Run));
      std::vector<RunOutcome> Outs = Backend.run(Jobs);
      for (size_t I = 0; I != Wave; ++I)
        if (Outs[I].Status == RunStatus::BuildFailure ||
            Outs[I].Status == RunStatus::Timeout)
          Accepted[I] = 0;
    }

    // Acceptance scans the wave in seed order and stops only for the
    // campaign quota, so the accepted sequence is the same no matter
    // how it is sliced into shards (a wave never produces more than
    // the shard's remaining capacity because it is no larger than it).
    for (unsigned I = 0; I != Wave && Produced < Count; ++I) {
      ++Attempts;
      if (!Accepted[I])
        continue;
      ++Produced;
      Shard.push_back(std::move(Candidates[I]));
    }
    NextSeed += Wave;
  }
  return Shard;
}

EmiVariantSource::EmiVariantSource(const GenOptions &BaseGen,
                                   ExecBackend &Backend)
    : BaseGen(BaseGen), Backend(Backend),
      Sweep(paperPruneSweep(BaseGen.Seed * 41)) {}

std::vector<TestCase> EmiVariantSource::next(unsigned MaxShard) {
  MaxShard = std::max(MaxShard, 1u);
  size_t N = std::min<size_t>(MaxShard, Sweep.size() - NextVariant);
  std::vector<TestCase> Shard(N);
  // Variant construction (regenerate + prune) is pure per variant and
  // CPU-heavy; it uses the backend's in-process parallelism.
  Backend.forEachIndex(N, [&](size_t I) {
    Shard[I] = makeEmiVariant(BaseGen, Sweep[NextVariant + I]);
  });
  NextVariant += N;
  return Shard;
}

std::vector<TestCase> VectorSource::next(unsigned MaxShard) {
  MaxShard = std::max(MaxShard, 1u);
  size_t N = std::min<size_t>(MaxShard, Tests.size() - NextTest);
  std::vector<TestCase> Shard(
      std::make_move_iterator(Tests.begin() + NextTest),
      std::make_move_iterator(Tests.begin() + NextTest + N));
  // Moved-from elements keep only empty shells; the vector itself is
  // not compacted (an O(n^2) erase-from-front), so a full drain is
  // O(n) while consumed TestCases still release their storage.
  for (size_t I = 0; I != N; ++I)
    Tests[NextTest + I] = TestCase();
  NextTest += N;
  return Shard;
}
