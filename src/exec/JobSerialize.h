//===- JobSerialize.h - Wire format for cross-process jobs ------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary serialization of ExecJob descriptors and RunOutcomes for the
/// process-pool backend. A job descriptor is fully self-contained: the
/// test case by value, the device configuration by value (bug models
/// and all) and the run settings — so a worker subprocess re-derives
/// exactly the same deterministic streams (generator seeds, scheduler
/// seeds, lottery salts) the in-process backends use, and every
/// backend produces bit-identical tables.
///
/// The format is a private little-endian framing between a campaign
/// process and workers forked from the *same binary*; it carries no
/// version negotiation and must never be written to disk bare. The
/// outcome cache (exec/OutcomeCache.h) does persist descriptor bytes,
/// but only inside its own magic-tagged, versioned, checksummed
/// envelope — a format change there bumps OutcomeCache::FormatVersion
/// and invalidates every stored entry.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_EXEC_JOBSERIALIZE_H
#define CLFUZZ_EXEC_JOBSERIALIZE_H

#include "exec/ExecutionEngine.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace clfuzz {

/// Append-only byte sink used by the serializers.
class WireWriter {
public:
  void u8(uint8_t V) { Buf.push_back(V); }
  void u32(uint32_t V);
  void u64(uint64_t V);
  void f64(double V);
  void str(const std::string &S);
  void bytes(const std::vector<uint8_t> &B);

  const std::vector<uint8_t> &buffer() const { return Buf; }

private:
  std::vector<uint8_t> Buf;
};

/// Cursor over a received frame. Truncated frames throw
/// std::runtime_error (a malformed frame means a torn-down worker, and
/// the pool treats it as a worker crash).
class WireReader {
public:
  WireReader(const uint8_t *Data, size_t Size) : P(Data), End(Data + Size) {}

  uint8_t u8();
  uint32_t u32();
  uint64_t u64();
  double f64();
  std::string str();
  std::vector<uint8_t> bytes();
  bool atEnd() const { return P == End; }

private:
  void need(size_t N) const;
  const uint8_t *P;
  const uint8_t *End;
};

/// An ExecJob reconstructed from the wire: owns its test case and
/// configuration storage (ExecJob itself only holds pointers).
struct OwnedExecJob {
  TestCase Test;
  std::optional<DeviceConfig> Config; ///< nullopt = reference run
  bool Opt = false;
  RunSettings Settings;

  /// A view into this object's storage; valid while it lives.
  ExecJob view() const;
};

void serializeExecJob(WireWriter &W, const ExecJob &Job);
OwnedExecJob deserializeExecJob(WireReader &R);

/// An ExecColumn reconstructed from the wire: the shared test case is
/// stored once, each cell keeps only its own (config, opt, settings)
/// triple. view() materialises ExecJobs pointing into this storage.
struct OwnedExecColumn {
  struct Cell {
    std::optional<DeviceConfig> Config; ///< nullopt = reference run
    bool Opt = false;
    RunSettings Settings;
  };

  TestCase Test;
  std::vector<Cell> Cells;

  /// A view into this object's storage; valid while it lives.
  ExecColumn view() const;
};

/// Column framing for the process-pool backend: the test case once,
/// then one (config, opt, settings) record per cell — the whole point
/// of shipping a column instead of N jobs. This is transport framing
/// only; descriptor identity (descriptorBytes / hashDescriptor) stays
/// per-job, so outcome-cache keys are unaffected.
void serializeExecColumn(WireWriter &W, const ExecColumn &Column);
OwnedExecColumn deserializeExecColumn(WireReader &R);

/// The canonical byte string of a job descriptor: exactly the
/// serializeExecJob stream. Two jobs with equal descriptor bytes are
/// the same pure function and must produce the same RunOutcome on
/// every backend — the content-addressing contract the outcome cache
/// (exec/OutcomeCache.h) hangs off.
std::vector<uint8_t> descriptorBytes(const ExecJob &Job);

/// The canonical 64-bit fingerprint of a job descriptor: FNV-1a
/// (support/Hash.h) over descriptorBytes(). This is the single
/// descriptor-fingerprint path in the code base — the outcome cache's
/// key derivation and every other descriptor identity check go
/// through here, the same Fnv64 that fingerprints kernel outputs
/// (RunOutcome::OutputHash), so there is exactly one hashing
/// implementation to audit.
uint64_t hashDescriptor(const ExecJob &Job);

void serializeRunOutcome(WireWriter &W, const RunOutcome &O);
RunOutcome deserializeRunOutcome(WireReader &R);

} // namespace clfuzz

#endif // CLFUZZ_EXEC_JOBSERIALIZE_H
