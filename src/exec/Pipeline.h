//===- Pipeline.h - Streaming campaign pipeline runner ----------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Composes the three campaign pipeline interfaces: pull a bounded
/// shard of tests from a TestSource, expand each test into its
/// campaign cells, run the shard's cells on an ExecBackend, and feed
/// every test's outcomes to a ResultSink in submission order. At most
/// one shard of TestCases is alive at any moment — a 10x-scale
/// campaign streams through in O(ShardSize) memory — and the sink
/// sees identical data for every backend, worker count and shard
/// size.
///
/// The campaign drivers (src/oracle/Campaign.cpp), `clfuzz hunt` and
/// the bench harnesses are thin compositions over this runner.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_EXEC_PIPELINE_H
#define CLFUZZ_EXEC_PIPELINE_H

#include "exec/ResultSink.h"
#include "exec/TestSource.h"

namespace clfuzz {

/// What a pipeline run did (for logs and the bounded-memory tests).
struct PipelineStats {
  size_t Tests = 0;
  size_t Shards = 0;
  size_t Jobs = 0;
  /// Largest number of TestCases alive at once (== largest shard).
  size_t PeakResidentTests = 0;
};

/// Stepwise form of the sharded campaign runner: each step() pulls one
/// shard from the source, runs it on the backend, and feeds the sink —
/// exactly one backend batch per step. The campaign scheduler
/// (src/sched/) interleaves many of these over one shared backend at
/// shard granularity; because each step is a self-contained
/// pull-run-consume cycle in the campaign's own submission order, an
/// interleaved campaign's source pulls, backend batches and sink
/// calls are byte-for-byte the same sequence as its solo run. This is
/// also the scheduler's preemption point: a campaign can only lose the
/// backend between steps (drain-then-reassign at shard boundaries,
/// never mid-job).
///
/// Sink.finish() fires exactly once, on the step() that exhausts the
/// source. runShardedCampaign() below is a loop over this class.
class ShardedCampaignRun {
public:
  /// See runShardedCampaign for the ExpandJobs / Progress contracts.
  ShardedCampaignRun(
      TestSource &Source, ExecBackend &Backend, unsigned ShardSize,
      std::function<void(size_t TestIndex, const TestCase &Test,
                         std::vector<ExecJob> &Jobs)>
          ExpandJobs,
      ResultSink &Sink, std::function<void(size_t TestsDone)> Progress = {});

  /// Runs one shard; returns false once the source is exhausted (the
  /// exhausting call finishes the sink and returns false; later calls
  /// are no-ops returning false). \p DispatchPriority, when nonzero,
  /// is applied to every column of this shard's batch via
  /// ExecBackend::runColumnsPrioritized — outcomes are unchanged, but
  /// the shard's columns enter a contended backend's in-flight window
  /// ahead of priority-0 work.
  bool step(unsigned DispatchPriority = 0);

  bool done() const { return Done; }
  const PipelineStats &stats() const { return Stats; }

private:
  TestSource &Source;
  ExecBackend &Backend;
  unsigned ShardSize;
  std::function<void(size_t TestIndex, const TestCase &Test,
                     std::vector<ExecJob> &Jobs)>
      ExpandJobs;
  ResultSink &Sink;
  std::function<void(size_t TestsDone)> Progress;
  PipelineStats Stats;
  bool Done = false;
};

/// Runs the pipeline until \p Source is exhausted.
///
/// \p ExpandJobs appends the jobs of one test (in a fixed cell order
/// of its choosing) to the shard's job list; it runs on the calling
/// thread. \p Sink.consumeTest receives each test's outcomes in
/// expansion order, keyed by the test's global index.
///
/// \p Progress, when set, fires on the *calling thread* once per test
/// with the number of tests completed so far — this is where
/// CampaignSettings::Progress's "always invoked from the campaign's
/// calling thread" guarantee is enforced, regardless of which backend
/// runs the cells. Workers (threads or subprocesses) never invoke it;
/// completions are relayed to the submitter as it drains each shard.
PipelineStats runShardedCampaign(
    TestSource &Source, ExecBackend &Backend, unsigned ShardSize,
    const std::function<void(size_t TestIndex, const TestCase &Test,
                             std::vector<ExecJob> &Jobs)> &ExpandJobs,
    ResultSink &Sink,
    const std::function<void(size_t TestsDone)> &Progress = {});

} // namespace clfuzz

#endif // CLFUZZ_EXEC_PIPELINE_H
