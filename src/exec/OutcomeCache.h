//===- OutcomeCache.h - Content-addressed job outcome cache -----*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A content-addressed cache of job outcomes, keyed by the FNV-1a
/// fingerprint of the canonical JobSerialize descriptor bytes. The
/// ExecBackend contract guarantees jobs are pure functions of their
/// serialized descriptors (pinned by tests/BackendConformanceTest.cpp),
/// so an identical descriptor is identical work: campaigns re-dispatch
/// the same reference run once per configuration column, and reduction
/// fixpoints re-probe candidates earlier rounds already executed. The
/// cache turns all of that into lookups.
///
/// Three layers, all optional and all observationally invisible —
/// campaign tables, hunt/reduce output, JSONL traces and stats are
/// byte-identical with the cache on or off; only wall-clock time and
/// the `--stats` cache counters change:
///
///  * a sharded in-memory LRU (OutcomeCache), safe for concurrent use
///    from reduction-queue workers and remote-worker executor slots;
///  * in-flight coalescing (wrapWithOutcomeCache): N identical
///    descriptors in one batch dispatch once and the outcome fans out
///    to all N submission indices;
///  * an optional on-disk store (`--cache-dir=`): one file per entry,
///    magic-tagged, versioned, carrying the full descriptor bytes and
///    a checksum, written temp-then-rename so a crash never leaves a
///    torn entry. A version mismatch or any corruption rejects the
///    entry and the job simply re-executes.
///
/// Keys include a caller-supplied salt for execution knobs that live
/// outside the descriptor (wall-clock deadlines): a Timeout outcome
/// recorded under one deadline is never served to a run with another.
///
/// docs/caching.md specifies the key derivation, the coalescing
/// semantics, the disk format and the invalidation story.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_EXEC_OUTCOMECACHE_H
#define CLFUZZ_EXEC_OUTCOMECACHE_H

#include "exec/ExecBackend.h"

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace clfuzz {

/// Where cached outcomes live (`--cache=`).
enum class CacheMode : uint8_t {
  Off,  ///< no caching; every job executes
  Mem,  ///< in-memory LRU only; dies with the process
  Disk, ///< memory LRU backed by a persistent per-entry file store
};

/// Printable name ("off" / "mem" / "disk").
const char *cacheModeName(CacheMode M);
/// Parses a --cache= value; returns false on an unknown name.
bool parseCacheMode(const std::string &Name, CacheMode &Out);

/// Cache construction options (CLI flags map 1:1).
struct OutcomeCacheOptions {
  CacheMode Mode = CacheMode::Off;

  /// Disk store root (`--cache-dir=`); required when Mode == Disk.
  /// Created on construction; shared across campaigns and processes.
  std::string Dir;

  /// In-memory budget in bytes (`--cache-mem-mb=`), enforced per
  /// shard with LRU eviction. Values below 1 MiB are clamped up.
  size_t MemBudgetBytes = 64u << 20;

  /// Fingerprint of the execution knobs that change outcomes but live
  /// outside the descriptor — wall-clock deadlines, today (see
  /// cacheKeySalt). Entries recorded under one salt never satisfy
  /// lookups under another.
  uint64_t KeySalt = 0;
};

/// The salt for ExecOptions' outside-the-descriptor knobs: the
/// process-pool and remote per-job deadlines. Everything else that
/// affects an outcome is in the descriptor bytes.
uint64_t cacheKeySalt(const ExecOptions &Opts);

/// Counters, all monotonically increasing over the cache's lifetime.
/// Every job consulting the cache is exactly one of hit / miss /
/// coalesced.
struct OutcomeCacheStats {
  uint64_t Hits = 0;       ///< served from memory or disk
  uint64_t Misses = 0;     ///< not found; the job executed
  uint64_t Coalesced = 0;  ///< folded onto an identical in-batch dispatch
  uint64_t DiskHits = 0;   ///< subset of Hits satisfied from disk
  uint64_t BadEntries = 0; ///< disk entries rejected (version/corruption)
};

/// The cache proper. Thread-safe: lookups and stores take one shard
/// mutex each, stats are atomics — reduction-queue jobs and remote
/// worker slots share one instance freely.
class OutcomeCache {
public:
  /// Bumped on any incompatible change to the disk entry layout *or*
  /// to the descriptor serialization it embeds; old entries are then
  /// rejected (never reinterpreted). Mirrored on the wire as the hello
  /// frame's cache generation so coordinators drop stale worker
  /// caches (exec/WireProtocol.h).
  static constexpr uint32_t FormatVersion = 2;

  explicit OutcomeCache(OutcomeCacheOptions Opts);

  OutcomeCache(const OutcomeCache &) = delete;
  OutcomeCache &operator=(const OutcomeCache &) = delete;

  /// A computed cache key: the salted fingerprint plus the full
  /// canonical descriptor bytes. The bytes travel with the key so a
  /// 64-bit fingerprint collision degrades to a miss, never to a
  /// wrong outcome — cache hits must be unobservable.
  struct Key {
    uint64_t Hash = 0;
    std::vector<uint8_t> Bytes;
  };

  /// Derives \p Job's key under this cache's salt (one serialization
  /// of the descriptor; bench/perf_microbench.cpp tracks the cost as
  /// BM_SerializeAndHashDescriptor).
  Key keyOf(const ExecJob &Job) const;

  /// Consults memory, then disk. True = \p Out is the cached outcome
  /// (counted as a hit); false = the caller must execute the job
  /// (counted as a miss).
  bool lookup(const Key &K, RunOutcome &Out);

  /// Records an executed job's outcome (memory, and disk when
  /// enabled). Idempotent; best-effort on disk — an unwritable store
  /// degrades to caching in memory only, never to an error.
  void store(const Key &K, const RunOutcome &O);

  /// Counts batch-level dedupe performed by the coalescing wrapper.
  void countCoalesced(uint64_t N);

  /// Drops every in-memory entry (disk entries survive; they are
  /// version-checked on read). Used when a coordinator announces a
  /// different cache generation.
  void clear();

  OutcomeCacheStats stats() const;
  const OutcomeCacheOptions &options() const { return Opts; }

private:
  struct Entry {
    uint64_t Hash = 0;
    std::vector<uint8_t> Bytes;
    RunOutcome Outcome;
    size_t Cost = 0;
  };
  /// One LRU shard: list front = most recently used, index keyed by
  /// the salted hash (one entry per hash; colliding descriptors
  /// overwrite, which is safe — the byte comparison turns a stale
  /// colliding entry into a miss).
  struct Shard {
    std::mutex Mu;
    std::list<Entry> Lru;
    std::unordered_map<uint64_t, std::list<Entry>::iterator> Index;
    size_t Bytes = 0;
  };
  static constexpr size_t NumShards = 16;

  Shard &shardFor(uint64_t Hash) {
    return Shards[(Hash >> 58) % NumShards];
  }
  size_t shardBudget() const;
  void insertMem(const Key &K, const RunOutcome &O);
  bool lookupMem(const Key &K, RunOutcome &Out);
  bool lookupDisk(const Key &K, RunOutcome &Out);
  void storeDisk(const Key &K, const RunOutcome &O);
  std::string entryPath(uint64_t Hash) const;

  OutcomeCacheOptions Opts;
  Shard Shards[NumShards];
  std::atomic<uint64_t> Hits{0}, Misses{0}, Coalesced{0}, DiskHits{0},
      BadEntries{0};
};

/// Builds a cache for \p Opts, or null when Mode == Off. Throws
/// std::runtime_error when Mode == Disk and the directory cannot be
/// created.
std::shared_ptr<OutcomeCache> makeOutcomeCache(const OutcomeCacheOptions &Opts);

/// Wraps \p Inner so every run() consults \p Cache before dispatch:
/// hits are served without touching the backend, identical descriptors
/// in one batch dispatch once (in-flight coalescing) and fan the
/// outcome out to every submission index, and executed outcomes are
/// stored on the way back. kind()/concurrency()/forEachIndex delegate,
/// so the wrapper is invisible to everything but the stats counters.
/// makeBackend() applies this automatically when ExecOptions::Cache is
/// set.
std::unique_ptr<ExecBackend>
wrapWithOutcomeCache(std::unique_ptr<ExecBackend> Inner,
                     std::shared_ptr<OutcomeCache> Cache);

} // namespace clfuzz

#endif // CLFUZZ_EXEC_OUTCOMECACHE_H
