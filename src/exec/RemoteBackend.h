//===- RemoteBackend.h - Socket-fed multi-host execution backend -*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coordinator half of multi-host campaign execution: an
/// ExecBackend that multiplexes a batch of campaign cells over N
/// `clfuzz worker` connections (exec/WorkerLoop.h), speaking the
/// framed protocol of exec/WireProtocol.h (docs/wire-protocol.md).
/// This is the ROADMAP's "point the job frames at a TCP stream" step:
/// the descriptors already crossed a process boundary for the process
/// pool, so crossing a machine boundary changes scheduling and
/// failure handling, never results.
///
/// Scheduling: each worker advertises its slot count in the
/// handshake; the coordinator keeps an in-flight window of twice that
/// many jobs per connection (enough to hide one round trip, small
/// enough that a dying worker strands little). Outcomes arrive tagged
/// with their submission index, in whatever order workers finish, and
/// reassemble into Results[I] == outcome of Jobs[I] — the pipeline's
/// bit-identity contract survives the network because job descriptors
/// are pure (exec/JobSerialize.h) and reassembly is index-keyed, so
/// `--backend=remote` output is byte-identical to `--backend=inline`
/// at any worker count.
///
/// Failure handling mirrors the process pool, one level up:
///
///  * a worker that dies (EOF, reset, garbage frame) has its
///    in-flight jobs requeued onto the surviving workers; a job
///    whose worker dies twice is recorded as that job's Crash
///    outcome, never silently dropped;
///  * ExecOptions::RemoteTimeoutMs arms a per-job deadline at
///    dispatch; a worker that blows it is disconnected and the job
///    requeued (second expiry = Timeout outcome);
///  * a busy worker that goes quiet is probed with heartbeat frames
///    (ExecOptions::RemoteHeartbeatMs); a missed probe counts as
///    worker death — this is how a wedged-but-connected worker is
///    distinguished from a slow one;
///  * dead endpoints are re-dialled at every batch boundary (and
///    immediately when no worker is left), so a restarted worker
///    rejoins the campaign without coordinator restart.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_EXEC_REMOTEBACKEND_H
#define CLFUZZ_EXEC_REMOTEBACKEND_H

#include "exec/ExecBackend.h"

#include <string>
#include <vector>

namespace clfuzz {

/// Splits a `--workers=host:port,host:port,...` value. Entries are
/// not validated here (makeRemoteBackend rejects malformed ones).
std::vector<std::string> splitWorkerList(const std::string &List);

/// Builds the remote backend from ExecOptions::RemoteWorkers
/// ("host:port" each), RemoteTimeoutMs and RemoteHeartbeatMs. Throws
/// std::runtime_error when the worker list is empty or malformed, or
/// when this platform has no socket support; workers themselves are
/// dialled lazily (first run()), so a not-yet-started worker fleet is
/// an execution-time error, not a construction-time one.
std::unique_ptr<ExecBackend> makeRemoteBackend(const ExecOptions &Opts);

} // namespace clfuzz

#endif // CLFUZZ_EXEC_REMOTEBACKEND_H
