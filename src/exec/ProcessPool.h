//===- ProcessPool.h - Fork/exec-isolated execution backend -----*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process-pool ExecBackend: campaign cells execute in forked
/// worker subprocesses fed serialized job descriptors over pipes, so a
/// cell that crashes the VM or runs away past its wall-clock deadline
/// kills one disposable worker — recorded as that job's Crash/Timeout
/// outcome — instead of the whole campaign. This is the isolation
/// model real many-core fuzzing needs: the paper's campaigns brought
/// down drivers and whole machines, and a scheduler that dies with its
/// victim cannot hunt at scale.
///
/// Determinism: a job descriptor carries the test case, the device
/// configuration and the run settings by value (exec/JobSerialize.h),
/// so the worker re-derives exactly the deterministic streams —
/// generator seeds, scheduler seeds, lottery salts, Rng::forkForJob
/// children baked into the descriptor — that the in-process backends
/// use. Same seed => byte-identical tables on every backend.
///
/// Workers are forked lazily on the first batch and reused across
/// batches; a dead worker is reaped and replaced without disturbing
/// the rest of the pool. One *frame* is in flight per worker; a frame
/// adaptively batches up to 8 cheap jobs (written with one syscall,
/// amortising serialization) whose outcomes stream back one frame
/// each as they complete, while timeout-prone batches — any run with
/// a wall-clock deadline set — stay one job per frame so the deadline
/// and the SIGKILL remain per-job. The small frame cap keeps both
/// pipe directions far below capacity, which is what keeps the
/// protocol deadlock-free. A job whose worker dies gets one retry,
/// alone, on a fresh worker: an innocent job stranded by a batch
/// neighbour's crash (or an externally killed worker - OOM, operator)
/// re-runs to its true result, while a genuinely crashing job —
/// deterministic like every cell — kills the retry worker too and is
/// recorded as a Crash.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_EXEC_PROCESSPOOL_H
#define CLFUZZ_EXEC_PROCESSPOOL_H

#include "exec/ExecBackend.h"

namespace clfuzz {

/// Builds the process-pool backend: ExecOptions::Threads workers
/// (0 = one per core), ExecOptions::ProcTimeoutMs wall-clock deadline
/// per job (0 = none). On platforms without fork() this returns the
/// serial InlineBackend instead — same results, no isolation.
///
/// The outcome cache layers *above* this pool, never inside it: the
/// coordinator-side caching wrapper (makeBackend with
/// ExecOptions::Cache) and the worker-side cache in
/// WorkerLoop's executor slots both answer repeated descriptors
/// before a frame is ever written to a subprocess, so a cache hit —
/// including a remembered Crash or Timeout outcome — costs no fork.
std::unique_ptr<ExecBackend> makeProcessPoolBackend(const ExecOptions &Opts);

} // namespace clfuzz

#endif // CLFUZZ_EXEC_PROCESSPOOL_H
