//===- ExecutionEngine.h - Parallel campaign execution ----------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A work-queue + thread-pool execution engine for campaign cells. The
/// paper's experiments are embarrassingly parallel — every
/// (kernel, configuration, opt level) run is an independent pure
/// function of its inputs — yet the seed reproduction executed them in
/// sequential nested loops. This engine promotes that execution to a
/// first-class subsystem:
///
///  * a batch of ExecJob cells is distributed over persistent worker
///    threads through a shared index queue;
///  * results land in a slot vector keyed by the job's submission
///    index, never by completion order, so the aggregated output is
///    bit-identical to a serial run regardless of thread count or OS
///    scheduling;
///  * ExecOptions::Threads == 1 (ExecPolicy::Serial) bypasses the pool
///    entirely and runs inline on the caller's thread, preserving the
///    old code path;
///  * jobs must not share mutable state: anything random a job needs is
///    derived up front via Rng::forkForJob(index), and the driver /
///    VM / generator stack below runTestOnConfig is audited to keep all
///    per-run state job-local.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_EXEC_EXECUTIONENGINE_H
#define CLFUZZ_EXEC_EXECUTIONENGINE_H

#include "device/Driver.h"

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace clfuzz {

/// How the engine schedules a batch.
enum class ExecPolicy : uint8_t {
  Serial,   ///< inline on the calling thread (the pre-engine path)
  Parallel, ///< thread-pooled over ExecOptions::Threads workers
};

/// Which ExecBackend implementation a campaign schedules its cells on
/// (see exec/ExecBackend.h). Every backend produces bit-identical
/// tables for a fixed seed; they differ only in wall-clock behaviour
/// and fault isolation.
enum class BackendKind : uint8_t {
  Inline,  ///< serial, on the calling thread
  Threads, ///< ExecutionEngine thread pool (Threads == 1 is serial)
  Procs,   ///< fork/exec-style process pool; crashes are isolated
  Remote,  ///< socket-fed `clfuzz worker` fleet (exec/RemoteBackend.h)
};

/// Printable name ("inline" / "threads" / "procs" / "remote").
const char *backendKindName(BackendKind K);
/// Parses a --backend= value; returns false on an unknown name.
bool parseBackendKind(const std::string &Name, BackendKind &Out);

/// Engine tuning, threaded through campaign / reducer settings.
struct ExecOptions {
  /// Worker count: 1 = serial inline execution, 0 = one worker per
  /// hardware thread, N = exactly N workers (clamped to MaxThreads —
  /// campaign results are thread-count-invariant, so clamping never
  /// changes output, only protects against nonsense like a negative
  /// CLI value cast to unsigned).
  unsigned Threads = 1;

  /// Which ExecBackend implementation makeBackend() builds. Threads is
  /// the default: with Threads == 1 it degrades to the serial inline
  /// path, so the historical ExecOptions{N} behaviour is unchanged.
  BackendKind Backend = BackendKind::Threads;

  /// Upper bound on the number of TestCases a campaign driver holds
  /// alive at once per mode: sources are pulled in shards of at most
  /// this many tests, and a shard is dropped before the next one is
  /// generated. Memory is O(ShardSize), not O(KernelsPerMode).
  unsigned ShardSize = 64;

  /// Wall-clock deadline per job in milliseconds, enforced only by the
  /// process-pool backend (the thread pool cannot safely kill a
  /// runaway job). 0 disables the deadline. The VM's step budget
  /// already bounds simulated runs, so this only matters for genuinely
  /// runaway executions.
  unsigned ProcTimeoutMs = 0;

  /// Remote backend only: the `clfuzz worker` endpoints ("host:port"
  /// each) the coordinator multiplexes jobs over. Required (and only
  /// meaningful) with Backend == BackendKind::Remote.
  std::vector<std::string> RemoteWorkers;

  /// Remote backend only: coordinator-side wall-clock deadline per
  /// dispatched job in milliseconds. A worker that blows it is
  /// disconnected and the job requeued once (second expiry = Timeout
  /// outcome). 0 disables. Distinct from ProcTimeoutMs, which the
  /// *worker's* local process pool enforces per job.
  unsigned RemoteTimeoutMs = 0;

  /// Remote backend only: idle interval (ms) after which a busy,
  /// silent worker is probed with a heartbeat frame; a probe
  /// unanswered for another interval counts as worker death. 0
  /// disables liveness probing (a wedged worker then hangs the
  /// campaign unless RemoteTimeoutMs is set).
  unsigned RemoteHeartbeatMs = 2000;

  /// Content-addressed outcome cache shared by whatever backends are
  /// built from these options (exec/OutcomeCache.h); null = no
  /// caching. makeBackend() wraps the concrete backend so identical
  /// job descriptors are served from cache (and coalesced within a
  /// batch) instead of re-executing. Cache hits are observationally
  /// invisible: campaign output is byte-identical with or without a
  /// cache — only wall-clock time and the --stats counters change.
  std::shared_ptr<class OutcomeCache> Cache;

  /// Remote backend only: the rendezvous registry rendering the fleet
  /// elastic (exec/FleetRegistry.h); null = static fleet. When set,
  /// the remote backend adopts workers the registry has admitted at
  /// every dispatch boundary, so the fleet grows mid-campaign; with a
  /// registry present RemoteWorkers may be empty (the fleet is then
  /// built entirely from joins). Share one registry with exactly one
  /// backend at a time — an adopted socket has a single owner.
  std::shared_ptr<class FleetRegistry> Fleet;

  /// Upper bound resolvedThreads() clamps to.
  static constexpr unsigned MaxThreads = 256;

  ExecPolicy policy() const {
    return Threads == 1 ? ExecPolicy::Serial : ExecPolicy::Parallel;
  }
  /// Threads with 0 resolved to the hardware concurrency.
  unsigned resolvedThreads() const;
  /// ShardSize with 0 clamped to 1.
  unsigned resolvedShardSize() const {
    return ShardSize == 0 ? 1 : ShardSize;
  }

  static ExecOptions serial() { return ExecOptions{1}; }
  static ExecOptions withThreads(unsigned N) { return ExecOptions{N}; }
  static ExecOptions withBackend(BackendKind K, unsigned N = 1) {
    ExecOptions O{N};
    O.Backend = K;
    return O;
  }
};

/// One campaign cell: a test to run on a configuration (or on the
/// clean reference when Config is null) at one opt level.
struct ExecJob {
  const TestCase *Test = nullptr;
  const DeviceConfig *Config = nullptr; ///< null = reference run
  bool Opt = false;
  RunSettings Settings;

  static ExecJob onConfig(const TestCase &T, const DeviceConfig &C,
                          bool Opt, const RunSettings &S) {
    return ExecJob{&T, &C, Opt, S};
  }
  static ExecJob onReference(const TestCase &T, bool Opt,
                             const RunSettings &S) {
    return ExecJob{&T, nullptr, Opt, S};
  }
};

/// Executes one job on the calling thread (pure; used by the engine's
/// workers and directly by serial fallbacks).
RunOutcome runExecJob(const ExecJob &Job);

/// A campaign column: the consecutive cells of one test — every job
/// references the same TestCase — in submission order. Executing a
/// column as a unit lets the worker parse and check the kernel source
/// once and reuse the front end for every cell (device/Driver.h's
/// TestFrontEnd): pass-free cells read it, optimising cells deep-clone
/// it (see frontEndUseFor) — instead of re-parsing per cell. Columns
/// are an execution-granularity choice only: outcomes are
/// byte-identical to running the same jobs cell-by-cell, and the
/// outcome cache keeps keying per cell.
struct ExecColumn {
  std::vector<ExecJob> Jobs;
};

/// Groups a flat job list into maximal columns of consecutive jobs
/// sharing one TestCase (pointer identity). Flattening the result
/// reproduces \p Jobs exactly, so per-index outcome keying is
/// unchanged.
std::vector<ExecColumn> groupIntoColumns(const std::vector<ExecJob> &Jobs);

/// Executes one column on the calling thread, sharing a lazily built
/// TestFrontEnd across the cells frontEndUseFor admits (read or
/// clone). Outcomes are in job order and byte-identical to per-cell
/// runExecJob calls.
std::vector<RunOutcome> runExecColumn(const ExecColumn &Column);

/// The thread pool. Workers are spawned once in the constructor and
/// parked on a condition variable between batches, so per-batch
/// overhead is a couple of notifications rather than thread churn.
class ExecutionEngine {
public:
  explicit ExecutionEngine(const ExecOptions &Opts = ExecOptions());
  ~ExecutionEngine();

  ExecutionEngine(const ExecutionEngine &) = delete;
  ExecutionEngine &operator=(const ExecutionEngine &) = delete;

  /// Worker count the engine resolved to (>= 1; 1 means serial).
  unsigned threadCount() const { return NumThreads; }

  /// Runs \p Body(I) for every I in [0, N). Iterations may run
  /// concurrently and MUST be independent: \p Body may only write
  /// state owned by its own index (e.g. its slot of a result vector).
  /// Blocks until every iteration finished. If any iteration throws,
  /// the first exception (in completion order) is rethrown here after
  /// the batch drains.
  ///
  /// \p ClaimChunk is the number of indices a worker claims per queue
  /// lock acquisition. Cheap bodies (kernel generation, candidate
  /// filtering) should claim 8 at a time to cut lock traffic on wide
  /// machines; timeout-heavy bodies (campaign cells that can burn a
  /// whole step budget) should claim 1 so a slow cell never strands
  /// cheap neighbours behind it. Results are keyed by index either
  /// way, so the chunk size never changes output — only lock traffic.
  void forEachIndex(size_t N, const std::function<void(size_t)> &Body,
                    unsigned ClaimChunk = 1);

  /// Chunk size for cheap, uniform-cost bodies.
  static constexpr unsigned CheapClaimChunk = 8;

  /// Runs a batch of campaign cells. Results[I] is Jobs[I]'s outcome —
  /// keyed by submission index, never completion order, so the output
  /// is bit-identical to a serial loop over the same jobs. Cells can
  /// time out, so the batch claims one index at a time.
  std::vector<RunOutcome> runBatch(const std::vector<ExecJob> &Jobs);

private:
  void workerLoop();

  unsigned NumThreads = 1;
  std::vector<std::thread> Workers;

  // Batch state, guarded by M / CV (workers) and DoneCV (submitter).
  std::mutex M;
  std::condition_variable CV;
  std::condition_variable DoneCV;
  const std::function<void(size_t)> *Body = nullptr;
  size_t NextIndex = 0;
  size_t EndIndex = 0;
  size_t DoneCount = 0;
  unsigned BatchClaimChunk = 1;
  uint64_t BatchId = 0;
  std::exception_ptr FirstError;
  bool ShuttingDown = false;
};

} // namespace clfuzz

#endif // CLFUZZ_EXEC_EXECUTIONENGINE_H
