//===- ExecBackend.cpp - Pluggable campaign execution backends ---------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "exec/ExecBackend.h"
#include "exec/OutcomeCache.h"
#include "exec/ProcessPool.h"
#include "exec/RemoteBackend.h"

#include <algorithm>
#include <cassert>
#include <iterator>

using namespace clfuzz;

ExecBackend::~ExecBackend() = default;

std::vector<RunOutcome>
ExecBackend::runColumns(const std::vector<ExecColumn> &Columns) {
  // Flatten-and-delegate default: correct for every backend, used
  // as-is by the caching wrapper (per-cell cache keys) and the remote
  // backend (per-job wire protocol).
  std::vector<ExecJob> Flat;
  for (const ExecColumn &Col : Columns)
    Flat.insert(Flat.end(), Col.Jobs.begin(), Col.Jobs.end());
  return run(Flat);
}

std::vector<RunOutcome>
ExecBackend::runColumnsPrioritized(const std::vector<ExecColumn> &Columns,
                                   const std::vector<unsigned> &Priorities) {
  assert(Priorities.size() == Columns.size() &&
         "one priority per column");
  // Fast path: uniform priorities permute to the identity.
  bool Uniform = true;
  for (size_t I = 1; I < Priorities.size(); ++I)
    if (Priorities[I] != Priorities[0]) {
      Uniform = false;
      break;
    }
  if (Uniform)
    return runColumns(Columns);

  // Dispatch permutation: stable-sort column indices by priority
  // descending, so equal-priority columns keep submission order and
  // the permutation is a pure function of (Priorities) — deterministic
  // across runs and backends.
  std::vector<size_t> Order(Columns.size());
  for (size_t I = 0; I != Order.size(); ++I)
    Order[I] = I;
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    return Priorities[A] > Priorities[B];
  });

  std::vector<ExecColumn> Permuted;
  Permuted.reserve(Columns.size());
  for (size_t I : Order)
    Permuted.push_back(Columns[I]);
  std::vector<RunOutcome> PermutedOut = runColumns(Permuted);

  // Scatter outcomes back to submission order: compute each original
  // column's flat offset, then copy its slice out of the permuted
  // result vector.
  std::vector<size_t> FlatStart(Columns.size() + 1, 0);
  for (size_t I = 0; I != Columns.size(); ++I)
    FlatStart[I + 1] = FlatStart[I] + Columns[I].Jobs.size();
  std::vector<RunOutcome> Results(FlatStart.back());
  size_t Cursor = 0;
  for (size_t I : Order) {
    size_t N = Columns[I].Jobs.size();
    for (size_t J = 0; J != N; ++J)
      Results[FlatStart[I] + J] = std::move(PermutedOut[Cursor + J]);
    Cursor += N;
  }
  return Results;
}

void ExecBackend::forEachIndex(size_t N,
                               const std::function<void(size_t)> &Body) {
  // Same exception contract as the thread pool: every index runs, the
  // first exception is rethrown after the batch drains — so a caller
  // that catches and continues sees identical side-effect state on
  // every backend.
  std::exception_ptr FirstError;
  for (size_t I = 0; I != N; ++I) {
    try {
      Body(I);
    } catch (...) {
      if (!FirstError)
        FirstError = std::current_exception();
    }
  }
  if (FirstError)
    std::rethrow_exception(FirstError);
}

std::vector<RunOutcome>
InlineBackend::run(const std::vector<ExecJob> &Jobs) {
  std::vector<RunOutcome> Results;
  Results.reserve(Jobs.size());
  for (const ExecJob &Job : Jobs)
    Results.push_back(runExecJob(Job));
  return Results;
}

std::vector<RunOutcome>
InlineBackend::runColumns(const std::vector<ExecColumn> &Columns) {
  std::vector<RunOutcome> Results;
  for (const ExecColumn &Col : Columns) {
    std::vector<RunOutcome> ColResults = runExecColumn(Col);
    Results.insert(Results.end(),
                   std::make_move_iterator(ColResults.begin()),
                   std::make_move_iterator(ColResults.end()));
  }
  return Results;
}

ThreadPoolBackend::ThreadPoolBackend(const ExecOptions &Opts)
    : Engine(Opts) {}

std::vector<RunOutcome>
ThreadPoolBackend::run(const std::vector<ExecJob> &Jobs) {
  // Campaign cells can be timeout-heavy (a cell may burn its whole
  // step budget), so the batch claims one index per lock acquisition.
  return Engine.runBatch(Jobs);
}

std::vector<RunOutcome>
ThreadPoolBackend::runColumns(const std::vector<ExecColumn> &Columns) {
  // One pool index per column so the shared front end stays on one
  // worker; per-column results land in their own slot and flatten in
  // submission order, keeping output keyed by index as always. Columns
  // contain timeout-heavy cells, so claim one at a time (the default).
  std::vector<std::vector<RunOutcome>> Per(Columns.size());
  Engine.forEachIndex(Columns.size(),
                      [&](size_t I) { Per[I] = runExecColumn(Columns[I]); });
  std::vector<RunOutcome> Results;
  for (std::vector<RunOutcome> &ColResults : Per)
    Results.insert(Results.end(),
                   std::make_move_iterator(ColResults.begin()),
                   std::make_move_iterator(ColResults.end()));
  return Results;
}

void ThreadPoolBackend::forEachIndex(
    size_t N, const std::function<void(size_t)> &Body) {
  // Generation-side work is cheap and uniform; claim chunks to cut
  // queue lock traffic.
  Engine.forEachIndex(N, Body, ExecutionEngine::CheapClaimChunk);
}

std::unique_ptr<ExecBackend> clfuzz::makeBackend(const ExecOptions &Opts) {
  std::unique_ptr<ExecBackend> Backend;
  switch (Opts.Backend) {
  case BackendKind::Inline:
    Backend = std::make_unique<InlineBackend>();
    break;
  case BackendKind::Threads:
    Backend = std::make_unique<ThreadPoolBackend>(Opts);
    break;
  case BackendKind::Procs:
    Backend = makeProcessPoolBackend(Opts);
    break;
  case BackendKind::Remote:
    Backend = makeRemoteBackend(Opts);
    break;
  }
  if (!Backend)
    Backend = std::make_unique<InlineBackend>();
  // With a cache configured, every backend is consulted
  // content-addressed: identical descriptors are served from cache or
  // coalesced within the batch instead of re-executing.
  return wrapWithOutcomeCache(std::move(Backend), Opts.Cache);
}
