//===- WireProtocol.h - Remote campaign frame protocol ----------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The framed wire protocol spoken between a campaign coordinator
/// (exec/RemoteBackend.h) and `clfuzz worker` processes
/// (exec/WorkerLoop.h), carrying the same ExecJob / RunOutcome
/// descriptors the process pool pipes around (exec/JobSerialize.h) —
/// but across a real network boundary, so unlike the process pool's
/// private framing this one is versioned, magic-tagged and paranoid
/// about garbage.
///
/// The format is specified in docs/wire-protocol.md; coordinator and
/// worker can evolve independently as long as both honour that
/// document. Summary: every frame is a fixed 12-byte little-endian
/// header (magic "CLFZ", protocol version, frame type, payload
/// length) followed by a bounded payload serialized with the
/// WireWriter primitives. A reader that sees a bad magic, an unknown
/// version, an unknown type or an oversized length treats the
/// connection as dead — frames are never resynchronized mid-stream.
///
/// This header also hosts the small POSIX fd/socket helpers shared by
/// the worker, the remote backend and the process pool (readFull /
/// writeFullNoSigpipe predate this file in ProcessPool.cpp and were
/// hoisted here when the network backend arrived).
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_EXEC_WIREPROTOCOL_H
#define CLFUZZ_EXEC_WIREPROTOCOL_H

#include "exec/JobSerialize.h"

#include <cstdint>
#include <string>
#include <vector>

namespace clfuzz {
namespace wire {

/// "CLFZ" as a little-endian u32 ('C' is the first byte on the wire).
constexpr uint32_t FrameMagic = 0x5A464C43;

/// Bumped on any incompatible change to the header or a payload
/// layout; both ends reject frames from a different major version.
/// v2: the hello payload gained the coordinator's u64 cache
/// generation (was empty).
/// v3: join / join-ack / leave frames for rendezvous workers
/// (exec/FleetRegistry.h). The v2 flows are untouched — a
/// statically-listed worker speaks exactly the v2 hello/hello-ack
/// sequence, just with the new version byte.
constexpr uint8_t ProtocolVersion = 3;

/// The cache generation a coordinator announces in every hello: the
/// outcome-cache format version (OutcomeCache::FormatVersion; the two
/// are static_assert-locked together). A worker whose outcome cache
/// was filled under a different generation drops it on handshake, so
/// stale cached outcomes never cross a format change.
constexpr uint64_t CacheGeneration = 2;

/// Upper bound on a frame payload. Real job descriptors are a few KiB
/// (kernel source + buffers + config); anything near this bound is a
/// corrupt or hostile length field, not a job.
constexpr uint32_t MaxFramePayload = 64u << 20;

/// Size of the fixed frame header on the wire.
constexpr size_t FrameHeaderSize = 12;

/// Frame types. Values are wire-visible; never renumber, only append.
enum class FrameType : uint8_t {
  Hello = 1,        ///< coordinator -> worker, first frame on a connection
  HelloAck = 2,     ///< worker -> coordinator: accepts, advertises slots
  Job = 3,          ///< coordinator -> worker: tag + ExecJob descriptor
  Outcome = 4,      ///< worker -> coordinator: tag + RunOutcome
  Heartbeat = 5,    ///< coordinator -> worker: liveness probe (nonce)
  HeartbeatAck = 6, ///< worker -> coordinator: echoes the nonce
  Shutdown = 7,     ///< either direction: polite connection close
  Join = 8,         ///< worker -> registry: rendezvous registration
  JoinAck = 9,      ///< registry -> worker: accept/reject + cache gen
  Leave = 10,       ///< worker -> coordinator: drain request — finish
                    ///< my in-flight jobs, send me nothing new
};

/// Printable name ("job", "outcome", ...), for diagnostics.
const char *frameTypeName(FrameType T);

/// A parsed frame: validated header, raw payload bytes.
struct Frame {
  FrameType Type = FrameType::Shutdown;
  std::vector<uint8_t> Payload;
};

/// What readFrame saw on the stream.
enum class ReadStatus : uint8_t {
  Ok,        ///< a well-formed frame was read into the out-param
  Eof,       ///< orderly close (or fd error) before a header arrived
  Malformed, ///< bad magic / version / type / length — connection is
             ///< unrecoverable, the stream cannot be resynchronized
};

//===----------------------------------------------------------------------===//
// Fd primitives (shared with the process pool)
//===----------------------------------------------------------------------===//

/// Reads exactly N bytes; false on EOF or unrecoverable error.
bool readFull(int Fd, void *Buf, size_t N);

/// Writes exactly N bytes; false on EPIPE (dead peer) or error.
bool writeFull(int Fd, const void *Buf, size_t N);

/// writeFull with SIGPIPE suppressed for this write only: the signal
/// is blocked on the calling thread, any SIGPIPE our write raised is
/// drained, and the old mask is restored — so a peer dying mid-send
/// surfaces as EPIPE without altering the program's process-wide
/// signal disposition (a campaign piped into `head` must still die of
/// SIGPIPE on stdout like any other process).
bool writeFullNoSigpipe(int Fd, const void *Buf, size_t N);

//===----------------------------------------------------------------------===//
// Frame I/O
//===----------------------------------------------------------------------===//

/// Reads one frame. Blocks until the whole frame arrived (callers
/// poll() for readability first; a peer writes frames contiguously, so
/// the residual blocking window is one partial frame). On Malformed,
/// \p Why (when non-null) names the header check that failed
/// ("bad magic", "version mismatch", "unknown frame type",
/// "nonzero reserved bytes", "oversized payload") — feeding the
/// structured drop-reason logs the fleet layer emits.
ReadStatus readFrame(int Fd, Frame &Out, std::string *Why = nullptr);

/// Writes one frame (header + payload) in a single writeFullNoSigpipe.
/// False when the peer is gone.
bool writeFrame(int Fd, FrameType Type, const std::vector<uint8_t> &Payload);

//===----------------------------------------------------------------------===//
// Payload encoders / decoders
//===----------------------------------------------------------------------===//
//
// Decoders throw std::runtime_error on truncated or trailing bytes
// (via WireReader); callers treat that exactly like a Malformed frame.

/// Hello: u64 cache generation (CacheGeneration for this build). A
/// worker compares it against the generation its outcome cache was
/// filled under and clears the cache on mismatch (exec/WorkerLoop.h).
std::vector<uint8_t> encodeHello(uint64_t CacheGen);
uint64_t decodeHello(const Frame &F);

/// HelloAck: u32 concurrency — the number of jobs the worker is
/// willing to run at once on this connection. The coordinator sizes
/// its in-flight window from it.
std::vector<uint8_t> encodeHelloAck(uint32_t Concurrency);
uint32_t decodeHelloAck(const Frame &F);

/// Job: u64 tag + serialized ExecJob. The tag is opaque to the worker
/// and echoed verbatim on the outcome; the coordinator uses the job's
/// submission index, which is how results reassemble in submission
/// order whatever the completion order across workers.
std::vector<uint8_t> encodeJob(uint64_t Tag, const ExecJob &Job);
struct DecodedJob {
  uint64_t Tag = 0;
  OwnedExecJob Job;
};
DecodedJob decodeJob(const Frame &F);

/// Outcome: u64 tag + serialized RunOutcome.
std::vector<uint8_t> encodeOutcome(uint64_t Tag, const RunOutcome &O);
struct DecodedOutcome {
  uint64_t Tag = 0;
  RunOutcome Outcome;
};
DecodedOutcome decodeOutcome(const Frame &F);

/// Heartbeat / HeartbeatAck: u64 nonce, echoed back.
std::vector<uint8_t> encodeHeartbeat(uint64_t Nonce);
uint64_t decodeHeartbeat(const Frame &F);

/// Join: the first frame a rendezvous worker sends after dialling a
/// coordinator's fleet registry — the cache generation its outcome
/// cache was filled under plus the concurrency it advertises. The
/// registry rejects a stale generation (JoinAck accepted=0) so a
/// worker never serves outcomes cached under another format.
std::vector<uint8_t> encodeJoin(uint64_t CacheGen, uint32_t Concurrency);
struct DecodedJoin {
  uint64_t CacheGen = 0;
  uint32_t Concurrency = 1;
};
DecodedJoin decodeJoin(const Frame &F);

/// JoinAck: u8 accepted (0/1) + the coordinator's u64 cache
/// generation. On rejection the worker clears its cache and redials
/// with backoff; on acceptance the connection proceeds straight to
/// the v2 job/outcome flow (no hello exchange — join subsumes it).
std::vector<uint8_t> encodeJoinAck(bool Accepted, uint64_t CacheGen);
struct DecodedJoinAck {
  bool Accepted = false;
  uint64_t CacheGen = 0;
};
DecodedJoinAck decodeJoinAck(const Frame &F);

/// Leave: empty payload. A draining worker announces it after its
/// last wanted job; the coordinator stops dispatching to the link,
/// lets the in-flight window finish, then closes — zero requeues.
std::vector<uint8_t> encodeLeave();

//===----------------------------------------------------------------------===//
// Socket helpers
//===----------------------------------------------------------------------===//

/// Connects to host:port with a bounded wait (non-blocking connect +
/// poll). Returns the fd, or -1. TCP_NODELAY is set — frames are
/// small and latency-sensitive.
int connectTcp(const std::string &Host, unsigned Port, unsigned TimeoutMs);

/// Arms (Ms > 0) or clears (Ms == 0) a receive timeout on the socket.
/// A read that stalls past it fails like EOF, so a peer that dies
/// mid-frame (partial header on the wire, then silence) cannot pin
/// the reader forever — readers poll() before reading, so the
/// timeout only ever fires on a genuine mid-frame stall, never on an
/// idle-but-healthy connection.
void setRecvTimeout(int Fd, unsigned Ms);

/// Binds and listens on host:port (port 0 = ephemeral); reports the
/// actually bound port. Returns the listen fd, or -1.
int listenTcp(const std::string &Host, unsigned Port, unsigned &BoundPort);

} // namespace wire
} // namespace clfuzz

#endif // CLFUZZ_EXEC_WIREPROTOCOL_H
