//===- WireProtocol.cpp - Remote campaign frame protocol ---------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "exec/WireProtocol.h"

#include <stdexcept>

using namespace clfuzz;
using namespace clfuzz::wire;

const char *clfuzz::wire::frameTypeName(FrameType T) {
  switch (T) {
  case FrameType::Hello:
    return "hello";
  case FrameType::HelloAck:
    return "hello-ack";
  case FrameType::Job:
    return "job";
  case FrameType::Outcome:
    return "outcome";
  case FrameType::Heartbeat:
    return "heartbeat";
  case FrameType::HeartbeatAck:
    return "heartbeat-ack";
  case FrameType::Shutdown:
    return "shutdown";
  case FrameType::Join:
    return "join";
  case FrameType::JoinAck:
    return "join-ack";
  case FrameType::Leave:
    return "leave";
  }
  return "?";
}

namespace {

bool knownFrameType(uint8_t T) {
  return T >= static_cast<uint8_t>(FrameType::Hello) &&
         T <= static_cast<uint8_t>(FrameType::Leave);
}

} // namespace

//===----------------------------------------------------------------------===//
// Payload encoders / decoders (platform-independent)
//===----------------------------------------------------------------------===//

std::vector<uint8_t> clfuzz::wire::encodeHello(uint64_t CacheGen) {
  WireWriter W;
  W.u64(CacheGen);
  return W.buffer();
}

uint64_t clfuzz::wire::decodeHello(const Frame &F) {
  WireReader R(F.Payload.data(), F.Payload.size());
  uint64_t CacheGen = R.u64();
  if (!R.atEnd())
    throw std::runtime_error("trailing bytes in hello frame");
  return CacheGen;
}

std::vector<uint8_t> clfuzz::wire::encodeHelloAck(uint32_t Concurrency) {
  WireWriter W;
  W.u32(Concurrency);
  return W.buffer();
}

uint32_t clfuzz::wire::decodeHelloAck(const Frame &F) {
  WireReader R(F.Payload.data(), F.Payload.size());
  uint32_t Concurrency = R.u32();
  if (!R.atEnd())
    throw std::runtime_error("trailing bytes in hello-ack frame");
  return Concurrency;
}

std::vector<uint8_t> clfuzz::wire::encodeJob(uint64_t Tag,
                                             const ExecJob &Job) {
  WireWriter W;
  W.u64(Tag);
  serializeExecJob(W, Job);
  return W.buffer();
}

DecodedJob clfuzz::wire::decodeJob(const Frame &F) {
  WireReader R(F.Payload.data(), F.Payload.size());
  DecodedJob D;
  D.Tag = R.u64();
  D.Job = deserializeExecJob(R);
  if (!R.atEnd())
    throw std::runtime_error("trailing bytes in job frame");
  return D;
}

std::vector<uint8_t> clfuzz::wire::encodeOutcome(uint64_t Tag,
                                                 const RunOutcome &O) {
  WireWriter W;
  W.u64(Tag);
  serializeRunOutcome(W, O);
  return W.buffer();
}

DecodedOutcome clfuzz::wire::decodeOutcome(const Frame &F) {
  WireReader R(F.Payload.data(), F.Payload.size());
  DecodedOutcome D;
  D.Tag = R.u64();
  D.Outcome = deserializeRunOutcome(R);
  if (!R.atEnd())
    throw std::runtime_error("trailing bytes in outcome frame");
  return D;
}

std::vector<uint8_t> clfuzz::wire::encodeHeartbeat(uint64_t Nonce) {
  WireWriter W;
  W.u64(Nonce);
  return W.buffer();
}

uint64_t clfuzz::wire::decodeHeartbeat(const Frame &F) {
  WireReader R(F.Payload.data(), F.Payload.size());
  uint64_t Nonce = R.u64();
  if (!R.atEnd())
    throw std::runtime_error("trailing bytes in heartbeat frame");
  return Nonce;
}

std::vector<uint8_t> clfuzz::wire::encodeJoin(uint64_t CacheGen,
                                              uint32_t Concurrency) {
  WireWriter W;
  W.u64(CacheGen);
  W.u32(Concurrency);
  return W.buffer();
}

DecodedJoin clfuzz::wire::decodeJoin(const Frame &F) {
  WireReader R(F.Payload.data(), F.Payload.size());
  DecodedJoin D;
  D.CacheGen = R.u64();
  D.Concurrency = R.u32();
  if (!R.atEnd())
    throw std::runtime_error("trailing bytes in join frame");
  return D;
}

std::vector<uint8_t> clfuzz::wire::encodeJoinAck(bool Accepted,
                                                 uint64_t CacheGen) {
  WireWriter W;
  W.u8(Accepted ? 1 : 0);
  W.u64(CacheGen);
  return W.buffer();
}

DecodedJoinAck clfuzz::wire::decodeJoinAck(const Frame &F) {
  WireReader R(F.Payload.data(), F.Payload.size());
  DecodedJoinAck D;
  D.Accepted = R.u8() != 0;
  D.CacheGen = R.u64();
  if (!R.atEnd())
    throw std::runtime_error("trailing bytes in join-ack frame");
  return D;
}

std::vector<uint8_t> clfuzz::wire::encodeLeave() { return {}; }

//===----------------------------------------------------------------------===//
// Fd primitives and frame I/O (POSIX)
//===----------------------------------------------------------------------===//

#if defined(__unix__) || defined(__APPLE__)

#include <cerrno>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <pthread.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

bool clfuzz::wire::readFull(int Fd, void *Buf, size_t N) {
  auto *P = static_cast<uint8_t *>(Buf);
  while (N) {
    ssize_t R = ::read(Fd, P, N);
    if (R > 0) {
      P += R;
      N -= static_cast<size_t>(R);
      continue;
    }
    if (R < 0 && errno == EINTR)
      continue;
    return false;
  }
  return true;
}

bool clfuzz::wire::writeFull(int Fd, const void *Buf, size_t N) {
  auto *P = static_cast<const uint8_t *>(Buf);
  while (N) {
    ssize_t W = ::write(Fd, P, N);
    if (W > 0) {
      P += W;
      N -= static_cast<size_t>(W);
      continue;
    }
    if (W < 0 && errno == EINTR)
      continue;
    return false;
  }
  return true;
}

bool clfuzz::wire::writeFullNoSigpipe(int Fd, const void *Buf, size_t N) {
  sigset_t Pipe, Old;
  sigemptyset(&Pipe);
  sigaddset(&Pipe, SIGPIPE);
  ::pthread_sigmask(SIG_BLOCK, &Pipe, &Old);
  bool Ok = writeFull(Fd, Buf, N);
  if (!Ok) {
    struct timespec Zero = {0, 0};
    while (::sigtimedwait(&Pipe, nullptr, &Zero) == SIGPIPE) {
    }
  }
  ::pthread_sigmask(SIG_SETMASK, &Old, nullptr);
  return Ok;
}

ReadStatus clfuzz::wire::readFrame(int Fd, Frame &Out, std::string *Why) {
  uint8_t Header[FrameHeaderSize];
  if (!readFull(Fd, Header, sizeof(Header)))
    return ReadStatus::Eof;

  WireReader R(Header, sizeof(Header));
  uint32_t Magic = R.u32();
  uint8_t Version = R.u8();
  uint8_t Type = R.u8();
  uint8_t Reserved0 = R.u8();
  uint8_t Reserved1 = R.u8();
  uint32_t Len = R.u32();

  const char *Bad = nullptr;
  if (Magic != FrameMagic)
    Bad = "bad magic";
  else if (Version != ProtocolVersion)
    Bad = "version mismatch";
  else if (!knownFrameType(Type))
    Bad = "unknown frame type";
  else if (Reserved0 != 0 || Reserved1 != 0)
    Bad = "nonzero reserved bytes";
  else if (Len > MaxFramePayload)
    Bad = "oversized payload";
  if (Bad) {
    if (Why)
      *Why = Bad;
    return ReadStatus::Malformed;
  }

  Out.Type = static_cast<FrameType>(Type);
  Out.Payload.resize(Len);
  if (Len && !readFull(Fd, Out.Payload.data(), Len))
    return ReadStatus::Eof;
  return ReadStatus::Ok;
}

bool clfuzz::wire::writeFrame(int Fd, FrameType Type,
                              const std::vector<uint8_t> &Payload) {
  WireWriter W;
  W.u32(FrameMagic);
  W.u8(ProtocolVersion);
  W.u8(static_cast<uint8_t>(Type));
  W.u8(0);
  W.u8(0);
  W.u32(static_cast<uint32_t>(Payload.size()));
  std::vector<uint8_t> Buf = W.buffer();
  Buf.insert(Buf.end(), Payload.begin(), Payload.end());
  return writeFullNoSigpipe(Fd, Buf.data(), Buf.size());
}

int clfuzz::wire::connectTcp(const std::string &Host, unsigned Port,
                             unsigned TimeoutMs) {
  struct addrinfo Hints = {};
  Hints.ai_family = AF_UNSPEC;
  Hints.ai_socktype = SOCK_STREAM;
  struct addrinfo *Res = nullptr;
  std::string PortStr = std::to_string(Port);
  if (::getaddrinfo(Host.c_str(), PortStr.c_str(), &Hints, &Res) != 0)
    return -1;

  int Fd = -1;
  for (struct addrinfo *AI = Res; AI; AI = AI->ai_next) {
    Fd = ::socket(AI->ai_family, AI->ai_socktype, AI->ai_protocol);
    if (Fd < 0)
      continue;

    // Bounded connect: non-blocking connect, poll for writability,
    // then check SO_ERROR — a dropped host must cost TimeoutMs, not a
    // kernel-default multi-minute SYN retry.
    int Flags = ::fcntl(Fd, F_GETFL, 0);
    ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
    int RC = ::connect(Fd, AI->ai_addr, AI->ai_addrlen);
    if (RC != 0 && errno == EINPROGRESS) {
      struct pollfd P = {Fd, POLLOUT, 0};
      int Ready = ::poll(&P, 1, static_cast<int>(TimeoutMs));
      int Err = 0;
      socklen_t ErrLen = sizeof(Err);
      if (Ready == 1 &&
          ::getsockopt(Fd, SOL_SOCKET, SO_ERROR, &Err, &ErrLen) == 0 &&
          Err == 0)
        RC = 0;
      else
        RC = -1;
    }
    if (RC == 0) {
      ::fcntl(Fd, F_SETFL, Flags);
      int One = 1;
      ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
      break;
    }
    ::close(Fd);
    Fd = -1;
  }
  ::freeaddrinfo(Res);
  return Fd;
}

void clfuzz::wire::setRecvTimeout(int Fd, unsigned Ms) {
  struct timeval Tv;
  Tv.tv_sec = Ms / 1000;
  Tv.tv_usec = static_cast<long>(Ms % 1000) * 1000;
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
}

int clfuzz::wire::listenTcp(const std::string &Host, unsigned Port,
                            unsigned &BoundPort) {
  struct addrinfo Hints = {};
  Hints.ai_family = AF_UNSPEC;
  Hints.ai_socktype = SOCK_STREAM;
  Hints.ai_flags = AI_PASSIVE;
  struct addrinfo *Res = nullptr;
  std::string PortStr = std::to_string(Port);
  if (::getaddrinfo(Host.empty() ? nullptr : Host.c_str(), PortStr.c_str(),
                    &Hints, &Res) != 0)
    return -1;

  int Fd = -1;
  for (struct addrinfo *AI = Res; AI; AI = AI->ai_next) {
    Fd = ::socket(AI->ai_family, AI->ai_socktype, AI->ai_protocol);
    if (Fd < 0)
      continue;
    int One = 1;
    ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    if (::bind(Fd, AI->ai_addr, AI->ai_addrlen) == 0 &&
        ::listen(Fd, 16) == 0) {
      struct sockaddr_storage Addr = {};
      socklen_t AddrLen = sizeof(Addr);
      if (::getsockname(Fd, reinterpret_cast<struct sockaddr *>(&Addr),
                        &AddrLen) == 0) {
        if (Addr.ss_family == AF_INET)
          BoundPort = ntohs(
              reinterpret_cast<struct sockaddr_in *>(&Addr)->sin_port);
        else if (Addr.ss_family == AF_INET6)
          BoundPort = ntohs(
              reinterpret_cast<struct sockaddr_in6 *>(&Addr)->sin6_port);
        else
          BoundPort = Port;
        break;
      }
    }
    ::close(Fd);
    Fd = -1;
  }
  ::freeaddrinfo(Res);
  return Fd;
}

#else // no POSIX sockets: the remote backend and worker are disabled.

bool clfuzz::wire::readFull(int, void *, size_t) { return false; }
bool clfuzz::wire::writeFull(int, const void *, size_t) { return false; }
bool clfuzz::wire::writeFullNoSigpipe(int, const void *, size_t) {
  return false;
}
ReadStatus clfuzz::wire::readFrame(int, Frame &, std::string *) {
  return ReadStatus::Eof;
}
bool clfuzz::wire::writeFrame(int, FrameType, const std::vector<uint8_t> &) {
  return false;
}
int clfuzz::wire::connectTcp(const std::string &, unsigned, unsigned) {
  return -1;
}
void clfuzz::wire::setRecvTimeout(int, unsigned) {}
int clfuzz::wire::listenTcp(const std::string &, unsigned, unsigned &) {
  return -1;
}

#endif
