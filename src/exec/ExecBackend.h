//===- ExecBackend.h - Pluggable campaign execution backends ----*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution half of the streaming campaign pipeline
/// (TestSource -> ExecBackend -> ResultSink). An ExecBackend runs
/// batches of campaign cells; campaign drivers are written against
/// this interface and never against a concrete scheduler, so a run can
/// move from one core to a thread pool to isolated worker processes by
/// flipping ExecOptions::Backend.
///
/// The load-bearing contract, shared by every implementation and
/// pinned by tests/BackendConformanceTest.cpp:
///
///  * run() returns Results[I] == outcome of Jobs[I] — keyed by
///    submission index, never by completion order;
///  * for a fixed seed, every backend at every worker count produces
///    bit-identical campaign tables;
///  * jobs are pure functions of their descriptors: all randomness a
///    job needs is derived up front (Rng::forkForJob and the seeds in
///    the descriptor), so a job can be replayed by any worker — thread
///    or subprocess — with the same result.
///
/// Implementations:
///
///  * InlineBackend — serial, on the calling thread; the reference
///    semantics everything else must match.
///  * ThreadPoolBackend — wraps the ExecutionEngine work-queue pool.
///    Fast, but a job that crashes the process takes the campaign
///    with it.
///  * ProcessPoolBackend (exec/ProcessPool.h) — forked worker
///    subprocesses fed serialized job descriptors; a VM crash or a
///    runaway timeout kills one worker, is recorded as that job's
///    outcome, and the campaign keeps going.
///  * RemoteBackend (exec/RemoteBackend.h) — the same job descriptors
///    framed over TCP (exec/WireProtocol.h) to `clfuzz worker`
///    processes on any number of machines; worker death requeues its
///    in-flight jobs and results reassemble by submission index.
///
/// When ExecOptions::Cache is set, makeBackend() wraps the chosen
/// implementation in the content-addressed outcome cache
/// (exec/OutcomeCache.h): identical job descriptors are served from
/// cache or coalesced within a batch instead of re-executing, with
/// byte-identical campaign output either way.
///
/// docs/architecture.md walks the whole pipeline and the invariants.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_EXEC_EXECBACKEND_H
#define CLFUZZ_EXEC_EXECBACKEND_H

#include "exec/ExecutionEngine.h"

#include <memory>

namespace clfuzz {

/// Abstract batch executor for campaign cells.
class ExecBackend {
public:
  virtual ~ExecBackend();

  /// "inline", "threads", "procs" or "remote".
  virtual BackendKind kind() const = 0;

  /// Number of cells the backend can run concurrently (>= 1).
  virtual unsigned concurrency() const = 0;

  /// Runs a batch of cells. Results[I] is Jobs[I]'s outcome, for every
  /// implementation — the bit-identity contract hangs off this.
  virtual std::vector<RunOutcome> run(const std::vector<ExecJob> &Jobs) = 0;

  /// Runs a batch of campaign columns (exec/ExecutionEngine.h's
  /// ExecColumn): the flattened outcome vector matches a run() over
  /// the flattened job list byte for byte. Backends that can keep a
  /// column on one worker override this to amortise the front end
  /// across the column's cells; the default flattens and delegates to
  /// run(), which is also what the caching wrapper does (cache keys
  /// stay per-cell) and what the remote backend inherits (its wire
  /// protocol stays per-job).
  virtual std::vector<RunOutcome>
  runColumns(const std::vector<ExecColumn> &Columns);

  /// Runs a batch of columns with per-column dispatch priorities
  /// (higher first). The scheduler uses this as its soft-preemption
  /// hook: columns belonging to a higher-priority campaign lane (e.g.
  /// reductions) enter the backend's in-flight window before the rest
  /// of the shard, so under a saturated fleet they claim slots first —
  /// but every column still runs, and the returned outcome vector is
  /// re-keyed to the *submission* column order, byte-identical to
  /// runColumns(Columns) for any priority assignment. Priorities never
  /// enter job descriptors: cache keys and the wire format are
  /// untouched. Non-virtual by design — the permutation layer sits on
  /// top of whichever runColumns() the concrete backend provides.
  std::vector<RunOutcome>
  runColumnsPrioritized(const std::vector<ExecColumn> &Columns,
                        const std::vector<unsigned> &Priorities);

  /// Runs \p Body(I) for every I in [0, N) *in this process*. Sources
  /// use this for generation-side work (building TestCases, EMI
  /// variants) whose closures cannot cross a process boundary; only
  /// the thread-pool backend parallelises it. Iterations must be
  /// index-independent, like ExecutionEngine::forEachIndex. Exception
  /// contract on every backend: all N indices run; the first
  /// exception (in completion order) is rethrown after the batch
  /// drains.
  virtual void forEachIndex(size_t N,
                            const std::function<void(size_t)> &Body);

  const char *name() const { return backendKindName(kind()); }
};

/// Serial reference backend: every cell runs on the calling thread.
class InlineBackend final : public ExecBackend {
public:
  BackendKind kind() const override { return BackendKind::Inline; }
  unsigned concurrency() const override { return 1; }
  std::vector<RunOutcome> run(const std::vector<ExecJob> &Jobs) override;
  std::vector<RunOutcome>
  runColumns(const std::vector<ExecColumn> &Columns) override;
};

/// Thread-pool backend over the ExecutionEngine. With Threads == 1 the
/// engine bypasses its pool entirely, so this doubles as the
/// historical serial path.
class ThreadPoolBackend final : public ExecBackend {
public:
  explicit ThreadPoolBackend(const ExecOptions &Opts = ExecOptions());

  BackendKind kind() const override { return BackendKind::Threads; }
  unsigned concurrency() const override { return Engine.threadCount(); }
  std::vector<RunOutcome> run(const std::vector<ExecJob> &Jobs) override;
  std::vector<RunOutcome>
  runColumns(const std::vector<ExecColumn> &Columns) override;
  void forEachIndex(size_t N,
                    const std::function<void(size_t)> &Body) override;

  ExecutionEngine &engine() { return Engine; }

private:
  ExecutionEngine Engine;
};

/// Builds the backend ExecOptions asks for. The process pool falls
/// back to the inline backend on platforms without fork().
std::unique_ptr<ExecBackend> makeBackend(const ExecOptions &Opts);

} // namespace clfuzz

#endif // CLFUZZ_EXEC_EXECBACKEND_H
