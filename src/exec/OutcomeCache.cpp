//===- OutcomeCache.cpp - Content-addressed job outcome cache ----------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "exec/OutcomeCache.h"
#include "exec/JobSerialize.h"
#include "exec/WireProtocol.h"
#include "support/Hash.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

using namespace clfuzz;

// The wire announces the disk/descriptor format as the hello frame's
// cache generation; the two constants must move together.
static_assert(wire::CacheGeneration == OutcomeCache::FormatVersion,
              "hello cache generation must track the cache format version");

const char *clfuzz::cacheModeName(CacheMode M) {
  switch (M) {
  case CacheMode::Off:
    return "off";
  case CacheMode::Mem:
    return "mem";
  case CacheMode::Disk:
    return "disk";
  }
  return "?";
}

bool clfuzz::parseCacheMode(const std::string &Name, CacheMode &Out) {
  if (Name == "off")
    Out = CacheMode::Off;
  else if (Name == "mem")
    Out = CacheMode::Mem;
  else if (Name == "disk")
    Out = CacheMode::Disk;
  else
    return false;
  return true;
}

uint64_t clfuzz::cacheKeySalt(const ExecOptions &Opts) {
  // Deadlines are the only execution knobs that change an outcome yet
  // live outside the descriptor (a run that would blow a 100 ms
  // deadline completes fine without one). Salting them keeps a
  // Timeout entry from one configuration out of another's lookups.
  // Zero when no deadline is set, so every deadline-free front end
  // shares the common key space.
  if (Opts.ProcTimeoutMs == 0 && Opts.RemoteTimeoutMs == 0)
    return 0;
  return Fnv64()
      .addU64(Opts.ProcTimeoutMs)
      .addU64(Opts.RemoteTimeoutMs)
      .value();
}

namespace {

/// Disk entry magic: "CLOC" little-endian ('C' first on disk).
constexpr uint32_t EntryMagic = 0x434F4C43;

/// 16-digit zero-padded hex, used for stable entry file names.
std::string hex16(uint64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

/// Approximate resident cost of one entry, for the LRU budget.
size_t entryCost(const std::vector<uint8_t> &Bytes, const RunOutcome &O) {
  return Bytes.size() + O.Message.size() + O.RaceMessage.size() +
         O.OutputHead.size() * sizeof(uint64_t) + 160;
}

} // namespace

OutcomeCache::OutcomeCache(OutcomeCacheOptions O) : Opts(std::move(O)) {
  if (Opts.Mode == CacheMode::Disk) {
    if (Opts.Dir.empty())
      throw std::runtime_error("outcome cache: disk mode needs a directory");
    std::error_code EC;
    std::filesystem::create_directories(Opts.Dir, EC);
    if (EC)
      throw std::runtime_error("outcome cache: cannot create '" + Opts.Dir +
                               "': " + EC.message());
  }
}

OutcomeCache::Key OutcomeCache::keyOf(const ExecJob &Job) const {
  Key K;
  K.Bytes = descriptorBytes(Job);
  uint64_t Canonical = fnv64(K.Bytes.data(), K.Bytes.size());
  // == hashDescriptor(Job), without serializing the descriptor twice.
  K.Hash = Opts.KeySalt
               ? Fnv64().addU64(Canonical).addU64(Opts.KeySalt).value()
               : Canonical;
  return K;
}

size_t OutcomeCache::shardBudget() const {
  return std::max<size_t>(Opts.MemBudgetBytes, 1u << 20) / NumShards;
}

bool OutcomeCache::lookupMem(const Key &K, RunOutcome &Out) {
  Shard &S = shardFor(K.Hash);
  std::lock_guard<std::mutex> Lock(S.Mu);
  auto It = S.Index.find(K.Hash);
  if (It == S.Index.end() || It->second->Bytes != K.Bytes)
    return false;
  S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
  Out = It->second->Outcome;
  return true;
}

void OutcomeCache::insertMem(const Key &K, const RunOutcome &O) {
  Shard &S = shardFor(K.Hash);
  std::lock_guard<std::mutex> Lock(S.Mu);
  auto It = S.Index.find(K.Hash);
  if (It != S.Index.end()) {
    // Same descriptor: refresh recency. Different descriptor with the
    // same fingerprint (a collision): replace — one entry per hash,
    // and the byte comparison keeps the loser a miss, never a lie.
    S.Bytes -= It->second->Cost;
    S.Lru.erase(It->second);
    S.Index.erase(It);
  }
  Entry E;
  E.Hash = K.Hash;
  E.Bytes = K.Bytes;
  E.Outcome = O;
  E.Cost = entryCost(K.Bytes, O);
  S.Bytes += E.Cost;
  S.Lru.push_front(std::move(E));
  S.Index.emplace(K.Hash, S.Lru.begin());
  // Evict least-recently-used; a single oversized entry is kept (the
  // alternative is caching nothing at all under a tiny budget).
  while (S.Bytes > shardBudget() && S.Lru.size() > 1) {
    Entry &Victim = S.Lru.back();
    S.Bytes -= Victim.Cost;
    S.Index.erase(Victim.Hash);
    S.Lru.pop_back();
  }
}

std::string OutcomeCache::entryPath(uint64_t Hash) const {
  return Opts.Dir + "/" + hex16(Hash) + ".oc";
}

bool OutcomeCache::lookupDisk(const Key &K, RunOutcome &Out) {
  std::FILE *F = std::fopen(entryPath(K.Hash).c_str(), "rb");
  if (!F)
    return false; // absent is an ordinary miss, not a bad entry
  std::vector<uint8_t> Blob;
  uint8_t Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) != 0)
    Blob.insert(Blob.end(), Buf, Buf + N);
  std::fclose(F);

  // Validate everything before trusting anything: magic, version,
  // salt, the full descriptor bytes and the trailing checksum. Any
  // failure means the entry is from another format or torn — reject
  // it and let the job re-execute (which overwrites the entry).
  try {
    if (Blob.size() < sizeof(uint64_t))
      throw std::runtime_error("truncated");
    size_t BodyLen = Blob.size() - sizeof(uint64_t);
    WireReader R(Blob.data(), Blob.size());
    if (R.u32() != EntryMagic)
      throw std::runtime_error("bad magic");
    if (R.u32() != FormatVersion)
      throw std::runtime_error("version mismatch");
    if (R.u64() != Opts.KeySalt)
      throw std::runtime_error("salt mismatch");
    std::vector<uint8_t> Desc = R.bytes();
    RunOutcome O = deserializeRunOutcome(R);
    uint64_t Sum = R.u64();
    if (!R.atEnd())
      throw std::runtime_error("trailing bytes");
    if (Sum != fnv64(Blob.data(), BodyLen))
      throw std::runtime_error("checksum mismatch");
    if (Desc != K.Bytes)
      throw std::runtime_error("descriptor mismatch");
    Out = std::move(O);
  } catch (const std::exception &) {
    BadEntries.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  insertMem(K, Out);
  DiskHits.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void OutcomeCache::storeDisk(const Key &K, const RunOutcome &O) {
  WireWriter W;
  W.u32(EntryMagic);
  W.u32(FormatVersion);
  W.u64(Opts.KeySalt);
  W.bytes(K.Bytes);
  serializeRunOutcome(W, O);
  uint64_t Sum = fnv64(W.buffer().data(), W.buffer().size());
  W.u64(Sum);

  // Crash-safe publish: write a private temp file, then rename it
  // into place. A reader either sees the old entry, the new entry, or
  // nothing — never a torn write. Failures are silently dropped; the
  // disk layer is an accelerator, not a correctness dependency.
#if defined(__unix__) || defined(__APPLE__)
  long Pid = static_cast<long>(::getpid());
#else
  long Pid = 0;
#endif
  std::string Final = entryPath(K.Hash);
  std::string Tmp =
      Final + ".tmp." + std::to_string(Pid);
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F)
    return;
  size_t Written =
      std::fwrite(W.buffer().data(), 1, W.buffer().size(), F);
  bool Ok = std::fclose(F) == 0 && Written == W.buffer().size();
  if (!Ok) {
    std::remove(Tmp.c_str());
    return;
  }
  if (std::rename(Tmp.c_str(), Final.c_str()) != 0)
    std::remove(Tmp.c_str());
}

bool OutcomeCache::lookup(const Key &K, RunOutcome &Out) {
  if (lookupMem(K, Out) ||
      (Opts.Mode == CacheMode::Disk && lookupDisk(K, Out))) {
    Hits.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  Misses.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void OutcomeCache::store(const Key &K, const RunOutcome &O) {
  insertMem(K, O);
  if (Opts.Mode == CacheMode::Disk)
    storeDisk(K, O);
}

void OutcomeCache::countCoalesced(uint64_t N) {
  if (N)
    Coalesced.fetch_add(N, std::memory_order_relaxed);
}

void OutcomeCache::clear() {
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    S.Lru.clear();
    S.Index.clear();
    S.Bytes = 0;
  }
}

OutcomeCacheStats OutcomeCache::stats() const {
  OutcomeCacheStats S;
  S.Hits = Hits.load(std::memory_order_relaxed);
  S.Misses = Misses.load(std::memory_order_relaxed);
  S.Coalesced = Coalesced.load(std::memory_order_relaxed);
  S.DiskHits = DiskHits.load(std::memory_order_relaxed);
  S.BadEntries = BadEntries.load(std::memory_order_relaxed);
  return S;
}

std::shared_ptr<OutcomeCache>
clfuzz::makeOutcomeCache(const OutcomeCacheOptions &Opts) {
  if (Opts.Mode == CacheMode::Off)
    return nullptr;
  return std::make_shared<OutcomeCache>(Opts);
}

//===----------------------------------------------------------------------===//
// The coalescing backend wrapper
//===----------------------------------------------------------------------===//

namespace {

/// Serves a batch content-addressed: hit / coalesce / dispatch, then
/// fan executed outcomes back out. Results stay keyed by submission
/// index, so the wrapper upholds the ExecBackend contract verbatim.
class CachingBackend final : public ExecBackend {
public:
  CachingBackend(std::unique_ptr<ExecBackend> Inner,
                 std::shared_ptr<OutcomeCache> Cache)
      : Inner(std::move(Inner)), Cache(std::move(Cache)) {}

  // The wrapper is transparent: campaigns report the wrapped
  // backend's kind and width.
  BackendKind kind() const override { return Inner->kind(); }
  unsigned concurrency() const override { return Inner->concurrency(); }
  void forEachIndex(size_t N,
                    const std::function<void(size_t)> &Body) override {
    Inner->forEachIndex(N, Body);
  }

  std::vector<RunOutcome> run(const std::vector<ExecJob> &Jobs) override {
    std::vector<RunOutcome> Results(Jobs.size());
    if (Jobs.empty())
      return Results;

    std::vector<OutcomeCache::Key> Keys(Jobs.size());
    std::vector<ExecJob> Dispatch;          ///< one leader per unique miss
    std::vector<size_t> LeaderJob;          ///< leader's submission index
    std::vector<std::vector<size_t>> Followers; ///< coalesced indices
    /// Salted hash -> positions in Dispatch (a vector so a fingerprint
    /// collision inside one batch still dispatches both descriptors).
    std::unordered_map<uint64_t, std::vector<size_t>> Pending;
    uint64_t CoalescedHere = 0;

    for (size_t I = 0; I != Jobs.size(); ++I) {
      Keys[I] = Cache->keyOf(Jobs[I]);
      // Identical descriptor already dispatching in this batch? Fold
      // onto it: one execution, N submission indices.
      bool Folded = false;
      auto It = Pending.find(Keys[I].Hash);
      if (It != Pending.end()) {
        for (size_t Pos : It->second) {
          if (Keys[LeaderJob[Pos]].Bytes == Keys[I].Bytes) {
            Followers[Pos].push_back(I);
            Folded = true;
            ++CoalescedHere;
            break;
          }
        }
      }
      if (Folded)
        continue;
      if (Cache->lookup(Keys[I], Results[I]))
        continue;
      Pending[Keys[I].Hash].push_back(Dispatch.size());
      LeaderJob.push_back(I);
      Followers.emplace_back();
      Dispatch.push_back(Jobs[I]);
    }
    Cache->countCoalesced(CoalescedHere);

    if (!Dispatch.empty()) {
      // Misses keep their submission order, so consecutive misses of
      // one test still form columns: a cold cache pays the parse once
      // per surviving column, not once per cell. Cache keys were
      // derived per cell above — column framing is transport only.
      std::vector<RunOutcome> Outs =
          Inner->runColumns(groupIntoColumns(Dispatch));
      for (size_t D = 0; D != Dispatch.size(); ++D) {
        size_t Leader = LeaderJob[D];
        Cache->store(Keys[Leader], Outs[D]);
        for (size_t F : Followers[D])
          Results[F] = Outs[D];
        Results[Leader] = std::move(Outs[D]);
      }
    }
    return Results;
  }

private:
  std::unique_ptr<ExecBackend> Inner;
  std::shared_ptr<OutcomeCache> Cache;
};

} // namespace

std::unique_ptr<ExecBackend>
clfuzz::wrapWithOutcomeCache(std::unique_ptr<ExecBackend> Inner,
                             std::shared_ptr<OutcomeCache> Cache) {
  if (!Cache)
    return Inner;
  return std::make_unique<CachingBackend>(std::move(Inner),
                                          std::move(Cache));
}
