//===- Diag.h - Diagnostic collection ---------------------------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostics for the MiniCL front end. The project compiles without
/// exceptions, so lexing/parsing/sema report problems by appending to a
/// DiagEngine; callers query hasErrors() at phase boundaries.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_SUPPORT_DIAG_H
#define CLFUZZ_SUPPORT_DIAG_H

#include <string>
#include <vector>

namespace clfuzz {

/// A 1-based source position within a MiniCL translation unit.
struct SourceLoc {
  unsigned Line = 0;
  unsigned Col = 0;

  bool isValid() const { return Line != 0; }
};

/// Severity of a reported diagnostic.
enum class DiagLevel { Note, Warning, Error };

/// A single diagnostic message attached to a source location.
struct Diagnostic {
  DiagLevel Level;
  SourceLoc Loc;
  std::string Message;
};

/// Accumulates diagnostics for one front-end run.
class DiagEngine {
public:
  void report(DiagLevel Level, SourceLoc Loc, std::string Message);

  void error(SourceLoc Loc, std::string Message) {
    report(DiagLevel::Error, Loc, std::move(Message));
  }

  void warning(SourceLoc Loc, std::string Message) {
    report(DiagLevel::Warning, Loc, std::move(Message));
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics as "line:col: level: message" lines.
  std::string str() const;

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace clfuzz

#endif // CLFUZZ_SUPPORT_DIAG_H
