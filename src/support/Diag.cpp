//===- Diag.cpp - Diagnostic collection -----------------------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "support/Diag.h"

#include <sstream>

using namespace clfuzz;

void DiagEngine::report(DiagLevel Level, SourceLoc Loc, std::string Message) {
  if (Level == DiagLevel::Error)
    ++NumErrors;
  Diags.push_back(Diagnostic{Level, Loc, std::move(Message)});
}

std::string DiagEngine::str() const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags) {
    if (D.Loc.isValid())
      OS << D.Loc.Line << ':' << D.Loc.Col << ": ";
    switch (D.Level) {
    case DiagLevel::Note:
      OS << "note: ";
      break;
    case DiagLevel::Warning:
      OS << "warning: ";
      break;
    case DiagLevel::Error:
      OS << "error: ";
      break;
    }
    OS << D.Message << '\n';
  }
  return OS.str();
}
