//===- StringUtil.cpp - Small string helpers ------------------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "support/StringUtil.h"

#include <cstdio>
#include <sstream>

using namespace clfuzz;

std::string clfuzz::join(const std::vector<std::string> &Parts,
                         const std::string &Sep) {
  std::string Out;
  for (size_t I = 0, E = Parts.size(); I != E; ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

std::string clfuzz::toHex(uint64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "0x%llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

std::string clfuzz::padLeft(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S;
  return std::string(Width - S.size(), ' ') + S;
}

std::string clfuzz::padRight(const std::string &S, size_t Width) {
  if (S.size() >= Width)
    return S;
  return S + std::string(Width - S.size(), ' ');
}

std::string clfuzz::formatDouble(double V, int Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, V);
  return Buf;
}

bool clfuzz::startsWith(const std::string &S, const std::string &Prefix) {
  return S.size() >= Prefix.size() &&
         S.compare(0, Prefix.size(), Prefix) == 0;
}

unsigned clfuzz::countCodeLines(const std::string &Source) {
  unsigned Count = 0;
  std::istringstream IS(Source);
  std::string Line;
  while (std::getline(IS, Line)) {
    size_t Pos = Line.find_first_not_of(" \t\r");
    if (Pos == std::string::npos)
      continue;
    if (Line.compare(Pos, 2, "//") == 0)
      continue;
    ++Count;
  }
  return Count;
}
