//===- Hash.h - FNV-1a hashing utilities ------------------------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small 64-bit FNV-1a hash accumulator. Used to fingerprint kernel
/// outputs (the stand-in for the paper's printed comma-separated result
/// lists) and to derive structural keys for bug-model triggering.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_SUPPORT_HASH_H
#define CLFUZZ_SUPPORT_HASH_H

#include <cstdint>
#include <cstring>
#include <string>

namespace clfuzz {

/// Incremental FNV-1a 64-bit hasher.
class Fnv64 {
public:
  static constexpr uint64_t Offset = 0xcbf29ce484222325ULL;
  static constexpr uint64_t Prime = 0x100000001b3ULL;

  Fnv64() = default;

  Fnv64 &addByte(uint8_t B) {
    H = (H ^ B) * Prime;
    return *this;
  }

  Fnv64 &addBytes(const void *Data, size_t Len) {
    const uint8_t *P = static_cast<const uint8_t *>(Data);
    for (size_t I = 0; I != Len; ++I)
      addByte(P[I]);
    return *this;
  }

  Fnv64 &addU64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      addByte(static_cast<uint8_t>(V >> (8 * I)));
    return *this;
  }

  Fnv64 &addString(const std::string &S) {
    return addBytes(S.data(), S.size());
  }

  uint64_t value() const { return H; }

private:
  uint64_t H = Offset;
};

/// One-shot convenience over a byte buffer.
inline uint64_t fnv64(const void *Data, size_t Len) {
  return Fnv64().addBytes(Data, Len).value();
}

/// One-shot convenience over a string.
inline uint64_t fnv64(const std::string &S) {
  return Fnv64().addString(S).value();
}

} // namespace clfuzz

#endif // CLFUZZ_SUPPORT_HASH_H
