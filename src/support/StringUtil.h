//===- StringUtil.h - Small string helpers ----------------------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String formatting helpers shared by the printer, the campaign report
/// writers and the bench table emitters.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_SUPPORT_STRINGUTIL_H
#define CLFUZZ_SUPPORT_STRINGUTIL_H

#include <cstdint>
#include <string>
#include <vector>

namespace clfuzz {

/// Joins \p Parts with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// Formats \p V as 0x-prefixed lower-case hex (no leading zeros).
std::string toHex(uint64_t V);

/// Left-pads \p S with spaces to width \p Width.
std::string padLeft(const std::string &S, size_t Width);

/// Right-pads \p S with spaces to width \p Width.
std::string padRight(const std::string &S, size_t Width);

/// Formats a double with \p Decimals digits after the point.
std::string formatDouble(double V, int Decimals);

/// Returns true if \p S starts with \p Prefix.
bool startsWith(const std::string &S, const std::string &Prefix);

/// Counts non-empty, non-comment-only lines; the stand-in for the
/// paper's `cloc` line counts in Table 2.
unsigned countCodeLines(const std::string &Source);

} // namespace clfuzz

#endif // CLFUZZ_SUPPORT_STRINGUTIL_H
