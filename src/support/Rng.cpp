//===- Rng.cpp - Deterministic pseudo-random number generation -----------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"

using namespace clfuzz;

static uint64_t splitmix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

void Rng::reseed(uint64_t Seed) {
  uint64_t S = Seed;
  for (uint64_t &Word : State)
    Word = splitmix64(S);
}

uint64_t Rng::next() {
  // xoshiro256** step.
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

uint64_t Rng::below(uint64_t Bound) {
  assert(Bound != 0 && "below() with a zero bound");
  // Rejection sampling: draw until the value falls in the largest
  // multiple of Bound representable in 64 bits.
  uint64_t Threshold = -Bound % Bound;
  for (;;) {
    uint64_t V = next();
    if (V >= Threshold)
      return V % Bound;
  }
}

int64_t Rng::range(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "range() with an inverted interval");
  uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
  return Lo + static_cast<int64_t>(Span == 0 ? next() : below(Span));
}

bool Rng::chance(double P) {
  if (P <= 0.0)
    return false;
  if (P >= 1.0)
    return true;
  // 53 bits of randomness is plenty for probability comparisons.
  double U = static_cast<double>(next() >> 11) * 0x1.0p-53;
  return U < P;
}

size_t Rng::pickWeighted(const std::vector<unsigned> &Weights) {
  uint64_t Total = 0;
  for (unsigned W : Weights)
    Total += W;
  assert(Total > 0 && "pickWeighted() with all-zero weights");
  uint64_t Ticket = below(Total);
  for (size_t I = 0, E = Weights.size(); I != E; ++I) {
    if (Ticket < Weights[I])
      return I;
    Ticket -= Weights[I];
  }
  assert(false && "pickWeighted() ran off the end");
  return Weights.size() - 1;
}

std::vector<unsigned> Rng::permutation(unsigned N) {
  std::vector<unsigned> Perm(N);
  for (unsigned I = 0; I != N; ++I)
    Perm[I] = I;
  for (unsigned I = N; I > 1; --I) {
    unsigned J = static_cast<unsigned>(below(I));
    std::swap(Perm[I - 1], Perm[J]);
  }
  return Perm;
}

Rng Rng::fork() {
  // Mix two fresh draws so the child stream does not overlap the
  // parent's future output.
  uint64_t A = next(), B = next();
  return Rng(A ^ rotl(B, 32) ^ 0xa5a5a5a5a5a5a5a5ULL);
}

Rng Rng::forkForJob(uint64_t JobIndex) const {
  // const: peek at the state without stepping it, then mix in the job
  // index through splitmix so adjacent indices yield unrelated streams.
  uint64_t Mix = State[0] ^ rotl(State[2], 17) ^
                 (JobIndex + 0x9e3779b97f4a7c15ULL);
  uint64_t S = Mix;
  return Rng(splitmix64(S) ^ rotl(JobIndex, 29));
}
