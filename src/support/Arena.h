//===- Arena.h - Bump-pointer allocation arena ------------------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump-pointer arena for AST nodes and types. One front-end run
/// allocates thousands of small nodes and frees them all at once when
/// the ASTContext dies, so the arena optimises for exactly that
/// pattern: allocation is a pointer bump into a slab, teardown walks a
/// destructor list (registered only for non-trivially-destructible
/// objects) and then frees whole slabs — no per-node control blocks,
/// no per-node free().
///
/// This is what makes cloneContext (minicl/ASTClone.h) cheap: a deep
/// copy of a program is a tight linear walk writing into consecutive
/// slab memory, and throwing the private copy away after codegen is
/// O(slabs), not O(nodes).
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_SUPPORT_ARENA_H
#define CLFUZZ_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <type_traits>
#include <utility>

namespace clfuzz {

/// Chunked bump allocator with O(1) amortised allocation and O(slabs)
/// teardown. Not thread-safe; each ASTContext owns one.
class BumpArena {
public:
  BumpArena() = default;
  BumpArena(const BumpArena &) = delete;
  BumpArena &operator=(const BumpArena &) = delete;
  ~BumpArena() { reset(); }

  /// Returns \p Size bytes aligned to \p Align. Memory is owned by the
  /// arena and valid until reset()/destruction.
  void *allocate(size_t Size, size_t Align) {
    uintptr_t P = reinterpret_cast<uintptr_t>(Cur);
    uintptr_t Aligned = (P + Align - 1) & ~(uintptr_t(Align) - 1);
    if (Aligned + Size > reinterpret_cast<uintptr_t>(End)) {
      newSlab(Size + Align);
      P = reinterpret_cast<uintptr_t>(Cur);
      Aligned = (P + Align - 1) & ~(uintptr_t(Align) - 1);
    }
    Cur = reinterpret_cast<char *>(Aligned + Size);
    Allocated += Size;
    return reinterpret_cast<void *>(Aligned);
  }

  /// Constructs a T in the arena. The destructor is registered (and
  /// run at teardown) only when T actually needs one, so plain
  /// pointer-field nodes cost nothing beyond their own bytes. T's own
  /// destructor is called through its concrete type, which is what
  /// lets AST hierarchies keep protected non-virtual base destructors.
  template <typename T, typename... Args> T *create(Args &&...A) {
    void *Mem = allocate(sizeof(T), alignof(T));
    T *Obj = new (Mem) T(std::forward<Args>(A)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      auto *Node = static_cast<DtorNode *>(
          allocate(sizeof(DtorNode), alignof(DtorNode)));
      Node->Fn = [](void *P) { static_cast<T *>(P)->~T(); };
      Node->Obj = Obj;
      Node->Next = Dtors;
      Dtors = Node;
    }
    return Obj;
  }

  /// Destroys every registered object and frees all slabs.
  void reset() {
    for (DtorNode *N = Dtors; N; N = N->Next)
      N->Fn(N->Obj);
    Dtors = nullptr;
    while (Slabs) {
      Slab *Next = Slabs->Next;
      std::free(Slabs);
      Slabs = Next;
    }
    Cur = End = nullptr;
    Allocated = 0;
  }

  /// Total payload bytes handed out (bench instrumentation).
  size_t bytesAllocated() const { return Allocated; }

private:
  struct Slab {
    Slab *Next;
  };
  struct DtorNode {
    void (*Fn)(void *);
    void *Obj;
    DtorNode *Next;
  };

  void newSlab(size_t MinBytes) {
    size_t Payload = MinBytes > SlabBytes ? MinBytes : SlabBytes;
    auto *S = static_cast<Slab *>(
        std::malloc(sizeof(Slab) + Payload));
    if (!S)
      throw std::bad_alloc();
    S->Next = Slabs;
    Slabs = S;
    Cur = reinterpret_cast<char *>(S + 1);
    End = Cur + Payload;
  }

  // 64 KiB slabs: a parsed campaign kernel fits in one or two, and the
  // first is only mapped when a node is actually made (ASTContexts are
  // stack-constructed per cell even on paths that never parse).
  static constexpr size_t SlabBytes = 64 * 1024;

  Slab *Slabs = nullptr;
  char *Cur = nullptr;
  char *End = nullptr;
  DtorNode *Dtors = nullptr;
  size_t Allocated = 0;
};

} // namespace clfuzz

#endif // CLFUZZ_SUPPORT_ARENA_H
