//===- Casting.h - LLVM-style isa/cast/dyn_cast helpers ---------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight reimplementation of the LLVM isa<>/cast<>/dyn_cast<>
/// templates, driven by a static `classof(const Base *)` member on each
/// derived class (Kind-enum based RTTI, no vtables required).
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_SUPPORT_CASTING_H
#define CLFUZZ_SUPPORT_CASTING_H

#include <cassert>

namespace clfuzz {

/// Returns true if \p Val is an instance of (a subclass of) \p To.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Variadic form: true if \p Val is an instance of any listed class.
template <typename To, typename To2, typename... Rest, typename From>
bool isa(const From *Val) {
  return isa<To>(Val) || isa<To2, Rest...>(Val);
}

/// Checked downcast; asserts that the dynamic type matches.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast; returns null when the dynamic type does not match.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like isa<>, but tolerates a null pointer (returns false).
template <typename To, typename From> bool isa_and_present(const From *Val) {
  return Val && isa<To>(Val);
}

/// Like dyn_cast<>, but tolerates and propagates a null pointer.
template <typename To, typename From> To *dyn_cast_if_present(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_if_present(const From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace clfuzz

#endif // CLFUZZ_SUPPORT_CASTING_H
