//===- Rng.h - Deterministic pseudo-random number generation ----*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, seedable PRNG (splitmix64-seeded xoshiro256**) used
/// throughout kernel generation, EMI pruning and VM scheduling. All
/// randomness in the project flows through this class so that every test
/// kernel and every schedule is reproducible from a 64-bit seed, matching
/// the paper's requirement that "random" means "pseudo-random".
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_SUPPORT_RNG_H
#define CLFUZZ_SUPPORT_RNG_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace clfuzz {

/// Deterministic random source. Cheap to copy; copies evolve
/// independently.
class Rng {
public:
  explicit Rng(uint64_t Seed) { reseed(Seed); }

  /// Re-initializes the state from a 64-bit seed via splitmix64.
  void reseed(uint64_t Seed);

  /// Returns the next 64 pseudo-random bits.
  uint64_t next();

  /// Returns a uniformly distributed value in [0, Bound). \p Bound must
  /// be nonzero. Uses rejection sampling to avoid modulo bias.
  uint64_t below(uint64_t Bound);

  /// Returns a uniformly distributed value in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi);

  /// Flips a coin that comes up true with probability \p P in [0,1].
  bool chance(double P);

  /// Picks a uniformly random element of \p Choices.
  template <typename T> const T &pick(const std::vector<T> &Choices) {
    assert(!Choices.empty() && "pick() from an empty vector");
    return Choices[below(Choices.size())];
  }

  /// Picks an index in [0, Weights.size()) with probability proportional
  /// to the (non-negative) weights. At least one weight must be positive.
  size_t pickWeighted(const std::vector<unsigned> &Weights);

  /// Returns a uniformly random permutation of {0, ..., N-1}
  /// (Fisher-Yates).
  std::vector<unsigned> permutation(unsigned N);

  /// Derives an independent child generator. Streams produced by the
  /// child are decorrelated from the parent's subsequent output.
  Rng fork();

  /// Derives an independent child generator for job \p JobIndex without
  /// advancing this generator's state. Use this at every site that
  /// hands random state to an ExecutionEngine job: unlike a plain copy
  /// (which would give every job the same stream) or sharing (which
  /// would race), the child stream depends only on the parent state and
  /// the index, so results are identical regardless of how many worker
  /// threads run the jobs or in which order they finish.
  Rng forkForJob(uint64_t JobIndex) const;

private:
  uint64_t State[4];
};

} // namespace clfuzz

#endif // CLFUZZ_SUPPORT_RNG_H
