//===- Backoff.h - Jittered exponential retry backoff ----------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The retry-delay schedule shared by every reconnect path in the
/// fleet layer: the coordinator re-dialling a dead static worker
/// (exec/RemoteBackend.h), a rendezvous worker re-dialling its
/// coordinator (exec/WorkerLoop.h), and the desperate no-worker-left
/// loop. One policy object, three properties:
///
///  * exponential growth — the base delay doubles (Multiplier) per
///    consecutive failure, so a dead endpoint costs one connect
///    attempt per widening window instead of one per batch;
///  * a hard cap (MaxMs) — a worker that is down for an hour is
///    probed every few seconds, not every few hours;
///  * deterministic jitter — each delay is spread over
///    [base*(1-Jitter), base*(1+Jitter)] by a seeded Rng, so a fleet
///    of workers bounced by the same outage does not re-dial the
///    coordinator in lockstep. Seeded means reproducible: the same
///    seed yields the same schedule, which is what makes the
///    schedule unit-testable (tests/SupportTest.cpp).
///
/// Header-only: the whole schedule is a dozen integer operations.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_SUPPORT_BACKOFF_H
#define CLFUZZ_SUPPORT_BACKOFF_H

#include "support/Rng.h"

#include <cstdint>

namespace clfuzz {

/// Tuning for a Backoff schedule. The defaults suit LAN reconnects
/// (first retry fast, settle at a few seconds).
struct BackoffPolicy {
  /// Base delay of the first retry, in milliseconds (clamped to >= 1).
  unsigned InitialMs = 100;
  /// Hard cap on the base delay (jitter may exceed it by at most
  /// MaxMs * Jitter).
  unsigned MaxMs = 5000;
  /// Base-delay growth factor per consecutive failure (clamped >= 1).
  unsigned Multiplier = 2;
  /// Jitter fraction in [0, 1): each delay is uniform in
  /// [base*(1-Jitter), base*(1+Jitter)]. 0 = deterministic base.
  double Jitter = 0.2;
};

/// A retry schedule instance: one per endpoint being re-dialled.
/// nextDelayMs() yields the delay before the next attempt and
/// advances; reset() on success rewinds to the initial delay.
class Backoff {
public:
  Backoff() : Backoff(BackoffPolicy(), 0) {}
  Backoff(const BackoffPolicy &P, uint64_t Seed) : Policy(P), R(Seed) {
    if (Policy.InitialMs == 0)
      Policy.InitialMs = 1;
    if (Policy.Multiplier == 0)
      Policy.Multiplier = 1;
    if (Policy.MaxMs < Policy.InitialMs)
      Policy.MaxMs = Policy.InitialMs;
    if (Policy.Jitter < 0.0)
      Policy.Jitter = 0.0;
    if (Policy.Jitter >= 1.0)
      Policy.Jitter = 0.99;
  }

  /// Un-jittered base delay of attempt \p Attempt (0-based):
  /// min(InitialMs * Multiplier^Attempt, MaxMs), computed with
  /// saturation so large attempt counts cannot overflow.
  unsigned baseDelayMs(unsigned Attempt) const {
    uint64_t Base = Policy.InitialMs;
    for (unsigned I = 0; I != Attempt && Base < Policy.MaxMs; ++I)
      Base *= Policy.Multiplier;
    if (Base > Policy.MaxMs)
      Base = Policy.MaxMs;
    return static_cast<unsigned>(Base);
  }

  /// Consecutive failures recorded so far (the attempt index the next
  /// nextDelayMs() call will use).
  unsigned attempts() const { return Attempt; }

  /// Delay in milliseconds before the next retry: the current
  /// attempt's base, spread by the seeded jitter, never below 1 ms.
  /// Advances the attempt counter.
  unsigned nextDelayMs() {
    uint64_t Base = baseDelayMs(Attempt);
    if (Attempt != ~0u)
      ++Attempt;
    if (Policy.Jitter <= 0.0)
      return static_cast<unsigned>(Base);
    // Uniform in [-1, 1] from the top 53 bits (the usual double trick).
    double Unit = static_cast<double>(R.next() >> 11) *
                  (1.0 / 9007199254740992.0);
    double Spread = static_cast<double>(Base) * Policy.Jitter *
                    (2.0 * Unit - 1.0);
    double Delay = static_cast<double>(Base) + Spread;
    if (Delay < 1.0)
      Delay = 1.0;
    return static_cast<unsigned>(Delay);
  }

  /// Rewinds the schedule after a successful attempt: the next
  /// failure starts over at InitialMs.
  void reset() { Attempt = 0; }

  const BackoffPolicy &policy() const { return Policy; }

private:
  BackoffPolicy Policy;
  Rng R;
  unsigned Attempt = 0;
};

} // namespace clfuzz

#endif // CLFUZZ_SUPPORT_BACKOFF_H
