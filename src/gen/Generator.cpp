//===- Generator.cpp - CLsmith-style random kernel generation ---------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "gen/Generator.h"
#include "minicl/Printer.h"
#include "minicl/TypeRules.h"
#include "support/Rng.h"

#include <algorithm>
#include <cstring>

using namespace clfuzz;

const char *clfuzz::genModeName(GenMode M) {
  switch (M) {
  case GenMode::Basic:
    return "BASIC";
  case GenMode::Vector:
    return "VECTOR";
  case GenMode::Barrier:
    return "BARRIER";
  case GenMode::AtomicSection:
    return "ATOMIC SECTION";
  case GenMode::AtomicReduction:
    return "ATOMIC REDUCTION";
  case GenMode::All:
    return "ALL";
  }
  return "?";
}

namespace {

/// FNV prime used by the in-kernel result hash.
constexpr uint64_t HashPrime = 1099511628211ULL;

/// Stateful generator for one kernel.
class KernelGen {
public:
  KernelGen(const GenOptions &Opts)
      : Opts(Opts), R(Opts.Seed * 0x9e3779b97f4a7c15ULL + 0x243f6a8885a308d3ULL) {
    UseVectors = Opts.Mode == GenMode::Vector || Opts.Mode == GenMode::All;
    UseBarrier = Opts.Mode == GenMode::Barrier || Opts.Mode == GenMode::All;
    UseAtomicSec =
        Opts.Mode == GenMode::AtomicSection || Opts.Mode == GenMode::All;
    UseAtomicRed = Opts.Mode == GenMode::AtomicReduction ||
                   Opts.Mode == GenMode::All;
  }

  GeneratedKernel run();

private:
  // --- setup phases
  void chooseGeometry();
  void buildGlobalsStruct();
  void planFunctions();
  void emitFunctionBodies();
  void emitKernel();

  // --- scopes
  struct Scope {
    std::vector<VarDecl *> Scalars;     ///< assignable scalar locals
    std::vector<VarDecl *> Vectors;     ///< assignable vector locals
    std::vector<VarDecl *> ReadOnly;    ///< loop variables, params
  };

  VarDecl *freshScalar(const ScalarType *T, Expr *Init);
  VarDecl *freshVector(const VectorType *T, Expr *Init);

  // --- expressions
  const ScalarType *randomScalarType();
  const VectorType *randomVectorType();
  Expr *castTo(Expr *E, const ScalarType *T);
  Expr *literalOf(const ScalarType *T);
  Expr *genScalarExpr(const ScalarType *T, unsigned Depth);
  Expr *genVectorExpr(const VectorType *T, unsigned Depth);
  Expr *genCondExpr(unsigned Depth);
  Expr *globalsFieldRead(const ScalarType *T, unsigned Depth);
  Expr *globalsScalarLValue();
  Expr *sharedArrayRead();

  // --- statements
  std::vector<Stmt *> genBlock(unsigned Depth, unsigned NumStmts);
  Stmt *genStmt(unsigned Depth);
  Stmt *genAssignStmt(unsigned Depth);
  Stmt *genForStmt(unsigned Depth);
  Stmt *genIfStmt(unsigned Depth);
  Stmt *genCallStmt(unsigned Depth);
  Stmt *genBarrierSyncPoint();
  Stmt *genSharedArrayWrite(unsigned Depth);
  Stmt *genAtomicSection(unsigned Depth);
  std::vector<Stmt *> genAtomicReduction(unsigned Depth);
  Stmt *genEmiBlock(unsigned Depth);

  Expr *initializerFor(const Type *T);
  Expr *linearLocalId();
  Expr *linearGroupId();
  Expr *linearGlobalIdIndex();

  // --- state
  GenOptions Opts;
  Rng R;
  std::unique_ptr<ASTContext> CtxHolder = std::make_unique<ASTContext>();
  ASTContext &Ctx = *CtxHolder;
  TypeContext &Types = Ctx.types();

  bool UseVectors, UseBarrier, UseAtomicSec, UseAtomicRed;

  NDRange Range;
  uint32_t WLinear = 1;
  uint32_t NumGroups = 1;

  RecordType *Globals = nullptr;
  std::vector<FunctionDecl *> Helpers;
  unsigned NextHelperCallable = 0; ///< lowest helper callable here

  // Harness variables of the current function/kernel.
  VarDecl *PVar = nullptr;        ///< S0 *p (param or kernel local)
  VarDecl *AOffsetVar = nullptr;  ///< BARRIER mode private offset
  VarDecl *ABaseVar = nullptr;    ///< base for global A
  VarDecl *AVar = nullptr;        ///< the shared array (param or local)
  bool AInLocal = true;
  VarDecl *SecCVar = nullptr;     ///< atomic-section counters
  VarDecl *SecSVar = nullptr;     ///< atomic-section special values
  unsigned NumSectionPairs = 0;
  unsigned NextSectionPair = 0;   ///< next unused counter pair
  VarDecl *RedVar = nullptr;      ///< atomic-reduction cell
  VarDecl *TotalVar = nullptr;    ///< thread-0 reduction total
  VarDecl *LLinVar = nullptr;     ///< cached local linear id

  std::vector<Scope> Scopes;
  std::vector<VarDecl *> LoopVars;
  bool InKernelBody = false;
  bool InEmiBody = false;
  bool InAtomicSection = false;
  unsigned LoopDepth = 0;
  unsigned VarCounter = 0;
  unsigned StmtBudget = 0;
  unsigned EmiRemaining = 0;
  std::vector<int> EmiIds;
  int NextEmiId = 0;

  // Kernel parameters (filled by emitKernel).
  VarDecl *OutParam = nullptr;
  VarDecl *PermParam = nullptr;
  VarDecl *AGlobalParam = nullptr;
  VarDecl *DeadParam = nullptr;

  std::vector<std::vector<unsigned>> Permutations;
  std::vector<BufferSpec> GenBuffers;
};

} // namespace

//===----------------------------------------------------------------------===//
// Geometry (§4.1, "Randomizing grid and group dimensions")
//===----------------------------------------------------------------------===//

static std::vector<uint32_t> divisorsOf(uint32_t N, uint32_t Max) {
  std::vector<uint32_t> Divs;
  for (uint32_t D = 1; D <= N && D <= Max; ++D)
    if (N % D == 0)
      Divs.push_back(D);
  return Divs;
}

void KernelGen::chooseGeometry() {
  bool NeedsGroups = UseBarrier || UseAtomicSec || UseAtomicRed;
  for (int Attempt = 0; Attempt != 64; ++Attempt) {
    uint32_t Total = static_cast<uint32_t>(
        R.range(Opts.MinThreads, Opts.MaxThreads - 1));
    // Factor Total into three dimensions.
    auto Dx = divisorsOf(Total, Total);
    uint32_t Nx = Dx[R.below(Dx.size())];
    uint32_t Rem = Total / Nx;
    auto Dy = divisorsOf(Rem, Rem);
    uint32_t Ny = Dy[R.below(Dy.size())];
    uint32_t Nz = Rem / Ny;

    // Pick per-dimension group sizes with Wx*Wy*Wz <= MaxGroupSize.
    uint32_t Wx = 1, Wy = 1, Wz = 1;
    for (int Tries = 0; Tries != 16; ++Tries) {
      auto Wxs = divisorsOf(Nx, Opts.MaxGroupSize);
      Wx = Wxs[R.below(Wxs.size())];
      auto Wys = divisorsOf(Ny, Opts.MaxGroupSize / Wx);
      Wy = Wys[R.below(Wys.size())];
      auto Wzs = divisorsOf(Nz, Opts.MaxGroupSize / (Wx * Wy));
      Wz = Wzs[R.below(Wzs.size())];
      if (static_cast<uint64_t>(Wx) * Wy * Wz <= Opts.MaxGroupSize)
        break;
      Wx = Wy = Wz = 1;
    }
    uint32_t WL = Wx * Wy * Wz;
    if (NeedsGroups && WL < 2)
      continue; // communication modes want real groups
    Range.Global[0] = Nx;
    Range.Global[1] = Ny;
    Range.Global[2] = Nz;
    Range.Local[0] = Wx;
    Range.Local[1] = Wy;
    Range.Local[2] = Wz;
    WLinear = WL;
    NumGroups = static_cast<uint32_t>(Range.numGroupsLinear());
    return;
  }
  // Fallback: a simple 1D grid.
  Range = NDRange();
  Range.Global[0] = std::max<uint32_t>(Opts.MinThreads, 64);
  Range.Local[0] = 8;
  while (Range.Global[0] % Range.Local[0] != 0)
    --Range.Local[0];
  WLinear = Range.Local[0];
  NumGroups = Range.Global[0] / Range.Local[0];
}

//===----------------------------------------------------------------------===//
// Globals struct (§4.1)
//===----------------------------------------------------------------------===//

const ScalarType *KernelGen::randomScalarType() {
  static const ScalarKind Kinds[] = {
      ScalarKind::Char,  ScalarKind::UChar, ScalarKind::Short,
      ScalarKind::UShort, ScalarKind::Int,  ScalarKind::UInt,
      ScalarKind::Long,  ScalarKind::ULong};
  return Types.scalar(Kinds[R.below(8)]);
}

const VectorType *KernelGen::randomVectorType() {
  static const unsigned Lanes[] = {2, 4, 8, 16};
  return Types.vector(randomScalarType(), Lanes[R.below(4)]);
}

void KernelGen::buildGlobalsStruct() {
  Globals = Types.createRecord("S0", /*IsUnion=*/false);
  unsigned NumFields = static_cast<unsigned>(R.range(4, 9));
  unsigned NestedCount = 0;
  for (unsigned I = 0; I != NumFields; ++I) {
    std::string Name = "g_" + std::to_string(I);
    unsigned Kind = static_cast<unsigned>(R.pickWeighted(
        {6, 2, static_cast<unsigned>(UseVectors ? 3 : 0), 1, 1}));
    RecordField F;
    F.Name = Name;
    F.IsVolatile = R.chance(0.05);
    switch (Kind) {
    case 0:
      F.Ty = randomScalarType();
      break;
    case 1:
      F.Ty = Types.array(randomScalarType(),
                         static_cast<uint64_t>(R.range(2, 8)));
      break;
    case 2:
      F.Ty = randomVectorType();
      F.IsVolatile = false;
      break;
    case 3: {
      RecordType *Nested = Types.createRecord(
          "S0_n" + std::to_string(NestedCount++), /*IsUnion=*/false);
      unsigned N = static_cast<unsigned>(R.range(2, 4));
      for (unsigned K = 0; K != N; ++K)
        Nested->addField(RecordField{"f" + std::to_string(K),
                                     randomScalarType(), false});
      Nested->setComplete();
      F.Ty = Nested;
      F.IsVolatile = false;
      break;
    }
    case 4: {
      // A union whose shape can trigger the Figure 2(a) model: first a
      // scalar member, then a struct whose first field may be
      // narrower.
      RecordType *U = Types.createRecord(
          "U0_n" + std::to_string(NestedCount++), /*IsUnion=*/true);
      U->addField(RecordField{"m0", randomScalarType(), false});
      RecordType *Inner = Types.createRecord(
          "S0_u" + std::to_string(NestedCount++), /*IsUnion=*/false);
      Inner->addField(RecordField{"f0", randomScalarType(), false});
      Inner->addField(RecordField{"f1", randomScalarType(), false});
      Inner->setComplete();
      U->addField(RecordField{"m1", Inner, false});
      U->setComplete();
      F.Ty = U;
      F.IsVolatile = false;
      break;
    }
    default:
      F.Ty = Types.intTy();
      break;
    }
    Globals->addField(std::move(F));
  }
  Globals->setComplete();
}

/// Masks a literal payload to the width of \p T (keeps printing sane).
static uint64_t maskLiteral(uint64_t V, const ScalarType *T) {
  unsigned W = T->bitWidth();
  return W >= 64 ? V : (V & ((1ULL << W) - 1));
}

Expr *KernelGen::literalOf(const ScalarType *T) {
  uint64_t V;
  switch (R.below(6)) {
  case 0:
    V = R.below(4); // tiny values dominate
    break;
  case 1:
    V = R.below(256);
    break;
  case 2:
    V = R.next(); // arbitrary bits
    break;
  case 3:
    V = 1;
    break;
  case 4:
    V = static_cast<uint64_t>(-1); // all-ones
    break;
  default:
    V = R.below(65536);
    break;
  }
  return Ctx.intLit(maskLiteral(V, T), T);
}

Expr *KernelGen::initializerFor(const Type *T) {
  if (const auto *ST = dyn_cast<ScalarType>(T))
    return literalOf(ST);
  if (const auto *VT = dyn_cast<VectorType>(T)) {
    std::vector<Expr *> Elems;
    for (unsigned I = 0; I != VT->getNumLanes(); ++I)
      Elems.push_back(literalOf(VT->getElementType()));
    return Ctx.makeExpr<VectorConstructExpr>(std::move(Elems), VT);
  }
  if (const auto *AT = dyn_cast<ArrayType>(T)) {
    std::vector<Expr *> Elems;
    for (uint64_t I = 0; I != AT->getNumElements(); ++I)
      Elems.push_back(initializerFor(AT->getElementType()));
    return Ctx.makeExpr<InitListExpr>(std::move(Elems), AT);
  }
  if (const auto *RT = dyn_cast<RecordType>(T)) {
    std::vector<Expr *> Elems;
    unsigned Limit = RT->isUnion() ? 1 : RT->getNumFields();
    for (unsigned I = 0; I != Limit; ++I)
      Elems.push_back(initializerFor(RT->getField(I).Ty));
    return Ctx.makeExpr<InitListExpr>(std::move(Elems), RT);
  }
  assert(false && "initializer for unsupported type");
  return Ctx.intLit(0);
}

//===----------------------------------------------------------------------===//
// Expression generation
//===----------------------------------------------------------------------===//

Expr *KernelGen::castTo(Expr *E, const ScalarType *T) {
  if (E->getType() == T)
    return E;
  return Ctx.makeExpr<CastExpr>(E, T);
}

/// Collects a random scalar variable of any type from the scopes.
static VarDecl *pickFrom(Rng &R, const std::vector<VarDecl *> &Pool) {
  if (Pool.empty())
    return nullptr;
  return Pool[R.below(Pool.size())];
}

Expr *KernelGen::globalsScalarLValue() {
  // Random scalar lvalue path into the globals struct via p->.
  for (int Attempt = 0; Attempt != 8; ++Attempt) {
    unsigned FieldIdx =
        static_cast<unsigned>(R.below(Globals->getNumFields()));
    const RecordField &F = Globals->getField(FieldIdx);
    Expr *Base = Ctx.makeExpr<MemberExpr>(Ctx.ref(PVar), FieldIdx,
                                          /*IsArrow=*/true, F.Ty);
    if (isa<ScalarType>(F.Ty))
      return Base;
    if (const auto *AT = dyn_cast<ArrayType>(F.Ty)) {
      if (!isa<ScalarType>(AT->getElementType()))
        continue;
      Expr *Idx = Ctx.intLit(
          static_cast<int>(R.below(AT->getNumElements())));
      return Ctx.makeExpr<IndexExpr>(Base, Idx, AT->getElementType());
    }
    if (const auto *RT = dyn_cast<RecordType>(F.Ty)) {
      unsigned Limit = RT->isUnion() ? 1 : RT->getNumFields();
      unsigned Inner = static_cast<unsigned>(R.below(Limit));
      if (!isa<ScalarType>(RT->getField(Inner).Ty))
        continue;
      return Ctx.makeExpr<MemberExpr>(Base, Inner, /*IsArrow=*/false,
                                      RT->getField(Inner).Ty);
    }
    // Vector field: fall through to another attempt for scalar paths.
  }
  return nullptr;
}

Expr *KernelGen::globalsFieldRead(const ScalarType *T, unsigned Depth) {
  Expr *LV = globalsScalarLValue();
  if (!LV)
    return literalOf(T);
  return castTo(LV, T);
}

Expr *KernelGen::sharedArrayRead() {
  // A[A_offset] (local) or A[A_base + A_offset] (global); uniform by
  // the ownership argument of §4.2.
  Expr *Index = Ctx.ref(AOffsetVar);
  if (!AInLocal) {
    TypedResult Sum = buildBinary(Ctx, BinOp::Add, Ctx.ref(ABaseVar),
                                  Ctx.ref(AOffsetVar));
    Index = Sum.E;
  }
  TypedResult Ix = buildIndex(Ctx, Ctx.ref(AVar), Index);
  return Ix.E;
}

Expr *KernelGen::genScalarExpr(const ScalarType *T, unsigned Depth) {
  // Leaf productions at the depth limit.
  if (Depth == 0 || R.chance(0.18)) {
    switch (R.below(4)) {
    case 0: {
      VarDecl *V = pickFrom(R, Scopes.back().Scalars);
      if (V)
        return castTo(Ctx.ref(V), T);
      return literalOf(T);
    }
    case 1: {
      VarDecl *V = pickFrom(R, Scopes.back().ReadOnly);
      if (V && isa<ScalarType>(V->getType()))
        return castTo(Ctx.ref(V), T);
      return literalOf(T);
    }
    case 2:
      if (PVar)
        return globalsFieldRead(T, Depth);
      return literalOf(T);
    default:
      return literalOf(T);
    }
  }

  unsigned Choice = static_cast<unsigned>(R.pickWeighted({
      5, // safe arithmetic
      3, // bitwise
      2, // shifts
      2, // comparison (cast back)
      1, // logical
      2, // ternary
      2, // unary
      3, // clamp/min/max/rotate family
      static_cast<unsigned>(NextHelperCallable < Helpers.size() &&
                                    LoopDepth <= (InKernelBody ? 1u : 0u) &&
                                    !InAtomicSection && !InEmiBody
                                ? 2
                                : 0), // helper call
      static_cast<unsigned>(UseVectors ? 2 : 0), // vector lane
      static_cast<unsigned>(UseBarrier && InKernelBody &&
                                    !InAtomicSection
                                ? 2
                                : 0), // shared array read
      1, // comma
  }));

  switch (Choice) {
  case 0: {
    Expr *A = genScalarExpr(T, Depth - 1);
    Expr *B = genScalarExpr(T, Depth - 1);
    if (T->isSigned()) {
      static const Builtin Safe[] = {Builtin::SafeAdd, Builtin::SafeSub,
                                     Builtin::SafeMul, Builtin::SafeDiv,
                                     Builtin::SafeMod};
      TypedResult Res =
          buildBuiltinCall(Ctx, Safe[R.below(5)], {A, B});
      assert(Res.E && "safe builtin generation failed");
      return castTo(Res.E, T);
    }
    // Unsigned arithmetic wraps; division still guarded.
    if (R.chance(0.3)) {
      TypedResult Res = buildBuiltinCall(
          Ctx, R.chance(0.5) ? Builtin::SafeDiv : Builtin::SafeMod,
          {A, B});
      return castTo(Res.E, T);
    }
    static const BinOp Raw[] = {BinOp::Add, BinOp::Sub, BinOp::Mul};
    TypedResult Res = buildBinary(Ctx, Raw[R.below(3)], A, B);
    assert(Res.E && "raw arithmetic generation failed");
    return castTo(Res.E, cast<ScalarType>(T));
  }
  case 1: {
    static const BinOp Ops[] = {BinOp::BitAnd, BinOp::BitOr,
                                BinOp::BitXor};
    Expr *A = genScalarExpr(T, Depth - 1);
    Expr *B = genScalarExpr(T, Depth - 1);
    TypedResult Res = buildBinary(Ctx, Ops[R.below(3)], A, B);
    return castTo(Res.E, T);
  }
  case 2: {
    Expr *A = genScalarExpr(T, Depth - 1);
    Expr *B = genScalarExpr(Types.intTy(), Depth - 1);
    TypedResult Res = buildBuiltinCall(
        Ctx, R.chance(0.5) ? Builtin::SafeShl : Builtin::SafeShr,
        {A, castTo(B, T)});
    return castTo(Res.E, T);
  }
  case 3: {
    const ScalarType *C = randomScalarType();
    static const BinOp Ops[] = {BinOp::Eq, BinOp::Ne, BinOp::Lt,
                                BinOp::Gt, BinOp::Le, BinOp::Ge};
    Expr *A = genScalarExpr(C, Depth - 1);
    Expr *B = genScalarExpr(C, Depth - 1);
    TypedResult Res = buildBinary(Ctx, Ops[R.below(6)], A, B);
    return castTo(Res.E, T);
  }
  case 4: {
    Expr *A = genCondExpr(Depth - 1);
    Expr *B = genCondExpr(Depth - 1);
    TypedResult Res = buildBinary(
        Ctx, R.chance(0.5) ? BinOp::LAnd : BinOp::LOr, A, B);
    return castTo(Res.E, T);
  }
  case 5: {
    Expr *Cond = genCondExpr(Depth - 1);
    Expr *A = genScalarExpr(T, Depth - 1);
    Expr *B = genScalarExpr(T, Depth - 1);
    TypedResult Res = buildConditional(Ctx, Cond, A, B);
    return castTo(Res.E, T);
  }
  case 6: {
    Expr *A = genScalarExpr(T, Depth - 1);
    if (T->isSigned() && R.chance(0.5)) {
      TypedResult Res = buildBuiltinCall(Ctx, Builtin::SafeNeg, {A});
      return castTo(Res.E, T);
    }
    TypedResult Res = buildUnary(
        Ctx, R.chance(0.5) ? UnOp::BitNot : UnOp::Not, A);
    return castTo(Res.E, T);
  }
  case 7: {
    Expr *A = genScalarExpr(T, Depth - 1);
    Expr *B = genScalarExpr(T, Depth - 1);
    switch (R.below(4)) {
    case 0: {
      Expr *X = genScalarExpr(T, Depth - 1);
      TypedResult Res =
          buildBuiltinCall(Ctx, Builtin::SafeClamp, {X, A, B});
      return castTo(Res.E, T);
    }
    case 1: {
      TypedResult Res = buildBuiltinCall(Ctx, Builtin::Rotate, {A, B});
      return castTo(Res.E, T);
    }
    case 2: {
      TypedResult Res = buildBuiltinCall(Ctx, Builtin::Min, {A, B});
      return castTo(Res.E, T);
    }
    default: {
      TypedResult Res = buildBuiltinCall(Ctx, Builtin::Max, {A, B});
      return castTo(Res.E, T);
    }
    }
  }
  case 8: {
    // Call a strictly-later helper function.
    unsigned Idx = NextHelperCallable +
                   static_cast<unsigned>(
                       R.below(Helpers.size() - NextHelperCallable));
    FunctionDecl *Callee = Helpers[Idx];
    std::vector<Expr *> Args;
    Args.push_back(Ctx.ref(PVar));
    for (size_t PI = 1; PI != Callee->params().size(); ++PI) {
      const auto *PT =
          cast<ScalarType>(Callee->params()[PI]->getType());
      Args.push_back(genScalarExpr(PT, Depth > 0 ? Depth - 1 : 0));
    }
    Expr *Call = Ctx.makeExpr<CallExpr>(Callee, std::move(Args),
                                        Callee->getReturnType());
    return castTo(Call, T);
  }
  case 9: {
    const VectorType *VT = randomVectorType();
    Expr *V = genVectorExpr(VT, Depth - 1);
    unsigned Lane = static_cast<unsigned>(R.below(VT->getNumLanes()));
    Expr *Sw = Ctx.makeExpr<SwizzleExpr>(
        V, std::vector<unsigned>{Lane}, VT->getElementType());
    return castTo(Sw, T);
  }
  case 10:
    return castTo(sharedArrayRead(), T);
  case 11: {
    Expr *Pure = genScalarExpr(randomScalarType(), 0);
    Expr *B = genScalarExpr(T, Depth - 1);
    TypedResult Res = buildBinary(Ctx, BinOp::Comma, Pure, B);
    return castTo(Res.E, T);
  }
  default:
    return literalOf(T);
  }
}

Expr *KernelGen::genVectorExpr(const VectorType *T, unsigned Depth) {
  // Vector variable of the exact type?
  if (Depth == 0 || R.chance(0.25)) {
    for (VarDecl *V : Scopes.back().Vectors)
      if (V->getType() == T && R.chance(0.6))
        return Ctx.ref(V);
    std::vector<Expr *> Elems;
    for (unsigned I = 0; I != T->getNumLanes(); ++I)
      Elems.push_back(
          Depth == 0 ? literalOf(T->getElementType())
                     : genScalarExpr(T->getElementType(), 0));
    return Ctx.makeExpr<VectorConstructExpr>(std::move(Elems), T);
  }

  switch (R.below(5)) {
  case 0: {
    static const BinOp Ops[] = {BinOp::Add, BinOp::Sub, BinOp::Mul,
                                BinOp::BitAnd, BinOp::BitOr,
                                BinOp::BitXor};
    Expr *A = genVectorExpr(T, Depth - 1);
    Expr *B = genVectorExpr(T, Depth - 1);
    TypedResult Res = buildBinary(Ctx, Ops[R.below(6)], A, B);
    assert(Res.E && "vector binary generation failed");
    return Res.E;
  }
  case 1: {
    static const Builtin Safe[] = {Builtin::SafeAdd, Builtin::SafeSub,
                                   Builtin::SafeMul, Builtin::SafeDiv,
                                   Builtin::SafeMod, Builtin::SafeRotate};
    Expr *A = genVectorExpr(T, Depth - 1);
    Expr *B = genVectorExpr(T, Depth - 1);
    TypedResult Res = buildBuiltinCall(Ctx, Safe[R.below(6)], {A, B});
    return Res.E;
  }
  case 2: {
    // convert_T from another element type, same lane count.
    const VectorType *Src =
        Types.vector(randomScalarType(), T->getNumLanes());
    Expr *A = genVectorExpr(Src, Depth - 1);
    if (Src == T)
      return A;
    TypedResult Res =
        buildBuiltinCall(Ctx, Builtin::ConvertVector, {A}, T);
    return Res.E;
  }
  case 3: {
    // Swizzle from a wider (or equal) vector of the same element type.
    unsigned SrcLanes = T->getNumLanes() * (R.chance(0.5) ? 2 : 1);
    if (SrcLanes > 16)
      SrcLanes = 16;
    const VectorType *Src = Types.vector(T->getElementType(), SrcLanes);
    Expr *A = genVectorExpr(Src, Depth - 1);
    std::vector<unsigned> Indices;
    for (unsigned I = 0; I != T->getNumLanes(); ++I)
      Indices.push_back(static_cast<unsigned>(R.below(SrcLanes)));
    return Ctx.makeExpr<SwizzleExpr>(A, std::move(Indices), T);
  }
  default: {
    // Scalar broadcast through a binary operation.
    Expr *A = genVectorExpr(T, Depth - 1);
    Expr *S = genScalarExpr(T->getElementType(), Depth - 1);
    TypedResult Res = buildBinary(
        Ctx, R.chance(0.5) ? BinOp::Add : BinOp::BitXor, A, S);
    assert(Res.E && "vector broadcast generation failed");
    return Res.E;
  }
  }
}

Expr *KernelGen::genCondExpr(unsigned Depth) {
  if (Depth == 0 || R.chance(0.2)) {
    // Any scalar works as a condition.
    return genScalarExpr(Types.intTy(), 0);
  }
  const ScalarType *C = randomScalarType();
  static const BinOp Ops[] = {BinOp::Eq, BinOp::Ne, BinOp::Lt,
                              BinOp::Gt, BinOp::Le, BinOp::Ge};
  Expr *A = genScalarExpr(C, Depth - 1);
  Expr *B = genScalarExpr(C, Depth - 1);
  TypedResult Res = buildBinary(Ctx, Ops[R.below(6)], A, B);
  return Res.E;
}

//===----------------------------------------------------------------------===//
// Statement generation
//===----------------------------------------------------------------------===//

VarDecl *KernelGen::freshScalar(const ScalarType *T, Expr *Init) {
  VarDecl *D = Ctx.makeVar("l_" + std::to_string(VarCounter++), T,
                           AddressSpace::Private);
  D->setInit(Init);
  Scopes.back().Scalars.push_back(D);
  return D;
}

VarDecl *KernelGen::freshVector(const VectorType *T, Expr *Init) {
  VarDecl *D = Ctx.makeVar("v_" + std::to_string(VarCounter++), T,
                           AddressSpace::Private);
  D->setInit(Init);
  Scopes.back().Vectors.push_back(D);
  return D;
}

Stmt *KernelGen::genAssignStmt(unsigned Depth) {
  // Choose an assignable target.
  Expr *Target = nullptr;
  if (InAtomicSection || InEmiBody || R.chance(0.55)) {
    if (VarDecl *V = pickFrom(R, Scopes.back().Scalars))
      Target = Ctx.ref(V);
  }
  if (!Target && !InAtomicSection && PVar)
    Target = globalsScalarLValue();
  if (!Target) {
    // Fall back to declaring a variable instead.
    const ScalarType *T = randomScalarType();
    return Ctx.makeStmt<DeclStmt>(freshScalar(T, genScalarExpr(T, Depth)));
  }
  const auto *TT = dyn_cast<ScalarType>(Target->getType());
  if (!TT) {
    const ScalarType *T = randomScalarType();
    return Ctx.makeStmt<DeclStmt>(freshScalar(T, genScalarExpr(T, Depth)));
  }
  Expr *RHS = genScalarExpr(TT, Depth);
  AssignOp Op = AssignOp::Assign;
  if (R.chance(0.35)) {
    static const AssignOp Compound[] = {AssignOp::Add, AssignOp::Sub,
                                        AssignOp::Xor, AssignOp::And,
                                        AssignOp::Or};
    // Compound signed add/sub would be raw arithmetic (UB on
    // overflow); restrict them to unsigned targets.
    AssignOp Cand = Compound[R.below(5)];
    bool Arith = Cand == AssignOp::Add || Cand == AssignOp::Sub;
    if (!Arith || !TT->isSigned())
      Op = Cand;
  }
  TypedResult Res = buildAssign(Ctx, Op, Target, RHS);
  assert(Res.E && "assignment generation failed");
  return Ctx.makeStmt<ExprStmt>(Res.E);
}

Stmt *KernelGen::genForStmt(unsigned Depth) {
  const ScalarType *IntTy = Types.intTy();
  VarDecl *I = Ctx.makeVar("i_" + std::to_string(VarCounter++), IntTy,
                           AddressSpace::Private);
  I->setInit(Ctx.intLit(0));
  int Bound = static_cast<int>(R.range(1, Opts.MaxLoopIterations));
  TypedResult Cond =
      buildBinary(Ctx, BinOp::Lt, Ctx.ref(I), Ctx.intLit(Bound));
  TypedResult Step = buildAssign(Ctx, AssignOp::Add, Ctx.ref(I),
                                 Ctx.intLit(1));
  // The loop variable is readable but never assigned inside the body.
  Scopes.back().ReadOnly.push_back(I);
  ++LoopDepth;
  std::vector<Stmt *> Body = genBlock(
      Depth + 1, static_cast<unsigned>(R.range(1, 3)));
  --LoopDepth;
  Scopes.back().ReadOnly.pop_back();
  return Ctx.makeStmt<ForStmt>(Ctx.makeStmt<DeclStmt>(I), Cond.E, Step.E,
                               Ctx.makeStmt<CompoundStmt>(std::move(Body)));
}

Stmt *KernelGen::genIfStmt(unsigned Depth) {
  Expr *Cond = genCondExpr(Opts.MaxExprDepth);
  std::vector<Stmt *> Then =
      genBlock(Depth + 1, static_cast<unsigned>(R.range(1, 3)));
  Stmt *ThenS = Ctx.makeStmt<CompoundStmt>(std::move(Then));
  Stmt *ElseS = nullptr;
  if (R.chance(0.4)) {
    std::vector<Stmt *> Else =
        genBlock(Depth + 1, static_cast<unsigned>(R.range(1, 2)));
    ElseS = Ctx.makeStmt<CompoundStmt>(std::move(Else));
  }
  return Ctx.makeStmt<IfStmt>(Cond, ThenS, ElseS);
}

Stmt *KernelGen::genCallStmt(unsigned Depth) {
  const ScalarType *T = randomScalarType();
  Expr *E = genScalarExpr(T, Depth);
  // Bind the value so the call is not trivially dead.
  return Ctx.makeStmt<DeclStmt>(freshScalar(T, E));
}

Stmt *KernelGen::genBarrierSyncPoint() {
  // barrier(FENCE); A_offset = permutations[rnd*W + llinear]; (§4.2)
  uint8_t Fence = AInLocal ? BarrierStmt::LocalFence
                           : BarrierStmt::GlobalFence;
  Stmt *B = Ctx.makeStmt<BarrierStmt>(Fence);
  unsigned Rnd = static_cast<unsigned>(R.below(Opts.NumPermutations));
  TypedResult Idx =
      buildBinary(Ctx, BinOp::Add,
                  Ctx.intLit(Rnd * WLinear, Types.uintTy()),
                  Ctx.ref(LLinVar));
  TypedResult Read = buildIndex(Ctx, Ctx.ref(PermParam), Idx.E);
  TypedResult Asgn = buildAssign(Ctx, AssignOp::Assign,
                                 Ctx.ref(AOffsetVar), Read.E);
  return Ctx.makeStmt<CompoundStmt>(std::vector<Stmt *>{
      B, Ctx.makeStmt<ExprStmt>(Asgn.E)});
}

Stmt *KernelGen::genSharedArrayWrite(unsigned Depth) {
  Expr *Index = Ctx.ref(AOffsetVar);
  if (!AInLocal)
    Index = buildBinary(Ctx, BinOp::Add, Ctx.ref(ABaseVar),
                        Ctx.ref(AOffsetVar))
                .E;
  TypedResult LV = buildIndex(Ctx, Ctx.ref(AVar), Index);
  Expr *RHS = genScalarExpr(Types.uintTy(), Depth);
  TypedResult Asgn = buildAssign(
      Ctx, R.chance(0.3) ? AssignOp::Xor : AssignOp::Assign, LV.E, RHS);
  return Ctx.makeStmt<ExprStmt>(Asgn.E);
}

Stmt *KernelGen::genAtomicSection(unsigned Depth) {
  // if (atomic_inc(&c[k]) == rnd) { locals...; atomic_add(&s[k], hash); }
  // Each syntactic section gets a *unique* counter pair: with a shared
  // counter, which section's increment hits rnd would be
  // schedule-dependent, breaking the determinism guarantee (found by
  // the ScheduleInvariant property test).
  if (NextSectionPair >= NumSectionPairs)
    return genAssignStmt(Depth);
  unsigned K = NextSectionPair++;
  unsigned Rnd = static_cast<unsigned>(R.below(WLinear));

  TypedResult CAddr = buildIndex(Ctx, Ctx.ref(SecCVar),
                                 Ctx.intLit(static_cast<int>(K)));
  TypedResult CInc = buildBuiltinCall(
      Ctx, Builtin::AtomicInc,
      {buildUnary(Ctx, UnOp::AddrOf, CAddr.E).E});
  TypedResult Cond =
      buildBinary(Ctx, BinOp::Eq, CInc.E,
                  Ctx.intLit(Rnd, Types.uintTy()));

  // Section body: declarations only touch section-local state.
  InAtomicSection = true;
  Scopes.push_back(Scope());
  std::vector<Stmt *> Body;
  std::vector<VarDecl *> SectionLocals;
  unsigned NumDecls = static_cast<unsigned>(R.range(1, 3));
  for (unsigned I = 0; I != NumDecls; ++I) {
    const ScalarType *T = randomScalarType();
    VarDecl *D = freshScalar(T, genScalarExpr(T, Depth));
    SectionLocals.push_back(D);
    Body.push_back(Ctx.makeStmt<DeclStmt>(D));
  }
  if (R.chance(0.5))
    Body.push_back(genAssignStmt(Depth));
  // hash = sum of the section-local values.
  Expr *Hash = nullptr;
  for (VarDecl *D : SectionLocals) {
    Expr *Term = castTo(Ctx.ref(D), Types.uintTy());
    Hash = Hash ? buildBinary(Ctx, BinOp::Add, Hash, Term).E : Term;
  }
  TypedResult SAddr = buildIndex(Ctx, Ctx.ref(SecSVar),
                                 Ctx.intLit(static_cast<int>(K)));
  TypedResult Publish = buildBuiltinCall(
      Ctx, Builtin::AtomicAdd,
      {buildUnary(Ctx, UnOp::AddrOf, SAddr.E).E, Hash});
  Body.push_back(Ctx.makeStmt<ExprStmt>(Publish.E));
  Scopes.pop_back();
  InAtomicSection = false;

  return Ctx.makeStmt<IfStmt>(
      Cond.E, Ctx.makeStmt<CompoundStmt>(std::move(Body)), nullptr);
}

std::vector<Stmt *> KernelGen::genAtomicReduction(unsigned Depth) {
  // atomic_op(&red[0], expr); barrier; thread 0 accumulates; barrier.
  static const Builtin Ops[] = {Builtin::AtomicAdd, Builtin::AtomicMin,
                                Builtin::AtomicMax, Builtin::AtomicOr,
                                Builtin::AtomicAnd, Builtin::AtomicXor};
  Builtin Op = Ops[R.below(6)];
  TypedResult RAddr =
      buildIndex(Ctx, Ctx.ref(RedVar), Ctx.intLit(0));
  Expr *RPtr = buildUnary(Ctx, UnOp::AddrOf, RAddr.E).E;
  Expr *Operand = genScalarExpr(Types.uintTy(), Depth);
  TypedResult Red = buildBuiltinCall(Ctx, Op, {RPtr, Operand});

  std::vector<Stmt *> Out;
  Out.push_back(Ctx.makeStmt<ExprStmt>(Red.E));
  Out.push_back(Ctx.makeStmt<BarrierStmt>(BarrierStmt::LocalFence));

  // if (llinear == 0) total = (total ^ (ulong)red[0]) * PRIME;
  TypedResult IsZero = buildBinary(Ctx, BinOp::Eq, Ctx.ref(LLinVar),
                                   Ctx.intLit(0, Types.uintTy()));
  TypedResult RRead =
      buildIndex(Ctx, Ctx.ref(RedVar), Ctx.intLit(0));
  Expr *Mixed = buildBinary(
      Ctx, BinOp::Mul,
      buildBinary(Ctx, BinOp::BitXor, Ctx.ref(TotalVar),
                  castTo(RRead.E, Types.ulongTy()))
          .E,
      Ctx.intLit(HashPrime, Types.ulongTy())).E;
  TypedResult Acc =
      buildAssign(Ctx, AssignOp::Assign, Ctx.ref(TotalVar), Mixed);
  Out.push_back(Ctx.makeStmt<IfStmt>(
      IsZero.E,
      Ctx.makeStmt<CompoundStmt>(
          std::vector<Stmt *>{Ctx.makeStmt<ExprStmt>(Acc.E)}),
      nullptr));
  Out.push_back(Ctx.makeStmt<BarrierStmt>(BarrierStmt::LocalFence));
  return Out;
}

Stmt *KernelGen::genEmiBlock(unsigned Depth) {
  // if (dead[r1] < dead[r2]) { ... } with r2 < r1, so dead-by-
  // construction under the host's dead[j] = j initialisation (§5).
  unsigned R1 =
      1 + static_cast<unsigned>(R.below(Opts.DeadArrayLength - 1));
  unsigned R2 = static_cast<unsigned>(R.below(R1));
  TypedResult Lhs = buildIndex(Ctx, Ctx.ref(DeadParam),
                               Ctx.intLit(static_cast<int>(R1)));
  TypedResult Rhs = buildIndex(Ctx, Ctx.ref(DeadParam),
                               Ctx.intLit(static_cast<int>(R2)));
  TypedResult Cond = buildBinary(Ctx, BinOp::Lt, Lhs.E, Rhs.E);

  bool WasEmi = InEmiBody;
  InEmiBody = true;
  Scopes.push_back(Scope());
  std::vector<Stmt *> Body =
      genBlock(Depth + 1, static_cast<unsigned>(R.range(2, 4)));
  // Occasionally include the paper's infamous dead infinite loop (the
  // Figure 1(e) compile-hang trigger and the Table 3 config-8 timeout
  // cause).
  if (R.chance(0.2))
    Body.push_back(Ctx.makeStmt<WhileStmt>(
        Ctx.intLit(1),
        Ctx.makeStmt<CompoundStmt>(std::vector<Stmt *>{})));
  Scopes.pop_back();
  InEmiBody = WasEmi;

  auto *If = Ctx.makeStmt<IfStmt>(
      Cond.E, Ctx.makeStmt<CompoundStmt>(std::move(Body)), nullptr);
  If->setEmiId(NextEmiId);
  EmiIds.push_back(NextEmiId);
  ++NextEmiId;
  return If;
}

Stmt *KernelGen::genStmt(unsigned Depth) {
  bool CanNest = Depth < Opts.MaxBlockDepth;
  bool KernelExtras = InKernelBody && !InEmiBody && !InAtomicSection;
  unsigned Choice = static_cast<unsigned>(R.pickWeighted({
      4,                                              // declaration
      6,                                              // assignment
      static_cast<unsigned>(CanNest ? 3 : 0),         // if
      static_cast<unsigned>(CanNest && LoopDepth < 2 ? 3 : 0), // for
      2,                                              // call-binding
      static_cast<unsigned>(
          UseBarrier && KernelExtras ? 2 : 0),        // sync point
      static_cast<unsigned>(
          UseBarrier && KernelExtras ? 2 : 0),        // A write
      static_cast<unsigned>(
          UseAtomicSec && KernelExtras ? 2 : 0),      // atomic section
      static_cast<unsigned>(
          UseAtomicRed && KernelExtras && LoopDepth == 0
              ? 2
              : 0),                                   // atomic reduction
      static_cast<unsigned>(
          EmiRemaining > 0 && KernelExtras ? 2 : 0),  // EMI block
  }));

  switch (Choice) {
  case 0: {
    if (UseVectors && R.chance(0.35)) {
      const VectorType *VT = randomVectorType();
      return Ctx.makeStmt<DeclStmt>(
          freshVector(VT, genVectorExpr(VT, Opts.MaxExprDepth)));
    }
    const ScalarType *T = randomScalarType();
    return Ctx.makeStmt<DeclStmt>(
        freshScalar(T, genScalarExpr(T, Opts.MaxExprDepth)));
  }
  case 1:
    return genAssignStmt(Opts.MaxExprDepth);
  case 2:
    return genIfStmt(Depth);
  case 3:
    return genForStmt(Depth);
  case 4:
    return genCallStmt(Opts.MaxExprDepth);
  case 5:
    return genBarrierSyncPoint();
  case 6:
    return genSharedArrayWrite(Opts.MaxExprDepth);
  case 7:
    return genAtomicSection(Opts.MaxExprDepth);
  case 8:
    return Ctx.makeStmt<CompoundStmt>(
        genAtomicReduction(Opts.MaxExprDepth));
  case 9:
    --EmiRemaining;
    return genEmiBlock(Depth);
  default:
    return Ctx.makeStmt<NullStmt>();
  }
}

std::vector<Stmt *> KernelGen::genBlock(unsigned Depth,
                                        unsigned NumStmts) {
  Scopes.push_back(Scopes.back()); // inherit visible variables
  std::vector<Stmt *> Body;
  for (unsigned I = 0; I != NumStmts && StmtBudget != 0; ++I) {
    --StmtBudget;
    Body.push_back(genStmt(Depth));
  }
  Scopes.pop_back();
  return Body;
}

//===----------------------------------------------------------------------===//
// Functions
//===----------------------------------------------------------------------===//

void KernelGen::planFunctions() {
  const PointerType *PTy = Types.pointer(Globals, AddressSpace::Private);
  for (unsigned I = 0; I != Opts.NumFunctions; ++I) {
    FunctionDecl *F = Ctx.makeFunction(
        "func_" + std::to_string(I + 1), randomScalarType(),
        /*IsKernel=*/false);
    VarDecl *P = Ctx.makeVar("p", PTy, AddressSpace::Private);
    P->setParam(true);
    F->addParam(P);
    unsigned Extra = static_cast<unsigned>(R.below(3));
    for (unsigned K = 0; K != Extra; ++K) {
      VarDecl *A = Ctx.makeVar("a_" + std::to_string(K),
                               randomScalarType(), AddressSpace::Private);
      A->setParam(true);
      F->addParam(A);
    }
    Helpers.push_back(F);
    Ctx.program().addFunction(F);
  }
}

void KernelGen::emitFunctionBodies() {
  for (unsigned I = 0; I != Helpers.size(); ++I) {
    FunctionDecl *F = Helpers[I];
    NextHelperCallable = I + 1;
    PVar = F->params()[0];
    InKernelBody = false;
    LoopDepth = 0;

    Scopes.clear();
    Scopes.push_back(Scope());
    for (size_t PI = 1; PI != F->params().size(); ++PI)
      Scopes.back().ReadOnly.push_back(F->params()[PI]);

    std::vector<Stmt *> Body = genBlock(
        0, static_cast<unsigned>(R.range(2, Opts.MaxBlockStmts)));

    // In barrier-flavoured modes, some helpers carry a bare barrier -
    // the shape behind the Figure 2(c)/2(d) and crash bug models. The
    // rate is tuned so that ~40% of kernels have at least one such
    // helper, matching the 14-/15- crash rates of Table 4.
    if ((UseBarrier || UseAtomicRed) && R.chance(0.12)) {
      size_t Pos = R.below(Body.size() + 1);
      Body.insert(Body.begin() + Pos,
                  Ctx.makeStmt<BarrierStmt>(BarrierStmt::LocalFence));
    }

    const auto *RetTy = cast<ScalarType>(F->getReturnType());
    Body.push_back(Ctx.makeStmt<ReturnStmt>(
        genScalarExpr(RetTy, Opts.MaxExprDepth)));
    F->setBody(Ctx.makeStmt<CompoundStmt>(std::move(Body)));
  }
}

//===----------------------------------------------------------------------===//
// Kernel assembly
//===----------------------------------------------------------------------===//

Expr *KernelGen::linearLocalId() {
  // (lz*Wy + ly)*Wx + lx, computed from builtins, cast to uint.
  auto Id = [this](int D) {
    return buildBuiltinCall(Ctx, Builtin::GetLocalId,
                            {Ctx.intLit(D, Types.uintTy())})
        .E;
  };
  auto Size = [this](int D) {
    return buildBuiltinCall(Ctx, Builtin::GetLocalSize,
                            {Ctx.intLit(D, Types.uintTy())})
        .E;
  };
  Expr *E = buildBinary(
                Ctx, BinOp::Add,
                buildBinary(Ctx, BinOp::Mul,
                            buildBinary(Ctx, BinOp::Add,
                                        buildBinary(Ctx, BinOp::Mul,
                                                    Id(2), Size(1))
                                            .E,
                                        Id(1))
                                .E,
                            Size(0))
                    .E,
                Id(0))
                .E;
  return castTo(E, Types.uintTy());
}

Expr *KernelGen::linearGroupId() {
  auto Id = [this](int D) {
    return buildBuiltinCall(Ctx, Builtin::GetGroupId,
                            {Ctx.intLit(D, Types.uintTy())})
        .E;
  };
  auto Num = [this](int D) {
    return buildBuiltinCall(Ctx, Builtin::GetNumGroups,
                            {Ctx.intLit(D, Types.uintTy())})
        .E;
  };
  Expr *E = buildBinary(
                Ctx, BinOp::Add,
                buildBinary(Ctx, BinOp::Mul,
                            buildBinary(Ctx, BinOp::Add,
                                        buildBinary(Ctx, BinOp::Mul,
                                                    Id(2), Num(1))
                                            .E,
                                        Id(1))
                                .E,
                            Num(0))
                    .E,
                Id(0))
                .E;
  return castTo(E, Types.uintTy());
}

Expr *KernelGen::linearGlobalIdIndex() {
  auto Id = [this](int D) {
    return buildBuiltinCall(Ctx, Builtin::GetGlobalId,
                            {Ctx.intLit(D, Types.uintTy())})
        .E;
  };
  auto Size = [this](int D) {
    return buildBuiltinCall(Ctx, Builtin::GetGlobalSize,
                            {Ctx.intLit(D, Types.uintTy())})
        .E;
  };
  return buildBinary(
             Ctx, BinOp::Add,
             buildBinary(Ctx, BinOp::Mul,
                         buildBinary(Ctx, BinOp::Add,
                                     buildBinary(Ctx, BinOp::Mul, Id(2),
                                                 Size(1))
                                         .E,
                                     Id(1))
                             .E,
                         Size(0))
                 .E,
             Id(0))
      .E;
}

void KernelGen::emitKernel() {
  FunctionDecl *K =
      Ctx.makeFunction("entry", Types.voidTy(), /*IsKernel=*/true);
  Ctx.program().addFunction(K);

  std::vector<BufferSpec> Buffers;

  // Parameter: global ulong *out.
  OutParam = Ctx.makeVar(
      "out", Types.pointer(Types.ulongTy(), AddressSpace::Global),
      AddressSpace::Private);
  OutParam->setParam(true);
  K->addParam(OutParam);
  {
    BufferSpec Out;
    Out.Space = AddressSpace::Global;
    Out.InitBytes.assign(Range.globalLinear() * 8, 0);
    Out.IsOutput = true;
    Buffers.push_back(std::move(Out));
  }

  AInLocal = R.chance(0.5);
  if (UseBarrier) {
    // Parameter: global uint *permutations (d x W, host-filled).
    PermParam = Ctx.makeVar(
        "permutations",
        Types.pointer(Types.uintTy(), AddressSpace::Global),
        AddressSpace::Private);
    PermParam->setParam(true);
    K->addParam(PermParam);
    BufferSpec Perm;
    Perm.Space = AddressSpace::Global;
    Permutations.clear();
    for (unsigned I = 0; I != Opts.NumPermutations; ++I)
      Permutations.push_back(R.permutation(WLinear));
    Perm.InitBytes.resize(Opts.NumPermutations * WLinear * 4);
    for (unsigned I = 0; I != Opts.NumPermutations; ++I)
      for (unsigned J = 0; J != WLinear; ++J) {
        uint32_t V = Permutations[I][J];
        std::memcpy(&Perm.InitBytes[(I * WLinear + J) * 4], &V, 4);
      }
    Buffers.push_back(std::move(Perm));

    if (!AInLocal) {
      AGlobalParam = Ctx.makeVar(
          "A_g", Types.pointer(Types.uintTy(), AddressSpace::Global),
          AddressSpace::Private);
      AGlobalParam->setParam(true);
      K->addParam(AGlobalParam);
      BufferSpec AB;
      AB.Space = AddressSpace::Global;
      AB.InitBytes.resize(static_cast<size_t>(NumGroups) * WLinear * 4);
      for (size_t I = 0; I + 4 <= AB.InitBytes.size(); I += 4) {
        uint32_t One = 1;
        std::memcpy(&AB.InitBytes[I], &One, 4);
      }
      Buffers.push_back(std::move(AB));
    }
  }

  EmiRemaining = Opts.NumEmiBlocks;
  if (Opts.NumEmiBlocks > 0) {
    DeadParam = Ctx.makeVar(
        "dead", Types.pointer(Types.intTy(), AddressSpace::Global),
        AddressSpace::Private);
    DeadParam->setParam(true);
    K->addParam(DeadParam);
    BufferSpec DB;
    DB.Space = AddressSpace::Global;
    DB.IsDeadArray = true;
    DB.InitBytes.resize(Opts.DeadArrayLength * 4);
    for (unsigned J = 0; J != Opts.DeadArrayLength; ++J) {
      int32_t V = static_cast<int32_t>(J);
      std::memcpy(&DB.InitBytes[J * 4], &V, 4);
    }
    Buffers.push_back(std::move(DB));
  }

  // --- kernel body preamble
  std::vector<Stmt *> Body;
  Scopes.clear();
  Scopes.push_back(Scope());
  InKernelBody = true;
  NextHelperCallable = 0;
  LoopDepth = 0;

  // Globals struct instance plus the p pointer every function takes.
  VarDecl *GS =
      Ctx.makeVar("gs", Globals, AddressSpace::Private);
  GS->setInit(initializerFor(Globals));
  Body.push_back(Ctx.makeStmt<DeclStmt>(GS));
  PVar = Ctx.makeVar("p",
                     Types.pointer(Globals, AddressSpace::Private),
                     AddressSpace::Private);
  PVar->setInit(buildUnary(Ctx, UnOp::AddrOf, Ctx.ref(GS)).E);
  Body.push_back(Ctx.makeStmt<DeclStmt>(PVar));

  // Cached local linear id (used only by harness patterns).
  bool NeedsLLin = UseBarrier || UseAtomicSec || UseAtomicRed;
  if (NeedsLLin) {
    LLinVar = Ctx.makeVar("llin", Types.uintTy(), AddressSpace::Private);
    LLinVar->setInit(linearLocalId());
    Body.push_back(Ctx.makeStmt<DeclStmt>(LLinVar));
  }

  if (UseBarrier) {
    if (AInLocal) {
      AVar = Ctx.makeVar("A", Types.array(Types.uintTy(), WLinear),
                         AddressSpace::Local);
      Body.push_back(Ctx.makeStmt<DeclStmt>(AVar));
      // Uniform initialisation: A[llin] = 1; barrier.
      TypedResult LV =
          buildIndex(Ctx, Ctx.ref(AVar), Ctx.ref(LLinVar));
      TypedResult Init = buildAssign(Ctx, AssignOp::Assign, LV.E,
                                     Ctx.intLit(1, Types.uintTy()));
      Body.push_back(Ctx.makeStmt<ExprStmt>(Init.E));
      Body.push_back(
          Ctx.makeStmt<BarrierStmt>(BarrierStmt::LocalFence));
    } else {
      AVar = AGlobalParam;
      ABaseVar = Ctx.makeVar("A_base", Types.uintTy(),
                             AddressSpace::Private);
      ABaseVar->setInit(
          buildBinary(Ctx, BinOp::Mul, linearGroupId(),
                      Ctx.intLit(WLinear, Types.uintTy()))
              .E);
      Body.push_back(Ctx.makeStmt<DeclStmt>(ABaseVar));
    }
    // Initial offset from permutation rnd.
    AOffsetVar = Ctx.makeVar("A_offset", Types.uintTy(),
                             AddressSpace::Private);
    unsigned Rnd = static_cast<unsigned>(R.below(Opts.NumPermutations));
    TypedResult Idx =
        buildBinary(Ctx, BinOp::Add,
                    Ctx.intLit(Rnd * WLinear, Types.uintTy()),
                    Ctx.ref(LLinVar));
    AOffsetVar->setInit(
        buildIndex(Ctx, Ctx.ref(PermParam), Idx.E).E);
    Body.push_back(Ctx.makeStmt<DeclStmt>(AOffsetVar));
  }

  if (UseAtomicSec) {
    NumSectionPairs = static_cast<unsigned>(R.range(4, 12));
    SecCVar =
        Ctx.makeVar("sec_c", Types.array(Types.uintTy(), NumSectionPairs),
                    AddressSpace::Local);
    SecSVar =
        Ctx.makeVar("sec_s", Types.array(Types.uintTy(), NumSectionPairs),
                    AddressSpace::Local);
    SecCVar->setVolatile(true);
    SecSVar->setVolatile(true);
    Body.push_back(Ctx.makeStmt<DeclStmt>(SecCVar));
    Body.push_back(Ctx.makeStmt<DeclStmt>(SecSVar));
    // Work-item 0 zeroes both arrays; barrier.
    TypedResult IsZero =
        buildBinary(Ctx, BinOp::Eq, Ctx.ref(LLinVar),
                    Ctx.intLit(0, Types.uintTy()));
    VarDecl *I = Ctx.makeVar("ii_0", Types.intTy(), AddressSpace::Private);
    I->setInit(Ctx.intLit(0));
    TypedResult Cond = buildBinary(
        Ctx, BinOp::Lt, Ctx.ref(I),
        Ctx.intLit(static_cast<int>(NumSectionPairs)));
    TypedResult Step =
        buildAssign(Ctx, AssignOp::Add, Ctx.ref(I), Ctx.intLit(1));
    TypedResult CLv = buildIndex(Ctx, Ctx.ref(SecCVar), Ctx.ref(I));
    TypedResult SLv = buildIndex(Ctx, Ctx.ref(SecSVar), Ctx.ref(I));
    std::vector<Stmt *> LoopBody = {
        Ctx.makeStmt<ExprStmt>(
            buildAssign(Ctx, AssignOp::Assign, CLv.E,
                        Ctx.intLit(0, Types.uintTy()))
                .E),
        Ctx.makeStmt<ExprStmt>(
            buildAssign(Ctx, AssignOp::Assign, SLv.E,
                        Ctx.intLit(0, Types.uintTy()))
                .E)};
    Stmt *Loop = Ctx.makeStmt<ForStmt>(
        Ctx.makeStmt<DeclStmt>(I), Cond.E, Step.E,
        Ctx.makeStmt<CompoundStmt>(std::move(LoopBody)));
    Body.push_back(Ctx.makeStmt<IfStmt>(
        IsZero.E,
        Ctx.makeStmt<CompoundStmt>(std::vector<Stmt *>{Loop}), nullptr));
    Body.push_back(Ctx.makeStmt<BarrierStmt>(BarrierStmt::LocalFence));
  }

  if (UseAtomicRed) {
    RedVar = Ctx.makeVar("red", Types.array(Types.uintTy(), 1),
                         AddressSpace::Local);
    RedVar->setVolatile(true);
    Body.push_back(Ctx.makeStmt<DeclStmt>(RedVar));
    TypedResult IsZero =
        buildBinary(Ctx, BinOp::Eq, Ctx.ref(LLinVar),
                    Ctx.intLit(0, Types.uintTy()));
    TypedResult RLv = buildIndex(Ctx, Ctx.ref(RedVar), Ctx.intLit(0));
    TypedResult Init = buildAssign(Ctx, AssignOp::Assign, RLv.E,
                                   Ctx.intLit(0, Types.uintTy()));
    Body.push_back(Ctx.makeStmt<IfStmt>(
        IsZero.E,
        Ctx.makeStmt<CompoundStmt>(
            std::vector<Stmt *>{Ctx.makeStmt<ExprStmt>(Init.E)}),
        nullptr));
    Body.push_back(Ctx.makeStmt<BarrierStmt>(BarrierStmt::LocalFence));
    TotalVar =
        Ctx.makeVar("total", Types.ulongTy(), AddressSpace::Private);
    TotalVar->setInit(Ctx.intLit(0, Types.ulongTy()));
    Body.push_back(Ctx.makeStmt<DeclStmt>(TotalVar));
  }

  // --- random body
  StmtBudget = 40;
  Expr *SeedInit;
  if (Helpers.empty()) {
    SeedInit = literalOf(Types.ulongTy());
  } else {
    std::vector<Expr *> Args{Ctx.ref(PVar)};
    for (size_t PI = 1; PI != Helpers[0]->params().size(); ++PI)
      Args.push_back(literalOf(
          cast<ScalarType>(Helpers[0]->params()[PI]->getType())));
    SeedInit = castTo(Ctx.makeExpr<CallExpr>(Helpers[0], std::move(Args),
                                             Helpers[0]->getReturnType()),
                      Types.ulongTy());
  }
  VarDecl *Seed = freshScalar(Types.ulongTy(), SeedInit);
  Body.push_back(Ctx.makeStmt<DeclStmt>(Seed));

  std::vector<Stmt *> Random = genBlock(
      0, static_cast<unsigned>(R.range(Opts.MaxBlockStmts,
                                       Opts.MaxBlockStmts + 4)));
  // Force any still-pending EMI blocks into the tail.
  while (EmiRemaining > 0) {
    --EmiRemaining;
    Random.push_back(genEmiBlock(0));
  }
  for (Stmt *S : Random)
    Body.push_back(S);

  // --- result hash
  VarDecl *Crc = Ctx.makeVar("crc", Types.ulongTy(), AddressSpace::Private);
  Crc->setInit(Ctx.intLit(0xcbf29ce484222325ULL, Types.ulongTy()));
  Body.push_back(Ctx.makeStmt<DeclStmt>(Crc));

  auto Mix = [&](Expr *Term) {
    Expr *Mixed = buildBinary(
        Ctx, BinOp::Mul,
        buildBinary(Ctx, BinOp::BitXor, Ctx.ref(Crc),
                    castTo(Term, Types.ulongTy()))
            .E,
        Ctx.intLit(HashPrime, Types.ulongTy())).E;
    Body.push_back(Ctx.makeStmt<ExprStmt>(
        buildAssign(Ctx, AssignOp::Assign, Ctx.ref(Crc), Mixed).E));
  };

  Mix(Ctx.ref(Seed));
  // Hash every scalar leaf of the globals struct.
  for (unsigned FI = 0; FI != Globals->getNumFields(); ++FI) {
    const RecordField &F = Globals->getField(FI);
    Expr *Base = Ctx.makeExpr<MemberExpr>(Ctx.ref(PVar), FI,
                                          /*IsArrow=*/true, F.Ty);
    if (isa<ScalarType>(F.Ty)) {
      Mix(Base);
    } else if (const auto *AT = dyn_cast<ArrayType>(F.Ty)) {
      if (isa<ScalarType>(AT->getElementType()))
        for (uint64_t I = 0; I != AT->getNumElements(); ++I)
          Mix(Ctx.makeExpr<IndexExpr>(Base,
                                      Ctx.intLit(static_cast<int>(I)),
                                      AT->getElementType()));
    } else if (const auto *VT = dyn_cast<VectorType>(F.Ty)) {
      for (unsigned L = 0; L != VT->getNumLanes(); ++L)
        Mix(Ctx.makeExpr<SwizzleExpr>(Base, std::vector<unsigned>{L},
                                      VT->getElementType()));
    } else if (const auto *RT = dyn_cast<RecordType>(F.Ty)) {
      unsigned Limit = RT->isUnion() ? 1 : RT->getNumFields();
      for (unsigned I = 0; I != Limit; ++I)
        if (isa<ScalarType>(RT->getField(I).Ty))
          Mix(Ctx.makeExpr<MemberExpr>(Base, I, /*IsArrow=*/false,
                                       RT->getField(I).Ty));
    }
  }
  if (UseBarrier)
    Mix(sharedArrayRead());
  if (UseAtomicSec) {
    // Work-item 0 folds the special values in on behalf of the group.
    TypedResult IsZero =
        buildBinary(Ctx, BinOp::Eq, Ctx.ref(LLinVar),
                    Ctx.intLit(0, Types.uintTy()));
    std::vector<Stmt *> Fold;
    for (unsigned I = 0; I != NumSectionPairs; ++I) {
      TypedResult SRead = buildIndex(Ctx, Ctx.ref(SecSVar),
                                     Ctx.intLit(static_cast<int>(I)));
      Expr *Mixed = buildBinary(
          Ctx, BinOp::Mul,
          buildBinary(Ctx, BinOp::BitXor, Ctx.ref(Crc),
                      castTo(SRead.E, Types.ulongTy()))
              .E,
          Ctx.intLit(HashPrime, Types.ulongTy())).E;
      Fold.push_back(Ctx.makeStmt<ExprStmt>(
          buildAssign(Ctx, AssignOp::Assign, Ctx.ref(Crc), Mixed).E));
    }
    // A barrier first so every section's effects are visible.
    Body.push_back(Ctx.makeStmt<BarrierStmt>(BarrierStmt::LocalFence));
    Body.push_back(Ctx.makeStmt<IfStmt>(
        IsZero.E, Ctx.makeStmt<CompoundStmt>(std::move(Fold)), nullptr));
  }
  if (UseAtomicRed) {
    TypedResult IsZero =
        buildBinary(Ctx, BinOp::Eq, Ctx.ref(LLinVar),
                    Ctx.intLit(0, Types.uintTy()));
    Expr *Mixed = buildBinary(
        Ctx, BinOp::Mul,
        buildBinary(Ctx, BinOp::BitXor, Ctx.ref(Crc),
                    Ctx.ref(TotalVar))
            .E,
        Ctx.intLit(HashPrime, Types.ulongTy())).E;
    Body.push_back(Ctx.makeStmt<IfStmt>(
        IsZero.E,
        Ctx.makeStmt<CompoundStmt>(std::vector<Stmt *>{
            Ctx.makeStmt<ExprStmt>(
                buildAssign(Ctx, AssignOp::Assign, Ctx.ref(Crc), Mixed)
                    .E)}),
        nullptr));
  }

  // --- out[tlinear] = crc, with an optional legal int/size_t mixture.
  Expr *Index = linearGlobalIdIndex();
  if (R.chance(Opts.SizeTMixProbability)) {
    VarDecl *Zero =
        Ctx.makeVar("mix_0", Types.intTy(), AddressSpace::Private);
    Zero->setInit(Ctx.intLit(0));
    Body.push_back(Ctx.makeStmt<DeclStmt>(Zero));
    Index = buildBinary(Ctx, BinOp::Add, Index, Ctx.ref(Zero)).E;
  }
  TypedResult OutLV = buildIndex(Ctx, Ctx.ref(OutParam), Index);
  TypedResult Write =
      buildAssign(Ctx, AssignOp::Assign, OutLV.E, Ctx.ref(Crc));
  Body.push_back(Ctx.makeStmt<ExprStmt>(Write.E));

  K->setBody(Ctx.makeStmt<CompoundStmt>(std::move(Body)));
  GenBuffers = std::move(Buffers);
}

//===----------------------------------------------------------------------===//
// Entry point
//===----------------------------------------------------------------------===//

GeneratedKernel KernelGen::run() {
  chooseGeometry();
  buildGlobalsStruct();
  planFunctions();
  emitFunctionBodies();
  emitKernel();

  GeneratedKernel Result;
  Result.Range = Range;
  Result.Mode = Opts.Mode;
  Result.Seed = Opts.Seed;
  Result.Buffers = std::move(GenBuffers);
  Result.EmiIds = EmiIds;
  PrinterOptions PO;
  Result.Source = printProgram(Ctx.program(), Types, PO);
  Result.Ctx = std::move(CtxHolder);
  return Result;
}

GeneratedKernel clfuzz::generateKernel(const GenOptions &Opts) {
  KernelGen G(Opts);
  return G.run();
}
