//===- Generator.h - CLsmith-style random kernel generation -----*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's primary contribution: random generation of
/// deterministic, communicating OpenCL kernels (§4). Six modes:
///
///  * BASIC - embarrassingly parallel Csmith-style kernels built around
///    a "globals struct" passed by reference to every function (§4.1);
///  * VECTOR - adds OpenCL vector types/operations with type-correct
///    generation (no implicit vector conversions) and safe-math vector
///    wrappers;
///  * BARRIER - deterministic intra-group communication through a
///    shared array A with barrier-separated ownership re-distribution
///    via host-provided permutations (§4.2);
///  * ATOMIC SECTION - `if (atomic_inc(c) == rnd) { ... }` sections
///    whose bodies only modify section-local state and publish a hash
///    through a special value;
///  * ATOMIC REDUCTION - commutative/associative atomic reductions
///    with barrier-protected accumulation by work-item 0;
///  * ALL - everything combined.
///
/// Determinism discipline (§4.2): work-item ids never appear in general
/// expressions (only in the fixed harness patterns), the shared array
/// is initialised uniformly, and all signed arithmetic flows through
/// safe wrappers - so every generated kernel produces a unique,
/// schedule-independent output per work-item.
///
/// Grid geometry follows §4.1: a random total thread count in
/// [MinThreads, MaxThreads) factored into random 3D global/local
/// sizes with Wx*Wy*Wz <= 256.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_GEN_GENERATOR_H
#define CLFUZZ_GEN_GENERATOR_H

#include "minicl/AST.h"
#include "vm/VM.h"

#include <memory>
#include <string>
#include <vector>

namespace clfuzz {

/// CLsmith generation modes (§4).
enum class GenMode : uint8_t {
  Basic,
  Vector,
  Barrier,
  AtomicSection,
  AtomicReduction,
  All,
};

const char *genModeName(GenMode M);
inline constexpr unsigned NumGenModes = 6;

/// Generator tuning knobs.
struct GenOptions {
  GenMode Mode = GenMode::Basic;
  uint64_t Seed = 0;

  /// Total work-item count range (paper: [100, 10000)). The scaled
  /// default keeps bench harnesses fast; pass the paper's values for
  /// full-scale runs.
  uint32_t MinThreads = 64;
  uint32_t MaxThreads = 512;
  uint32_t MaxGroupSize = 256;

  /// Structure-size knobs.
  unsigned NumFunctions = 4;        ///< helper functions func_1..N
  unsigned MaxBlockStmts = 5;       ///< statements per block
  unsigned MaxBlockDepth = 3;       ///< nesting depth
  unsigned MaxExprDepth = 3;        ///< expression depth
  unsigned MaxLoopIterations = 8;   ///< constant for-loop trip counts

  /// Number of dead-by-construction EMI blocks to inject (§5); zero
  /// disables the `dead` parameter entirely.
  unsigned NumEmiBlocks = 0;
  /// Length of the host-initialised dead array (dead[j] = j).
  unsigned DeadArrayLength = 16;

  /// Probability that the output index computation mixes int with
  /// size_t (the legal pattern configuration 15's front end rejects;
  /// the default approximates the paper's 13-17% bf rate for it).
  double SizeTMixProbability = 0.09;

  /// Permutation count d for BARRIER mode (paper uses 10).
  unsigned NumPermutations = 10;
};

/// How the host must initialise one kernel-argument buffer.
struct BufferSpec {
  AddressSpace Space = AddressSpace::Global;
  std::vector<uint8_t> InitBytes;
  /// Marks the EMI dead array (campaigns flip its contents to check
  /// dead-by-construction placement, §7.4).
  bool IsDeadArray = false;
  /// Marks the output buffer (read back and printed after the run).
  bool IsOutput = false;
};

/// A generated test case: source program, launch geometry and host
/// buffer plan. The AST lives in Ctx; Source is its printed form (the
/// canonical representation a simulated driver re-parses, mirroring
/// OpenCL's online compilation).
struct GeneratedKernel {
  std::unique_ptr<ASTContext> Ctx;
  std::string Source;
  NDRange Range;
  std::vector<BufferSpec> Buffers;
  GenMode Mode = GenMode::Basic;
  uint64_t Seed = 0;
  /// EMI block ids present in the kernel (for the pruner).
  std::vector<int> EmiIds;
};

/// Generates one kernel. Deterministic: equal options (including seed)
/// yield byte-identical sources and buffer plans.
GeneratedKernel generateKernel(const GenOptions &Opts);

} // namespace clfuzz

#endif // CLFUZZ_GEN_GENERATOR_H
