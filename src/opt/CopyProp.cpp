//===- CopyProp.cpp - Literal copy propagation --------------------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// Conservative forward propagation of literal constants assigned to
/// address-untaken, non-volatile scalar locals. Propagation proceeds
/// through straight-line statements of a block; any statement carrying
/// control flow, calls, barriers or atomics flushes the whole map (the
/// variables themselves could not be touched - their address is never
/// taken - but the conservative flush keeps the pass small and
/// evidently sound). Feeds the constant folder in the standard
/// pipeline.
///
//===----------------------------------------------------------------------===//

#include "minicl/ASTQueries.h"
#include "minicl/ASTRewrite.h"
#include "opt/ConstEval.h"
#include "opt/Pass.h"

#include <map>
#include <set>

using namespace clfuzz;

namespace {

class CopyPropPass : public Pass {
public:
  const char *name() const override { return "copyprop"; }

  void runOnFunction(FunctionDecl *F, ASTContext &Ctx) override {
    if (!F->getBody())
      return;
    AddrTaken = collectAddressTaken(F);
    processCompound(F->getBody(), Ctx);
  }

private:
  using LitMap = std::map<const VarDecl *, const IntLiteral *>;

  void processCompound(CompoundStmt *C, ASTContext &Ctx);
  /// True if \p S is "transparent": propagation may continue past it.
  static bool isStraightLine(const Stmt *S) {
    if (!isa<DeclStmt, ExprStmt, NullStmt>(S))
      return false;
    const Expr *E = nullptr;
    if (const auto *DS = dyn_cast<DeclStmt>(S))
      E = DS->getDecl()->getInit();
    else if (const auto *ES = dyn_cast<ExprStmt>(S))
      E = ES->getExpr();
    if (!E)
      return true;
    bool HasBlocker = false;
    forEachChildDeep(E, HasBlocker);
    return !HasBlocker;
  }

  static void forEachChildDeep(const Expr *E, bool &HasBlocker) {
    if (isa<CallExpr>(E)) {
      HasBlocker = true;
      return;
    }
    if (const auto *B = dyn_cast<BuiltinCallExpr>(E))
      if (isAtomicBuiltin(B->getBuiltin()))
        HasBlocker = true;
    switch (E->getKind()) {
    case Expr::ExprKind::Unary:
      forEachChildDeep(cast<UnaryExpr>(E)->getSubExpr(), HasBlocker);
      break;
    case Expr::ExprKind::Binary:
      forEachChildDeep(cast<BinaryExpr>(E)->getLHS(), HasBlocker);
      forEachChildDeep(cast<BinaryExpr>(E)->getRHS(), HasBlocker);
      break;
    case Expr::ExprKind::Assign:
      forEachChildDeep(cast<AssignExpr>(E)->getLHS(), HasBlocker);
      forEachChildDeep(cast<AssignExpr>(E)->getRHS(), HasBlocker);
      break;
    case Expr::ExprKind::Conditional:
      forEachChildDeep(cast<ConditionalExpr>(E)->getCond(), HasBlocker);
      forEachChildDeep(cast<ConditionalExpr>(E)->getTrueExpr(),
                       HasBlocker);
      forEachChildDeep(cast<ConditionalExpr>(E)->getFalseExpr(),
                       HasBlocker);
      break;
    case Expr::ExprKind::BuiltinCall:
      for (const Expr *A : cast<BuiltinCallExpr>(E)->args())
        forEachChildDeep(A, HasBlocker);
      break;
    case Expr::ExprKind::Index:
      forEachChildDeep(cast<IndexExpr>(E)->getBase(), HasBlocker);
      forEachChildDeep(cast<IndexExpr>(E)->getIndex(), HasBlocker);
      break;
    case Expr::ExprKind::Member:
      forEachChildDeep(cast<MemberExpr>(E)->getBase(), HasBlocker);
      break;
    case Expr::ExprKind::Swizzle:
      forEachChildDeep(cast<SwizzleExpr>(E)->getBase(), HasBlocker);
      break;
    case Expr::ExprKind::Cast:
      forEachChildDeep(cast<CastExpr>(E)->getSubExpr(), HasBlocker);
      break;
    case Expr::ExprKind::ImplicitCast:
      forEachChildDeep(cast<ImplicitCastExpr>(E)->getSubExpr(),
                       HasBlocker);
      break;
    case Expr::ExprKind::VectorConstruct:
      for (const Expr *Elem : cast<VectorConstructExpr>(E)->elements())
        forEachChildDeep(Elem, HasBlocker);
      break;
    case Expr::ExprKind::InitList:
      for (const Expr *Sub : cast<InitListExpr>(E)->inits())
        forEachChildDeep(Sub, HasBlocker);
      break;
    default:
      break;
    }
  }

  /// Substitutes known literals into reads inside \p E; records kills
  /// and new facts from assignments.
  Expr *substitute(ASTContext &Ctx, Expr *E, LitMap &Map);
  void killWrites(const Expr *E, LitMap &Map);

  std::set<const VarDecl *> AddrTaken;
};

} // namespace

/// True if \p E contains any store (assignment or ++/--). Substitution
/// is skipped for such expressions: a mapped variable might appear in
/// lvalue position.
static bool containsWrites(const Expr *E) {
  bool Found = false;
  std::function<void(const Expr *)> Walk = [&](const Expr *Node) {
    if (isa<AssignExpr>(Node))
      Found = true;
    if (const auto *U = dyn_cast<UnaryExpr>(Node))
      if (isIncDecOp(U->getOp()))
        Found = true;
    switch (Node->getKind()) {
    case Expr::ExprKind::Unary:
      Walk(cast<UnaryExpr>(Node)->getSubExpr());
      break;
    case Expr::ExprKind::Binary:
      Walk(cast<BinaryExpr>(Node)->getLHS());
      Walk(cast<BinaryExpr>(Node)->getRHS());
      break;
    case Expr::ExprKind::Assign:
      Walk(cast<AssignExpr>(Node)->getLHS());
      Walk(cast<AssignExpr>(Node)->getRHS());
      break;
    case Expr::ExprKind::Conditional:
      Walk(cast<ConditionalExpr>(Node)->getCond());
      Walk(cast<ConditionalExpr>(Node)->getTrueExpr());
      Walk(cast<ConditionalExpr>(Node)->getFalseExpr());
      break;
    case Expr::ExprKind::Call:
      for (const Expr *A : cast<CallExpr>(Node)->args())
        Walk(A);
      break;
    case Expr::ExprKind::BuiltinCall:
      for (const Expr *A : cast<BuiltinCallExpr>(Node)->args())
        Walk(A);
      break;
    case Expr::ExprKind::Index:
      Walk(cast<IndexExpr>(Node)->getBase());
      Walk(cast<IndexExpr>(Node)->getIndex());
      break;
    case Expr::ExprKind::Member:
      Walk(cast<MemberExpr>(Node)->getBase());
      break;
    case Expr::ExprKind::Swizzle:
      Walk(cast<SwizzleExpr>(Node)->getBase());
      break;
    case Expr::ExprKind::Cast:
      Walk(cast<CastExpr>(Node)->getSubExpr());
      break;
    case Expr::ExprKind::ImplicitCast:
      Walk(cast<ImplicitCastExpr>(Node)->getSubExpr());
      break;
    case Expr::ExprKind::VectorConstruct:
      for (const Expr *Elem : cast<VectorConstructExpr>(Node)->elements())
        Walk(Elem);
      break;
    case Expr::ExprKind::InitList:
      for (const Expr *Sub : cast<InitListExpr>(Node)->inits())
        Walk(Sub);
      break;
    default:
      break;
    }
  };
  Walk(E);
  return Found;
}

Expr *CopyPropPass::substitute(ASTContext &Ctx, Expr *E, LitMap &Map) {
  if (Map.empty() || containsWrites(E))
    return E;
  Expr *New = rewriteExpr(Ctx, E, [&Map, &Ctx](Expr *Node) -> Expr * {
    const auto *DR = dyn_cast<DeclRef>(Node);
    if (!DR)
      return Node;
    auto It = Map.find(DR->getDecl());
    if (It == Map.end())
      return Node;
    return Ctx.intLit(It->second->getValue(),
                      cast<ScalarType>(It->second->getType()));
  });
  // Fold the substituted expression locally so literal facts chain
  // through `int b = a + 3;` within one pass run.
  if (New != E && isa<ScalarType>(New->getType()) &&
      !isa<IntLiteral>(New)) {
    if (auto V = evalConstExpr(New))
      return materializeConst(Ctx, *V);
  }
  return New;
}

void CopyPropPass::killWrites(const Expr *E, LitMap &Map) {
  // Remove facts for any variable written anywhere in E.
  std::function<void(const Expr *)> Walk = [&](const Expr *Node) {
    if (const auto *A = dyn_cast<AssignExpr>(Node)) {
      if (const auto *DR = dyn_cast<DeclRef>(A->getLHS()))
        Map.erase(DR->getDecl());
      Walk(A->getLHS());
      Walk(A->getRHS());
      return;
    }
    if (const auto *U = dyn_cast<UnaryExpr>(Node)) {
      if (isIncDecOp(U->getOp()))
        if (const auto *DR = dyn_cast<DeclRef>(U->getSubExpr()))
          Map.erase(DR->getDecl());
      Walk(U->getSubExpr());
      return;
    }
    switch (Node->getKind()) {
    case Expr::ExprKind::Binary:
      Walk(cast<BinaryExpr>(Node)->getLHS());
      Walk(cast<BinaryExpr>(Node)->getRHS());
      break;
    case Expr::ExprKind::Conditional:
      Walk(cast<ConditionalExpr>(Node)->getCond());
      Walk(cast<ConditionalExpr>(Node)->getTrueExpr());
      Walk(cast<ConditionalExpr>(Node)->getFalseExpr());
      break;
    case Expr::ExprKind::BuiltinCall:
      for (const Expr *A : cast<BuiltinCallExpr>(Node)->args())
        Walk(A);
      break;
    case Expr::ExprKind::Call:
      for (const Expr *A : cast<CallExpr>(Node)->args())
        Walk(A);
      break;
    case Expr::ExprKind::Index:
      Walk(cast<IndexExpr>(Node)->getBase());
      Walk(cast<IndexExpr>(Node)->getIndex());
      break;
    case Expr::ExprKind::Member:
      Walk(cast<MemberExpr>(Node)->getBase());
      break;
    case Expr::ExprKind::Swizzle:
      Walk(cast<SwizzleExpr>(Node)->getBase());
      break;
    case Expr::ExprKind::Cast:
      Walk(cast<CastExpr>(Node)->getSubExpr());
      break;
    case Expr::ExprKind::ImplicitCast:
      Walk(cast<ImplicitCastExpr>(Node)->getSubExpr());
      break;
    case Expr::ExprKind::VectorConstruct:
      for (const Expr *Elem : cast<VectorConstructExpr>(Node)->elements())
        Walk(Elem);
      break;
    case Expr::ExprKind::InitList:
      for (const Expr *Sub : cast<InitListExpr>(Node)->inits())
        Walk(Sub);
      break;
    default:
      break;
    }
  };
  Walk(E);
}

void CopyPropPass::processCompound(CompoundStmt *C, ASTContext &Ctx) {
  LitMap Map;
  for (Stmt *&S : C->body()) {
    // Recurse into nested structure first with fresh maps.
    switch (S->getKind()) {
    case Stmt::StmtKind::Compound:
      processCompound(cast<CompoundStmt>(S), Ctx);
      break;
    case Stmt::StmtKind::If: {
      auto *If = cast<IfStmt>(S);
      if (auto *T = dyn_cast<CompoundStmt>(If->getThen()))
        processCompound(T, Ctx);
      if (If->getElse())
        if (auto *E = dyn_cast<CompoundStmt>(If->getElse()))
          processCompound(E, Ctx);
      break;
    }
    case Stmt::StmtKind::For:
      if (auto *B = dyn_cast<CompoundStmt>(cast<ForStmt>(S)->getBody()))
        processCompound(B, Ctx);
      break;
    case Stmt::StmtKind::While:
      if (auto *B = dyn_cast<CompoundStmt>(cast<WhileStmt>(S)->getBody()))
        processCompound(B, Ctx);
      break;
    case Stmt::StmtKind::Do:
      if (auto *B = dyn_cast<CompoundStmt>(cast<DoStmt>(S)->getBody()))
        processCompound(B, Ctx);
      break;
    default:
      break;
    }

    if (!isStraightLine(S)) {
      Map.clear();
      continue;
    }

    if (auto *DS = dyn_cast<DeclStmt>(S)) {
      VarDecl *D = DS->getDecl();
      if (D->getInit()) {
        Expr *NewInit = substitute(Ctx, D->getInit(), Map);
        killWrites(NewInit, Map);
        D->setInit(NewInit);
        const auto *Lit = dyn_cast<IntLiteral>(NewInit);
        bool Eligible = Lit && isa<ScalarType>(D->getType()) &&
                        !D->isVolatile() && !AddrTaken.count(D);
        if (Eligible && D->getType() == Lit->getType())
          Map[D] = Lit;
        else
          Map.erase(D);
      }
      continue;
    }

    if (auto *ES = dyn_cast<ExprStmt>(S)) {
      Expr *E = ES->getExpr();
      // Root assignments: substitute into the RHS, and into a non-var
      // LHS (its indices/bases are reads; mapped scalars can only be
      // the *whole* LHS, which is excluded).
      if (auto *A = dyn_cast<AssignExpr>(E)) {
        Expr *NewRhs = substitute(Ctx, A->getRHS(), Map);
        Expr *NewLhs = A->getLHS();
        if (!isa<DeclRef>(NewLhs))
          NewLhs = substitute(Ctx, NewLhs, Map);
        killWrites(NewRhs, Map);
        killWrites(NewLhs, Map);
        const VarDecl *Target = nullptr;
        if (const auto *DR = dyn_cast<DeclRef>(A->getLHS()))
          Target = DR->getDecl();
        if (Target)
          Map.erase(Target);
        if (NewRhs != A->getRHS() || NewLhs != A->getLHS()) {
          Expr *NewAssign = Ctx.makeExpr<AssignExpr>(
              A->getOp(), NewLhs, NewRhs, A->getType());
          S = Ctx.makeStmt<ExprStmt>(NewAssign);
        }
        // Learn `x = literal` facts from plain stores.
        if (Target && A->getOp() == AssignOp::Assign) {
          const auto *Lit = dyn_cast<IntLiteral>(NewRhs);
          bool Eligible = Lit && isa<ScalarType>(Target->getType()) &&
                          !Target->isVolatile() &&
                          !AddrTaken.count(Target);
          if (Eligible && Target->getType() == Lit->getType())
            Map[Target] = Lit;
        }
        continue;
      }
      Expr *NewE = substitute(Ctx, E, Map);
      killWrites(NewE, Map);
      if (NewE != E)
        S = Ctx.makeStmt<ExprStmt>(NewE);
      continue;
    }
  }
}

std::unique_ptr<Pass> clfuzz::createCopyPropPass() {
  return std::make_unique<CopyPropPass>();
}
