//===- Simplify.cpp - Algebraic and control-flow simplification -------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// Identity/absorption rewrites over expressions and constant-condition
/// simplification of control flow. Hosts the CmpMinusOneBug model
/// (Figure 2(e), anonymous GPU configuration 9): a comparison whose
/// result feeds a shift or another comparison is rewritten to yield -1
/// for true (the vector-style truth value), which silently corrupts
/// scalar arithmetic over comparison results.
///
//===----------------------------------------------------------------------===//

#include "minicl/ASTQueries.h"
#include "minicl/ASTRewrite.h"
#include "opt/ConstEval.h"
#include "opt/Pass.h"

using namespace clfuzz;

namespace {

class SimplifyPass : public Pass {
public:
  explicit SimplifyPass(const PassOptions &Opts)
      : CmpBug(Opts.CmpMinusOneBug) {}

  const char *name() const override { return "simplify"; }

  void runOnFunction(FunctionDecl *F, ASTContext &Ctx) override {
    rewriteFunction(
        Ctx, F,
        [this, &Ctx](Expr *E) { return simplifyExpr(Ctx, E); },
        [&Ctx](Stmt *S) { return simplifyStmt(Ctx, S); });
  }

private:
  Expr *simplifyExpr(ASTContext &Ctx, Expr *E);
  static Stmt *simplifyStmt(ASTContext &Ctx, Stmt *S);

  bool CmpBug;
};

/// Returns the literal value of \p E when it is an IntLiteral.
std::optional<uint64_t> literalValue(const Expr *E) {
  if (const auto *Lit = dyn_cast<IntLiteral>(E))
    return Lit->getValue();
  return std::nullopt;
}

/// True if \p E is a (possibly cast-wrapped) scalar comparison - the
/// shape produced both by TypeRules' implicit conversions and by
/// generated explicit casts.
bool isCastOfComparison(const Expr *E) {
  for (;;) {
    if (const auto *ICE = dyn_cast<ImplicitCastExpr>(E)) {
      E = ICE->getSubExpr();
      continue;
    }
    if (const auto *CE = dyn_cast<CastExpr>(E)) {
      E = CE->getSubExpr();
      continue;
    }
    break;
  }
  const auto *B = dyn_cast<BinaryExpr>(E);
  return B && isComparisonOp(B->getOp()) &&
         !B->getLHS()->getType()->isVector();
}

} // namespace

Expr *SimplifyPass::simplifyExpr(ASTContext &Ctx, Expr *E) {
  // Bug model hook: comparisons feeding safe-shift builtins also get
  // the -1 truth value (the generator emits its shifts through the
  // safe wrappers).
  if (CmpBug) {
    if (auto *BC = dyn_cast<BuiltinCallExpr>(E)) {
      Builtin Bu = BC->getBuiltin();
      if ((Bu == Builtin::SafeShl || Bu == Builtin::SafeShr) &&
          !BC->getType()->isVector() &&
          isCastOfComparison(BC->getArg(0))) {
        std::vector<Expr *> Args = BC->args();
        Args[0] = Ctx.makeExpr<UnaryExpr>(UnOp::Minus, Args[0],
                                          Args[0]->getType());
        return Ctx.makeExpr<BuiltinCallExpr>(Bu, std::move(Args),
                                             BC->getType());
      }
    }
  }

  auto *B = dyn_cast<BinaryExpr>(E);
  if (!B)
    return E;
  if (B->getType()->isVector())
    return E;

  Expr *L = B->getLHS();
  Expr *R = B->getRHS();
  auto LV = literalValue(L);
  auto RV = literalValue(R);
  bool LPure = !hasSideEffects(L);
  bool RPure = !hasSideEffects(R);

  // Bug model: comparisons nested under shifts or comparisons yield -1
  // for true. Applied before the legitimate rewrites so the poisoned
  // tree keeps flowing.
  if (CmpBug) {
    bool IsShift = B->getOp() == BinOp::Shl || B->getOp() == BinOp::Shr;
    bool IsCmp = isComparisonOp(B->getOp());
    if (IsShift || IsCmp) {
      Expr *NewL = L, *NewR = R;
      if (isCastOfComparison(L))
        NewL = Ctx.makeExpr<UnaryExpr>(UnOp::Minus, L, L->getType());
      if (IsCmp && isCastOfComparison(R))
        NewR = Ctx.makeExpr<UnaryExpr>(UnOp::Minus, R, R->getType());
      if (NewL != L || NewR != R)
        return Ctx.makeExpr<BinaryExpr>(B->getOp(), NewL, NewR,
                                        B->getType());
    }
  }

  switch (B->getOp()) {
  case BinOp::Add:
    if (RV == 0u)
      return L;
    if (LV == 0u)
      return R;
    break;
  case BinOp::Sub:
    if (RV == 0u)
      return L;
    break;
  case BinOp::Mul:
    if (RV == 1u)
      return L;
    if (LV == 1u)
      return R;
    if (RV == 0u && LPure)
      return R; // typed zero literal
    if (LV == 0u && RPure)
      return L;
    break;
  case BinOp::Div:
    if (RV == 1u)
      return L;
    break;
  case BinOp::Shl:
  case BinOp::Shr:
    if (RV == 0u)
      return L;
    break;
  case BinOp::BitAnd:
    if (RV == 0u && LPure)
      return R;
    if (LV == 0u && RPure)
      return L;
    break;
  case BinOp::BitOr:
  case BinOp::BitXor:
    if (RV == 0u)
      return L;
    if (LV == 0u)
      return R;
    break;
  case BinOp::LAnd:
    // 0 && x is 0 regardless of x (short-circuit never runs x).
    if (LV == 0u)
      return Ctx.intLit(0, cast<ScalarType>(B->getType()));
    if (RV == 0u && LPure)
      return Ctx.intLit(0, cast<ScalarType>(B->getType()));
    break;
  case BinOp::LOr:
    if (LV && *LV != 0)
      return Ctx.intLit(1, cast<ScalarType>(B->getType()));
    if (RV && *RV != 0 && LPure)
      return Ctx.intLit(1, cast<ScalarType>(B->getType()));
    break;
  case BinOp::Comma:
    if (LPure)
      return R;
    break;
  default:
    break;
  }
  return E;
}

Stmt *SimplifyPass::simplifyStmt(ASTContext &Ctx, Stmt *S) {
  switch (S->getKind()) {
  case Stmt::StmtKind::If: {
    auto *If = cast<IfStmt>(S);
    auto CV = literalValue(If->getCond());
    if (!CV)
      return S;
    if (*CV != 0)
      return If->getThen();
    if (If->getElse())
      return If->getElse();
    return Ctx.makeStmt<NullStmt>();
  }
  case Stmt::StmtKind::While: {
    auto *W = cast<WhileStmt>(S);
    auto CV = literalValue(W->getCond());
    if (CV == 0u)
      return Ctx.makeStmt<NullStmt>();
    return S;
  }
  case Stmt::StmtKind::For: {
    auto *For = cast<ForStmt>(S);
    if (!For->getCond())
      return S;
    auto CV = literalValue(For->getCond());
    if (CV == 0u) {
      if (For->getInit())
        return For->getInit();
      return Ctx.makeStmt<NullStmt>();
    }
    return S;
  }
  case Stmt::StmtKind::Do: {
    auto *D = cast<DoStmt>(S);
    auto CV = literalValue(D->getCond());
    // do { body } while (0): body runs exactly once; unwrap when no
    // break/continue binds to this loop.
    if (CV == 0u && !containsFreeBreakOrContinue(D->getBody()))
      return D->getBody();
    return S;
  }
  default:
    return S;
  }
}

std::unique_ptr<Pass> clfuzz::createSimplifyPass(const PassOptions &Opts) {
  return std::make_unique<SimplifyPass>(Opts);
}
