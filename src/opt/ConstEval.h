//===- ConstEval.h - Compile-time expression evaluation ---------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compile-time evaluation of pure MiniCL expressions, sharing lane
/// semantics with the VM through minicl/IntOps.h so that a *correct*
/// fold can never disagree with runtime evaluation.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_OPT_CONSTEVAL_H
#define CLFUZZ_OPT_CONSTEVAL_H

#include "minicl/AST.h"

#include <array>
#include <optional>

namespace clfuzz {

/// A compile-time constant (scalar or vector of masked lanes).
struct ConstValue {
  const Type *Ty = nullptr;
  unsigned NumLanes = 1;
  std::array<uint64_t, 16> Lanes = {};

  bool isScalar() const { return NumLanes == 1 && !Ty->isVector(); }
};

/// Evaluates \p E if it is a compile-time constant with defined
/// semantics. Division by a zero constant, atomics, loads, work-item
/// queries and side-effecting nodes yield nullopt.
std::optional<ConstValue> evalConstExpr(const Expr *E);

/// Materialises a ConstValue as an expression (IntLiteral or a
/// VectorConstructExpr of literals).
Expr *materializeConst(ASTContext &Ctx, const ConstValue &V);

} // namespace clfuzz

#endif // CLFUZZ_OPT_CONSTEVAL_H
