//===- ConstEval.cpp - Compile-time expression evaluation ------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "opt/ConstEval.h"
#include "minicl/IntOps.h"

using namespace clfuzz;

std::optional<ConstValue> clfuzz::evalConstExpr(const Expr *E) {
  switch (E->getKind()) {
  case Expr::ExprKind::IntLiteral: {
    const auto *Lit = cast<IntLiteral>(E);
    ConstValue V;
    V.Ty = Lit->getType();
    V.Lanes[0] = Lit->getValue();
    return V;
  }
  case Expr::ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    if (U->getOp() != UnOp::Plus && U->getOp() != UnOp::Minus &&
        U->getOp() != UnOp::Not && U->getOp() != UnOp::BitNot)
      return std::nullopt;
    auto Sub = evalConstExpr(U->getSubExpr());
    if (!Sub)
      return std::nullopt;
    LaneType LT = laneTypeOf(E->getType());
    ConstValue V;
    V.Ty = E->getType();
    V.NumLanes = Sub->NumLanes;
    for (unsigned I = 0; I != Sub->NumLanes; ++I) {
      switch (U->getOp()) {
      case UnOp::Plus:
        V.Lanes[I] = maskToWidth(Sub->Lanes[I], LT.Width);
        break;
      case UnOp::Minus:
        V.Lanes[I] = maskToWidth(0 - Sub->Lanes[I], LT.Width);
        break;
      case UnOp::BitNot:
        V.Lanes[I] = maskToWidth(~Sub->Lanes[I], LT.Width);
        break;
      case UnOp::Not:
        V.Lanes[I] = Sub->Lanes[I] == 0 ? 1 : 0;
        break;
      default:
        break;
      }
    }
    return V;
  }
  case Expr::ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    if (B->getOp() == BinOp::Comma)
      return std::nullopt; // folded by Simplify, not ConstEval
    auto L = evalConstExpr(B->getLHS());
    if (!L)
      return std::nullopt;
    // Short-circuit forms can decide from the left operand alone.
    if (B->getOp() == BinOp::LAnd && !B->getLHS()->getType()->isVector() &&
        L->Lanes[0] == 0) {
      ConstValue V;
      V.Ty = E->getType();
      V.Lanes[0] = 0;
      return V;
    }
    if (B->getOp() == BinOp::LOr && !B->getLHS()->getType()->isVector() &&
        L->Lanes[0] != 0) {
      ConstValue V;
      V.Ty = E->getType();
      V.Lanes[0] = 1;
      return V;
    }
    auto R = evalConstExpr(B->getRHS());
    if (!R)
      return std::nullopt;
    LaneType LT = laneTypeOf(B->getLHS()->getType());
    bool VecCmp = E->getType()->isVector() &&
                  (isComparisonOp(B->getOp()) || isLogicalOp(B->getOp()));
    unsigned RW = laneTypeOf(E->getType()).Width;
    ConstValue V;
    V.Ty = E->getType();
    V.NumLanes = std::max(L->NumLanes, R->NumLanes);
    for (unsigned I = 0; I != V.NumLanes; ++I) {
      uint64_t Out;
      if (!evalBinLane(B->getOp(), LT, L->Lanes[I], R->Lanes[I], VecCmp,
                       RW, Out))
        return std::nullopt; // constant division by zero: leave for VM
      V.Lanes[I] = maskToWidth(Out, RW);
    }
    return V;
  }
  case Expr::ExprKind::Conditional: {
    const auto *C = cast<ConditionalExpr>(E);
    auto Cond = evalConstExpr(C->getCond());
    if (!Cond)
      return std::nullopt;
    return evalConstExpr(Cond->Lanes[0] != 0 ? C->getTrueExpr()
                                             : C->getFalseExpr());
  }
  case Expr::ExprKind::BuiltinCall: {
    const auto *C = cast<BuiltinCallExpr>(E);
    Builtin B = C->getBuiltin();
    if (isAtomicBuiltin(B) || isWorkItemBuiltin(B))
      return std::nullopt;
    std::array<ConstValue, 3> Args;
    if (C->getNumArgs() > 3)
      return std::nullopt;
    for (unsigned I = 0; I != C->getNumArgs(); ++I) {
      auto A = evalConstExpr(C->getArg(I));
      if (!A)
        return std::nullopt;
      Args[I] = *A;
    }
    if (B == Builtin::ConvertVector) {
      const auto *ToVT = cast<VectorType>(E->getType());
      const auto *FromVT =
          cast<VectorType>(C->getArg(0)->getType());
      LaneType FromLT = laneTypeOf(FromVT);
      ConstValue V;
      V.Ty = ToVT;
      V.NumLanes = ToVT->getNumLanes();
      for (unsigned I = 0; I != V.NumLanes; ++I) {
        uint64_t Bits =
            FromLT.Signed
                ? static_cast<uint64_t>(
                      signExtend(Args[0].Lanes[I], FromLT.Width))
                : Args[0].Lanes[I];
        V.Lanes[I] =
            maskToWidth(Bits, ToVT->getElementType()->bitWidth());
      }
      return V;
    }
    LaneType LT = laneTypeOf(C->getArg(0)->getType());
    ConstValue V;
    V.Ty = E->getType();
    V.NumLanes = Args[0].NumLanes;
    for (unsigned I = 0; I != V.NumLanes; ++I) {
      uint64_t ArgBits[3] = {Args[0].Lanes[I], Args[1].Lanes[I],
                             Args[2].Lanes[I]};
      V.Lanes[I] = maskToWidth(evalBuiltinLane(B, LT, ArgBits),
                               laneTypeOf(E->getType()).Width);
    }
    return V;
  }
  case Expr::ExprKind::Cast:
  case Expr::ExprKind::ImplicitCast: {
    const Expr *Sub = E->getKind() == Expr::ExprKind::Cast
                          ? cast<CastExpr>(E)->getSubExpr()
                          : cast<ImplicitCastExpr>(E)->getSubExpr();
    auto V = evalConstExpr(Sub);
    if (!V)
      return std::nullopt;
    if (const auto *ICE = dyn_cast<ImplicitCastExpr>(E)) {
      if (ICE->getCastKind() == ImplicitCastExpr::CastKind::VectorSplat) {
        const auto *VT = cast<VectorType>(E->getType());
        ConstValue Out;
        Out.Ty = VT;
        Out.NumLanes = VT->getNumLanes();
        uint64_t Bits = maskToWidth(V->Lanes[0],
                                    VT->getElementType()->bitWidth());
        for (unsigned I = 0; I != Out.NumLanes; ++I)
          Out.Lanes[I] = Bits;
        return Out;
      }
    }
    if (isa<PointerType>(E->getType()))
      return std::nullopt; // null pointer constants stay symbolic
    LaneType SrcLT = laneTypeOf(Sub->getType());
    LaneType DstLT = laneTypeOf(E->getType());
    ConstValue Out;
    Out.Ty = E->getType();
    Out.NumLanes = V->NumLanes;
    for (unsigned I = 0; I != V->NumLanes; ++I) {
      uint64_t Bits = SrcLT.Signed
                          ? static_cast<uint64_t>(
                                signExtend(V->Lanes[I], SrcLT.Width))
                          : V->Lanes[I];
      Out.Lanes[I] = maskToWidth(Bits, DstLT.Width);
    }
    return Out;
  }
  case Expr::ExprKind::VectorConstruct: {
    const auto *VC = cast<VectorConstructExpr>(E);
    ConstValue Out;
    Out.Ty = E->getType();
    Out.NumLanes = cast<VectorType>(E->getType())->getNumLanes();
    unsigned Lane = 0;
    for (const Expr *Elem : VC->elements()) {
      auto V = evalConstExpr(Elem);
      if (!V)
        return std::nullopt;
      for (unsigned I = 0; I != V->NumLanes && Lane < 16; ++I)
        Out.Lanes[Lane++] = V->Lanes[I];
    }
    return Out;
  }
  case Expr::ExprKind::Swizzle: {
    const auto *Sw = cast<SwizzleExpr>(E);
    auto Base = evalConstExpr(Sw->getBase());
    if (!Base)
      return std::nullopt;
    ConstValue Out;
    Out.Ty = E->getType();
    Out.NumLanes = static_cast<unsigned>(Sw->indices().size());
    for (unsigned I = 0; I != Out.NumLanes; ++I)
      Out.Lanes[I] = Base->Lanes[Sw->indices()[I]];
    return Out;
  }
  default:
    return std::nullopt;
  }
}

Expr *clfuzz::materializeConst(ASTContext &Ctx, const ConstValue &V) {
  if (const auto *VT = dyn_cast<VectorType>(V.Ty)) {
    std::vector<Expr *> Elems;
    for (unsigned I = 0; I != VT->getNumLanes(); ++I)
      Elems.push_back(Ctx.intLit(V.Lanes[I], VT->getElementType()));
    return Ctx.makeExpr<VectorConstructExpr>(std::move(Elems), VT);
  }
  return Ctx.intLit(V.Lanes[0], cast<ScalarType>(V.Ty));
}
