//===- PassManager.cpp - Pipeline assembly and barrier lowering -------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "opt/Pass.h"
#include "minicl/ASTQueries.h"
#include "minicl/ASTRewrite.h"
#include "support/Hash.h"

using namespace clfuzz;

Pass::~Pass() = default;

void PassManager::run(ASTContext &Ctx) {
  for (const auto &P : Passes)
    for (FunctionDecl *F : Ctx.program().functions())
      P->runOnFunction(F, Ctx);
}

void PassManager::run(ASTContext &Ctx, uint64_t EnabledMask) {
  for (size_t I = 0; I != Passes.size(); ++I) {
    if (I < 64 && !(EnabledMask & (uint64_t(1) << I)))
      continue;
    for (FunctionDecl *F : Ctx.program().functions())
      Passes[I]->runOnFunction(F, Ctx);
  }
}

std::vector<std::string> PassManager::passNames() const {
  std::vector<std::string> Names;
  for (const auto &P : Passes)
    Names.push_back(P->name());
  return Names;
}

namespace {

/// The buggy "Intel OpenCL Barrier" lowering of Figure 2(c): calls to
/// barrier-containing functions, made from non-kernel functions that
/// themselves contain a barrier, lose their return value. The pass
/// mirrors the paper's observation that inlining (or enabling
/// optimisations) hides the bug: it only fires on calls that survive to
/// this lowering, which in our pipeline means all calls at -O0.
class BarrierLoweringPass : public Pass {
public:
  explicit BarrierLoweringPass(const ASTContext &Ctx) {
    for (const FunctionDecl *F : Ctx.program().functions())
      if (functionContainsBarrier(F))
        BarrierFuncs.insert(F);
  }

  const char *name() const override { return "barrier-lowering(bug)"; }

  void runOnFunction(FunctionDecl *F, ASTContext &Ctx) override {
    // Defect 2 (Figure 1(d), configuration 17): statement-level calls
    // to void functions taking pointer arguments are dropped when the
    // *caller* contains a barrier - the callee's stores through the
    // pointer are lost. Applies to kernels too.
    if (BarrierFuncs.count(F)) {
      rewriteFunction(Ctx, F, nullptr, [&Ctx](Stmt *S) -> Stmt * {
        const auto *ES = dyn_cast<ExprStmt>(S);
        if (!ES)
          return S;
        const auto *C = dyn_cast<CallExpr>(ES->getExpr());
        if (!C || !C->getType()->isVoid())
          return S;
        bool HasPointerArg = false;
        for (const Expr *A : C->args())
          HasPointerArg |= isa<PointerType>(A->getType());
        return HasPointerArg ? Ctx.makeStmt<NullStmt>() : S;
      });
    }
    if (F->isKernel())
      return;
    // Defect 1 (Figure 2(c), configurations 12-/13-): calls to
    // barrier-containing functions from *any non-kernel function* lose
    // their return value (the paper's example calls through a chain
    // h -> g -> f; only the barrier in the callee is essential).
    rewriteFunction(
        Ctx, F,
        [this, &Ctx](Expr *E) -> Expr * {
          const auto *C = dyn_cast<CallExpr>(E);
          if (!C || C->getType()->isVoid())
            return E;
          if (!BarrierFuncs.count(C->getCallee()))
            return E;
          if (!isa<ScalarType>(C->getType()))
            return E;
          return Ctx.intLit(0, cast<ScalarType>(C->getType()));
        },
        nullptr);
  }

private:
  std::set<const FunctionDecl *> BarrierFuncs;
};

} // namespace

std::unique_ptr<Pass>
clfuzz::createBarrierLoweringPass(const ASTContext &Ctx) {
  return std::make_unique<BarrierLoweringPass>(Ctx);
}

namespace {

/// Mandatory empty-block elimination (a cheap clean-up every real
/// driver performs) hosting the §7.4 EMI-sensitive bug model: with
/// probability EmiDceBugRate per occurrence, removing an empty `if`
/// whose pure condition reads a buffer also deletes the next
/// statement. Pruned-to-empty EMI blocks have exactly this shape, so
/// different prune variants of one base diverge - the mechanism by
/// which EMI testing catches optimisation-interaction defects.
class EmptyBlockElimPass : public Pass {
public:
  explicit EmptyBlockElimPass(const PassOptions &Opts)
      : Rate(Opts.EmiDceBugRate), Salt(Opts.BugSalt) {}

  const char *name() const override { return "empty-block-elim"; }

  void runOnFunction(FunctionDecl *F, ASTContext &Ctx) override {
    rewriteFunction(Ctx, F, nullptr, [this, &Ctx](Stmt *S) -> Stmt * {
      auto *C = dyn_cast<CompoundStmt>(S);
      if (!C)
        return S;
      std::vector<Stmt *> Kept;
      bool SkipNext = false;
      for (size_t I = 0; I != C->body().size(); ++I) {
        Stmt *Child = C->body()[I];
        if (SkipNext) {
          SkipNext = false;
          continue; // the defect: this statement vanishes
        }
        if (isRemovableEmptyIf(Child)) {
          // Correct part: drop the empty block. Buggy part: roll the
          // trigger for also dropping the successor.
          Fnv64 H;
          H.addU64(Salt);
          H.addU64(countNodes(Child));
          H.addU64(I);
          double Draw =
              static_cast<double>(H.value() >> 11) * 0x1.0p-53;
          if (Draw < Rate)
            SkipNext = true;
          continue;
        }
        Kept.push_back(Child);
      }
      if (Kept.size() == C->body().size())
        return S;
      return Ctx.makeStmt<CompoundStmt>(std::move(Kept));
    });
  }

private:
  /// True if the block's statements are all observably dead: local
  /// declarations with pure initialisers, pure expression statements
  /// and empty/null statements (the shape leaf/compound pruning leaves
  /// behind, since declarations are never leaf-deleted).
  static bool isPureDeadBlock(const Stmt *S) {
    switch (S->getKind()) {
    case Stmt::StmtKind::Null:
      return true;
    case Stmt::StmtKind::Compound: {
      for (const Stmt *Child : cast<CompoundStmt>(S)->body())
        if (!isPureDeadBlock(Child))
          return false;
      return true;
    }
    case Stmt::StmtKind::Decl: {
      const VarDecl *D = cast<DeclStmt>(S)->getDecl();
      return !D->getInit() || !hasSideEffects(D->getInit());
    }
    case Stmt::StmtKind::Expr:
      return !hasSideEffects(cast<ExprStmt>(S)->getExpr());
    default:
      return false;
    }
  }

  /// The pruned-EMI shape: `if (<pure buffer-read cmp>) { <dead
  /// locals> }`.
  static bool isRemovableEmptyIf(const Stmt *S) {
    const auto *If = dyn_cast<IfStmt>(S);
    if (!If || If->getElse())
      return false;
    if (!isPureDeadBlock(If->getThen()))
      return false;
    if (hasSideEffects(If->getCond()))
      return false;
    // The condition must read through a pointer (a buffer access).
    bool ReadsBuffer = false;
    std::function<void(const Expr *)> Walk = [&](const Expr *E) {
      if (const auto *Ix = dyn_cast<IndexExpr>(E))
        if (isa<PointerType>(Ix->getBase()->getType()))
          ReadsBuffer = true;
      if (const auto *B = dyn_cast<BinaryExpr>(E)) {
        Walk(B->getLHS());
        Walk(B->getRHS());
      } else if (const auto *ICE = dyn_cast<ImplicitCastExpr>(E)) {
        Walk(ICE->getSubExpr());
      } else if (const auto *Ix = dyn_cast<IndexExpr>(E)) {
        Walk(Ix->getBase());
        Walk(Ix->getIndex());
      }
    };
    Walk(If->getCond());
    return ReadsBuffer;
  }

  double Rate;
  uint64_t Salt;
};

} // namespace

std::unique_ptr<Pass>
clfuzz::createEmptyBlockElimPass(const PassOptions &Opts) {
  return std::make_unique<EmptyBlockElimPass>(Opts);
}

namespace {

/// The literal marker ShiftMarkPass plants and MarkBreakPass consumes:
/// `11181 & 0`. Pure literals, so evaluation is side-effect free and
/// nothing is double-evaluated.
constexpr uint64_t TriageMarkerValue = 11181;

/// True when \p E is the planted marker `11181 & 0`.
bool isTriageMarker(const Expr *E) {
  const auto *B = dyn_cast<BinaryExpr>(E);
  if (!B || B->getOp() != BinOp::BitAnd)
    return false;
  const auto *L = dyn_cast<IntLiteral>(B->getLHS());
  const auto *R = dyn_cast<IntLiteral>(B->getRHS());
  return L && R && L->getValue() == TriageMarkerValue &&
         R->getValue() == 0;
}

/// Fault injection (conjunctive half 1): wraps every scalar
/// safe_lshift in `+ (11181 & 0)`. Adding zero is semantically
/// neutral, so this pass alone never changes an outcome; it only
/// becomes wrong when MarkBreakPass rewrites the marker to 1.
class ShiftMarkPass : public Pass {
public:
  const char *name() const override { return "shift-mark(test-bug)"; }

  void runOnFunction(FunctionDecl *F, ASTContext &Ctx) override {
    rewriteFunction(
        Ctx, F,
        [&Ctx](Expr *E) -> Expr * {
          const auto *C = dyn_cast<BuiltinCallExpr>(E);
          if (!C || C->getBuiltin() != Builtin::SafeShl)
            return E;
          if (!isa<ScalarType>(C->getType()))
            return E;
          const auto *ST = cast<ScalarType>(C->getType());
          Expr *Marker = Ctx.makeExpr<BinaryExpr>(
              BinOp::BitAnd, Ctx.intLit(TriageMarkerValue, ST),
              Ctx.intLit(0, ST), C->getType());
          return Ctx.makeExpr<BinaryExpr>(BinOp::Add, E, Marker,
                                          C->getType());
        },
        nullptr);
  }
};

/// Fault injection (conjunctive half 2): rewrites the exact marker
/// `11181 & 0` to `1`. Without ShiftMarkPass the marker never exists,
/// so this pass alone is a no-op — the minimal faulty set is the
/// {shift-mark, mark-break} *pair*.
class MarkBreakPass : public Pass {
public:
  const char *name() const override { return "mark-break(test-bug)"; }

  void runOnFunction(FunctionDecl *F, ASTContext &Ctx) override {
    rewriteFunction(
        Ctx, F,
        [&Ctx](Expr *E) -> Expr * {
          if (!isTriageMarker(E) || !isa<ScalarType>(E->getType()))
            return E;
          return Ctx.intLit(1, cast<ScalarType>(E->getType()));
        },
        nullptr);
  }
};

/// Fault injection: every scalar safe_lshift becomes safe_rshift — a
/// single-pass wrong-code defect bisection must name exactly.
class BreakOnShiftPass : public Pass {
public:
  const char *name() const override { return "break-on-shift(test-bug)"; }

  void runOnFunction(FunctionDecl *F, ASTContext &Ctx) override {
    rewriteFunction(
        Ctx, F,
        [&Ctx](Expr *E) -> Expr * {
          const auto *C = dyn_cast<BuiltinCallExpr>(E);
          if (!C || C->getBuiltin() != Builtin::SafeShl)
            return E;
          if (!isa<ScalarType>(C->getType()))
            return E;
          return Ctx.makeExpr<BuiltinCallExpr>(Builtin::SafeShr,
                                               C->args(), C->getType());
        },
        nullptr);
  }
};

/// Fault injection: every scalar `x & y` becomes `x | y` — a second
/// independent single-pass defect, feature-distinct from the shift
/// one so the two land in different triage clusters.
class BreakOnAndPass : public Pass {
public:
  const char *name() const override { return "break-on-and(test-bug)"; }

  void runOnFunction(FunctionDecl *F, ASTContext &Ctx) override {
    rewriteFunction(
        Ctx, F,
        [&Ctx](Expr *E) -> Expr * {
          const auto *B = dyn_cast<BinaryExpr>(E);
          if (!B || B->getOp() != BinOp::BitAnd)
            return E;
          if (!isa<ScalarType>(B->getType()))
            return E;
          return Ctx.makeExpr<BinaryExpr>(BinOp::BitOr, B->getLHS(),
                                          B->getRHS(), B->getType());
        },
        nullptr);
  }
};

} // namespace

std::unique_ptr<Pass> clfuzz::createShiftMarkPass() {
  return std::make_unique<ShiftMarkPass>();
}
std::unique_ptr<Pass> clfuzz::createMarkBreakPass() {
  return std::make_unique<MarkBreakPass>();
}
std::unique_ptr<Pass> clfuzz::createBreakOnShiftPass() {
  return std::make_unique<BreakOnShiftPass>();
}
std::unique_ptr<Pass> clfuzz::createBreakOnAndPass() {
  return std::make_unique<BreakOnAndPass>();
}

PassManager clfuzz::buildPipeline(const PassOptions &Opts,
                                  const ASTContext &Ctx) {
  PassManager PM;
  if (Opts.BarrierCallRetvalBug)
    PM.add(createBarrierLoweringPass(Ctx));
  if (Opts.EmiDceBugRate > 0.0)
    PM.add(createEmptyBlockElimPass(Opts));
  if (Opts.EnableConstFold)
    PM.add(createConstFoldPass(Opts));
  if (Opts.EnableSimplify)
    PM.add(createSimplifyPass(Opts));
  if (Opts.EnableCopyProp)
    PM.add(createCopyPropPass());
  if (Opts.EnableConstFold)
    PM.add(createConstFoldPass(Opts));
  if (Opts.EnableSimplify)
    PM.add(createSimplifyPass(Opts));
  if (Opts.EnableDCE)
    PM.add(createDCEPass());
  // Fault-injection passes run last: nothing downstream may fold or
  // delete their planted shapes, or bisection could not isolate them.
  if (Opts.ShiftMarkBug)
    PM.add(createShiftMarkPass());
  if (Opts.MarkBreakBug)
    PM.add(createMarkBreakPass());
  if (Opts.BreakOnShiftBug)
    PM.add(createBreakOnShiftPass());
  if (Opts.BreakOnAndBug)
    PM.add(createBreakOnAndPass());
  return PM;
}
