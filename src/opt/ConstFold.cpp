//===- ConstFold.cpp - Constant folding pass --------------------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// Folds pure constant expressions. Hosts two bug models:
///
///  * RotateFoldBug (Figure 2(b)): vector rotate with constant operands
///    folds to all-ones lanes (Intel configuration 14 constant-folded
///    rotate((uint2)(1,1),(uint2)(0,0)).x to 0xffffffff).
///  * ShiftSafeFoldBug: safe shifts with out-of-range constant amounts
///    fold to 0, diverging from the runtime's masked-amount semantics.
///
//===----------------------------------------------------------------------===//

#include "minicl/ASTRewrite.h"
#include "minicl/IntOps.h"
#include "opt/ConstEval.h"
#include "opt/Pass.h"

using namespace clfuzz;

namespace {

class ConstFoldPass : public Pass {
public:
  explicit ConstFoldPass(const PassOptions &Opts)
      : RotateBug(Opts.RotateFoldBug), ShiftBug(Opts.ShiftSafeFoldBug) {}

  const char *name() const override { return "constfold"; }

  void runOnFunction(FunctionDecl *F, ASTContext &Ctx) override {
    rewriteFunction(
        Ctx, F, [this, &Ctx](Expr *E) { return fold(Ctx, E); }, nullptr);
  }

private:
  Expr *fold(ASTContext &Ctx, Expr *E);

  bool RotateBug;
  bool ShiftBug;
};

} // namespace

Expr *ConstFoldPass::fold(ASTContext &Ctx, Expr *E) {
  // Leave literals and already-constant vector literals untouched to
  // avoid infinite rebuilding.
  if (isa<IntLiteral>(E))
    return E;
  if (const auto *VC = dyn_cast<VectorConstructExpr>(E)) {
    bool AllLits = true;
    for (const Expr *Elem : VC->elements())
      AllLits &= isa<IntLiteral>(Elem);
    if (AllLits)
      return E;
  }

  // Bug model hooks fire before correct folding.
  if (const auto *C = dyn_cast<BuiltinCallExpr>(E)) {
    Builtin B = C->getBuiltin();
    if (RotateBug &&
        (B == Builtin::Rotate || B == Builtin::SafeRotate) &&
        E->getType()->isVector()) {
      bool ArgsConst = true;
      for (const Expr *A : C->args())
        ArgsConst &= evalConstExpr(A).has_value();
      if (ArgsConst) {
        // Mis-fold: every lane becomes all-ones.
        ConstValue V;
        V.Ty = E->getType();
        const auto *VT = cast<VectorType>(E->getType());
        V.NumLanes = VT->getNumLanes();
        for (unsigned I = 0; I != V.NumLanes; ++I)
          V.Lanes[I] = maskToWidth(~0ULL,
                                   VT->getElementType()->bitWidth());
        return materializeConst(Ctx, V);
      }
    }
    if (ShiftBug && (B == Builtin::SafeShl || B == Builtin::SafeShr)) {
      auto Amount = evalConstExpr(C->getArg(1));
      if (Amount) {
        LaneType LT = laneTypeOf(C->getArg(0)->getType());
        // The misfold only affects amounts just past the width (the
        // fold's range check was off by one register class); keeps the
        // rate near the paper's 0.1-0.3%.
        bool AnyOutOfRange = false;
        for (unsigned I = 0; I != Amount->NumLanes; ++I)
          AnyOutOfRange |= Amount->Lanes[I] >= LT.Width &&
                           Amount->Lanes[I] < 2 * LT.Width;
        if (AnyOutOfRange && evalConstExpr(C->getArg(0))) {
          // Mis-fold the whole call to zero.
          ConstValue V;
          V.Ty = E->getType();
          V.NumLanes = laneTypeOf(E->getType()).Width ? 1 : 1;
          if (const auto *VT = dyn_cast<VectorType>(E->getType()))
            V.NumLanes = VT->getNumLanes();
          for (unsigned I = 0; I != V.NumLanes; ++I)
            V.Lanes[I] = 0;
          return materializeConst(Ctx, V);
        }
      }
    }
  }

  auto V = evalConstExpr(E);
  if (!V)
    return E;
  return materializeConst(Ctx, *V);
}

std::unique_ptr<Pass> clfuzz::createConstFoldPass(const PassOptions &Opts) {
  return std::make_unique<ConstFoldPass>(Opts);
}
