//===- Pass.h - AST optimisation pass framework -----------------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The middle end of the simulated OpenCL driver stack: source-level
/// optimisation passes over MiniCL ASTs. OpenCL exposes exactly one
/// optimisation switch (on by default, off via -cl-opt-disable, §3.2),
/// so pipelines come in two flavours; per-configuration *pass bug
/// models* recreate the optimisation defects of the paper's Figures
/// 2(b), 2(c) and 2(e) as genuine wrong rewrites.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_OPT_PASS_H
#define CLFUZZ_OPT_PASS_H

#include "minicl/AST.h"

#include <memory>
#include <string>
#include <vector>

namespace clfuzz {

/// Pipeline configuration, including pass bug models.
struct PassOptions {
  // Pipeline selection.
  bool EnableConstFold = true;
  bool EnableSimplify = true;
  bool EnableCopyProp = true;
  bool EnableDCE = true;

  // Bug models (each implemented inside the named pass).
  /// Figure 2(b), Intel config 14: constant-folding a *vector* rotate
  /// produces all-ones lanes.
  bool RotateFoldBug = false;
  /// NVIDIA-with-optimisations model: folding safe_lshift/safe_rshift
  /// with an out-of-range constant amount yields 0 instead of the
  /// masked-shift semantics the runtime uses.
  bool ShiftSafeFoldBug = false;
  /// Figure 2(e), anonymous GPU config 9: a comparison feeding another
  /// comparison or a shift is "optimised" to yield -1 for true.
  bool CmpMinusOneBug = false;
  /// Figure 2(c), Intel configs 12-/13-: a call to a barrier-containing
  /// function from within another barrier-containing non-kernel
  /// function loses its return value (replaced by 0).
  bool BarrierCallRetvalBug = false;
  /// The EMI-sensitive defect class of §7.4: when the mandatory
  /// empty-block elimination removes an `if` with an empty body and a
  /// pure buffer-reading condition (exactly the shape of a
  /// pruned-to-empty EMI block), it occasionally deletes the following
  /// statement too. Probability per occurrence; 0 disables.
  double EmiDceBugRate = 0.0;

  // Fault-injection passes for the triage conformance suite
  // (tests/TriageConformanceTest.cpp). No registry configuration sets
  // these; they exist so tests can pin pass bisection against known
  // minimal faulty sets. Each is a standalone pass appended after the
  // regular pipeline (see buildPipeline).
  /// Rewrites every scalar safe_lshift(x,y) into safe_rshift(x,y) — a
  /// single-pass wrong-code bug; bisection must name exactly it.
  bool BreakOnShiftBug = false;
  /// Rewrites every scalar `x & y` into `x | y` — a second independent
  /// single-pass bug, distinct from BreakOnShiftBug for clustering.
  bool BreakOnAndBug = false;
  /// Neutral marker pass: rewrites scalar safe_lshift(x,y) into
  /// `safe_lshift(x,y) + (11181 & 0)`. Harmless alone (adds zero);
  /// wrong only in combination with MarkBreakBug below — the
  /// minimal-faulty-*combination* fixture.
  bool ShiftMarkBug = false;
  /// Rewrites the exact marker expression `11181 & 0` into `1`. A
  /// no-op unless ShiftMarkBug planted the marker, so the minimal
  /// faulty set is the {shift-mark, mark-break} pair.
  bool MarkBreakBug = false;

  /// Salt for the EmiDceBugRate trigger hash (per configuration).
  uint64_t BugSalt = 0;

  /// Preset: optimisations disabled (-cl-opt-disable). Bug knobs are
  /// left to the device configuration.
  static PassOptions o0() {
    PassOptions P;
    P.EnableConstFold = P.EnableSimplify = P.EnableCopyProp =
        P.EnableDCE = false;
    return P;
  }

  /// Preset: default optimising pipeline.
  static PassOptions o2() { return PassOptions(); }
};

/// An AST-level transformation over one function.
class Pass {
public:
  virtual ~Pass();
  virtual const char *name() const = 0;
  /// Transforms \p F in place (bodies may be replaced wholesale).
  virtual void runOnFunction(FunctionDecl *F, ASTContext &Ctx) = 0;
};

/// Runs a fixed sequence of passes over every function of a program.
class PassManager {
public:
  void add(std::unique_ptr<Pass> P) { Passes.push_back(std::move(P)); }

  /// Runs each pass, in order, over each function.
  void run(ASTContext &Ctx);

  /// Runs the subset of passes selected by \p EnabledMask (bit I set
  /// means pipeline position I runs, in the original order). The
  /// triage bisector probes pass subsets through this overload; the
  /// default-mask run is identical to run(Ctx).
  void run(ASTContext &Ctx, uint64_t EnabledMask);

  /// Names of scheduled passes (for reporting and tests).
  std::vector<std::string> passNames() const;

  /// Number of scheduled passes.
  size_t size() const { return Passes.size(); }

private:
  std::vector<std::unique_ptr<Pass>> Passes;
};

// Pass factories.
std::unique_ptr<Pass> createConstFoldPass(const PassOptions &Opts);
std::unique_ptr<Pass> createSimplifyPass(const PassOptions &Opts);
std::unique_ptr<Pass> createCopyPropPass();
std::unique_ptr<Pass> createDCEPass();
std::unique_ptr<Pass> createBarrierLoweringPass(const ASTContext &Ctx);
std::unique_ptr<Pass> createEmptyBlockElimPass(const PassOptions &Opts);
// Fault-injection passes (test-only; see the PassOptions knobs).
std::unique_ptr<Pass> createShiftMarkPass();
std::unique_ptr<Pass> createMarkBreakPass();
std::unique_ptr<Pass> createBreakOnShiftPass();
std::unique_ptr<Pass> createBreakOnAndPass();

/// Builds the pipeline for \p Opts: [BarrierLowering(bug)] ConstFold,
/// Simplify, CopyProp, ConstFold, Simplify, DCE (enabled subsets),
/// then any enabled fault-injection passes (after DCE so nothing
/// folds or deletes their planted shapes).
PassManager buildPipeline(const PassOptions &Opts, const ASTContext &Ctx);

} // namespace clfuzz

#endif // CLFUZZ_OPT_PASS_H
