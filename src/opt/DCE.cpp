//===- DCE.cpp - Dead code elimination pass ----------------------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// Statement-level dead-code elimination:
///
///  * code after return/break/continue within a block,
///  * pure expression statements,
///  * never-read, address-untaken, non-volatile locals (their
///    declarations and plain stores),
///  * `if` statements whose branches became empty (pure condition),
///  * stray null statements.
///
/// Iterates to a small fixpoint. This interacts with EMI pruning: a
/// fully-pruned EMI block `if (dead[i] < dead[j]) { }` is removable
/// here, changing downstream codegen exactly the way the paper's
/// optimisation-interaction argument predicts (§3.2 end).
///
//===----------------------------------------------------------------------===//

#include "minicl/ASTQueries.h"
#include "minicl/ASTRewrite.h"
#include "opt/Pass.h"

#include <set>

using namespace clfuzz;

namespace {

class DCEPass : public Pass {
public:
  const char *name() const override { return "dce"; }

  void runOnFunction(FunctionDecl *F, ASTContext &Ctx) override {
    for (int Round = 0; Round != 4; ++Round) {
      Changed = false;
      runOnce(F, Ctx);
      if (!Changed)
        break;
    }
  }

private:
  void runOnce(FunctionDecl *F, ASTContext &Ctx);

  /// True if the statement is (transitively) free of observable work.
  static bool isEmptyStmt(const Stmt *S) {
    if (isa<NullStmt>(S))
      return true;
    if (const auto *C = dyn_cast<CompoundStmt>(S)) {
      for (const Stmt *Child : C->body())
        if (!isEmptyStmt(Child))
          return false;
      return true;
    }
    return false;
  }

  static bool stopsControlFlow(const Stmt *S) {
    return isa<ReturnStmt>(S) || isa<BreakStmt>(S) ||
           isa<ContinueStmt>(S);
  }

  std::set<const VarDecl *> DeadVars;
  bool Changed = false;
};

} // namespace

void DCEPass::runOnce(FunctionDecl *F, ASTContext &Ctx) {
  // Identify dead locals: never read, address never taken, not
  // volatile, not parameters, not local-memory arrays (those may be
  // observed by other work-items).
  DeadVars.clear();
  auto Usage = collectVarUsage(F);
  std::set<const VarDecl *> Declared;
  if (F->getBody())
    forEachStmt(F->getBody(), [&Declared](const Stmt *S) {
      if (const auto *DS = dyn_cast<DeclStmt>(S))
        Declared.insert(DS->getDecl());
    });
  for (const VarDecl *D : Declared) {
    const VarUsage &U = Usage[D];
    if (U.Reads == 0 && !U.AddressTaken && !D->isVolatile() &&
        D->getAddressSpace() != AddressSpace::Local)
      DeadVars.insert(D);
  }
  // A dead variable whose stores cannot all be deleted (impure
  // right-hand sides survive for their side effects) must keep its
  // declaration, or codegen would see a dangling reference.
  if (F->getBody() && !DeadVars.empty())
    forEachStmt(F->getBody(), [this](const Stmt *S) {
      const auto *ES = dyn_cast<ExprStmt>(S);
      if (!ES)
        return;
      const auto *A = dyn_cast<AssignExpr>(ES->getExpr());
      if (!A || A->getOp() != AssignOp::Assign)
        return;
      const auto *DR = dyn_cast<DeclRef>(A->getLHS());
      if (DR && DeadVars.count(DR->getDecl()) &&
          hasSideEffects(A->getRHS()))
        DeadVars.erase(DR->getDecl());
    });

  rewriteFunction(
      Ctx, F, nullptr, [this, &Ctx](Stmt *S) -> Stmt * {
        switch (S->getKind()) {
        case Stmt::StmtKind::Compound: {
          auto *C = cast<CompoundStmt>(S);
          std::vector<Stmt *> Kept;
          bool Unreachable = false;
          for (Stmt *Child : C->body()) {
            if (Unreachable) {
              Changed = true;
              continue;
            }
            if (isa<NullStmt>(Child)) {
              Changed = true;
              continue;
            }
            Kept.push_back(Child);
            if (stopsControlFlow(Child))
              Unreachable = true;
          }
          if (Kept.size() != C->body().size())
            return Ctx.makeStmt<CompoundStmt>(std::move(Kept));
          return S;
        }
        case Stmt::StmtKind::Decl: {
          VarDecl *D = cast<DeclStmt>(S)->getDecl();
          if (!DeadVars.count(D))
            return S;
          if (D->getInit() && hasSideEffects(D->getInit()))
            return S;
          Changed = true;
          return Ctx.makeStmt<NullStmt>();
        }
        case Stmt::StmtKind::Expr: {
          Expr *E = cast<ExprStmt>(S)->getExpr();
          if (!hasSideEffects(E)) {
            Changed = true;
            return Ctx.makeStmt<NullStmt>();
          }
          // Plain store to a dead variable with a pure right-hand
          // side.
          if (const auto *A = dyn_cast<AssignExpr>(E)) {
            if (A->getOp() == AssignOp::Assign) {
              if (const auto *DR = dyn_cast<DeclRef>(A->getLHS())) {
                if (DeadVars.count(DR->getDecl()) &&
                    !hasSideEffects(A->getRHS())) {
                  Changed = true;
                  return Ctx.makeStmt<NullStmt>();
                }
              }
            }
          }
          return S;
        }
        case Stmt::StmtKind::If: {
          auto *If = cast<IfStmt>(S);
          bool ThenEmpty = isEmptyStmt(If->getThen());
          bool ElseEmpty = !If->getElse() || isEmptyStmt(If->getElse());
          if (ThenEmpty && ElseEmpty && !hasSideEffects(If->getCond())) {
            Changed = true;
            return Ctx.makeStmt<NullStmt>();
          }
          return S;
        }
        default:
          return S;
        }
      });
}

std::unique_ptr<Pass> clfuzz::createDCEPass() {
  return std::make_unique<DCEPass>();
}
