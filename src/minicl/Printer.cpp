//===- Printer.cpp - MiniCL to OpenCL C source printer ---------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "minicl/Printer.h"

#include <functional>
#include <set>
#include <sstream>

using namespace clfuzz;

namespace {

/// Stateful printer walking the AST and appending to a string stream.
class SourcePrinter {
public:
  explicit SourcePrinter(const PrinterOptions &Opts) : Opts(Opts) {}

  std::string run(const Program &Prog, const TypeContext &Types);

  void emitExpr(const Expr *E, unsigned ParentPrec);
  void emitStmt(const Stmt *S, unsigned Indent);

  std::ostringstream OS;

private:
  void emitRecord(const RecordType *RT);
  void emitFunction(const FunctionDecl *F);
  void emitVarDecl(const VarDecl *D);
  void emitDeclarator(const Type *Ty, const std::string &Name,
                      AddressSpace VarSpace, bool IsVolatile);
  void indent(unsigned Level) {
    for (unsigned I = 0, E = Level * Opts.IndentWidth; I != E; ++I)
      OS << ' ';
  }

  PrinterOptions Opts;
};

} // namespace

/// Precedence levels following C; larger binds tighter.
static unsigned binOpPrecedence(BinOp Op) {
  switch (Op) {
  case BinOp::Mul:
  case BinOp::Div:
  case BinOp::Mod:
    return 13;
  case BinOp::Add:
  case BinOp::Sub:
    return 12;
  case BinOp::Shl:
  case BinOp::Shr:
    return 11;
  case BinOp::Lt:
  case BinOp::Gt:
  case BinOp::Le:
  case BinOp::Ge:
    return 10;
  case BinOp::Eq:
  case BinOp::Ne:
    return 9;
  case BinOp::BitAnd:
    return 8;
  case BinOp::BitXor:
    return 7;
  case BinOp::BitOr:
    return 6;
  case BinOp::LAnd:
    return 5;
  case BinOp::LOr:
    return 4;
  case BinOp::Comma:
    return 1;
  }
  assert(false && "unknown binary operator");
  return 0;
}

static unsigned exprPrecedence(const Expr *E) {
  switch (E->getKind()) {
  case Expr::ExprKind::IntLiteral:
  case Expr::ExprKind::DeclRef:
  case Expr::ExprKind::VectorConstruct:
  case Expr::ExprKind::InitList:
    return 17;
  case Expr::ExprKind::Call:
  case Expr::ExprKind::BuiltinCall:
  case Expr::ExprKind::Index:
  case Expr::ExprKind::Member:
  case Expr::ExprKind::Swizzle:
    return 16;
  case Expr::ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    return (U->getOp() == UnOp::PostInc || U->getOp() == UnOp::PostDec)
               ? 16
               : 15;
  }
  case Expr::ExprKind::Cast:
    return 15;
  case Expr::ExprKind::ImplicitCast:
    return exprPrecedence(cast<ImplicitCastExpr>(E)->getSubExpr());
  case Expr::ExprKind::Binary:
    return binOpPrecedence(cast<BinaryExpr>(E)->getOp());
  case Expr::ExprKind::Conditional:
    return 3;
  case Expr::ExprKind::Assign:
    return 2;
  }
  assert(false && "unknown expression kind");
  return 0;
}

/// Spelling of a swizzle index set: .xyzw for short vectors, .sN hex
/// digits otherwise.
static std::string swizzleSpelling(const std::vector<unsigned> &Indices,
                                   unsigned BaseLanes) {
  static const char Xyzw[] = {'x', 'y', 'z', 'w'};
  static const char Hex[] = "0123456789abcdef";
  std::string S = ".";
  bool UseXyzw = BaseLanes <= 4;
  for (unsigned I : Indices)
    if (I >= 4)
      UseXyzw = false;
  if (UseXyzw) {
    for (unsigned I : Indices)
      S += Xyzw[I];
    return S;
  }
  S += 's';
  for (unsigned I : Indices)
    S += Hex[I];
  return S;
}

void SourcePrinter::emitExpr(const Expr *E, unsigned ParentPrec) {
  unsigned Prec = exprPrecedence(E);
  bool NeedParens = Prec < ParentPrec;
  if (NeedParens)
    OS << '(';

  switch (E->getKind()) {
  case Expr::ExprKind::IntLiteral: {
    const auto *Lit = cast<IntLiteral>(E);
    const auto *Ty = cast<ScalarType>(Lit->getType());
    if (Ty->isSigned()) {
      // Sign-extend the stored bit pattern to print negatives readably.
      int64_t V = static_cast<int64_t>(Lit->getValue());
      unsigned Bits = Ty->bitWidth();
      if (Bits < 64) {
        V = static_cast<int64_t>(Lit->getValue() << (64 - Bits)) >>
            (64 - Bits);
      }
      if (V == INT64_MIN) {
        // Avoid the unrepresentable literal -9223372036854775808.
        OS << "(-9223372036854775807L - 1L)";
      } else {
        OS << V;
        if (Bits == 64)
          OS << 'L';
      }
    } else {
      OS << Lit->getValue() << 'u';
      if (Ty->bitWidth() == 64)
        OS << 'L';
    }
    break;
  }
  case Expr::ExprKind::DeclRef:
    OS << cast<DeclRef>(E)->getDecl()->getName();
    break;
  case Expr::ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    if (U->getOp() == UnOp::PostInc || U->getOp() == UnOp::PostDec) {
      emitExpr(U->getSubExpr(), Prec);
      OS << unOpSpelling(U->getOp());
    } else {
      OS << unOpSpelling(U->getOp());
      // +1 keeps `- -x` from printing as `--x`.
      emitExpr(U->getSubExpr(), Prec);
    }
    break;
  }
  case Expr::ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    emitExpr(B->getLHS(), Prec);
    if (B->getOp() == BinOp::Comma)
      OS << ", ";
    else
      OS << ' ' << binOpSpelling(B->getOp()) << ' ';
    emitExpr(B->getRHS(), Prec + 1);
    break;
  }
  case Expr::ExprKind::Assign: {
    const auto *A = cast<AssignExpr>(E);
    emitExpr(A->getLHS(), Prec + 1);
    OS << ' ' << assignOpSpelling(A->getOp()) << ' ';
    emitExpr(A->getRHS(), Prec);
    break;
  }
  case Expr::ExprKind::Conditional: {
    const auto *C = cast<ConditionalExpr>(E);
    emitExpr(C->getCond(), Prec + 1);
    OS << " ? ";
    emitExpr(C->getTrueExpr(), Prec);
    OS << " : ";
    emitExpr(C->getFalseExpr(), Prec);
    break;
  }
  case Expr::ExprKind::Call: {
    const auto *C = cast<CallExpr>(E);
    OS << C->getCallee()->getName() << '(';
    for (size_t I = 0, N = C->args().size(); I != N; ++I) {
      if (I != 0)
        OS << ", ";
      emitExpr(C->args()[I], 2);
    }
    OS << ')';
    break;
  }
  case Expr::ExprKind::BuiltinCall: {
    const auto *C = cast<BuiltinCallExpr>(E);
    if (C->getBuiltin() == Builtin::ConvertVector)
      OS << "convert_" << C->getType()->str();
    else
      OS << builtinName(C->getBuiltin());
    OS << '(';
    for (size_t I = 0, N = C->args().size(); I != N; ++I) {
      if (I != 0)
        OS << ", ";
      emitExpr(C->args()[I], 2);
    }
    OS << ')';
    break;
  }
  case Expr::ExprKind::Index: {
    const auto *Ix = cast<IndexExpr>(E);
    emitExpr(Ix->getBase(), Prec);
    OS << '[';
    emitExpr(Ix->getIndex(), 1);
    OS << ']';
    break;
  }
  case Expr::ExprKind::Member: {
    const auto *M = cast<MemberExpr>(E);
    emitExpr(M->getBase(), Prec);
    OS << (M->isArrow() ? "->" : ".");
    OS << M->getRecordType()->getField(M->getFieldIndex()).Name;
    break;
  }
  case Expr::ExprKind::Swizzle: {
    const auto *Sw = cast<SwizzleExpr>(E);
    emitExpr(Sw->getBase(), Prec);
    const auto *BaseVT = cast<VectorType>(Sw->getBase()->getType());
    OS << swizzleSpelling(Sw->indices(), BaseVT->getNumLanes());
    break;
  }
  case Expr::ExprKind::Cast: {
    const auto *C = cast<CastExpr>(E);
    OS << '(' << C->getType()->str() << ')';
    emitExpr(C->getSubExpr(), Prec);
    break;
  }
  case Expr::ExprKind::ImplicitCast:
    // Transparent in source form.
    emitExpr(cast<ImplicitCastExpr>(E)->getSubExpr(), ParentPrec);
    break;
  case Expr::ExprKind::VectorConstruct: {
    const auto *V = cast<VectorConstructExpr>(E);
    OS << '(' << V->getType()->str() << ")(";
    for (size_t I = 0, N = V->elements().size(); I != N; ++I) {
      if (I != 0)
        OS << ", ";
      emitExpr(V->elements()[I], 2);
    }
    OS << ')';
    break;
  }
  case Expr::ExprKind::InitList: {
    const auto *IL = cast<InitListExpr>(E);
    OS << "{ ";
    for (size_t I = 0, N = IL->inits().size(); I != N; ++I) {
      if (I != 0)
        OS << ", ";
      emitExpr(IL->inits()[I], 2);
    }
    OS << " }";
    break;
  }
  }

  if (NeedParens)
    OS << ')';
}

/// Splits a (possibly nested-array) type into its element type and the
/// trailing array dimension suffix for declarator printing.
static const Type *stripArraySuffix(const Type *Ty, std::string &Suffix) {
  while (const auto *AT = dyn_cast<ArrayType>(Ty)) {
    Suffix += '[';
    Suffix += std::to_string(AT->getNumElements());
    Suffix += ']';
    Ty = AT->getElementType();
  }
  return Ty;
}

void SourcePrinter::emitDeclarator(const Type *Ty, const std::string &Name,
                                   AddressSpace VarSpace, bool IsVolatile) {
  if (VarSpace != AddressSpace::Private)
    OS << addressSpaceName(VarSpace) << ' ';
  if (IsVolatile)
    OS << "volatile ";
  std::string Suffix;
  const Type *Base = stripArraySuffix(Ty, Suffix);
  if (const auto *PT = dyn_cast<PointerType>(Base)) {
    if (PT->getAddressSpace() != AddressSpace::Private)
      OS << addressSpaceName(PT->getAddressSpace()) << ' ';
    if (PT->isPointeeVolatile())
      OS << "volatile ";
    OS << PT->getPointeeType()->str() << " *" << Name;
  } else {
    OS << Base->str() << ' ' << Name;
  }
  OS << Suffix;
}

void SourcePrinter::emitVarDecl(const VarDecl *D) {
  emitDeclarator(D->getType(), D->getName(), D->getAddressSpace(),
                 D->isVolatile());
  if (D->getInit()) {
    OS << " = ";
    emitExpr(D->getInit(), 2);
  }
}

void SourcePrinter::emitStmt(const Stmt *S, unsigned Indent) {
  switch (S->getKind()) {
  case Stmt::StmtKind::Compound: {
    const auto *C = cast<CompoundStmt>(S);
    indent(Indent);
    OS << "{\n";
    for (const Stmt *Child : C->body())
      emitStmt(Child, Indent + 1);
    indent(Indent);
    OS << "}\n";
    break;
  }
  case Stmt::StmtKind::Decl:
    indent(Indent);
    emitVarDecl(cast<DeclStmt>(S)->getDecl());
    OS << ";\n";
    break;
  case Stmt::StmtKind::Expr:
    indent(Indent);
    emitExpr(cast<ExprStmt>(S)->getExpr(), 0);
    OS << ";\n";
    break;
  case Stmt::StmtKind::If: {
    const auto *If = cast<IfStmt>(S);
    indent(Indent);
    if (If->isEmiBlock())
      OS << "/* EMI " << If->getEmiId() << " */ ";
    OS << "if (";
    emitExpr(If->getCond(), 0);
    OS << ")\n";
    emitStmt(If->getThen(), Indent + !isa<CompoundStmt>(If->getThen()));
    if (If->getElse()) {
      indent(Indent);
      OS << "else\n";
      emitStmt(If->getElse(), Indent + !isa<CompoundStmt>(If->getElse()));
    }
    break;
  }
  case Stmt::StmtKind::For: {
    const auto *For = cast<ForStmt>(S);
    indent(Indent);
    OS << "for (";
    if (const Stmt *Init = For->getInit()) {
      if (const auto *DS = dyn_cast<DeclStmt>(Init))
        emitVarDecl(DS->getDecl());
      else
        emitExpr(cast<ExprStmt>(Init)->getExpr(), 0);
    }
    OS << "; ";
    if (For->getCond())
      emitExpr(For->getCond(), 0);
    OS << "; ";
    if (For->getStep())
      emitExpr(For->getStep(), 0);
    OS << ")\n";
    emitStmt(For->getBody(), Indent + !isa<CompoundStmt>(For->getBody()));
    break;
  }
  case Stmt::StmtKind::While: {
    const auto *W = cast<WhileStmt>(S);
    indent(Indent);
    OS << "while (";
    emitExpr(W->getCond(), 0);
    OS << ")\n";
    emitStmt(W->getBody(), Indent + !isa<CompoundStmt>(W->getBody()));
    break;
  }
  case Stmt::StmtKind::Do: {
    const auto *D = cast<DoStmt>(S);
    indent(Indent);
    OS << "do\n";
    emitStmt(D->getBody(), Indent + !isa<CompoundStmt>(D->getBody()));
    indent(Indent);
    OS << "while (";
    emitExpr(D->getCond(), 0);
    OS << ");\n";
    break;
  }
  case Stmt::StmtKind::Return: {
    const auto *R = cast<ReturnStmt>(S);
    indent(Indent);
    OS << "return";
    if (R->getValue()) {
      OS << ' ';
      emitExpr(R->getValue(), 0);
    }
    OS << ";\n";
    break;
  }
  case Stmt::StmtKind::Break:
    indent(Indent);
    OS << "break;\n";
    break;
  case Stmt::StmtKind::Continue:
    indent(Indent);
    OS << "continue;\n";
    break;
  case Stmt::StmtKind::Barrier: {
    const auto *B = cast<BarrierStmt>(S);
    indent(Indent);
    OS << "barrier(";
    bool First = true;
    if (B->getFenceFlags() & BarrierStmt::LocalFence) {
      OS << "CLK_LOCAL_MEM_FENCE";
      First = false;
    }
    if (B->getFenceFlags() & BarrierStmt::GlobalFence) {
      if (!First)
        OS << " | ";
      OS << "CLK_GLOBAL_MEM_FENCE";
    }
    OS << ");\n";
    break;
  }
  case Stmt::StmtKind::Null:
    indent(Indent);
    OS << ";\n";
    break;
  }
}

void SourcePrinter::emitRecord(const RecordType *RT) {
  OS << (RT->isUnion() ? "union " : "struct ") << RT->getName() << " {\n";
  for (const RecordField &F : RT->fields()) {
    indent(1);
    emitDeclarator(F.Ty, F.Name, AddressSpace::Private, F.IsVolatile);
    OS << ";\n";
  }
  OS << "};\n\n";
}

void SourcePrinter::emitFunction(const FunctionDecl *F) {
  if (F->isKernel())
    OS << "kernel ";
  OS << F->getReturnType()->str() << ' ' << F->getName() << '(';
  for (size_t I = 0, N = F->params().size(); I != N; ++I) {
    if (I != 0)
      OS << ", ";
    const VarDecl *P = F->params()[I];
    emitDeclarator(P->getType(), P->getName(), P->getAddressSpace(),
                   P->isVolatile());
  }
  OS << ")\n";
  if (F->getBody())
    emitStmt(F->getBody(), 0);
  else
    OS << ";\n";
  OS << '\n';
}

/// Collects record types referenced by \p Ty (so definitions can be
/// emitted in dependency order).
static void collectRecordDeps(const Type *Ty,
                              std::vector<const RecordType *> &Deps) {
  if (const auto *RT = dyn_cast<RecordType>(Ty)) {
    Deps.push_back(RT);
    return;
  }
  if (const auto *AT = dyn_cast<ArrayType>(Ty))
    collectRecordDeps(AT->getElementType(), Deps);
  // Pointer fields do not require a complete definition; skip them.
}

std::string SourcePrinter::run(const Program &Prog,
                               const TypeContext &Types) {
  if (Opts.EmitSafeMathPrelude)
    OS << safeMathPrelude() << '\n';
  // Emit records so that every by-value field's record precedes its
  // user (DFS post-order).
  std::vector<const RecordType *> Ordered;
  std::set<const RecordType *> Visited;
  std::function<void(const RecordType *)> Visit =
      [&](const RecordType *RT) {
        if (!Visited.insert(RT).second)
          return;
        for (const RecordField &F : RT->fields()) {
          std::vector<const RecordType *> Deps;
          collectRecordDeps(F.Ty, Deps);
          for (const RecordType *D : Deps)
            Visit(D);
        }
        Ordered.push_back(RT);
      };
  for (const RecordType *RT : Types.records())
    Visit(RT);
  for (const RecordType *RT : Ordered)
    emitRecord(RT);
  // Forward prototypes permit any call order among helpers.
  bool AnyProto = false;
  for (const FunctionDecl *F : Prog.functions()) {
    if (F->isKernel() || !F->getBody())
      continue;
    OS << F->getReturnType()->str() << ' ' << F->getName() << '(';
    for (size_t I = 0, N = F->params().size(); I != N; ++I) {
      if (I != 0)
        OS << ", ";
      const VarDecl *P = F->params()[I];
      emitDeclarator(P->getType(), P->getName(), P->getAddressSpace(),
                     P->isVolatile());
    }
    OS << ");\n";
    AnyProto = true;
  }
  if (AnyProto)
    OS << '\n';
  for (const FunctionDecl *F : Prog.functions())
    emitFunction(F);
  return OS.str();
}

std::string clfuzz::printProgram(const Program &Prog,
                                 const TypeContext &Types,
                                 const PrinterOptions &Opts) {
  SourcePrinter P(Opts);
  return P.run(Prog, Types);
}

std::string clfuzz::printExpr(const Expr *E) {
  SourcePrinter P((PrinterOptions()));
  P.emitExpr(E, 0);
  return P.OS.str();
}

std::string clfuzz::printStmt(const Stmt *S, unsigned Indent,
                              unsigned IndentWidth) {
  PrinterOptions Opts;
  Opts.IndentWidth = IndentWidth;
  SourcePrinter P(Opts);
  P.emitStmt(S, Indent);
  return P.OS.str();
}

std::string clfuzz::safeMathPrelude() {
  return R"(// Safe math wrappers in the style of Csmith/CLsmith (paper §4.1).
// Division/modulo by zero and INT_MIN/-1 fall back to the left operand;
// shift amounts are taken modulo the width; negation of INT_MIN yields
// INT_MIN (two's complement wrap); clamp guards min > max.
#define safe_add(a, b) ((a) + (b))
#define safe_sub(a, b) ((a) - (b))
#define safe_mul(a, b) ((a) * (b))
#define safe_div(a, b) (((b) == 0) ? (a) : ((a) / (b)))
#define safe_mod(a, b) (((b) == 0) ? (a) : ((a) % (b)))
#define safe_lshift(a, b) ((a) << ((b) & (8 * sizeof(a) - 1)))
#define safe_rshift(a, b) ((a) >> ((b) & (8 * sizeof(a) - 1)))
#define safe_unary_minus(a) (-(a))
#define safe_clamp(x, lo, hi) (((lo) > (hi)) ? (x) : clamp((x), (lo), (hi)))
#define safe_rotate(x, y) rotate((x), (y))
)";
}
