//===- IntOps.cpp - Shared integer operator semantics ----------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "minicl/IntOps.h"

using namespace clfuzz;

/// Applies an atomic read-modify-write operation.
uint64_t clfuzz::evalAtomic(Builtin B, bool Signed, uint64_t Old, uint64_t Arg) {
  uint32_t O = static_cast<uint32_t>(Old);
  uint32_t A = static_cast<uint32_t>(Arg);
  switch (B) {
  case Builtin::AtomicAdd:
    return static_cast<uint32_t>(O + A);
  case Builtin::AtomicSub:
    return static_cast<uint32_t>(O - A);
  case Builtin::AtomicInc:
    return static_cast<uint32_t>(O + 1);
  case Builtin::AtomicDec:
    return static_cast<uint32_t>(O - 1);
  case Builtin::AtomicMin:
    if (Signed)
      return static_cast<int32_t>(O) < static_cast<int32_t>(A) ? O : A;
    return O < A ? O : A;
  case Builtin::AtomicMax:
    if (Signed)
      return static_cast<int32_t>(O) > static_cast<int32_t>(A) ? O : A;
    return O > A ? O : A;
  case Builtin::AtomicAnd:
    return O & A;
  case Builtin::AtomicOr:
    return O | A;
  case Builtin::AtomicXor:
    return O ^ A;
  case Builtin::AtomicXchg:
    return A;
  default:
    assert(false && "unexpected atomic builtin");
    return O;
  }
}
