//===- Type.cpp - MiniCL type system --------------------------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "minicl/Type.h"

#include <sstream>

using namespace clfuzz;

const char *clfuzz::addressSpaceName(AddressSpace AS) {
  switch (AS) {
  case AddressSpace::Private:
    return "private";
  case AddressSpace::Global:
    return "global";
  case AddressSpace::Local:
    return "local";
  case AddressSpace::Constant:
    return "constant";
  }
  assert(false && "unknown address space");
  return "";
}

unsigned ScalarType::rank() const {
  switch (SK) {
  case ScalarKind::Bool:
    return 1;
  case ScalarKind::Char:
  case ScalarKind::UChar:
    return 2;
  case ScalarKind::Short:
  case ScalarKind::UShort:
    return 3;
  case ScalarKind::Int:
  case ScalarKind::UInt:
    return 4;
  case ScalarKind::Long:
  case ScalarKind::ULong:
  case ScalarKind::SizeT:
    return 5;
  }
  assert(false && "unknown scalar kind");
  return 0;
}

const char *ScalarType::name() const {
  switch (SK) {
  case ScalarKind::Bool:
    return "int"; // OpenCL C has no bool result type; comparisons yield int.
  case ScalarKind::Char:
    return "char";
  case ScalarKind::UChar:
    return "uchar";
  case ScalarKind::Short:
    return "short";
  case ScalarKind::UShort:
    return "ushort";
  case ScalarKind::Int:
    return "int";
  case ScalarKind::UInt:
    return "uint";
  case ScalarKind::Long:
    return "long";
  case ScalarKind::ULong:
    return "ulong";
  case ScalarKind::SizeT:
    return "size_t";
  }
  assert(false && "unknown scalar kind");
  return "";
}

int RecordType::fieldIndex(const std::string &FieldName) const {
  for (unsigned I = 0, E = Fields.size(); I != E; ++I)
    if (Fields[I].Name == FieldName)
      return static_cast<int>(I);
  return -1;
}

std::string Type::str() const {
  switch (Kind) {
  case TypeKind::Void:
    return "void";
  case TypeKind::Scalar:
    return cast<ScalarType>(this)->name();
  case TypeKind::Vector: {
    const auto *VT = cast<VectorType>(this);
    std::ostringstream OS;
    OS << VT->getElementType()->name() << VT->getNumLanes();
    return OS.str();
  }
  case TypeKind::Record: {
    const auto *RT = cast<RecordType>(this);
    return (RT->isUnion() ? "union " : "struct ") + RT->getName();
  }
  case TypeKind::Array: {
    const auto *AT = cast<ArrayType>(this);
    std::ostringstream OS;
    OS << AT->getElementType()->str() << '[' << AT->getNumElements()
       << ']';
    return OS.str();
  }
  case TypeKind::Pointer: {
    const auto *PT = cast<PointerType>(this);
    std::string S;
    if (PT->getAddressSpace() != AddressSpace::Private) {
      S += addressSpaceName(PT->getAddressSpace());
      S += ' ';
    }
    if (PT->isPointeeVolatile())
      S += "volatile ";
    S += PT->getPointeeType()->str();
    S += " *";
    return S;
  }
  }
  assert(false && "unknown type kind");
  return "";
}

TypeContext::TypeContext()
    : Scalars{ScalarType(ScalarKind::Bool),   ScalarType(ScalarKind::Char),
              ScalarType(ScalarKind::UChar),  ScalarType(ScalarKind::Short),
              ScalarType(ScalarKind::UShort), ScalarType(ScalarKind::Int),
              ScalarType(ScalarKind::UInt),   ScalarType(ScalarKind::Long),
              ScalarType(ScalarKind::ULong),  ScalarType(ScalarKind::SizeT)} {
}

const ScalarType *TypeContext::scalar(ScalarKind SK) const {
  return &Scalars[static_cast<unsigned>(SK)];
}

const VectorType *TypeContext::vector(const ScalarType *Elem,
                                      unsigned NumLanes) {
  auto Key = std::make_pair(Elem, NumLanes);
  auto It = Vectors.find(Key);
  if (It != Vectors.end())
    return It->second;
  const VectorType *Result = Types.create<VectorType>(Elem, NumLanes);
  Vectors.emplace(Key, Result);
  return Result;
}

const ArrayType *TypeContext::array(const Type *Elem,
                                    uint64_t NumElements) {
  auto Key = std::make_pair(Elem, NumElements);
  auto It = Arrays.find(Key);
  if (It != Arrays.end())
    return It->second;
  const ArrayType *Result = Types.create<ArrayType>(Elem, NumElements);
  Arrays.emplace(Key, Result);
  return Result;
}

const PointerType *TypeContext::pointer(const Type *Pointee,
                                        AddressSpace AS,
                                        bool PointeeVolatile) {
  auto Key = std::make_tuple(Pointee, AS, PointeeVolatile);
  auto It = Pointers.find(Key);
  if (It != Pointers.end())
    return It->second;
  const PointerType *Result =
      Types.create<PointerType>(Pointee, AS, PointeeVolatile);
  Pointers.emplace(Key, Result);
  return Result;
}

RecordType *TypeContext::createRecord(std::string Name, bool IsUnion) {
  RecordType *Result = Types.create<RecordType>(std::move(Name), IsUnion);
  RecordList.push_back(Result);
  return Result;
}

RecordType *TypeContext::findRecord(const std::string &Name) const {
  for (RecordType *RT : RecordList)
    if (RT->getName() == Name)
      return RT;
  return nullptr;
}
