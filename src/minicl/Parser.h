//===- Parser.h - MiniCL recursive-descent parser ---------------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for MiniCL. Produces fully *typed* ASTs:
/// expression nodes are typed as they are built (via TypeRules), so a
/// successful parse yields a tree the optimiser and code generator can
/// consume directly. Used by the mini Parboil/Rodinia corpus, the
/// Figure 1/2 bug-gallery kernels, and parser round-trip tests.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_MINICL_PARSER_H
#define CLFUZZ_MINICL_PARSER_H

#include "minicl/AST.h"

#include <string>

namespace clfuzz {

/// Parses \p Source into \p Ctx's program. Returns true on success;
/// on failure diagnostics are left in \p Diags and the program may be
/// partially populated.
bool parseProgram(const std::string &Source, ASTContext &Ctx,
                  DiagEngine &Diags);

} // namespace clfuzz

#endif // CLFUZZ_MINICL_PARSER_H
