//===- ASTClone.h - Deep copy of a parsed translation unit ------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep-clones an ASTContext: program, type table and every decl
/// reference land in a fresh context with no pointers back into the
/// source. This is what lets a campaign column parse its kernel ONCE
/// and still run AST-mutating pass pipelines per cell — each
/// optimising cell clones the shared front end and hands the private
/// copy to the PassManager, instead of re-running parse + sema
/// (device/Driver.cpp).
///
/// The clone is structurally identical to the source: printProgram on
/// both yields the same text (pinned by CompilePipelineConformanceTest)
/// and every interning relation is preserved — types that were
/// pointer-equal in the source are pointer-equal in the clone, record
/// types are recreated in source creation order (front-end checks scan
/// records in order, so error selection must not change), and shared
/// decl references stay shared.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_MINICL_ASTCLONE_H
#define CLFUZZ_MINICL_ASTCLONE_H

#include "minicl/AST.h"

#include <memory>

namespace clfuzz {

/// Returns a fresh context holding a complete deep copy of \p Src.
/// The result owns all of its nodes and types; \p Src is untouched and
/// the two contexts have independent lifetimes. (Returned by pointer
/// because ASTContext is immovable: its TypeContext hands out interior
/// pointers to by-value scalar singletons.)
std::unique_ptr<ASTContext> cloneContext(const ASTContext &Src);

} // namespace clfuzz

#endif // CLFUZZ_MINICL_ASTCLONE_H
