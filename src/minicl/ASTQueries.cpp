//===- ASTQueries.cpp - Read-only AST predicates ----------------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "minicl/ASTQueries.h"

using namespace clfuzz;

/// Walks an expression's direct children.
static void forEachChild(const Expr *E,
                         const std::function<void(const Expr *)> &Fn) {
  switch (E->getKind()) {
  case Expr::ExprKind::IntLiteral:
  case Expr::ExprKind::DeclRef:
    return;
  case Expr::ExprKind::Unary:
    Fn(cast<UnaryExpr>(E)->getSubExpr());
    return;
  case Expr::ExprKind::Binary:
    Fn(cast<BinaryExpr>(E)->getLHS());
    Fn(cast<BinaryExpr>(E)->getRHS());
    return;
  case Expr::ExprKind::Assign:
    Fn(cast<AssignExpr>(E)->getLHS());
    Fn(cast<AssignExpr>(E)->getRHS());
    return;
  case Expr::ExprKind::Conditional:
    Fn(cast<ConditionalExpr>(E)->getCond());
    Fn(cast<ConditionalExpr>(E)->getTrueExpr());
    Fn(cast<ConditionalExpr>(E)->getFalseExpr());
    return;
  case Expr::ExprKind::Call:
    for (const Expr *A : cast<CallExpr>(E)->args())
      Fn(A);
    return;
  case Expr::ExprKind::BuiltinCall:
    for (const Expr *A : cast<BuiltinCallExpr>(E)->args())
      Fn(A);
    return;
  case Expr::ExprKind::Index:
    Fn(cast<IndexExpr>(E)->getBase());
    Fn(cast<IndexExpr>(E)->getIndex());
    return;
  case Expr::ExprKind::Member:
    Fn(cast<MemberExpr>(E)->getBase());
    return;
  case Expr::ExprKind::Swizzle:
    Fn(cast<SwizzleExpr>(E)->getBase());
    return;
  case Expr::ExprKind::Cast:
    Fn(cast<CastExpr>(E)->getSubExpr());
    return;
  case Expr::ExprKind::ImplicitCast:
    Fn(cast<ImplicitCastExpr>(E)->getSubExpr());
    return;
  case Expr::ExprKind::VectorConstruct:
    for (const Expr *Elem : cast<VectorConstructExpr>(E)->elements())
      Fn(Elem);
    return;
  case Expr::ExprKind::InitList:
    for (const Expr *Sub : cast<InitListExpr>(E)->inits())
      Fn(Sub);
    return;
  }
}

/// True if the lvalue expression denotes a volatile object.
static bool isVolatileLValue(const Expr *E) {
  switch (E->getKind()) {
  case Expr::ExprKind::DeclRef:
    return cast<DeclRef>(E)->getDecl()->isVolatile();
  case Expr::ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    if (U->getOp() != UnOp::Deref)
      return false;
    const auto *PT = dyn_cast<PointerType>(U->getSubExpr()->getType());
    return PT && PT->isPointeeVolatile();
  }
  case Expr::ExprKind::Index:
    return isVolatileLValue(cast<IndexExpr>(E)->getBase());
  case Expr::ExprKind::Member: {
    const auto *M = cast<MemberExpr>(E);
    if (M->getRecordType()->getField(M->getFieldIndex()).IsVolatile)
      return true;
    if (M->isArrow()) {
      const auto *PT = cast<PointerType>(M->getBase()->getType());
      return PT->isPointeeVolatile();
    }
    return isVolatileLValue(M->getBase());
  }
  case Expr::ExprKind::Swizzle:
    return isVolatileLValue(cast<SwizzleExpr>(E)->getBase());
  default:
    return false;
  }
}

bool clfuzz::hasSideEffects(const Expr *E) {
  switch (E->getKind()) {
  case Expr::ExprKind::Assign:
    return true;
  case Expr::ExprKind::Call:
    return true; // conservative: any call may write memory
  case Expr::ExprKind::BuiltinCall:
    if (isAtomicBuiltin(cast<BuiltinCallExpr>(E)->getBuiltin()))
      return true;
    break;
  case Expr::ExprKind::Unary:
    if (isIncDecOp(cast<UnaryExpr>(E)->getOp()))
      return true;
    break;
  case Expr::ExprKind::DeclRef:
  case Expr::ExprKind::Member:
  case Expr::ExprKind::Index:
    if (isVolatileLValue(E))
      return true;
    break;
  default:
    break;
  }
  bool Any = false;
  forEachChild(E, [&Any](const Expr *Child) {
    if (hasSideEffects(Child))
      Any = true;
  });
  return Any;
}

bool clfuzz::readsVolatile(const Expr *E) {
  if (isVolatileLValue(E))
    return true;
  bool Any = false;
  forEachChild(E, [&Any](const Expr *Child) {
    if (readsVolatile(Child))
      Any = true;
  });
  return Any;
}

void clfuzz::forEachStmt(const Stmt *S,
                         const std::function<void(const Stmt *)> &Fn) {
  Fn(S);
  switch (S->getKind()) {
  case Stmt::StmtKind::Compound:
    for (const Stmt *Child : cast<CompoundStmt>(S)->body())
      forEachStmt(Child, Fn);
    return;
  case Stmt::StmtKind::If: {
    const auto *If = cast<IfStmt>(S);
    forEachStmt(If->getThen(), Fn);
    if (If->getElse())
      forEachStmt(If->getElse(), Fn);
    return;
  }
  case Stmt::StmtKind::For: {
    const auto *For = cast<ForStmt>(S);
    if (For->getInit())
      forEachStmt(For->getInit(), Fn);
    forEachStmt(For->getBody(), Fn);
    return;
  }
  case Stmt::StmtKind::While:
    forEachStmt(cast<WhileStmt>(S)->getBody(), Fn);
    return;
  case Stmt::StmtKind::Do:
    forEachStmt(cast<DoStmt>(S)->getBody(), Fn);
    return;
  default:
    return;
  }
}

void clfuzz::forEachExpr(const Stmt *S,
                         const std::function<void(const Expr *)> &Fn) {
  std::function<void(const Expr *)> Walk = [&](const Expr *E) {
    Fn(E);
    forEachChild(E, Walk);
  };
  forEachStmt(S, [&](const Stmt *Node) {
    switch (Node->getKind()) {
    case Stmt::StmtKind::Decl:
      if (const Expr *Init = cast<DeclStmt>(Node)->getDecl()->getInit())
        Walk(Init);
      return;
    case Stmt::StmtKind::Expr:
      Walk(cast<ExprStmt>(Node)->getExpr());
      return;
    case Stmt::StmtKind::If:
      Walk(cast<IfStmt>(Node)->getCond());
      return;
    case Stmt::StmtKind::For: {
      const auto *For = cast<ForStmt>(Node);
      if (For->getCond())
        Walk(For->getCond());
      if (For->getStep())
        Walk(For->getStep());
      return;
    }
    case Stmt::StmtKind::While:
      Walk(cast<WhileStmt>(Node)->getCond());
      return;
    case Stmt::StmtKind::Do:
      Walk(cast<DoStmt>(Node)->getCond());
      return;
    case Stmt::StmtKind::Return:
      if (const Expr *V = cast<ReturnStmt>(Node)->getValue())
        Walk(V);
      return;
    default:
      return;
    }
  });
}

bool clfuzz::forEachStmtUntil(const Stmt *S,
                              const std::function<bool(const Stmt *)> &Fn) {
  if (Fn(S))
    return true;
  switch (S->getKind()) {
  case Stmt::StmtKind::Compound:
    for (const Stmt *Child : cast<CompoundStmt>(S)->body())
      if (forEachStmtUntil(Child, Fn))
        return true;
    return false;
  case Stmt::StmtKind::If: {
    const auto *If = cast<IfStmt>(S);
    if (forEachStmtUntil(If->getThen(), Fn))
      return true;
    return If->getElse() && forEachStmtUntil(If->getElse(), Fn);
  }
  case Stmt::StmtKind::For: {
    const auto *For = cast<ForStmt>(S);
    if (For->getInit() && forEachStmtUntil(For->getInit(), Fn))
      return true;
    return forEachStmtUntil(For->getBody(), Fn);
  }
  case Stmt::StmtKind::While:
    return forEachStmtUntil(cast<WhileStmt>(S)->getBody(), Fn);
  case Stmt::StmtKind::Do:
    return forEachStmtUntil(cast<DoStmt>(S)->getBody(), Fn);
  default:
    return false;
  }
}

bool clfuzz::forEachExprUntil(const Stmt *S,
                              const std::function<bool(const Expr *)> &Fn) {
  // Same walk as forEachExpr (statement roots in forEachStmt order,
  // each expression tree pre-order), with early exit threaded through.
  std::function<bool(const Expr *)> Walk = [&](const Expr *E) -> bool {
    if (Fn(E))
      return true;
    bool Stopped = false;
    switch (E->getKind()) {
    case Expr::ExprKind::IntLiteral:
    case Expr::ExprKind::DeclRef:
      return false;
    case Expr::ExprKind::Unary:
      return Walk(cast<UnaryExpr>(E)->getSubExpr());
    case Expr::ExprKind::Binary:
      return Walk(cast<BinaryExpr>(E)->getLHS()) ||
             Walk(cast<BinaryExpr>(E)->getRHS());
    case Expr::ExprKind::Assign:
      return Walk(cast<AssignExpr>(E)->getLHS()) ||
             Walk(cast<AssignExpr>(E)->getRHS());
    case Expr::ExprKind::Conditional:
      return Walk(cast<ConditionalExpr>(E)->getCond()) ||
             Walk(cast<ConditionalExpr>(E)->getTrueExpr()) ||
             Walk(cast<ConditionalExpr>(E)->getFalseExpr());
    case Expr::ExprKind::Call:
      for (const Expr *A : cast<CallExpr>(E)->args())
        Stopped = Stopped || Walk(A);
      return Stopped;
    case Expr::ExprKind::BuiltinCall:
      for (const Expr *A : cast<BuiltinCallExpr>(E)->args())
        Stopped = Stopped || Walk(A);
      return Stopped;
    case Expr::ExprKind::Index:
      return Walk(cast<IndexExpr>(E)->getBase()) ||
             Walk(cast<IndexExpr>(E)->getIndex());
    case Expr::ExprKind::Member:
      return Walk(cast<MemberExpr>(E)->getBase());
    case Expr::ExprKind::Swizzle:
      return Walk(cast<SwizzleExpr>(E)->getBase());
    case Expr::ExprKind::Cast:
      return Walk(cast<CastExpr>(E)->getSubExpr());
    case Expr::ExprKind::ImplicitCast:
      return Walk(cast<ImplicitCastExpr>(E)->getSubExpr());
    case Expr::ExprKind::VectorConstruct:
      for (const Expr *Elem : cast<VectorConstructExpr>(E)->elements())
        Stopped = Stopped || Walk(Elem);
      return Stopped;
    case Expr::ExprKind::InitList:
      for (const Expr *Sub : cast<InitListExpr>(E)->inits())
        Stopped = Stopped || Walk(Sub);
      return Stopped;
    }
    return false;
  };
  return forEachStmtUntil(S, [&](const Stmt *Node) -> bool {
    switch (Node->getKind()) {
    case Stmt::StmtKind::Decl:
      if (const Expr *Init = cast<DeclStmt>(Node)->getDecl()->getInit())
        return Walk(Init);
      return false;
    case Stmt::StmtKind::Expr:
      return Walk(cast<ExprStmt>(Node)->getExpr());
    case Stmt::StmtKind::If:
      return Walk(cast<IfStmt>(Node)->getCond());
    case Stmt::StmtKind::For: {
      const auto *For = cast<ForStmt>(Node);
      if (For->getCond() && Walk(For->getCond()))
        return true;
      return For->getStep() && Walk(For->getStep());
    }
    case Stmt::StmtKind::While:
      return Walk(cast<WhileStmt>(Node)->getCond());
    case Stmt::StmtKind::Do:
      return Walk(cast<DoStmt>(Node)->getCond());
    case Stmt::StmtKind::Return:
      if (const Expr *V = cast<ReturnStmt>(Node)->getValue())
        return Walk(V);
      return false;
    default:
      return false;
    }
  });
}

bool clfuzz::containsBarrier(const Stmt *S) {
  bool Found = false;
  forEachStmt(S, [&Found](const Stmt *Node) {
    if (isa<BarrierStmt>(Node))
      Found = true;
  });
  return Found;
}

bool clfuzz::functionContainsBarrier(const FunctionDecl *F) {
  return F->getBody() && containsBarrier(F->getBody());
}

bool clfuzz::containsReturn(const Stmt *S) {
  bool Found = false;
  forEachStmt(S, [&Found](const Stmt *Node) {
    if (isa<ReturnStmt>(Node))
      Found = true;
  });
  return Found;
}

bool clfuzz::containsAtomic(const Stmt *S) {
  bool Found = false;
  forEachExpr(S, [&Found](const Expr *E) {
    if (const auto *C = dyn_cast<BuiltinCallExpr>(E))
      if (isAtomicBuiltin(C->getBuiltin()))
        Found = true;
  });
  return Found;
}

/// Recursive helper for containsFreeBreakOrContinue: loops capture
/// break/continue, so the walk stops at nested loops.
static bool hasFreeJump(const Stmt *S) {
  switch (S->getKind()) {
  case Stmt::StmtKind::Break:
  case Stmt::StmtKind::Continue:
    return true;
  case Stmt::StmtKind::Compound:
    for (const Stmt *Child : cast<CompoundStmt>(S)->body())
      if (hasFreeJump(Child))
        return true;
    return false;
  case Stmt::StmtKind::If: {
    const auto *If = cast<IfStmt>(S);
    if (hasFreeJump(If->getThen()))
      return true;
    return If->getElse() && hasFreeJump(If->getElse());
  }
  case Stmt::StmtKind::For:
  case Stmt::StmtKind::While:
  case Stmt::StmtKind::Do:
    return false; // nested loop captures its jumps
  default:
    return false;
  }
}

bool clfuzz::containsFreeBreakOrContinue(const Stmt *S) {
  return hasFreeJump(S);
}

std::set<const VarDecl *>
clfuzz::collectAddressTaken(const FunctionDecl *F) {
  std::set<const VarDecl *> Result;
  if (!F->getBody())
    return Result;
  forEachExpr(F->getBody(), [&Result](const Expr *E) {
    const auto *U = dyn_cast<UnaryExpr>(E);
    if (!U || U->getOp() != UnOp::AddrOf)
      return;
    // Walk down to the root object of the lvalue.
    const Expr *Obj = U->getSubExpr();
    for (;;) {
      if (const auto *M = dyn_cast<MemberExpr>(Obj)) {
        if (M->isArrow())
          break;
        Obj = M->getBase();
        continue;
      }
      if (const auto *Ix = dyn_cast<IndexExpr>(Obj)) {
        if (isa<PointerType>(Ix->getBase()->getType()))
          break;
        Obj = Ix->getBase();
        continue;
      }
      break;
    }
    if (const auto *DR = dyn_cast<DeclRef>(Obj))
      Result.insert(DR->getDecl());
  });
  return Result;
}

std::map<const VarDecl *, VarUsage>
clfuzz::collectVarUsage(const FunctionDecl *F) {
  std::map<const VarDecl *, VarUsage> Usage;
  if (!F->getBody())
    return Usage;
  std::set<const VarDecl *> Taken = collectAddressTaken(F);

  std::function<void(const Expr *, bool)> Walk = [&](const Expr *E,
                                                     bool IsStoreTarget) {
    switch (E->getKind()) {
    case Expr::ExprKind::DeclRef: {
      const VarDecl *D = cast<DeclRef>(E)->getDecl();
      VarUsage &U = Usage[D];
      if (IsStoreTarget)
        ++U.Writes;
      else
        ++U.Reads;
      return;
    }
    case Expr::ExprKind::Assign: {
      const auto *A = cast<AssignExpr>(E);
      // Plain stores to a bare variable do not read it; compound
      // assignments and element/member stores do.
      if (A->getOp() == AssignOp::Assign && isa<DeclRef>(A->getLHS()))
        Walk(A->getLHS(), /*IsStoreTarget=*/true);
      else
        Walk(A->getLHS(), /*IsStoreTarget=*/false);
      Walk(A->getRHS(), false);
      return;
    }
    case Expr::ExprKind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      Walk(U->getSubExpr(), /*IsStoreTarget=*/false);
      return;
    }
    default:
      forEachChild(E, [&](const Expr *Child) { Walk(Child, false); });
      return;
    }
  };

  // Walk from statement roots so store-target classification sees the
  // whole assignment.
  forEachStmt(F->getBody(), [&](const Stmt *Node) {
    switch (Node->getKind()) {
    case Stmt::StmtKind::Decl:
      if (const Expr *Init = cast<DeclStmt>(Node)->getDecl()->getInit())
        Walk(Init, false);
      return;
    case Stmt::StmtKind::Expr:
      Walk(cast<ExprStmt>(Node)->getExpr(), false);
      return;
    case Stmt::StmtKind::If:
      Walk(cast<IfStmt>(Node)->getCond(), false);
      return;
    case Stmt::StmtKind::For: {
      const auto *For = cast<ForStmt>(Node);
      if (For->getCond())
        Walk(For->getCond(), false);
      if (For->getStep())
        Walk(For->getStep(), false);
      return;
    }
    case Stmt::StmtKind::While:
      Walk(cast<WhileStmt>(Node)->getCond(), false);
      return;
    case Stmt::StmtKind::Do:
      Walk(cast<DoStmt>(Node)->getCond(), false);
      return;
    case Stmt::StmtKind::Return:
      if (const Expr *V = cast<ReturnStmt>(Node)->getValue())
        Walk(V, false);
      return;
    default:
      return;
    }
  });

  for (auto &[D, U] : Usage)
    U.AddressTaken = Taken.count(D) != 0;
  return Usage;
}

unsigned clfuzz::countNodes(const Stmt *S) {
  unsigned N = 0;
  forEachStmt(S, [&N](const Stmt *) { ++N; });
  forEachExpr(S, [&N](const Expr *) { ++N; });
  return N;
}

unsigned clfuzz::countStmts(const Stmt *S) {
  unsigned N = 0;
  forEachStmt(S, [&N](const Stmt *) { ++N; });
  return N;
}
