//===- Sema.h - MiniCL semantic validation ----------------------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-program semantic validation for MiniCL. The parser types
/// expressions as it builds them; Sema is the independent re-checker
/// run over complete programs. It is also the compliance oracle for
/// *generated* kernels: the CLsmith-style generator must produce trees
/// that pass checkProgram, which the test suite verifies over many
/// random seeds.
///
/// Checks include: structural typing of every node, lvalue-ness of
/// assignment/addressing targets, loop contexts for break/continue,
/// return-type agreement, completeness of called functions, absence of
/// recursion (OpenCL C forbids it), kernel signature rules (void
/// return, no private-pointer params), and placement of local-memory
/// declarations at kernel scope.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_MINICL_SEMA_H
#define CLFUZZ_MINICL_SEMA_H

#include "minicl/AST.h"

namespace clfuzz {

/// Validates \p Ctx's program. Returns true if no errors were added to
/// \p Diags.
bool checkProgram(const ASTContext &Ctx, DiagEngine &Diags);

} // namespace clfuzz

#endif // CLFUZZ_MINICL_SEMA_H
