//===- IntOps.h - Shared integer operator semantics -------------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single source of truth for MiniCL's integer semantics: lane-wise
/// evaluation of binary operators, builtins (including the safe-math
/// wrappers of §4.1) and atomics. Both the VM and the constant folder
/// evaluate through these functions, so a correct pass pipeline cannot
/// diverge from runtime behaviour; only explicit bug models can.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_MINICL_INTOPS_H
#define CLFUZZ_MINICL_INTOPS_H

#include "minicl/AST.h"

namespace clfuzz {

/// Masks \p Bits to the low \p Width bits (Width in [1,64]).
inline uint64_t maskToWidth(uint64_t Bits, unsigned Width) {
  return Width >= 64 ? Bits : (Bits & ((1ULL << Width) - 1));
}

/// Sign-extends the low \p Width bits of \p Bits to 64 bits.
inline int64_t signExtend(uint64_t Bits, unsigned Width) {
  if (Width >= 64)
    return static_cast<int64_t>(Bits);
  uint64_t Shift = 64 - Width;
  return static_cast<int64_t>(Bits << Shift) >> Shift;
}

/// Width/signedness of one lane.
struct LaneType {
  unsigned Width;
  bool Signed;
};

/// Lane type of a scalar, vector or pointer type.
inline LaneType laneTypeOf(const Type *Ty) {
  if (const auto *ST = dyn_cast<ScalarType>(Ty))
    return {ST->bitWidth(), ST->isSigned()};
  if (const auto *VT = dyn_cast<VectorType>(Ty))
    return {VT->getElementType()->bitWidth(),
            VT->getElementType()->isSigned()};
  return {64, false}; // pointers
}

/// Applies a scalar binary operator on masked lane payloads. Returns
/// false on a genuine runtime fault (division by zero). When
/// \p VectorCompare is set, comparison/logical results are all-ones
/// masks of \p ResultWidth instead of 0/1.
///
/// Defined inline: the VM evaluates this once per lane of every Bin
/// instruction, and keeping it out of line cost an indirect call plus
/// a full operator switch per lane in the hottest handler.
inline bool evalBinLane(BinOp Op, LaneType LT, uint64_t A, uint64_t B,
                        bool VectorCompare, unsigned ResultWidth,
                        uint64_t &Out) {
  auto Mask = [&LT](uint64_t V) { return maskToWidth(V, LT.Width); };
  int64_t SA = signExtend(A, LT.Width), SB = signExtend(B, LT.Width);
  auto Bool = [&](bool C) -> uint64_t {
    if (!VectorCompare)
      return C ? 1 : 0;
    return C ? maskToWidth(~0ULL, ResultWidth) : 0;
  };
  switch (Op) {
  case BinOp::Add:
    Out = Mask(A + B);
    return true;
  case BinOp::Sub:
    Out = Mask(A - B);
    return true;
  case BinOp::Mul:
    Out = Mask(A * B);
    return true;
  case BinOp::Div:
    if (B == 0)
      return false;
    if (LT.Signed) {
      if (SB == -1 && SA == signExtend(maskToWidth(1ULL << (LT.Width - 1),
                                                   LT.Width),
                                       LT.Width))
        Out = Mask(static_cast<uint64_t>(SA)); // wrap INT_MIN / -1
      else
        Out = Mask(static_cast<uint64_t>(SA / SB));
    } else {
      Out = Mask(A / B);
    }
    return true;
  case BinOp::Mod:
    if (B == 0)
      return false;
    if (LT.Signed) {
      if (SB == -1)
        Out = 0;
      else
        Out = Mask(static_cast<uint64_t>(SA % SB));
    } else {
      Out = Mask(A % B);
    }
    return true;
  case BinOp::Shl: {
    uint64_t Amt = B;
    Out = Amt >= LT.Width ? 0 : Mask(A << Amt);
    return true;
  }
  case BinOp::Shr: {
    uint64_t Amt = B;
    if (Amt >= LT.Width)
      Out = LT.Signed && SA < 0 ? Mask(~0ULL) : 0;
    else if (LT.Signed)
      Out = Mask(static_cast<uint64_t>(SA >> Amt));
    else
      Out = A >> Amt;
    return true;
  }
  case BinOp::BitAnd:
    Out = A & B;
    return true;
  case BinOp::BitOr:
    Out = A | B;
    return true;
  case BinOp::BitXor:
    Out = A ^ B;
    return true;
  case BinOp::LAnd:
    Out = Bool(A != 0 && B != 0);
    return true;
  case BinOp::LOr:
    Out = Bool(A != 0 || B != 0);
    return true;
  case BinOp::Eq:
    Out = Bool(A == B);
    return true;
  case BinOp::Ne:
    Out = Bool(A != B);
    return true;
  case BinOp::Lt:
    Out = Bool(LT.Signed ? SA < SB : A < B);
    return true;
  case BinOp::Gt:
    Out = Bool(LT.Signed ? SA > SB : A > B);
    return true;
  case BinOp::Le:
    Out = Bool(LT.Signed ? SA <= SB : A <= B);
    return true;
  case BinOp::Ge:
    Out = Bool(LT.Signed ? SA >= SB : A >= B);
    return true;
  case BinOp::Comma:
    break;
  }
  assert(false && "unexpected binary operator in VM");
  return false;
}

/// Evaluates a non-atomic builtin on one lane; \p Args supplies up to
/// three operands. Inline for the same reason as evalBinLane: the
/// safe-math wrappers (§4.1) make builtins nearly as common as plain
/// operators in generated kernels.
inline uint64_t evalBuiltinLane(Builtin B, LaneType LT,
                                const uint64_t *Args) {
  auto Mask = [&LT](uint64_t V) { return maskToWidth(V, LT.Width); };
  uint64_t X = Args[0];
  int64_t SX = signExtend(X, LT.Width);
  uint64_t Y = Args[1];
  int64_t SY = signExtend(Y, LT.Width);
  uint64_t Z = Args[2];
  int64_t SZ = signExtend(Z, LT.Width);

  auto Less = [&LT](uint64_t A, int64_t SA, uint64_t Bv, int64_t SBv) {
    return LT.Signed ? SA < SBv : A < Bv;
  };

  switch (B) {
  case Builtin::Clamp:
  case Builtin::SafeClamp:
    // min > max is UB for raw clamp; both forms use the safe fallback
    // (returning x), which is also what CLsmith's macro produces.
    if (Less(Z, SZ, Y, SY))
      return X;
    if (Less(X, SX, Y, SY))
      return Y;
    if (Less(Z, SZ, X, SX))
      return Z;
    return X;
  case Builtin::Rotate:
  case Builtin::SafeRotate: {
    uint64_t Amt = Y % LT.Width;
    if (Amt == 0)
      return X;
    return Mask((X << Amt) | (X >> (LT.Width - Amt)));
  }
  case Builtin::Min:
    return Less(X, SX, Y, SY) ? X : Y;
  case Builtin::Max:
    return Less(X, SX, Y, SY) ? Y : X;
  case Builtin::Abs:
    if (!LT.Signed)
      return X;
    return Mask(SX < 0 ? static_cast<uint64_t>(-SX) : X);
  case Builtin::AddSat: {
    if (LT.Signed) {
      int64_t Lo = signExtend(maskToWidth(1ULL << (LT.Width - 1), LT.Width),
                              LT.Width);
      int64_t Hi = -(Lo + 1);
      // Compute in 128-bit-free form: detect overflow via sign logic.
      int64_t Sum = static_cast<int64_t>(
          static_cast<uint64_t>(SX) + static_cast<uint64_t>(SY));
      if (LT.Width < 64) {
        int64_t Wide = SX + SY;
        if (Wide > Hi)
          return Mask(static_cast<uint64_t>(Hi));
        if (Wide < Lo)
          return Mask(static_cast<uint64_t>(Lo));
        return Mask(static_cast<uint64_t>(Wide));
      }
      bool Overflow = (SY > 0 && SX > Hi - SY) || (SY < 0 && SX < Lo - SY);
      if (Overflow)
        return SY > 0 ? static_cast<uint64_t>(Hi)
                      : static_cast<uint64_t>(Lo);
      return static_cast<uint64_t>(Sum);
    }
    uint64_t Sum = Mask(X + Y);
    return Sum < X ? Mask(~0ULL) : Sum;
  }
  case Builtin::SubSat: {
    if (LT.Signed) {
      int64_t Lo = signExtend(maskToWidth(1ULL << (LT.Width - 1), LT.Width),
                              LT.Width);
      int64_t Hi = -(Lo + 1);
      if (LT.Width < 64) {
        int64_t Wide = SX - SY;
        if (Wide > Hi)
          return Mask(static_cast<uint64_t>(Hi));
        if (Wide < Lo)
          return Mask(static_cast<uint64_t>(Lo));
        return Mask(static_cast<uint64_t>(Wide));
      }
      bool Overflow = (SY < 0 && SX > Hi + SY) || (SY > 0 && SX < Lo + SY);
      if (Overflow)
        return SY < 0 ? static_cast<uint64_t>(Hi)
                      : static_cast<uint64_t>(Lo);
      return static_cast<uint64_t>(SX - SY);
    }
    return X < Y ? 0 : X - Y;
  }
  case Builtin::Hadd:
    if (LT.Signed)
      return Mask(static_cast<uint64_t>((SX & SY) + ((SX ^ SY) >> 1)));
    return Mask((X & Y) + ((X ^ Y) >> 1));
  case Builtin::MulHi: {
    if (LT.Width < 64) {
      if (LT.Signed)
        return Mask(static_cast<uint64_t>((SX * SY) >> LT.Width));
      return Mask((X * Y) >> LT.Width);
    }
#if defined(__SIZEOF_INT128__)
    if (LT.Signed)
      return static_cast<uint64_t>(
          (static_cast<__int128>(SX) * SY) >> 64);
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(X) * Y) >> 64);
#else
    assert(false && "64-bit mul_hi requires __int128 support");
    return 0;
#endif
  }
  case Builtin::SafeAdd:
    return Mask(X + Y);
  case Builtin::SafeSub:
    return Mask(X - Y);
  case Builtin::SafeMul:
    return Mask(X * Y);
  case Builtin::SafeDiv:
    if (Y == 0)
      return X;
    if (LT.Signed) {
      if (SY == -1 &&
          SX == signExtend(maskToWidth(1ULL << (LT.Width - 1), LT.Width),
                           LT.Width))
        return X;
      return Mask(static_cast<uint64_t>(SX / SY));
    }
    return Mask(X / Y);
  case Builtin::SafeMod:
    if (Y == 0)
      return X;
    if (LT.Signed) {
      if (SY == -1)
        return 0;
      return Mask(static_cast<uint64_t>(SX % SY));
    }
    return Mask(X % Y);
  case Builtin::SafeShl:
    return Mask(X << (Y & (LT.Width - 1)));
  case Builtin::SafeShr: {
    uint64_t Amt = Y & (LT.Width - 1);
    if (LT.Signed)
      return Mask(static_cast<uint64_t>(SX >> Amt));
    return X >> Amt;
  }
  case Builtin::SafeNeg:
    return Mask(0 - X);
  default:
    assert(false && "unexpected builtin in evalBuiltinLane");
    return 0;
  }
}

/// Applies a 32-bit atomic read-modify-write operation, returning the
/// new value.
uint64_t evalAtomic(Builtin B, bool Signed, uint64_t Old, uint64_t Arg);

} // namespace clfuzz

#endif // CLFUZZ_MINICL_INTOPS_H
