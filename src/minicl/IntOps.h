//===- IntOps.h - Shared integer operator semantics -------------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single source of truth for MiniCL's integer semantics: lane-wise
/// evaluation of binary operators, builtins (including the safe-math
/// wrappers of §4.1) and atomics. Both the VM and the constant folder
/// evaluate through these functions, so a correct pass pipeline cannot
/// diverge from runtime behaviour; only explicit bug models can.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_MINICL_INTOPS_H
#define CLFUZZ_MINICL_INTOPS_H

#include "minicl/AST.h"

namespace clfuzz {

/// Masks \p Bits to the low \p Width bits (Width in [1,64]).
inline uint64_t maskToWidth(uint64_t Bits, unsigned Width) {
  return Width >= 64 ? Bits : (Bits & ((1ULL << Width) - 1));
}

/// Sign-extends the low \p Width bits of \p Bits to 64 bits.
inline int64_t signExtend(uint64_t Bits, unsigned Width) {
  if (Width >= 64)
    return static_cast<int64_t>(Bits);
  uint64_t Shift = 64 - Width;
  return static_cast<int64_t>(Bits << Shift) >> Shift;
}

/// Width/signedness of one lane.
struct LaneType {
  unsigned Width;
  bool Signed;
};

/// Lane type of a scalar, vector or pointer type.
LaneType laneTypeOf(const Type *Ty);

/// Applies a scalar binary operator on masked lane payloads. Returns
/// false on a genuine runtime fault (division by zero). When
/// \p VectorCompare is set, comparison/logical results are all-ones
/// masks of \p ResultWidth instead of 0/1.
bool evalBinLane(BinOp Op, LaneType LT, uint64_t A, uint64_t B,
                 bool VectorCompare, unsigned ResultWidth, uint64_t &Out);

/// Evaluates a non-atomic builtin on one lane; \p Args supplies up to
/// three operands.
uint64_t evalBuiltinLane(Builtin B, LaneType LT, const uint64_t *Args);

/// Applies a 32-bit atomic read-modify-write operation, returning the
/// new value.
uint64_t evalAtomic(Builtin B, bool Signed, uint64_t Old, uint64_t Arg);

} // namespace clfuzz

#endif // CLFUZZ_MINICL_INTOPS_H
