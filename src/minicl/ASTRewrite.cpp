//===- ASTRewrite.cpp - Functional AST rewriting helpers -------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "minicl/ASTRewrite.h"

using namespace clfuzz;

Expr *clfuzz::rewriteExpr(ASTContext &Ctx, Expr *E,
                          const std::function<Expr *(Expr *)> &Fn) {
  auto Rec = [&Ctx, &Fn](Expr *Child) {
    return rewriteExpr(Ctx, Child, Fn);
  };
  Expr *New = E;
  switch (E->getKind()) {
  case Expr::ExprKind::IntLiteral:
  case Expr::ExprKind::DeclRef:
    break;
  case Expr::ExprKind::Unary: {
    auto *U = cast<UnaryExpr>(E);
    Expr *Sub = Rec(U->getSubExpr());
    if (Sub != U->getSubExpr())
      New = Ctx.makeExpr<UnaryExpr>(U->getOp(), Sub, U->getType());
    break;
  }
  case Expr::ExprKind::Binary: {
    auto *B = cast<BinaryExpr>(E);
    Expr *L = Rec(B->getLHS());
    Expr *R = Rec(B->getRHS());
    if (L != B->getLHS() || R != B->getRHS())
      New = Ctx.makeExpr<BinaryExpr>(B->getOp(), L, R, B->getType());
    break;
  }
  case Expr::ExprKind::Assign: {
    auto *A = cast<AssignExpr>(E);
    Expr *L = Rec(A->getLHS());
    Expr *R = Rec(A->getRHS());
    if (L != A->getLHS() || R != A->getRHS())
      New = Ctx.makeExpr<AssignExpr>(A->getOp(), L, R, A->getType());
    break;
  }
  case Expr::ExprKind::Conditional: {
    auto *C = cast<ConditionalExpr>(E);
    Expr *Cond = Rec(C->getCond());
    Expr *T = Rec(C->getTrueExpr());
    Expr *F = Rec(C->getFalseExpr());
    if (Cond != C->getCond() || T != C->getTrueExpr() ||
        F != C->getFalseExpr())
      New = Ctx.makeExpr<ConditionalExpr>(Cond, T, F, C->getType());
    break;
  }
  case Expr::ExprKind::Call: {
    auto *C = cast<CallExpr>(E);
    std::vector<Expr *> Args;
    bool Changed = false;
    for (Expr *A : C->args()) {
      Expr *NA = Rec(A);
      Changed |= NA != A;
      Args.push_back(NA);
    }
    if (Changed)
      New = Ctx.makeExpr<CallExpr>(C->getCallee(), std::move(Args),
                                   C->getType());
    break;
  }
  case Expr::ExprKind::BuiltinCall: {
    auto *C = cast<BuiltinCallExpr>(E);
    std::vector<Expr *> Args;
    bool Changed = false;
    for (Expr *A : C->args()) {
      Expr *NA = Rec(A);
      Changed |= NA != A;
      Args.push_back(NA);
    }
    if (Changed)
      New = Ctx.makeExpr<BuiltinCallExpr>(C->getBuiltin(), std::move(Args),
                                          C->getType());
    break;
  }
  case Expr::ExprKind::Index: {
    auto *Ix = cast<IndexExpr>(E);
    Expr *B = Rec(Ix->getBase());
    Expr *I = Rec(Ix->getIndex());
    if (B != Ix->getBase() || I != Ix->getIndex())
      New = Ctx.makeExpr<IndexExpr>(B, I, Ix->getType());
    break;
  }
  case Expr::ExprKind::Member: {
    auto *M = cast<MemberExpr>(E);
    Expr *B = Rec(M->getBase());
    if (B != M->getBase())
      New = Ctx.makeExpr<MemberExpr>(B, M->getFieldIndex(), M->isArrow(),
                                     M->getType());
    break;
  }
  case Expr::ExprKind::Swizzle: {
    auto *Sw = cast<SwizzleExpr>(E);
    Expr *B = Rec(Sw->getBase());
    if (B != Sw->getBase())
      New = Ctx.makeExpr<SwizzleExpr>(B, Sw->indices(), Sw->getType());
    break;
  }
  case Expr::ExprKind::Cast: {
    auto *C = cast<CastExpr>(E);
    Expr *Sub = Rec(C->getSubExpr());
    if (Sub != C->getSubExpr())
      New = Ctx.makeExpr<CastExpr>(Sub, C->getType());
    break;
  }
  case Expr::ExprKind::ImplicitCast: {
    auto *C = cast<ImplicitCastExpr>(E);
    Expr *Sub = Rec(C->getSubExpr());
    if (Sub != C->getSubExpr())
      New = Ctx.makeExpr<ImplicitCastExpr>(C->getCastKind(), Sub,
                                           C->getType());
    break;
  }
  case Expr::ExprKind::VectorConstruct: {
    auto *V = cast<VectorConstructExpr>(E);
    std::vector<Expr *> Elems;
    bool Changed = false;
    for (Expr *Elem : V->elements()) {
      Expr *NE = Rec(Elem);
      Changed |= NE != Elem;
      Elems.push_back(NE);
    }
    if (Changed)
      New = Ctx.makeExpr<VectorConstructExpr>(
          std::move(Elems), cast<VectorType>(V->getType()));
    break;
  }
  case Expr::ExprKind::InitList: {
    auto *IL = cast<InitListExpr>(E);
    std::vector<Expr *> Inits;
    bool Changed = false;
    for (Expr *Sub : IL->inits()) {
      Expr *NS = Rec(Sub);
      Changed |= NS != Sub;
      Inits.push_back(NS);
    }
    if (Changed)
      New = Ctx.makeExpr<InitListExpr>(std::move(Inits), IL->getType());
    break;
  }
  }
  return Fn ? Fn(New) : New;
}

Stmt *clfuzz::rewriteStmt(ASTContext &Ctx, Stmt *S,
                          const std::function<Expr *(Expr *)> &ExprFn,
                          const std::function<Stmt *(Stmt *)> &StmtFn) {
  auto RecS = [&](Stmt *Child) {
    return rewriteStmt(Ctx, Child, ExprFn, StmtFn);
  };
  auto RecE = [&](Expr *E) -> Expr * {
    if (!E)
      return nullptr;
    return ExprFn ? rewriteExpr(Ctx, E, ExprFn) : E;
  };

  Stmt *New = S;
  switch (S->getKind()) {
  case Stmt::StmtKind::Compound: {
    auto *C = cast<CompoundStmt>(S);
    for (Stmt *&Child : C->body())
      Child = RecS(Child);
    break;
  }
  case Stmt::StmtKind::Decl: {
    VarDecl *D = cast<DeclStmt>(S)->getDecl();
    if (D->getInit())
      D->setInit(RecE(D->getInit()));
    break;
  }
  case Stmt::StmtKind::Expr: {
    auto *ES = cast<ExprStmt>(S);
    Expr *E = RecE(ES->getExpr());
    if (E != ES->getExpr())
      New = Ctx.makeStmt<ExprStmt>(E);
    break;
  }
  case Stmt::StmtKind::If: {
    auto *If = cast<IfStmt>(S);
    Expr *Cond = RecE(If->getCond());
    Stmt *Then = RecS(If->getThen());
    Stmt *Else = If->getElse() ? RecS(If->getElse()) : nullptr;
    if (Cond != If->getCond() || Then != If->getThen() ||
        Else != If->getElse()) {
      auto *NewIf = Ctx.makeStmt<IfStmt>(Cond, Then, Else);
      NewIf->setEmiId(If->getEmiId());
      New = NewIf;
    }
    break;
  }
  case Stmt::StmtKind::For: {
    auto *For = cast<ForStmt>(S);
    Stmt *Init = For->getInit() ? RecS(For->getInit()) : nullptr;
    Expr *Cond = RecE(For->getCond());
    Expr *Step = RecE(For->getStep());
    Stmt *Body = RecS(For->getBody());
    if (Init != For->getInit() || Cond != For->getCond() ||
        Step != For->getStep() || Body != For->getBody())
      New = Ctx.makeStmt<ForStmt>(Init, Cond, Step, Body);
    break;
  }
  case Stmt::StmtKind::While: {
    auto *W = cast<WhileStmt>(S);
    Expr *Cond = RecE(W->getCond());
    Stmt *Body = RecS(W->getBody());
    if (Cond != W->getCond() || Body != W->getBody())
      New = Ctx.makeStmt<WhileStmt>(Cond, Body);
    break;
  }
  case Stmt::StmtKind::Do: {
    auto *D = cast<DoStmt>(S);
    Stmt *Body = RecS(D->getBody());
    Expr *Cond = RecE(D->getCond());
    if (Body != D->getBody() || Cond != D->getCond())
      New = Ctx.makeStmt<DoStmt>(Body, Cond);
    break;
  }
  case Stmt::StmtKind::Return: {
    auto *R = cast<ReturnStmt>(S);
    Expr *V = RecE(R->getValue());
    if (V != R->getValue())
      New = Ctx.makeStmt<ReturnStmt>(V);
    break;
  }
  case Stmt::StmtKind::Break:
  case Stmt::StmtKind::Continue:
  case Stmt::StmtKind::Barrier:
  case Stmt::StmtKind::Null:
    break;
  }
  return StmtFn ? StmtFn(New) : New;
}

void clfuzz::rewriteFunction(ASTContext &Ctx, FunctionDecl *F,
                             const std::function<Expr *(Expr *)> &ExprFn,
                             const std::function<Stmt *(Stmt *)> &StmtFn) {
  if (!F->getBody())
    return;
  Stmt *NewBody = rewriteStmt(Ctx, F->getBody(), ExprFn, StmtFn);
  if (auto *C = dyn_cast<CompoundStmt>(NewBody)) {
    F->setBody(C);
    return;
  }
  F->setBody(Ctx.makeStmt<CompoundStmt>(std::vector<Stmt *>{NewBody}));
}
