//===- TypeRules.cpp - MiniCL conversion and operator typing ---------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "minicl/TypeRules.h"

using namespace clfuzz;

const ScalarType *clfuzz::promote(TypeContext &Types,
                                  const ScalarType *T) {
  if (T->rank() < Types.intTy()->rank() || T->isBool())
    return Types.intTy();
  return T;
}

const ScalarType *
clfuzz::usualArithmeticConversions(TypeContext &Types, const ScalarType *A,
                                   const ScalarType *B) {
  const ScalarType *PA = promote(Types, A);
  const ScalarType *PB = promote(Types, B);
  if (PA == PB)
    return PA;
  // size_t acts as ulong for conversion purposes.
  auto Canon = [&Types](const ScalarType *T) {
    return T->isSizeT() ? Types.ulongTy() : T;
  };
  PA = Canon(PA);
  PB = Canon(PB);
  if (PA == PB)
    return PA;
  if (PA->isSigned() == PB->isSigned())
    return PA->rank() >= PB->rank() ? PA : PB;
  const ScalarType *U = PA->isSigned() ? PB : PA;
  const ScalarType *S = PA->isSigned() ? PA : PB;
  // Unsigned wins at equal or greater rank; at 32 vs 64 the wider
  // signed type can represent all narrower unsigned values.
  if (U->rank() >= S->rank())
    return U;
  return S;
}

bool clfuzz::isScalarConvertible(const Type *From, const Type *To) {
  return isa<ScalarType>(From) && isa<ScalarType>(To);
}

const VectorType *clfuzz::comparisonResultVector(TypeContext &Types,
                                                 const VectorType *VT) {
  const ScalarType *Elem = VT->getElementType();
  ScalarKind SK;
  switch (Elem->bitWidth()) {
  case 8:
    SK = ScalarKind::Char;
    break;
  case 16:
    SK = ScalarKind::Short;
    break;
  case 32:
    SK = ScalarKind::Int;
    break;
  default:
    SK = ScalarKind::Long;
    break;
  }
  return Types.vector(Types.scalar(SK), VT->getNumLanes());
}

bool clfuzz::isLValue(const Expr *E) {
  switch (E->getKind()) {
  case Expr::ExprKind::DeclRef:
    return true;
  case Expr::ExprKind::Unary:
    return cast<UnaryExpr>(E)->getOp() == UnOp::Deref;
  case Expr::ExprKind::Index: {
    const Expr *Base = cast<IndexExpr>(E)->getBase();
    return isa<PointerType>(Base->getType()) || isLValue(Base);
  }
  case Expr::ExprKind::Member: {
    const auto *M = cast<MemberExpr>(E);
    return M->isArrow() || isLValue(M->getBase());
  }
  case Expr::ExprKind::Swizzle:
    return cast<SwizzleExpr>(E)->indices().size() == 1 &&
           isLValue(cast<SwizzleExpr>(E)->getBase());
  default:
    return false;
  }
}

Expr *clfuzz::convertTo(ASTContext &Ctx, Expr *E, const Type *To) {
  const Type *From = E->getType();
  if (From == To)
    return E;
  // Scalar to scalar (includes bool).
  if (isa<ScalarType>(From) && isa<ScalarType>(To)) {
    auto CK = cast<ScalarType>(From)->isBool()
                  ? ImplicitCastExpr::CastKind::BoolToInt
                  : ImplicitCastExpr::CastKind::IntegralConvert;
    return Ctx.makeExpr<ImplicitCastExpr>(CK, E, To);
  }
  // The null pointer constant: literal 0 converts to any pointer type.
  if (isa<PointerType>(To)) {
    if (const auto *Lit = dyn_cast<IntLiteral>(E))
      if (Lit->getValue() == 0)
        return Ctx.makeExpr<ImplicitCastExpr>(
            ImplicitCastExpr::CastKind::IntegralConvert, E, To);
    return nullptr;
  }
  // Scalar splat into a vector.
  if (const auto *VT = dyn_cast<VectorType>(To)) {
    if (!isa<ScalarType>(From))
      return nullptr;
    Expr *AsElem = convertTo(Ctx, E, VT->getElementType());
    if (!AsElem)
      return nullptr;
    return Ctx.makeExpr<ImplicitCastExpr>(
        ImplicitCastExpr::CastKind::VectorSplat, AsElem, VT);
  }
  return nullptr;
}

/// True for operators whose operands must be integers (no pointers).
static bool isArithOrBitwise(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
  case BinOp::Sub:
  case BinOp::Mul:
  case BinOp::Div:
  case BinOp::Mod:
  case BinOp::Shl:
  case BinOp::Shr:
  case BinOp::BitAnd:
  case BinOp::BitOr:
  case BinOp::BitXor:
    return true;
  default:
    return false;
  }
}

TypedResult clfuzz::buildBinary(ASTContext &Ctx, BinOp Op, Expr *LHS,
                                Expr *RHS) {
  TypeContext &Types = Ctx.types();
  const Type *LT = LHS->getType();
  const Type *RT = RHS->getType();

  if (Op == BinOp::Comma)
    return TypedResult::ok(Ctx.makeExpr<BinaryExpr>(Op, LHS, RHS, RT));

  // Pointer equality.
  if (isa<PointerType>(LT) || isa<PointerType>(RT)) {
    if (Op != BinOp::Eq && Op != BinOp::Ne)
      return TypedResult::fail("invalid operands to binary expression (" +
                               LT->str() + " and " + RT->str() + ")");
    if (isa<PointerType>(LT) && !isa<PointerType>(RT)) {
      RHS = convertTo(Ctx, RHS, LT);
      if (!RHS)
        return TypedResult::fail("comparison between pointer and integer");
    } else if (!isa<PointerType>(LT) && isa<PointerType>(RT)) {
      LHS = convertTo(Ctx, LHS, RT);
      if (!LHS)
        return TypedResult::fail("comparison between integer and pointer");
    } else if (LT != RT) {
      return TypedResult::fail("comparison of distinct pointer types");
    }
    return TypedResult::ok(
        Ctx.makeExpr<BinaryExpr>(Op, LHS, RHS, Types.boolTy()));
  }

  const auto *LV = dyn_cast<VectorType>(LT);
  const auto *RV = dyn_cast<VectorType>(RT);

  // Vector / vector.
  if (LV && RV) {
    if (LV != RV)
      return TypedResult::fail(
          "implicit conversion between vector types (" + LT->str() +
          " and " + RT->str() + ") is disallowed");
    const Type *ResTy;
    if (isComparisonOp(Op) || isLogicalOp(Op))
      ResTy = comparisonResultVector(Types, LV);
    else
      ResTy = LV;
    return TypedResult::ok(Ctx.makeExpr<BinaryExpr>(Op, LHS, RHS, ResTy));
  }

  // Mixed scalar / vector: splat the scalar side.
  if (LV || RV) {
    const VectorType *VT = LV ? LV : RV;
    Expr *&ScalarSide = LV ? RHS : LHS;
    Expr *Conv = convertTo(Ctx, ScalarSide, VT);
    if (!Conv)
      return TypedResult::fail("cannot broadcast operand of type " +
                               ScalarSide->getType()->str() + " to " +
                               VT->str());
    ScalarSide = Conv;
    const Type *ResTy = (isComparisonOp(Op) || isLogicalOp(Op))
                            ? static_cast<const Type *>(
                                  comparisonResultVector(Types, VT))
                            : VT;
    return TypedResult::ok(Ctx.makeExpr<BinaryExpr>(Op, LHS, RHS, ResTy));
  }

  // Scalar / scalar.
  const auto *LS = dyn_cast<ScalarType>(LT);
  const auto *RS = dyn_cast<ScalarType>(RT);
  if (!LS || !RS)
    return TypedResult::fail("invalid operands to binary expression (" +
                             LT->str() + " and " + RT->str() + ")");

  if (isLogicalOp(Op) || isComparisonOp(Op)) {
    if (isComparisonOp(Op)) {
      const ScalarType *Common = usualArithmeticConversions(Types, LS, RS);
      LHS = convertTo(Ctx, LHS, Common);
      RHS = convertTo(Ctx, RHS, Common);
      assert(LHS && RHS && "scalar conversion cannot fail");
    }
    return TypedResult::ok(
        Ctx.makeExpr<BinaryExpr>(Op, LHS, RHS, Types.boolTy()));
  }

  assert(isArithOrBitwise(Op) && "unhandled scalar operator family");
  if (Op == BinOp::Shl || Op == BinOp::Shr) {
    // Shifts promote each operand independently; result is the
    // promoted LHS type.
    const ScalarType *ResTy = promote(Types, LS);
    LHS = convertTo(Ctx, LHS, ResTy);
    RHS = convertTo(Ctx, RHS, promote(Types, RS));
    assert(LHS && RHS && "scalar conversion cannot fail");
    return TypedResult::ok(Ctx.makeExpr<BinaryExpr>(Op, LHS, RHS, ResTy));
  }

  const ScalarType *Common = usualArithmeticConversions(Types, LS, RS);
  LHS = convertTo(Ctx, LHS, Common);
  RHS = convertTo(Ctx, RHS, Common);
  assert(LHS && RHS && "scalar conversion cannot fail");
  return TypedResult::ok(Ctx.makeExpr<BinaryExpr>(Op, LHS, RHS, Common));
}

TypedResult clfuzz::buildUnary(ASTContext &Ctx, UnOp Op, Expr *Sub) {
  TypeContext &Types = Ctx.types();
  const Type *T = Sub->getType();
  switch (Op) {
  case UnOp::Plus:
  case UnOp::Minus:
  case UnOp::BitNot: {
    if (const auto *VT = dyn_cast<VectorType>(T))
      return TypedResult::ok(Ctx.makeExpr<UnaryExpr>(Op, Sub, VT));
    const auto *ST = dyn_cast<ScalarType>(T);
    if (!ST)
      return TypedResult::fail("invalid operand to unary " +
                               std::string(unOpSpelling(Op)));
    const ScalarType *ResTy = promote(Types, ST);
    Sub = convertTo(Ctx, Sub, ResTy);
    return TypedResult::ok(Ctx.makeExpr<UnaryExpr>(Op, Sub, ResTy));
  }
  case UnOp::Not:
    if (!isa<ScalarType>(T) && !isa<PointerType>(T))
      return TypedResult::fail("invalid operand to unary !");
    return TypedResult::ok(
        Ctx.makeExpr<UnaryExpr>(Op, Sub, Types.boolTy()));
  case UnOp::PreInc:
  case UnOp::PreDec:
  case UnOp::PostInc:
  case UnOp::PostDec:
    if (!isLValue(Sub))
      return TypedResult::fail("operand of ++/-- is not assignable");
    if (!isa<ScalarType>(T))
      return TypedResult::fail("++/-- requires a scalar operand");
    return TypedResult::ok(Ctx.makeExpr<UnaryExpr>(Op, Sub, T));
  case UnOp::Deref: {
    const auto *PT = dyn_cast<PointerType>(T);
    if (!PT)
      return TypedResult::fail("dereference of non-pointer type " +
                               T->str());
    return TypedResult::ok(
        Ctx.makeExpr<UnaryExpr>(Op, Sub, PT->getPointeeType()));
  }
  case UnOp::AddrOf: {
    if (!isLValue(Sub))
      return TypedResult::fail("cannot take the address of an rvalue");
    // The resulting address space is resolved by codegen from the
    // object's declaration; the static type uses the declared space
    // when known, else private.
    AddressSpace AS = AddressSpace::Private;
    const Expr *Obj = Sub;
    while (true) {
      if (const auto *M = dyn_cast<MemberExpr>(Obj)) {
        if (M->isArrow()) {
          AS = cast<PointerType>(M->getBase()->getType())
                   ->getAddressSpace();
          break;
        }
        Obj = M->getBase();
        continue;
      }
      if (const auto *Ix = dyn_cast<IndexExpr>(Obj)) {
        if (const auto *PT =
                dyn_cast<PointerType>(Ix->getBase()->getType())) {
          AS = PT->getAddressSpace();
          break;
        }
        Obj = Ix->getBase();
        continue;
      }
      if (const auto *U = dyn_cast<UnaryExpr>(Obj)) {
        if (U->getOp() == UnOp::Deref) {
          AS = cast<PointerType>(U->getSubExpr()->getType())
                   ->getAddressSpace();
          break;
        }
      }
      if (const auto *DR = dyn_cast<DeclRef>(Obj)) {
        AS = DR->getDecl()->getAddressSpace();
        break;
      }
      break;
    }
    return TypedResult::ok(
        Ctx.makeExpr<UnaryExpr>(Op, Sub, Ctx.types().pointer(T, AS)));
  }
  }
  assert(false && "unknown unary operator");
  return TypedResult::fail("unknown unary operator");
}

TypedResult clfuzz::buildAssign(ASTContext &Ctx, AssignOp Op, Expr *LHS,
                                Expr *RHS) {
  if (!isLValue(LHS))
    return TypedResult::fail("expression is not assignable");
  const Type *LT = LHS->getType();

  if (Op == AssignOp::Assign) {
    Expr *Conv = convertTo(Ctx, RHS, LT);
    if (!Conv) {
      // Identical record types assign whole; anything else is an error.
      if (LT == RHS->getType())
        Conv = RHS;
      else
        return TypedResult::fail("assigning to " + LT->str() + " from " +
                                 RHS->getType()->str());
    }
    return TypedResult::ok(
        Ctx.makeExpr<AssignExpr>(Op, LHS, Conv, LT));
  }

  // Compound assignment requires arithmetic operands.
  if (!LT->isArithmetic())
    return TypedResult::fail("compound assignment to non-arithmetic type");
  if (const auto *VT = dyn_cast<VectorType>(LT)) {
    if (RHS->getType() != VT) {
      Expr *Conv = convertTo(Ctx, RHS, VT);
      if (!Conv)
        return TypedResult::fail("invalid compound assignment operand");
      RHS = Conv;
    }
    return TypedResult::ok(Ctx.makeExpr<AssignExpr>(Op, LHS, RHS, VT));
  }
  if (!isa<ScalarType>(RHS->getType()))
    return TypedResult::fail("invalid compound assignment operand");
  return TypedResult::ok(Ctx.makeExpr<AssignExpr>(Op, LHS, RHS, LT));
}

TypedResult clfuzz::buildConditional(ASTContext &Ctx, Expr *Cond,
                                     Expr *TrueE, Expr *FalseE) {
  if (!isa<ScalarType>(Cond->getType()) &&
      !isa<PointerType>(Cond->getType()))
    return TypedResult::fail("condition must have scalar type");
  const Type *TT = TrueE->getType();
  const Type *FT = FalseE->getType();
  TypeContext &Types = Ctx.types();
  if (TT == FT)
    return TypedResult::ok(
        Ctx.makeExpr<ConditionalExpr>(Cond, TrueE, FalseE, TT));
  const auto *TS = dyn_cast<ScalarType>(TT);
  const auto *FS = dyn_cast<ScalarType>(FT);
  if (TS && FS) {
    const ScalarType *Common = usualArithmeticConversions(Types, TS, FS);
    TrueE = convertTo(Ctx, TrueE, Common);
    FalseE = convertTo(Ctx, FalseE, Common);
    return TypedResult::ok(
        Ctx.makeExpr<ConditionalExpr>(Cond, TrueE, FalseE, Common));
  }
  return TypedResult::fail("incompatible conditional operand types " +
                           TT->str() + " and " + FT->str());
}

TypedResult clfuzz::buildIndex(ASTContext &Ctx, Expr *Base, Expr *Index) {
  if (!isa<ScalarType>(Index->getType()))
    return TypedResult::fail("array subscript is not an integer");
  const Type *BT = Base->getType();
  if (const auto *AT = dyn_cast<ArrayType>(BT))
    return TypedResult::ok(
        Ctx.makeExpr<IndexExpr>(Base, Index, AT->getElementType()));
  if (const auto *PT = dyn_cast<PointerType>(BT))
    return TypedResult::ok(
        Ctx.makeExpr<IndexExpr>(Base, Index, PT->getPointeeType()));
  return TypedResult::fail("subscripted value is not an array or pointer");
}

/// Checks that an atomic builtin's pointer argument points at a 32-bit
/// integer in global or local memory.
static bool isAtomicPointer(const Type *T) {
  const auto *PT = dyn_cast<PointerType>(T);
  if (!PT)
    return false;
  if (PT->getAddressSpace() != AddressSpace::Global &&
      PT->getAddressSpace() != AddressSpace::Local)
    return false;
  const auto *Pointee = dyn_cast<ScalarType>(PT->getPointeeType());
  return Pointee && Pointee->bitWidth() == 32 && !Pointee->isBool();
}

TypedResult clfuzz::buildBuiltinCall(ASTContext &Ctx, Builtin B,
                                     std::vector<Expr *> Args,
                                     const Type *ConvertTarget) {
  TypeContext &Types = Ctx.types();
  auto Arity = [&Args](unsigned N) { return Args.size() == N; };

  if (isWorkItemBuiltin(B)) {
    if (!Arity(1) || !isa<ScalarType>(Args[0]->getType()))
      return TypedResult::fail(std::string(builtinName(B)) +
                               " expects one integer dimension argument");
    Args[0] = convertTo(Ctx, Args[0], Types.uintTy());
    return TypedResult::ok(Ctx.makeExpr<BuiltinCallExpr>(
        B, std::move(Args), Types.sizeTy()));
  }

  switch (B) {
  case Builtin::Clamp:
  case Builtin::SafeClamp: {
    if (!Arity(3))
      return TypedResult::fail("clamp expects three arguments");
    const Type *T0 = Args[0]->getType();
    if (const auto *VT = dyn_cast<VectorType>(T0)) {
      for (int I = 1; I <= 2; ++I) {
        if (Args[I]->getType() == VT)
          continue;
        Expr *Conv = convertTo(Ctx, Args[I], VT);
        if (!Conv)
          return TypedResult::fail("clamp bound type mismatch");
        Args[I] = Conv;
      }
      return TypedResult::ok(
          Ctx.makeExpr<BuiltinCallExpr>(B, std::move(Args), VT));
    }
    const auto *ST = dyn_cast<ScalarType>(T0);
    if (!ST)
      return TypedResult::fail("clamp operand is not arithmetic");
    for (auto *&A : Args) {
      A = convertTo(Ctx, A, ST);
      if (!A)
        return TypedResult::fail("clamp bound type mismatch");
    }
    return TypedResult::ok(
        Ctx.makeExpr<BuiltinCallExpr>(B, std::move(Args), ST));
  }
  case Builtin::Rotate:
  case Builtin::SafeRotate:
  case Builtin::Min:
  case Builtin::Max:
  case Builtin::AddSat:
  case Builtin::SubSat:
  case Builtin::Hadd:
  case Builtin::MulHi:
  case Builtin::SafeAdd:
  case Builtin::SafeSub:
  case Builtin::SafeMul:
  case Builtin::SafeDiv:
  case Builtin::SafeMod:
  case Builtin::SafeShl:
  case Builtin::SafeShr: {
    if (!Arity(2))
      return TypedResult::fail(std::string(builtinName(B)) +
                               " expects two arguments");
    const Type *T0 = Args[0]->getType();
    if (const auto *VT = dyn_cast<VectorType>(T0)) {
      if (Args[1]->getType() != VT) {
        Expr *Conv = convertTo(Ctx, Args[1], VT);
        if (!Conv)
          return TypedResult::fail("vector builtin operand mismatch");
        Args[1] = Conv;
      }
      return TypedResult::ok(
          Ctx.makeExpr<BuiltinCallExpr>(B, std::move(Args), VT));
    }
    const auto *ST = dyn_cast<ScalarType>(T0);
    if (!ST)
      return TypedResult::fail("builtin operand is not arithmetic");
    const ScalarType *Res = ST->isBool() ? Types.intTy() : ST;
    for (auto *&A : Args) {
      A = convertTo(Ctx, A, Res);
      if (!A)
        return TypedResult::fail("builtin operand mismatch");
    }
    return TypedResult::ok(
        Ctx.makeExpr<BuiltinCallExpr>(B, std::move(Args), Res));
  }
  case Builtin::SafeNeg:
  case Builtin::Abs: {
    if (!Arity(1))
      return TypedResult::fail(std::string(builtinName(B)) +
                               " expects one argument");
    const Type *T0 = Args[0]->getType();
    if (!T0->isArithmetic())
      return TypedResult::fail("builtin operand is not arithmetic");
    const Type *Res = T0;
    if (B == Builtin::Abs) {
      // abs() returns the unsigned counterpart (OpenCL §6.12.3).
      auto Unsign = [&Types](const ScalarType *ST) -> const ScalarType * {
        switch (ST->bitWidth()) {
        case 8:
          return Types.ucharTy();
        case 16:
          return Types.ushortTy();
        case 32:
          return Types.uintTy();
        default:
          return Types.ulongTy();
        }
      };
      if (const auto *VT = dyn_cast<VectorType>(T0))
        Res = Types.vector(Unsign(VT->getElementType()),
                           VT->getNumLanes());
      else
        Res = Unsign(cast<ScalarType>(T0));
    }
    return TypedResult::ok(
        Ctx.makeExpr<BuiltinCallExpr>(B, std::move(Args), Res));
  }
  case Builtin::ConvertVector: {
    if (!Arity(1) || !ConvertTarget || !isa<VectorType>(ConvertTarget))
      return TypedResult::fail("convert_T expects one vector argument");
    const auto *FromVT = dyn_cast<VectorType>(Args[0]->getType());
    const auto *ToVT = cast<VectorType>(ConvertTarget);
    if (!FromVT || FromVT->getNumLanes() != ToVT->getNumLanes())
      return TypedResult::fail("convert_T lane count mismatch");
    return TypedResult::ok(
        Ctx.makeExpr<BuiltinCallExpr>(B, std::move(Args), ToVT));
  }
  case Builtin::AtomicInc:
  case Builtin::AtomicDec: {
    if (!Arity(1) || !isAtomicPointer(Args[0]->getType()))
      return TypedResult::fail(
          std::string(builtinName(B)) +
          " expects a global/local int or uint pointer");
    const Type *Pointee =
        cast<PointerType>(Args[0]->getType())->getPointeeType();
    return TypedResult::ok(
        Ctx.makeExpr<BuiltinCallExpr>(B, std::move(Args), Pointee));
  }
  case Builtin::AtomicAdd:
  case Builtin::AtomicSub:
  case Builtin::AtomicMin:
  case Builtin::AtomicMax:
  case Builtin::AtomicAnd:
  case Builtin::AtomicOr:
  case Builtin::AtomicXor:
  case Builtin::AtomicXchg: {
    if (!Arity(2) || !isAtomicPointer(Args[0]->getType()))
      return TypedResult::fail(
          std::string(builtinName(B)) +
          " expects a global/local int or uint pointer");
    const Type *Pointee =
        cast<PointerType>(Args[0]->getType())->getPointeeType();
    Args[1] = convertTo(Ctx, Args[1], Pointee);
    if (!Args[1])
      return TypedResult::fail("atomic operand type mismatch");
    return TypedResult::ok(
        Ctx.makeExpr<BuiltinCallExpr>(B, std::move(Args), Pointee));
  }
  case Builtin::AtomicCmpxchg: {
    if (!Arity(3) || !isAtomicPointer(Args[0]->getType()))
      return TypedResult::fail(
          "atomic_cmpxchg expects a global/local int or uint pointer");
    const Type *Pointee =
        cast<PointerType>(Args[0]->getType())->getPointeeType();
    for (int I = 1; I <= 2; ++I) {
      Args[I] = convertTo(Ctx, Args[I], Pointee);
      if (!Args[I])
        return TypedResult::fail("atomic operand type mismatch");
    }
    return TypedResult::ok(
        Ctx.makeExpr<BuiltinCallExpr>(B, std::move(Args), Pointee));
  }
  default:
    break;
  }
  assert(false && "unhandled builtin in buildBuiltinCall");
  return TypedResult::fail("unhandled builtin");
}
