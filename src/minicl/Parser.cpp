//===- Parser.cpp - MiniCL recursive-descent parser ------------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "minicl/Parser.h"
#include "minicl/Lexer.h"
#include "minicl/TypeRules.h"
#include "support/StringUtil.h"

#include <cctype>
#include <map>
#include <optional>

using namespace clfuzz;

namespace {

/// Scoped variable symbol table.
class Scope {
public:
  void push() { Levels.emplace_back(); }
  void pop() { Levels.pop_back(); }

  bool declare(VarDecl *D) {
    auto &Top = Levels.back();
    return Top.emplace(D->getName(), D).second;
  }

  VarDecl *lookup(const std::string &Name) const {
    for (auto It = Levels.rbegin(), E = Levels.rend(); It != E; ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return Found->second;
    }
    return nullptr;
  }

private:
  std::vector<std::map<std::string, VarDecl *>> Levels;
};

class ParserImpl {
public:
  ParserImpl(std::vector<Token> Tokens, ASTContext &Ctx, DiagEngine &Diags)
      : Tokens(std::move(Tokens)), Ctx(Ctx), Types(Ctx.types()),
        Diags(Diags) {}

  bool run();

private:
  // Token stream helpers.
  const Token &peek(unsigned Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  const Token &advance() { return Tokens[Pos++]; }
  bool check(TokKind K) const { return peek().is(K); }
  bool accept(TokKind K) {
    if (!check(K))
      return false;
    advance();
    return true;
  }
  bool expect(TokKind K, const char *What) {
    if (accept(K))
      return true;
    error(std::string("expected ") + What);
    return false;
  }
  void error(const std::string &Msg) {
    if (!Failed)
      Diags.error(peek().Loc, Msg);
    Failed = true;
  }

  // Type parsing.
  bool isTypeStart(unsigned Ahead = 0) const;
  const Type *parseTypeName(); // scalar/vector/record name
  struct DeclSpec {
    const Type *BaseTy = nullptr;
    AddressSpace Space = AddressSpace::Private;
    bool Volatile = false;
    bool Const = false;
  };
  bool parseDeclSpec(DeclSpec &DS);
  /// Parses the pointer/array declarator around an identifier. On
  /// return, Ty is the full declared type and VarVolatile tells whether
  /// the declared object itself is volatile.
  bool parseDeclarator(const DeclSpec &DS, const Type *&Ty,
                       std::string &Name, bool &VarVolatile);

  // Top-level declarations.
  bool parseTopLevel();
  bool parseRecordBody(RecordType *RT);
  bool parseRecordDecl(bool IsTypedef);
  bool parseFunction(const Type *ReturnTy, std::string Name,
                     bool IsKernel);

  // Statements.
  Stmt *parseStmt();
  CompoundStmt *parseCompound();
  Stmt *parseDeclStmt();
  Stmt *parseIf();
  Stmt *parseFor();
  Stmt *parseWhile();
  Stmt *parseDo();
  Stmt *parseBarrier();

  // Expressions (typed on the fly).
  Expr *parseExpr();       // includes comma
  Expr *parseAssignment(); // excludes comma
  Expr *parseConditional();
  Expr *parseBinary(int MinPrec);
  Expr *parseUnary();
  Expr *parsePostfix();
  Expr *parsePostfixSuffix(Expr *E);
  Expr *parsePrimary();
  Expr *parseCallArgs(const std::string &Name, SourceLoc Loc);
  Expr *parseInitializer(); // brace lists allowed
  Expr *typeInitializer(Expr *Init, const Type *DeclTy);

  Expr *checked(TypedResult R) {
    if (!R.E) {
      error(R.Error);
      return nullptr;
    }
    return R.E;
  }

  std::vector<Token> Tokens;
  size_t Pos = 0;
  ASTContext &Ctx;
  TypeContext &Types;
  DiagEngine &Diags;
  Scope Scopes;
  FunctionDecl *CurFunction = nullptr;
  unsigned LoopDepth = 0;
  bool Failed = false;
};

} // namespace

//===----------------------------------------------------------------------===//
// Type parsing
//===----------------------------------------------------------------------===//

/// Maps a plain type name to a scalar kind.
static std::optional<ScalarKind> scalarKindByName(const std::string &S) {
  if (S == "char")
    return ScalarKind::Char;
  if (S == "uchar")
    return ScalarKind::UChar;
  if (S == "short")
    return ScalarKind::Short;
  if (S == "ushort")
    return ScalarKind::UShort;
  if (S == "int")
    return ScalarKind::Int;
  if (S == "uint")
    return ScalarKind::UInt;
  if (S == "long")
    return ScalarKind::Long;
  if (S == "ulong")
    return ScalarKind::ULong;
  if (S == "size_t")
    return ScalarKind::SizeT;
  return std::nullopt;
}

/// Splits names like "uint4" into (uint, 4). Returns lanes == 0 for
/// non-vector names.
static std::optional<ScalarKind> vectorElemByName(const std::string &S,
                                                  unsigned &Lanes) {
  size_t Split = S.find_last_not_of("0123456789");
  if (Split == std::string::npos || Split + 1 >= S.size())
    return std::nullopt;
  unsigned N = 0;
  for (size_t I = Split + 1; I != S.size(); ++I)
    N = N * 10 + (S[I] - '0');
  if (N != 2 && N != 4 && N != 8 && N != 16)
    return std::nullopt;
  auto SK = scalarKindByName(S.substr(0, Split + 1));
  if (!SK)
    return std::nullopt;
  Lanes = N;
  return SK;
}

bool ParserImpl::isTypeStart(unsigned Ahead) const {
  const Token &T = peek(Ahead);
  switch (T.Kind) {
  case TokKind::KwVoid:
  case TokKind::KwStruct:
  case TokKind::KwUnion:
  case TokKind::KwGlobal:
  case TokKind::KwLocal:
  case TokKind::KwConstant:
  case TokKind::KwPrivate:
  case TokKind::KwVolatile:
  case TokKind::KwConst:
    return true;
  case TokKind::Identifier: {
    if (scalarKindByName(T.Spelling))
      return true;
    unsigned Lanes;
    if (vectorElemByName(T.Spelling, Lanes))
      return true;
    return Types.findRecord(T.Spelling) != nullptr;
  }
  default:
    return false;
  }
}

const Type *ParserImpl::parseTypeName() {
  if (accept(TokKind::KwVoid))
    return Types.voidTy();
  if (check(TokKind::KwStruct) || check(TokKind::KwUnion)) {
    advance();
    if (!check(TokKind::Identifier)) {
      error("expected record name");
      return nullptr;
    }
    std::string Name = advance().Spelling;
    RecordType *RT = Types.findRecord(Name);
    if (!RT) {
      error("unknown record type '" + Name + "'");
      return nullptr;
    }
    return RT;
  }
  if (!check(TokKind::Identifier)) {
    error("expected type name");
    return nullptr;
  }
  const std::string &Name = peek().Spelling;
  if (auto SK = scalarKindByName(Name)) {
    advance();
    return Types.scalar(*SK);
  }
  unsigned Lanes;
  if (auto SK = vectorElemByName(Name, Lanes)) {
    advance();
    return Types.vector(Types.scalar(*SK), Lanes);
  }
  if (RecordType *RT = Types.findRecord(Name)) {
    advance();
    return RT;
  }
  error("unknown type name '" + Name + "'");
  return nullptr;
}

bool ParserImpl::parseDeclSpec(DeclSpec &DS) {
  for (;;) {
    if (accept(TokKind::KwGlobal)) {
      DS.Space = AddressSpace::Global;
      continue;
    }
    if (accept(TokKind::KwLocal)) {
      DS.Space = AddressSpace::Local;
      continue;
    }
    if (accept(TokKind::KwConstant)) {
      DS.Space = AddressSpace::Constant;
      continue;
    }
    if (accept(TokKind::KwPrivate)) {
      DS.Space = AddressSpace::Private;
      continue;
    }
    if (accept(TokKind::KwVolatile)) {
      DS.Volatile = true;
      continue;
    }
    if (accept(TokKind::KwConst)) {
      DS.Const = true;
      continue;
    }
    break;
  }
  DS.BaseTy = parseTypeName();
  // Trailing qualifiers (e.g. "int volatile").
  for (;;) {
    if (accept(TokKind::KwVolatile)) {
      DS.Volatile = true;
      continue;
    }
    if (accept(TokKind::KwConst)) {
      DS.Const = true;
      continue;
    }
    break;
  }
  return DS.BaseTy != nullptr;
}

bool ParserImpl::parseDeclarator(const DeclSpec &DS, const Type *&Ty,
                                 std::string &Name, bool &VarVolatile) {
  const Type *T = DS.BaseTy;
  bool PendingVolatile = DS.Volatile;
  bool SawStar = false;
  while (accept(TokKind::Star)) {
    // The first '*' captures the declared address space as the pointee
    // space; outer pointers live in private memory.
    AddressSpace PointeeSpace =
        SawStar ? AddressSpace::Private : DS.Space;
    T = Types.pointer(T, PointeeSpace, PendingVolatile);
    PendingVolatile = false;
    SawStar = true;
    while (accept(TokKind::KwVolatile))
      PendingVolatile = true;
  }
  if (!check(TokKind::Identifier)) {
    error("expected declarator name");
    return false;
  }
  Name = advance().Spelling;
  // Array suffixes.
  std::vector<uint64_t> Dims;
  while (accept(TokKind::LBracket)) {
    if (!check(TokKind::IntLiteral)) {
      error("expected constant array bound");
      return false;
    }
    Dims.push_back(advance().Value);
    if (!expect(TokKind::RBracket, "']'"))
      return false;
  }
  for (auto It = Dims.rbegin(), E = Dims.rend(); It != E; ++It)
    T = Types.array(T, *It);
  Ty = T;
  VarVolatile = PendingVolatile;
  return true;
}

//===----------------------------------------------------------------------===//
// Top-level declarations
//===----------------------------------------------------------------------===//

bool ParserImpl::parseRecordBody(RecordType *RT) {
  if (!expect(TokKind::LBrace, "'{'"))
    return false;
  while (!check(TokKind::RBrace)) {
    DeclSpec DS;
    if (!parseDeclSpec(DS))
      return false;
    if (DS.Space != AddressSpace::Private) {
      error("record fields cannot carry address-space qualifiers");
      return false;
    }
    const Type *FieldTy;
    std::string FieldName;
    bool FieldVolatile;
    if (!parseDeclarator(DS, FieldTy, FieldName, FieldVolatile))
      return false;
    RT->addField(RecordField{FieldName, FieldTy, FieldVolatile});
    while (accept(TokKind::Comma)) {
      if (!parseDeclarator(DS, FieldTy, FieldName, FieldVolatile))
        return false;
      RT->addField(RecordField{FieldName, FieldTy, FieldVolatile});
    }
    if (!expect(TokKind::Semi, "';' after field"))
      return false;
  }
  advance(); // consume '}'
  RT->setComplete();
  return true;
}

bool ParserImpl::parseRecordDecl(bool IsTypedef) {
  bool IsUnion = peek().is(TokKind::KwUnion);
  advance(); // struct/union
  std::string TagName;
  if (check(TokKind::Identifier))
    TagName = advance().Spelling;

  if (IsTypedef) {
    // typedef struct [Tag] { ... } Name;
    RecordType *RT =
        Types.createRecord(TagName.empty() ? "<anon>" : TagName, IsUnion);
    if (!parseRecordBody(RT))
      return false;
    if (!check(TokKind::Identifier)) {
      error("expected typedef name");
      return false;
    }
    std::string Alias = advance().Spelling;
    // The typedef alias becomes the record's canonical name (MiniCL
    // keeps tags and typedef names in one namespace).
    RT->setName(std::move(Alias));
    return expect(TokKind::Semi, "';' after typedef");
  }

  // struct Tag { ... };
  if (TagName.empty()) {
    error("expected record tag name");
    return false;
  }
  RecordType *RT = Types.findRecord(TagName);
  if (RT && RT->isComplete()) {
    error("redefinition of record '" + TagName + "'");
    return false;
  }
  if (!RT)
    RT = Types.createRecord(TagName, IsUnion);
  if (!parseRecordBody(RT))
    return false;
  return expect(TokKind::Semi, "';' after record definition");
}

bool ParserImpl::parseFunction(const Type *ReturnTy, std::string Name,
                               bool IsKernel) {
  FunctionDecl *F = Ctx.program().findFunction(Name);
  bool IsRedeclaration = F != nullptr;
  if (!F) {
    F = Ctx.makeFunction(Name, ReturnTy, IsKernel);
    Ctx.program().addFunction(F);
  } else if (F->getBody()) {
    error("redefinition of function '" + Name + "'");
    return false;
  }

  // Parameters.
  std::vector<VarDecl *> Params;
  if (!check(TokKind::RParen)) {
    do {
      if (accept(TokKind::KwVoid))
        break;
      DeclSpec DS;
      if (!parseDeclSpec(DS))
        return false;
      const Type *Ty;
      std::string PName;
      bool PVolatile;
      if (!parseDeclarator(DS, Ty, PName, PVolatile))
        return false;
      VarDecl *P = Ctx.makeVar(PName, Ty, AddressSpace::Private);
      P->setParam(true);
      P->setVolatile(PVolatile);
      P->setConst(DS.Const);
      Params.push_back(P);
    } while (accept(TokKind::Comma));
  }
  if (!expect(TokKind::RParen, "')'"))
    return false;

  if (accept(TokKind::Semi)) {
    // Prototype only. Record parameters if this is the first sighting.
    if (!IsRedeclaration)
      for (VarDecl *P : Params)
        F->addParam(P);
    return true;
  }

  // Definition: the definition's parameter list wins.
  if (IsRedeclaration && !F->params().empty() &&
      F->params().size() != Params.size()) {
    error("conflicting parameter counts for '" + Name + "'");
    return false;
  }
  if (F->params().empty())
    for (VarDecl *P : Params)
      F->addParam(P);
  else
    Params = F->params();

  CurFunction = F;
  Scopes.push();
  for (VarDecl *P : Params)
    Scopes.declare(P);
  CompoundStmt *Body = parseCompound();
  Scopes.pop();
  CurFunction = nullptr;
  if (!Body)
    return false;
  F->setBody(Body);
  return true;
}

bool ParserImpl::parseTopLevel() {
  if (accept(TokKind::KwTypedef)) {
    if (!check(TokKind::KwStruct) && !check(TokKind::KwUnion)) {
      error("only struct/union typedefs are supported");
      return false;
    }
    return parseRecordDecl(/*IsTypedef=*/true);
  }
  if ((check(TokKind::KwStruct) || check(TokKind::KwUnion)) &&
      peek(1).is(TokKind::Identifier) && peek(2).is(TokKind::LBrace))
    return parseRecordDecl(/*IsTypedef=*/false);

  bool IsKernel = accept(TokKind::KwKernel);
  DeclSpec DS;
  if (!parseDeclSpec(DS))
    return false;
  const Type *Ty = DS.BaseTy;
  while (accept(TokKind::Star))
    Ty = Types.pointer(Ty, DS.Space);
  if (!check(TokKind::Identifier)) {
    error("expected function name");
    return false;
  }
  std::string Name = advance().Spelling;
  if (!expect(TokKind::LParen, "'(' after function name"))
    return false;
  return parseFunction(Ty, std::move(Name), IsKernel);
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

CompoundStmt *ParserImpl::parseCompound() {
  if (!expect(TokKind::LBrace, "'{'"))
    return nullptr;
  Scopes.push();
  std::vector<Stmt *> Body;
  while (!check(TokKind::RBrace) && !check(TokKind::Eof)) {
    Stmt *S = parseStmt();
    if (!S) {
      Scopes.pop();
      return nullptr;
    }
    Body.push_back(S);
  }
  Scopes.pop();
  if (!expect(TokKind::RBrace, "'}'"))
    return nullptr;
  return Ctx.makeStmt<CompoundStmt>(std::move(Body));
}

Stmt *ParserImpl::parseDeclStmt() {
  DeclSpec DS;
  if (!parseDeclSpec(DS))
    return nullptr;
  const Type *Ty;
  std::string Name;
  bool VarVolatile;
  if (!parseDeclarator(DS, Ty, Name, VarVolatile))
    return nullptr;

  AddressSpace VarSpace = isa<PointerType>(Ty) ? AddressSpace::Private
                                               : DS.Space;
  VarDecl *D = Ctx.makeVar(Name, Ty, VarSpace);
  D->setVolatile(DS.Volatile || VarVolatile);
  D->setConst(DS.Const);
  if (accept(TokKind::Equal)) {
    Expr *Init = parseInitializer();
    if (!Init)
      return nullptr;
    Init = typeInitializer(Init, Ty);
    if (!Init)
      return nullptr;
    D->setInit(Init);
  }
  if (!Scopes.declare(D)) {
    error("redefinition of '" + Name + "'");
    return nullptr;
  }
  // Multiple declarators per statement are normalised into a compound.
  if (check(TokKind::Comma)) {
    std::vector<Stmt *> Group;
    Group.push_back(Ctx.makeStmt<DeclStmt>(D));
    while (accept(TokKind::Comma)) {
      if (!parseDeclarator(DS, Ty, Name, VarVolatile))
        return nullptr;
      VarDecl *D2 = Ctx.makeVar(
          Name, Ty, isa<PointerType>(Ty) ? AddressSpace::Private : DS.Space);
      D2->setVolatile(DS.Volatile || VarVolatile);
      if (accept(TokKind::Equal)) {
        Expr *Init = parseInitializer();
        if (!Init)
          return nullptr;
        Init = typeInitializer(Init, Ty);
        if (!Init)
          return nullptr;
        D2->setInit(Init);
      }
      if (!Scopes.declare(D2)) {
        error("redefinition of '" + Name + "'");
        return nullptr;
      }
      Group.push_back(Ctx.makeStmt<DeclStmt>(D2));
    }
    if (!expect(TokKind::Semi, "';' after declaration"))
      return nullptr;
    return Ctx.makeStmt<CompoundStmt>(std::move(Group));
  }
  if (!expect(TokKind::Semi, "';' after declaration"))
    return nullptr;
  return Ctx.makeStmt<DeclStmt>(D);
}

Stmt *ParserImpl::parseIf() {
  advance(); // if
  if (!expect(TokKind::LParen, "'(' after if"))
    return nullptr;
  Expr *Cond = parseExpr();
  if (!Cond || !expect(TokKind::RParen, "')'"))
    return nullptr;
  Stmt *Then = parseStmt();
  if (!Then)
    return nullptr;
  Stmt *Else = nullptr;
  if (accept(TokKind::KwElse)) {
    Else = parseStmt();
    if (!Else)
      return nullptr;
  }
  return Ctx.makeStmt<IfStmt>(Cond, Then, Else);
}

Stmt *ParserImpl::parseFor() {
  advance(); // for
  if (!expect(TokKind::LParen, "'(' after for"))
    return nullptr;
  Scopes.push();
  Stmt *Init = nullptr;
  if (!accept(TokKind::Semi)) {
    if (isTypeStart()) {
      Init = parseDeclStmt(); // consumes ';'
    } else {
      Expr *E = parseExpr();
      if (!E) {
        Scopes.pop();
        return nullptr;
      }
      Init = Ctx.makeStmt<ExprStmt>(E);
      if (!expect(TokKind::Semi, "';' in for")) {
        Scopes.pop();
        return nullptr;
      }
    }
    if (!Init) {
      Scopes.pop();
      return nullptr;
    }
  }
  Expr *Cond = nullptr;
  if (!check(TokKind::Semi)) {
    Cond = parseExpr();
    if (!Cond) {
      Scopes.pop();
      return nullptr;
    }
  }
  if (!expect(TokKind::Semi, "';' in for")) {
    Scopes.pop();
    return nullptr;
  }
  Expr *Step = nullptr;
  if (!check(TokKind::RParen)) {
    Step = parseExpr();
    if (!Step) {
      Scopes.pop();
      return nullptr;
    }
  }
  if (!expect(TokKind::RParen, "')'")) {
    Scopes.pop();
    return nullptr;
  }
  ++LoopDepth;
  Stmt *Body = parseStmt();
  --LoopDepth;
  Scopes.pop();
  if (!Body)
    return nullptr;
  return Ctx.makeStmt<ForStmt>(Init, Cond, Step, Body);
}

Stmt *ParserImpl::parseWhile() {
  advance(); // while
  if (!expect(TokKind::LParen, "'(' after while"))
    return nullptr;
  Expr *Cond = parseExpr();
  if (!Cond || !expect(TokKind::RParen, "')'"))
    return nullptr;
  ++LoopDepth;
  Stmt *Body = parseStmt();
  --LoopDepth;
  if (!Body)
    return nullptr;
  return Ctx.makeStmt<WhileStmt>(Cond, Body);
}

Stmt *ParserImpl::parseDo() {
  advance(); // do
  ++LoopDepth;
  Stmt *Body = parseStmt();
  --LoopDepth;
  if (!Body)
    return nullptr;
  if (!expect(TokKind::KwWhile, "'while' after do body") ||
      !expect(TokKind::LParen, "'('"))
    return nullptr;
  Expr *Cond = parseExpr();
  if (!Cond || !expect(TokKind::RParen, "')'") ||
      !expect(TokKind::Semi, "';'"))
    return nullptr;
  return Ctx.makeStmt<DoStmt>(Body, Cond);
}

Stmt *ParserImpl::parseBarrier() {
  advance(); // barrier
  if (!expect(TokKind::LParen, "'(' after barrier"))
    return nullptr;
  uint8_t Flags = 0;
  do {
    if (!check(TokKind::Identifier)) {
      error("expected memory fence flag");
      return nullptr;
    }
    std::string Flag = advance().Spelling;
    if (Flag == "CLK_LOCAL_MEM_FENCE")
      Flags |= BarrierStmt::LocalFence;
    else if (Flag == "CLK_GLOBAL_MEM_FENCE")
      Flags |= BarrierStmt::GlobalFence;
    else {
      error("unknown memory fence flag '" + Flag + "'");
      return nullptr;
    }
  } while (accept(TokKind::Pipe));
  if (!expect(TokKind::RParen, "')'") || !expect(TokKind::Semi, "';'"))
    return nullptr;
  return Ctx.makeStmt<BarrierStmt>(Flags);
}

Stmt *ParserImpl::parseStmt() {
  switch (peek().Kind) {
  case TokKind::LBrace:
    return parseCompound();
  case TokKind::Semi:
    advance();
    return Ctx.makeStmt<NullStmt>();
  case TokKind::KwIf:
    return parseIf();
  case TokKind::KwFor:
    return parseFor();
  case TokKind::KwWhile:
    return parseWhile();
  case TokKind::KwDo:
    return parseDo();
  case TokKind::KwBarrier:
    return parseBarrier();
  case TokKind::KwReturn: {
    advance();
    Expr *Value = nullptr;
    if (!check(TokKind::Semi)) {
      Value = parseExpr();
      if (!Value)
        return nullptr;
      assert(CurFunction && "return outside a function");
      const Type *RetTy = CurFunction->getReturnType();
      if (Value->getType() != RetTy) {
        Value = convertTo(Ctx, Value, RetTy);
        if (!Value) {
          error("return value type mismatch");
          return nullptr;
        }
      }
    } else if (CurFunction && !CurFunction->getReturnType()->isVoid()) {
      error("non-void function must return a value");
      return nullptr;
    }
    if (!expect(TokKind::Semi, "';' after return"))
      return nullptr;
    return Ctx.makeStmt<ReturnStmt>(Value);
  }
  case TokKind::KwBreak:
    advance();
    if (LoopDepth == 0) {
      error("'break' outside of a loop");
      return nullptr;
    }
    if (!expect(TokKind::Semi, "';' after break"))
      return nullptr;
    return Ctx.makeStmt<BreakStmt>();
  case TokKind::KwContinue:
    advance();
    if (LoopDepth == 0) {
      error("'continue' outside of a loop");
      return nullptr;
    }
    if (!expect(TokKind::Semi, "';' after continue"))
      return nullptr;
    return Ctx.makeStmt<ContinueStmt>();
  case TokKind::KwStruct:
  case TokKind::KwUnion:
    // Local record definition (Figure 1(c)); hoisted to the global
    // record namespace.
    if (peek(1).is(TokKind::Identifier) && peek(2).is(TokKind::LBrace)) {
      if (!parseRecordDecl(/*IsTypedef=*/false))
        return nullptr;
      return Ctx.makeStmt<NullStmt>();
    }
    return parseDeclStmt();
  default:
    break;
  }
  if (isTypeStart())
    return parseDeclStmt();
  Expr *E = parseExpr();
  if (!E || !expect(TokKind::Semi, "';' after expression"))
    return nullptr;
  return Ctx.makeStmt<ExprStmt>(E);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Binary precedence for the climbing parser; 0 = not a binary op.
static int tokenPrecedence(TokKind K) {
  switch (K) {
  case TokKind::Star:
  case TokKind::Slash:
  case TokKind::Percent:
    return 13;
  case TokKind::Plus:
  case TokKind::Minus:
    return 12;
  case TokKind::LessLess:
  case TokKind::GreaterGreater:
    return 11;
  case TokKind::Less:
  case TokKind::Greater:
  case TokKind::LessEqual:
  case TokKind::GreaterEqual:
    return 10;
  case TokKind::EqualEqual:
  case TokKind::BangEqual:
    return 9;
  case TokKind::Amp:
    return 8;
  case TokKind::Caret:
    return 7;
  case TokKind::Pipe:
    return 6;
  case TokKind::AmpAmp:
    return 5;
  case TokKind::PipePipe:
    return 4;
  default:
    return 0;
  }
}

static BinOp tokenBinOp(TokKind K) {
  switch (K) {
  case TokKind::Star:
    return BinOp::Mul;
  case TokKind::Slash:
    return BinOp::Div;
  case TokKind::Percent:
    return BinOp::Mod;
  case TokKind::Plus:
    return BinOp::Add;
  case TokKind::Minus:
    return BinOp::Sub;
  case TokKind::LessLess:
    return BinOp::Shl;
  case TokKind::GreaterGreater:
    return BinOp::Shr;
  case TokKind::Less:
    return BinOp::Lt;
  case TokKind::Greater:
    return BinOp::Gt;
  case TokKind::LessEqual:
    return BinOp::Le;
  case TokKind::GreaterEqual:
    return BinOp::Ge;
  case TokKind::EqualEqual:
    return BinOp::Eq;
  case TokKind::BangEqual:
    return BinOp::Ne;
  case TokKind::Amp:
    return BinOp::BitAnd;
  case TokKind::Caret:
    return BinOp::BitXor;
  case TokKind::Pipe:
    return BinOp::BitOr;
  case TokKind::AmpAmp:
    return BinOp::LAnd;
  case TokKind::PipePipe:
    return BinOp::LOr;
  default:
    assert(false && "not a binary operator token");
    return BinOp::Add;
  }
}

static std::optional<AssignOp> tokenAssignOp(TokKind K) {
  switch (K) {
  case TokKind::Equal:
    return AssignOp::Assign;
  case TokKind::PlusEqual:
    return AssignOp::Add;
  case TokKind::MinusEqual:
    return AssignOp::Sub;
  case TokKind::StarEqual:
    return AssignOp::Mul;
  case TokKind::SlashEqual:
    return AssignOp::Div;
  case TokKind::PercentEqual:
    return AssignOp::Mod;
  case TokKind::LessLessEqual:
    return AssignOp::Shl;
  case TokKind::GreaterGreaterEqual:
    return AssignOp::Shr;
  case TokKind::AmpEqual:
    return AssignOp::And;
  case TokKind::PipeEqual:
    return AssignOp::Or;
  case TokKind::CaretEqual:
    return AssignOp::Xor;
  default:
    return std::nullopt;
  }
}

/// Builtins callable by name (excluding convert_* which is handled by
/// prefix).
static std::optional<Builtin> builtinByName(const std::string &Name) {
  static const std::map<std::string, Builtin> Table = {
      {"get_global_id", Builtin::GetGlobalId},
      {"get_local_id", Builtin::GetLocalId},
      {"get_group_id", Builtin::GetGroupId},
      {"get_global_size", Builtin::GetGlobalSize},
      {"get_local_size", Builtin::GetLocalSize},
      {"get_num_groups", Builtin::GetNumGroups},
      {"clamp", Builtin::Clamp},
      {"rotate", Builtin::Rotate},
      {"min", Builtin::Min},
      {"max", Builtin::Max},
      {"abs", Builtin::Abs},
      {"add_sat", Builtin::AddSat},
      {"sub_sat", Builtin::SubSat},
      {"hadd", Builtin::Hadd},
      {"mul_hi", Builtin::MulHi},
      {"atomic_add", Builtin::AtomicAdd},
      {"atomic_sub", Builtin::AtomicSub},
      {"atomic_inc", Builtin::AtomicInc},
      {"atomic_dec", Builtin::AtomicDec},
      {"atomic_min", Builtin::AtomicMin},
      {"atomic_max", Builtin::AtomicMax},
      {"atomic_and", Builtin::AtomicAnd},
      {"atomic_or", Builtin::AtomicOr},
      {"atomic_xor", Builtin::AtomicXor},
      {"atomic_xchg", Builtin::AtomicXchg},
      {"atomic_cmpxchg", Builtin::AtomicCmpxchg},
      {"safe_add", Builtin::SafeAdd},
      {"safe_sub", Builtin::SafeSub},
      {"safe_mul", Builtin::SafeMul},
      {"safe_div", Builtin::SafeDiv},
      {"safe_mod", Builtin::SafeMod},
      {"safe_lshift", Builtin::SafeShl},
      {"safe_rshift", Builtin::SafeShr},
      {"safe_unary_minus", Builtin::SafeNeg},
      {"safe_clamp", Builtin::SafeClamp},
      {"safe_rotate", Builtin::SafeRotate},
  };
  auto It = Table.find(Name);
  if (It == Table.end())
    return std::nullopt;
  return It->second;
}

Expr *ParserImpl::parseExpr() {
  Expr *E = parseAssignment();
  if (!E)
    return nullptr;
  while (accept(TokKind::Comma)) {
    Expr *RHS = parseAssignment();
    if (!RHS)
      return nullptr;
    E = checked(buildBinary(Ctx, BinOp::Comma, E, RHS));
    if (!E)
      return nullptr;
  }
  return E;
}

Expr *ParserImpl::parseAssignment() {
  Expr *LHS = parseConditional();
  if (!LHS)
    return nullptr;
  auto Op = tokenAssignOp(peek().Kind);
  if (!Op)
    return LHS;
  advance();
  Expr *RHS = parseAssignment();
  if (!RHS)
    return nullptr;
  return checked(buildAssign(Ctx, *Op, LHS, RHS));
}

Expr *ParserImpl::parseConditional() {
  Expr *Cond = parseBinary(1);
  if (!Cond)
    return nullptr;
  if (!accept(TokKind::Question))
    return Cond;
  Expr *TrueE = parseExpr();
  if (!TrueE || !expect(TokKind::Colon, "':' in conditional"))
    return nullptr;
  Expr *FalseE = parseConditional();
  if (!FalseE)
    return nullptr;
  return checked(buildConditional(Ctx, Cond, TrueE, FalseE));
}

Expr *ParserImpl::parseBinary(int MinPrec) {
  Expr *LHS = parseUnary();
  if (!LHS)
    return nullptr;
  for (;;) {
    int Prec = tokenPrecedence(peek().Kind);
    if (Prec < MinPrec || Prec == 0)
      return LHS;
    BinOp Op = tokenBinOp(advance().Kind);
    Expr *RHS = parseBinary(Prec + 1);
    if (!RHS)
      return nullptr;
    LHS = checked(buildBinary(Ctx, Op, LHS, RHS));
    if (!LHS)
      return nullptr;
  }
}

Expr *ParserImpl::parseUnary() {
  switch (peek().Kind) {
  case TokKind::Plus:
    advance();
    return checked(buildUnary(Ctx, UnOp::Plus, parseUnary()));
  case TokKind::Minus: {
    advance();
    Expr *Sub = parseUnary();
    if (!Sub)
      return nullptr;
    return checked(buildUnary(Ctx, UnOp::Minus, Sub));
  }
  case TokKind::Bang: {
    advance();
    Expr *Sub = parseUnary();
    if (!Sub)
      return nullptr;
    return checked(buildUnary(Ctx, UnOp::Not, Sub));
  }
  case TokKind::Tilde: {
    advance();
    Expr *Sub = parseUnary();
    if (!Sub)
      return nullptr;
    return checked(buildUnary(Ctx, UnOp::BitNot, Sub));
  }
  case TokKind::PlusPlus: {
    advance();
    Expr *Sub = parseUnary();
    if (!Sub)
      return nullptr;
    return checked(buildUnary(Ctx, UnOp::PreInc, Sub));
  }
  case TokKind::MinusMinus: {
    advance();
    Expr *Sub = parseUnary();
    if (!Sub)
      return nullptr;
    return checked(buildUnary(Ctx, UnOp::PreDec, Sub));
  }
  case TokKind::Star: {
    advance();
    Expr *Sub = parseUnary();
    if (!Sub)
      return nullptr;
    return checked(buildUnary(Ctx, UnOp::Deref, Sub));
  }
  case TokKind::Amp: {
    advance();
    Expr *Sub = parseUnary();
    if (!Sub)
      return nullptr;
    return checked(buildUnary(Ctx, UnOp::AddrOf, Sub));
  }
  case TokKind::KwSizeof:
    error("sizeof is not supported in MiniCL");
    return nullptr;
  case TokKind::LParen:
    // Possible cast or vector construction.
    if (isTypeStart(1)) {
      advance(); // '('
      const Type *Ty = parseTypeName();
      if (!Ty || !expect(TokKind::RParen, "')' after cast type"))
        return nullptr;
      if (const auto *VT = dyn_cast<VectorType>(Ty)) {
        // (int4)(a, b, ...) vector construction.
        if (!expect(TokKind::LParen, "'(' after vector type"))
          return nullptr;
        std::vector<Expr *> Elems;
        do {
          Expr *E = parseAssignment();
          if (!E)
            return nullptr;
          Elems.push_back(E);
        } while (accept(TokKind::Comma));
        if (!expect(TokKind::RParen, "')'"))
          return nullptr;
        // Count lanes: scalars contribute 1, vectors their width.
        unsigned Lanes = 0;
        for (Expr *E : Elems) {
          if (const auto *EV = dyn_cast<VectorType>(E->getType()))
            Lanes += EV->getNumLanes();
          else
            ++Lanes;
        }
        if (Elems.size() == 1 && Lanes == 1) {
          // Splat form (T4)(x).
          Expr *Conv = convertTo(Ctx, Elems[0], VT);
          if (!Conv) {
            error("cannot splat operand into " + VT->str());
            return nullptr;
          }
          return Conv;
        }
        if (Lanes != VT->getNumLanes()) {
          error("vector literal lane count mismatch for " + VT->str());
          return nullptr;
        }
        // Convert scalar elements to the element type; vector elements
        // must share it.
        for (Expr *&E : Elems) {
          if (const auto *EV = dyn_cast<VectorType>(E->getType())) {
            if (EV->getElementType() != VT->getElementType()) {
              error("vector literal element type mismatch");
              return nullptr;
            }
          } else {
            E = convertTo(Ctx, E, VT->getElementType());
            if (!E) {
              error("vector literal element type mismatch");
              return nullptr;
            }
          }
        }
        // Swizzles/indexing may follow a construct: (int2)(1,2).y.
        return parsePostfixSuffix(
            Ctx.makeExpr<VectorConstructExpr>(std::move(Elems), VT));
      }
      // Scalar cast.
      Expr *Sub = parseUnary();
      if (!Sub)
        return nullptr;
      if (!isa<ScalarType>(Ty) || !isa<ScalarType>(Sub->getType())) {
        error("casts are only supported between scalar types");
        return nullptr;
      }
      return Ctx.makeExpr<CastExpr>(Sub, Ty);
    }
    return parsePostfix();
  default:
    return parsePostfix();
  }
}

/// Decodes a swizzle selector ("xyzw" or "s<hex digits>"). Returns
/// false if \p Sel is not a swizzle.
static bool decodeSwizzle(const std::string &Sel, unsigned BaseLanes,
                          std::vector<unsigned> &Indices) {
  auto XyzwIndex = [](char C) -> int {
    switch (C) {
    case 'x':
      return 0;
    case 'y':
      return 1;
    case 'z':
      return 2;
    case 'w':
      return 3;
    default:
      return -1;
    }
  };
  if ((Sel[0] == 's' || Sel[0] == 'S') && Sel.size() > 1) {
    for (size_t I = 1; I != Sel.size(); ++I) {
      char C = static_cast<char>(std::tolower(Sel[I]));
      int V;
      if (C >= '0' && C <= '9')
        V = C - '0';
      else if (C >= 'a' && C <= 'f')
        V = C - 'a' + 10;
      else
        return false;
      Indices.push_back(static_cast<unsigned>(V));
    }
  } else {
    for (char C : Sel) {
      int V = XyzwIndex(C);
      if (V < 0)
        return false;
      Indices.push_back(static_cast<unsigned>(V));
    }
  }
  if (Indices.empty() ||
      (Indices.size() != 1 && Indices.size() != 2 && Indices.size() != 4 &&
       Indices.size() != 8 && Indices.size() != 16))
    return false;
  for (unsigned I : Indices)
    if (I >= BaseLanes)
      return false;
  return true;
}

Expr *ParserImpl::parsePostfix() {
  Expr *E = parsePrimary();
  if (!E)
    return nullptr;
  return parsePostfixSuffix(E);
}

Expr *ParserImpl::parsePostfixSuffix(Expr *E) {
  for (;;) {
    if (accept(TokKind::LBracket)) {
      Expr *Index = parseExpr();
      if (!Index || !expect(TokKind::RBracket, "']'"))
        return nullptr;
      E = checked(buildIndex(Ctx, E, Index));
      if (!E)
        return nullptr;
      continue;
    }
    if (check(TokKind::Dot) || check(TokKind::Arrow)) {
      bool IsArrow = advance().is(TokKind::Arrow);
      if (!check(TokKind::Identifier)) {
        error("expected member name");
        return nullptr;
      }
      std::string Member = advance().Spelling;
      const Type *BaseTy = E->getType();
      if (IsArrow) {
        const auto *PT = dyn_cast<PointerType>(BaseTy);
        if (!PT) {
          error("'->' applied to non-pointer");
          return nullptr;
        }
        BaseTy = PT->getPointeeType();
      }
      if (const auto *VT = dyn_cast<VectorType>(BaseTy)) {
        if (IsArrow) {
          error("'->' applied to vector");
          return nullptr;
        }
        std::vector<unsigned> Indices;
        if (!decodeSwizzle(Member, VT->getNumLanes(), Indices)) {
          error("invalid vector component selector '." + Member + "'");
          return nullptr;
        }
        const Type *ResTy =
            Indices.size() == 1
                ? static_cast<const Type *>(VT->getElementType())
                : Types.vector(VT->getElementType(), Indices.size());
        E = Ctx.makeExpr<SwizzleExpr>(E, std::move(Indices), ResTy);
        continue;
      }
      const auto *RT = dyn_cast<RecordType>(BaseTy);
      if (!RT) {
        error("member access on non-record type " + BaseTy->str());
        return nullptr;
      }
      int Idx = RT->fieldIndex(Member);
      if (Idx < 0) {
        error("no member '" + Member + "' in " + RT->str());
        return nullptr;
      }
      E = Ctx.makeExpr<MemberExpr>(E, static_cast<unsigned>(Idx), IsArrow,
                                   RT->getField(Idx).Ty);
      continue;
    }
    if (check(TokKind::PlusPlus) || check(TokKind::MinusMinus)) {
      UnOp Op = advance().is(TokKind::PlusPlus) ? UnOp::PostInc
                                                : UnOp::PostDec;
      E = checked(buildUnary(Ctx, Op, E));
      if (!E)
        return nullptr;
      continue;
    }
    return E;
  }
}

Expr *ParserImpl::parseCallArgs(const std::string &Name, SourceLoc Loc) {
  std::vector<Expr *> Args;
  if (!check(TokKind::RParen)) {
    do {
      Expr *A = parseAssignment();
      if (!A)
        return nullptr;
      Args.push_back(A);
    } while (accept(TokKind::Comma));
  }
  if (!expect(TokKind::RParen, "')' after call arguments"))
    return nullptr;

  // convert_<type>(v) builtins.
  if (startsWith(Name, "convert_")) {
    std::string TyName = Name.substr(8);
    unsigned Lanes;
    auto SK = vectorElemByName(TyName, Lanes);
    if (!SK) {
      error("unknown conversion '" + Name + "'");
      return nullptr;
    }
    const VectorType *Target = Types.vector(Types.scalar(*SK), Lanes);
    return checked(buildBuiltinCall(Ctx, Builtin::ConvertVector,
                                    std::move(Args), Target));
  }

  if (auto B = builtinByName(Name))
    return checked(buildBuiltinCall(Ctx, *B, std::move(Args)));

  FunctionDecl *Callee = Ctx.program().findFunction(Name);
  if (!Callee) {
    error("call to undeclared function '" + Name + "'");
    return nullptr;
  }
  if (Callee->params().size() != Args.size()) {
    error("wrong number of arguments to '" + Name + "'");
    return nullptr;
  }
  for (size_t I = 0, N = Args.size(); I != N; ++I) {
    const Type *ParamTy = Callee->params()[I]->getType();
    if (Args[I]->getType() == ParamTy)
      continue;
    Expr *Conv = convertTo(Ctx, Args[I], ParamTy);
    if (!Conv) {
      error("argument type mismatch in call to '" + Name + "'");
      return nullptr;
    }
    Args[I] = Conv;
  }
  return Ctx.makeExpr<CallExpr>(Callee, std::move(Args),
                                Callee->getReturnType());
}

Expr *ParserImpl::parsePrimary() {
  const Token &T = peek();
  switch (T.Kind) {
  case TokKind::IntLiteral: {
    advance();
    const ScalarType *Ty;
    if (T.HasUnsignedSuffix && T.HasLongSuffix)
      Ty = Types.ulongTy();
    else if (T.HasLongSuffix)
      Ty = Types.longTy();
    else if (T.HasUnsignedSuffix)
      Ty = T.Value > 0xffffffffULL ? Types.ulongTy() : Types.uintTy();
    else if (T.Value > 0x7fffffffULL)
      Ty = T.Value > 0x7fffffffffffffffULL ? Types.ulongTy()
                                           : Types.longTy();
    else
      Ty = Types.intTy();
    Expr *E = Ctx.intLit(T.Value, Ty);
    E->setLoc(T.Loc);
    return E;
  }
  case TokKind::Identifier: {
    std::string Name = advance().Spelling;
    if (accept(TokKind::LParen))
      return parseCallArgs(Name, T.Loc);
    if (VarDecl *D = Scopes.lookup(Name)) {
      Expr *E = Ctx.ref(D);
      E->setLoc(T.Loc);
      return E;
    }
    error("use of undeclared identifier '" + Name + "'");
    return nullptr;
  }
  case TokKind::LParen: {
    advance();
    Expr *E = parseExpr();
    if (!E || !expect(TokKind::RParen, "')'"))
      return nullptr;
    return E;
  }
  default:
    error("expected expression");
    return nullptr;
  }
}

Expr *ParserImpl::parseInitializer() {
  if (!check(TokKind::LBrace))
    return parseAssignment();
  advance(); // '{'
  std::vector<Expr *> Inits;
  if (!check(TokKind::RBrace)) {
    do {
      if (check(TokKind::RBrace))
        break; // trailing comma
      Expr *E = parseInitializer();
      if (!E)
        return nullptr;
      Inits.push_back(E);
    } while (accept(TokKind::Comma));
  }
  if (!expect(TokKind::RBrace, "'}' after initializer list"))
    return nullptr;
  // Untyped until matched against the declared type.
  return Ctx.makeExpr<InitListExpr>(std::move(Inits), nullptr);
}

Expr *ParserImpl::typeInitializer(Expr *Init, const Type *DeclTy) {
  auto *IL = dyn_cast<InitListExpr>(Init);
  if (!IL) {
    if (Init->getType() == DeclTy)
      return Init;
    Expr *Conv = convertTo(Ctx, Init, DeclTy);
    if (!Conv) {
      error("cannot initialise " + DeclTy->str() + " from " +
            Init->getType()->str());
      return nullptr;
    }
    return Conv;
  }

  // Brace list: match element-wise against the declared aggregate.
  std::vector<Expr *> Typed;
  if (const auto *RT = dyn_cast<RecordType>(DeclTy)) {
    // Unions initialise the first member only (C99 6.7.8p10) - the
    // behaviour the Figure 2(a) bug model corrupts.
    unsigned Limit = RT->isUnion() ? 1u : RT->getNumFields();
    if (IL->inits().size() > Limit) {
      error("too many initialisers for " + DeclTy->str());
      return nullptr;
    }
    for (size_t I = 0; I != IL->inits().size(); ++I) {
      Expr *E = typeInitializer(IL->inits()[I], RT->getField(I).Ty);
      if (!E)
        return nullptr;
      Typed.push_back(E);
    }
  } else if (const auto *AT = dyn_cast<ArrayType>(DeclTy)) {
    if (IL->inits().size() > AT->getNumElements()) {
      error("too many initialisers for " + DeclTy->str());
      return nullptr;
    }
    for (Expr *Sub : IL->inits()) {
      Expr *E = typeInitializer(Sub, AT->getElementType());
      if (!E)
        return nullptr;
      Typed.push_back(E);
    }
  } else if (IL->inits().size() == 1) {
    // Scalar braced initialiser `{0}`.
    return typeInitializer(IL->inits()[0], DeclTy);
  } else {
    error("invalid brace initialiser for " + DeclTy->str());
    return nullptr;
  }
  return Ctx.makeExpr<InitListExpr>(std::move(Typed), DeclTy);
}

//===----------------------------------------------------------------------===//
// Entry point
//===----------------------------------------------------------------------===//

bool ParserImpl::run() {
  Scopes.push(); // translation-unit scope (unused; uniformity)
  while (!check(TokKind::Eof)) {
    if (!parseTopLevel())
      return false;
  }
  Scopes.pop();
  return !Failed && !Diags.hasErrors();
}

bool clfuzz::parseProgram(const std::string &Source, ASTContext &Ctx,
                          DiagEngine &Diags) {
  std::vector<Token> Tokens = lex(Source, Diags);
  if (Diags.hasErrors())
    return false;
  ParserImpl P(std::move(Tokens), Ctx, Diags);
  return P.run();
}
