//===- Lexer.cpp - MiniCL lexer --------------------------------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "minicl/Lexer.h"

#include <cctype>
#include <map>

using namespace clfuzz;

static const std::map<std::string, TokKind> &keywordTable() {
  static const std::map<std::string, TokKind> Table = {
      {"kernel", TokKind::KwKernel},
      {"__kernel", TokKind::KwKernel},
      {"void", TokKind::KwVoid},
      {"struct", TokKind::KwStruct},
      {"union", TokKind::KwUnion},
      {"typedef", TokKind::KwTypedef},
      {"if", TokKind::KwIf},
      {"else", TokKind::KwElse},
      {"for", TokKind::KwFor},
      {"while", TokKind::KwWhile},
      {"do", TokKind::KwDo},
      {"return", TokKind::KwReturn},
      {"break", TokKind::KwBreak},
      {"continue", TokKind::KwContinue},
      {"volatile", TokKind::KwVolatile},
      {"const", TokKind::KwConst},
      {"global", TokKind::KwGlobal},
      {"__global", TokKind::KwGlobal},
      {"local", TokKind::KwLocal},
      {"__local", TokKind::KwLocal},
      {"constant", TokKind::KwConstant},
      {"__constant", TokKind::KwConstant},
      {"private", TokKind::KwPrivate},
      {"__private", TokKind::KwPrivate},
      {"barrier", TokKind::KwBarrier},
      {"sizeof", TokKind::KwSizeof},
  };
  return Table;
}

namespace {

class LexerImpl {
public:
  LexerImpl(const std::string &Source, DiagEngine &Diags)
      : Src(Source), Diags(Diags) {}

  std::vector<Token> run();

private:
  char peek(unsigned Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }
  char advance() {
    char C = Src[Pos++];
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }
  bool match(char C) {
    if (peek() != C)
      return false;
    advance();
    return true;
  }
  SourceLoc loc() const { return SourceLoc{Line, Col}; }

  void lexNumber(Token &T);
  void lexIdentifier(Token &T);
  bool skipTrivia();

  const std::string &Src;
  DiagEngine &Diags;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Col = 1;
};

} // namespace

bool LexerImpl::skipTrivia() {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = loc();
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0') {
          Diags.error(Start, "unterminated block comment");
          return false;
        }
        advance();
      }
      advance();
      advance();
      continue;
    }
    return true;
  }
}

void LexerImpl::lexNumber(Token &T) {
  T.Kind = TokKind::IntLiteral;
  uint64_t Value = 0;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    advance();
    advance();
    while (std::isxdigit(static_cast<unsigned char>(peek()))) {
      char C = advance();
      unsigned Digit = std::isdigit(static_cast<unsigned char>(C))
                           ? C - '0'
                           : std::tolower(C) - 'a' + 10;
      Value = Value * 16 + Digit;
    }
  } else {
    while (std::isdigit(static_cast<unsigned char>(peek())))
      Value = Value * 10 + (advance() - '0');
  }
  // Suffixes: any order of u/U and l/L (one each).
  for (int I = 0; I != 2; ++I) {
    if (peek() == 'u' || peek() == 'U') {
      advance();
      T.HasUnsignedSuffix = true;
    } else if (peek() == 'l' || peek() == 'L') {
      advance();
      T.HasLongSuffix = true;
    }
  }
  T.Value = Value;
}

void LexerImpl::lexIdentifier(Token &T) {
  std::string Name;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    Name += advance();
  const auto &Table = keywordTable();
  auto It = Table.find(Name);
  T.Kind = It != Table.end() ? It->second : TokKind::Identifier;
  T.Spelling = std::move(Name);
}

std::vector<Token> LexerImpl::run() {
  std::vector<Token> Tokens;
  for (;;) {
    if (!skipTrivia())
      break;
    Token T;
    T.Loc = loc();
    char C = peek();
    if (C == '\0')
      break;
    if (std::isdigit(static_cast<unsigned char>(C))) {
      lexNumber(T);
      Tokens.push_back(std::move(T));
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      lexIdentifier(T);
      Tokens.push_back(std::move(T));
      continue;
    }
    advance();
    switch (C) {
    case '(':
      T.Kind = TokKind::LParen;
      break;
    case ')':
      T.Kind = TokKind::RParen;
      break;
    case '{':
      T.Kind = TokKind::LBrace;
      break;
    case '}':
      T.Kind = TokKind::RBrace;
      break;
    case '[':
      T.Kind = TokKind::LBracket;
      break;
    case ']':
      T.Kind = TokKind::RBracket;
      break;
    case ';':
      T.Kind = TokKind::Semi;
      break;
    case ',':
      T.Kind = TokKind::Comma;
      break;
    case '.':
      T.Kind = TokKind::Dot;
      break;
    case '?':
      T.Kind = TokKind::Question;
      break;
    case ':':
      T.Kind = TokKind::Colon;
      break;
    case '~':
      T.Kind = TokKind::Tilde;
      break;
    case '!':
      T.Kind = match('=') ? TokKind::BangEqual : TokKind::Bang;
      break;
    case '=':
      T.Kind = match('=') ? TokKind::EqualEqual : TokKind::Equal;
      break;
    case '+':
      T.Kind = match('+')   ? TokKind::PlusPlus
               : match('=') ? TokKind::PlusEqual
                            : TokKind::Plus;
      break;
    case '-':
      T.Kind = match('-')   ? TokKind::MinusMinus
               : match('=') ? TokKind::MinusEqual
               : match('>') ? TokKind::Arrow
                            : TokKind::Minus;
      break;
    case '*':
      T.Kind = match('=') ? TokKind::StarEqual : TokKind::Star;
      break;
    case '/':
      T.Kind = match('=') ? TokKind::SlashEqual : TokKind::Slash;
      break;
    case '%':
      T.Kind = match('=') ? TokKind::PercentEqual : TokKind::Percent;
      break;
    case '&':
      T.Kind = match('&')   ? TokKind::AmpAmp
               : match('=') ? TokKind::AmpEqual
                            : TokKind::Amp;
      break;
    case '|':
      T.Kind = match('|')   ? TokKind::PipePipe
               : match('=') ? TokKind::PipeEqual
                            : TokKind::Pipe;
      break;
    case '^':
      T.Kind = match('=') ? TokKind::CaretEqual : TokKind::Caret;
      break;
    case '<':
      if (match('<'))
        T.Kind = match('=') ? TokKind::LessLessEqual : TokKind::LessLess;
      else
        T.Kind = match('=') ? TokKind::LessEqual : TokKind::Less;
      break;
    case '>':
      if (match('>'))
        T.Kind = match('=') ? TokKind::GreaterGreaterEqual
                            : TokKind::GreaterGreater;
      else
        T.Kind = match('=') ? TokKind::GreaterEqual : TokKind::Greater;
      break;
    default:
      Diags.error(T.Loc, std::string("unexpected character '") + C + "'");
      continue;
    }
    Tokens.push_back(std::move(T));
  }
  Token Eof;
  Eof.Kind = TokKind::Eof;
  Eof.Loc = loc();
  Tokens.push_back(std::move(Eof));
  return Tokens;
}

std::vector<Token> clfuzz::lex(const std::string &Source,
                               DiagEngine &Diags) {
  return LexerImpl(Source, Diags).run();
}
