//===- TypeRules.h - MiniCL conversion and operator typing ------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The typing rules of MiniCL, shared by the parser (which types
/// expressions as it builds them), Sema (which re-validates whole
/// programs, including generator output) and the CLsmith-style
/// generator (which must produce well-typed trees by construction).
///
/// The vector rules follow OpenCL C: there are *no* implicit
/// conversions between distinct vector types (the paper stresses that
/// an int4 cannot be cast even to uint4; only convert_T() builtins
/// change vector types), scalars broadcast into vector operations, and
/// vector comparisons yield the signed integer vector of equal width
/// with lanes set to -1 (true) or 0 (false).
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_MINICL_TYPERULES_H
#define CLFUZZ_MINICL_TYPERULES_H

#include "minicl/AST.h"

namespace clfuzz {

/// C99 integer promotion: ranks below int promote to int (bool also
/// promotes to int).
const ScalarType *promote(TypeContext &Types, const ScalarType *T);

/// C99 usual arithmetic conversions over two scalar types. size_t
/// behaves as a 64-bit unsigned integer.
const ScalarType *usualArithmeticConversions(TypeContext &Types,
                                             const ScalarType *A,
                                             const ScalarType *B);

/// True if a value of scalar/bool type \p From implicitly converts to
/// scalar type \p To (MiniCL allows all integral conversions, like C).
bool isScalarConvertible(const Type *From, const Type *To);

/// The signed integer vector type produced by comparing two vectors of
/// type \p VT.
const VectorType *comparisonResultVector(TypeContext &Types,
                                         const VectorType *VT);

/// True if \p E denotes an assignable object (declared variable,
/// dereference, array element, struct member, single-lane swizzle).
bool isLValue(const Expr *E);

/// Wraps \p E in implicit conversions so its type becomes \p To.
/// Handles integral conversions, bool-to-int, the null pointer
/// constant, and scalar-to-vector splat. Returns null if no implicit
/// conversion exists.
Expr *convertTo(ASTContext &Ctx, Expr *E, const Type *To);

/// Result of typing an operator application.
struct TypedResult {
  Expr *E = nullptr;          ///< Typed node, or null on error.
  std::string Error;          ///< Diagnostic text when E is null.

  static TypedResult ok(Expr *E) { return TypedResult{E, {}}; }
  static TypedResult fail(std::string Msg) {
    return TypedResult{nullptr, std::move(Msg)};
  }
};

/// Builds a typed binary operation, inserting implicit conversions on
/// both operands (usual arithmetic conversions; splat for
/// scalar-vector mixing; pointer equality for ==/!=).
TypedResult buildBinary(ASTContext &Ctx, BinOp Op, Expr *LHS, Expr *RHS);

/// Builds a typed unary operation.
TypedResult buildUnary(ASTContext &Ctx, UnOp Op, Expr *Sub);

/// Builds a typed assignment (plain or compound). The result type is
/// the LHS type; the RHS is implicitly converted.
TypedResult buildAssign(ASTContext &Ctx, AssignOp Op, Expr *LHS,
                        Expr *RHS);

/// Builds a typed conditional expression (scalar condition only).
TypedResult buildConditional(ASTContext &Ctx, Expr *Cond, Expr *TrueE,
                             Expr *FalseE);

/// Builds a typed builtin call, checking arity and argument types and
/// inserting conversions. For ConvertVector, \p ConvertTarget names the
/// target vector type.
TypedResult buildBuiltinCall(ASTContext &Ctx, Builtin B,
                             std::vector<Expr *> Args,
                             const Type *ConvertTarget = nullptr);

/// Builds a typed subscript over an array lvalue or pointer rvalue.
TypedResult buildIndex(ASTContext &Ctx, Expr *Base, Expr *Index);

} // namespace clfuzz

#endif // CLFUZZ_MINICL_TYPERULES_H
