//===- AST.cpp - MiniCL abstract syntax trees ------------------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "minicl/AST.h"

using namespace clfuzz;

const char *clfuzz::binOpSpelling(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return "+";
  case BinOp::Sub:
    return "-";
  case BinOp::Mul:
    return "*";
  case BinOp::Div:
    return "/";
  case BinOp::Mod:
    return "%";
  case BinOp::Shl:
    return "<<";
  case BinOp::Shr:
    return ">>";
  case BinOp::BitAnd:
    return "&";
  case BinOp::BitOr:
    return "|";
  case BinOp::BitXor:
    return "^";
  case BinOp::LAnd:
    return "&&";
  case BinOp::LOr:
    return "||";
  case BinOp::Eq:
    return "==";
  case BinOp::Ne:
    return "!=";
  case BinOp::Lt:
    return "<";
  case BinOp::Gt:
    return ">";
  case BinOp::Le:
    return "<=";
  case BinOp::Ge:
    return ">=";
  case BinOp::Comma:
    return ",";
  }
  assert(false && "unknown binary operator");
  return "";
}

bool clfuzz::isComparisonOp(BinOp Op) {
  switch (Op) {
  case BinOp::Eq:
  case BinOp::Ne:
  case BinOp::Lt:
  case BinOp::Gt:
  case BinOp::Le:
  case BinOp::Ge:
    return true;
  default:
    return false;
  }
}

bool clfuzz::isLogicalOp(BinOp Op) {
  return Op == BinOp::LAnd || Op == BinOp::LOr;
}

const char *clfuzz::unOpSpelling(UnOp Op) {
  switch (Op) {
  case UnOp::Plus:
    return "+";
  case UnOp::Minus:
    return "-";
  case UnOp::Not:
    return "!";
  case UnOp::BitNot:
    return "~";
  case UnOp::PreInc:
  case UnOp::PostInc:
    return "++";
  case UnOp::PreDec:
  case UnOp::PostDec:
    return "--";
  case UnOp::Deref:
    return "*";
  case UnOp::AddrOf:
    return "&";
  }
  assert(false && "unknown unary operator");
  return "";
}

bool clfuzz::isIncDecOp(UnOp Op) {
  return Op == UnOp::PreInc || Op == UnOp::PreDec || Op == UnOp::PostInc ||
         Op == UnOp::PostDec;
}

const char *clfuzz::assignOpSpelling(AssignOp Op) {
  switch (Op) {
  case AssignOp::Assign:
    return "=";
  case AssignOp::Add:
    return "+=";
  case AssignOp::Sub:
    return "-=";
  case AssignOp::Mul:
    return "*=";
  case AssignOp::Div:
    return "/=";
  case AssignOp::Mod:
    return "%=";
  case AssignOp::Shl:
    return "<<=";
  case AssignOp::Shr:
    return ">>=";
  case AssignOp::And:
    return "&=";
  case AssignOp::Or:
    return "|=";
  case AssignOp::Xor:
    return "^=";
  }
  assert(false && "unknown assignment operator");
  return "";
}

const char *clfuzz::builtinName(Builtin B) {
  switch (B) {
  case Builtin::GetGlobalId:
    return "get_global_id";
  case Builtin::GetLocalId:
    return "get_local_id";
  case Builtin::GetGroupId:
    return "get_group_id";
  case Builtin::GetGlobalSize:
    return "get_global_size";
  case Builtin::GetLocalSize:
    return "get_local_size";
  case Builtin::GetNumGroups:
    return "get_num_groups";
  case Builtin::Clamp:
    return "clamp";
  case Builtin::Rotate:
    return "rotate";
  case Builtin::Min:
    return "min";
  case Builtin::Max:
    return "max";
  case Builtin::Abs:
    return "abs";
  case Builtin::AddSat:
    return "add_sat";
  case Builtin::SubSat:
    return "sub_sat";
  case Builtin::Hadd:
    return "hadd";
  case Builtin::MulHi:
    return "mul_hi";
  case Builtin::ConvertVector:
    return "convert";
  case Builtin::AtomicAdd:
    return "atomic_add";
  case Builtin::AtomicSub:
    return "atomic_sub";
  case Builtin::AtomicInc:
    return "atomic_inc";
  case Builtin::AtomicDec:
    return "atomic_dec";
  case Builtin::AtomicMin:
    return "atomic_min";
  case Builtin::AtomicMax:
    return "atomic_max";
  case Builtin::AtomicAnd:
    return "atomic_and";
  case Builtin::AtomicOr:
    return "atomic_or";
  case Builtin::AtomicXor:
    return "atomic_xor";
  case Builtin::AtomicXchg:
    return "atomic_xchg";
  case Builtin::AtomicCmpxchg:
    return "atomic_cmpxchg";
  case Builtin::SafeAdd:
    return "safe_add";
  case Builtin::SafeSub:
    return "safe_sub";
  case Builtin::SafeMul:
    return "safe_mul";
  case Builtin::SafeDiv:
    return "safe_div";
  case Builtin::SafeMod:
    return "safe_mod";
  case Builtin::SafeShl:
    return "safe_lshift";
  case Builtin::SafeShr:
    return "safe_rshift";
  case Builtin::SafeNeg:
    return "safe_unary_minus";
  case Builtin::SafeClamp:
    return "safe_clamp";
  case Builtin::SafeRotate:
    return "safe_rotate";
  }
  assert(false && "unknown builtin");
  return "";
}

bool clfuzz::isAtomicBuiltin(Builtin B) {
  switch (B) {
  case Builtin::AtomicAdd:
  case Builtin::AtomicSub:
  case Builtin::AtomicInc:
  case Builtin::AtomicDec:
  case Builtin::AtomicMin:
  case Builtin::AtomicMax:
  case Builtin::AtomicAnd:
  case Builtin::AtomicOr:
  case Builtin::AtomicXor:
  case Builtin::AtomicXchg:
  case Builtin::AtomicCmpxchg:
    return true;
  default:
    return false;
  }
}

bool clfuzz::isWorkItemBuiltin(Builtin B) {
  switch (B) {
  case Builtin::GetGlobalId:
  case Builtin::GetLocalId:
  case Builtin::GetGroupId:
  case Builtin::GetGlobalSize:
  case Builtin::GetLocalSize:
  case Builtin::GetNumGroups:
    return true;
  default:
    return false;
  }
}

DeclRef::DeclRef(const VarDecl *D)
    : Expr(ExprKind::DeclRef, D->getType()), D(D) {}

const RecordType *MemberExpr::getRecordType() const {
  const Type *BaseTy = Base->getType();
  if (IsArrow)
    BaseTy = cast<PointerType>(BaseTy)->getPointeeType();
  return cast<RecordType>(BaseTy);
}

FunctionDecl *Program::findFunction(const std::string &Name) const {
  for (FunctionDecl *F : Functions)
    if (F->getName() == Name)
      return F;
  return nullptr;
}

FunctionDecl *Program::kernel() const {
  for (FunctionDecl *F : Functions)
    if (F->isKernel())
      return F;
  return nullptr;
}
