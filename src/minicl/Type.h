//===- Type.h - MiniCL type system ------------------------------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The type system of MiniCL, the OpenCL C subset used throughout the
/// project. MiniCL is integer-only (the paper's generator deliberately
/// avoids floating point, §9) and provides:
///
///  * the OpenCL scalar integer types (char/uchar .. long/ulong, bool,
///    and a distinct size_t as returned by get_group_id and friends);
///  * vectors of length 2/4/8/16 over any integer element type;
///  * structs and unions (with per-field volatility, as exercised by
///    Figure 1(b) of the paper);
///  * fixed-length arrays (multi-dimensional via nesting);
///  * pointers carrying an OpenCL address space.
///
/// Types are interned: equal types are pointer-equal. All Type objects
/// are owned by a TypeContext.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_MINICL_TYPE_H
#define CLFUZZ_MINICL_TYPE_H

#include "support/Arena.h"
#include "support/Casting.h"

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace clfuzz {

/// The four OpenCL 1.x disjoint address spaces (§3.1 of the paper).
enum class AddressSpace : uint8_t { Private, Global, Local, Constant };

/// Returns the OpenCL C qualifier spelling ("", "global", ...).
const char *addressSpaceName(AddressSpace AS);

/// The scalar integer kinds of MiniCL. `Bool` is the result type of
/// relational/logical operators (printed as `int` per OpenCL C);
/// `SizeT` is kept distinct from ULong so the front end can model the
/// configuration-15 bug that rejects legal int/size_t mixtures (§6).
enum class ScalarKind : uint8_t {
  Bool,
  Char,
  UChar,
  Short,
  UShort,
  Int,
  UInt,
  Long,
  ULong,
  SizeT,
};

/// Base class of the MiniCL type hierarchy (Kind-enum RTTI).
class Type {
public:
  enum class TypeKind : uint8_t {
    Void,
    Scalar,
    Vector,
    Record,
    Array,
    Pointer,
  };

  TypeKind getKind() const { return Kind; }

  bool isVoid() const { return Kind == TypeKind::Void; }
  bool isScalar() const { return Kind == TypeKind::Scalar; }
  bool isVector() const { return Kind == TypeKind::Vector; }
  bool isRecord() const { return Kind == TypeKind::Record; }
  bool isArray() const { return Kind == TypeKind::Array; }
  bool isPointer() const { return Kind == TypeKind::Pointer; }

  /// True for scalar or vector integer types.
  bool isArithmetic() const { return isScalar() || isVector(); }

  /// OpenCL C spelling of this type (e.g. "uint4", "struct S0").
  std::string str() const;

protected:
  explicit Type(TypeKind K) : Kind(K) {}
  ~Type() = default;

private:
  TypeKind Kind;
};

/// The `void` type (function returns only).
class VoidType : public Type {
public:
  VoidType() : Type(TypeKind::Void) {}

  static bool classof(const Type *T) {
    return T->getKind() == TypeKind::Void;
  }
};

/// A scalar integer type.
class ScalarType : public Type {
public:
  explicit ScalarType(ScalarKind SK) : Type(TypeKind::Scalar), SK(SK) {}

  ScalarKind getScalarKind() const { return SK; }

  /// Width in bits (bool is modelled as 32-bit, matching OpenCL C where
  /// relational operators yield int). Inline: the VM masks through this
  /// on every lane of every load, store and operator.
  unsigned bitWidth() const {
    switch (SK) {
    case ScalarKind::Char:
    case ScalarKind::UChar:
      return 8;
    case ScalarKind::Short:
    case ScalarKind::UShort:
      return 16;
    case ScalarKind::Bool:
    case ScalarKind::Int:
    case ScalarKind::UInt:
      return 32;
    case ScalarKind::Long:
    case ScalarKind::ULong:
    case ScalarKind::SizeT:
      return 64;
    }
    assert(false && "unknown scalar kind");
    return 0;
  }

  /// Width in bytes.
  unsigned byteWidth() const { return bitWidth() / 8; }

  bool isSigned() const {
    switch (SK) {
    case ScalarKind::Bool:
    case ScalarKind::Char:
    case ScalarKind::Short:
    case ScalarKind::Int:
    case ScalarKind::Long:
      return true;
    case ScalarKind::UChar:
    case ScalarKind::UShort:
    case ScalarKind::UInt:
    case ScalarKind::ULong:
    case ScalarKind::SizeT:
      return false;
    }
    assert(false && "unknown scalar kind");
    return false;
  }
  bool isBool() const { return SK == ScalarKind::Bool; }
  bool isSizeT() const { return SK == ScalarKind::SizeT; }

  /// C99 integer conversion rank used for usual arithmetic conversions.
  unsigned rank() const;

  /// OpenCL C spelling ("char", "uint", ...).
  const char *name() const;

  static bool classof(const Type *T) {
    return T->getKind() == TypeKind::Scalar;
  }

private:
  ScalarKind SK;
};

/// An OpenCL vector type: N lanes of a scalar element type.
class VectorType : public Type {
public:
  VectorType(const ScalarType *Elem, unsigned NumLanes)
      : Type(TypeKind::Vector), Elem(Elem), NumLanes(NumLanes) {
    assert((NumLanes == 2 || NumLanes == 4 || NumLanes == 8 ||
            NumLanes == 16) &&
           "unsupported vector width");
  }

  const ScalarType *getElementType() const { return Elem; }
  unsigned getNumLanes() const { return NumLanes; }

  static bool classof(const Type *T) {
    return T->getKind() == TypeKind::Vector;
  }

private:
  const ScalarType *Elem;
  unsigned NumLanes;
};

/// A named member of a struct or union.
struct RecordField {
  std::string Name;
  const Type *Ty = nullptr;
  bool IsVolatile = false;
};

/// A struct or union type. Fields are appended after construction so
/// that self-referential pointer fields can be expressed; a record must
/// be finalised (`setComplete`) before layout or sema queries.
class RecordType : public Type {
public:
  RecordType(std::string Name, bool IsUnion)
      : Type(TypeKind::Record), Name(std::move(Name)), Union(IsUnion) {}

  const std::string &getName() const { return Name; }
  /// Renames the record (used when a typedef alias supersedes an
  /// anonymous tag).
  void setName(std::string NewName) { Name = std::move(NewName); }
  bool isUnion() const { return Union; }

  void addField(RecordField F) {
    assert(!Complete && "adding a field to a completed record");
    Fields.push_back(std::move(F));
  }

  void setComplete() { Complete = true; }
  bool isComplete() const { return Complete; }

  const std::vector<RecordField> &fields() const { return Fields; }
  unsigned getNumFields() const { return Fields.size(); }
  const RecordField &getField(unsigned I) const {
    assert(I < Fields.size() && "field index out of range");
    return Fields[I];
  }

  /// Returns the index of the field called \p Name, or -1.
  int fieldIndex(const std::string &FieldName) const;

  static bool classof(const Type *T) {
    return T->getKind() == TypeKind::Record;
  }

private:
  std::string Name;
  bool Union;
  bool Complete = false;
  std::vector<RecordField> Fields;
};

/// A fixed-length array type.
class ArrayType : public Type {
public:
  ArrayType(const Type *Elem, uint64_t NumElements)
      : Type(TypeKind::Array), Elem(Elem), NumElements(NumElements) {}

  const Type *getElementType() const { return Elem; }
  uint64_t getNumElements() const { return NumElements; }

  static bool classof(const Type *T) {
    return T->getKind() == TypeKind::Array;
  }

private:
  const Type *Elem;
  uint64_t NumElements;
};

/// A pointer type. The address space describes where the pointee lives;
/// `PointeeVolatile` models `volatile T *`.
class PointerType : public Type {
public:
  PointerType(const Type *Pointee, AddressSpace AS, bool PointeeVolatile)
      : Type(TypeKind::Pointer), Pointee(Pointee), AS(AS),
        PointeeVolatile(PointeeVolatile) {}

  const Type *getPointeeType() const { return Pointee; }
  AddressSpace getAddressSpace() const { return AS; }
  bool isPointeeVolatile() const { return PointeeVolatile; }

  static bool classof(const Type *T) {
    return T->getKind() == TypeKind::Pointer;
  }

private:
  const Type *Pointee;
  AddressSpace AS;
  bool PointeeVolatile;
};

/// Owns and interns all types of one translation unit / generation run.
class TypeContext {
public:
  TypeContext();
  TypeContext(const TypeContext &) = delete;
  TypeContext &operator=(const TypeContext &) = delete;

  const VoidType *voidTy() const { return &VoidT; }
  const ScalarType *scalar(ScalarKind SK) const;

  const ScalarType *boolTy() const { return scalar(ScalarKind::Bool); }
  const ScalarType *charTy() const { return scalar(ScalarKind::Char); }
  const ScalarType *ucharTy() const { return scalar(ScalarKind::UChar); }
  const ScalarType *shortTy() const { return scalar(ScalarKind::Short); }
  const ScalarType *ushortTy() const { return scalar(ScalarKind::UShort); }
  const ScalarType *intTy() const { return scalar(ScalarKind::Int); }
  const ScalarType *uintTy() const { return scalar(ScalarKind::UInt); }
  const ScalarType *longTy() const { return scalar(ScalarKind::Long); }
  const ScalarType *ulongTy() const { return scalar(ScalarKind::ULong); }
  const ScalarType *sizeTy() const { return scalar(ScalarKind::SizeT); }

  const VectorType *vector(const ScalarType *Elem, unsigned NumLanes);
  const ArrayType *array(const Type *Elem, uint64_t NumElements);
  const PointerType *pointer(const Type *Pointee, AddressSpace AS,
                             bool PointeeVolatile = false);

  /// Creates a fresh, incomplete record type. Record types are nominal:
  /// two records with identical fields remain distinct types.
  RecordType *createRecord(std::string Name, bool IsUnion);

  /// Looks up a record previously created with \p Name, or null.
  RecordType *findRecord(const std::string &Name) const;

  const std::vector<RecordType *> &records() const { return RecordList; }

private:
  VoidType VoidT;
  ScalarType Scalars[10];
  // Derived types are bump-allocated; the maps only intern. Records
  // register destructors with the arena (they own strings/fields), the
  // trivially-destructible vector/array/pointer types do not.
  BumpArena Types;
  std::map<std::pair<const ScalarType *, unsigned>, const VectorType *>
      Vectors;
  std::map<std::pair<const Type *, uint64_t>, const ArrayType *> Arrays;
  std::map<std::tuple<const Type *, AddressSpace, bool>,
           const PointerType *>
      Pointers;
  std::vector<RecordType *> RecordList;
};

} // namespace clfuzz

#endif // CLFUZZ_MINICL_TYPE_H
