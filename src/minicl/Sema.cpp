//===- Sema.cpp - MiniCL semantic validation -------------------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "minicl/Sema.h"
#include "minicl/TypeRules.h"

#include <map>
#include <set>

using namespace clfuzz;

namespace {

class SemaChecker {
public:
  SemaChecker(const ASTContext &Ctx, DiagEngine &Diags)
      : Ctx(Ctx), Diags(Diags) {}

  bool run();

private:
  void error(const std::string &Msg) { Diags.error(SourceLoc{}, Msg); }

  void checkFunction(const FunctionDecl *F);
  void checkStmt(const Stmt *S, bool AtKernelTopLevel);
  void checkExpr(const Expr *E);
  void checkVarDecl(const VarDecl *D, bool AtKernelTopLevel);
  bool checkNoRecursion();

  const ASTContext &Ctx;
  DiagEngine &Diags;
  const FunctionDecl *CurFunction = nullptr;
  unsigned LoopDepth = 0;
};

} // namespace

void SemaChecker::checkExpr(const Expr *E) {
  if (!E->getType()) {
    error("expression has no type");
    return;
  }
  switch (E->getKind()) {
  case Expr::ExprKind::IntLiteral:
    if (!isa<ScalarType>(E->getType()))
      error("integer literal with non-scalar type");
    break;
  case Expr::ExprKind::DeclRef: {
    const auto *DR = cast<DeclRef>(E);
    if (DR->getType() != DR->getDecl()->getType())
      error("DeclRef type differs from declaration type");
    break;
  }
  case Expr::ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    checkExpr(U->getSubExpr());
    switch (U->getOp()) {
    case UnOp::Deref:
      if (!isa<PointerType>(U->getSubExpr()->getType()))
        error("dereference of non-pointer");
      break;
    case UnOp::AddrOf:
      if (!isLValue(U->getSubExpr()))
        error("address of rvalue");
      if (!isa<PointerType>(U->getType()))
        error("address-of with non-pointer result type");
      break;
    case UnOp::PreInc:
    case UnOp::PreDec:
    case UnOp::PostInc:
    case UnOp::PostDec:
      if (!isLValue(U->getSubExpr()))
        error("++/-- on rvalue");
      break;
    default:
      if (!U->getSubExpr()->getType()->isArithmetic())
        error("arithmetic unary on non-arithmetic operand");
      break;
    }
    break;
  }
  case Expr::ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    checkExpr(B->getLHS());
    checkExpr(B->getRHS());
    const Type *LT = B->getLHS()->getType();
    const Type *RT = B->getRHS()->getType();
    if (B->getOp() == BinOp::Comma)
      break;
    if (isa<PointerType>(LT)) {
      if (B->getOp() != BinOp::Eq && B->getOp() != BinOp::Ne ||
          LT != RT)
        error("invalid pointer binary operation");
      break;
    }
    // After TypeRules normalisation both operand types agree, except
    // scalar shift/logical forms which promote independently.
    bool SameOk = LT == RT;
    bool ShiftOk = (B->getOp() == BinOp::Shl || B->getOp() == BinOp::Shr) &&
                   isa<ScalarType>(LT) && isa<ScalarType>(RT);
    bool LogicalOk = isLogicalOp(B->getOp()) && isa<ScalarType>(LT) &&
                     isa<ScalarType>(RT);
    if (!SameOk && !ShiftOk && !LogicalOk)
      error("binary operand types not normalised: " + LT->str() + " vs " +
            RT->str());
    break;
  }
  case Expr::ExprKind::Assign: {
    const auto *A = cast<AssignExpr>(E);
    checkExpr(A->getLHS());
    checkExpr(A->getRHS());
    if (!isLValue(A->getLHS()))
      error("assignment to rvalue");
    if (A->getOp() == AssignOp::Assign &&
        A->getLHS()->getType() != A->getRHS()->getType())
      error("assignment types not normalised");
    if (A->getType() != A->getLHS()->getType())
      error("assignment result type mismatch");
    break;
  }
  case Expr::ExprKind::Conditional: {
    const auto *C = cast<ConditionalExpr>(E);
    checkExpr(C->getCond());
    checkExpr(C->getTrueExpr());
    checkExpr(C->getFalseExpr());
    if (!isa<ScalarType>(C->getCond()->getType()) &&
        !isa<PointerType>(C->getCond()->getType()))
      error("conditional condition must be scalar");
    if (C->getTrueExpr()->getType() != C->getFalseExpr()->getType())
      error("conditional arms not normalised");
    break;
  }
  case Expr::ExprKind::Call: {
    const auto *C = cast<CallExpr>(E);
    const FunctionDecl *Callee = C->getCallee();
    if (!Callee->getBody())
      error("call to undefined function '" + Callee->getName() + "'");
    if (C->args().size() != Callee->params().size()) {
      error("call arity mismatch for '" + Callee->getName() + "'");
      break;
    }
    for (size_t I = 0, N = C->args().size(); I != N; ++I) {
      checkExpr(C->args()[I]);
      if (C->args()[I]->getType() != Callee->params()[I]->getType())
        error("call argument type mismatch for '" + Callee->getName() +
              "'");
    }
    if (C->getType() != Callee->getReturnType())
      error("call result type mismatch");
    break;
  }
  case Expr::ExprKind::BuiltinCall: {
    const auto *C = cast<BuiltinCallExpr>(E);
    for (const Expr *A : C->args())
      checkExpr(A);
    if (isAtomicBuiltin(C->getBuiltin())) {
      const auto *PT =
          dyn_cast<PointerType>(C->getArg(0)->getType());
      if (!PT || (PT->getAddressSpace() != AddressSpace::Global &&
                  PT->getAddressSpace() != AddressSpace::Local))
        error("atomic on non-shared pointer");
    }
    break;
  }
  case Expr::ExprKind::Index: {
    const auto *Ix = cast<IndexExpr>(E);
    checkExpr(Ix->getBase());
    checkExpr(Ix->getIndex());
    const Type *BT = Ix->getBase()->getType();
    if (!isa<ArrayType>(BT) && !isa<PointerType>(BT))
      error("subscript of non-array/pointer");
    if (!isa<ScalarType>(Ix->getIndex()->getType()))
      error("non-integer subscript");
    break;
  }
  case Expr::ExprKind::Member: {
    const auto *M = cast<MemberExpr>(E);
    checkExpr(M->getBase());
    const RecordType *RT = M->getRecordType();
    if (!RT->isComplete())
      error("member access into incomplete record");
    else if (M->getFieldIndex() >= RT->getNumFields())
      error("member index out of range");
    else if (M->getType() != RT->getField(M->getFieldIndex()).Ty)
      error("member type mismatch");
    break;
  }
  case Expr::ExprKind::Swizzle: {
    const auto *Sw = cast<SwizzleExpr>(E);
    checkExpr(Sw->getBase());
    const auto *VT = dyn_cast<VectorType>(Sw->getBase()->getType());
    if (!VT) {
      error("swizzle of non-vector");
      break;
    }
    for (unsigned I : Sw->indices())
      if (I >= VT->getNumLanes())
        error("swizzle index out of range");
    break;
  }
  case Expr::ExprKind::Cast: {
    const auto *C = cast<CastExpr>(E);
    checkExpr(C->getSubExpr());
    if (!isa<ScalarType>(C->getType()) ||
        !isa<ScalarType>(C->getSubExpr()->getType()))
      error("cast between non-scalar types");
    break;
  }
  case Expr::ExprKind::ImplicitCast: {
    const auto *C = cast<ImplicitCastExpr>(E);
    checkExpr(C->getSubExpr());
    if (C->getCastKind() == ImplicitCastExpr::CastKind::VectorSplat &&
        !isa<VectorType>(C->getType()))
      error("splat to non-vector type");
    break;
  }
  case Expr::ExprKind::VectorConstruct: {
    const auto *V = cast<VectorConstructExpr>(E);
    const auto *VT = cast<VectorType>(V->getType());
    unsigned Lanes = 0;
    for (const Expr *Elem : V->elements()) {
      checkExpr(Elem);
      if (const auto *EV = dyn_cast<VectorType>(Elem->getType())) {
        if (EV->getElementType() != VT->getElementType())
          error("vector construct element type mismatch");
        Lanes += EV->getNumLanes();
      } else {
        if (Elem->getType() != VT->getElementType())
          error("vector construct element type mismatch");
        ++Lanes;
      }
    }
    if (Lanes != VT->getNumLanes())
      error("vector construct lane count mismatch");
    break;
  }
  case Expr::ExprKind::InitList: {
    const auto *IL = cast<InitListExpr>(E);
    const Type *Ty = IL->getType();
    if (!Ty) {
      error("untyped initialiser list");
      break;
    }
    if (const auto *RT = dyn_cast<RecordType>(Ty)) {
      unsigned Limit = RT->isUnion() ? 1u : RT->getNumFields();
      if (IL->inits().size() > Limit)
        error("too many initialisers");
      for (size_t I = 0; I != IL->inits().size(); ++I) {
        checkExpr(IL->inits()[I]);
        if (IL->inits()[I]->getType() != RT->getField(I).Ty)
          error("initialiser type mismatch");
      }
    } else if (const auto *AT = dyn_cast<ArrayType>(Ty)) {
      if (IL->inits().size() > AT->getNumElements())
        error("too many initialisers");
      for (const Expr *Sub : IL->inits()) {
        checkExpr(Sub);
        if (Sub->getType() != AT->getElementType())
          error("initialiser type mismatch");
      }
    } else {
      error("initialiser list for non-aggregate");
    }
    break;
  }
  }
}

void SemaChecker::checkVarDecl(const VarDecl *D, bool AtKernelTopLevel) {
  if (D->getAddressSpace() == AddressSpace::Local && !AtKernelTopLevel)
    error("local-memory variable '" + D->getName() +
          "' must be declared at kernel scope");
  if (const auto *RT = dyn_cast<RecordType>(D->getType()))
    if (!RT->isComplete())
      error("variable of incomplete record type");
  if (Expr *Init = D->getInit()) {
    checkExpr(Init);
    if (Init->getType() != D->getType())
      error("initialiser type differs from variable type for '" +
            D->getName() + "'");
  }
}

void SemaChecker::checkStmt(const Stmt *S, bool AtKernelTopLevel) {
  switch (S->getKind()) {
  case Stmt::StmtKind::Compound:
    for (const Stmt *Child : cast<CompoundStmt>(S)->body())
      checkStmt(Child, AtKernelTopLevel);
    break;
  case Stmt::StmtKind::Decl:
    checkVarDecl(cast<DeclStmt>(S)->getDecl(), AtKernelTopLevel);
    break;
  case Stmt::StmtKind::Expr:
    checkExpr(cast<ExprStmt>(S)->getExpr());
    break;
  case Stmt::StmtKind::If: {
    const auto *If = cast<IfStmt>(S);
    checkExpr(If->getCond());
    if (!isa<ScalarType>(If->getCond()->getType()) &&
        !isa<PointerType>(If->getCond()->getType()))
      error("if condition must be scalar");
    checkStmt(If->getThen(), false);
    if (If->getElse())
      checkStmt(If->getElse(), false);
    break;
  }
  case Stmt::StmtKind::For: {
    const auto *For = cast<ForStmt>(S);
    if (For->getInit())
      checkStmt(For->getInit(), false);
    if (For->getCond()) {
      checkExpr(For->getCond());
      if (!isa<ScalarType>(For->getCond()->getType()))
        error("for condition must be scalar");
    }
    if (For->getStep())
      checkExpr(For->getStep());
    ++LoopDepth;
    checkStmt(For->getBody(), false);
    --LoopDepth;
    break;
  }
  case Stmt::StmtKind::While: {
    const auto *W = cast<WhileStmt>(S);
    checkExpr(W->getCond());
    ++LoopDepth;
    checkStmt(W->getBody(), false);
    --LoopDepth;
    break;
  }
  case Stmt::StmtKind::Do: {
    const auto *D = cast<DoStmt>(S);
    ++LoopDepth;
    checkStmt(D->getBody(), false);
    --LoopDepth;
    checkExpr(D->getCond());
    break;
  }
  case Stmt::StmtKind::Return: {
    const auto *R = cast<ReturnStmt>(S);
    const Type *RetTy = CurFunction->getReturnType();
    if (R->getValue()) {
      checkExpr(R->getValue());
      if (R->getValue()->getType() != RetTy)
        error("return type mismatch in '" + CurFunction->getName() + "'");
    } else if (!RetTy->isVoid()) {
      error("missing return value in '" + CurFunction->getName() + "'");
    }
    break;
  }
  case Stmt::StmtKind::Break:
  case Stmt::StmtKind::Continue:
    if (LoopDepth == 0)
      error("break/continue outside loop");
    break;
  case Stmt::StmtKind::Barrier:
    if (cast<BarrierStmt>(S)->getFenceFlags() == 0)
      error("barrier without a memory fence flag");
    break;
  case Stmt::StmtKind::Null:
    break;
  }
}

void SemaChecker::checkFunction(const FunctionDecl *F) {
  CurFunction = F;
  LoopDepth = 0;
  if (F->isKernel()) {
    if (!F->getReturnType()->isVoid())
      error("kernel '" + F->getName() + "' must return void");
    for (const VarDecl *P : F->params()) {
      if (const auto *PT = dyn_cast<PointerType>(P->getType()))
        if (PT->getAddressSpace() == AddressSpace::Private)
          error("kernel pointer parameter '" + P->getName() +
                "' must name global, local or constant memory");
    }
  }
  if (F->getBody())
    checkStmt(F->getBody(), F->isKernel());
  CurFunction = nullptr;
}

bool SemaChecker::checkNoRecursion() {
  // DFS over the static call graph; OpenCL C forbids recursion.
  std::map<const FunctionDecl *, std::set<const FunctionDecl *>> Calls;
  for (const FunctionDecl *F : Ctx.program().functions()) {
    auto &Out = Calls[F];
    // Collect callees by walking statements/expressions.
    std::vector<const Stmt *> StmtStack;
    std::vector<const Expr *> ExprStack;
    if (F->getBody())
      StmtStack.push_back(F->getBody());
    auto PushExprsOfVar = [&ExprStack](const VarDecl *D) {
      if (D->getInit())
        ExprStack.push_back(D->getInit());
    };
    while (!StmtStack.empty() || !ExprStack.empty()) {
      if (!ExprStack.empty()) {
        const Expr *E = ExprStack.back();
        ExprStack.pop_back();
        switch (E->getKind()) {
        case Expr::ExprKind::Call: {
          const auto *C = cast<CallExpr>(E);
          Out.insert(C->getCallee());
          for (const Expr *A : C->args())
            ExprStack.push_back(A);
          break;
        }
        case Expr::ExprKind::Unary:
          ExprStack.push_back(cast<UnaryExpr>(E)->getSubExpr());
          break;
        case Expr::ExprKind::Binary:
          ExprStack.push_back(cast<BinaryExpr>(E)->getLHS());
          ExprStack.push_back(cast<BinaryExpr>(E)->getRHS());
          break;
        case Expr::ExprKind::Assign:
          ExprStack.push_back(cast<AssignExpr>(E)->getLHS());
          ExprStack.push_back(cast<AssignExpr>(E)->getRHS());
          break;
        case Expr::ExprKind::Conditional:
          ExprStack.push_back(cast<ConditionalExpr>(E)->getCond());
          ExprStack.push_back(cast<ConditionalExpr>(E)->getTrueExpr());
          ExprStack.push_back(cast<ConditionalExpr>(E)->getFalseExpr());
          break;
        case Expr::ExprKind::BuiltinCall:
          for (const Expr *A : cast<BuiltinCallExpr>(E)->args())
            ExprStack.push_back(A);
          break;
        case Expr::ExprKind::Index:
          ExprStack.push_back(cast<IndexExpr>(E)->getBase());
          ExprStack.push_back(cast<IndexExpr>(E)->getIndex());
          break;
        case Expr::ExprKind::Member:
          ExprStack.push_back(cast<MemberExpr>(E)->getBase());
          break;
        case Expr::ExprKind::Swizzle:
          ExprStack.push_back(cast<SwizzleExpr>(E)->getBase());
          break;
        case Expr::ExprKind::Cast:
          ExprStack.push_back(cast<CastExpr>(E)->getSubExpr());
          break;
        case Expr::ExprKind::ImplicitCast:
          ExprStack.push_back(cast<ImplicitCastExpr>(E)->getSubExpr());
          break;
        case Expr::ExprKind::VectorConstruct:
          for (const Expr *Elem :
               cast<VectorConstructExpr>(E)->elements())
            ExprStack.push_back(Elem);
          break;
        case Expr::ExprKind::InitList:
          for (const Expr *Sub : cast<InitListExpr>(E)->inits())
            ExprStack.push_back(Sub);
          break;
        default:
          break;
        }
        continue;
      }
      const Stmt *S = StmtStack.back();
      StmtStack.pop_back();
      switch (S->getKind()) {
      case Stmt::StmtKind::Compound:
        for (const Stmt *Child : cast<CompoundStmt>(S)->body())
          StmtStack.push_back(Child);
        break;
      case Stmt::StmtKind::Decl:
        PushExprsOfVar(cast<DeclStmt>(S)->getDecl());
        break;
      case Stmt::StmtKind::Expr:
        ExprStack.push_back(cast<ExprStmt>(S)->getExpr());
        break;
      case Stmt::StmtKind::If: {
        const auto *If = cast<IfStmt>(S);
        ExprStack.push_back(If->getCond());
        StmtStack.push_back(If->getThen());
        if (If->getElse())
          StmtStack.push_back(If->getElse());
        break;
      }
      case Stmt::StmtKind::For: {
        const auto *For = cast<ForStmt>(S);
        if (For->getInit())
          StmtStack.push_back(For->getInit());
        if (For->getCond())
          ExprStack.push_back(For->getCond());
        if (For->getStep())
          ExprStack.push_back(For->getStep());
        StmtStack.push_back(For->getBody());
        break;
      }
      case Stmt::StmtKind::While:
        ExprStack.push_back(cast<WhileStmt>(S)->getCond());
        StmtStack.push_back(cast<WhileStmt>(S)->getBody());
        break;
      case Stmt::StmtKind::Do:
        ExprStack.push_back(cast<DoStmt>(S)->getCond());
        StmtStack.push_back(cast<DoStmt>(S)->getBody());
        break;
      case Stmt::StmtKind::Return:
        if (cast<ReturnStmt>(S)->getValue())
          ExprStack.push_back(cast<ReturnStmt>(S)->getValue());
        break;
      default:
        break;
      }
    }
  }

  // Cycle detection (3-colour DFS).
  std::map<const FunctionDecl *, int> Colour;
  bool HasCycle = false;
  std::vector<std::pair<const FunctionDecl *, bool>> Work;
  for (const FunctionDecl *F : Ctx.program().functions()) {
    if (Colour[F] != 0)
      continue;
    Work.push_back({F, false});
    while (!Work.empty()) {
      auto [Node, Done] = Work.back();
      Work.pop_back();
      if (Done) {
        Colour[Node] = 2;
        continue;
      }
      if (Colour[Node] == 1)
        continue;
      Colour[Node] = 1;
      Work.push_back({Node, true});
      for (const FunctionDecl *Callee : Calls[Node]) {
        if (Colour[Callee] == 1) {
          // Grey callee on the stack path indicates a cycle.
          HasCycle = true;
        } else if (Colour[Callee] == 0) {
          Work.push_back({Callee, false});
        }
      }
    }
  }
  if (HasCycle)
    error("recursion is not permitted in OpenCL C");
  return !HasCycle;
}

bool SemaChecker::run() {
  const Program &Prog = Ctx.program();
  unsigned NumKernels = 0;
  for (const FunctionDecl *F : Prog.functions())
    if (F->isKernel())
      ++NumKernels;
  if (NumKernels != 1)
    error("program must define exactly one kernel");
  for (const FunctionDecl *F : Prog.functions())
    checkFunction(F);
  checkNoRecursion();
  return !Diags.hasErrors();
}

bool clfuzz::checkProgram(const ASTContext &Ctx, DiagEngine &Diags) {
  return SemaChecker(Ctx, Diags).run();
}
