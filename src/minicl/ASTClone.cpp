//===- ASTClone.cpp - Deep copy of a parsed translation unit ----------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "minicl/ASTClone.h"

#include <cassert>
#include <unordered_map>

using namespace clfuzz;

namespace {

/// One clone run. Memoises decls so shared references stay shared
/// (every DeclRef to one VarDecl maps to one cloned VarDecl; CallExprs
/// keep pointing at the one cloned callee).
class Cloner {
public:
  Cloner(const ASTContext &Src, ASTContext &Dst) : Src(Src), Dst(Dst) {}

  void run() {
    // Records first, in source creation order: fields may reference
    // other records (pointers allow self-reference), so shells are
    // created before any field is mapped, and order is preserved
    // because the front-end defect checks scan records() in order.
    for (const RecordType *RT : Src.types().records())
      RecordMap[RT] = Dst.types().createRecord(RT->getName(), RT->isUnion());
    for (const RecordType *RT : Src.types().records()) {
      RecordType *N = RecordMap[RT];
      for (const RecordField &F : RT->fields())
        N->addField(RecordField{F.Name, mapType(F.Ty), F.IsVolatile});
      if (RT->isComplete())
        N->setComplete();
    }

    // Function shells before any body: calls may target functions
    // defined later in the unit.
    for (const FunctionDecl *F : Src.program().functions()) {
      FunctionDecl *N = Dst.makeFunction(F->getName(),
                                         mapType(F->getReturnType()),
                                         F->isKernel());
      FuncMap[F] = N;
      for (const VarDecl *P : F->params())
        N->addParam(mapVar(P));
      Dst.program().addFunction(N);
    }
    for (const FunctionDecl *F : Src.program().functions())
      if (F->getBody())
        FuncMap[F]->setBody(cast<CompoundStmt>(cloneStmt(F->getBody())));
  }

private:
  const Type *mapType(const Type *T) {
    if (!T)
      return nullptr;
    switch (T->getKind()) {
    case Type::TypeKind::Void:
      return Dst.types().voidTy();
    case Type::TypeKind::Scalar:
      return Dst.types().scalar(cast<ScalarType>(T)->getScalarKind());
    case Type::TypeKind::Vector: {
      const auto *VT = cast<VectorType>(T);
      return Dst.types().vector(
          cast<ScalarType>(mapType(VT->getElementType())),
          VT->getNumLanes());
    }
    case Type::TypeKind::Record: {
      auto It = RecordMap.find(cast<RecordType>(T));
      assert(It != RecordMap.end() && "record not pre-registered");
      return It->second;
    }
    case Type::TypeKind::Array: {
      const auto *AT = cast<ArrayType>(T);
      return Dst.types().array(mapType(AT->getElementType()),
                               AT->getNumElements());
    }
    case Type::TypeKind::Pointer: {
      const auto *PT = cast<PointerType>(T);
      return Dst.types().pointer(mapType(PT->getPointeeType()),
                                 PT->getAddressSpace(),
                                 PT->isPointeeVolatile());
    }
    }
    assert(false && "unknown type kind");
    return nullptr;
  }

  /// Clones \p D on first touch (a DeclStmt and every DeclRef resolve
  /// to the same clone). The map entry is inserted before the
  /// initialiser is cloned so a self-referential init cannot recurse.
  VarDecl *mapVar(const VarDecl *D) {
    auto It = VarMap.find(D);
    if (It != VarMap.end())
      return It->second;
    VarDecl *N =
        Dst.makeVar(D->getName(), mapType(D->getType()), D->getAddressSpace());
    N->setParam(D->isParam());
    N->setVolatile(D->isVolatile());
    N->setConst(D->isConst());
    VarMap[D] = N;
    if (D->getInit())
      N->setInit(cloneExpr(D->getInit()));
    return N;
  }

  Expr *cloneExpr(const Expr *E) {
    if (!E)
      return nullptr;
    Expr *N = cloneExprImpl(E);
    N->setLoc(E->getLoc());
    return N;
  }

  Expr *cloneExprImpl(const Expr *E) {
    const Type *Ty = mapType(E->getType());
    switch (E->getKind()) {
    case Expr::ExprKind::IntLiteral:
      return Dst.makeExpr<IntLiteral>(cast<IntLiteral>(E)->getValue(),
                                      cast<ScalarType>(Ty));
    case Expr::ExprKind::DeclRef:
      return Dst.makeExpr<DeclRef>(mapVar(cast<DeclRef>(E)->getDecl()));
    case Expr::ExprKind::Unary: {
      const auto *U = cast<UnaryExpr>(E);
      return Dst.makeExpr<UnaryExpr>(U->getOp(), cloneExpr(U->getSubExpr()),
                                     Ty);
    }
    case Expr::ExprKind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      return Dst.makeExpr<BinaryExpr>(B->getOp(), cloneExpr(B->getLHS()),
                                      cloneExpr(B->getRHS()), Ty);
    }
    case Expr::ExprKind::Assign: {
      const auto *A = cast<AssignExpr>(E);
      return Dst.makeExpr<AssignExpr>(A->getOp(), cloneExpr(A->getLHS()),
                                      cloneExpr(A->getRHS()), Ty);
    }
    case Expr::ExprKind::Conditional: {
      const auto *C = cast<ConditionalExpr>(E);
      return Dst.makeExpr<ConditionalExpr>(cloneExpr(C->getCond()),
                                           cloneExpr(C->getTrueExpr()),
                                           cloneExpr(C->getFalseExpr()), Ty);
    }
    case Expr::ExprKind::Call: {
      const auto *C = cast<CallExpr>(E);
      auto It = FuncMap.find(C->getCallee());
      assert(It != FuncMap.end() && "call to a function outside the unit");
      std::vector<Expr *> Args;
      Args.reserve(C->args().size());
      for (const Expr *A : C->args())
        Args.push_back(cloneExpr(A));
      return Dst.makeExpr<CallExpr>(It->second, std::move(Args), Ty);
    }
    case Expr::ExprKind::BuiltinCall: {
      const auto *C = cast<BuiltinCallExpr>(E);
      std::vector<Expr *> Args;
      Args.reserve(C->args().size());
      for (const Expr *A : C->args())
        Args.push_back(cloneExpr(A));
      return Dst.makeExpr<BuiltinCallExpr>(C->getBuiltin(), std::move(Args),
                                           Ty);
    }
    case Expr::ExprKind::Index: {
      const auto *I = cast<IndexExpr>(E);
      return Dst.makeExpr<IndexExpr>(cloneExpr(I->getBase()),
                                     cloneExpr(I->getIndex()), Ty);
    }
    case Expr::ExprKind::Member: {
      const auto *M = cast<MemberExpr>(E);
      return Dst.makeExpr<MemberExpr>(cloneExpr(M->getBase()),
                                      M->getFieldIndex(), M->isArrow(), Ty);
    }
    case Expr::ExprKind::Swizzle: {
      const auto *S = cast<SwizzleExpr>(E);
      return Dst.makeExpr<SwizzleExpr>(cloneExpr(S->getBase()), S->indices(),
                                       Ty);
    }
    case Expr::ExprKind::Cast:
      return Dst.makeExpr<CastExpr>(
          cloneExpr(cast<CastExpr>(E)->getSubExpr()), Ty);
    case Expr::ExprKind::ImplicitCast: {
      const auto *IC = cast<ImplicitCastExpr>(E);
      return Dst.makeExpr<ImplicitCastExpr>(IC->getCastKind(),
                                            cloneExpr(IC->getSubExpr()), Ty);
    }
    case Expr::ExprKind::VectorConstruct: {
      const auto *V = cast<VectorConstructExpr>(E);
      std::vector<Expr *> Elems;
      Elems.reserve(V->elements().size());
      for (const Expr *Elem : V->elements())
        Elems.push_back(cloneExpr(Elem));
      return Dst.makeExpr<VectorConstructExpr>(std::move(Elems),
                                               cast<VectorType>(Ty));
    }
    case Expr::ExprKind::InitList: {
      const auto *IL = cast<InitListExpr>(E);
      std::vector<Expr *> Inits;
      Inits.reserve(IL->inits().size());
      for (const Expr *I : IL->inits())
        Inits.push_back(cloneExpr(I));
      return Dst.makeExpr<InitListExpr>(std::move(Inits), Ty);
    }
    }
    assert(false && "unknown expression kind");
    return nullptr;
  }

  Stmt *cloneStmt(const Stmt *S) {
    if (!S)
      return nullptr;
    switch (S->getKind()) {
    case Stmt::StmtKind::Compound: {
      std::vector<Stmt *> Body;
      Body.reserve(cast<CompoundStmt>(S)->body().size());
      for (const Stmt *Child : cast<CompoundStmt>(S)->body())
        Body.push_back(cloneStmt(Child));
      return Dst.makeStmt<CompoundStmt>(std::move(Body));
    }
    case Stmt::StmtKind::Decl:
      return Dst.makeStmt<DeclStmt>(mapVar(cast<DeclStmt>(S)->getDecl()));
    case Stmt::StmtKind::Expr:
      return Dst.makeStmt<ExprStmt>(cloneExpr(cast<ExprStmt>(S)->getExpr()));
    case Stmt::StmtKind::If: {
      const auto *If = cast<IfStmt>(S);
      auto *N = Dst.makeStmt<IfStmt>(cloneExpr(If->getCond()),
                                     cloneStmt(If->getThen()),
                                     cloneStmt(If->getElse()));
      N->setEmiId(If->getEmiId());
      return N;
    }
    case Stmt::StmtKind::For: {
      const auto *For = cast<ForStmt>(S);
      return Dst.makeStmt<ForStmt>(cloneStmt(For->getInit()),
                                   cloneExpr(For->getCond()),
                                   cloneExpr(For->getStep()),
                                   cloneStmt(For->getBody()));
    }
    case Stmt::StmtKind::While: {
      const auto *W = cast<WhileStmt>(S);
      return Dst.makeStmt<WhileStmt>(cloneExpr(W->getCond()),
                                     cloneStmt(W->getBody()));
    }
    case Stmt::StmtKind::Do: {
      const auto *D = cast<DoStmt>(S);
      return Dst.makeStmt<DoStmt>(cloneStmt(D->getBody()),
                                  cloneExpr(D->getCond()));
    }
    case Stmt::StmtKind::Return:
      return Dst.makeStmt<ReturnStmt>(
          cloneExpr(cast<ReturnStmt>(S)->getValue()));
    case Stmt::StmtKind::Break:
      return Dst.makeStmt<BreakStmt>();
    case Stmt::StmtKind::Continue:
      return Dst.makeStmt<ContinueStmt>();
    case Stmt::StmtKind::Barrier:
      return Dst.makeStmt<BarrierStmt>(
          cast<BarrierStmt>(S)->getFenceFlags());
    case Stmt::StmtKind::Null:
      return Dst.makeStmt<NullStmt>();
    }
    assert(false && "unknown statement kind");
    return nullptr;
  }

  const ASTContext &Src;
  ASTContext &Dst;
  std::unordered_map<const RecordType *, RecordType *> RecordMap;
  std::unordered_map<const FunctionDecl *, FunctionDecl *> FuncMap;
  std::unordered_map<const VarDecl *, VarDecl *> VarMap;
};

} // namespace

std::unique_ptr<ASTContext> clfuzz::cloneContext(const ASTContext &Src) {
  auto Dst = std::make_unique<ASTContext>();
  Cloner(Src, *Dst).run();
  return Dst;
}
