//===- Lexer.h - MiniCL lexer -----------------------------------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for MiniCL (the OpenCL C subset). Keywords are classified
/// here; type names (including vector forms like `uint4`) are emitted
/// as identifiers and resolved by the parser against its type table.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_MINICL_LEXER_H
#define CLFUZZ_MINICL_LEXER_H

#include "support/Diag.h"

#include <cstdint>
#include <string>
#include <vector>

namespace clfuzz {

/// Token kinds produced by the lexer.
enum class TokKind : uint8_t {
  Eof,
  Identifier,
  IntLiteral,
  // Keywords.
  KwKernel,
  KwVoid,
  KwStruct,
  KwUnion,
  KwTypedef,
  KwIf,
  KwElse,
  KwFor,
  KwWhile,
  KwDo,
  KwReturn,
  KwBreak,
  KwContinue,
  KwVolatile,
  KwConst,
  KwGlobal,
  KwLocal,
  KwConstant,
  KwPrivate,
  KwBarrier,
  KwSizeof, // reserved; rejected in expressions
  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Dot,
  Arrow,
  Amp,
  AmpAmp,
  Pipe,
  PipePipe,
  Caret,
  Tilde,
  Bang,
  Plus,
  PlusPlus,
  Minus,
  MinusMinus,
  Star,
  Slash,
  Percent,
  Less,
  LessLess,
  LessEqual,
  Greater,
  GreaterGreater,
  GreaterEqual,
  EqualEqual,
  BangEqual,
  Equal,
  PlusEqual,
  MinusEqual,
  StarEqual,
  SlashEqual,
  PercentEqual,
  LessLessEqual,
  GreaterGreaterEqual,
  AmpEqual,
  PipeEqual,
  CaretEqual,
  Question,
  Colon,
};

/// One lexed token. For IntLiteral, Value holds the parsed magnitude
/// and the suffix flags describe `u`/`l` suffixes.
struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Spelling;
  SourceLoc Loc;
  uint64_t Value = 0;
  bool HasUnsignedSuffix = false;
  bool HasLongSuffix = false;

  bool is(TokKind K) const { return Kind == K; }
};

/// Lexes \p Source completely. Lexical errors are reported to \p Diags
/// and yield a truncated stream ending in Eof.
std::vector<Token> lex(const std::string &Source, DiagEngine &Diags);

} // namespace clfuzz

#endif // CLFUZZ_MINICL_LEXER_H
