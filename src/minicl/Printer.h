//===- Printer.h - MiniCL to OpenCL C source printer ------------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders MiniCL ASTs as OpenCL C source text. Used to inspect
/// generated kernels (CLsmith writes .cl files), to count benchmark
/// lines for Table 2, for parser round-trip testing, and by the test
/// case reducer when emitting reduced kernels.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_MINICL_PRINTER_H
#define CLFUZZ_MINICL_PRINTER_H

#include "minicl/AST.h"

#include <string>

namespace clfuzz {

/// Pretty-printing options.
struct PrinterOptions {
  /// Emit the safe-math macro prelude before the program text.
  bool EmitSafeMathPrelude = false;
  /// Spaces per indentation level.
  unsigned IndentWidth = 2;
};

/// Prints \p Prog (records first, then functions in definition order).
std::string printProgram(const Program &Prog, const TypeContext &Types,
                         const PrinterOptions &Opts = PrinterOptions());

/// Prints a single expression.
std::string printExpr(const Expr *E);

/// Prints a single statement at indent level zero.
std::string printStmt(const Stmt *S, unsigned Indent = 0,
                      unsigned IndentWidth = 2);

/// The text of the safe-math macro prelude (documentation of the
/// semantics the VM gives the Safe* builtins; §4.1 of the paper).
std::string safeMathPrelude();

} // namespace clfuzz

#endif // CLFUZZ_MINICL_PRINTER_H
