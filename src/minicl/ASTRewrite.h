//===- ASTRewrite.h - Functional AST rewriting helpers ----------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bottom-up AST rewriting used by the optimisation passes and the EMI
/// pruner. Expression nodes are immutable, so rewrites rebuild a node
/// when any child changed and return the original node otherwise.
/// Statements are partially mutable (compound bodies, if/for bodies),
/// but the rewriter treats them uniformly: callbacks return a
/// replacement (possibly the input).
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_MINICL_ASTREWRITE_H
#define CLFUZZ_MINICL_ASTREWRITE_H

#include "minicl/AST.h"

#include <functional>

namespace clfuzz {

/// Rewrites \p E bottom-up: children first, then \p Fn on the (possibly
/// rebuilt) node. \p Fn returns the replacement (or its argument).
Expr *rewriteExpr(ASTContext &Ctx, Expr *E,
                  const std::function<Expr *(Expr *)> &Fn);

/// Rewrites every expression in the statement tree bottom-up via
/// \p ExprFn, and every statement bottom-up via \p StmtFn (applied
/// after children). Either callback may be null. Returns the (possibly
/// replaced) statement.
Stmt *rewriteStmt(ASTContext &Ctx, Stmt *S,
                  const std::function<Expr *(Expr *)> &ExprFn,
                  const std::function<Stmt *(Stmt *)> &StmtFn);

/// Applies rewriteStmt to a function body in place.
void rewriteFunction(ASTContext &Ctx, FunctionDecl *F,
                     const std::function<Expr *(Expr *)> &ExprFn,
                     const std::function<Stmt *(Stmt *)> &StmtFn);

} // namespace clfuzz

#endif // CLFUZZ_MINICL_ASTREWRITE_H
