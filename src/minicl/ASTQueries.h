//===- ASTQueries.h - Read-only AST predicates ------------------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Read-only analyses over MiniCL ASTs shared by the optimiser, the
/// EMI machinery, the generator's validity checks and the test-case
/// reducer: purity, volatility, barrier presence, variable use
/// collection and node counting.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_MINICL_ASTQUERIES_H
#define CLFUZZ_MINICL_ASTQUERIES_H

#include "minicl/AST.h"

#include <functional>
#include <set>

namespace clfuzz {

/// True if evaluating \p E may write memory, perform an atomic
/// operation, call a function, or read a volatile object. Pure
/// (side-effect-free) expressions may be deleted or duplicated by
/// optimisation passes.
bool hasSideEffects(const Expr *E);

/// True if \p E reads a volatile object anywhere.
bool readsVolatile(const Expr *E);

/// True if the statement subtree contains a BarrierStmt.
bool containsBarrier(const Stmt *S);

/// True if \p F's body (directly) contains a BarrierStmt.
bool functionContainsBarrier(const FunctionDecl *F);

/// True if the subtree contains a break/continue that would bind to an
/// enclosing loop *outside* this subtree (nested loops keep theirs).
bool containsFreeBreakOrContinue(const Stmt *S);

/// True if the subtree contains a return statement.
bool containsReturn(const Stmt *S);

/// True if the subtree contains any atomic builtin call.
bool containsAtomic(const Stmt *S);

/// Visits every expression in the statement subtree (pre-order).
void forEachExpr(const Stmt *S, const std::function<void(const Expr *)> &Fn);

/// Visits every statement in the subtree (pre-order, including \p S).
void forEachStmt(const Stmt *S, const std::function<void(const Stmt *)> &Fn);

/// Like forEachExpr, but stops the traversal as soon as \p Fn returns
/// true (same pre-order, so "first match" is identical). Returns true
/// when a callback did.
bool forEachExprUntil(const Stmt *S,
                      const std::function<bool(const Expr *)> &Fn);

/// Like forEachStmt, but stops the traversal as soon as \p Fn returns
/// true. Returns true when a callback did.
bool forEachStmtUntil(const Stmt *S,
                      const std::function<bool(const Stmt *)> &Fn);

/// The set of variables whose address is taken anywhere in \p F.
std::set<const VarDecl *> collectAddressTaken(const FunctionDecl *F);

/// Per-variable read/write usage of \p F's locals.
struct VarUsage {
  unsigned Reads = 0;       ///< value uses (excluding plain-store LHS)
  unsigned Writes = 0;      ///< assignments (incl. compound and ++/--)
  bool AddressTaken = false;
};
std::map<const VarDecl *, VarUsage> collectVarUsage(const FunctionDecl *F);

/// Number of AST nodes (statements + expressions) under \p S; a size
/// metric for the reducer and the generator's budget control.
unsigned countNodes(const Stmt *S);

/// Number of statements of each kind metric used by campaign
/// reporting.
unsigned countStmts(const Stmt *S);

} // namespace clfuzz

#endif // CLFUZZ_MINICL_ASTQUERIES_H
