//===- AST.h - MiniCL abstract syntax trees ---------------------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Expression, statement and declaration nodes for MiniCL kernels.
/// Nodes use LLVM-style Kind-enum RTTI (see support/Casting.h) and are
/// arena-owned by an ASTContext. The node set is exactly what the
/// CLsmith-style generator (src/gen), the EMI injector (src/emi), the
/// mini Parboil/Rodinia suite (src/corpus) and the bug-gallery kernels
/// of Figures 1-2 require.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_MINICL_AST_H
#define CLFUZZ_MINICL_AST_H

#include "minicl/Type.h"
#include "support/Arena.h"
#include "support/Diag.h"

#include <memory>
#include <string>
#include <vector>

namespace clfuzz {

class Expr;
class Stmt;
class VarDecl;
class FunctionDecl;

//===----------------------------------------------------------------------===//
// Operators and builtins
//===----------------------------------------------------------------------===//

/// Binary operator kinds (C precedence families; assignment operators
/// are a separate node).
enum class BinOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Shl,
  Shr,
  BitAnd,
  BitOr,
  BitXor,
  LAnd, // && with short-circuit evaluation
  LOr,  // ||
  Eq,
  Ne,
  Lt,
  Gt,
  Le,
  Ge,
  Comma, // sequencing; mishandled by the Figure 2(f) Oclgrind bug model
};

/// Returns the OpenCL C spelling ("+", "<<", ...).
const char *binOpSpelling(BinOp Op);

/// True for ==, !=, <, >, <=, >=.
bool isComparisonOp(BinOp Op);
/// True for && and ||.
bool isLogicalOp(BinOp Op);

/// Unary operator kinds.
enum class UnOp : uint8_t {
  Plus,
  Minus,
  Not,    // !
  BitNot, // ~
  PreInc,
  PreDec,
  PostInc,
  PostDec,
  Deref,
  AddrOf,
};

const char *unOpSpelling(UnOp Op);
bool isIncDecOp(UnOp Op);

/// Compound-assignment flavours; Assign is plain `=`.
enum class AssignOp : uint8_t {
  Assign,
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Shl,
  Shr,
  And,
  Or,
  Xor,
};

const char *assignOpSpelling(AssignOp Op);

/// Builtin functions known to the front end, the optimiser and the VM.
/// The Safe* entries are the paper's "safe math" wrappers (§4.1): they
/// guard the undefined behaviours of the raw operation and are printed
/// as safe_* macro invocations.
enum class Builtin : uint8_t {
  // Work-item functions (OpenCL §6.12.1). Return size_t.
  GetGlobalId,
  GetLocalId,
  GetGroupId,
  GetGlobalSize,
  GetLocalSize,
  GetNumGroups,
  // Integer builtins (component-wise on vectors).
  Clamp,
  Rotate,
  Min,
  Max,
  Abs,    // returns the unsigned counterpart type
  AddSat,
  SubSat,
  Hadd,
  MulHi,
  // Explicit vector conversion convert_<T>().
  ConvertVector,
  // 32-bit atomics on (volatile) global/local int or uint pointers.
  AtomicAdd,
  AtomicSub,
  AtomicInc,
  AtomicDec,
  AtomicMin,
  AtomicMax,
  AtomicAnd,
  AtomicOr,
  AtomicXor,
  AtomicXchg,
  AtomicCmpxchg,
  // Safe math wrappers (defined behaviour for all inputs).
  SafeAdd,
  SafeSub,
  SafeMul,
  SafeDiv,
  SafeMod,
  SafeShl,
  SafeShr,
  SafeNeg,
  SafeClamp,
  SafeRotate,
};

/// OpenCL C spelling of the builtin (safe builtins use the macro names
/// CLsmith emits, e.g. "safe_add").
const char *builtinName(Builtin B);

/// True for the atomic read-modify-write builtins.
bool isAtomicBuiltin(Builtin B);
/// True for builtins whose value is a work-item/geometry query.
bool isWorkItemBuiltin(Builtin B);

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Base class of all MiniCL expressions. The node's type is assigned at
/// construction (generator) or during Sema (parsed code).
class Expr {
public:
  enum class ExprKind : uint8_t {
    IntLiteral,
    DeclRef,
    Unary,
    Binary,
    Assign,
    Conditional,
    Call,
    BuiltinCall,
    Index,
    Member,
    Swizzle,
    Cast,
    ImplicitCast,
    VectorConstruct,
    InitList,
  };

  ExprKind getKind() const { return Kind; }
  const Type *getType() const { return Ty; }
  void setType(const Type *T) { Ty = T; }

  SourceLoc getLoc() const { return Loc; }
  void setLoc(SourceLoc L) { Loc = L; }

protected:
  Expr(ExprKind K, const Type *Ty) : Kind(K), Ty(Ty) {}
  ~Expr() = default;

private:
  ExprKind Kind;
  const Type *Ty;
  SourceLoc Loc;
};

/// An integer literal. The value is stored as the raw two's-complement
/// bit pattern truncated to the literal's type width.
class IntLiteral : public Expr {
public:
  IntLiteral(uint64_t Value, const ScalarType *Ty)
      : Expr(ExprKind::IntLiteral, Ty), Value(Value) {}

  uint64_t getValue() const { return Value; }

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::IntLiteral;
  }

private:
  uint64_t Value;
};

/// A reference to a variable or parameter.
class DeclRef : public Expr {
public:
  explicit DeclRef(const VarDecl *D);

  const VarDecl *getDecl() const { return D; }

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::DeclRef;
  }

private:
  const VarDecl *D;
};

/// A unary operation.
class UnaryExpr : public Expr {
public:
  UnaryExpr(UnOp Op, Expr *Sub, const Type *Ty)
      : Expr(ExprKind::Unary, Ty), Op(Op), Sub(Sub) {}

  UnOp getOp() const { return Op; }
  Expr *getSubExpr() const { return Sub; }

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Unary;
  }

private:
  UnOp Op;
  Expr *Sub;
};

/// A binary operation (including comma).
class BinaryExpr : public Expr {
public:
  BinaryExpr(BinOp Op, Expr *LHS, Expr *RHS, const Type *Ty)
      : Expr(ExprKind::Binary, Ty), Op(Op), LHS(LHS), RHS(RHS) {}

  BinOp getOp() const { return Op; }
  Expr *getLHS() const { return LHS; }
  Expr *getRHS() const { return RHS; }

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Binary;
  }

private:
  BinOp Op;
  Expr *LHS;
  Expr *RHS;
};

/// An assignment (`=`, `+=`, ...). The result type is the LHS type.
class AssignExpr : public Expr {
public:
  AssignExpr(AssignOp Op, Expr *LHS, Expr *RHS, const Type *Ty)
      : Expr(ExprKind::Assign, Ty), Op(Op), LHS(LHS), RHS(RHS) {}

  AssignOp getOp() const { return Op; }
  Expr *getLHS() const { return LHS; }
  Expr *getRHS() const { return RHS; }

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Assign;
  }

private:
  AssignOp Op;
  Expr *LHS;
  Expr *RHS;
};

/// The ternary conditional `c ? t : f`.
class ConditionalExpr : public Expr {
public:
  ConditionalExpr(Expr *Cond, Expr *TrueE, Expr *FalseE, const Type *Ty)
      : Expr(ExprKind::Conditional, Ty), Cond(Cond), TrueE(TrueE),
        FalseE(FalseE) {}

  Expr *getCond() const { return Cond; }
  Expr *getTrueExpr() const { return TrueE; }
  Expr *getFalseExpr() const { return FalseE; }

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Conditional;
  }

private:
  Expr *Cond;
  Expr *TrueE;
  Expr *FalseE;
};

/// A call to a user-defined function.
class CallExpr : public Expr {
public:
  CallExpr(const FunctionDecl *Callee, std::vector<Expr *> Args,
           const Type *Ty)
      : Expr(ExprKind::Call, Ty), Callee(Callee), Args(std::move(Args)) {}

  const FunctionDecl *getCallee() const { return Callee; }
  const std::vector<Expr *> &args() const { return Args; }

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Call;
  }

private:
  const FunctionDecl *Callee;
  std::vector<Expr *> Args;
};

/// A call to a builtin. For ConvertVector the node type carries the
/// conversion target.
class BuiltinCallExpr : public Expr {
public:
  BuiltinCallExpr(Builtin B, std::vector<Expr *> Args, const Type *Ty)
      : Expr(ExprKind::BuiltinCall, Ty), B(B), Args(std::move(Args)) {}

  Builtin getBuiltin() const { return B; }
  const std::vector<Expr *> &args() const { return Args; }
  Expr *getArg(unsigned I) const { return Args[I]; }
  unsigned getNumArgs() const { return Args.size(); }

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::BuiltinCall;
  }

private:
  Builtin B;
  std::vector<Expr *> Args;
};

/// An array subscript `base[index]`. `base` is an array lvalue or a
/// pointer rvalue.
class IndexExpr : public Expr {
public:
  IndexExpr(Expr *Base, Expr *Index, const Type *Ty)
      : Expr(ExprKind::Index, Ty), Base(Base), Index(Index) {}

  Expr *getBase() const { return Base; }
  Expr *getIndex() const { return Index; }

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Index;
  }

private:
  Expr *Base;
  Expr *Index;
};

/// A struct/union member access `base.f` or `base->f`.
class MemberExpr : public Expr {
public:
  MemberExpr(Expr *Base, unsigned FieldIndex, bool IsArrow,
             const Type *Ty)
      : Expr(ExprKind::Member, Ty), Base(Base), FieldIndex(FieldIndex),
        IsArrow(IsArrow) {}

  Expr *getBase() const { return Base; }
  unsigned getFieldIndex() const { return FieldIndex; }
  bool isArrow() const { return IsArrow; }

  /// The record type being accessed (after stripping the pointer for
  /// `->`).
  const RecordType *getRecordType() const;

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Member;
  }

private:
  Expr *Base;
  unsigned FieldIndex;
  bool IsArrow;
};

/// A vector swizzle `v.xyzw` / `v.s03`. One index yields the scalar
/// element type; multiple indices yield a vector.
class SwizzleExpr : public Expr {
public:
  SwizzleExpr(Expr *Base, std::vector<unsigned> Indices, const Type *Ty)
      : Expr(ExprKind::Swizzle, Ty), Base(Base),
        Indices(std::move(Indices)) {}

  Expr *getBase() const { return Base; }
  const std::vector<unsigned> &indices() const { return Indices; }

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Swizzle;
  }

private:
  Expr *Base;
  std::vector<unsigned> Indices;
};

/// An explicit scalar cast `(T)e`.
class CastExpr : public Expr {
public:
  CastExpr(Expr *Sub, const Type *Ty) : Expr(ExprKind::Cast, Ty), Sub(Sub) {}

  Expr *getSubExpr() const { return Sub; }

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::Cast;
  }

private:
  Expr *Sub;
};

/// A compiler-inserted conversion.
class ImplicitCastExpr : public Expr {
public:
  enum class CastKind : uint8_t {
    IntegralConvert, // scalar width/signedness change
    VectorSplat,     // scalar broadcast to all lanes
    BoolToInt,       // comparison result used as an int
  };

  ImplicitCastExpr(CastKind CK, Expr *Sub, const Type *Ty)
      : Expr(ExprKind::ImplicitCast, Ty), CK(CK), Sub(Sub) {}

  CastKind getCastKind() const { return CK; }
  Expr *getSubExpr() const { return Sub; }

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::ImplicitCast;
  }

private:
  CastKind CK;
  Expr *Sub;
};

/// An OpenCL vector construction `(int4)(a, b2, c)`. Element
/// expressions may be scalars or shorter vectors; the lane total must
/// equal the target width (or be a single scalar splat).
class VectorConstructExpr : public Expr {
public:
  VectorConstructExpr(std::vector<Expr *> Elems, const VectorType *Ty)
      : Expr(ExprKind::VectorConstruct, Ty), Elems(std::move(Elems)) {}

  const std::vector<Expr *> &elements() const { return Elems; }

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::VectorConstruct;
  }

private:
  std::vector<Expr *> Elems;
};

/// A brace initializer list for structs/unions/arrays (only valid as a
/// variable initializer). A union initializer list initialises the
/// first member, which is what the Figure 2(a) NVIDIA bug model gets
/// wrong.
class InitListExpr : public Expr {
public:
  InitListExpr(std::vector<Expr *> Inits, const Type *Ty)
      : Expr(ExprKind::InitList, Ty), Inits(std::move(Inits)) {}

  const std::vector<Expr *> &inits() const { return Inits; }

  static bool classof(const Expr *E) {
    return E->getKind() == ExprKind::InitList;
  }

private:
  std::vector<Expr *> Inits;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// Base class of all MiniCL statements.
class Stmt {
public:
  enum class StmtKind : uint8_t {
    Compound,
    Decl,
    Expr,
    If,
    For,
    While,
    Do,
    Return,
    Break,
    Continue,
    Barrier,
    Null,
  };

  StmtKind getKind() const { return Kind; }

protected:
  explicit Stmt(StmtKind K) : Kind(K) {}
  ~Stmt() = default;

private:
  StmtKind Kind;
};

/// A `{ ... }` block.
class CompoundStmt : public Stmt {
public:
  explicit CompoundStmt(std::vector<Stmt *> Body)
      : Stmt(StmtKind::Compound), Body(std::move(Body)) {}

  const std::vector<Stmt *> &body() const { return Body; }
  std::vector<Stmt *> &body() { return Body; }

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Compound;
  }

private:
  std::vector<Stmt *> Body;
};

/// A local variable declaration statement.
class DeclStmt : public Stmt {
public:
  explicit DeclStmt(VarDecl *D) : Stmt(StmtKind::Decl), D(D) {}

  VarDecl *getDecl() const { return D; }

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Decl;
  }

private:
  VarDecl *D;
};

/// An expression evaluated for its side effects.
class ExprStmt : public Stmt {
public:
  explicit ExprStmt(Expr *E) : Stmt(StmtKind::Expr), E(E) {}

  Expr *getExpr() const { return E; }

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Expr;
  }

private:
  Expr *E;
};

/// An `if` statement. EMI blocks (paper §5) are IfStmts flagged with an
/// EMI id so the pruner can locate them.
class IfStmt : public Stmt {
public:
  IfStmt(Expr *Cond, Stmt *Then, Stmt *Else)
      : Stmt(StmtKind::If), Cond(Cond), Then(Then), Else(Else) {}

  Expr *getCond() const { return Cond; }
  Stmt *getThen() const { return Then; }
  Stmt *getElse() const { return Else; }
  void setThen(Stmt *S) { Then = S; }
  void setElse(Stmt *S) { Else = S; }

  bool isEmiBlock() const { return EmiId >= 0; }
  int getEmiId() const { return EmiId; }
  void setEmiId(int Id) { EmiId = Id; }

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::If;
  }

private:
  Expr *Cond;
  Stmt *Then;
  Stmt *Else;
  int EmiId = -1;
};

/// A `for` loop. Init may be a DeclStmt, an ExprStmt or null; Cond and
/// Step may be null.
class ForStmt : public Stmt {
public:
  ForStmt(Stmt *Init, Expr *Cond, Expr *Step, Stmt *Body)
      : Stmt(StmtKind::For), Init(Init), Cond(Cond), Step(Step),
        Body(Body) {}

  Stmt *getInit() const { return Init; }
  Expr *getCond() const { return Cond; }
  Expr *getStep() const { return Step; }
  Stmt *getBody() const { return Body; }
  void setBody(Stmt *S) { Body = S; }

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::For;
  }

private:
  Stmt *Init;
  Expr *Cond;
  Expr *Step;
  Stmt *Body;
};

/// A `while` loop.
class WhileStmt : public Stmt {
public:
  WhileStmt(Expr *Cond, Stmt *Body)
      : Stmt(StmtKind::While), Cond(Cond), Body(Body) {}

  Expr *getCond() const { return Cond; }
  Stmt *getBody() const { return Body; }

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::While;
  }

private:
  Expr *Cond;
  Stmt *Body;
};

/// A `do ... while` loop.
class DoStmt : public Stmt {
public:
  DoStmt(Stmt *Body, Expr *Cond)
      : Stmt(StmtKind::Do), Body(Body), Cond(Cond) {}

  Stmt *getBody() const { return Body; }
  Expr *getCond() const { return Cond; }

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Do;
  }

private:
  Stmt *Body;
  Expr *Cond;
};

/// A `return` statement (value may be null for void functions).
class ReturnStmt : public Stmt {
public:
  explicit ReturnStmt(Expr *Value)
      : Stmt(StmtKind::Return), Value(Value) {}

  Expr *getValue() const { return Value; }

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Return;
  }

private:
  Expr *Value;
};

class BreakStmt : public Stmt {
public:
  BreakStmt() : Stmt(StmtKind::Break) {}

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Break;
  }
};

class ContinueStmt : public Stmt {
public:
  ContinueStmt() : Stmt(StmtKind::Continue) {}

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Continue;
  }
};

/// A work-group barrier with a memory-fence flag set (§3.1).
class BarrierStmt : public Stmt {
public:
  enum FenceFlags : uint8_t {
    LocalFence = 1,
    GlobalFence = 2,
  };

  explicit BarrierStmt(uint8_t Flags)
      : Stmt(StmtKind::Barrier), Flags(Flags) {}

  uint8_t getFenceFlags() const { return Flags; }

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Barrier;
  }

private:
  uint8_t Flags;
};

class NullStmt : public Stmt {
public:
  NullStmt() : Stmt(StmtKind::Null) {}

  static bool classof(const Stmt *S) {
    return S->getKind() == StmtKind::Null;
  }
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

/// A variable, parameter or kernel-scope local-memory declaration.
class VarDecl {
public:
  VarDecl(std::string Name, const Type *Ty, AddressSpace AS)
      : Name(std::move(Name)), Ty(Ty), AS(AS) {}

  const std::string &getName() const { return Name; }
  const Type *getType() const { return Ty; }
  AddressSpace getAddressSpace() const { return AS; }

  Expr *getInit() const { return Init; }
  void setInit(Expr *E) { Init = E; }

  bool isParam() const { return Param; }
  void setParam(bool V) { Param = V; }
  bool isVolatile() const { return Volatile; }
  void setVolatile(bool V) { Volatile = V; }
  bool isConst() const { return Const; }
  void setConst(bool V) { Const = V; }

private:
  std::string Name;
  const Type *Ty;
  AddressSpace AS;
  Expr *Init = nullptr;
  bool Param = false;
  bool Volatile = false;
  bool Const = false;
};

/// A function or kernel definition.
class FunctionDecl {
public:
  FunctionDecl(std::string Name, const Type *ReturnTy, bool IsKernel)
      : Name(std::move(Name)), ReturnTy(ReturnTy), Kernel(IsKernel) {}

  const std::string &getName() const { return Name; }
  const Type *getReturnType() const { return ReturnTy; }
  bool isKernel() const { return Kernel; }

  void addParam(VarDecl *P) { Params.push_back(P); }
  const std::vector<VarDecl *> &params() const { return Params; }

  CompoundStmt *getBody() const { return Body; }
  void setBody(CompoundStmt *B) { Body = B; }

private:
  std::string Name;
  const Type *ReturnTy;
  bool Kernel;
  std::vector<VarDecl *> Params;
  CompoundStmt *Body = nullptr;
};

//===----------------------------------------------------------------------===//
// Program and context
//===----------------------------------------------------------------------===//

/// One MiniCL translation unit: record types (owned by the
/// TypeContext), functions in definition order, and exactly one kernel.
class Program {
public:
  void addFunction(FunctionDecl *F) { Functions.push_back(F); }
  const std::vector<FunctionDecl *> &functions() const {
    return Functions;
  }

  /// Removes \p F from the program (used by the reducer). The node
  /// itself stays owned by the ASTContext. Returns false if absent.
  bool removeFunction(const FunctionDecl *F) {
    for (auto It = Functions.begin(); It != Functions.end(); ++It) {
      if (*It == F) {
        Functions.erase(It);
        return true;
      }
    }
    return false;
  }

  FunctionDecl *findFunction(const std::string &Name) const;

  /// Returns the unique kernel entry point, or null.
  FunctionDecl *kernel() const;

private:
  std::vector<FunctionDecl *> Functions;
};

/// Arena that owns every AST node plus the associated TypeContext and
/// Program. Generators, the parser, the EMI injector and the reducer
/// all allocate through one ASTContext so node lifetime is uniform:
/// nodes are bump-allocated (support/Arena.h) and live until the
/// context dies, which makes teardown O(slabs) and deep cloning
/// (minicl/ASTClone.h) a linear walk into consecutive memory.
/// BumpArena::create calls each node's destructor through its concrete
/// type, so the hierarchies keep their protected non-virtual base
/// destructors.
class ASTContext {
public:
  ASTContext() : Prog(std::make_unique<Program>()) {}
  ASTContext(const ASTContext &) = delete;
  ASTContext &operator=(const ASTContext &) = delete;

  TypeContext &types() { return Types; }
  const TypeContext &types() const { return Types; }
  Program &program() { return *Prog; }
  const Program &program() const { return *Prog; }

  /// Allocates an expression node.
  template <typename T, typename... Args> T *makeExpr(Args &&...A) {
    return Nodes.create<T>(std::forward<Args>(A)...);
  }

  /// Allocates a statement node.
  template <typename T, typename... Args> T *makeStmt(Args &&...A) {
    return Nodes.create<T>(std::forward<Args>(A)...);
  }

  VarDecl *makeVar(std::string Name, const Type *Ty, AddressSpace AS) {
    return Nodes.create<VarDecl>(std::move(Name), Ty, AS);
  }

  FunctionDecl *makeFunction(std::string Name, const Type *ReturnTy,
                             bool IsKernel) {
    return Nodes.create<FunctionDecl>(std::move(Name), ReturnTy, IsKernel);
  }

  // Convenience factories used heavily by the generator and corpus.
  IntLiteral *intLit(uint64_t V, const ScalarType *Ty) {
    return makeExpr<IntLiteral>(V, Ty);
  }
  IntLiteral *intLit(int V) {
    return makeExpr<IntLiteral>(static_cast<uint64_t>(static_cast<int64_t>(V)),
                                Types.intTy());
  }
  DeclRef *ref(const VarDecl *D) { return makeExpr<DeclRef>(D); }

  /// Node-arena payload bytes (types excluded); bench instrumentation.
  size_t nodeBytesAllocated() const { return Nodes.bytesAllocated(); }

private:
  TypeContext Types;
  std::unique_ptr<Program> Prog;
  BumpArena Nodes;
};

} // namespace clfuzz

#endif // CLFUZZ_MINICL_AST_H
