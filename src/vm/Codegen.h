//===- Codegen.h - MiniCL AST to bytecode compiler --------------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The back end of the simulated OpenCL driver stack: lowers typed
/// MiniCL ASTs to the stack bytecode of src/vm/Bytecode.h. Codegen
/// consults a LayoutEngine for aggregate layout (through which the
/// Figure 1(a)/2(a) layout bug models act) and implements the Figure
/// 2(f) comma-operator bug model directly.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_VM_CODEGEN_H
#define CLFUZZ_VM_CODEGEN_H

#include "layout/Layout.h"
#include "minicl/AST.h"
#include "vm/Bytecode.h"

namespace clfuzz {

/// Codegen configuration, including back-end bug models.
struct CodegenOptions {
  LayoutOptions Layout;
  /// Figure 2(f): the comma operator discards its right operand and
  /// yields zero when its result feeds a branch condition.
  bool CommaDropsRhsBug = false;
  /// Oclgrind-style vector defect (§7.3 notes a vector-related wrong
  /// code source for configuration 19): swizzle selectors for lanes
  /// >= 8 read the preceding lane.
  bool SwizzleHighLaneBug = false;
  /// Figure 1(b) (anonymous GPU configurations 10-/11-): whole-record
  /// copies of structs containing a volatile field stop copying after
  /// that field, leaving the tail of the destination unwritten.
  bool VolatileStructCopyBug = false;
};

/// Result of compiling a program to bytecode.
struct CodegenResult {
  bool Ok = false;
  std::string Error;
  CompiledModule Module;
};

/// Compiles the (sema-checked) program in \p Ctx.
CodegenResult compileToBytecode(ASTContext &Ctx,
                                const CodegenOptions &Opts = {});

} // namespace clfuzz

#endif // CLFUZZ_VM_CODEGEN_H
