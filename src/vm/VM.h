//===- VM.h - NDRange executor for MiniCL bytecode --------------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated OpenCL device: executes a CompiledModule over an
/// NDRange of work-items organised into work-groups, with
///
///  * four address spaces (global/constant buffers, a per-group local
///    arena, a per-thread private arena),
///  * collective barriers with *divergence detection* (threads of a
///    group must reach the same syntactic barrier the same number of
///    times, §3.1 of the paper),
///  * atomic read-modify-write operations (atomicity is inherent to
///    the instruction-granular scheduler),
///  * a seeded preemptive scheduler so that scheduling-dependent code
///    (e.g. ATOMIC SECTION winners) genuinely varies with the seed
///    while the paper's determinism discipline keeps results stable,
///  * an optional happens-before data-race detector (used to reproduce
///    the paper's discovery of races in Parboil spmv and Rodinia
///    myocyte, §2.4), and
///  * step budgets producing Timeout outcomes, plus memory traps
///    producing Crash outcomes.
///
/// Work-groups execute sequentially; OpenCL 1.x provides no inter-group
/// synchronisation, so any program for which this is observable is by
/// definition racy (§4.2).
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_VM_VM_H
#define CLFUZZ_VM_VM_H

#include "vm/Bytecode.h"
#include "vm/Value.h"

#include <memory>
#include <string>
#include <vector>

namespace clfuzz {

/// A host-visible memory buffer bound to a kernel argument.
struct Buffer {
  AddressSpace Space = AddressSpace::Global;
  std::vector<uint8_t> Bytes;

  /// Reads a little-endian scalar at byte \p Offset.
  uint64_t readScalar(uint64_t Offset, unsigned ByteWidth) const;
  /// Writes a little-endian scalar at byte \p Offset.
  void writeScalar(uint64_t Offset, unsigned ByteWidth, uint64_t Bits);
};

/// One kernel argument: either an index into the launch's buffer list
/// or an immediate scalar value.
struct KernelArg {
  bool IsBuffer = true;
  unsigned BufferIndex = 0;
  Value Scalar;

  static KernelArg buffer(unsigned Index) {
    KernelArg A;
    A.IsBuffer = true;
    A.BufferIndex = Index;
    return A;
  }
  static KernelArg scalar(Value V) {
    KernelArg A;
    A.IsBuffer = false;
    A.Scalar = V;
    return A;
  }
};

/// The grid geometry (always 3D; lower-dimensional launches use 1s).
struct NDRange {
  uint32_t Global[3] = {1, 1, 1};
  uint32_t Local[3] = {1, 1, 1};

  uint64_t globalLinear() const {
    return static_cast<uint64_t>(Global[0]) * Global[1] * Global[2];
  }
  uint64_t localLinear() const {
    return static_cast<uint64_t>(Local[0]) * Local[1] * Local[2];
  }
  uint32_t numGroups(unsigned Dim) const {
    return Global[Dim] / Local[Dim];
  }
  uint64_t numGroupsLinear() const {
    return static_cast<uint64_t>(numGroups(0)) * numGroups(1) *
           numGroups(2);
  }
  /// True if each local size divides the corresponding global size.
  bool valid() const {
    for (int I = 0; I != 3; ++I)
      if (Local[I] == 0 || Global[I] == 0 || Global[I] % Local[I] != 0)
        return false;
    return true;
  }
};

/// Launch tuning knobs.
struct LaunchOptions {
  NDRange Range;
  /// Total dynamic instruction budget; exhausting it yields Timeout
  /// (the stand-in for the paper's 60-second test timeout).
  uint64_t StepBudget = 400'000'000;
  /// Seed for the preemptive scheduler.
  uint64_t SchedulerSeed = 0;
  /// Enables the data-race detector (slower).
  bool DetectRaces = false;
  /// Private arena bytes per work-item.
  uint64_t PrivateArenaSize = 1 << 16;
  unsigned MaxCallDepth = 64;
};

/// Launch outcome classification.
enum class LaunchStatus : uint8_t {
  Success,
  Trap,              ///< runtime fault (maps to the paper's "crash")
  Timeout,           ///< step budget exhausted
  BarrierDivergence, ///< undefined behaviour per the OpenCL spec
  InvalidLaunch,     ///< bad geometry or argument mismatch
};

const char *launchStatusName(LaunchStatus S);

/// Result of one kernel launch.
struct LaunchResult {
  LaunchStatus Status = LaunchStatus::InvalidLaunch;
  std::string Message;
  uint64_t StepsExecuted = 0;
  bool RaceFound = false;
  std::string RaceMessage;

  bool ok() const { return Status == LaunchStatus::Success; }
};

//===----------------------------------------------------------------------===//
// Interpreter tuning (dispatch strategy, superinstruction fusion)
//===----------------------------------------------------------------------===//

/// Dispatch strategy for the interpreter hot loop. Both strategies
/// share one handler-body implementation and are bit-identical in
/// every observable output; only wall-clock speed differs.
enum class VmDispatch : uint8_t {
  Switch, ///< portable for(;;)/switch loop
  Goto,   ///< token-threaded computed-goto loop (GCC/Clang extension)
};

/// True when the binary was compiled with computed-goto support.
bool vmHasGotoDispatch();

/// The process-wide dispatch mode. Resolved once from
/// `CLFUZZ_VM_DISPATCH=switch|goto` (default: goto where compiled in),
/// unless overridden via setVmDispatchMode (the `--vm-dispatch=` flag,
/// conformance tests). Requests for Goto degrade to Switch when the
/// feature is not compiled in.
VmDispatch vmDispatchMode();
void setVmDispatchMode(VmDispatch D);
const char *vmDispatchName(VmDispatch D);
/// Parses "switch" / "goto"; returns false on anything else.
bool parseVmDispatch(const char *Name, VmDispatch &Out);

/// Process-wide superinstruction-fusion toggle, resolved once from
/// `CLFUZZ_VM_FUSE=0|1` (default on) unless overridden. Read at
/// codegen time; fused and unfused modules execute bit-identically.
bool vmFusionEnabled();
void setVmFusionEnabled(bool Enabled);

/// Cumulative per-process interpreter counters (monotonic, updated
/// once per launch — never from the hot loop). Worker processes
/// (procs/remote backends) accumulate their own; the coordinator only
/// sees launches it executed in-process.
struct VmCounters {
  uint64_t Instructions = 0;  ///< dynamic instructions (fused pair = 2)
  uint64_t FusedExecuted = 0; ///< superinstruction dispatches (pair = 1)
  uint64_t Launches = 0;      ///< kernel launches executed
  uint64_t EngineReuses = 0;  ///< launches served by a reused engine
};
VmCounters vmCounters();

//===----------------------------------------------------------------------===//
// Launch API
//===----------------------------------------------------------------------===//

/// A reusable launch session. Successive launches reuse the engine's
/// thread contexts, operand stacks and arenas (re-poisoned to the
/// deterministic 0xab fill up to their previous high-water mark), so
/// the cells of a campaign column pay the allocation cost once. Reuse
/// is observationally identical to constructing a fresh engine per
/// launch — including after a Trap, Timeout or BarrierDivergence —
/// which VmDispatchConformanceTest pins. Not thread-safe; use one
/// instance per thread.
class VmInstance {
public:
  VmInstance();
  ~VmInstance();
  VmInstance(VmInstance &&) noexcept;
  VmInstance &operator=(VmInstance &&) noexcept;

  /// Executes \p Module over \p Opts.Range, binding \p Args (buffer
  /// arguments index into \p Buffers, which the kernel mutates in
  /// place).
  LaunchResult launch(const CompiledModule &Module,
                      std::vector<Buffer> &Buffers,
                      const std::vector<KernelArg> &Args,
                      const LaunchOptions &Opts);

private:
  struct Impl;
  std::unique_ptr<Impl> P;
};

/// Executes \p Module over \p Opts.Range, binding \p Args (buffer
/// arguments index into \p Buffers, which the kernel mutates in
/// place). Launches run on a per-thread VmInstance, so back-to-back
/// launches on one thread reuse engine state (zero-allocation fast
/// path); construct a VmInstance directly for explicit control.
LaunchResult launchKernel(const CompiledModule &Module,
                          std::vector<Buffer> &Buffers,
                          const std::vector<KernelArg> &Args,
                          const LaunchOptions &Opts);

} // namespace clfuzz

#endif // CLFUZZ_VM_VM_H
