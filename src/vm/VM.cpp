//===- VM.cpp - NDRange executor for MiniCL bytecode ------------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// The interpreter hot path lives in VMInterp.inc, which this file
// expands twice: once as a portable switch loop and once (on GCC and
// Clang) as a token-threaded computed-goto loop. See docs/vm.md for
// the dispatch, superinstruction and launch-reuse design.
//
//===----------------------------------------------------------------------===//

#include "vm/VM.h"
#include "minicl/IntOps.h"
#include "support/Rng.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <unordered_map>

using namespace clfuzz;

#if defined(__GNUC__) || defined(__clang__)
#define CLFUZZ_VM_HAVE_GOTO 1
#else
#define CLFUZZ_VM_HAVE_GOTO 0
#endif

//===----------------------------------------------------------------------===//
// Buffer helpers
//===----------------------------------------------------------------------===//

uint64_t Buffer::readScalar(uint64_t Offset, unsigned ByteWidth) const {
  assert(Offset + ByteWidth <= Bytes.size() && "host read out of bounds");
  uint64_t V = 0;
  for (unsigned I = 0; I != ByteWidth; ++I)
    V |= static_cast<uint64_t>(Bytes[Offset + I]) << (8 * I);
  return V;
}

void Buffer::writeScalar(uint64_t Offset, unsigned ByteWidth,
                         uint64_t Bits) {
  assert(Offset + ByteWidth <= Bytes.size() && "host write out of bounds");
  for (unsigned I = 0; I != ByteWidth; ++I)
    Bytes[Offset + I] = static_cast<uint8_t>(Bits >> (8 * I));
}

const char *clfuzz::launchStatusName(LaunchStatus S) {
  switch (S) {
  case LaunchStatus::Success:
    return "success";
  case LaunchStatus::Trap:
    return "trap";
  case LaunchStatus::Timeout:
    return "timeout";
  case LaunchStatus::BarrierDivergence:
    return "barrier divergence";
  case LaunchStatus::InvalidLaunch:
    return "invalid launch";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Interpreter tuning state and counters
//===----------------------------------------------------------------------===//

namespace {

std::atomic<int> GDispatchMode{-1}; // -1 unresolved, else VmDispatch
std::atomic<int> GFusionMode{-1};   // -1 unresolved, else 0/1

std::atomic<uint64_t> GInstructions{0};
std::atomic<uint64_t> GFusedExecuted{0};
std::atomic<uint64_t> GLaunches{0};
std::atomic<uint64_t> GEngineReuses{0};

} // namespace

bool clfuzz::vmHasGotoDispatch() { return CLFUZZ_VM_HAVE_GOTO != 0; }

const char *clfuzz::vmDispatchName(VmDispatch D) {
  return D == VmDispatch::Goto ? "goto" : "switch";
}

bool clfuzz::parseVmDispatch(const char *Name, VmDispatch &Out) {
  if (!Name)
    return false;
  if (std::strcmp(Name, "switch") == 0) {
    Out = VmDispatch::Switch;
    return true;
  }
  if (std::strcmp(Name, "goto") == 0) {
    Out = VmDispatch::Goto;
    return true;
  }
  return false;
}

void clfuzz::setVmDispatchMode(VmDispatch D) {
  if (D == VmDispatch::Goto && !vmHasGotoDispatch())
    D = VmDispatch::Switch;
  GDispatchMode.store(static_cast<int>(D), std::memory_order_relaxed);
}

VmDispatch clfuzz::vmDispatchMode() {
  int Mode = GDispatchMode.load(std::memory_order_relaxed);
  if (Mode >= 0)
    return static_cast<VmDispatch>(Mode);
  VmDispatch D =
      vmHasGotoDispatch() ? VmDispatch::Goto : VmDispatch::Switch;
  if (const char *Env = std::getenv("CLFUZZ_VM_DISPATCH")) {
    VmDispatch Parsed;
    if (parseVmDispatch(Env, Parsed))
      D = Parsed;
  }
  if (D == VmDispatch::Goto && !vmHasGotoDispatch())
    D = VmDispatch::Switch;
  GDispatchMode.store(static_cast<int>(D), std::memory_order_relaxed);
  return D;
}

void clfuzz::setVmFusionEnabled(bool Enabled) {
  GFusionMode.store(Enabled ? 1 : 0, std::memory_order_relaxed);
}

bool clfuzz::vmFusionEnabled() {
  int Mode = GFusionMode.load(std::memory_order_relaxed);
  if (Mode >= 0)
    return Mode != 0;
  bool On = true;
  if (const char *Env = std::getenv("CLFUZZ_VM_FUSE"))
    On = !(std::strcmp(Env, "0") == 0 || std::strcmp(Env, "off") == 0 ||
           std::strcmp(Env, "false") == 0);
  GFusionMode.store(On ? 1 : 0, std::memory_order_relaxed);
  return On;
}

VmCounters clfuzz::vmCounters() {
  VmCounters C;
  C.Instructions = GInstructions.load(std::memory_order_relaxed);
  C.FusedExecuted = GFusedExecuted.load(std::memory_order_relaxed);
  C.Launches = GLaunches.load(std::memory_order_relaxed);
  C.EngineReuses = GEngineReuses.load(std::memory_order_relaxed);
  return C;
}

namespace {

//===----------------------------------------------------------------------===//
// Race detection
//===----------------------------------------------------------------------===//

/// Happens-before data-race detector following the paper's definition
/// (§3.1): conflicting accesses race unless both are atomic, or the
/// threads share a group and a barrier (with the right fence) separates
/// the accesses.
class RaceDetector {
public:
  struct Access {
    uint32_t Thread;
    uint32_t Group;
    uint32_t Epoch;
    bool Atomic;
    bool Write;
  };

  bool Found = false;
  std::string Message;

  void onAccess(bool IsLocalSpace, unsigned Buf, uint64_t Offset,
                uint64_t Size, Access A) {
    if (Found)
      return;
    auto &Map = IsLocalSpace ? LocalBytes : GlobalBytes[Buf];
    for (uint64_t I = 0; I != Size; ++I) {
      ByteState &BS = Map[Offset + I];
      if (A.Write) {
        if (BS.HasWrite && conflicts(BS.Write, A)) {
          report(IsLocalSpace, Buf, Offset + I, BS.Write, A);
          return;
        }
        for (const Access &R : BS.Reads)
          if (conflicts(R, A)) {
            report(IsLocalSpace, Buf, Offset + I, R, A);
            return;
          }
        BS.Write = A;
        BS.HasWrite = true;
        BS.Reads.clear();
      } else {
        if (BS.HasWrite && conflicts(BS.Write, A)) {
          report(IsLocalSpace, Buf, Offset + I, BS.Write, A);
          return;
        }
        if (BS.Reads.size() < 4)
          BS.Reads.push_back(A);
      }
    }
  }

  /// Local memory is re-used between groups; forget its history.
  void resetLocal() { LocalBytes.clear(); }

  /// Forgets everything (launch-session reuse).
  void reset() {
    Found = false;
    Message.clear();
    LocalBytes.clear();
    GlobalBytes.clear();
  }

private:
  struct ByteState {
    Access Write = {};
    bool HasWrite = false;
    std::vector<Access> Reads;
  };

  static bool conflicts(const Access &A, const Access &B) {
    if (A.Thread == B.Thread)
      return false;
    if (!A.Write && !B.Write)
      return false;
    if (A.Atomic && B.Atomic)
      return false;
    if (A.Group != B.Group)
      return true; // no inter-group ordering exists in OpenCL 1.x
    return A.Epoch == B.Epoch; // same barrier interval
  }

  void report(bool IsLocal, unsigned Buf, uint64_t Offset, const Access &A,
              const Access &B) {
    Found = true;
    std::ostringstream OS;
    OS << "data race on " << (IsLocal ? "local" : "global") << " memory";
    if (!IsLocal)
      OS << " (buffer " << Buf << ")";
    OS << " at byte " << Offset << " between threads " << A.Thread
       << (A.Write ? " (write" : " (read")
       << (A.Atomic ? ", atomic)" : ")") << " and " << B.Thread
       << (B.Write ? " (write" : " (read")
       << (B.Atomic ? ", atomic)" : ")");
    Message = OS.str();
  }

  std::unordered_map<uint64_t, ByteState> LocalBytes;
  std::unordered_map<unsigned, std::unordered_map<uint64_t, ByteState>>
      GlobalBytes;
};

//===----------------------------------------------------------------------===//
// Thread state
//===----------------------------------------------------------------------===//

enum class TState : uint8_t { Runnable, AtBarrier, Finished };

struct Frame {
  unsigned Func;
  size_t PC;
  uint64_t Base;
};

struct ThreadCtx {
  TState State = TState::Runnable;
  std::vector<Frame> Stack;
  std::vector<Value> Operands;
  std::vector<uint8_t> Arena;
  uint64_t ArenaTop = 8;
  uint32_t GlobalId[3] = {0, 0, 0};
  uint32_t LocalId[3] = {0, 0, 0};
  uint32_t GroupId[3] = {0, 0, 0};
  uint32_t GlobalLinear = 0;
  uint32_t LocalLinear = 0;
  uint32_t BarrierSite = 0;
  uint32_t BarrierCount = 0;
  uint8_t PendingFence = 0;
  /// High-water mark of arena bytes written this launch. On engine
  /// reuse only [0, ArenaDirtyHigh) needs re-poisoning to 0xab — the
  /// bytes above it still carry the poison from the initial fill.
  uint64_t ArenaDirtyHigh = 0;
  /// Engine launch id this thread's arena poison is valid for.
  uint64_t LaunchStamp = 0;
};

enum class StepResult : uint8_t { Continue, Blocked, Done, Trapped };

//===----------------------------------------------------------------------===//
// In-place Value helpers
//===----------------------------------------------------------------------===//
//
// Handlers mutate operand-stack slots in place instead of round-
// tripping 152-byte Values through locals. Every producer must leave
// lanes at index >= NumLanes zeroed: VecShuffle and BuiltinEval read
// beyond an operand's lane count and rely on the zeros that Value's
// constructors would have provided.

/// Zeroes lanes [From, 16).
inline void clearLanesFrom(Value &V, unsigned From) {
  for (unsigned L = From; L < 16; ++L)
    V.Lanes[L] = 0;
}

/// Pushes a fresh scalar (or raw pointer when \p Ty is null), masking
/// to the type width — Value::scalar semantics without the copy.
inline void pushScalarInPlace(std::vector<Value> &Ops, const Type *Ty,
                              uint64_t Bits) {
  Ops.emplace_back(); // default ctor zeroes all lanes
  Value &V = Ops.back();
  V.Ty = Ty;
  if (const auto *ST = dyn_cast_if_present<ScalarType>(Ty))
    V.Lanes[0] = maskToWidth(Bits, ST->bitWidth());
  else
    V.Lanes[0] = Bits;
}

/// Rewrites an existing slot to a scalar, clearing stale upper lanes.
inline void setScalarInPlace(Value &V, const Type *Ty, uint64_t Bits) {
  clearLanesFrom(V, 1);
  V.NumLanes = 1;
  V.Ty = Ty;
  if (const auto *ST = dyn_cast_if_present<ScalarType>(Ty))
    V.Lanes[0] = maskToWidth(Bits, ST->bitWidth());
  else
    V.Lanes[0] = Bits;
}

#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
#define CLFUZZ_VM_LE_HOST 1
#else
#define CLFUZZ_VM_LE_HOST 0
#endif

/// Reads a little-endian scalar of 1/2/4/8 bytes. On little-endian
/// hosts the memcpy compiles to a single load; the portable loop is
/// the fallback (and the non-power-of-two path).
inline uint64_t readLE(const uint8_t *P, unsigned Bytes) {
#if CLFUZZ_VM_LE_HOST
  switch (Bytes) {
  case 1:
    return P[0];
  case 2: {
    uint16_t V;
    std::memcpy(&V, P, 2);
    return V;
  }
  case 4: {
    uint32_t V;
    std::memcpy(&V, P, 4);
    return V;
  }
  case 8: {
    uint64_t V;
    std::memcpy(&V, P, 8);
    return V;
  }
  default:
    break;
  }
#endif
  uint64_t V = 0;
  for (unsigned I = 0; I != Bytes; ++I)
    V |= static_cast<uint64_t>(P[I]) << (8 * I);
  return V;
}

/// Writes a little-endian scalar of 1/2/4/8 bytes (single store on
/// little-endian hosts).
inline void writeLE(uint8_t *P, unsigned Bytes, uint64_t Bits) {
#if CLFUZZ_VM_LE_HOST
  switch (Bytes) {
  case 1:
    P[0] = static_cast<uint8_t>(Bits);
    return;
  case 2: {
    uint16_t V = static_cast<uint16_t>(Bits);
    std::memcpy(P, &V, 2);
    return;
  }
  case 4: {
    uint32_t V = static_cast<uint32_t>(Bits);
    std::memcpy(P, &V, 4);
    return;
  }
  case 8: {
    std::memcpy(P, &Bits, 8);
    return;
  }
  default:
    break;
  }
#endif
  for (unsigned I = 0; I != Bytes; ++I)
    P[I] = static_cast<uint8_t>(Bits >> (8 * I));
}

/// Bytes touched by a Load/Store of \p Ty.
inline uint64_t accessSize(const Type *Ty) {
  if (const auto *ST = dyn_cast<ScalarType>(Ty))
    return ST->byteWidth();
  if (const auto *VT = dyn_cast<VectorType>(Ty))
    return static_cast<uint64_t>(VT->getElementType()->byteWidth()) *
           VT->getNumLanes();
  return 8;
}

/// Op::Convert semantics applied to a slot in place (no trap paths).
/// Shared by the plain handler and FusedLoadConvert.
inline void convertInPlace(Value &V, const Insn &I) {
  if (const auto *VT = dyn_cast<VectorType>(I.Ty)) {
    const auto *SrcVT = cast<VectorType>(V.Ty);
    bool SrcSigned = SrcVT->getElementType()->isSigned();
    unsigned SrcW = SrcVT->getElementType()->bitWidth();
    unsigned DstW = VT->getElementType()->bitWidth();
    unsigned N = VT->getNumLanes();
    for (unsigned L = 0; L != N; ++L) {
      uint64_t Bits =
          SrcSigned ? static_cast<uint64_t>(signExtend(V.Lanes[L], SrcW))
                    : V.Lanes[L];
      V.Lanes[L] = maskToWidth(Bits, DstW);
    }
    if (V.NumLanes > N)
      clearLanesFrom(V, N);
    V.NumLanes = N;
    V.Ty = VT;
    return;
  }
  if (isa<PointerType>(I.Ty)) {
    if (V.NumLanes > 1)
      clearLanesFrom(V, 1);
    V.NumLanes = 1;
    V.Ty = I.Ty;
    return;
  }
  const auto *DstST = cast<ScalarType>(I.Ty);
  uint64_t Bits = V.Lanes[0];
  if (const auto *SrcST = dyn_cast_if_present<ScalarType>(V.Ty))
    if (SrcST->isSigned())
      Bits = static_cast<uint64_t>(signExtend(Bits, SrcST->bitWidth()));
  if (V.NumLanes > 1)
    clearLanesFrom(V, 1);
  V.Lanes[0] = maskToWidth(Bits, DstST->bitWidth());
  V.NumLanes = 1;
  V.Ty = I.Ty;
}

//===----------------------------------------------------------------------===//
// The execution engine
//===----------------------------------------------------------------------===//

/// The execution engine. Default-constructed once and reusable: run()
/// re-binds the module/buffers/options and resets all per-launch state,
/// while thread contexts, operand stacks and arenas keep their
/// capacity (and their 0xab poison above the previous launch's
/// high-water mark) across launches — the zero-allocation fast path.
class Engine {
public:
  Engine() : Sched(0) {}

  LaunchResult run(const CompiledModule &Mod, std::vector<Buffer> &Bufs,
                   const std::vector<KernelArg> &ArgList,
                   const LaunchOptions &OptsIn);

private:
  StepResult runSliceSwitch(ThreadCtx &T, uint64_t MaxSteps,
                            uint64_t &ExecutedOut);
#if CLFUZZ_VM_HAVE_GOTO
  StepResult runSliceGoto(ThreadCtx &T, uint64_t MaxSteps,
                          uint64_t &ExecutedOut);
#endif
  bool runGroup(uint32_t GX, uint32_t GY, uint32_t GZ);

  uint8_t *resolve(ThreadCtx &T, uint64_t Ptr, uint64_t Size,
                   bool ForWrite, TrapCode &TC);
  void recordAccess(ThreadCtx &T, uint64_t Ptr, uint64_t Size, bool Write,
                    bool Atomic);

  /// Resolves, race-checks and loads through \p PtrBits into \p Slot
  /// (fully overwriting it, stale lanes included). False on trap.
  bool loadIntoSlot(ThreadCtx &T, Value &Slot, uint64_t PtrBits,
                    const Insn &I);
  /// Op::Bin semantics: L op= R in place. False on division by zero
  /// (trap already reported). Shared by Bin and the fused handlers.
  bool binInPlace(ThreadCtx &T, const Insn &I, Value &L, const Value &R);

  static void loadInto(Value &Out, const uint8_t *P, const Type *Ty);
  static void storeValue(uint8_t *P, const Value &V);

  void trap(ThreadCtx &T, TrapCode TC, const std::string &Extra = "");

  const CompiledModule *M = nullptr;
  std::vector<Buffer> *Buffers = nullptr;
  const std::vector<KernelArg> *Args = nullptr;
  LaunchOptions Opts;
  Rng Sched;

  std::vector<ThreadCtx> Threads; // high-water sized; use [0, W) only
  std::vector<uint8_t> LocalArena;
  RaceDetector Races;
  uint32_t LocalEpoch = 0;
  uint32_t GlobalEpoch = 0;
  uint32_t CurGroupLinear = 0;

  uint64_t Steps = 0;
  LaunchResult Result;
  bool Aborted = false;
  bool UseGoto = false;
  uint64_t LaunchId = 0;      // monotonically increasing, 1-based
  uint64_t FusedInLaunch = 0; // superinstruction dispatches this launch
};

} // namespace

//===----------------------------------------------------------------------===//
// Memory plumbing
//===----------------------------------------------------------------------===//

uint8_t *Engine::resolve(ThreadCtx &T, uint64_t Ptr, uint64_t Size,
                         bool ForWrite, TrapCode &TC) {
  if (Ptr == 0) {
    TC = TrapCode::NullDeref;
    return nullptr;
  }
  AddressSpace Space = vmptr::space(Ptr);
  uint64_t Off = vmptr::offset(Ptr);
  switch (Space) {
  case AddressSpace::Private:
    if (Off + Size > T.Arena.size()) {
      TC = TrapCode::OutOfBounds;
      return nullptr;
    }
    if (ForWrite && Off + Size > T.ArenaDirtyHigh)
      T.ArenaDirtyHigh = Off + Size;
    return T.Arena.data() + Off;
  case AddressSpace::Local:
    if (Off + Size > LocalArena.size()) {
      TC = TrapCode::OutOfBounds;
      return nullptr;
    }
    return LocalArena.data() + Off;
  case AddressSpace::Global:
  case AddressSpace::Constant: {
    unsigned Buf = vmptr::buffer(Ptr);
    if (Buf >= Buffers->size()) {
      TC = TrapCode::BadPointer;
      return nullptr;
    }
    Buffer &B = (*Buffers)[Buf];
    if (ForWrite && B.Space == AddressSpace::Constant) {
      TC = TrapCode::BadPointer;
      return nullptr;
    }
    if (Off + Size > B.Bytes.size()) {
      TC = TrapCode::OutOfBounds;
      return nullptr;
    }
    return B.Bytes.data() + Off;
  }
  }
  TC = TrapCode::BadPointer;
  return nullptr;
}

void Engine::recordAccess(ThreadCtx &T, uint64_t Ptr, uint64_t Size,
                          bool Write, bool Atomic) {
  if (!Opts.DetectRaces)
    return;
  AddressSpace Space = vmptr::space(Ptr);
  if (Space == AddressSpace::Private || Space == AddressSpace::Constant)
    return;
  bool IsLocal = Space == AddressSpace::Local;
  RaceDetector::Access A;
  A.Thread = T.GlobalLinear;
  A.Group = CurGroupLinear;
  A.Epoch = IsLocal ? LocalEpoch : GlobalEpoch;
  A.Atomic = Atomic;
  A.Write = Write;
  Races.onAccess(IsLocal, IsLocal ? 0 : vmptr::buffer(Ptr),
                 vmptr::offset(Ptr), Size, A);
}

void Engine::loadInto(Value &Out, const uint8_t *P, const Type *Ty) {
  // \p Out satisfies the stack invariant on entry (lanes >= NumLanes
  // zero), so only lanes [N, Out.NumLanes) can hold stale data. The
  // common case — loading a scalar over the pointer that addressed it —
  // clears nothing.
  unsigned Prev = Out.NumLanes;
  if (const auto *VT = dyn_cast<VectorType>(Ty)) {
    unsigned EB = VT->getElementType()->byteWidth();
    unsigned W = VT->getElementType()->bitWidth();
    unsigned N = VT->getNumLanes();
    for (unsigned L = 0; L != N; ++L)
      Out.Lanes[L] = maskToWidth(readLE(P + L * EB, EB), W);
    for (unsigned L = N; L < Prev; ++L)
      Out.Lanes[L] = 0;
    Out.Ty = VT;
    Out.NumLanes = N;
    return;
  }
  for (unsigned L = 1; L < Prev; ++L)
    Out.Lanes[L] = 0;
  Out.NumLanes = 1;
  Out.Ty = Ty;
  if (const auto *ST = dyn_cast<ScalarType>(Ty)) {
    Out.Lanes[0] = maskToWidth(readLE(P, ST->byteWidth()), ST->bitWidth());
    return;
  }
  assert(isa<PointerType>(Ty) && "loading a non-loadable type");
  Out.Lanes[0] = readLE(P, 8);
}

void Engine::storeValue(uint8_t *P, const Value &V) {
  if (const auto *VT = dyn_cast<VectorType>(V.Ty)) {
    unsigned EB = VT->getElementType()->byteWidth();
    for (unsigned L = 0; L != VT->getNumLanes(); ++L)
      writeLE(P + L * EB, EB, V.Lanes[L]);
    return;
  }
  if (const auto *ST = dyn_cast<ScalarType>(V.Ty)) {
    writeLE(P, ST->byteWidth(), V.Lanes[0]);
    return;
  }
  writeLE(P, 8, V.Lanes[0]);
}

void Engine::trap(ThreadCtx &T, TrapCode TC, const std::string &Extra) {
  Aborted = true;
  Result.Status = LaunchStatus::Trap;
  std::ostringstream OS;
  OS << "thread " << T.GlobalLinear << ": " << trapCodeName(TC);
  if (!Extra.empty())
    OS << " (" << Extra << ")";
  Result.Message = OS.str();
}

bool Engine::loadIntoSlot(ThreadCtx &T, Value &Slot, uint64_t PtrBits,
                          const Insn &I) {
  uint64_t Size = accessSize(I.Ty);
  TrapCode TC;
  uint8_t *P = resolve(T, PtrBits, Size, /*ForWrite=*/false, TC);
  if (!P) {
    trap(T, TC, "load");
    return false;
  }
  if (Opts.DetectRaces)
    recordAccess(T, PtrBits, Size, /*Write=*/false, /*Atomic=*/false);
  loadInto(Slot, P, I.Ty);
  return true;
}

bool Engine::binInPlace(ThreadCtx &T, const Insn &I, Value &L,
                        const Value &R) {
  BinOp BO = static_cast<BinOp>(I.A);
  LaneType LT = laneTypeOf(L.Ty ? L.Ty : I.Ty);
  if (const auto *VT = dyn_cast<VectorType>(I.Ty)) {
    unsigned N = VT->getNumLanes();
    unsigned RW = VT->getElementType()->bitWidth();
    bool VecCmp = isComparisonOp(BO) || isLogicalOp(BO);
    for (unsigned Lane = 0; Lane != N; ++Lane) {
      // evalBinLane takes the inputs by value, so the output may alias
      // lane storage; each lane depends only on its own inputs.
      if (!evalBinLane(BO, LT, L.Lanes[Lane], R.Lanes[Lane], VecCmp, RW,
                       L.Lanes[Lane])) {
        trap(T, TrapCode::DivByZero);
        return false;
      }
    }
    if (L.NumLanes > N)
      clearLanesFrom(L, N);
    L.NumLanes = N;
  } else {
    uint64_t Out = 0;
    if (!evalBinLane(BO, LT, L.Lanes[0], R.Lanes[0], false, 32, Out)) {
      trap(T, TrapCode::DivByZero);
      return false;
    }
    if (const auto *ST = dyn_cast<ScalarType>(I.Ty))
      Out = maskToWidth(Out, ST->bitWidth());
    if (L.NumLanes > 1)
      clearLanesFrom(L, 1);
    L.Lanes[0] = Out;
    L.NumLanes = 1;
  }
  L.Ty = I.Ty;
  return true;
}

//===----------------------------------------------------------------------===//
// Instruction interpretation (two expansions of one implementation)
//===----------------------------------------------------------------------===//

#define VMI_FN_NAME runSliceSwitch
#define VMI_USE_GOTO 0
#include "vm/VMInterp.inc"

#if CLFUZZ_VM_HAVE_GOTO
#define VMI_FN_NAME runSliceGoto
#define VMI_USE_GOTO 1
#include "vm/VMInterp.inc"
#endif

//===----------------------------------------------------------------------===//
// Group execution and scheduling
//===----------------------------------------------------------------------===//

bool Engine::runGroup(uint32_t GX, uint32_t GY, uint32_t GZ) {
  const NDRange &R = Opts.Range;
  uint32_t W = static_cast<uint32_t>(R.localLinear());
  CurGroupLinear = static_cast<uint32_t>(
      (static_cast<uint64_t>(GZ) * R.numGroups(1) + GY) * R.numGroups(0) +
      GX);
  LocalEpoch = 0;
  GlobalEpoch = 0;
  Races.resetLocal();
  std::fill(LocalArena.begin(), LocalArena.end(), 0xab);

  const CompiledFunction &Kernel = M->kernel();

  // Never shrink: a later launch with fewer work-items must not free
  // the arenas a bigger one allocated. Only [0, W) is live.
  if (Threads.size() < W)
    Threads.resize(W);
  uint32_t TIdx = 0;
  for (uint32_t LZ = 0; LZ != R.Local[2]; ++LZ) {
    for (uint32_t LY = 0; LY != R.Local[1]; ++LY) {
      for (uint32_t LX = 0; LX != R.Local[0]; ++LX, ++TIdx) {
        ThreadCtx &T = Threads[TIdx];
        T.State = TState::Runnable;
        T.Stack.clear();
        T.Operands.clear();
        if (T.Arena.size() != Opts.PrivateArenaSize) {
          T.Arena.assign(Opts.PrivateArenaSize, 0xab);
          T.ArenaDirtyHigh = 0;
        } else if (T.LaunchStamp != LaunchId) {
          // Engine reuse: re-poison only what the previous launch
          // dirtied; everything above still holds 0xab.
          std::memset(T.Arena.data(), 0xab,
                      static_cast<size_t>(std::min<uint64_t>(
                          T.ArenaDirtyHigh, T.Arena.size())));
          T.ArenaDirtyHigh = 0;
        }
        T.LaunchStamp = LaunchId;
        T.ArenaTop = 8;
        T.LocalId[0] = LX;
        T.LocalId[1] = LY;
        T.LocalId[2] = LZ;
        T.GroupId[0] = GX;
        T.GroupId[1] = GY;
        T.GroupId[2] = GZ;
        T.GlobalId[0] = GX * R.Local[0] + LX;
        T.GlobalId[1] = GY * R.Local[1] + LY;
        T.GlobalId[2] = GZ * R.Local[2] + LZ;
        T.GlobalLinear = static_cast<uint32_t>(
            (static_cast<uint64_t>(T.GlobalId[2]) * R.Global[1] +
             T.GlobalId[1]) *
                R.Global[0] +
            T.GlobalId[0]);
        T.LocalLinear = (LZ * R.Local[1] + LY) * R.Local[0] + LX;
        T.BarrierSite = 0;
        T.BarrierCount = 0;
        T.PendingFence = 0;

        uint64_t Base = (T.ArenaTop + 7) & ~7ULL;
        std::memset(T.Arena.data() + Base, 0xab, Kernel.FrameSize);
        if (Base + Kernel.FrameSize > T.ArenaDirtyHigh)
          T.ArenaDirtyHigh = Base + Kernel.FrameSize;
        // Bind kernel arguments into the entry frame.
        for (size_t AI = 0; AI != Args->size(); ++AI) {
          const CompiledParam &P = Kernel.Params[AI];
          Value V;
          if ((*Args)[AI].IsBuffer) {
            const Buffer &B = (*Buffers)[(*Args)[AI].BufferIndex];
            V = Value::scalar(
                P.Ty, vmptr::make(B.Space, (*Args)[AI].BufferIndex, 0));
          } else {
            V = (*Args)[AI].Scalar;
            V.Ty = P.Ty;
          }
          storeValue(T.Arena.data() + Base + P.FrameOffset, V);
        }
        T.ArenaTop = Base + Kernel.FrameSize;
        T.Stack.push_back(Frame{M->KernelIndex, 0, Base});
      }
    }
  }

  // The runnable set, kept sorted by thread index and maintained
  // incrementally: only the picked thread can leave it (quantum expiry
  // keeps it runnable; a barrier or return removes it), and a barrier
  // release re-admits every thread. Indexing the sorted list with the
  // scheduler draw is therefore byte-identical to the historical
  // rebuild-and-scan loop while costing O(1) per slice instead of
  // O(work-group size).
  std::vector<uint32_t> Runnable(W);
  for (uint32_t K = 0; K != W; ++K)
    Runnable[K] = K;
  for (;;) {
    if (Runnable.empty()) {
      uint32_t Blocked = 0, Finished = 0;
      for (uint32_t K = 0; K != W; ++K) {
        Blocked += Threads[K].State == TState::AtBarrier;
        Finished += Threads[K].State == TState::Finished;
      }
      if (Blocked == 0)
        return true; // group complete
      if (Finished != 0) {
        Result.Status = LaunchStatus::BarrierDivergence;
        Result.Message =
            "some work-items finished while others wait at a barrier";
        Aborted = true;
        return false;
      }
      // All blocked: sites and arrival counts must agree.
      uint32_t Site = Threads[0].BarrierSite;
      uint32_t Count = Threads[0].BarrierCount;
      for (uint32_t K = 0; K != W; ++K) {
        const ThreadCtx &T = Threads[K];
        if (T.BarrierSite != Site || T.BarrierCount != Count) {
          Result.Status = LaunchStatus::BarrierDivergence;
          std::ostringstream OS;
          OS << "work-items reached different barriers (site " << Site
             << " count " << Count << " vs site " << T.BarrierSite
             << " count " << T.BarrierCount << ")";
          Result.Message = OS.str();
          Aborted = true;
          return false;
        }
      }
      // Release and apply fences as epoch increments.
      uint8_t Fence = Threads[0].PendingFence;
      if (Fence & BarrierStmt::LocalFence)
        ++LocalEpoch;
      if (Fence & BarrierStmt::GlobalFence)
        ++GlobalEpoch;
      Runnable.resize(W);
      for (uint32_t K = 0; K != W; ++K) {
        Threads[K].State = TState::Runnable;
        Runnable[K] = K;
      }
      continue;
    }

    uint32_t Slot = static_cast<uint32_t>(Sched.below(Runnable.size()));
    uint32_t Pick = Runnable[Slot];
    uint64_t Slice = 64 + Sched.below(448);
    // The scheduler draws happen before the budget check, exactly as
    // the old per-instruction loop ordered them.
    uint64_t BudgetLeft = Opts.StepBudget - Steps;
    if (BudgetLeft == 0) {
      ++Steps; // the step that would have exceeded the budget
      Result.Status = LaunchStatus::Timeout;
      Result.Message = "step budget exhausted";
      Aborted = true;
      return false;
    }
    ThreadCtx &T = Threads[Pick];
    uint64_t Max = std::min(Slice, BudgetLeft);
    uint64_t Executed = 0;
#if CLFUZZ_VM_HAVE_GOTO
    StepResult SR = UseGoto ? runSliceGoto(T, Max, Executed)
                            : runSliceSwitch(T, Max, Executed);
#else
    StepResult SR = runSliceSwitch(T, Max, Executed);
#endif
    Steps += Executed;
    if (SR == StepResult::Trapped)
      return false;
    if (T.State != TState::Runnable)
      Runnable.erase(Runnable.begin() + Slot);
  }
}

LaunchResult Engine::run(const CompiledModule &Mod,
                         std::vector<Buffer> &Bufs,
                         const std::vector<KernelArg> &ArgList,
                         const LaunchOptions &OptsIn) {
  M = &Mod;
  Buffers = &Bufs;
  Args = &ArgList;
  Opts = OptsIn;
  // Per-launch reset: identical state to a freshly constructed engine,
  // minus the allocations.
  Sched.reseed(Opts.SchedulerSeed ^ 0x9e3779b97f4a7c15ULL);
  Steps = 0;
  Result = LaunchResult();
  Aborted = false;
  Races.reset();
  LocalEpoch = 0;
  GlobalEpoch = 0;
  CurGroupLinear = 0;
  FusedInLaunch = 0;
  UseGoto = vmDispatchMode() == VmDispatch::Goto;
  bool Reused = LaunchId != 0;
  ++LaunchId;

  auto Finish = [&]() -> LaunchResult {
    GInstructions.fetch_add(Steps, std::memory_order_relaxed);
    GFusedExecuted.fetch_add(FusedInLaunch, std::memory_order_relaxed);
    GLaunches.fetch_add(1, std::memory_order_relaxed);
    if (Reused)
      GEngineReuses.fetch_add(1, std::memory_order_relaxed);
    return Result;
  };

  const NDRange &R = Opts.Range;
  if (!R.valid()) {
    Result.Status = LaunchStatus::InvalidLaunch;
    Result.Message = "work-group sizes must divide the global sizes";
    return Finish();
  }
  const CompiledFunction &Kernel = M->kernel();
  if (Args->size() != Kernel.Params.size()) {
    Result.Status = LaunchStatus::InvalidLaunch;
    Result.Message = "kernel argument count mismatch";
    return Finish();
  }
  for (const KernelArg &A : *Args) {
    if (A.IsBuffer && A.BufferIndex >= Buffers->size()) {
      Result.Status = LaunchStatus::InvalidLaunch;
      Result.Message = "kernel argument names a missing buffer";
      return Finish();
    }
  }

  // runGroup poisons the local arena before each group, so reuse only
  // needs the size to match.
  uint64_t LASize = std::max<uint64_t>(M->LocalArenaSize, 1);
  if (LocalArena.size() != LASize)
    LocalArena.resize(LASize);

  for (uint32_t GZ = 0; GZ != R.numGroups(2) && !Aborted; ++GZ)
    for (uint32_t GY = 0; GY != R.numGroups(1) && !Aborted; ++GY)
      for (uint32_t GX = 0; GX != R.numGroups(0) && !Aborted; ++GX)
        if (!runGroup(GX, GY, GZ))
          break;

  Result.StepsExecuted = Steps;
  if (!Aborted)
    Result.Status = LaunchStatus::Success;
  if (Races.Found) {
    Result.RaceFound = true;
    Result.RaceMessage = Races.Message;
  }
  return Finish();
}

//===----------------------------------------------------------------------===//
// Launch API
//===----------------------------------------------------------------------===//

struct VmInstance::Impl {
  Engine E;
};

VmInstance::VmInstance() : P(std::make_unique<Impl>()) {}
VmInstance::~VmInstance() = default;
VmInstance::VmInstance(VmInstance &&) noexcept = default;
VmInstance &VmInstance::operator=(VmInstance &&) noexcept = default;

LaunchResult VmInstance::launch(const CompiledModule &Module,
                                std::vector<Buffer> &Buffers,
                                const std::vector<KernelArg> &Args,
                                const LaunchOptions &Opts) {
  return P->E.run(Module, Buffers, Args, Opts);
}

LaunchResult clfuzz::launchKernel(const CompiledModule &Module,
                                  std::vector<Buffer> &Buffers,
                                  const std::vector<KernelArg> &Args,
                                  const LaunchOptions &Opts) {
  // One engine per thread: back-to-back launches (campaign cells,
  // reduction probes) hit the zero-allocation reuse path.
  thread_local VmInstance PerThreadVm;
  return PerThreadVm.launch(Module, Buffers, Args, Opts);
}
