//===- VM.cpp - NDRange executor for MiniCL bytecode ------------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "vm/VM.h"
#include "minicl/IntOps.h"
#include "support/Rng.h"

#include <cstring>
#include <sstream>
#include <unordered_map>

using namespace clfuzz;

//===----------------------------------------------------------------------===//
// Buffer helpers
//===----------------------------------------------------------------------===//

uint64_t Buffer::readScalar(uint64_t Offset, unsigned ByteWidth) const {
  assert(Offset + ByteWidth <= Bytes.size() && "host read out of bounds");
  uint64_t V = 0;
  for (unsigned I = 0; I != ByteWidth; ++I)
    V |= static_cast<uint64_t>(Bytes[Offset + I]) << (8 * I);
  return V;
}

void Buffer::writeScalar(uint64_t Offset, unsigned ByteWidth,
                         uint64_t Bits) {
  assert(Offset + ByteWidth <= Bytes.size() && "host write out of bounds");
  for (unsigned I = 0; I != ByteWidth; ++I)
    Bytes[Offset + I] = static_cast<uint8_t>(Bits >> (8 * I));
}

const char *clfuzz::launchStatusName(LaunchStatus S) {
  switch (S) {
  case LaunchStatus::Success:
    return "success";
  case LaunchStatus::Trap:
    return "trap";
  case LaunchStatus::Timeout:
    return "timeout";
  case LaunchStatus::BarrierDivergence:
    return "barrier divergence";
  case LaunchStatus::InvalidLaunch:
    return "invalid launch";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Scalar operator semantics
//===----------------------------------------------------------------------===//

namespace {

//===----------------------------------------------------------------------===//
// Race detection
//===----------------------------------------------------------------------===//

/// Happens-before data-race detector following the paper's definition
/// (§3.1): conflicting accesses race unless both are atomic, or the
/// threads share a group and a barrier (with the right fence) separates
/// the accesses.
class RaceDetector {
public:
  struct Access {
    uint32_t Thread;
    uint32_t Group;
    uint32_t Epoch;
    bool Atomic;
    bool Write;
  };

  bool Found = false;
  std::string Message;

  void onAccess(bool IsLocalSpace, unsigned Buf, uint64_t Offset,
                uint64_t Size, Access A) {
    if (Found)
      return;
    auto &Map = IsLocalSpace ? LocalBytes : GlobalBytes[Buf];
    for (uint64_t I = 0; I != Size; ++I) {
      ByteState &BS = Map[Offset + I];
      if (A.Write) {
        if (BS.HasWrite && conflicts(BS.Write, A)) {
          report(IsLocalSpace, Buf, Offset + I, BS.Write, A);
          return;
        }
        for (const Access &R : BS.Reads)
          if (conflicts(R, A)) {
            report(IsLocalSpace, Buf, Offset + I, R, A);
            return;
          }
        BS.Write = A;
        BS.HasWrite = true;
        BS.Reads.clear();
      } else {
        if (BS.HasWrite && conflicts(BS.Write, A)) {
          report(IsLocalSpace, Buf, Offset + I, BS.Write, A);
          return;
        }
        if (BS.Reads.size() < 4)
          BS.Reads.push_back(A);
      }
    }
  }

  /// Local memory is re-used between groups; forget its history.
  void resetLocal() { LocalBytes.clear(); }

private:
  struct ByteState {
    Access Write = {};
    bool HasWrite = false;
    std::vector<Access> Reads;
  };

  static bool conflicts(const Access &A, const Access &B) {
    if (A.Thread == B.Thread)
      return false;
    if (!A.Write && !B.Write)
      return false;
    if (A.Atomic && B.Atomic)
      return false;
    if (A.Group != B.Group)
      return true; // no inter-group ordering exists in OpenCL 1.x
    return A.Epoch == B.Epoch; // same barrier interval
  }

  void report(bool IsLocal, unsigned Buf, uint64_t Offset, const Access &A,
              const Access &B) {
    Found = true;
    std::ostringstream OS;
    OS << "data race on " << (IsLocal ? "local" : "global") << " memory";
    if (!IsLocal)
      OS << " (buffer " << Buf << ")";
    OS << " at byte " << Offset << " between threads " << A.Thread
       << (A.Write ? " (write" : " (read")
       << (A.Atomic ? ", atomic)" : ")") << " and " << B.Thread
       << (B.Write ? " (write" : " (read")
       << (B.Atomic ? ", atomic)" : ")");
    Message = OS.str();
  }

  std::unordered_map<uint64_t, ByteState> LocalBytes;
  std::unordered_map<unsigned, std::unordered_map<uint64_t, ByteState>>
      GlobalBytes;
};

//===----------------------------------------------------------------------===//
// Thread state
//===----------------------------------------------------------------------===//

enum class TState : uint8_t { Runnable, AtBarrier, Finished };

struct Frame {
  unsigned Func;
  size_t PC;
  uint64_t Base;
};

struct ThreadCtx {
  TState State = TState::Runnable;
  std::vector<Frame> Stack;
  std::vector<Value> Operands;
  std::vector<uint8_t> Arena;
  uint64_t ArenaTop = 8;
  uint32_t GlobalId[3] = {0, 0, 0};
  uint32_t LocalId[3] = {0, 0, 0};
  uint32_t GroupId[3] = {0, 0, 0};
  uint32_t GlobalLinear = 0;
  uint32_t LocalLinear = 0;
  uint32_t BarrierSite = 0;
  uint32_t BarrierCount = 0;
  uint8_t PendingFence = 0;
};

enum class StepResult : uint8_t { Continue, Blocked, Done, Trapped };

/// The per-launch execution engine.
class Engine {
public:
  Engine(const CompiledModule &M, std::vector<Buffer> &Buffers,
         const std::vector<KernelArg> &Args, const LaunchOptions &Opts)
      : M(M), Buffers(Buffers), Args(Args), Opts(Opts),
        Sched(Opts.SchedulerSeed ^ 0x9e3779b97f4a7c15ULL) {}

  LaunchResult run();

private:
  StepResult step(ThreadCtx &T);
  bool runGroup(uint32_t GX, uint32_t GY, uint32_t GZ);

  uint8_t *resolve(ThreadCtx &T, uint64_t Ptr, uint64_t Size,
                   bool ForWrite, TrapCode &TC);
  void recordAccess(ThreadCtx &T, uint64_t Ptr, uint64_t Size, bool Write,
                    bool Atomic);

  Value loadValue(const uint8_t *P, const Type *Ty);
  void storeValue(uint8_t *P, const Value &V);

  void trap(ThreadCtx &T, TrapCode TC, const std::string &Extra = "");

  const CompiledModule &M;
  std::vector<Buffer> &Buffers;
  const std::vector<KernelArg> &Args;
  LaunchOptions Opts;
  Rng Sched;

  std::vector<ThreadCtx> Threads;
  std::vector<uint8_t> LocalArena;
  RaceDetector Races;
  uint32_t LocalEpoch = 0;
  uint32_t GlobalEpoch = 0;
  uint32_t CurGroupLinear = 0;

  uint64_t Steps = 0;
  LaunchResult Result;
  bool Aborted = false;
};

} // namespace

//===----------------------------------------------------------------------===//
// Memory plumbing
//===----------------------------------------------------------------------===//

uint8_t *Engine::resolve(ThreadCtx &T, uint64_t Ptr, uint64_t Size,
                         bool ForWrite, TrapCode &TC) {
  if (Ptr == 0) {
    TC = TrapCode::NullDeref;
    return nullptr;
  }
  AddressSpace Space = vmptr::space(Ptr);
  uint64_t Off = vmptr::offset(Ptr);
  switch (Space) {
  case AddressSpace::Private:
    if (Off + Size > T.Arena.size()) {
      TC = TrapCode::OutOfBounds;
      return nullptr;
    }
    return T.Arena.data() + Off;
  case AddressSpace::Local:
    if (Off + Size > LocalArena.size()) {
      TC = TrapCode::OutOfBounds;
      return nullptr;
    }
    return LocalArena.data() + Off;
  case AddressSpace::Global:
  case AddressSpace::Constant: {
    unsigned Buf = vmptr::buffer(Ptr);
    if (Buf >= Buffers.size()) {
      TC = TrapCode::BadPointer;
      return nullptr;
    }
    Buffer &B = Buffers[Buf];
    if (ForWrite && B.Space == AddressSpace::Constant) {
      TC = TrapCode::BadPointer;
      return nullptr;
    }
    if (Off + Size > B.Bytes.size()) {
      TC = TrapCode::OutOfBounds;
      return nullptr;
    }
    return B.Bytes.data() + Off;
  }
  }
  TC = TrapCode::BadPointer;
  return nullptr;
}

void Engine::recordAccess(ThreadCtx &T, uint64_t Ptr, uint64_t Size,
                          bool Write, bool Atomic) {
  if (!Opts.DetectRaces)
    return;
  AddressSpace Space = vmptr::space(Ptr);
  if (Space == AddressSpace::Private || Space == AddressSpace::Constant)
    return;
  bool IsLocal = Space == AddressSpace::Local;
  RaceDetector::Access A;
  A.Thread = T.GlobalLinear;
  A.Group = CurGroupLinear;
  A.Epoch = IsLocal ? LocalEpoch : GlobalEpoch;
  A.Atomic = Atomic;
  A.Write = Write;
  Races.onAccess(IsLocal, IsLocal ? 0 : vmptr::buffer(Ptr),
                 vmptr::offset(Ptr), Size, A);
}

Value Engine::loadValue(const uint8_t *P, const Type *Ty) {
  auto ReadScalar = [P](unsigned Bytes, unsigned At) {
    uint64_t V = 0;
    for (unsigned I = 0; I != Bytes; ++I)
      V |= static_cast<uint64_t>(P[At + I]) << (8 * I);
    return V;
  };
  if (const auto *VT = dyn_cast<VectorType>(Ty)) {
    unsigned EB = VT->getElementType()->byteWidth();
    std::array<uint64_t, 16> Lanes = {};
    for (unsigned L = 0; L != VT->getNumLanes(); ++L)
      Lanes[L] = ReadScalar(EB, L * EB);
    return Value::vector(VT, Lanes);
  }
  if (const auto *ST = dyn_cast<ScalarType>(Ty))
    return Value::scalar(ST, ReadScalar(ST->byteWidth(), 0));
  assert(isa<PointerType>(Ty) && "loading a non-loadable type");
  return Value::scalar(Ty, ReadScalar(8, 0));
}

void Engine::storeValue(uint8_t *P, const Value &V) {
  auto WriteScalar = [P](unsigned Bytes, unsigned At, uint64_t Bits) {
    for (unsigned I = 0; I != Bytes; ++I)
      P[At + I] = static_cast<uint8_t>(Bits >> (8 * I));
  };
  if (const auto *VT = dyn_cast<VectorType>(V.Ty)) {
    unsigned EB = VT->getElementType()->byteWidth();
    for (unsigned L = 0; L != VT->getNumLanes(); ++L)
      WriteScalar(EB, L * EB, V.Lanes[L]);
    return;
  }
  if (const auto *ST = dyn_cast<ScalarType>(V.Ty)) {
    WriteScalar(ST->byteWidth(), 0, V.Lanes[0]);
    return;
  }
  WriteScalar(8, 0, V.Lanes[0]);
}

void Engine::trap(ThreadCtx &T, TrapCode TC, const std::string &Extra) {
  Aborted = true;
  Result.Status = LaunchStatus::Trap;
  std::ostringstream OS;
  OS << "thread " << T.GlobalLinear << ": " << trapCodeName(TC);
  if (!Extra.empty())
    OS << " (" << Extra << ")";
  Result.Message = OS.str();
}

//===----------------------------------------------------------------------===//
// Instruction interpretation
//===----------------------------------------------------------------------===//

StepResult Engine::step(ThreadCtx &T) {
  Frame &F = T.Stack.back();
  const CompiledFunction &Fn = M.Functions[F.Func];
  assert(F.PC < Fn.Code.size() && "program counter out of range");
  const Insn &I = Fn.Code[F.PC++];
  auto &Ops = T.Operands;

  auto PopV = [&Ops]() {
    Value V = std::move(Ops.back());
    Ops.pop_back();
    return V;
  };

  switch (I.Opcode) {
  case Op::PushConst:
    Ops.push_back(Value::scalar(I.Ty, I.Imm));
    return StepResult::Continue;
  case Op::FrameAddr:
    Ops.push_back(Value::scalar(
        nullptr, vmptr::make(AddressSpace::Private, 0, F.Base + I.Imm)));
    return StepResult::Continue;
  case Op::GroupAddr:
    Ops.push_back(Value::scalar(
        nullptr, vmptr::make(AddressSpace::Local, 0, I.Imm)));
    return StepResult::Continue;
  case Op::Load: {
    Value Ptr = PopV();
    uint64_t Size = 0;
    if (const auto *ST = dyn_cast<ScalarType>(I.Ty))
      Size = ST->byteWidth();
    else if (const auto *VT = dyn_cast<VectorType>(I.Ty))
      Size = static_cast<uint64_t>(VT->getElementType()->byteWidth()) *
             VT->getNumLanes();
    else
      Size = 8;
    TrapCode TC;
    uint8_t *P = resolve(T, Ptr.bits(), Size, /*ForWrite=*/false, TC);
    if (!P) {
      trap(T, TC, "load");
      return StepResult::Trapped;
    }
    recordAccess(T, Ptr.bits(), Size, /*Write=*/false, /*Atomic=*/false);
    Ops.push_back(loadValue(P, I.Ty));
    return StepResult::Continue;
  }
  case Op::Store:
  case Op::StoreKeep: {
    Value V = PopV();
    Value Ptr = PopV();
    if (!V.Ty)
      V.Ty = I.Ty;
    uint64_t Size = 0;
    if (const auto *ST = dyn_cast<ScalarType>(I.Ty))
      Size = ST->byteWidth();
    else if (const auto *VT = dyn_cast<VectorType>(I.Ty))
      Size = static_cast<uint64_t>(VT->getElementType()->byteWidth()) *
             VT->getNumLanes();
    else
      Size = 8;
    TrapCode TC;
    uint8_t *P = resolve(T, Ptr.bits(), Size, /*ForWrite=*/true, TC);
    if (!P) {
      trap(T, TC, "store");
      return StepResult::Trapped;
    }
    recordAccess(T, Ptr.bits(), Size, /*Write=*/true, /*Atomic=*/false);
    storeValue(P, V);
    if (I.Opcode == Op::StoreKeep)
      Ops.push_back(std::move(V));
    return StepResult::Continue;
  }
  case Op::MemCopy: {
    Value Src = PopV();
    Value Dst = PopV();
    TrapCode TC;
    uint8_t *SP = resolve(T, Src.bits(), I.Imm, /*ForWrite=*/false, TC);
    if (!SP) {
      trap(T, TC, "copy source");
      return StepResult::Trapped;
    }
    uint8_t *DP = resolve(T, Dst.bits(), I.Imm, /*ForWrite=*/true, TC);
    if (!DP) {
      trap(T, TC, "copy destination");
      return StepResult::Trapped;
    }
    recordAccess(T, Src.bits(), I.Imm, false, false);
    recordAccess(T, Dst.bits(), I.Imm, true, false);
    std::memmove(DP, SP, I.Imm);
    return StepResult::Continue;
  }
  case Op::MemSet: {
    Value Dst = PopV();
    TrapCode TC;
    uint8_t *DP = resolve(T, Dst.bits(), I.Imm, /*ForWrite=*/true, TC);
    if (!DP) {
      trap(T, TC, "memset");
      return StepResult::Trapped;
    }
    recordAccess(T, Dst.bits(), I.Imm, true, false);
    std::memset(DP, static_cast<int>(I.A), I.Imm);
    return StepResult::Continue;
  }
  case Op::GepConst: {
    Value Ptr = PopV();
    Ptr.Lanes[0] += I.Imm; // offset arithmetic stays inside the box
    Ops.push_back(std::move(Ptr));
    return StepResult::Continue;
  }
  case Op::GepScaled: {
    Value Index = PopV();
    Value Ptr = PopV();
    int64_t Idx = Index.Ty && cast<ScalarType>(Index.Ty)->isSigned()
                      ? Index.asSigned()
                      : static_cast<int64_t>(Index.bits());
    Ptr.Lanes[0] += static_cast<uint64_t>(Idx * static_cast<int64_t>(I.Imm));
    Ops.push_back(std::move(Ptr));
    return StepResult::Continue;
  }
  case Op::Bin: {
    Value R = PopV();
    Value L = PopV();
    BinOp BO = static_cast<BinOp>(I.A);
    LaneType LT = laneTypeOf(L.Ty ? L.Ty : I.Ty);
    Value Out;
    Out.Ty = I.Ty;
    if (const auto *VT = dyn_cast<VectorType>(I.Ty)) {
      Out.NumLanes = VT->getNumLanes();
      unsigned RW = VT->getElementType()->bitWidth();
      bool VecCmp = isComparisonOp(BO) || isLogicalOp(BO);
      for (unsigned Lane = 0; Lane != Out.NumLanes; ++Lane) {
        if (!evalBinLane(BO, LT, L.Lanes[Lane], R.Lanes[Lane], VecCmp, RW,
                         Out.Lanes[Lane])) {
          trap(T, TrapCode::DivByZero);
          return StepResult::Trapped;
        }
      }
    } else {
      Out.NumLanes = 1;
      if (!evalBinLane(BO, LT, L.Lanes[0], R.Lanes[0], false, 32,
                       Out.Lanes[0])) {
        trap(T, TrapCode::DivByZero);
        return StepResult::Trapped;
      }
      if (const auto *ST = dyn_cast<ScalarType>(I.Ty))
        Out.Lanes[0] = maskToWidth(Out.Lanes[0], ST->bitWidth());
    }
    Ops.push_back(std::move(Out));
    return StepResult::Continue;
  }
  case Op::Un: {
    Value V = PopV();
    UnOp UO = static_cast<UnOp>(I.A);
    LaneType LT = laneTypeOf(V.Ty ? V.Ty : I.Ty);
    Value Out;
    Out.Ty = I.Ty;
    Out.NumLanes = V.NumLanes;
    for (unsigned Lane = 0; Lane != V.NumLanes; ++Lane) {
      switch (UO) {
      case UnOp::Minus:
        Out.Lanes[Lane] = maskToWidth(0 - V.Lanes[Lane], LT.Width);
        break;
      case UnOp::BitNot:
        Out.Lanes[Lane] = maskToWidth(~V.Lanes[Lane], LT.Width);
        break;
      case UnOp::Not:
        Out.Lanes[Lane] = V.Lanes[Lane] == 0 ? 1 : 0;
        break;
      default:
        assert(false && "unexpected unary op in VM");
        break;
      }
    }
    Ops.push_back(std::move(Out));
    return StepResult::Continue;
  }
  case Op::Convert: {
    Value V = PopV();
    Value Out;
    Out.Ty = I.Ty;
    if (const auto *VT = dyn_cast<VectorType>(I.Ty)) {
      const auto *SrcVT = cast<VectorType>(V.Ty);
      bool SrcSigned = SrcVT->getElementType()->isSigned();
      unsigned SrcW = SrcVT->getElementType()->bitWidth();
      unsigned DstW = VT->getElementType()->bitWidth();
      Out.NumLanes = VT->getNumLanes();
      for (unsigned L = 0; L != Out.NumLanes; ++L) {
        uint64_t Bits = SrcSigned
                            ? static_cast<uint64_t>(
                                  signExtend(V.Lanes[L], SrcW))
                            : V.Lanes[L];
        Out.Lanes[L] = maskToWidth(Bits, DstW);
      }
    } else if (isa<PointerType>(I.Ty)) {
      Out.NumLanes = 1;
      Out.Lanes[0] = V.Lanes[0];
    } else {
      const auto *DstST = cast<ScalarType>(I.Ty);
      Out.NumLanes = 1;
      uint64_t Bits = V.Lanes[0];
      if (const auto *SrcST = dyn_cast_if_present<ScalarType>(V.Ty))
        if (SrcST->isSigned())
          Bits = static_cast<uint64_t>(
              signExtend(Bits, SrcST->bitWidth()));
      Out.Lanes[0] = maskToWidth(Bits, DstST->bitWidth());
    }
    Ops.push_back(std::move(Out));
    return StepResult::Continue;
  }
  case Op::Splat: {
    Value V = PopV();
    const auto *VT = cast<VectorType>(I.Ty);
    Value Out;
    Out.Ty = VT;
    Out.NumLanes = VT->getNumLanes();
    uint64_t Bits =
        maskToWidth(V.Lanes[0], VT->getElementType()->bitWidth());
    for (unsigned L = 0; L != Out.NumLanes; ++L)
      Out.Lanes[L] = Bits;
    Ops.push_back(std::move(Out));
    return StepResult::Continue;
  }
  case Op::VecBuild: {
    const auto *VT = cast<VectorType>(I.Ty);
    std::vector<Value> Elems(I.A);
    for (unsigned K = I.A; K != 0; --K)
      Elems[K - 1] = PopV();
    Value Out;
    Out.Ty = VT;
    Out.NumLanes = VT->getNumLanes();
    unsigned Lane = 0;
    for (const Value &E : Elems)
      for (unsigned L = 0; L != E.NumLanes && Lane < 16; ++L)
        Out.Lanes[Lane++] = E.Lanes[L];
    Ops.push_back(std::move(Out));
    return StepResult::Continue;
  }
  case Op::VecExtract: {
    Value V = PopV();
    Ops.push_back(Value::scalar(I.Ty, V.Lanes[I.A]));
    return StepResult::Continue;
  }
  case Op::VecShuffle: {
    Value V = PopV();
    const auto *VT = cast<VectorType>(I.Ty);
    Value Out;
    Out.Ty = VT;
    Out.NumLanes = VT->getNumLanes();
    for (unsigned K = 0; K != I.A; ++K)
      Out.Lanes[K] = V.Lanes[(I.Imm >> (4 * K)) & 0xf];
    Ops.push_back(std::move(Out));
    return StepResult::Continue;
  }
  case Op::VecInsert: {
    Value S = PopV();
    Value V = PopV();
    V.Lanes[I.A] = maskToWidth(
        S.Lanes[0],
        cast<VectorType>(V.Ty)->getElementType()->bitWidth());
    Ops.push_back(std::move(V));
    return StepResult::Continue;
  }
  case Op::Call: {
    if (T.Stack.size() >= Opts.MaxCallDepth) {
      trap(T, TrapCode::CallDepth);
      return StepResult::Trapped;
    }
    const CompiledFunction &Callee = M.Functions[I.A];
    uint64_t Base = (T.ArenaTop + 7) & ~7ULL;
    if (Base + Callee.FrameSize > T.Arena.size()) {
      trap(T, TrapCode::StackOverflow);
      return StepResult::Trapped;
    }
    // Deterministic garbage so uninitialised reads cannot distinguish
    // pass pipelines.
    std::memset(T.Arena.data() + Base, 0xab, Callee.FrameSize);
    // Pop arguments (pushed left-to-right) into parameter slots.
    for (size_t K = Callee.Params.size(); K != 0; --K) {
      Value A = PopV();
      if (!A.Ty)
        A.Ty = Callee.Params[K - 1].Ty;
      storeValue(T.Arena.data() + Base + Callee.Params[K - 1].FrameOffset,
                 A);
    }
    T.ArenaTop = Base + Callee.FrameSize;
    T.Stack.push_back(Frame{I.A, 0, Base});
    return StepResult::Continue;
  }
  case Op::Ret:
  case Op::RetVoid: {
    uint64_t Base = T.Stack.back().Base;
    T.Stack.pop_back();
    T.ArenaTop = Base;
    if (T.Stack.empty()) {
      T.State = TState::Finished;
      return StepResult::Done;
    }
    return StepResult::Continue;
  }
  case Op::Jump:
    F.PC = I.A;
    return StepResult::Continue;
  case Op::JumpIfFalse: {
    Value V = PopV();
    if (!V.truthy())
      F.PC = I.A;
    return StepResult::Continue;
  }
  case Op::Pop:
    Ops.pop_back();
    return StepResult::Continue;
  case Op::Dup:
    Ops.push_back(Ops.back());
    return StepResult::Continue;
  case Op::Rot3: {
    size_t N = Ops.size();
    assert(N >= 3 && "Rot3 needs three operands");
    std::swap(Ops[N - 1], Ops[N - 2]); // [x z y]
    std::swap(Ops[N - 2], Ops[N - 3]); // [z x y]
    return StepResult::Continue;
  }
  case Op::Barrier:
    T.State = TState::AtBarrier;
    T.BarrierSite = I.A;
    ++T.BarrierCount;
    T.PendingFence = static_cast<uint8_t>(I.B);
    return StepResult::Blocked;
  case Op::AtomicRMW: {
    Value Operand;
    bool HasOperand = I.B == 0;
    if (HasOperand)
      Operand = PopV();
    Value Ptr = PopV();
    TrapCode TC;
    uint8_t *P = resolve(T, Ptr.bits(), 4, /*ForWrite=*/true, TC);
    if (!P) {
      trap(T, TC, "atomic");
      return StepResult::Trapped;
    }
    recordAccess(T, Ptr.bits(), 4, /*Write=*/true, /*Atomic=*/true);
    uint32_t Old;
    std::memcpy(&Old, P, 4);
    bool Signed = cast<ScalarType>(I.Ty)->isSigned();
    uint32_t New = static_cast<uint32_t>(
        evalAtomic(static_cast<Builtin>(I.A), Signed, Old,
                   static_cast<uint32_t>(Operand.Lanes[0])));
    std::memcpy(P, &New, 4);
    Ops.push_back(Value::scalar(I.Ty, Old));
    return StepResult::Continue;
  }
  case Op::AtomicCas: {
    Value NewV = PopV();
    Value CmpV = PopV();
    Value Ptr = PopV();
    TrapCode TC;
    uint8_t *P = resolve(T, Ptr.bits(), 4, /*ForWrite=*/true, TC);
    if (!P) {
      trap(T, TC, "atomic_cmpxchg");
      return StepResult::Trapped;
    }
    recordAccess(T, Ptr.bits(), 4, /*Write=*/true, /*Atomic=*/true);
    uint32_t Old;
    std::memcpy(&Old, P, 4);
    if (Old == static_cast<uint32_t>(CmpV.Lanes[0])) {
      uint32_t New = static_cast<uint32_t>(NewV.Lanes[0]);
      std::memcpy(P, &New, 4);
    }
    Ops.push_back(Value::scalar(I.Ty, Old));
    return StepResult::Continue;
  }
  case Op::BuiltinEval: {
    Builtin B = static_cast<Builtin>(I.A);
    Value A2, A1, A0;
    if (I.B >= 3)
      A2 = PopV();
    if (I.B >= 2)
      A1 = PopV();
    A0 = PopV();
    LaneType LT = laneTypeOf(A0.Ty ? A0.Ty : I.Ty);
    Value Out;
    Out.Ty = I.Ty;
    Out.NumLanes = A0.NumLanes;
    for (unsigned L = 0; L != A0.NumLanes; ++L) {
      uint64_t ArgBits[3] = {A0.Lanes[L], A1.Lanes[L], A2.Lanes[L]};
      Out.Lanes[L] = evalBuiltinLane(B, LT, ArgBits);
    }
    Ops.push_back(std::move(Out));
    return StepResult::Continue;
  }
  case Op::WorkItem: {
    Value Dim = PopV();
    uint64_t D = Dim.bits();
    Builtin B = static_cast<Builtin>(I.A);
    uint64_t V = 0;
    if (D > 2) {
      V = (B == Builtin::GetGlobalId || B == Builtin::GetLocalId ||
           B == Builtin::GetGroupId)
              ? 0
              : 1;
    } else {
      switch (B) {
      case Builtin::GetGlobalId:
        V = T.GlobalId[D];
        break;
      case Builtin::GetLocalId:
        V = T.LocalId[D];
        break;
      case Builtin::GetGroupId:
        V = T.GroupId[D];
        break;
      case Builtin::GetGlobalSize:
        V = Opts.Range.Global[D];
        break;
      case Builtin::GetLocalSize:
        V = Opts.Range.Local[D];
        break;
      case Builtin::GetNumGroups:
        V = Opts.Range.numGroups(static_cast<unsigned>(D));
        break;
      default:
        assert(false && "unexpected work-item builtin");
        break;
      }
    }
    Ops.push_back(Value::scalar(I.Ty, V));
    return StepResult::Continue;
  }
  case Op::Trap:
    trap(T, static_cast<TrapCode>(I.A));
    return StepResult::Trapped;
  }
  assert(false && "unknown opcode");
  return StepResult::Trapped;
}

//===----------------------------------------------------------------------===//
// Group execution and scheduling
//===----------------------------------------------------------------------===//

bool Engine::runGroup(uint32_t GX, uint32_t GY, uint32_t GZ) {
  const NDRange &R = Opts.Range;
  uint32_t W = static_cast<uint32_t>(R.localLinear());
  CurGroupLinear = static_cast<uint32_t>(
      (static_cast<uint64_t>(GZ) * R.numGroups(1) + GY) * R.numGroups(0) +
      GX);
  LocalEpoch = 0;
  GlobalEpoch = 0;
  Races.resetLocal();
  std::fill(LocalArena.begin(), LocalArena.end(), 0xab);

  const CompiledFunction &Kernel = M.kernel();

  Threads.resize(W);
  uint32_t TIdx = 0;
  for (uint32_t LZ = 0; LZ != R.Local[2]; ++LZ) {
    for (uint32_t LY = 0; LY != R.Local[1]; ++LY) {
      for (uint32_t LX = 0; LX != R.Local[0]; ++LX, ++TIdx) {
        ThreadCtx &T = Threads[TIdx];
        T.State = TState::Runnable;
        T.Stack.clear();
        T.Operands.clear();
        if (T.Arena.size() != Opts.PrivateArenaSize)
          T.Arena.assign(Opts.PrivateArenaSize, 0xab);
        T.ArenaTop = 8;
        T.LocalId[0] = LX;
        T.LocalId[1] = LY;
        T.LocalId[2] = LZ;
        T.GroupId[0] = GX;
        T.GroupId[1] = GY;
        T.GroupId[2] = GZ;
        T.GlobalId[0] = GX * R.Local[0] + LX;
        T.GlobalId[1] = GY * R.Local[1] + LY;
        T.GlobalId[2] = GZ * R.Local[2] + LZ;
        T.GlobalLinear = static_cast<uint32_t>(
            (static_cast<uint64_t>(T.GlobalId[2]) * R.Global[1] +
             T.GlobalId[1]) *
                R.Global[0] +
            T.GlobalId[0]);
        T.LocalLinear = (LZ * R.Local[1] + LY) * R.Local[0] + LX;
        T.BarrierSite = 0;
        T.BarrierCount = 0;

        uint64_t Base = (T.ArenaTop + 7) & ~7ULL;
        std::memset(T.Arena.data() + Base, 0xab, Kernel.FrameSize);
        // Bind kernel arguments into the entry frame.
        for (size_t AI = 0; AI != Args.size(); ++AI) {
          const CompiledParam &P = Kernel.Params[AI];
          Value V;
          if (Args[AI].IsBuffer) {
            const Buffer &B = Buffers[Args[AI].BufferIndex];
            V = Value::scalar(
                P.Ty, vmptr::make(B.Space, Args[AI].BufferIndex, 0));
          } else {
            V = Args[AI].Scalar;
            V.Ty = P.Ty;
          }
          storeValue(T.Arena.data() + Base + P.FrameOffset, V);
        }
        T.ArenaTop = Base + Kernel.FrameSize;
        T.Stack.push_back(Frame{M.KernelIndex, 0, Base});
      }
    }
  }

  std::vector<uint32_t> Runnable;
  Runnable.reserve(W);
  for (;;) {
    Runnable.clear();
    for (uint32_t K = 0; K != W; ++K)
      if (Threads[K].State == TState::Runnable)
        Runnable.push_back(K);

    if (Runnable.empty()) {
      uint32_t Blocked = 0, Finished = 0;
      for (const ThreadCtx &T : Threads) {
        Blocked += T.State == TState::AtBarrier;
        Finished += T.State == TState::Finished;
      }
      if (Blocked == 0)
        return true; // group complete
      if (Finished != 0) {
        Result.Status = LaunchStatus::BarrierDivergence;
        Result.Message =
            "some work-items finished while others wait at a barrier";
        Aborted = true;
        return false;
      }
      // All blocked: sites and arrival counts must agree.
      uint32_t Site = Threads[0].BarrierSite;
      uint32_t Count = Threads[0].BarrierCount;
      for (const ThreadCtx &T : Threads) {
        if (T.BarrierSite != Site || T.BarrierCount != Count) {
          Result.Status = LaunchStatus::BarrierDivergence;
          std::ostringstream OS;
          OS << "work-items reached different barriers (site " << Site
             << " count " << Count << " vs site " << T.BarrierSite
             << " count " << T.BarrierCount << ")";
          Result.Message = OS.str();
          Aborted = true;
          return false;
        }
      }
      // Release and apply fences as epoch increments.
      uint8_t Fence = Threads[0].PendingFence;
      if (Fence & BarrierStmt::LocalFence)
        ++LocalEpoch;
      if (Fence & BarrierStmt::GlobalFence)
        ++GlobalEpoch;
      for (ThreadCtx &T : Threads)
        T.State = TState::Runnable;
      continue;
    }

    uint32_t Pick = Runnable[Sched.below(Runnable.size())];
    uint64_t Slice = 64 + Sched.below(448);
    ThreadCtx &T = Threads[Pick];
    for (uint64_t S = 0; S != Slice; ++S) {
      if (++Steps > Opts.StepBudget) {
        Result.Status = LaunchStatus::Timeout;
        Result.Message = "step budget exhausted";
        Aborted = true;
        return false;
      }
      StepResult SR = step(T);
      if (SR == StepResult::Trapped)
        return false;
      if (SR != StepResult::Continue)
        break;
    }
  }
}

LaunchResult Engine::run() {
  const NDRange &R = Opts.Range;
  if (!R.valid()) {
    Result.Status = LaunchStatus::InvalidLaunch;
    Result.Message = "work-group sizes must divide the global sizes";
    return Result;
  }
  const CompiledFunction &Kernel = M.kernel();
  if (Args.size() != Kernel.Params.size()) {
    Result.Status = LaunchStatus::InvalidLaunch;
    Result.Message = "kernel argument count mismatch";
    return Result;
  }
  for (const KernelArg &A : Args) {
    if (A.IsBuffer && A.BufferIndex >= Buffers.size()) {
      Result.Status = LaunchStatus::InvalidLaunch;
      Result.Message = "kernel argument names a missing buffer";
      return Result;
    }
  }

  LocalArena.assign(std::max<uint64_t>(M.LocalArenaSize, 1), 0xab);

  for (uint32_t GZ = 0; GZ != R.numGroups(2) && !Aborted; ++GZ)
    for (uint32_t GY = 0; GY != R.numGroups(1) && !Aborted; ++GY)
      for (uint32_t GX = 0; GX != R.numGroups(0) && !Aborted; ++GX)
        if (!runGroup(GX, GY, GZ))
          break;

  Result.StepsExecuted = Steps;
  if (!Aborted)
    Result.Status = LaunchStatus::Success;
  if (Races.Found) {
    Result.RaceFound = true;
    Result.RaceMessage = Races.Message;
  }
  return Result;
}

LaunchResult clfuzz::launchKernel(const CompiledModule &Module,
                                  std::vector<Buffer> &Buffers,
                                  const std::vector<KernelArg> &Args,
                                  const LaunchOptions &Opts) {
  Engine E(Module, Buffers, Args, Opts);
  return E.run();
}
