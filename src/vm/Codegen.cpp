//===- Codegen.cpp - MiniCL AST to bytecode compiler -----------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "vm/Codegen.h"
#include "minicl/TypeRules.h"
#include "vm/VM.h"

#include <map>

using namespace clfuzz;

namespace {

/// Per-module code generator.
class Codegen {
public:
  Codegen(ASTContext &Ctx, const CodegenOptions &Opts)
      : Ctx(Ctx), Types(Ctx.types()), Opts(Opts), Layout(Opts.Layout) {}

  CodegenResult run();

private:
  // --- module-level state
  ASTContext &Ctx;
  TypeContext &Types;
  CodegenOptions Opts;
  LayoutEngine Layout;
  CompiledModule Module;
  std::map<const FunctionDecl *, unsigned> FuncIndex;
  std::map<const VarDecl *, uint64_t> GroupLocalOffsets;
  unsigned BarrierSites = 0;
  std::string Error;

  // --- per-function state
  CompiledFunction *CurFunc = nullptr;
  std::map<const VarDecl *, uint64_t> FrameOffsets;
  uint64_t FrameTop = 0;
  std::vector<std::vector<size_t>> BreakPatches;
  std::vector<std::vector<size_t>> ContinuePatches;

  bool failed() const { return !Error.empty(); }
  void fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg;
  }

  // --- emission helpers
  size_t emit(Op O, uint32_t A = 0, uint32_t B = 0, uint64_t Imm = 0,
              const Type *Ty = nullptr) {
    CurFunc->Code.push_back(Insn{O, A, B, Imm, Ty});
    return CurFunc->Code.size() - 1;
  }
  size_t here() const { return CurFunc->Code.size(); }
  void patch(size_t InsnIdx, size_t Target) {
    CurFunc->Code[InsnIdx].A = static_cast<uint32_t>(Target);
  }

  uint64_t allocFrameSlot(const Type *Ty) {
    uint64_t Align = Layout.alignOf(Ty);
    FrameTop = (FrameTop + Align - 1) & ~(Align - 1);
    uint64_t Off = FrameTop;
    FrameTop += Layout.sizeOf(Ty);
    return Off;
  }

  void collectFrameVars(const Stmt *S);
  void planGroupLocals(const FunctionDecl *Kernel);

  // --- statement / expression emission
  void emitFunction(const FunctionDecl *F);
  void emitStmt(const Stmt *S);
  void emitVarDeclInit(const VarDecl *D);
  /// Emits initialisation of the object whose address is on top of the
  /// stack; pops the address.
  void emitInitInto(const Type *Ty, const Expr *Init);
  void emitVarAddr(const VarDecl *D);
  void emitAddr(const Expr *E);
  /// Emits \p E; returns false if nothing was pushed (void call or
  /// record assignment).
  bool emitExpr(const Expr *E);
  void emitAssign(const AssignExpr *A);
  void emitShortCircuit(const BinaryExpr *B);
  void emitIncDec(const UnaryExpr *U);
};

} // namespace

//===----------------------------------------------------------------------===//
// Frame planning
//===----------------------------------------------------------------------===//

void Codegen::collectFrameVars(const Stmt *S) {
  switch (S->getKind()) {
  case Stmt::StmtKind::Compound:
    for (const Stmt *Child : cast<CompoundStmt>(S)->body())
      collectFrameVars(Child);
    break;
  case Stmt::StmtKind::Decl: {
    const VarDecl *D = cast<DeclStmt>(S)->getDecl();
    if (GroupLocalOffsets.count(D))
      break;
    if (!FrameOffsets.count(D))
      FrameOffsets[D] = allocFrameSlot(D->getType());
    break;
  }
  case Stmt::StmtKind::If: {
    const auto *If = cast<IfStmt>(S);
    collectFrameVars(If->getThen());
    if (If->getElse())
      collectFrameVars(If->getElse());
    break;
  }
  case Stmt::StmtKind::For: {
    const auto *For = cast<ForStmt>(S);
    if (For->getInit())
      collectFrameVars(For->getInit());
    collectFrameVars(For->getBody());
    break;
  }
  case Stmt::StmtKind::While:
    collectFrameVars(cast<WhileStmt>(S)->getBody());
    break;
  case Stmt::StmtKind::Do:
    collectFrameVars(cast<DoStmt>(S)->getBody());
    break;
  default:
    break;
  }
}

void Codegen::planGroupLocals(const FunctionDecl *Kernel) {
  // Kernel-scope `local` declarations live in the per-group arena.
  if (!Kernel->getBody())
    return;
  uint64_t Top = 0;
  for (const Stmt *S : Kernel->getBody()->body()) {
    const auto *DS = dyn_cast<DeclStmt>(S);
    if (!DS)
      continue;
    const VarDecl *D = DS->getDecl();
    if (D->getAddressSpace() != AddressSpace::Local)
      continue;
    uint64_t Align = Layout.alignOf(D->getType());
    Top = (Top + Align - 1) & ~(Align - 1);
    GroupLocalOffsets[D] = Top;
    Top += Layout.sizeOf(D->getType());
  }
  Module.LocalArenaSize = Top;
}

//===----------------------------------------------------------------------===//
// Addressing
//===----------------------------------------------------------------------===//

void Codegen::emitVarAddr(const VarDecl *D) {
  auto GL = GroupLocalOffsets.find(D);
  if (GL != GroupLocalOffsets.end()) {
    emit(Op::GroupAddr, 0, 0, GL->second);
    return;
  }
  auto It = FrameOffsets.find(D);
  if (It == FrameOffsets.end()) {
    fail("codegen: variable '" + D->getName() + "' has no frame slot");
    emit(Op::Trap, static_cast<uint32_t>(TrapCode::Unreachable));
    return;
  }
  emit(Op::FrameAddr, 0, 0, It->second);
}

void Codegen::emitAddr(const Expr *E) {
  switch (E->getKind()) {
  case Expr::ExprKind::DeclRef:
    emitVarAddr(cast<DeclRef>(E)->getDecl());
    return;
  case Expr::ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    if (U->getOp() == UnOp::Deref) {
      emitExpr(U->getSubExpr()); // pointer value
      return;
    }
    break;
  }
  case Expr::ExprKind::Index: {
    const auto *Ix = cast<IndexExpr>(E);
    const Type *BaseTy = Ix->getBase()->getType();
    if (isa<PointerType>(BaseTy))
      emitExpr(Ix->getBase());
    else
      emitAddr(Ix->getBase());
    emitExpr(Ix->getIndex());
    emit(Op::GepScaled, 0, 0, Layout.sizeOf(E->getType()));
    return;
  }
  case Expr::ExprKind::Member: {
    const auto *M = cast<MemberExpr>(E);
    if (M->isArrow())
      emitExpr(M->getBase());
    else
      emitAddr(M->getBase());
    uint64_t Off = Layout.fieldOffset(M->getRecordType(),
                                      M->getFieldIndex());
    if (Off != 0)
      emit(Op::GepConst, 0, 0, Off);
    return;
  }
  case Expr::ExprKind::ImplicitCast:
    // Lvalue-preserving implicit casts do not occur; fall through.
    break;
  default:
    break;
  }
  fail("codegen: expression is not addressable");
  emit(Op::Trap, static_cast<uint32_t>(TrapCode::Unreachable));
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

void Codegen::emitShortCircuit(const BinaryExpr *B) {
  // Scalar && / || with branch-based evaluation producing an int 0/1.
  bool IsAnd = B->getOp() == BinOp::LAnd;
  emitExpr(B->getLHS());
  if (IsAnd) {
    size_t ToFalse = emit(Op::JumpIfFalse);
    emitExpr(B->getRHS());
    size_t ToFalse2 = emit(Op::JumpIfFalse);
    emit(Op::PushConst, 0, 0, 1, B->getType());
    size_t ToEnd = emit(Op::Jump);
    patch(ToFalse, here());
    patch(ToFalse2, here());
    emit(Op::PushConst, 0, 0, 0, B->getType());
    patch(ToEnd, here());
  } else {
    size_t ToRhs = emit(Op::JumpIfFalse);
    emit(Op::PushConst, 0, 0, 1, B->getType());
    size_t ToEnd = emit(Op::Jump);
    patch(ToRhs, here());
    emitExpr(B->getRHS());
    size_t ToFalse = emit(Op::JumpIfFalse);
    emit(Op::PushConst, 0, 0, 1, B->getType());
    size_t ToEnd2 = emit(Op::Jump);
    patch(ToFalse, here());
    emit(Op::PushConst, 0, 0, 0, B->getType());
    patch(ToEnd, here());
    patch(ToEnd2, here());
  }
}

void Codegen::emitIncDec(const UnaryExpr *U) {
  const Expr *LV = U->getSubExpr();
  const Type *T = LV->getType();
  bool IsInc = U->getOp() == UnOp::PreInc || U->getOp() == UnOp::PostInc;
  bool IsPre = U->getOp() == UnOp::PreInc || U->getOp() == UnOp::PreDec;
  BinOp Delta = IsInc ? BinOp::Add : BinOp::Sub;
  emitAddr(LV);
  emit(Op::Dup);
  emit(Op::Load, 0, 0, 0, T);
  if (IsPre) {
    emit(Op::PushConst, 0, 0, 1, T);
    emit(Op::Bin, static_cast<uint32_t>(Delta), 0, 0, T);
    emit(Op::StoreKeep, 0, 0, 0, T);
  } else {
    // [addr old] -> keep old as the result, store old +/- 1.
    emit(Op::Dup);                       // [addr old old]
    emit(Op::Rot3);                      // [old addr old]
    emit(Op::PushConst, 0, 0, 1, T);     // [old addr old 1]
    emit(Op::Bin, static_cast<uint32_t>(Delta), 0, 0, T);
    emit(Op::Store, 0, 0, 0, T);         // [old]
  }
}

bool Codegen::emitExpr(const Expr *E) {
  if (failed())
    return true;
  switch (E->getKind()) {
  case Expr::ExprKind::IntLiteral: {
    const auto *Lit = cast<IntLiteral>(E);
    emit(Op::PushConst, 0, 0, Lit->getValue(), Lit->getType());
    return true;
  }
  case Expr::ExprKind::DeclRef: {
    const Type *T = E->getType();
    if (isa<ArrayType>(T) || isa<RecordType>(T)) {
      fail("codegen: aggregate used as a value");
      return true;
    }
    emitAddr(E);
    emit(Op::Load, 0, 0, 0, T);
    return true;
  }
  case Expr::ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    switch (U->getOp()) {
    case UnOp::Plus:
      emitExpr(U->getSubExpr());
      // The promotion, if any, was materialised by TypeRules.
      if (U->getSubExpr()->getType() != U->getType())
        emit(Op::Convert, 0, 0, 0, U->getType());
      return true;
    case UnOp::Minus:
    case UnOp::BitNot:
    case UnOp::Not:
      emitExpr(U->getSubExpr());
      emit(Op::Un, static_cast<uint32_t>(U->getOp()), 0, 0, U->getType());
      return true;
    case UnOp::PreInc:
    case UnOp::PreDec:
    case UnOp::PostInc:
    case UnOp::PostDec:
      emitIncDec(U);
      return true;
    case UnOp::Deref:
      emitExpr(U->getSubExpr());
      emit(Op::Load, 0, 0, 0, U->getType());
      return true;
    case UnOp::AddrOf:
      emitAddr(U->getSubExpr());
      return true;
    }
    return true;
  }
  case Expr::ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    if (B->getOp() == BinOp::Comma) {
      bool Pushed = emitExpr(B->getLHS());
      if (Pushed)
        emit(Op::Pop);
      if (Opts.CommaDropsRhsBug && isa<ScalarType>(B->getType()) &&
          isa<IntLiteral>(B->getRHS()) &&
          isa<DeclRef, IntLiteral>(B->getLHS())) {
        // Figure 2(f) bug model: a comma whose right operand is a
        // constant is "optimised" to zero (the Oclgrind defect folded
        // `(x, 1)` wrongly; commas with computed right operands are
        // unaffected, keeping the rate near the paper's w%).
        emit(Op::PushConst, 0, 0, 0, B->getType());
        return true;
      }
      return emitExpr(B->getRHS());
    }
    if (isLogicalOp(B->getOp()) && isa<ScalarType>(B->getType())) {
      emitShortCircuit(B);
      return true;
    }
    emitExpr(B->getLHS());
    emitExpr(B->getRHS());
    emit(Op::Bin, static_cast<uint32_t>(B->getOp()), 0, 0, B->getType());
    return true;
  }
  case Expr::ExprKind::Assign:
    emitAssign(cast<AssignExpr>(E));
    return !isa<RecordType>(E->getType());
  case Expr::ExprKind::Conditional: {
    const auto *C = cast<ConditionalExpr>(E);
    emitExpr(C->getCond());
    size_t ToElse = emit(Op::JumpIfFalse);
    emitExpr(C->getTrueExpr());
    size_t ToEnd = emit(Op::Jump);
    patch(ToElse, here());
    emitExpr(C->getFalseExpr());
    patch(ToEnd, here());
    return true;
  }
  case Expr::ExprKind::Call: {
    const auto *C = cast<CallExpr>(E);
    for (const Expr *A : C->args())
      emitExpr(A);
    auto It = FuncIndex.find(C->getCallee());
    if (It == FuncIndex.end()) {
      fail("codegen: call to unknown function '" +
           C->getCallee()->getName() + "'");
      return true;
    }
    emit(Op::Call, It->second);
    return !C->getType()->isVoid();
  }
  case Expr::ExprKind::BuiltinCall: {
    const auto *C = cast<BuiltinCallExpr>(E);
    Builtin B = C->getBuiltin();
    if (isWorkItemBuiltin(B)) {
      emitExpr(C->getArg(0));
      emit(Op::WorkItem, static_cast<uint32_t>(B), 0, 0, E->getType());
      return true;
    }
    if (B == Builtin::AtomicCmpxchg) {
      emitExpr(C->getArg(0));
      emitExpr(C->getArg(1));
      emitExpr(C->getArg(2));
      emit(Op::AtomicCas, 0, 0, 0, E->getType());
      return true;
    }
    if (isAtomicBuiltin(B)) {
      bool NoOperand =
          B == Builtin::AtomicInc || B == Builtin::AtomicDec;
      emitExpr(C->getArg(0));
      if (!NoOperand)
        emitExpr(C->getArg(1));
      emit(Op::AtomicRMW, static_cast<uint32_t>(B), NoOperand ? 1 : 0, 0,
           E->getType());
      return true;
    }
    if (B == Builtin::ConvertVector) {
      emitExpr(C->getArg(0));
      emit(Op::Convert, 0, 0, 0, E->getType());
      return true;
    }
    for (const Expr *A : C->args())
      emitExpr(A);
    emit(Op::BuiltinEval, static_cast<uint32_t>(B),
         static_cast<uint32_t>(C->getNumArgs()), 0, E->getType());
    return true;
  }
  case Expr::ExprKind::Index:
  case Expr::ExprKind::Member:
    emitAddr(E);
    emit(Op::Load, 0, 0, 0, E->getType());
    return true;
  case Expr::ExprKind::Swizzle: {
    const auto *Sw = cast<SwizzleExpr>(E);
    emitExpr(Sw->getBase());
    // Bug model: high-lane selectors slip one lane down.
    auto MapLane = [this](unsigned L) {
      return Opts.SwizzleHighLaneBug && L >= 8 ? L - 1 : L;
    };
    const auto &Idx = Sw->indices();
    if (Idx.size() == 1) {
      emit(Op::VecExtract, MapLane(Idx[0]), 0, 0, E->getType());
      return true;
    }
    uint64_t Packed = 0;
    for (size_t I = 0; I != Idx.size(); ++I)
      Packed |= static_cast<uint64_t>(MapLane(Idx[I]) & 0xf) << (4 * I);
    emit(Op::VecShuffle, static_cast<uint32_t>(Idx.size()), 0, Packed,
         E->getType());
    return true;
  }
  case Expr::ExprKind::Cast:
    emitExpr(cast<CastExpr>(E)->getSubExpr());
    emit(Op::Convert, 0, 0, 0, E->getType());
    return true;
  case Expr::ExprKind::ImplicitCast: {
    const auto *C = cast<ImplicitCastExpr>(E);
    emitExpr(C->getSubExpr());
    if (C->getCastKind() == ImplicitCastExpr::CastKind::VectorSplat)
      emit(Op::Splat, 0, 0, 0, E->getType());
    else if (C->getSubExpr()->getType() != E->getType())
      emit(Op::Convert, 0, 0, 0, E->getType());
    return true;
  }
  case Expr::ExprKind::VectorConstruct: {
    const auto *V = cast<VectorConstructExpr>(E);
    for (const Expr *Elem : V->elements())
      emitExpr(Elem);
    emit(Op::VecBuild, static_cast<uint32_t>(V->elements().size()), 0, 0,
         E->getType());
    return true;
  }
  case Expr::ExprKind::InitList:
    fail("codegen: initialiser list outside a declaration");
    return true;
  }
  return true;
}

/// Bytes actually copied for a whole-record copy of \p RT; the Figure
/// 1(b) bug model truncates after the first volatile field.
static uint64_t recordCopySize(const LayoutEngine &Layout,
                               const RecordType *RT,
                               bool VolatileCopyBug) {
  uint64_t Full = Layout.sizeOf(RT);
  if (!VolatileCopyBug || RT->isUnion())
    return Full;
  for (unsigned I = 0, E = RT->getNumFields(); I != E; ++I)
    if (RT->getField(I).IsVolatile)
      return Layout.fieldOffset(RT, I) +
             Layout.sizeOf(RT->getField(I).Ty);
  return Full;
}

void Codegen::emitAssign(const AssignExpr *A) {
  const Expr *LHS = A->getLHS();
  const Type *LT = LHS->getType();

  // Whole-record assignment: memcpy between lvalues.
  if (const auto *RT = dyn_cast<RecordType>(LT)) {
    emitAddr(LHS);
    emitAddr(A->getRHS());
    emit(Op::MemCopy, 0, 0,
         recordCopySize(Layout, RT, Opts.VolatileStructCopyBug));
    return;
  }

  // Single-lane vector component store: v.x = e.
  if (const auto *Sw = dyn_cast<SwizzleExpr>(LHS)) {
    assert(Sw->indices().size() == 1 && "multi-lane swizzle store");
    assert(A->getOp() == AssignOp::Assign &&
           "compound swizzle assignment unsupported");
    const Type *VecTy = Sw->getBase()->getType();
    emitAddr(Sw->getBase());
    emit(Op::Dup);
    emit(Op::Load, 0, 0, 0, VecTy);
    emitExpr(A->getRHS());
    emit(Op::VecInsert, Sw->indices()[0]);
    emit(Op::StoreKeep, 0, 0, 0, VecTy);
    emit(Op::VecExtract, Sw->indices()[0], 0, 0, A->getType());
    return;
  }

  if (A->getOp() == AssignOp::Assign) {
    emitAddr(LHS);
    emitExpr(A->getRHS());
    emit(Op::StoreKeep, 0, 0, 0, LT);
    return;
  }

  // Compound assignment: load, widen, operate, narrow, store.
  static const std::map<AssignOp, BinOp> OpMap = {
      {AssignOp::Add, BinOp::Add},   {AssignOp::Sub, BinOp::Sub},
      {AssignOp::Mul, BinOp::Mul},   {AssignOp::Div, BinOp::Div},
      {AssignOp::Mod, BinOp::Mod},   {AssignOp::Shl, BinOp::Shl},
      {AssignOp::Shr, BinOp::Shr},   {AssignOp::And, BinOp::BitAnd},
      {AssignOp::Or, BinOp::BitOr},  {AssignOp::Xor, BinOp::BitXor},
  };
  BinOp BO = OpMap.at(A->getOp());

  emitAddr(LHS);
  emit(Op::Dup);
  emit(Op::Load, 0, 0, 0, LT);

  if (const auto *VT = dyn_cast<VectorType>(LT)) {
    // TypeRules normalised the RHS to the same vector type.
    emitExpr(A->getRHS());
    emit(Op::Bin, static_cast<uint32_t>(BO), 0, 0, VT);
    emit(Op::StoreKeep, 0, 0, 0, VT);
    return;
  }

  const auto *LS = cast<ScalarType>(LT);
  const auto *RS = cast<ScalarType>(A->getRHS()->getType());
  const ScalarType *Common;
  if (BO == BinOp::Shl || BO == BinOp::Shr)
    Common = promote(Types, LS);
  else
    Common = usualArithmeticConversions(Types, LS, RS);
  if (Common != LS)
    emit(Op::Convert, 0, 0, 0, Common);
  emitExpr(A->getRHS());
  const ScalarType *RhsTarget =
      (BO == BinOp::Shl || BO == BinOp::Shr) ? promote(Types, RS) : Common;
  if (RS != RhsTarget)
    emit(Op::Convert, 0, 0, 0, RhsTarget);
  emit(Op::Bin, static_cast<uint32_t>(BO), 0, 0, Common);
  if (Common != LS)
    emit(Op::Convert, 0, 0, 0, LS);
  emit(Op::StoreKeep, 0, 0, 0, LS);
}

//===----------------------------------------------------------------------===//
// Declarations and initialisation
//===----------------------------------------------------------------------===//

void Codegen::emitInitInto(const Type *Ty, const Expr *Init) {
  const auto *IL = dyn_cast<InitListExpr>(Init);
  if (!IL) {
    if (const auto *RT = dyn_cast<RecordType>(Ty)) {
      // Whole-record copy initialisation from an lvalue.
      emitAddr(Init);
      emit(Op::MemCopy, 0, 0,
           recordCopySize(Layout, RT, Opts.VolatileStructCopyBug));
      return;
    }
    emitExpr(Init);
    emit(Op::Store, 0, 0, 0, Ty);
    return;
  }

  if (const auto *RT = dyn_cast<RecordType>(Ty)) {
    uint64_t Size = Layout.sizeOf(RT);
    uint64_t CorruptBytes = 0;
    if (RT->isUnion() && Layout.unionInitBugTriggers(RT, CorruptBytes) &&
        IL->inits().size() == 1 &&
        isa<ScalarType>(RT->getField(0).Ty)) {
      // Figure 2(a) bug model: garbage-fill, then write only the
      // leading CorruptBytes of the first member's value.
      emit(Op::Dup);
      emit(Op::MemSet, 0xff, 0, Size);
      const ScalarType *TruncTy =
          CorruptBytes == 1
              ? Types.ucharTy()
              : (CorruptBytes == 2 ? Types.ushortTy() : Types.uintTy());
      const Expr *FieldInit = IL->inits()[0];
      // Descend through nested single-entry brace lists.
      while (const auto *Nested = dyn_cast<InitListExpr>(FieldInit))
        FieldInit = Nested->inits()[0];
      emitExpr(FieldInit);
      emit(Op::Convert, 0, 0, 0, TruncTy);
      emit(Op::Store, 0, 0, 0, TruncTy);
      return;
    }
    emit(Op::Dup);
    emit(Op::MemSet, 0, 0, Size);
    for (size_t I = 0; I != IL->inits().size(); ++I) {
      emit(Op::Dup);
      uint64_t Off = Layout.initFieldOffset(RT, static_cast<unsigned>(I));
      if (Off != 0)
        emit(Op::GepConst, 0, 0, Off);
      emitInitInto(RT->getField(I).Ty, IL->inits()[I]);
    }
    emit(Op::Pop);
    return;
  }

  if (const auto *AT = dyn_cast<ArrayType>(Ty)) {
    uint64_t ElemSize = Layout.sizeOf(AT->getElementType());
    emit(Op::Dup);
    emit(Op::MemSet, 0, 0, Layout.sizeOf(AT));
    for (size_t I = 0; I != IL->inits().size(); ++I) {
      emit(Op::Dup);
      if (I != 0)
        emit(Op::GepConst, 0, 0, ElemSize * I);
      emitInitInto(AT->getElementType(), IL->inits()[I]);
    }
    emit(Op::Pop);
    return;
  }

  fail("codegen: brace initialiser for scalar type");
}

void Codegen::emitVarDeclInit(const VarDecl *D) {
  if (GroupLocalOffsets.count(D)) {
    if (D->getInit())
      fail("codegen: local-memory variable cannot have an initialiser");
    return;
  }
  if (!D->getInit())
    return;
  emitVarAddr(D);
  emitInitInto(D->getType(), D->getInit());
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void Codegen::emitStmt(const Stmt *S) {
  if (failed())
    return;
  switch (S->getKind()) {
  case Stmt::StmtKind::Compound:
    for (const Stmt *Child : cast<CompoundStmt>(S)->body())
      emitStmt(Child);
    return;
  case Stmt::StmtKind::Decl:
    emitVarDeclInit(cast<DeclStmt>(S)->getDecl());
    return;
  case Stmt::StmtKind::Expr: {
    bool Pushed = emitExpr(cast<ExprStmt>(S)->getExpr());
    if (Pushed)
      emit(Op::Pop);
    return;
  }
  case Stmt::StmtKind::If: {
    const auto *If = cast<IfStmt>(S);
    emitExpr(If->getCond());
    size_t ToElse = emit(Op::JumpIfFalse);
    emitStmt(If->getThen());
    if (If->getElse()) {
      size_t ToEnd = emit(Op::Jump);
      patch(ToElse, here());
      emitStmt(If->getElse());
      patch(ToEnd, here());
    } else {
      patch(ToElse, here());
    }
    return;
  }
  case Stmt::StmtKind::For: {
    const auto *For = cast<ForStmt>(S);
    if (For->getInit())
      emitStmt(For->getInit());
    size_t LoopTop = here();
    size_t ToEnd = SIZE_MAX;
    if (For->getCond()) {
      emitExpr(For->getCond());
      ToEnd = emit(Op::JumpIfFalse);
    }
    BreakPatches.emplace_back();
    ContinuePatches.emplace_back();
    emitStmt(For->getBody());
    size_t StepPC = here();
    if (For->getStep()) {
      bool Pushed = emitExpr(For->getStep());
      if (Pushed)
        emit(Op::Pop);
    }
    emit(Op::Jump, static_cast<uint32_t>(LoopTop));
    size_t End = here();
    if (ToEnd != SIZE_MAX)
      patch(ToEnd, End);
    for (size_t P : BreakPatches.back())
      patch(P, End);
    for (size_t P : ContinuePatches.back())
      patch(P, StepPC);
    BreakPatches.pop_back();
    ContinuePatches.pop_back();
    return;
  }
  case Stmt::StmtKind::While: {
    const auto *W = cast<WhileStmt>(S);
    size_t LoopTop = here();
    emitExpr(W->getCond());
    size_t ToEnd = emit(Op::JumpIfFalse);
    BreakPatches.emplace_back();
    ContinuePatches.emplace_back();
    emitStmt(W->getBody());
    emit(Op::Jump, static_cast<uint32_t>(LoopTop));
    size_t End = here();
    patch(ToEnd, End);
    for (size_t P : BreakPatches.back())
      patch(P, End);
    for (size_t P : ContinuePatches.back())
      patch(P, LoopTop);
    BreakPatches.pop_back();
    ContinuePatches.pop_back();
    return;
  }
  case Stmt::StmtKind::Do: {
    const auto *D = cast<DoStmt>(S);
    size_t LoopTop = here();
    BreakPatches.emplace_back();
    ContinuePatches.emplace_back();
    emitStmt(D->getBody());
    size_t CondPC = here();
    emitExpr(D->getCond());
    emit(Op::Un, static_cast<uint32_t>(UnOp::Not), 0, 0,
         Types.boolTy());
    size_t ToEnd = emit(Op::JumpIfFalse); // loop back when cond true
    // JumpIfFalse pops; "false" of the negation means cond true.
    patch(ToEnd, LoopTop);
    size_t End = here();
    for (size_t P : BreakPatches.back())
      patch(P, End);
    for (size_t P : ContinuePatches.back())
      patch(P, CondPC);
    BreakPatches.pop_back();
    ContinuePatches.pop_back();
    return;
  }
  case Stmt::StmtKind::Return: {
    const auto *R = cast<ReturnStmt>(S);
    if (R->getValue()) {
      emitExpr(R->getValue());
      emit(Op::Ret);
    } else {
      emit(Op::RetVoid);
    }
    return;
  }
  case Stmt::StmtKind::Break:
    BreakPatches.back().push_back(emit(Op::Jump));
    return;
  case Stmt::StmtKind::Continue:
    ContinuePatches.back().push_back(emit(Op::Jump));
    return;
  case Stmt::StmtKind::Barrier: {
    const auto *B = cast<BarrierStmt>(S);
    emit(Op::Barrier, BarrierSites++, B->getFenceFlags());
    return;
  }
  case Stmt::StmtKind::Null:
    return;
  }
}

//===----------------------------------------------------------------------===//
// Functions and module
//===----------------------------------------------------------------------===//

void Codegen::emitFunction(const FunctionDecl *F) {
  CurFunc = &Module.Functions[FuncIndex[F]];
  FrameOffsets.clear();
  FrameTop = 8; // offset 0 is reserved so null != first local
  BreakPatches.clear();
  ContinuePatches.clear();

  for (const VarDecl *P : F->params()) {
    uint64_t Off = allocFrameSlot(P->getType());
    FrameOffsets[P] = Off;
    CurFunc->Params.push_back(CompiledParam{Off, P->getType()});
  }
  if (F->getBody())
    collectFrameVars(F->getBody());
  CurFunc->FrameSize = (FrameTop + 7) & ~7ULL;

  if (!F->getBody()) {
    fail("codegen: function '" + F->getName() + "' has no body");
    return;
  }
  emitStmt(F->getBody());
  // Implicit return at the end of the body.
  if (F->getReturnType()->isVoid())
    emit(Op::RetVoid);
  else
    emit(Op::Trap, static_cast<uint32_t>(TrapCode::Unreachable));
}

CodegenResult Codegen::run() {
  const Program &Prog = Ctx.program();
  const FunctionDecl *Kernel = Prog.kernel();
  if (!Kernel) {
    CodegenResult R;
    R.Error = "codegen: program has no kernel";
    return R;
  }
  planGroupLocals(Kernel);

  for (const FunctionDecl *F : Prog.functions()) {
    FuncIndex[F] = static_cast<unsigned>(Module.Functions.size());
    CompiledFunction CF;
    CF.Name = F->getName();
    CF.ReturnTy = F->getReturnType();
    Module.Functions.push_back(std::move(CF));
    if (F->isKernel())
      Module.KernelIndex = FuncIndex[F];
  }
  for (const FunctionDecl *F : Prog.functions()) {
    emitFunction(F);
    if (failed())
      break;
  }
  Module.NumBarrierSites = BarrierSites;

  CodegenResult R;
  if (failed()) {
    R.Error = Error;
    return R;
  }
  R.Ok = true;
  R.Module = std::move(Module);
  // Superinstruction peephole: fuse hot adjacent pairs for the
  // interpreter. Purely a dispatch-count optimisation — fused and
  // unfused modules execute bit-identically (see docs/vm.md).
  if (vmFusionEnabled())
    fuseSuperinstructions(R.Module);
  return R;
}

CodegenResult clfuzz::compileToBytecode(ASTContext &Ctx,
                                        const CodegenOptions &Opts) {
  return Codegen(Ctx, Opts).run();
}
