//===- Bytecode.h - Stack bytecode for the MiniCL VM ------------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiled form of a MiniCL kernel: a stack-machine instruction
/// set plus per-function frames. This is the "device binary" our
/// simulated OpenCL drivers produce; each simulated configuration runs
/// the same VM but compiles through a different pass pipeline and
/// layout/codegen bug set, so result differences between
/// configurations are genuine miscompilations.
///
/// Pointers are boxed as 64-bit words:
///   [63:62] address space  [61:54] buffer index  [53:0] byte offset
/// Private pointers are relative to the owning thread's arena and
/// local pointers to the owning group's arena, matching OpenCL's
/// address-space isolation.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_VM_BYTECODE_H
#define CLFUZZ_VM_BYTECODE_H

#include "minicl/AST.h"

#include <cstdint>
#include <string>
#include <vector>

namespace clfuzz {

/// VM opcode set.
enum class Op : uint8_t {
  PushConst,   ///< push Imm as a value of type Ty
  FrameAddr,   ///< push private pointer to (frame base + Imm)
  GroupAddr,   ///< push local pointer to group arena offset Imm
  Load,        ///< pop ptr; push *ptr of type Ty
  Store,       ///< pop value, pop ptr; *ptr = value
  StoreKeep,   ///< like Store but pushes the value back
  MemCopy,     ///< pop src ptr, pop dst ptr; copy Imm bytes
  MemSet,      ///< pop dst ptr; fill Imm bytes with byte A
  GepConst,    ///< pop ptr; push ptr + Imm
  GepScaled,   ///< pop index, pop ptr; push ptr + index * Imm
  Bin,         ///< pop rhs, lhs; apply BinOp A; result type Ty
  Un,          ///< pop operand; apply UnOp A; result type Ty
  Convert,     ///< pop value; convert to Ty
  Splat,       ///< pop scalar; broadcast to vector Ty
  VecBuild,    ///< pop A elements (scalars/vectors); build vector Ty
  VecExtract,  ///< pop vector; push lane A as scalar Ty
  VecShuffle,  ///< pop vector; select A lanes packed 4-bit in Imm -> Ty
  VecInsert,   ///< pop scalar, pop vector; replace lane A
  Call,        ///< call function A
  Ret,         ///< return with value
  RetVoid,     ///< return without value
  Jump,        ///< jump to pc A
  JumpIfFalse, ///< pop scalar; jump to pc A when zero
  Pop,         ///< discard top of stack
  Dup,         ///< duplicate top of stack
  Rot3,        ///< rotate top three: [x y z] -> [z x y]
  Barrier,     ///< work-group barrier; A = site id, B = fence flags
  AtomicRMW,   ///< pop [operand,] ptr; builtin A; B!=0 => no operand
  AtomicCas,   ///< pop new, cmp, ptr; push old
  BuiltinEval, ///< pop B args; evaluate builtin A; result type Ty
  WorkItem,    ///< pop dim; push work-item query A (size_t)
  Trap,        ///< abort execution with trap code A

  // Superinstructions. A post-codegen peephole (fuseSuperinstructions)
  // rewrites the FIRST opcode of a hot adjacent pair to one of these;
  // the second instruction stays in place, unmodified, immediately
  // after it. The fused handler executes both halves in one dispatch
  // (reading the second half's operands at pc+1 and finishing with
  // pc += 2), charging two steps so scheduler slices, step budgets and
  // timeout points are bit-identical to the unfused program. Because
  // the second slot keeps its original instruction, a jump into the
  // middle of a pair simply executes the plain second half — no jump
  // remapping is ever needed — and a slice or budget boundary between
  // the halves materialises the unfused intermediate value on the
  // operand stack and resumes at the intact second instruction.
  FusedFrameAddrLoad,   ///< FrameAddr ; Load   (local variable read)
  FusedGepConstLoad,    ///< GepConst  ; Load   (field / element read)
  FusedPushConstBin,    ///< PushConst ; Bin    (arith with constant rhs)
  FusedLoadConvert,     ///< Load      ; Convert (load + implicit cast)
  FusedBinJumpIfFalse,  ///< Bin       ; JumpIfFalse (compare + branch)
};

/// Number of distinct opcodes (dispatch-table size).
constexpr unsigned NumOpcodes =
    static_cast<unsigned>(Op::FusedBinJumpIfFalse) + 1;

/// True for the superinstruction opcodes introduced by the fusion
/// peephole (never emitted directly by codegen).
inline bool isFusedOp(Op O) {
  return static_cast<uint8_t>(O) >=
         static_cast<uint8_t>(Op::FusedFrameAddrLoad);
}

/// Trap codes carried by Op::Trap and runtime faults.
enum class TrapCode : uint8_t {
  Unreachable,
  NullDeref,
  OutOfBounds,
  DivByZero,
  StackOverflow,
  CallDepth,
  BadPointer,
  CompilerInjected, ///< used by crash bug models
};

const char *trapCodeName(TrapCode C);

/// One VM instruction (fixed-width form, operands by role).
struct Insn {
  Op Opcode;
  uint32_t A = 0;
  uint32_t B = 0;
  uint64_t Imm = 0;
  const Type *Ty = nullptr;
};

/// Pointer boxing helpers.
namespace vmptr {

constexpr uint64_t OffsetBits = 54;
constexpr uint64_t OffsetMask = (1ULL << OffsetBits) - 1;

inline uint64_t make(AddressSpace Space, unsigned Buf, uint64_t Offset) {
  return (static_cast<uint64_t>(Space) << 62) |
         (static_cast<uint64_t>(Buf & 0xff) << OffsetBits) |
         (Offset & OffsetMask);
}

inline AddressSpace space(uint64_t P) {
  return static_cast<AddressSpace>(P >> 62);
}
inline unsigned buffer(uint64_t P) {
  return static_cast<unsigned>((P >> OffsetBits) & 0xff);
}
inline uint64_t offset(uint64_t P) { return P & OffsetMask; }

} // namespace vmptr

/// A kernel parameter's slot in the entry frame.
struct CompiledParam {
  uint64_t FrameOffset;
  const Type *Ty;
};

/// One compiled function.
struct CompiledFunction {
  std::string Name;
  const Type *ReturnTy = nullptr;
  std::vector<CompiledParam> Params;
  uint64_t FrameSize = 0;
  std::vector<Insn> Code;
};

/// A compiled translation unit plus launch metadata.
struct CompiledModule {
  std::vector<CompiledFunction> Functions;
  unsigned KernelIndex = 0;
  /// Bytes of group-local memory required by kernel-scope local
  /// declarations.
  uint64_t LocalArenaSize = 0;
  /// Number of distinct barrier sites (for divergence diagnostics).
  unsigned NumBarrierSites = 0;

  const CompiledFunction &kernel() const {
    return Functions[KernelIndex];
  }
};

/// Renders a human-readable disassembly (used in tests and debugging).
std::string disassemble(const CompiledModule &M);

/// The superinstruction peephole: greedily rewrites the first opcode
/// of each hot adjacent pair to its fused form (see the enum above).
/// Greedy left-to-right with a skip over the consumed second slot, so
/// a second half is never itself re-fused and always keeps its original
/// opcode. Returns the number of pairs fused.
uint64_t fuseSuperinstructions(CompiledModule &M);

} // namespace clfuzz

#endif // CLFUZZ_VM_BYTECODE_H
