//===- Bytecode.cpp - Stack bytecode for the MiniCL VM ---------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "vm/Bytecode.h"

#include <sstream>

using namespace clfuzz;

const char *clfuzz::trapCodeName(TrapCode C) {
  switch (C) {
  case TrapCode::Unreachable:
    return "unreachable";
  case TrapCode::NullDeref:
    return "null dereference";
  case TrapCode::OutOfBounds:
    return "out-of-bounds access";
  case TrapCode::DivByZero:
    return "division by zero";
  case TrapCode::StackOverflow:
    return "private memory exhausted";
  case TrapCode::CallDepth:
    return "call depth exceeded";
  case TrapCode::BadPointer:
    return "malformed pointer";
  case TrapCode::CompilerInjected:
    return "compiler-injected fault";
  }
  return "unknown trap";
}

static const char *opName(Op O) {
  switch (O) {
  case Op::PushConst:
    return "push_const";
  case Op::FrameAddr:
    return "frame_addr";
  case Op::GroupAddr:
    return "group_addr";
  case Op::Load:
    return "load";
  case Op::Store:
    return "store";
  case Op::StoreKeep:
    return "store_keep";
  case Op::MemCopy:
    return "memcopy";
  case Op::MemSet:
    return "memset";
  case Op::GepConst:
    return "gep_const";
  case Op::GepScaled:
    return "gep_scaled";
  case Op::Bin:
    return "bin";
  case Op::Un:
    return "un";
  case Op::Convert:
    return "convert";
  case Op::Splat:
    return "splat";
  case Op::VecBuild:
    return "vec_build";
  case Op::VecExtract:
    return "vec_extract";
  case Op::VecShuffle:
    return "vec_shuffle";
  case Op::VecInsert:
    return "vec_insert";
  case Op::Call:
    return "call";
  case Op::Ret:
    return "ret";
  case Op::RetVoid:
    return "ret_void";
  case Op::Jump:
    return "jump";
  case Op::JumpIfFalse:
    return "jump_if_false";
  case Op::Pop:
    return "pop";
  case Op::Dup:
    return "dup";
  case Op::Rot3:
    return "rot3";
  case Op::Barrier:
    return "barrier";
  case Op::AtomicRMW:
    return "atomic_rmw";
  case Op::AtomicCas:
    return "atomic_cas";
  case Op::BuiltinEval:
    return "builtin";
  case Op::WorkItem:
    return "work_item";
  case Op::Trap:
    return "trap";
  case Op::FusedFrameAddrLoad:
    return "frame_addr+load";
  case Op::FusedGepConstLoad:
    return "gep_const+load";
  case Op::FusedPushConstBin:
    return "push_const+bin";
  case Op::FusedLoadConvert:
    return "load+convert";
  case Op::FusedBinJumpIfFalse:
    return "bin+jump_if_false";
  }
  return "?";
}

std::string clfuzz::disassemble(const CompiledModule &M) {
  std::ostringstream OS;
  for (size_t FI = 0, FE = M.Functions.size(); FI != FE; ++FI) {
    const CompiledFunction &F = M.Functions[FI];
    OS << "function " << FI << " '" << F.Name << "' frame=" << F.FrameSize
       << (FI == M.KernelIndex ? " [kernel]" : "") << "\n";
    for (size_t PC = 0, E = F.Code.size(); PC != E; ++PC) {
      const Insn &I = F.Code[PC];
      OS << "  " << PC << ": " << opName(I.Opcode);
      switch (I.Opcode) {
      case Op::Bin:
        OS << ' ' << binOpSpelling(static_cast<BinOp>(I.A));
        break;
      case Op::Un:
        OS << ' ' << unOpSpelling(static_cast<UnOp>(I.A));
        break;
      case Op::BuiltinEval:
      case Op::AtomicRMW:
        OS << ' ' << builtinName(static_cast<Builtin>(I.A));
        break;
      case Op::WorkItem:
        OS << ' ' << builtinName(static_cast<Builtin>(I.A));
        break;
      case Op::Trap:
        OS << ' ' << trapCodeName(static_cast<TrapCode>(I.A));
        break;
      default:
        if (I.A)
          OS << " A=" << I.A;
        break;
      }
      if (I.B)
        OS << " B=" << I.B;
      if (I.Imm)
        OS << " imm=" << I.Imm;
      if (I.Ty)
        OS << " : " << I.Ty->str();
      OS << '\n';
    }
  }
  if (M.LocalArenaSize)
    OS << "local_arena " << M.LocalArenaSize << " bytes\n";
  return OS.str();
}

uint64_t clfuzz::fuseSuperinstructions(CompiledModule &M) {
  uint64_t Fused = 0;
  for (CompiledFunction &F : M.Functions) {
    std::vector<Insn> &C = F.Code;
    for (size_t I = 0; I + 1 < C.size(); ++I) {
      Op A = C[I].Opcode, B = C[I + 1].Opcode;
      Op FusedOp;
      if (A == Op::FrameAddr && B == Op::Load)
        FusedOp = Op::FusedFrameAddrLoad;
      else if (A == Op::GepConst && B == Op::Load)
        FusedOp = Op::FusedGepConstLoad;
      else if (A == Op::PushConst && B == Op::Bin)
        FusedOp = Op::FusedPushConstBin;
      else if (A == Op::Load && B == Op::Convert)
        FusedOp = Op::FusedLoadConvert;
      else if (A == Op::Bin && B == Op::JumpIfFalse)
        FusedOp = Op::FusedBinJumpIfFalse;
      else
        continue;
      C[I].Opcode = FusedOp;
      ++Fused;
      ++I; // the consumed second slot must never become a first half
    }
  }
  return Fused;
}
