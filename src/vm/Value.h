//===- Value.h - Runtime values for the MiniCL VM ---------------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The boxed runtime value used on the VM operand stack: a type tag
/// plus up to 16 lanes of 64-bit storage. Scalars and pointers use one
/// lane. Lane payloads are kept masked to the element bit width (zero
/// upper bits); signedness is applied by consumers.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_VM_VALUE_H
#define CLFUZZ_VM_VALUE_H

#include "minicl/IntOps.h"
#include "minicl/Type.h"

#include <array>

namespace clfuzz {

/// A runtime value.
struct Value {
  const Type *Ty = nullptr;
  unsigned NumLanes = 1;
  std::array<uint64_t, 16> Lanes = {};

  Value() = default;

  /// Builds a scalar (or pointer) value, masking to the type width.
  /// A null type denotes a raw boxed pointer (e.g. a frame address).
  static Value scalar(const Type *Ty, uint64_t Bits) {
    Value V;
    V.Ty = Ty;
    V.NumLanes = 1;
    if (const auto *ST = dyn_cast_if_present<ScalarType>(Ty))
      V.Lanes[0] = maskToWidth(Bits, ST->bitWidth());
    else
      V.Lanes[0] = Bits;
    return V;
  }

  /// Builds a vector value from \p LaneBits (already masked by caller
  /// or masked here against the element width).
  static Value vector(const VectorType *VT,
                      const std::array<uint64_t, 16> &LaneBits) {
    Value V;
    V.Ty = VT;
    V.NumLanes = VT->getNumLanes();
    unsigned W = VT->getElementType()->bitWidth();
    for (unsigned I = 0; I != V.NumLanes; ++I)
      V.Lanes[I] = maskToWidth(LaneBits[I], W);
    return V;
  }

  bool isVector() const { return Ty && Ty->isVector(); }

  /// Scalar payload (lane 0).
  uint64_t bits() const { return Lanes[0]; }

  /// Scalar payload, sign-extended according to the value's type.
  int64_t asSigned() const {
    const auto *ST = cast<ScalarType>(Ty);
    return signExtend(Lanes[0], ST->bitWidth());
  }

  /// True if the scalar payload is nonzero (condition test).
  bool truthy() const { return Lanes[0] != 0; }
};

} // namespace clfuzz

#endif // CLFUZZ_VM_VALUE_H
