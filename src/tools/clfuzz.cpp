//===- clfuzz.cpp - Command-line front end --------------------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// The command-line driver (the analogue of the CLsmith/cl_launcher
/// pair the paper ships):
///
///   clfuzz gen    --mode=ALL --seed=N [--emi=K]   print a kernel
///   clfuzz run    --seed=N --config=ID [--opt]    run one kernel
///   clfuzz diff   --seed=N                        run on the whole zoo
///   clfuzz hunt   --mode=M --count=N              mini campaign
///   clfuzz reduce --seed=N --config=ID            shrink a witness
///   clfuzz worker --listen=PORT                   serve remote campaigns
///   clfuzz configs                                list the zoo
///
/// `diff` and `hunt` run their campaign cells through the streaming
/// pipeline API and accept:
///
///   --backend=inline|threads|procs|remote  execution backend (procs
///                                    runs cells in crash-isolated
///                                    worker subprocesses; remote
///                                    farms them to `clfuzz worker`
///                                    processes over TCP)
///   --exec-threads=N                 workers (1 = serial, 0 = all
///                                    cores)
///   --workers=host:port,...          the worker fleet (remote only)
///   --shard-size=N                   kernels generated/held per shard
///   --format=text|csv|jsonl          hunt/diff report format
///   --cache=off|mem|disk             content-addressed outcome cache
///                                    (docs/caching.md); identical job
///                                    descriptors are served from
///                                    cache instead of re-executing,
///                                    with byte-identical output
///   --cache-dir=DIR                  disk store (implies --cache=disk)
///   --cache-mem-mb=N                 in-memory cache budget
///   --stats                          campaign counters on stderr
///                                    (cache_hits/cache_misses/
///                                    coalesced plus a vm_* line:
///                                    dispatch mode, instructions,
///                                    fused dispatches, launches,
///                                    engine reuses)
///
/// Every command also accepts --vm-dispatch=switch|goto to pick the
/// interpreter's dispatch strategy (docs/vm.md); output is
/// byte-identical either way, only wall-clock speed changes.
///
/// Reduction is a pipeline workload too: `reduce` evaluates its
/// speculative candidates on --reduce-backend with --reduce-jobs
/// workers (procs fork-isolates crashy candidates; remote farms them
/// to the worker fleet), and `hunt --reduce` hands every wrong-code
/// witness to a background reduction queue instead of blocking the
/// campaign. Findings and reductions are identical for every backend,
/// worker count and shard size. docs/architecture.md,
/// docs/wire-protocol.md and docs/reduction.md specify all of this.
///
//===----------------------------------------------------------------------===//

#include "device/DeviceConfig.h"
#include "exec/OutcomeCache.h"
#include "exec/Pipeline.h"
#include "exec/RemoteBackend.h"
#include "exec/WorkerLoop.h"
#include "gen/Generator.h"
#include "oracle/Oracle.h"
#include "oracle/ReductionQueue.h"
#include "support/StringUtil.h"
#include "vm/VM.h"

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>

using namespace clfuzz;

namespace {

struct CliArgs {
  std::string Command;
  std::map<std::string, std::string> Options;

  bool has(const std::string &Key) const { return Options.count(Key); }
  std::string get(const std::string &Key,
                  const std::string &Default = "") const {
    auto It = Options.find(Key);
    return It == Options.end() ? Default : It->second;
  }
  uint64_t getInt(const std::string &Key, uint64_t Default) const {
    auto It = Options.find(Key);
    return It == Options.end()
               ? Default
               : static_cast<uint64_t>(std::atoll(It->second.c_str()));
  }
};

CliArgs parse(int Argc, char **Argv) {
  CliArgs A;
  if (Argc > 1)
    A.Command = Argv[1];
  for (int I = 2; I < Argc; ++I) {
    std::string S = Argv[I];
    if (S.rfind("--", 0) != 0)
      continue;
    size_t Eq = S.find('=');
    if (Eq == std::string::npos)
      A.Options[S.substr(2)] = "1";
    else
      A.Options[S.substr(2, Eq - 2)] = S.substr(Eq + 1);
  }
  return A;
}

GenMode modeByName(const std::string &Name) {
  for (unsigned M = 0; M != NumGenModes; ++M) {
    std::string N = genModeName(static_cast<GenMode>(M));
    std::string Compact;
    for (char C : N)
      if (C != ' ')
        Compact += C;
    if (Name == N || Name == Compact)
      return static_cast<GenMode>(M);
  }
  std::fprintf(stderr, "unknown mode '%s' (use BASIC, VECTOR, BARRIER, "
                       "ATOMICSECTION, ATOMICREDUCTION or ALL)\n",
               Name.c_str());
  std::exit(1);
}

GenOptions genOptionsFrom(const CliArgs &A) {
  GenOptions GO;
  GO.Mode = modeByName(A.get("mode", "ALL"));
  GO.Seed = A.getInt("seed", 1);
  GO.NumEmiBlocks = static_cast<unsigned>(A.getInt("emi", 0));
  return GO;
}

int cmdGen(const CliArgs &A) {
  GeneratedKernel K = generateKernel(genOptionsFrom(A));
  std::printf("// mode: %s, seed: %llu\n", genModeName(K.Mode),
              static_cast<unsigned long long>(K.Seed));
  std::printf("// NDRange: global (%u,%u,%u) local (%u,%u,%u)\n",
              K.Range.Global[0], K.Range.Global[1], K.Range.Global[2],
              K.Range.Local[0], K.Range.Local[1], K.Range.Local[2]);
  for (size_t I = 0; I != K.Buffers.size(); ++I)
    std::printf("// arg %zu: %s buffer, %zu bytes%s%s\n", I,
                addressSpaceName(K.Buffers[I].Space),
                K.Buffers[I].InitBytes.size(),
                K.Buffers[I].IsOutput ? " (output)" : "",
                K.Buffers[I].IsDeadArray ? " (EMI dead array)" : "");
  std::printf("\n%s", K.Source.c_str());
  return 0;
}

int cmdConfigs() {
  std::printf("%-5s %-34s %-12s %-18s %s\n", "id", "device", "type",
              "driver", "paper classification");
  for (const DeviceConfig &C : buildConfigRegistry())
    std::printf("%-5d %-34s %-12s %-18s %s\n", C.Id, C.Device.c_str(),
                C.typeName(), C.Driver.c_str(),
                C.PaperAboveThreshold ? "above threshold"
                                      : "below threshold");
  return 0;
}

void printCacheStats(const CliArgs &A, const ExecOptions &Opts);

int cmdRun(const CliArgs &A) {
  TestCase T = TestCase::fromGenerated(generateKernel(genOptionsFrom(A)));
  int ConfigId = static_cast<int>(A.getInt("config", 0));
  bool Opt = A.has("opt");
  RunOutcome O;
  if (ConfigId == 0) {
    O = runTestOnReference(T, Opt);
    std::printf("reference%c: ", Opt ? '+' : '-');
  } else {
    std::vector<DeviceConfig> Zoo = buildConfigRegistry();
    O = runTestOnConfig(T, configById(Zoo, ConfigId), Opt);
    std::printf("config %d%c: ", ConfigId, Opt ? '+' : '-');
  }
  std::printf("%s", runStatusName(O.Status));
  if (O.ok()) {
    std::printf("  output-hash=%s  out[0..%zu]=", toHex(O.OutputHash).c_str(),
                O.OutputHead.size());
    for (uint64_t W : O.OutputHead)
      std::printf(" %s", toHex(W).c_str());
  } else {
    std::printf("  (%s)", O.Message.c_str());
  }
  std::printf("\n");
  printCacheStats(A, ExecOptions());
  return O.ok() ? 0 : 1;
}

/// Validated --format value for diff/hunt ("text", "csv" or "jsonl").
std::string reportFormatFrom(const CliArgs &A) {
  std::string Format = A.get("format", "text");
  if (Format != "text" && Format != "csv" && Format != "jsonl") {
    std::fprintf(stderr,
                 "unknown format '%s' (use text, csv or jsonl)\n",
                 Format.c_str());
    std::exit(1);
  }
  return Format;
}

/// Copies the remote-fleet options into \p Opts and validates that a
/// remote backend actually has workers to dial. \p WorkersKey lets
/// `hunt --reduce` keep separate fleets for the campaign
/// (--workers) and the background reductions (--reduce-workers).
void applyRemoteOptions(const CliArgs &A, ExecOptions &Opts,
                        const std::string &WorkersKey) {
  std::string Workers = A.get(WorkersKey, A.get("workers"));
  Opts.RemoteWorkers = splitWorkerList(Workers);
  Opts.RemoteTimeoutMs = static_cast<unsigned>(
      A.getInt("remote-timeout-ms", Opts.RemoteTimeoutMs));
  Opts.RemoteHeartbeatMs = static_cast<unsigned>(
      A.getInt("remote-heartbeat-ms", Opts.RemoteHeartbeatMs));
  if (Opts.Backend == BackendKind::Remote && Opts.RemoteWorkers.empty()) {
    std::fprintf(stderr,
                 "the remote backend needs --workers=host:port,... "
                 "(start workers with `clfuzz worker --listen=PORT`)\n");
    std::exit(1);
  }
}

/// Parses the outcome-cache flags and attaches the cache to \p Opts.
/// `--cache-dir=` without an explicit `--cache=` implies disk mode.
/// Exits with a message on a bad mode or an unusable directory.
void applyCacheOptions(const CliArgs &A, ExecOptions &Opts) {
  OutcomeCacheOptions CO;
  std::string Mode = A.get("cache", A.has("cache-dir") ? "disk" : "off");
  if (!parseCacheMode(Mode, CO.Mode)) {
    std::fprintf(stderr, "unknown cache mode '%s' (use off, mem or disk)\n",
                 Mode.c_str());
    std::exit(1);
  }
  CO.Dir = A.get("cache-dir");
  if (CO.Mode == CacheMode::Disk && CO.Dir.empty()) {
    std::fprintf(stderr, "--cache=disk needs --cache-dir=DIR\n");
    std::exit(1);
  }
  if (A.has("cache-mem-mb"))
    CO.MemBudgetBytes =
        static_cast<size_t>(A.getInt("cache-mem-mb", 64)) << 20;
  CO.KeySalt = cacheKeySalt(Opts);
  try {
    Opts.Cache = makeOutcomeCache(CO);
  } catch (const std::exception &E) {
    std::fprintf(stderr, "%s\n", E.what());
    std::exit(1);
  }
}

/// The --stats epilogue: campaign output never changes with the cache
/// or the interpreter's tuning, so the counters go to stderr, on their
/// own lines, only when asked for. The vm_* counters cover launches
/// this process executed — under procs/remote backends the workers
/// keep their own (the coordinator's line then reports 0 launches).
void printCacheStats(const CliArgs &A, const ExecOptions &Opts) {
  if (!A.has("stats"))
    return;
  OutcomeCacheStats S;
  if (Opts.Cache)
    S = Opts.Cache->stats();
  std::fprintf(stderr, "cache_hits=%llu cache_misses=%llu coalesced=%llu\n",
               static_cast<unsigned long long>(S.Hits),
               static_cast<unsigned long long>(S.Misses),
               static_cast<unsigned long long>(S.Coalesced));
  VmCounters V = vmCounters();
  std::fprintf(stderr,
               "vm_dispatch=%s vm_instructions=%llu vm_fused=%llu "
               "vm_launches=%llu vm_engine_reuses=%llu\n",
               vmDispatchName(vmDispatchMode()),
               static_cast<unsigned long long>(V.Instructions),
               static_cast<unsigned long long>(V.FusedExecuted),
               static_cast<unsigned long long>(V.Launches),
               static_cast<unsigned long long>(V.EngineReuses));
}

ExecOptions execOptionsFrom(const CliArgs &A) {
  ExecOptions Opts = ExecOptions::withThreads(
      static_cast<unsigned>(A.getInt("exec-threads", 1)));
  Opts.ShardSize =
      static_cast<unsigned>(A.getInt("shard-size", Opts.ShardSize));
  if (A.has("backend") &&
      !parseBackendKind(A.get("backend"), Opts.Backend)) {
    std::fprintf(
        stderr,
        "unknown backend '%s' (use inline, threads, procs or remote)\n",
        A.get("backend").c_str());
    std::exit(1);
  }
  applyRemoteOptions(A, Opts, "workers");
  applyCacheOptions(A, Opts);
  return Opts;
}

/// makeBackend with CLI-grade errors: a malformed --workers entry or
/// a platform without sockets exits with a message instead of an
/// unhandled exception.
std::unique_ptr<ExecBackend> makeBackendOrDie(const ExecOptions &Opts) {
  try {
    return makeBackend(Opts);
  } catch (const std::exception &E) {
    std::fprintf(stderr, "%s\n", E.what());
    std::exit(1);
  }
}

int cmdDiff(const CliArgs &A) {
  // Validate the report format before any cell runs.
  std::string Format = reportFormatFrom(A);
  TestCase T = TestCase::fromGenerated(generateKernel(genOptionsFrom(A)));
  std::vector<DeviceConfig> Zoo = buildConfigRegistry();
  ExecOptions Opts = execOptionsFrom(A);
  std::unique_ptr<ExecBackend> Backend = makeBackendOrDie(Opts);
  std::vector<ExecJob> Jobs;
  std::vector<std::string> Labels;
  for (const DeviceConfig &C : Zoo) {
    for (bool Opt : {false, true}) {
      Jobs.push_back(ExecJob::onConfig(T, C, Opt, RunSettings()));
      Labels.push_back(std::to_string(C.Id) + (Opt ? "+" : "-"));
    }
  }
  // The whole zoo runs one kernel: a single column, parsed once per
  // worker instead of once per cell.
  std::vector<RunOutcome> Outs =
      Backend->runColumns(groupIntoColumns(Jobs));

  if (Format == "csv" || Format == "jsonl") {
    std::unique_ptr<ResultSink> Sink;
    if (Format == "csv")
      Sink = std::make_unique<CsvOutcomeSink>(stdout, Labels);
    else
      Sink = std::make_unique<JsonlOutcomeSink>(stdout, Labels);
    Sink->consumeTest(0, T, Outs);
    Sink->finish();
    printCacheStats(A, Opts);
    return 0;
  }
  std::vector<Verdict> Vs = classifyAgainstMajority(Outs);
  unsigned Wrong = 0;
  for (size_t I = 0; I != Vs.size(); ++I) {
    std::printf("%-5s %-4s", Labels[I].c_str(),
                verdictName(Vs[I]));
    if (Outs[I].ok())
      std::printf(" %s", toHex(Outs[I].OutputHash).c_str());
    else
      std::printf(" %s", Outs[I].Message.c_str());
    std::printf("\n");
    Wrong += Vs[I] == Verdict::Wrong;
  }
  std::printf("\n%u wrong-code verdicts\n", Wrong);
  printCacheStats(A, Opts);
  return 0;
}

namespace {

/// Reduction scheduling options shared by `reduce` and
/// `hunt --reduce`: --reduce-backend picks the candidate-evaluation
/// backend, --reduce-jobs the worker count (for `reduce`: speculative
/// candidate evaluators; for `hunt`: concurrent background
/// reductions), --reduce-max the candidate budget. \p BuildCache is
/// false when the caller supplies a shared cache of its own (`hunt`
/// hands its campaign cache to the reduction queue).
ReducerOptions reducerOptionsFrom(const CliArgs &A,
                                  bool BuildCache = true) {
  ReducerOptions RO;
  RO.Exec = ExecOptions::withThreads(
      static_cast<unsigned>(A.getInt("reduce-jobs", 1)));
  if (A.has("reduce-backend") &&
      !parseBackendKind(A.get("reduce-backend"), RO.Exec.Backend)) {
    std::fprintf(stderr,
                 "unknown reduce backend '%s' (use inline, threads, "
                 "procs or remote)\n",
                 A.get("reduce-backend").c_str());
    std::exit(1);
  }
  // --reduce-backend=remote farms candidate probes to the worker
  // fleet too; it reuses --workers unless --reduce-workers names a
  // dedicated one.
  applyRemoteOptions(A, RO.Exec, "reduce-workers");
  // The descriptor-level cache subsumes the reducer's printed-form
  // cache across rounds: a re-probed candidate (crash and timeout
  // outcomes included) is answered without a fork.
  if (BuildCache)
    applyCacheOptions(A, RO.Exec);
  RO.MaxCandidates = static_cast<unsigned>(
      A.getInt("reduce-max", RO.MaxCandidates));
  if (A.has("no-pipeline"))
    RO.Pipeline = false;
  return RO;
}

int cmdReduce(const CliArgs &A) {
  if (!A.has("config")) {
    std::fprintf(stderr, "reduce: --config=ID is required (the "
                         "configuration the witness misbehaves on)\n");
    return 2;
  }
  std::vector<DeviceConfig> Zoo = buildConfigRegistry();
  const DeviceConfig &Config =
      configById(Zoo, static_cast<int>(A.getInt("config", 0)));
  bool Opt = A.has("opt");
  TestCase T = TestCase::fromGenerated(generateKernel(genOptionsFrom(A)));

  std::string Expect = A.get("expect", "wrong");
  std::unique_ptr<ReductionOracle> Oracle;
  if (Expect == "wrong")
    Oracle = std::make_unique<DifferentialReductionOracle>(Config, Opt);
  else if (Expect == "crash")
    Oracle = std::make_unique<StatusReductionOracle>(Config, Opt,
                                                     RunStatus::Crash);
  else if (Expect == "timeout")
    Oracle = std::make_unique<StatusReductionOracle>(Config, Opt,
                                                     RunStatus::Timeout);
  else if (Expect == "build-failure")
    Oracle = std::make_unique<StatusReductionOracle>(
        Config, Opt, RunStatus::BuildFailure);
  else {
    std::fprintf(stderr,
                 "unknown --expect '%s' (use wrong, crash, timeout or "
                 "build-failure)\n",
                 Expect.c_str());
    return 2;
  }

  ReducerOptions RO = reducerOptionsFrom(A);
  std::FILE *TraceFile = nullptr;
  if (A.has("trace")) {
    std::string Path = A.get("trace");
    TraceFile = Path == "-" ? stderr : std::fopen(Path.c_str(), "w");
    if (!TraceFile) {
      std::fprintf(stderr, "cannot open trace file '%s'\n", Path.c_str());
      return 2;
    }
    RO.Trace = makeJsonlReduceTrace(TraceFile);
  }

  ReduceStats Stats;
  TestCase Reduced = reduceTest(T, *Oracle, RO, &Stats);
  if (TraceFile && TraceFile != stderr)
    std::fclose(TraceFile);
  printCacheStats(A, RO.Exec);

  std::string Cell = std::to_string(Config.Id) + (Opt ? "+" : "-");
  if (!Stats.WitnessWasInteresting) {
    std::fprintf(stderr,
                 "witness is not interesting: seed %llu does not %s on "
                 "config %s\n",
                 static_cast<unsigned long long>(A.getInt("seed", 1)),
                 Expect == "wrong" ? "miscompile" : Expect.c_str(),
                 Cell.c_str());
    return 1;
  }

  // The report is deliberately backend-silent: `reduce` output is
  // byte-identical across --reduce-backend and --reduce-jobs.
  std::printf("// reduced witness: seed %llu, config %s, %s\n",
              static_cast<unsigned long long>(A.getInt("seed", 1)),
              Cell.c_str(), Expect.c_str());
  std::printf("// lines %u -> %u; %u candidates tried, %u kept, %u "
              "skipped; %u rounds, %u escalations\n",
              Stats.InitialLines, Stats.FinalLines, Stats.CandidatesTried,
              Stats.CandidatesKept, Stats.CandidatesSkipped, Stats.Rounds,
              Stats.Escalations);
  std::printf("%s", Reduced.Source.c_str());
  return 0;
}

/// Streams hunt findings: votes per kernel as its cells arrive and
/// prints wrong-code witnesses immediately, in seed order; with a
/// reduction queue attached, every witness is also submitted for
/// background shrinking while the hunt keeps going. Memory is one
/// kernel's outcomes, regardless of --count.
class HuntSink final : public ResultSink {
public:
  HuntSink(uint64_t SeedBase, std::vector<std::string> Labels,
           const std::vector<DeviceConfig> &Targets,
           ReductionQueue *Reductions)
      : SeedBase(SeedBase), Labels(std::move(Labels)), Targets(Targets),
        Reductions(Reductions) {}

  void consumeTest(size_t TestIndex, const TestCase &T,
                   const std::vector<RunOutcome> &Outs) override {
    std::vector<Verdict> Vs = classifyAgainstMajority(Outs);
    for (size_t I = 0; I != Vs.size(); ++I) {
      if (Vs[I] != Verdict::Wrong)
        continue;
      ++Findings;
      std::printf("seed %llu: wrong code on config %s\n",
                  static_cast<unsigned long long>(SeedBase + TestIndex),
                  Labels[I].c_str());
      if (Reductions) {
        ReductionJob Job;
        Job.OrderKey = TestIndex * Labels.size() + I;
        Job.Label = "seed " +
                    std::to_string(SeedBase + TestIndex) + " config " +
                    Labels[I];
        Job.Witness = T;
        Job.Oracle = std::make_shared<DifferentialReductionOracle>(
            Targets[I / 2], /*Opt=*/I % 2 != 0);
        Reductions->submit(std::move(Job));
      }
    }
  }

  uint64_t SeedBase;
  std::vector<std::string> Labels;
  const std::vector<DeviceConfig> &Targets;
  ReductionQueue *Reductions;
  unsigned Findings = 0;
};

} // namespace

int cmdHunt(const CliArgs &A) {
  unsigned Count = static_cast<unsigned>(A.getInt("count", 20));
  uint64_t Seed = A.getInt("seed", 1);
  GenMode Mode = modeByName(A.get("mode", "ALL"));
  std::vector<DeviceConfig> Zoo = buildConfigRegistry();
  std::vector<DeviceConfig> Targets;
  for (int Id : paperAboveThresholdIds())
    Targets.push_back(configById(Zoo, Id));

  ExecOptions Opts = execOptionsFrom(A);
  std::unique_ptr<ExecBackend> Backend = makeBackendOrDie(Opts);

  // Background reduction: wrong-code witnesses are queued for
  // shrinking as they are found and drained after the campaign, so
  // the hunt never stalls on a reduction. --reduce-jobs concurrent
  // reductions, each evaluating candidates on --reduce-backend.
  std::unique_ptr<ReductionQueue> Reductions;
  if (A.has("reduce")) {
    ReducerOptions RO = reducerOptionsFrom(A, /*BuildCache=*/false);
    RO.Exec.Threads = 1; // within one background job, evaluate serially
    // Campaign and background reductions share one cache: every
    // witness's probes start from the outcomes the hunt already paid
    // for, and the --stats counters cover both.
    RO.Exec.Cache = Opts.Cache;
    Reductions = std::make_unique<ReductionQueue>(
        RO, static_cast<unsigned>(A.getInt("reduce-jobs", 2)),
        /*CaptureTrace=*/A.has("reduce-trace"));
  }

  // Source -> backend -> sink: kernels are generated in shards of
  // --shard-size and reported in seed order, so a 100k-kernel hunt
  // streams in bounded memory on any backend.
  GenOptions BaseGen;
  GeneratorSource Source(Mode, BaseGen, Seed, Count, /*Prefilter=*/false,
                         /*Config1=*/nullptr, RunSettings(), *Backend);

  std::vector<std::string> Labels;
  for (const DeviceConfig &C : Targets)
    for (bool Opt : {false, true})
      Labels.push_back(std::to_string(C.Id) + (Opt ? "+" : "-"));

  auto Expand = [&](size_t, const TestCase &T,
                    std::vector<ExecJob> &Jobs) {
    for (const DeviceConfig &C : Targets)
      for (bool Opt : {false, true})
        Jobs.push_back(ExecJob::onConfig(T, C, Opt, RunSettings()));
  };

  std::string Format = reportFormatFrom(A);
  if (Format == "csv" || Format == "jsonl") {
    std::unique_ptr<ResultSink> Sink;
    if (Format == "csv")
      Sink = std::make_unique<CsvOutcomeSink>(stdout, Labels);
    else
      Sink = std::make_unique<JsonlOutcomeSink>(stdout, Labels);
    runShardedCampaign(Source, *Backend, Opts.resolvedShardSize(), Expand,
                       *Sink);
    printCacheStats(A, Opts);
    return 0;
  }

  HuntSink Sink(Seed, Labels, Targets, Reductions.get());
  PipelineStats Stats = runShardedCampaign(
      Source, *Backend, Opts.resolvedShardSize(), Expand, Sink);
  std::printf("%u findings over %zu kernels on the %s backend; rerun "
              "`clfuzz gen --mode=%s --seed=<seed>` to inspect a witness\n",
              Sink.Findings, Stats.Tests, Backend->name(),
              A.get("mode", "ALL").c_str());

  if (Reductions) {
    std::vector<ReductionResult> Reduced = Reductions->drain();
    if (!Reduced.empty())
      std::printf("\n%zu witnesses reduced in the background:\n",
                  Reduced.size());
    for (const ReductionResult &R : Reduced) {
      if (!R.Error.empty()) {
        std::printf("\n%s: reduction failed (%s); witness kept as-is\n",
                    R.Label.c_str(), R.Error.c_str());
        continue;
      }
      std::printf("\n%s: %u -> %u lines (%u candidates tried, %u kept)\n",
                  R.Label.c_str(), R.Stats.InitialLines,
                  R.Stats.FinalLines, R.Stats.CandidatesTried,
                  R.Stats.CandidatesKept);
      std::printf("%s", R.Reduced.Source.c_str());
    }
    if (A.has("reduce-trace")) {
      std::string Path = A.get("reduce-trace");
      std::FILE *F =
          Path == "-" ? stderr : std::fopen(Path.c_str(), "w");
      if (!F) {
        std::fprintf(stderr, "cannot open trace file '%s'\n",
                     Path.c_str());
        return 1;
      }
      // Traces were buffered per witness; emitting them in drain
      // order keeps the file byte-identical however the background
      // jobs interleaved.
      for (const ReductionResult &R : Reduced)
        std::fwrite(R.Trace.data(), 1, R.Trace.size(), F);
      if (F != stderr)
        std::fclose(F);
    }
  }
  printCacheStats(A, Opts);
  return 0;
}

/// Runs a `clfuzz worker` process: a TCP job server remote campaigns
/// dispatch cells to (see docs/wire-protocol.md).
int cmdWorker(const CliArgs &A) {
  WorkerOptions WO;
  WO.Host = A.get("host", WO.Host);
  WO.Port = static_cast<unsigned>(A.getInt("listen", 0));
  WO.Jobs = static_cast<unsigned>(A.getInt("jobs", 1));
  WO.ProcTimeoutMs =
      static_cast<unsigned>(A.getInt("proc-timeout-ms", 0));
  WO.DieAfterJobs =
      static_cast<unsigned>(A.getInt("die-after-jobs", 0));
  WO.IgnoreJobs = A.has("ignore-jobs");
  std::string Mode = A.get("cache", A.has("cache-dir") ? "disk" : "off");
  if (!parseCacheMode(Mode, WO.Cache)) {
    std::fprintf(stderr, "unknown cache mode '%s' (use off, mem or disk)\n",
                 Mode.c_str());
    return 2;
  }
  WO.CacheDir = A.get("cache-dir");
  if (WO.Cache == CacheMode::Disk && WO.CacheDir.empty()) {
    std::fprintf(stderr, "--cache=disk needs --cache-dir=DIR\n");
    return 2;
  }
  WO.CacheMemMb = static_cast<unsigned>(A.getInt("cache-mem-mb", 0));
  return runWorkerCommand(WO);
}

int usage() {
  std::fprintf(
      stderr,
      "usage: clfuzz <command> [options]\n"
      "  gen     --mode=M --seed=N [--emi=K]      print a generated kernel\n"
      "  run     --seed=N [--mode=M] [--emi=K] [--config=ID] [--opt]\n"
      "                                           run one kernel\n"
      "  diff    --seed=N [--mode=M] [--emi=K]    run across the whole zoo\n"
      "  hunt    --mode=M --count=N [--seed=N]    mini differential campaign\n"
      "  reduce  --seed=N --config=ID [--opt]     shrink a witness kernel\n"
      "  worker  [--listen=PORT] [--host=H]       serve jobs to remote\n"
      "                                           campaigns over TCP\n"
      "  configs                                  list the 21 configurations\n"
      "diff/hunt: --backend=inline|threads|procs|remote --exec-threads=N\n"
      "  (1 = serial, 0 = all cores) --shard-size=N --format=text|csv|jsonl\n"
      "remote backend: --workers=host:port,... --remote-timeout-ms=N\n"
      "  --remote-heartbeat-ms=N (see `clfuzz worker`, docs/wire-protocol.md)\n"
      "caching (diff/hunt/reduce/worker): --cache=off|mem|disk\n"
      "  --cache-dir=DIR (implies disk) --cache-mem-mb=N; identical job\n"
      "  descriptors are served from cache, output stays byte-identical\n"
      "  (docs/caching.md); --stats prints cache_hits/cache_misses/\n"
      "  coalesced on stderr\n"
      "reduce: --expect=wrong|crash|timeout|build-failure\n"
      "  --reduce-backend=inline|threads|procs|remote --reduce-jobs=N\n"
      "  --reduce-max=N --trace=FILE --no-pipeline\n"
      "hunt --reduce: shrink witnesses in the background (--reduce-backend,\n"
      "  --reduce-jobs=N concurrent reductions, --reduce-max=N,\n"
      "  --reduce-trace=FILE, --no-pipeline; remote probes use\n"
      "  --reduce-workers or --workers)\n"
      "worker: --jobs=N executor slots (0 = all cores) --proc-timeout-ms=N\n"
      "  per-job deadline; fault injection for tests: --die-after-jobs=N\n"
      "  --ignore-jobs\n"
      "all commands: --vm-dispatch=switch|goto interpreter dispatch\n"
      "  strategy (byte-identical output, wall-clock only; docs/vm.md);\n"
      "  --stats adds a vm_* counter line on stderr\n");
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  CliArgs A = parse(Argc, Argv);
  // Interpreter tuning applies to every command (output is
  // byte-identical in either mode; only wall-clock speed changes).
  // The flag wins over the CLFUZZ_VM_DISPATCH environment variable.
  if (A.has("vm-dispatch")) {
    VmDispatch D;
    if (!parseVmDispatch(A.get("vm-dispatch").c_str(), D)) {
      std::fprintf(stderr, "unknown vm dispatch '%s' (use switch or goto)\n",
                   A.get("vm-dispatch").c_str());
      return 1;
    }
    setVmDispatchMode(D);
  }
  // Campaign-time failures (the whole remote fleet unreachable, a
  // process pool that cannot fork) surface as exceptions from deep
  // inside a run; report them as errors, not as std::terminate.
  try {
    if (A.Command == "gen")
      return cmdGen(A);
    if (A.Command == "run")
      return cmdRun(A);
    if (A.Command == "diff")
      return cmdDiff(A);
    if (A.Command == "hunt")
      return cmdHunt(A);
    if (A.Command == "reduce")
      return cmdReduce(A);
    if (A.Command == "worker")
      return cmdWorker(A);
    if (A.Command == "configs")
      return cmdConfigs();
  } catch (const std::exception &E) {
    std::fprintf(stderr, "clfuzz %s: %s\n", A.Command.c_str(), E.what());
    return 1;
  }
  return usage();
}
