//===- clfuzz.cpp - Command-line front end --------------------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// The command-line driver (the analogue of the CLsmith/cl_launcher
/// pair the paper ships):
///
///   clfuzz gen    --mode=ALL --seed=N [--emi=K]   print a kernel
///   clfuzz run    --seed=N --config=ID [--opt]    run one kernel
///   clfuzz diff   --seed=N                        run on the whole zoo
///   clfuzz hunt   --mode=M --count=N              mini campaign
///   clfuzz reduce --seed=N --config=ID            shrink a witness
///   clfuzz triage --seed=N --config=ID            reduce, then bisect the
///                                                 pass pipeline + cluster
///   clfuzz sched  --campaigns=SPEC                N campaigns, one fleet
///   clfuzz worker --listen=PORT                   serve remote campaigns
///   clfuzz worker --connect=HOST:PORT             dial a coordinator's
///                                                 fleet registry instead
///                                                 (rendezvous mode,
///                                                 docs/fleet.md)
///   clfuzz configs                                list the zoo
///
/// `diff` and `hunt` run their campaign cells through the streaming
/// pipeline API and accept:
///
///   --backend=inline|threads|procs|remote  execution backend (procs
///                                    runs cells in crash-isolated
///                                    worker subprocesses; remote
///                                    farms them to `clfuzz worker`
///                                    processes over TCP)
///   --exec-threads=N                 workers (1 = serial, 0 = all
///                                    cores)
///   --workers=host:port,...          the worker fleet (remote only)
///   --shard-size=N                   kernels generated/held per shard
///   --format=text|csv|jsonl          hunt/diff report format
///   --cache=off|mem|disk             content-addressed outcome cache
///                                    (docs/caching.md); identical job
///                                    descriptors are served from
///                                    cache instead of re-executing,
///                                    with byte-identical output
///   --cache-dir=DIR                  disk store (implies --cache=disk)
///   --cache-mem-mb=N                 in-memory cache budget
///   --stats                          campaign counters on stderr
///                                    (cache_hits/cache_misses/
///                                    coalesced, a vm_* line: dispatch
///                                    mode, instructions, fused
///                                    dispatches, launches, engine
///                                    reuses, and a compile_* line:
///                                    per-phase parse/sema/clone/opt/
///                                    codegen/exec counts and ns)
///
/// Every command also accepts --vm-dispatch=switch|goto to pick the
/// interpreter's dispatch strategy (docs/vm.md) and
/// --compile-clone=on|off to toggle clone-based front-end sharing
/// (docs/compile-pipeline.md); output is byte-identical either way,
/// only wall-clock speed changes.
///
/// Triage (src/triage/, docs/triage.md) is post-reduction analysis:
/// `hunt --reduce --triage` bisects each reduced witness over the
/// optimisation pass pipeline to name the minimal faulty pass
/// combination and clusters witnesses by (pass set, kernel-feature
/// signature), reporting distinct-bug counts alongside raw witness
/// counts; `clfuzz triage` does the same for one witness. Bisection
/// probes are ordinary jobs — cached, remoted and prioritized like
/// any other — and the triage report is byte-identical across
/// backends, worker counts and cache states.
///
/// Reduction is a pipeline workload too: `reduce` evaluates its
/// speculative candidates on --reduce-backend with --reduce-jobs
/// workers (procs fork-isolates crashy candidates; remote farms them
/// to the worker fleet), and `hunt --reduce` hands every wrong-code
/// witness to a background reduction queue instead of blocking the
/// campaign. Findings and reductions are identical for every backend,
/// worker count and shard size. docs/architecture.md,
/// docs/wire-protocol.md and docs/reduction.md specify all of this.
///
/// `sched` multiplexes N of these campaigns over one shared backend
/// (src/sched/, docs/scheduler.md): each campaign's report is
/// byte-identical to its solo run, and --stats breaks every counter
/// down per campaign.
///
//===----------------------------------------------------------------------===//

#include "device/CompileCounters.h"
#include "device/DeviceConfig.h"
#include "device/Driver.h"
#include "exec/FleetRegistry.h"
#include "exec/OutcomeCache.h"
#include "exec/Pipeline.h"
#include "exec/RemoteBackend.h"
#include "exec/WorkerLoop.h"
#include "gen/Generator.h"
#include "oracle/Oracle.h"
#include "oracle/ReductionQueue.h"
#include "sched/CampaignScheduler.h"
#include "sched/CampaignSpec.h"
#include "sched/Campaigns.h"
#include "support/StringUtil.h"
#include "triage/Triage.h"
#include "vm/VM.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>

using namespace clfuzz;

namespace {

struct CliArgs {
  std::string Command;
  std::map<std::string, std::string> Options;

  bool has(const std::string &Key) const { return Options.count(Key); }
  std::string get(const std::string &Key,
                  const std::string &Default = "") const {
    auto It = Options.find(Key);
    return It == Options.end() ? Default : It->second;
  }
  uint64_t getInt(const std::string &Key, uint64_t Default) const {
    auto It = Options.find(Key);
    return It == Options.end()
               ? Default
               : static_cast<uint64_t>(std::atoll(It->second.c_str()));
  }
};

CliArgs parse(int Argc, char **Argv) {
  CliArgs A;
  if (Argc > 1)
    A.Command = Argv[1];
  for (int I = 2; I < Argc; ++I) {
    std::string S = Argv[I];
    if (S.rfind("--", 0) != 0)
      continue;
    size_t Eq = S.find('=');
    if (Eq == std::string::npos)
      A.Options[S.substr(2)] = "1";
    else
      A.Options[S.substr(2, Eq - 2)] = S.substr(Eq + 1);
  }
  return A;
}

GenMode modeByName(const std::string &Name) {
  for (unsigned M = 0; M != NumGenModes; ++M) {
    std::string N = genModeName(static_cast<GenMode>(M));
    std::string Compact;
    for (char C : N)
      if (C != ' ')
        Compact += C;
    if (Name == N || Name == Compact)
      return static_cast<GenMode>(M);
  }
  std::fprintf(stderr, "unknown mode '%s' (use BASIC, VECTOR, BARRIER, "
                       "ATOMICSECTION, ATOMICREDUCTION or ALL)\n",
               Name.c_str());
  std::exit(1);
}

GenOptions genOptionsFrom(const CliArgs &A) {
  GenOptions GO;
  GO.Mode = modeByName(A.get("mode", "ALL"));
  GO.Seed = A.getInt("seed", 1);
  GO.NumEmiBlocks = static_cast<unsigned>(A.getInt("emi", 0));
  return GO;
}

int cmdGen(const CliArgs &A) {
  GeneratedKernel K = generateKernel(genOptionsFrom(A));
  std::printf("// mode: %s, seed: %llu\n", genModeName(K.Mode),
              static_cast<unsigned long long>(K.Seed));
  std::printf("// NDRange: global (%u,%u,%u) local (%u,%u,%u)\n",
              K.Range.Global[0], K.Range.Global[1], K.Range.Global[2],
              K.Range.Local[0], K.Range.Local[1], K.Range.Local[2]);
  for (size_t I = 0; I != K.Buffers.size(); ++I)
    std::printf("// arg %zu: %s buffer, %zu bytes%s%s\n", I,
                addressSpaceName(K.Buffers[I].Space),
                K.Buffers[I].InitBytes.size(),
                K.Buffers[I].IsOutput ? " (output)" : "",
                K.Buffers[I].IsDeadArray ? " (EMI dead array)" : "");
  std::printf("\n%s", K.Source.c_str());
  return 0;
}

int cmdConfigs() {
  std::printf("%-5s %-34s %-12s %-18s %s\n", "id", "device", "type",
              "driver", "paper classification");
  for (const DeviceConfig &C : buildConfigRegistry())
    std::printf("%-5d %-34s %-12s %-18s %s\n", C.Id, C.Device.c_str(),
                C.typeName(), C.Driver.c_str(),
                C.PaperAboveThreshold ? "above threshold"
                                      : "below threshold");
  return 0;
}

void printCacheStats(const CliArgs &A, const ExecOptions &Opts,
                     const char *Campaign);

int cmdRun(const CliArgs &A) {
  TestCase T = TestCase::fromGenerated(generateKernel(genOptionsFrom(A)));
  int ConfigId = static_cast<int>(A.getInt("config", 0));
  bool Opt = A.has("opt");
  RunOutcome O;
  if (ConfigId == 0) {
    O = runTestOnReference(T, Opt);
    std::printf("reference%c: ", Opt ? '+' : '-');
  } else {
    std::vector<DeviceConfig> Zoo = buildConfigRegistry();
    O = runTestOnConfig(T, configById(Zoo, ConfigId), Opt);
    std::printf("config %d%c: ", ConfigId, Opt ? '+' : '-');
  }
  std::printf("%s", runStatusName(O.Status));
  if (O.ok()) {
    std::printf("  output-hash=%s  out[0..%zu]=", toHex(O.OutputHash).c_str(),
                O.OutputHead.size());
    for (uint64_t W : O.OutputHead)
      std::printf(" %s", toHex(W).c_str());
  } else {
    std::printf("  (%s)", O.Message.c_str());
  }
  std::printf("\n");
  printCacheStats(A, ExecOptions(), "run");
  return O.ok() ? 0 : 1;
}

/// Validated --format value for diff/hunt ("text", "csv" or "jsonl").
std::string reportFormatFrom(const CliArgs &A) {
  std::string Format = A.get("format", "text");
  if (Format != "text" && Format != "csv" && Format != "jsonl") {
    std::fprintf(stderr,
                 "unknown format '%s' (use text, csv or jsonl)\n",
                 Format.c_str());
    std::exit(1);
  }
  return Format;
}

/// Validated --triage-format value ("csv" or "jsonl") for the
/// machine-readable triage sink (--triage-out).
std::string triageFormatFrom(const CliArgs &A) {
  std::string Format = A.get("triage-format", "csv");
  if (Format != "csv" && Format != "jsonl") {
    std::fprintf(stderr,
                 "unknown triage format '%s' (use csv or jsonl)\n",
                 Format.c_str());
    std::exit(1);
  }
  return Format;
}

/// Copies the remote-fleet options into \p Opts and validates that a
/// remote backend actually has workers to dial. \p WorkersKey lets
/// `hunt --reduce` keep separate fleets for the campaign
/// (--workers) and the background reductions (--reduce-workers).
void applyRemoteOptions(const CliArgs &A, ExecOptions &Opts,
                        const std::string &WorkersKey) {
  std::string Workers = A.get(WorkersKey, A.get("workers"));
  Opts.RemoteWorkers = splitWorkerList(Workers);
  Opts.RemoteTimeoutMs = static_cast<unsigned>(
      A.getInt("remote-timeout-ms", Opts.RemoteTimeoutMs));
  Opts.RemoteHeartbeatMs = static_cast<unsigned>(
      A.getInt("remote-heartbeat-ms", Opts.RemoteHeartbeatMs));
  // --fleet-listen opens a rendezvous registry on the campaign
  // backend (wired in execOptionsFrom), so a remote campaign may
  // start with no static workers at all and be populated entirely by
  // `clfuzz worker --connect=` joins.
  if (Opts.Backend == BackendKind::Remote && Opts.RemoteWorkers.empty() &&
      !A.has("fleet-listen")) {
    std::fprintf(stderr,
                 "the remote backend needs --workers=host:port,... "
                 "(start workers with `clfuzz worker --listen=PORT`) or "
                 "--fleet-listen=PORT for rendezvous workers\n");
    std::exit(1);
  }
}

/// Parses the outcome-cache flags and attaches the cache to \p Opts.
/// `--cache-dir=` without an explicit `--cache=` implies disk mode.
/// Exits with a message on a bad mode or an unusable directory.
void applyCacheOptions(const CliArgs &A, ExecOptions &Opts) {
  OutcomeCacheOptions CO;
  std::string Mode = A.get("cache", A.has("cache-dir") ? "disk" : "off");
  if (!parseCacheMode(Mode, CO.Mode)) {
    std::fprintf(stderr, "unknown cache mode '%s' (use off, mem or disk)\n",
                 Mode.c_str());
    std::exit(1);
  }
  CO.Dir = A.get("cache-dir");
  if (CO.Mode == CacheMode::Disk && CO.Dir.empty()) {
    std::fprintf(stderr, "--cache=disk needs --cache-dir=DIR\n");
    std::exit(1);
  }
  if (A.has("cache-mem-mb"))
    CO.MemBudgetBytes =
        static_cast<size_t>(A.getInt("cache-mem-mb", 64)) << 20;
  CO.KeySalt = cacheKeySalt(Opts);
  try {
    Opts.Cache = makeOutcomeCache(CO);
  } catch (const std::exception &E) {
    std::fprintf(stderr, "%s\n", E.what());
    std::exit(1);
  }
}

/// The --stats epilogue: campaign output never changes with the cache
/// or the interpreter's tuning, so the counters go to stderr, on their
/// own lines, only when asked for. Every line is tagged with the
/// campaign it covers (`campaign=hunt`, or the per-campaign names
/// under `clfuzz sched`; `campaign=total` sums a sched run). The vm_*
/// counters cover launches this process executed — under procs/remote
/// backends the workers keep their own (the coordinator's line then
/// reports 0 launches).
/// One `compile_*` breakdown line: the per-phase compile profiler
/// (device/CompileCounters.h) for \p Campaign. The same formatter
/// serves the global counters and the scheduler's per-campaign deltas,
/// so the per-campaign lines sum field-by-field to the campaign=total
/// line (pinned by SchedulerConformanceTest).
void printCompileLine(const char *Campaign, const CompileCounters &C) {
  std::fprintf(
      stderr,
      "campaign=%s compile_clone=%s compile_parses=%llu "
      "compile_parse_ns=%llu compile_semas=%llu compile_sema_ns=%llu "
      "compile_clones=%llu compile_clone_ns=%llu compile_opts=%llu "
      "compile_opt_ns=%llu compile_codegens=%llu compile_codegen_ns=%llu "
      "compile_execs=%llu compile_exec_ns=%llu compile_total_ns=%llu\n",
      Campaign, compileCloneEnabled() ? "on" : "off",
      static_cast<unsigned long long>(C.Parses),
      static_cast<unsigned long long>(C.ParseNs),
      static_cast<unsigned long long>(C.Semas),
      static_cast<unsigned long long>(C.SemaNs),
      static_cast<unsigned long long>(C.Clones),
      static_cast<unsigned long long>(C.CloneNs),
      static_cast<unsigned long long>(C.Opts),
      static_cast<unsigned long long>(C.OptNs),
      static_cast<unsigned long long>(C.Codegens),
      static_cast<unsigned long long>(C.CodegenNs),
      static_cast<unsigned long long>(C.Execs),
      static_cast<unsigned long long>(C.ExecNs),
      static_cast<unsigned long long>(C.totalNs()));
}

/// One `triage_*` breakdown line: witnesses triaged, bisection probes
/// dispatched, first-seen bug clusters. Shared by the global counters
/// and the scheduler's per-campaign deltas, so the per-campaign lines
/// sum field-by-field to the campaign=total line.
void printTriageLine(const char *Campaign, const TriageCounters &T) {
  std::fprintf(stderr,
               "campaign=%s triage_witnesses=%llu triage_probes=%llu "
               "triage_clusters=%llu\n",
               Campaign, static_cast<unsigned long long>(T.Witnesses),
               static_cast<unsigned long long>(T.Probes),
               static_cast<unsigned long long>(T.Clusters));
}

/// One `fleet_*` breakdown line: rendezvous joins adopted, graceful
/// drains, evictions, redials, and requeued jobs on the remote
/// backend (exec/FleetRegistry.h). Shared by the global counters and
/// the scheduler's per-campaign deltas, so the per-campaign lines sum
/// field-by-field to the campaign=total line.
void printFleetLine(const char *Campaign, const FleetCounters &F) {
  std::fprintf(stderr,
               "campaign=%s fleet_joins=%llu fleet_leaves=%llu "
               "fleet_evictions=%llu fleet_redials=%llu "
               "fleet_requeues=%llu\n",
               Campaign, static_cast<unsigned long long>(F.Joins),
               static_cast<unsigned long long>(F.Leaves),
               static_cast<unsigned long long>(F.Evictions),
               static_cast<unsigned long long>(F.Redials),
               static_cast<unsigned long long>(F.Requeues));
}

void printCacheStats(const CliArgs &A, const ExecOptions &Opts,
                     const char *Campaign) {
  if (!A.has("stats"))
    return;
  OutcomeCacheStats S;
  if (Opts.Cache)
    S = Opts.Cache->stats();
  std::fprintf(stderr,
               "campaign=%s cache_hits=%llu cache_misses=%llu "
               "coalesced=%llu\n",
               Campaign, static_cast<unsigned long long>(S.Hits),
               static_cast<unsigned long long>(S.Misses),
               static_cast<unsigned long long>(S.Coalesced));
  VmCounters V = vmCounters();
  std::fprintf(stderr,
               "campaign=%s vm_dispatch=%s vm_instructions=%llu "
               "vm_fused=%llu vm_launches=%llu vm_engine_reuses=%llu\n",
               Campaign, vmDispatchName(vmDispatchMode()),
               static_cast<unsigned long long>(V.Instructions),
               static_cast<unsigned long long>(V.FusedExecuted),
               static_cast<unsigned long long>(V.Launches),
               static_cast<unsigned long long>(V.EngineReuses));
  printCompileLine(Campaign, compileCounters());
  printTriageLine(Campaign, triageCounters());
  printFleetLine(Campaign, fleetCounters());
}

ExecOptions execOptionsFrom(const CliArgs &A) {
  ExecOptions Opts = ExecOptions::withThreads(
      static_cast<unsigned>(A.getInt("exec-threads", 1)));
  Opts.ShardSize =
      static_cast<unsigned>(A.getInt("shard-size", Opts.ShardSize));
  if (A.has("backend") &&
      !parseBackendKind(A.get("backend"), Opts.Backend)) {
    std::fprintf(
        stderr,
        "unknown backend '%s' (use inline, threads, procs or remote)\n",
        A.get("backend").c_str());
    std::exit(1);
  }
  applyRemoteOptions(A, Opts, "workers");
  applyCacheOptions(A, Opts);
  if (A.has("fleet-listen")) {
    if (Opts.Backend != BackendKind::Remote) {
      std::fprintf(stderr,
                   "--fleet-listen only makes sense with --backend=remote\n");
      std::exit(1);
    }
    std::string FleetHost = A.get("fleet-host", "127.0.0.1");
    try {
      Opts.Fleet = makeFleetRegistry(
          FleetHost, static_cast<unsigned>(A.getInt("fleet-listen", 0)));
    } catch (const std::exception &E) {
      std::fprintf(stderr, "%s\n", E.what());
      std::exit(1);
    }
    // Scripts parse this line to learn an ephemeral registry port;
    // stderr, because campaign stdout is byte-compared across fleet
    // shapes. Keep the format stable.
    std::fprintf(stderr, "clfuzz fleet: listening on %s:%u\n",
                 FleetHost.c_str(), Opts.Fleet->port());
  }
  return Opts;
}

/// makeBackend with CLI-grade errors: a malformed --workers entry or
/// a platform without sockets exits with a message instead of an
/// unhandled exception.
std::unique_ptr<ExecBackend> makeBackendOrDie(const ExecOptions &Opts) {
  try {
    return makeBackend(Opts);
  } catch (const std::exception &E) {
    std::fprintf(stderr, "%s\n", E.what());
    std::exit(1);
  }
}

int cmdDiff(const CliArgs &A) {
  DiffSpec Spec;
  // Validate the report format before any cell runs.
  Spec.Format = reportFormatFrom(A);
  Spec.Gen = genOptionsFrom(A);
  ExecOptions Opts = execOptionsFrom(A);
  std::unique_ptr<ExecBackend> Backend = makeBackendOrDie(Opts);
  // The task code is shared with `clfuzz sched`: a diff campaign
  // interleaved with others steps through exactly this path.
  std::unique_ptr<CampaignTask> Task = makeDiffTask(Spec, *Backend, stdout);
  runCampaignTask(*Task);
  printCacheStats(A, Opts, "diff");
  return Task->exitCode();
}

namespace {

/// Reduction scheduling options shared by `reduce` and
/// `hunt --reduce`: --reduce-backend picks the candidate-evaluation
/// backend, --reduce-jobs the worker count (for `reduce`: speculative
/// candidate evaluators; for `hunt`: concurrent background
/// reductions), --reduce-max the candidate budget. \p BuildCache is
/// false when the caller supplies a shared cache of its own (`hunt`
/// hands its campaign cache to the reduction queue).
ReducerOptions reducerOptionsFrom(const CliArgs &A,
                                  bool BuildCache = true) {
  ReducerOptions RO;
  RO.Exec = ExecOptions::withThreads(
      static_cast<unsigned>(A.getInt("reduce-jobs", 1)));
  if (A.has("reduce-backend") &&
      !parseBackendKind(A.get("reduce-backend"), RO.Exec.Backend)) {
    std::fprintf(stderr,
                 "unknown reduce backend '%s' (use inline, threads, "
                 "procs or remote)\n",
                 A.get("reduce-backend").c_str());
    std::exit(1);
  }
  // --reduce-backend=remote farms candidate probes to the worker
  // fleet too; it reuses --workers unless --reduce-workers names a
  // dedicated one.
  applyRemoteOptions(A, RO.Exec, "reduce-workers");
  // The descriptor-level cache subsumes the reducer's printed-form
  // cache across rounds: a re-probed candidate (crash and timeout
  // outcomes included) is answered without a fork.
  if (BuildCache)
    applyCacheOptions(A, RO.Exec);
  RO.MaxCandidates = static_cast<unsigned>(
      A.getInt("reduce-max", RO.MaxCandidates));
  if (A.has("no-pipeline"))
    RO.Pipeline = false;
  return RO;
}

int cmdReduce(const CliArgs &A) {
  if (!A.has("config")) {
    std::fprintf(stderr, "reduce: --config=ID is required (the "
                         "configuration the witness misbehaves on)\n");
    return 2;
  }
  ReduceSpec Spec;
  Spec.Expect = A.get("expect", "wrong");
  if (Spec.Expect != "wrong" && Spec.Expect != "crash" &&
      Spec.Expect != "timeout" && Spec.Expect != "build-failure") {
    std::fprintf(stderr,
                 "unknown --expect '%s' (use wrong, crash, timeout or "
                 "build-failure)\n",
                 Spec.Expect.c_str());
    return 2;
  }
  Spec.Gen = genOptionsFrom(A);
  Spec.ConfigId = static_cast<int>(A.getInt("config", 0));
  Spec.Opt = A.has("opt");
  Spec.Opts = reducerOptionsFrom(A);
  Spec.TracePath = A.get("trace");
  // The task code is shared with `clfuzz sched` (which additionally
  // points Spec.Opts.Backend at its shared backend); the report is
  // deliberately backend-silent, byte-identical across
  // --reduce-backend and --reduce-jobs.
  std::unique_ptr<CampaignTask> Task = makeReduceTask(Spec, stdout);
  runCampaignTask(*Task);
  printCacheStats(A, Spec.Opts.Exec, "reduce");
  return Task->exitCode();
}

/// `clfuzz triage`: reduce one wrong-code witness, then bisect the
/// optimisation pass pipeline for the minimal faulty pass combination
/// and derive the witness's bug-cluster key (src/triage/,
/// docs/triage.md). Probes evaluate on the reducer's backend
/// (--reduce-backend/--reduce-jobs), so the report is byte-identical
/// across backends, worker counts and cache states.
int cmdTriage(const CliArgs &A) {
  if (!A.has("config")) {
    std::fprintf(stderr, "triage: --config=ID is required (the "
                         "configuration the witness misbehaves on)\n");
    return 2;
  }
  TriageSpec Spec;
  Spec.Gen = genOptionsFrom(A);
  Spec.ConfigId = static_cast<int>(A.getInt("config", 0));
  Spec.Opt = A.has("opt");
  Spec.Opts = reducerOptionsFrom(A);
  Spec.Format = reportFormatFrom(A);
  // The task code is shared with `clfuzz sched` (which points
  // Spec.Opts.Backend at its shared backend instead).
  std::unique_ptr<CampaignTask> Task = makeTriageTask(Spec, stdout);
  runCampaignTask(*Task);
  printCacheStats(A, Spec.Opts.Exec, "triage");
  return Task->exitCode();
}

} // namespace

int cmdHunt(const CliArgs &A) {
  HuntSpec Spec;
  Spec.ModeName = A.get("mode", "ALL");
  Spec.Mode = modeByName(Spec.ModeName);
  Spec.Seed = A.getInt("seed", 1);
  Spec.Count = static_cast<unsigned>(A.getInt("count", 20));
  Spec.Format = reportFormatFrom(A);
  Spec.Reduce = A.has("reduce");
  Spec.ReduceTracePath = A.get("reduce-trace");
  Spec.Triage = A.has("triage");
  if (Spec.Triage && !Spec.Reduce) {
    std::fprintf(stderr,
                 "hunt: --triage bisects *reduced* witnesses and needs "
                 "--reduce (add --reduce, or use `clfuzz triage` for a "
                 "single witness)\n");
    return 2;
  }
  Spec.TriageOut = A.get("triage-out");
  Spec.TriageFormat = triageFormatFrom(A);

  ExecOptions Opts = execOptionsFrom(A);
  std::unique_ptr<ExecBackend> Backend = makeBackendOrDie(Opts);

  // Background reduction: wrong-code witnesses are queued for
  // shrinking as they are found and drained after the campaign, so
  // the hunt never stalls on a reduction. --reduce-jobs concurrent
  // reductions, each evaluating candidates on --reduce-backend.
  if (Spec.Reduce) {
    ReducerOptions RO = reducerOptionsFrom(A, /*BuildCache=*/false);
    RO.Exec.Threads = 1; // within one background job, evaluate serially
    // Campaign and background reductions share one cache: every
    // witness's probes start from the outcomes the hunt already paid
    // for, and the --stats counters cover both.
    RO.Exec.Cache = Opts.Cache;
    Spec.ReduceOpts = RO;
    // Solo hunts drain reductions on background threads — at least
    // one (ReduceWorkers == 0 means the scheduler-driven lane, and
    // there is no scheduler here to service it).
    Spec.ReduceWorkers = std::max<unsigned>(
        1, static_cast<unsigned>(A.getInt("reduce-jobs", 2)));
  }

  // The task code is shared with `clfuzz sched`: a hunt campaign
  // interleaved with others steps through exactly this path, so the
  // reports match byte for byte.
  HuntCampaign C =
      makeHuntCampaign(Spec, Opts.resolvedShardSize(), *Backend, stdout);
  runCampaignTask(*C.Main);
  printCacheStats(A, Opts, "hunt");
  return C.Main->exitCode();
}

/// The multi-campaign driver: `clfuzz sched --campaigns=SPEC` parses
/// a declaration list (sched/CampaignSpec.h grammar), builds one
/// CampaignTask per declaration through the same factories the solo
/// commands use, and multiplexes them over ONE shared backend via
/// CampaignScheduler. Each campaign writes to its own stream
/// (--out-dir=DIR files, or tmpfiles replayed to stdout in
/// declaration order), so every report is byte-identical to the
/// campaign's solo run. hunt(...,reduce) campaigns drain their
/// witnesses through a Reduction-lane task on the shared backend at
/// elevated dispatch priority. docs/scheduler.md is the manual.
int cmdSched(const CliArgs &A) {
  if (!A.has("campaigns")) {
    std::fprintf(
        stderr,
        "sched: --campaigns=SPEC (or --campaigns=@FILE) is required, "
        "e.g. --campaigns='hunt(count=50,reduce);diff(seed=9)'\n");
    return 2;
  }
  std::vector<CampaignDecl> Decls;
  std::string SpecError;
  if (!parseCampaignSpec(A.get("campaigns"), Decls, SpecError)) {
    std::fprintf(stderr, "sched: %s\n", SpecError.c_str());
    return 2;
  }

  SchedOptions SO;
  if (A.has("sched-policy") &&
      !parseSchedPolicy(A.get("sched-policy"), SO.Policy)) {
    std::fprintf(stderr, "unknown sched policy '%s' (use rr or yield)\n",
                 A.get("sched-policy").c_str());
    return 2;
  }
  SO.YieldWindow =
      static_cast<unsigned>(A.getInt("yield-window", SO.YieldWindow));
  SO.YieldBoost =
      static_cast<unsigned>(A.getInt("yield-boost", SO.YieldBoost));

  ExecOptions Opts = execOptionsFrom(A);
  SO.Cache = Opts.Cache;
  std::unique_ptr<ExecBackend> Backend = makeBackendOrDie(Opts);

  // Per-campaign report streams: --out-dir=DIR writes
  // <dir>/<name>.txt; otherwise each campaign buffers into a tmpfile
  // replayed to stdout in declaration order after the run, so
  // interleaving never scrambles a report.
  std::string OutDir = A.get("out-dir");
  std::vector<std::FILE *> Files;
  std::vector<std::string> Paths;
  for (const CampaignDecl &D : Decls) {
    std::FILE *F = nullptr;
    std::string Path;
    if (!OutDir.empty()) {
      std::string Base;
      for (char Ch : D.Name)
        Base += (std::isalnum(static_cast<unsigned char>(Ch)) ||
                 Ch == '.' || Ch == '_' || Ch == '-')
                    ? Ch
                    : '_';
      Path = OutDir + "/" + Base + ".txt";
      F = std::fopen(Path.c_str(), "w");
    } else {
      F = std::tmpfile();
    }
    if (!F) {
      std::fprintf(stderr, "sched: cannot open report stream %s\n",
                   Path.empty() ? "(tmpfile)" : Path.c_str());
      for (std::FILE *Open : Files)
        std::fclose(Open);
      return 1;
    }
    Files.push_back(F);
    Paths.push_back(Path);
  }

  CampaignScheduler Sched(*Backend, SO);
  std::vector<HuntCampaign> Hunts;
  std::vector<std::unique_ptr<CampaignTask>> Tasks;
  for (size_t I = 0; I != Decls.size(); ++I) {
    const CampaignDecl &D = Decls[I];
    // Declaration params reuse the solo flag names, so the spec
    // builders below mirror cmdDiff/cmdHunt/cmdReduce exactly.
    CliArgs Sub;
    Sub.Command = D.Type;
    Sub.Options = D.Params;
    std::FILE *Out = Files[I];
    unsigned ShardSize = static_cast<unsigned>(
        Sub.getInt("shard-size", Opts.resolvedShardSize()));
    if (D.Type == "diff") {
      DiffSpec Spec;
      Spec.Format = reportFormatFrom(Sub);
      Spec.Gen = genOptionsFrom(Sub);
      Tasks.push_back(makeDiffTask(Spec, *Backend, Out));
      Sched.add(D.Name, *Tasks.back());
    } else if (D.Type == "hunt") {
      HuntSpec Spec;
      Spec.ModeName = Sub.get("mode", "ALL");
      Spec.Mode = modeByName(Spec.ModeName);
      Spec.Seed = Sub.getInt("seed", 1);
      Spec.Count = static_cast<unsigned>(Sub.getInt("count", 20));
      Spec.Format = reportFormatFrom(Sub);
      Spec.Reduce = Sub.has("reduce");
      Spec.ReduceTracePath = Sub.get("reduce-trace");
      Spec.Triage = Sub.has("triage");
      if (Spec.Triage && !Spec.Reduce) {
        std::fprintf(stderr,
                     "sched: campaign '%s': triage needs reduce (it "
                     "bisects *reduced* witnesses)\n",
                     D.Name.c_str());
        return 2;
      }
      Spec.TriageOut = Sub.get("triage-out");
      Spec.TriageFormat = triageFormatFrom(Sub);
      if (Spec.Reduce) {
        // Scheduler-driven reduction: witnesses queue up and the
        // Reduction-lane task drains them through the SHARED backend
        // at elevated dispatch priority — no private threads, no
        // private backend.
        Spec.ReduceOpts.Backend = Backend.get();
        Spec.ReduceOpts.DispatchPriority = 1;
        Spec.ReduceOpts.Exec.Threads = 1;
        Spec.ReduceOpts.MaxCandidates = static_cast<unsigned>(Sub.getInt(
            "reduce-max", Spec.ReduceOpts.MaxCandidates));
        if (Sub.has("no-pipeline"))
          Spec.ReduceOpts.Pipeline = false;
        Spec.ReduceWorkers = 0;
      }
      HuntCampaign C = makeHuntCampaign(Spec, ShardSize, *Backend, Out);
      Sched.add(D.Name, *C.Main);
      if (C.Lane)
        Sched.add(D.Name + "/reduce", *C.Lane);
      Hunts.push_back(std::move(C));
    } else if (D.Type == "emi") {
      EmiSpec Spec;
      Spec.Bases = static_cast<unsigned>(Sub.getInt("bases", Spec.Bases));
      Spec.MinBlocks =
          static_cast<unsigned>(Sub.getInt("min-blocks", Spec.MinBlocks));
      Spec.MaxBlocks =
          static_cast<unsigned>(Sub.getInt("max-blocks", Spec.MaxBlocks));
      Spec.SeedBase = Sub.getInt("seed", Spec.SeedBase);
      Tasks.push_back(makeEmiTask(Spec, ShardSize, *Backend, Out));
      Sched.add(D.Name, *Tasks.back());
    } else if (D.Type == "triage") {
      if (!Sub.has("config")) {
        std::fprintf(stderr,
                     "sched: campaign '%s': config=ID is required\n",
                     D.Name.c_str());
        return 2;
      }
      TriageSpec Spec;
      Spec.Gen = genOptionsFrom(Sub);
      Spec.ConfigId = static_cast<int>(Sub.getInt("config", 0));
      Spec.Opt = Sub.has("opt");
      Spec.Format = reportFormatFrom(Sub);
      Spec.Opts.Backend = Backend.get();
      Spec.Opts.Exec.Threads = 1;
      Spec.Opts.MaxCandidates = static_cast<unsigned>(
          Sub.getInt("reduce-max", Spec.Opts.MaxCandidates));
      if (Sub.has("no-pipeline"))
        Spec.Opts.Pipeline = false;
      Tasks.push_back(makeTriageTask(Spec, Out));
      Sched.add(D.Name, *Tasks.back());
    } else { // "reduce" — parseCampaignSpec validated the type
      if (!Sub.has("config")) {
        std::fprintf(stderr,
                     "sched: campaign '%s': config=ID is required\n",
                     D.Name.c_str());
        return 2;
      }
      ReduceSpec Spec;
      Spec.Expect = Sub.get("expect", "wrong");
      if (Spec.Expect != "wrong" && Spec.Expect != "crash" &&
          Spec.Expect != "timeout" && Spec.Expect != "build-failure") {
        std::fprintf(stderr,
                     "sched: campaign '%s': unknown expect '%s' (use "
                     "wrong, crash, timeout or build-failure)\n",
                     D.Name.c_str(), Spec.Expect.c_str());
        return 2;
      }
      Spec.Gen = genOptionsFrom(Sub);
      Spec.ConfigId = static_cast<int>(Sub.getInt("config", 0));
      Spec.Opt = Sub.has("opt");
      Spec.TracePath = Sub.get("trace");
      Spec.Opts.Backend = Backend.get();
      Spec.Opts.Exec.Threads = 1;
      Spec.Opts.MaxCandidates = static_cast<unsigned>(
          Sub.getInt("reduce-max", Spec.Opts.MaxCandidates));
      if (Sub.has("no-pipeline"))
        Spec.Opts.Pipeline = false;
      Tasks.push_back(makeReduceTask(Spec, Out));
      Sched.add(D.Name, *Tasks.back());
    }
  }

  Sched.runToCompletion();

  int Exit = 0;
  for (const ScheduledCampaign &C : Sched.campaigns())
    Exit = std::max(Exit, C.Task->exitCode());

  for (size_t I = 0; I != Decls.size(); ++I) {
    std::fflush(Files[I]);
    if (!OutDir.empty()) {
      std::printf("campaign %s: %s\n", Decls[I].Name.c_str(),
                  Paths[I].c_str());
    } else {
      std::printf("=== campaign %s ===\n", Decls[I].Name.c_str());
      std::rewind(Files[I]);
      char Buf[4096];
      size_t N;
      while ((N = std::fread(Buf, 1, sizeof(Buf), Files[I])) > 0)
        std::fwrite(Buf, 1, N, stdout);
    }
    std::fclose(Files[I]);
  }
  std::printf("sched: %zu campaigns completed on the %s backend "
              "(policy %s, %zu grants)\n",
              Decls.size(), Backend->name(), schedPolicyName(SO.Policy),
              Sched.allocationTrace().size());

  // The per-campaign --stats breakdown. Serialized steps make the
  // attribution exact: the breakdown's cache and vm sums equal the
  // campaign=total lines (pinned by SchedulerConformanceTest).
  if (A.has("stats")) {
    for (const ScheduledCampaign &C : Sched.campaigns()) {
      std::fprintf(stderr,
                   "campaign=%s lane=%s steps=%zu tests=%zu jobs=%zu "
                   "witnesses=%zu\n",
                   C.Name.c_str(), schedLaneName(C.Task->lane()),
                   C.Stats.Steps, C.Stats.Tests, C.Stats.Jobs,
                   C.Stats.Witnesses);
      std::fprintf(
          stderr,
          "campaign=%s cache_hits=%llu cache_misses=%llu coalesced=%llu\n",
          C.Name.c_str(),
          static_cast<unsigned long long>(C.Stats.Cache.Hits),
          static_cast<unsigned long long>(C.Stats.Cache.Misses),
          static_cast<unsigned long long>(C.Stats.Cache.Coalesced));
      std::fprintf(
          stderr,
          "campaign=%s vm_dispatch=%s vm_instructions=%llu vm_fused=%llu "
          "vm_launches=%llu vm_engine_reuses=%llu\n",
          C.Name.c_str(), vmDispatchName(vmDispatchMode()),
          static_cast<unsigned long long>(C.Stats.VmInstructions),
          static_cast<unsigned long long>(C.Stats.VmFused),
          static_cast<unsigned long long>(C.Stats.VmLaunches),
          static_cast<unsigned long long>(C.Stats.VmEngineReuses));
      printCompileLine(C.Name.c_str(), C.Stats.Compile);
      printTriageLine(C.Name.c_str(), C.Stats.Triage);
      printFleetLine(C.Name.c_str(), C.Stats.Fleet);
    }
    printCacheStats(A, Opts, "total");
  }
  return Exit;
}

/// Runs a `clfuzz worker` process: a TCP job server remote campaigns
/// dispatch cells to (see docs/wire-protocol.md).
int cmdWorker(const CliArgs &A) {
  WorkerOptions WO;
  WO.Host = A.get("host", WO.Host);
  WO.Port = static_cast<unsigned>(A.getInt("listen", 0));
  WO.Connect = A.get("connect");
  WO.Jobs = static_cast<unsigned>(A.getInt("jobs", 1));
  WO.ProcTimeoutMs =
      static_cast<unsigned>(A.getInt("proc-timeout-ms", 0));
  WO.DieAfterJobs =
      static_cast<unsigned>(A.getInt("die-after-jobs", 0));
  WO.IgnoreJobs = A.has("ignore-jobs");
  WO.DrainAfterJobs =
      static_cast<unsigned>(A.getInt("drain-after-jobs", 0));
  WO.FlapAfterJobs =
      static_cast<unsigned>(A.getInt("flap-after-jobs", 0));
  WO.StaleJoins = static_cast<unsigned>(A.getInt("stale-joins", 0));
  std::string Mode = A.get("cache", A.has("cache-dir") ? "disk" : "off");
  if (!parseCacheMode(Mode, WO.Cache)) {
    std::fprintf(stderr, "unknown cache mode '%s' (use off, mem or disk)\n",
                 Mode.c_str());
    return 2;
  }
  WO.CacheDir = A.get("cache-dir");
  if (WO.Cache == CacheMode::Disk && WO.CacheDir.empty()) {
    std::fprintf(stderr, "--cache=disk needs --cache-dir=DIR\n");
    return 2;
  }
  WO.CacheMemMb = static_cast<unsigned>(A.getInt("cache-mem-mb", 0));
  return runWorkerCommand(WO);
}

int usage() {
  std::fprintf(
      stderr,
      "usage: clfuzz <command> [options]\n"
      "  gen     --mode=M --seed=N [--emi=K]      print a generated kernel\n"
      "  run     --seed=N [--mode=M] [--emi=K] [--config=ID] [--opt]\n"
      "                                           run one kernel\n"
      "  diff    --seed=N [--mode=M] [--emi=K]    run across the whole zoo\n"
      "  hunt    --mode=M --count=N [--seed=N]    mini differential campaign\n"
      "  reduce  --seed=N --config=ID [--opt]     shrink a witness kernel\n"
      "  triage  --seed=N --config=ID [--opt]     reduce a witness, bisect\n"
      "                                           the pass pipeline, derive\n"
      "                                           its bug-cluster key\n"
      "  sched   --campaigns=SPEC|@FILE           multiplex N campaigns\n"
      "                                           over one shared backend\n"
      "  worker  [--listen=PORT] [--host=H]       serve jobs to remote\n"
      "          [--connect=HOST:PORT]            campaigns over TCP (or\n"
      "                                           dial a coordinator's\n"
      "                                           fleet registry)\n"
      "  configs                                  list the 21 configurations\n"
      "diff/hunt: --backend=inline|threads|procs|remote --exec-threads=N\n"
      "  (1 = serial, 0 = all cores) --shard-size=N --format=text|csv|jsonl\n"
      "remote backend: --workers=host:port,... --remote-timeout-ms=N\n"
      "  --remote-heartbeat-ms=N (see `clfuzz worker`, docs/wire-protocol.md)\n"
      "  --fleet-listen=PORT (0 = ephemeral) --fleet-host=H open a\n"
      "  rendezvous registry: `clfuzz worker --connect=` workers join and\n"
      "  leave mid-campaign, output stays byte-identical (docs/fleet.md);\n"
      "  --stats adds a fleet_* counter line\n"
      "caching (diff/hunt/reduce/triage/worker): --cache=off|mem|disk\n"
      "  --cache-dir=DIR (implies disk) --cache-mem-mb=N; identical job\n"
      "  descriptors are served from cache, output stays byte-identical\n"
      "  (docs/caching.md); --stats prints cache_hits/cache_misses/\n"
      "  coalesced on stderr\n"
      "reduce: --expect=wrong|crash|timeout|build-failure\n"
      "  --reduce-backend=inline|threads|procs|remote --reduce-jobs=N\n"
      "  --reduce-max=N --trace=FILE --no-pipeline\n"
      "hunt --reduce: shrink witnesses in the background (--reduce-backend,\n"
      "  --reduce-jobs=N concurrent reductions, --reduce-max=N,\n"
      "  --reduce-trace=FILE, --no-pipeline; remote probes use\n"
      "  --reduce-workers or --workers)\n"
      "triage (and hunt --reduce --triage): bisect each reduced witness\n"
      "  over the optimization pass pipeline for the minimal faulty pass\n"
      "  combination; cluster by (pass set, feature signature) and report\n"
      "  distinct bugs vs raw witnesses (docs/triage.md); --triage needs\n"
      "  --reduce; --triage-out=FILE --triage-format=csv|jsonl write a\n"
      "  machine-readable report; `triage` accepts the reduce flags and\n"
      "  --format=text|csv|jsonl; reports are byte-identical across\n"
      "  backends, worker counts and cache states\n"
      "sched: --campaigns='type(key=val,flag,...);...' with types hunt,\n"
      "  diff, emi, reduce, triage; keys mirror the solo flags (e.g.\n"
      "  hunt(mode=BASIC,count=50,reduce); name=ID labels a campaign);\n"
      "  --sched-policy=rr|yield (--yield-window=N --yield-boost=N)\n"
      "  --out-dir=DIR per-campaign report files (default: buffered and\n"
      "  replayed to stdout); reductions run in a priority lane on the\n"
      "  shared backend; --stats adds campaign=<name> breakdown lines on\n"
      "  stderr; every report is byte-identical to the campaign's solo\n"
      "  run (docs/scheduler.md)\n"
      "worker: --jobs=N executor slots (0 = all cores) --proc-timeout-ms=N\n"
      "  per-job deadline; --drain-after-jobs=N leave gracefully after N\n"
      "  jobs; fault injection for tests: --die-after-jobs=N --ignore-jobs\n"
      "  --flap-after-jobs=N (die/redial loop) --stale-joins=N (announce a\n"
      "  stale cache generation in the first N joins)\n"
      "all commands: --vm-dispatch=switch|goto interpreter dispatch\n"
      "  strategy (byte-identical output, wall-clock only; docs/vm.md);\n"
      "  --compile-clone=on|off clone-don't-reparse front-end sharing\n"
      "  (byte-identical output, wall-clock only; docs/compile-pipeline.md);\n"
      "  --stats adds vm_* and compile_* counter lines on stderr\n");
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  CliArgs A = parse(Argc, Argv);
  // Interpreter tuning applies to every command (output is
  // byte-identical in either mode; only wall-clock speed changes).
  // The flag wins over the CLFUZZ_VM_DISPATCH environment variable.
  if (A.has("vm-dispatch")) {
    VmDispatch D;
    if (!parseVmDispatch(A.get("vm-dispatch").c_str(), D)) {
      std::fprintf(stderr, "unknown vm dispatch '%s' (use switch or goto)\n",
                   A.get("vm-dispatch").c_str());
      return 1;
    }
    setVmDispatchMode(D);
  }
  // Front-end sharing tuning, same contract as --vm-dispatch: output
  // is byte-identical on or off, only wall-clock speed changes. The
  // flag wins over the CLFUZZ_COMPILE_CLONE environment variable.
  if (A.has("compile-clone")) {
    std::string Mode = A.get("compile-clone");
    if (Mode != "on" && Mode != "off") {
      std::fprintf(stderr, "unknown compile-clone mode '%s' (use on or off)\n",
                   Mode.c_str());
      return 1;
    }
    setCompileCloneEnabled(Mode == "on");
  }
  // Campaign-time failures (the whole remote fleet unreachable, a
  // process pool that cannot fork) surface as exceptions from deep
  // inside a run; report them as errors, not as std::terminate.
  try {
    if (A.Command == "gen")
      return cmdGen(A);
    if (A.Command == "run")
      return cmdRun(A);
    if (A.Command == "diff")
      return cmdDiff(A);
    if (A.Command == "hunt")
      return cmdHunt(A);
    if (A.Command == "reduce")
      return cmdReduce(A);
    if (A.Command == "triage")
      return cmdTriage(A);
    if (A.Command == "sched")
      return cmdSched(A);
    if (A.Command == "worker")
      return cmdWorker(A);
    if (A.Command == "configs")
      return cmdConfigs();
  } catch (const std::exception &E) {
    std::fprintf(stderr, "clfuzz %s: %s\n", A.Command.c_str(), E.what());
    return 1;
  }
  return usage();
}
