//===- Campaign.h - Testing campaign drivers --------------------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drivers for the paper's three campaign experiments:
///
///  * initial classification against the 25% reliability threshold
///    over 600 kernels, 100 per mode (§7.1, Table 1);
///  * intensive CLsmith differential testing per mode over the
///    above-threshold configurations (§7.3, Table 4), with tests
///    pre-filtered to build and terminate on configuration 1+;
///  * CLsmith+EMI testing: base programs with 1-5 dead-by-construction
///    blocks, 40 prune variants each, voted per base (§7.4, Table 5),
///    with bases discarded when inverting the dead array does not
///    change the configuration-1 result (blocks landed in already-dead
///    code).
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_ORACLE_CAMPAIGN_H
#define CLFUZZ_ORACLE_CAMPAIGN_H

#include "emi/Emi.h"
#include "exec/Pipeline.h"
#include "oracle/Oracle.h"

#include <functional>
#include <map>

namespace clfuzz {

/// (configuration id, optimisations enabled) cell key.
struct ConfigKey {
  int ConfigId = 0;
  bool Opt = false;

  bool operator<(const ConfigKey &O) const {
    return ConfigId != O.ConfigId ? ConfigId < O.ConfigId : Opt < O.Opt;
  }
};

/// Shared campaign tuning.
struct CampaignSettings {
  unsigned KernelsPerMode = 40;
  GenOptions BaseGen;       ///< Mode and Seed are overridden per test
  RunSettings Run;
  /// Discard tests that fail to build or time out on configuration 1+
  /// (§7.3; keeps NVIDIA bf artificially at zero, as the paper notes).
  bool PrefilterOnConfig1 = true;
  uint64_t SeedBase = 100000;
  /// Campaign cell scheduling. Exec.Backend picks the ExecBackend
  /// (inline / thread pool / isolated worker processes), Exec.Threads
  /// the worker count, and Exec.ShardSize how many TestCases a mode
  /// holds alive at once (tests stream through the pipeline shard by
  /// shard). Tables are bit-identical for every backend, worker count
  /// and shard size. (EMI base sampling draws per-job random streams
  /// via Rng::forkForJob, so Table 5 results for a given seed differ
  /// from the pre-engine sequential code — but not between backends
  /// or thread counts.)
  ExecOptions Exec;
  /// Optional progress callback (tests completed, total). Always
  /// invoked from the campaign's calling thread — never from a worker
  /// thread or subprocess; the pipeline runner relays completions to
  /// the submitter between shards (pinned by
  /// tests/BackendConformanceTest.cpp).
  std::function<void(unsigned, unsigned)> Progress;
};

/// One per-mode block of Table 4.
struct ModeTable {
  GenMode Mode = GenMode::Basic;
  unsigned NumTests = 0;
  std::map<ConfigKey, OutcomeCounts> Cells;
};

/// Runs the Table 4 campaign over \p Configs (both opt levels each).
std::vector<ModeTable>
runDifferentialCampaign(const std::vector<DeviceConfig> &Configs,
                        const std::vector<GenMode> &Modes,
                        const CampaignSettings &Settings);

/// One Table 1 row's classification.
struct ReliabilityRow {
  int ConfigId = 0;
  OutcomeCounts Counts; ///< pooled over both opt levels
  bool AboveThreshold = false;
};

/// Runs the §7.1 initial classification: KernelsPerMode per mode over
/// every configuration, threshold at 25% failures.
std::vector<ReliabilityRow>
classifyConfigurations(const std::vector<DeviceConfig> &Configs,
                       const CampaignSettings &Settings,
                       double Threshold = 0.25);

/// Table 5 campaign settings.
struct EmiCampaignSettings {
  unsigned NumBases = 10;
  unsigned MinEmiBlocks = 1;
  unsigned MaxEmiBlocks = 5;
  CampaignSettings Base;
};

/// One Table 5 column (configuration at one opt level).
struct EmiCampaignColumn {
  ConfigKey Key;
  unsigned BaseFails = 0;
  unsigned Wrong = 0;
  unsigned InducedBF = 0;
  unsigned InducedCrash = 0;
  unsigned InducedTimeout = 0;
  unsigned Stable = 0;
};

/// Runs the §7.4 CLsmith+EMI campaign. Returns one column per
/// (configuration, opt) plus the number of usable bases through
/// \p UsableBases.
std::vector<EmiCampaignColumn>
runEmiCampaign(const std::vector<DeviceConfig> &Configs,
               const EmiCampaignSettings &Settings,
               unsigned &UsableBases);

} // namespace clfuzz

#endif // CLFUZZ_ORACLE_CAMPAIGN_H
