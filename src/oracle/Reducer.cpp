//===- Reducer.cpp - Backend-driven test-case reduction ----------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// The reduction engine is a composition of the streaming campaign
// pipeline: each round's speculative candidates are pulled from a
// ReductionCandidateSource (which prints the next chunk's candidates
// on a helper thread while the current chunk evaluates - the
// pipelining is invisible in results), executed as ExecJobs on the
// reducer's ExecBackend, and judged by a ReductionAcceptSink in
// submission order. Acceptance is first-accepted-in-submission-order
// and every decision (emission, skip, charge, accept) is made on the
// calling thread from sequentially-updated state, so the reduction
// sequence, the stats and the trace are bit-identical across
// backends, worker counts and pipelining.
//
//===----------------------------------------------------------------------===//

#include "oracle/Reducer.h"
#include "exec/Pipeline.h"
#include "minicl/ASTQueries.h"
#include "minicl/Parser.h"
#include "minicl/Printer.h"
#include "minicl/Sema.h"
#include "support/StringUtil.h"

#include <algorithm>
#include <future>
#include <unordered_set>

using namespace clfuzz;

ReductionOracle::~ReductionOracle() = default;

void DifferentialReductionOracle::expandJobs(
    const TestCase &Candidate, std::vector<ExecJob> &Jobs) const {
  // The reference probe is also the §8 concurrency-aware validation
  // (selfValidates()): race detection rides along, so the reducer
  // does not schedule a second reference run per candidate.
  RunSettings Validating = Run;
  Validating.DetectRaces = true;
  Jobs.push_back(ExecJob::onReference(Candidate, /*Opt=*/false, Validating));
  Jobs.push_back(ExecJob::onConfig(Candidate, Config, Opt, Run));
}

bool DifferentialReductionOracle::judge(
    const std::vector<RunOutcome> &Outcomes) const {
  return Outcomes.size() == 2 && Outcomes[0].ok() &&
         !Outcomes[0].RaceFound && Outcomes[1].ok() &&
         Outcomes[0].OutputHash != Outcomes[1].OutputHash;
}

void StatusReductionOracle::expandJobs(const TestCase &Candidate,
                                       std::vector<ExecJob> &Jobs) const {
  Jobs.push_back(ExecJob::onConfig(Candidate, Config, Opt, Run));
}

bool StatusReductionOracle::judge(
    const std::vector<RunOutcome> &Outcomes) const {
  return Outcomes.size() == 1 && Outcomes[0].Status == Want;
}

namespace {

/// One candidate mutation: either delete the statement at a position,
/// replace it with a simplification, or drop an uncalled function.
struct Mutation {
  enum class Kind : uint8_t {
    DeleteStmt,
    IfToThen,
    DropElse,
    LoopToBody,
    DeleteFunction,
  };
  Kind K;
  unsigned FunctionIndex;
  std::vector<unsigned> Path; ///< child indices from the body downward
};

constexpr unsigned NumMutationClasses = 5;

const char *mutationClassName(Mutation::Kind K) {
  switch (K) {
  case Mutation::Kind::DeleteStmt:
    return "delete-stmt";
  case Mutation::Kind::IfToThen:
    return "if-to-then";
  case Mutation::Kind::DropElse:
    return "drop-else";
  case Mutation::Kind::LoopToBody:
    return "loop-to-body";
  case Mutation::Kind::DeleteFunction:
    return "delete-function";
  }
  return "";
}

/// True if any function in the program calls \p F.
bool functionIsCalled(const Program &Prog, const FunctionDecl *F) {
  bool Called = false;
  for (const FunctionDecl *Caller : Prog.functions()) {
    if (!Caller->getBody())
      continue;
    forEachExpr(Caller->getBody(), [&](const Expr *E) {
      if (const auto *C = dyn_cast<CallExpr>(E))
        if (C->getCallee() == F)
          Called = true;
    });
  }
  return Called;
}

/// Resolves a path to a mutable slot (the vector element holding the
/// statement). Returns null when the path no longer resolves.
Stmt **resolvePath(FunctionDecl *F, const std::vector<unsigned> &Path) {
  if (!F->getBody())
    return nullptr;
  CompoundStmt *C = F->getBody();
  Stmt **Slot = nullptr;
  for (size_t I = 0; I != Path.size(); ++I) {
    unsigned Idx = Path[I];
    if (Idx >= C->body().size())
      return nullptr;
    Slot = &C->body()[Idx];
    if (I + 1 == Path.size())
      return Slot;
    // Descend only through nested compounds (paths are built that way).
    C = dyn_cast<CompoundStmt>(*Slot);
    if (!C)
      return nullptr;
  }
  return Slot;
}

/// Enumerates mutations over the (freshly parsed) program.
void collectMutations(const Program &Prog, std::vector<Mutation> &Out) {
  for (unsigned FI = 0; FI != Prog.functions().size(); ++FI) {
    const FunctionDecl *F = Prog.functions()[FI];
    if (!F->isKernel() && !functionIsCalled(Prog, F))
      Out.push_back({Mutation::Kind::DeleteFunction, FI, {}});
    if (!F->getBody())
      continue;
    std::function<void(const CompoundStmt *, std::vector<unsigned>)>
        Walk = [&](const CompoundStmt *C, std::vector<unsigned> Path) {
          for (unsigned I = 0; I != C->body().size(); ++I) {
            const Stmt *S = C->body()[I];
            std::vector<unsigned> Here = Path;
            Here.push_back(I);
            // Returns are structural (non-void functions need them).
            if (!isa<ReturnStmt>(S))
              Out.push_back(
                  {Mutation::Kind::DeleteStmt, FI, Here});
            if (const auto *If = dyn_cast<IfStmt>(S)) {
              Out.push_back({Mutation::Kind::IfToThen, FI, Here});
              if (If->getElse())
                Out.push_back({Mutation::Kind::DropElse, FI, Here});
            }
            if (isa<ForStmt, WhileStmt, DoStmt>(S))
              Out.push_back({Mutation::Kind::LoopToBody, FI, Here});
            if (const auto *CC = dyn_cast<CompoundStmt>(S))
              Walk(CC, Here);
          }
        };
    Walk(F->getBody(), {});
  }
}

/// Applies one mutation to the parsed program in \p Ctx. Returns false
/// when the mutation no longer applies.
bool applyOneMutation(ASTContext &Ctx, const Mutation &M) {
  if (M.FunctionIndex >= Ctx.program().functions().size())
    return false;
  FunctionDecl *F = Ctx.program().functions()[M.FunctionIndex];

  if (M.K == Mutation::Kind::DeleteFunction) {
    if (F->isKernel() || functionIsCalled(Ctx.program(), F))
      return false;
    return Ctx.program().removeFunction(F);
  }

  Stmt **Slot = resolvePath(F, M.Path);
  if (!Slot)
    return false;

  switch (M.K) {
  case Mutation::Kind::DeleteStmt:
    *Slot = Ctx.makeStmt<NullStmt>();
    return true;
  case Mutation::Kind::IfToThen: {
    auto *If = dyn_cast<IfStmt>(*Slot);
    if (!If)
      return false;
    *Slot = If->getThen();
    return true;
  }
  case Mutation::Kind::DropElse: {
    auto *If = dyn_cast<IfStmt>(*Slot);
    if (!If || !If->getElse())
      return false;
    If->setElse(nullptr);
    return true;
  }
  case Mutation::Kind::LoopToBody: {
    if (auto *For = dyn_cast<ForStmt>(*Slot)) {
      std::vector<Stmt *> Seq;
      if (For->getInit())
        Seq.push_back(For->getInit());
      Seq.push_back(For->getBody());
      *Slot = Ctx.makeStmt<CompoundStmt>(std::move(Seq));
      return true;
    }
    if (auto *W = dyn_cast<WhileStmt>(*Slot)) {
      *Slot = W->getBody();
      return true;
    }
    if (auto *D = dyn_cast<DoStmt>(*Slot)) {
      *Slot = D->getBody();
      return true;
    }
    return false;
  }
  case Mutation::Kind::DeleteFunction:
    break; // handled above
  }
  return false;
}

/// Erases no-op null statements from every compound under \p S.
/// DeleteStmt substitutes a NullStmt so sibling paths stay stable
/// while a mutation group applies; stripping them before printing is
/// what makes a deletion actually shrink the candidate instead of
/// leaving a ";" line behind.
void stripNullStmts(Stmt *S) {
  if (auto *C = dyn_cast<CompoundStmt>(S)) {
    std::vector<Stmt *> &Body = C->body();
    for (Stmt *Child : Body)
      stripNullStmts(Child);
    Body.erase(std::remove_if(Body.begin(), Body.end(),
                              [](Stmt *Child) { return isa<NullStmt>(Child); }),
               Body.end());
    return;
  }
  if (auto *If = dyn_cast<IfStmt>(S)) {
    stripNullStmts(If->getThen());
    if (If->getElse())
      stripNullStmts(If->getElse());
    return;
  }
  if (auto *For = dyn_cast<ForStmt>(S)) {
    stripNullStmts(For->getBody());
    return;
  }
  if (auto *W = dyn_cast<WhileStmt>(S)) {
    stripNullStmts(W->getBody());
    return;
  }
  if (auto *D = dyn_cast<DoStmt>(S)) {
    stripNullStmts(D->getBody());
    return;
  }
}

void stripNullStmts(Program &Prog) {
  for (FunctionDecl *F : Prog.functions())
    if (F->getBody())
      stripNullStmts(F->getBody());
}

/// Applies the mutation group [Begin, Begin+Count) to a freshly parsed
/// copy of \p Source; returns the new source, or an empty string when
/// the group is inapplicable or yields an invalid program. Statement
/// mutations apply first (their paths were enumerated against the
/// unmutated program and in-slot substitutions keep sibling paths
/// stable); function deletions apply last in descending index order so
/// earlier removals cannot shift a later victim's index.
std::string applyMutationGroup(const std::string &Source,
                               const Mutation *Begin, size_t Count) {
  ASTContext Ctx;
  DiagEngine Diags;
  if (!parseProgram(Source, Ctx, Diags))
    return {};

  std::vector<const Mutation *> Stmts, Funcs;
  for (size_t I = 0; I != Count; ++I) {
    const Mutation &M = Begin[I];
    (M.K == Mutation::Kind::DeleteFunction ? Funcs : Stmts).push_back(&M);
  }
  std::stable_sort(Funcs.begin(), Funcs.end(),
                   [](const Mutation *A, const Mutation *B) {
                     return A->FunctionIndex > B->FunctionIndex;
                   });

  for (const Mutation *M : Stmts)
    if (!applyOneMutation(Ctx, *M))
      return {};
  for (const Mutation *M : Funcs)
    if (!applyOneMutation(Ctx, *M))
      return {};
  stripNullStmts(Ctx.program());

  DiagEngine Post;
  if (!checkProgram(Ctx, Post))
    return {};
  return printProgram(Ctx.program(), Ctx.types());
}

//===----------------------------------------------------------------------===//
// Priority-guided mutation ordering
//===----------------------------------------------------------------------===//

/// Accepted-delta history per mutation class. The score is the
/// Laplace-smoothed expected number of lines saved per attempt; the
/// prior encodes that dropping a dead function outshrinks unwrapping a
/// loop outshrinks deleting one statement. History only ever reflects
/// the deterministic observed prefix, so the ordering - and therefore
/// the whole search - is identical on every backend.
struct ClassHistory {
  double Tried = 0;
  double LinesSaved = 0;
};

constexpr double PriorWeight = 4.0;

double priorMeanSaved(Mutation::Kind K) {
  switch (K) {
  case Mutation::Kind::DeleteFunction:
    return 4.0;
  case Mutation::Kind::LoopToBody:
    return 1.5;
  case Mutation::Kind::IfToThen:
    return 1.25;
  case Mutation::Kind::DropElse:
    return 1.0;
  case Mutation::Kind::DeleteStmt:
    return 0.75;
  }
  return 0.0;
}

double classScore(const ClassHistory &H, Mutation::Kind K) {
  return (H.LinesSaved + PriorWeight * priorMeanSaved(K)) /
         (H.Tried + PriorWeight);
}

//===----------------------------------------------------------------------===//
// Round state shared by the source and the sink
//===----------------------------------------------------------------------===//

/// Per-round shared state. The pipeline runner alternates source pulls
/// and sink consumption on the calling thread, so all of this is
/// updated sequentially; only candidate *printing* happens off-thread.
struct RoundCtx {
  const TestCase &Best;
  const std::vector<Mutation> &Sorted; ///< priority order
  unsigned Combo = 1;                  ///< mutations per candidate
  size_t NumGroups = 0;

  ReduceStats &Stats;
  std::unordered_set<std::string> &Rejected; ///< cross-round verdict cache
  std::unordered_set<std::string> EmittedThisRound;

  /// Emission log, indexed by the round-local test index: the group
  /// each emitted candidate came from, and how many candidates were
  /// skipped (unprintable / duplicate / known-rejected) since the
  /// previous emission. Skips are charged to stats only when the
  /// emission they precede is observed, which keeps the skip counts
  /// chunk- and backend-invariant even when a round is cut short by an
  /// acceptance.
  std::vector<size_t> EmittedGroup;
  std::vector<unsigned> SkipsBeforeEmit;
  unsigned PendingSkips = 0;
  unsigned TrailingSkips = 0;

  bool Accepted = false;
  std::string AcceptedSource;
  size_t AcceptedGroup = 0;
  unsigned AcceptedCandidateNo = 0;

  RoundCtx(const TestCase &Best, const std::vector<Mutation> &Sorted,
           unsigned Combo, ReduceStats &Stats,
           std::unordered_set<std::string> &Rejected)
      : Best(Best), Sorted(Sorted), Combo(Combo),
        NumGroups((Sorted.size() + Combo - 1) / Combo), Stats(Stats),
        Rejected(Rejected) {}

  size_t groupBegin(size_t Group) const { return Group * Combo; }
  size_t groupSize(size_t Group) const {
    return std::min<size_t>(Combo, Sorted.size() - groupBegin(Group));
  }
  const Mutation &groupLead(size_t Group) const {
    return Sorted[groupBegin(Group)];
  }
};

/// A printed (but not yet filtered) candidate.
struct PrintedCandidate {
  size_t Group = 0;
  std::string Source; ///< empty = mutation group was inapplicable
};

/// Streams one round's candidates as TestCases in priority order.
/// Printing a candidate (parse + mutate + sema + print) costs about as
/// much as evaluating a small kernel, so when pipelining is on the
/// next window is printed on a helper thread while the caller runs the
/// current window's probe jobs on the backend; the prefetch reads only
/// round-immutable state and is joined before its results are
/// observed, so it never changes anything but wall-clock time.
class ReductionCandidateSource final : public TestSource {
public:
  ReductionCandidateSource(RoundCtx &Ctx, unsigned Window, bool Pipeline,
                           unsigned EmitBudget)
      : Ctx(Ctx), Window(std::max(Window, 1u)), Pipeline(Pipeline),
        EmitLeft(EmitBudget) {}

  std::vector<TestCase> next(unsigned MaxShard) override {
    std::vector<TestCase> Shard;
    if (Ctx.Accepted || EmitLeft == 0)
      return Shard;

    for (;;) {
      if (CarryPos == Carry.size()) {
        if (NextGroup >= Ctx.NumGroups)
          break;
        Carry = takeWindow();
        CarryPos = 0;
      }
      while (CarryPos != Carry.size()) {
        if (EmitLeft == 0)
          return Shard; // candidate budget: drop the round's tail
        PrintedCandidate P = std::move(Carry[CarryPos++]);
        if (P.Source.empty() || P.Source == Ctx.Best.Source ||
            Ctx.Rejected.count(P.Source) ||
            !Ctx.EmittedThisRound.insert(P.Source).second) {
          ++Ctx.PendingSkips;
          continue;
        }
        Ctx.EmittedGroup.push_back(P.Group);
        Ctx.SkipsBeforeEmit.push_back(Ctx.PendingSkips);
        Ctx.PendingSkips = 0;
        TestCase C = Ctx.Best;
        C.Source = std::move(P.Source);
        Shard.push_back(std::move(C));
        --EmitLeft;
        if (Shard.size() == MaxShard)
          return Shard;
      }
    }
    // Full drain: the round ran to its end, so the trailing skips are
    // observable on every backend.
    Ctx.TrailingSkips += Ctx.PendingSkips;
    Ctx.PendingSkips = 0;
    return Shard;
  }

private:
  /// Prints the mutation groups [Begin, Begin+N) against the round's
  /// base source. Pure: reads only round-immutable state.
  std::vector<PrintedCandidate> printWindow(size_t Begin, size_t N) const {
    std::vector<PrintedCandidate> Out;
    Out.reserve(N);
    for (size_t G = Begin; G != Begin + N; ++G)
      Out.push_back({G, applyMutationGroup(
                            Ctx.Best.Source,
                            Ctx.Sorted.data() + Ctx.groupBegin(G),
                            Ctx.groupSize(G))});
    return Out;
  }

  std::vector<PrintedCandidate> takeWindow() {
    size_t N = std::min<size_t>(Window, Ctx.NumGroups - NextGroup);
    std::vector<PrintedCandidate> Out =
        Prefetch.valid() ? Prefetch.get() : printWindow(NextGroup, N);
    NextGroup += N;
    if (Pipeline && NextGroup < Ctx.NumGroups) {
      size_t Ahead = std::min<size_t>(Window, Ctx.NumGroups - NextGroup);
      Prefetch = std::async(std::launch::async,
                            [this, Begin = NextGroup, Ahead] {
                              return printWindow(Begin, Ahead);
                            });
    }
    return Out;
  }

  RoundCtx &Ctx;
  unsigned Window;
  bool Pipeline;
  unsigned EmitLeft;
  size_t NextGroup = 0;
  std::vector<PrintedCandidate> Carry; ///< printed, not yet filtered
  size_t CarryPos = 0;
  std::future<std::vector<PrintedCandidate>> Prefetch;
};

/// Judges each candidate's probe outcomes in submission order and
/// records the first acceptance; everything past it (and past the
/// candidate budget) is speculative work, discarded unobserved so the
/// observable sequence replays a serial run exactly.
class ReductionAcceptSink final : public ResultSink {
public:
  using JudgeFn =
      std::function<bool(const TestCase &, const std::vector<RunOutcome> &)>;

  ReductionAcceptSink(RoundCtx &Ctx, const JudgeFn &Judge,
                      ClassHistory *History, unsigned MaxCandidates,
                      const ReduceTraceFn &Trace)
      : Ctx(Ctx), Judge(Judge), History(History),
        MaxCandidates(MaxCandidates), Trace(Trace) {}

  void consumeTest(size_t Index, const TestCase &T,
                   const std::vector<RunOutcome> &Outcomes) override {
    if (Ctx.Accepted || Ctx.Stats.CandidatesTried >= MaxCandidates)
      return;
    Ctx.Stats.CandidatesSkipped += Ctx.SkipsBeforeEmit[Index];
    ++Ctx.Stats.CandidatesTried;
    size_t Group = Ctx.EmittedGroup[Index];

    if (!Judge(T, Outcomes)) {
      Ctx.Rejected.insert(T.Source);
      chargeGroup(Group, /*LinesSaved=*/0.0);
      if (Trace) {
        ReduceTraceEvent E;
        E.K = ReduceTraceEvent::Kind::Reject;
        E.Round = Ctx.Stats.Rounds;
        E.Candidate = Ctx.Stats.CandidatesTried;
        E.MutationClass = mutationClassName(Ctx.groupLead(Group).K);
        E.Combo = Ctx.Combo;
        Trace(E);
      }
      return;
    }

    Ctx.Accepted = true;
    Ctx.AcceptedSource = T.Source;
    Ctx.AcceptedGroup = Group;
    Ctx.AcceptedCandidateNo = Ctx.Stats.CandidatesTried;
  }

  /// Attributes one attempt (and, for acceptances, the saved lines) to
  /// the group's mutation classes, weighted so a combo counts as one
  /// attempt in total.
  void chargeGroup(size_t Group, double LinesSaved) {
    size_t Begin = Ctx.groupBegin(Group), N = Ctx.groupSize(Group);
    double W = 1.0 / static_cast<double>(N);
    for (size_t I = Begin; I != Begin + N; ++I) {
      ClassHistory &H =
          History[static_cast<unsigned>(Ctx.Sorted[I].K)];
      H.Tried += W;
      H.LinesSaved += LinesSaved * W;
    }
  }

private:
  RoundCtx &Ctx;
  const JudgeFn &Judge;
  ClassHistory *History;
  unsigned MaxCandidates;
  const ReduceTraceFn &Trace;
};

//===----------------------------------------------------------------------===//
// The reduction loop
//===----------------------------------------------------------------------===//

using ExpandFn =
    std::function<void(const TestCase &, std::vector<ExecJob> &)>;

TestCase reduceImpl(const TestCase &Input, const ExpandFn &Expand,
                    const ReductionAcceptSink::JudgeFn &Judge,
                    const ReducerOptions &Opts, ReduceStats *Stats) {
  TestCase Best = Input;
  ReduceStats Local;
  // Normalise the source through the printer (null statements
  // stripped) so line counts compare like with like.
  {
    ASTContext Ctx;
    DiagEngine Diags;
    if (parseProgram(Best.Source, Ctx, Diags)) {
      stripNullStmts(Ctx.program());
      Best.Source = printProgram(Ctx.program(), Ctx.types());
    }
  }
  Local.InitialLines = countCodeLines(Best.Source);

  // A caller-injected backend (Opts.Backend — the scheduler's shared
  // fleet) takes precedence; otherwise the reducer owns its own.
  std::unique_ptr<ExecBackend> Owned;
  ExecBackend *Backend = Opts.Backend;
  if (!Backend) {
    Owned = makeBackend(Opts.Exec);
    Backend = Owned.get();
  }

  auto Finish = [&] {
    Local.FinalLines = countCodeLines(Best.Source);
    if (Opts.Trace) {
      ReduceTraceEvent E;
      E.K = ReduceTraceEvent::Kind::Finish;
      E.Rounds = Local.Rounds;
      E.Escalations = Local.Escalations;
      E.Tried = Local.CandidatesTried;
      E.Kept = Local.CandidatesKept;
      E.Skipped = Local.CandidatesSkipped;
      E.Lines = Local.FinalLines;
      Opts.Trace(E);
    }
    if (Stats)
      *Stats = Local;
    return Best;
  };

  // Probe the witness itself first: it establishes the invariant that
  // Best is always interesting, and (under procs) forks the worker
  // pool before any pipelining thread exists.
  {
    std::vector<ExecJob> Jobs;
    Expand(Best, Jobs);
    // One test's cells: a single column, so the worker parses the
    // witness once for all its admissible cells.
    std::vector<ExecColumn> Cols = groupIntoColumns(Jobs);
    std::vector<RunOutcome> Outs =
        Opts.DispatchPriority != 0
            ? Backend->runColumnsPrioritized(
                  Cols, std::vector<unsigned>(Cols.size(),
                                              Opts.DispatchPriority))
            : Backend->runColumns(Cols);
    bool Interesting = Judge(Best, Outs);
    if (Opts.Trace) {
      ReduceTraceEvent E;
      E.K = ReduceTraceEvent::Kind::Witness;
      E.Interesting = Interesting;
      E.Lines = Local.InitialLines;
      Opts.Trace(E);
    }
    if (!Interesting) {
      Local.WitnessWasInteresting = false;
      return Finish();
    }
  }

  // Speculation width: serial backends evaluate one candidate at a
  // time (the historical early-exit loop); parallel backends speculate
  // a chunk ahead and keep the first-in-order success.
  const unsigned Chunk =
      Backend->concurrency() > 1 ? Backend->concurrency() * 2 : 1;

  ClassHistory History[NumMutationClasses];
  std::unordered_set<std::string> Rejected;
  unsigned Stalls = 0;
  unsigned Combo = 1;
  const unsigned MaxCombo = std::max(1u, Opts.MaxMultiMutations);

  while (Local.CandidatesTried < Opts.MaxCandidates) {
    ASTContext Ctx;
    DiagEngine Diags;
    if (!parseProgram(Best.Source, Ctx, Diags))
      break;
    std::vector<Mutation> Sorted;
    collectMutations(Ctx.program(), Sorted);
    if (Sorted.empty())
      break;

    // Priority order: classes by expected shrinkage, stable within a
    // class (enumeration order breaks ties), so the ordering is a pure
    // function of the deterministic acceptance history.
    double Score[NumMutationClasses];
    for (unsigned K = 0; K != NumMutationClasses; ++K)
      Score[K] = classScore(History[K], static_cast<Mutation::Kind>(K));
    std::stable_sort(Sorted.begin(), Sorted.end(),
                     [&](const Mutation &A, const Mutation &B) {
                       return Score[static_cast<unsigned>(A.K)] >
                              Score[static_cast<unsigned>(B.K)];
                     });

    ++Local.Rounds;
    unsigned LinesBefore = countCodeLines(Best.Source);
    RoundCtx Round(Best, Sorted, Combo, Local, Rejected);
    if (Opts.Trace) {
      ReduceTraceEvent E;
      E.K = ReduceTraceEvent::Kind::Round;
      E.Round = Local.Rounds;
      E.Combo = Combo;
      E.Enumerated = static_cast<unsigned>(Round.NumGroups);
      E.Lines = LinesBefore;
      Opts.Trace(E);
    }

    ReductionAcceptSink Sink(Round, Judge, History, Opts.MaxCandidates,
                             Opts.Trace);
    {
      // The source owns the pipelining prefetch; its destruction at
      // this scope's end joins any in-flight printing thread, so
      // everything below - in particular the acceptance's mutation of
      // Best.Source, which the prefetch reads - runs strictly after
      // the round's helper work finished.
      ReductionCandidateSource Source(
          Round, Chunk, Opts.Pipeline,
          Opts.MaxCandidates - Local.CandidatesTried);
      ShardedCampaignRun CandidateRun(
          Source, *Backend, Chunk,
          [&](size_t, const TestCase &T, std::vector<ExecJob> &Jobs) {
            Expand(T, Jobs);
          },
          Sink);
      while (CandidateRun.step(Opts.DispatchPriority))
        ;
    }

    if (Round.Accepted) {
      Best.Source = std::move(Round.AcceptedSource);
      unsigned LinesAfter = countCodeLines(Best.Source);
      ++Local.CandidatesKept;
      Sink.chargeGroup(Round.AcceptedGroup,
                       LinesBefore > LinesAfter
                           ? static_cast<double>(LinesBefore - LinesAfter)
                           : 0.0);
      if (Opts.Trace) {
        ReduceTraceEvent E;
        E.K = ReduceTraceEvent::Kind::Accept;
        E.Round = Local.Rounds;
        E.Candidate = Round.AcceptedCandidateNo;
        E.MutationClass =
            mutationClassName(Round.groupLead(Round.AcceptedGroup).K);
        E.Combo = Combo;
        E.Lines = LinesAfter;
        Opts.Trace(E);
      }
      Combo = 1;
      Stalls = 0;
      continue;
    }

    Local.CandidatesSkipped += Round.TrailingSkips;

    // A stalled round means every candidate at this combo size is
    // known-rejected; escalate to joint mutations (2, 4, ...) before
    // concluding the witness is minimal.
    if (++Stalls < std::max(1u, Opts.EscalateAfterStalls))
      continue;
    unsigned NextCombo = Combo == 1 ? 2 : Combo * 2;
    if (NextCombo > MaxCombo)
      break;
    Combo = NextCombo;
    Stalls = 0;
    ++Local.Escalations;
  }

  return Finish();
}

} // namespace

TestCase clfuzz::reduceTest(const TestCase &Input,
                            const ReductionOracle &Oracle,
                            const ReducerOptions &Opts,
                            ReduceStats *Stats) {
  RunSettings Validate = Opts.Run;
  Validate.DetectRaces = true;
  const bool DoValidate =
      Opts.ValidateOnReference && !Oracle.selfValidates();

  ExpandFn Expand = [&Oracle, DoValidate,
                     Validate](const TestCase &T,
                               std::vector<ExecJob> &Jobs) {
    if (DoValidate)
      Jobs.push_back(ExecJob::onReference(T, /*Opt=*/false, Validate));
    Oracle.expandJobs(T, Jobs);
  };
  ReductionAcceptSink::JudgeFn Judge =
      [&Oracle, DoValidate](const TestCase &,
                            const std::vector<RunOutcome> &Outs) {
        size_t Off = 0;
        if (DoValidate) {
          if (Outs.empty() || !Outs[0].ok() || Outs[0].RaceFound)
            return false;
          Off = 1;
        }
        return Oracle.judge(std::vector<RunOutcome>(
            Outs.begin() + Off, Outs.end()));
      };
  return reduceImpl(Input, Expand, Judge, Opts, Stats);
}

TestCase clfuzz::reduceTest(
    const TestCase &Input,
    const std::function<bool(const TestCase &)> &StillInteresting,
    const ReducerOptions &Opts, ReduceStats *Stats) {
  RunSettings Validate = Opts.Run;
  Validate.DetectRaces = true;
  const bool DoValidate = Opts.ValidateOnReference;

  ExpandFn Expand = [DoValidate, Validate](const TestCase &T,
                                           std::vector<ExecJob> &Jobs) {
    if (DoValidate)
      Jobs.push_back(ExecJob::onReference(T, /*Opt=*/false, Validate));
  };
  ReductionAcceptSink::JudgeFn Judge =
      [&StillInteresting, DoValidate](const TestCase &T,
                                      const std::vector<RunOutcome> &Outs) {
        if (DoValidate &&
            (Outs.empty() || !Outs[0].ok() || Outs[0].RaceFound))
          return false;
        return StillInteresting(T);
      };
  return reduceImpl(Input, Expand, Judge, Opts, Stats);
}

//===----------------------------------------------------------------------===//
// JSONL trace rendering
//===----------------------------------------------------------------------===//

namespace {

void appendJsonString(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (static_cast<unsigned char>(C) < 0x20) {
      Out += ' ';
      continue;
    }
    Out += C;
  }
  Out += '"';
}

} // namespace

std::string clfuzz::renderReduceTraceJsonl(const ReduceTraceEvent &E,
                                           const std::string &Tag) {
  std::string L = "{";
  if (!Tag.empty()) {
    L += "\"job\":";
    appendJsonString(L, Tag);
    L += ",";
  }
  auto Field = [&L](const char *Key, unsigned long long V) {
    L += "\"";
    L += Key;
    L += "\":";
    L += std::to_string(V);
  };
  switch (E.K) {
  case ReduceTraceEvent::Kind::Witness:
    L += "\"event\":\"witness\",\"interesting\":";
    L += E.Interesting ? "true" : "false";
    L += ",";
    Field("lines", E.Lines);
    break;
  case ReduceTraceEvent::Kind::Round:
    L += "\"event\":\"round\",";
    Field("round", E.Round);
    L += ",";
    Field("combo", E.Combo);
    L += ",";
    Field("candidates", E.Enumerated);
    L += ",";
    Field("lines", E.Lines);
    break;
  case ReduceTraceEvent::Kind::Reject:
  case ReduceTraceEvent::Kind::Accept:
    L += E.K == ReduceTraceEvent::Kind::Accept ? "\"event\":\"accept\","
                                               : "\"event\":\"reject\",";
    Field("round", E.Round);
    L += ",";
    Field("candidate", E.Candidate);
    L += ",\"class\":";
    appendJsonString(L, E.MutationClass);
    L += ",";
    Field("combo", E.Combo);
    if (E.K == ReduceTraceEvent::Kind::Accept) {
      L += ",";
      Field("lines", E.Lines);
    }
    break;
  case ReduceTraceEvent::Kind::Finish:
    L += "\"event\":\"done\",";
    Field("rounds", E.Rounds);
    L += ",";
    Field("escalations", E.Escalations);
    L += ",";
    Field("tried", E.Tried);
    L += ",";
    Field("kept", E.Kept);
    L += ",";
    Field("skipped", E.Skipped);
    L += ",";
    Field("lines", E.Lines);
    break;
  }
  L += "}\n";
  return L;
}

ReduceTraceFn clfuzz::makeJsonlReduceTrace(std::FILE *Out, std::string Tag) {
  return [Out, Tag = std::move(Tag)](const ReduceTraceEvent &E) {
    std::string L = renderReduceTraceJsonl(E, Tag);
    std::fwrite(L.data(), 1, L.size(), Out);
  };
}
