//===- Reducer.cpp - Concurrency-aware test-case reduction -------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "oracle/Reducer.h"
#include "minicl/ASTQueries.h"
#include "minicl/Parser.h"
#include "minicl/Printer.h"
#include "minicl/Sema.h"
#include "support/StringUtil.h"

using namespace clfuzz;

namespace {

/// One candidate mutation: either delete the statement at a position,
/// replace it with a simplification, or drop an uncalled function.
struct Mutation {
  enum class Kind : uint8_t {
    DeleteStmt,
    IfToThen,
    DropElse,
    LoopToBody,
    DeleteFunction,
  };
  Kind K;
  unsigned FunctionIndex;
  std::vector<unsigned> Path; ///< child indices from the body downward
};

/// True if any function in the program calls \p F.
bool functionIsCalled(const Program &Prog, const FunctionDecl *F) {
  bool Called = false;
  for (const FunctionDecl *Caller : Prog.functions()) {
    if (!Caller->getBody())
      continue;
    forEachExpr(Caller->getBody(), [&](const Expr *E) {
      if (const auto *C = dyn_cast<CallExpr>(E))
        if (C->getCallee() == F)
          Called = true;
    });
  }
  return Called;
}

/// Resolves a path to a mutable slot (the vector element holding the
/// statement). Returns null when the path no longer resolves.
Stmt **resolvePath(FunctionDecl *F, const std::vector<unsigned> &Path) {
  if (!F->getBody())
    return nullptr;
  CompoundStmt *C = F->getBody();
  Stmt **Slot = nullptr;
  for (size_t I = 0; I != Path.size(); ++I) {
    unsigned Idx = Path[I];
    if (Idx >= C->body().size())
      return nullptr;
    Slot = &C->body()[Idx];
    if (I + 1 == Path.size())
      return Slot;
    // Descend only through nested compounds (paths are built that way).
    C = dyn_cast<CompoundStmt>(*Slot);
    if (!C)
      return nullptr;
  }
  return Slot;
}

/// Enumerates mutations over the (freshly parsed) program.
void collectMutations(const Program &Prog, std::vector<Mutation> &Out) {
  for (unsigned FI = 0; FI != Prog.functions().size(); ++FI) {
    const FunctionDecl *F = Prog.functions()[FI];
    if (!F->isKernel() && !functionIsCalled(Prog, F))
      Out.push_back({Mutation::Kind::DeleteFunction, FI, {}});
    if (!F->getBody())
      continue;
    std::function<void(const CompoundStmt *, std::vector<unsigned>)>
        Walk = [&](const CompoundStmt *C, std::vector<unsigned> Path) {
          for (unsigned I = 0; I != C->body().size(); ++I) {
            const Stmt *S = C->body()[I];
            std::vector<unsigned> Here = Path;
            Here.push_back(I);
            // Returns are structural (non-void functions need them).
            if (!isa<ReturnStmt>(S))
              Out.push_back(
                  {Mutation::Kind::DeleteStmt, FI, Here});
            if (const auto *If = dyn_cast<IfStmt>(S)) {
              Out.push_back({Mutation::Kind::IfToThen, FI, Here});
              if (If->getElse())
                Out.push_back({Mutation::Kind::DropElse, FI, Here});
            }
            if (isa<ForStmt, WhileStmt, DoStmt>(S))
              Out.push_back({Mutation::Kind::LoopToBody, FI, Here});
            if (const auto *CC = dyn_cast<CompoundStmt>(S))
              Walk(CC, Here);
          }
        };
    Walk(F->getBody(), {});
  }
}

/// Applies \p M to a freshly parsed copy; returns the new source, or
/// an empty string when the mutation is inapplicable or yields an
/// invalid program.
std::string applyMutation(const std::string &Source, const Mutation &M) {
  ASTContext Ctx;
  DiagEngine Diags;
  if (!parseProgram(Source, Ctx, Diags))
    return {};
  if (M.FunctionIndex >= Ctx.program().functions().size())
    return {};
  FunctionDecl *F = Ctx.program().functions()[M.FunctionIndex];

  if (M.K == Mutation::Kind::DeleteFunction) {
    if (F->isKernel() || functionIsCalled(Ctx.program(), F))
      return {};
    if (!Ctx.program().removeFunction(F))
      return {};
    DiagEngine Post;
    if (!checkProgram(Ctx, Post))
      return {};
    return printProgram(Ctx.program(), Ctx.types());
  }

  Stmt **Slot = resolvePath(F, M.Path);
  if (!Slot)
    return {};

  switch (M.K) {
  case Mutation::Kind::DeleteStmt:
    *Slot = Ctx.makeStmt<NullStmt>();
    break;
  case Mutation::Kind::IfToThen: {
    auto *If = dyn_cast<IfStmt>(*Slot);
    if (!If)
      return {};
    *Slot = If->getThen();
    break;
  }
  case Mutation::Kind::DropElse: {
    auto *If = dyn_cast<IfStmt>(*Slot);
    if (!If || !If->getElse())
      return {};
    If->setElse(nullptr);
    break;
  }
  case Mutation::Kind::LoopToBody: {
    if (auto *For = dyn_cast<ForStmt>(*Slot)) {
      std::vector<Stmt *> Seq;
      if (For->getInit())
        Seq.push_back(For->getInit());
      Seq.push_back(For->getBody());
      *Slot = Ctx.makeStmt<CompoundStmt>(std::move(Seq));
    } else if (auto *W = dyn_cast<WhileStmt>(*Slot)) {
      *Slot = W->getBody();
    } else if (auto *D = dyn_cast<DoStmt>(*Slot)) {
      *Slot = D->getBody();
    } else {
      return {};
    }
    break;
  }
  }

  DiagEngine Post;
  if (!checkProgram(Ctx, Post))
    return {};
  return printProgram(Ctx.program(), Ctx.types());
}

} // namespace

TestCase clfuzz::reduceTest(
    const TestCase &Input,
    const std::function<bool(const TestCase &)> &StillInteresting,
    const ReducerOptions &Opts, ReduceStats *Stats) {
  TestCase Best = Input;
  ReduceStats Local;
  // Normalise the source through the printer so line counts compare
  // like with like.
  {
    ASTContext Ctx;
    DiagEngine Diags;
    if (parseProgram(Best.Source, Ctx, Diags))
      Best.Source = printProgram(Ctx.program(), Ctx.types());
  }
  Local.InitialLines = countCodeLines(Best.Source);

  RunSettings Validate = Opts.Run;
  Validate.DetectRaces = true;

  ExecutionEngine Engine(Opts.Exec);
  // Serial engines evaluate one candidate at a time (the historical
  // early-exit loop); parallel engines speculate a chunk ahead and
  // keep the first-in-order success, which replays the serial
  // acceptance sequence exactly because every evaluation is a pure
  // function of (Best.Source, mutation).
  const size_t Chunk =
      Engine.threadCount() == 1 ? 1 : Engine.threadCount() * size_t(2);

  /// One speculative evaluation result.
  struct CandidateResult {
    bool Counted = false; ///< non-empty, actually-different candidate
    bool Good = false;    ///< validated and still interesting
    std::string Source;
  };

  bool Progress = true;
  while (Progress && Local.CandidatesTried < Opts.MaxCandidates) {
    Progress = false;

    ASTContext Ctx;
    DiagEngine Diags;
    if (!parseProgram(Best.Source, Ctx, Diags))
      break;
    std::vector<Mutation> Mutations;
    collectMutations(Ctx.program(), Mutations);

    bool Budget = true;
    for (size_t Start = 0; Start < Mutations.size() && Budget && !Progress;
         Start += Chunk) {
      size_t N = std::min(Chunk, Mutations.size() - Start);
      std::vector<CandidateResult> Results(N);
      Engine.forEachIndex(N, [&](size_t I) {
        CandidateResult &R = Results[I];
        R.Source = applyMutation(Best.Source, Mutations[Start + I]);
        if (R.Source.empty() || R.Source == Best.Source)
          return;
        R.Counted = true;

        TestCase Candidate = Best;
        Candidate.Source = R.Source;

        // Concurrency-aware validation: the candidate must stay a
        // clean, race-free, divergence-free deterministic kernel.
        RunOutcome Ref = runTestOnReference(Candidate,
                                            /*Optimize=*/false, Validate);
        if (!Ref.ok() || Ref.RaceFound)
          return;
        if (!StillInteresting(Candidate))
          return;
        R.Good = true;
      });

      // Replay the chunk in enumeration order with serial semantics;
      // speculative work past the first acceptance (or past the
      // candidate budget) is discarded unobserved.
      for (size_t I = 0; I != N; ++I) {
        if (Local.CandidatesTried >= Opts.MaxCandidates) {
          Budget = false;
          break;
        }
        if (!Results[I].Counted)
          continue;
        ++Local.CandidatesTried;
        if (!Results[I].Good)
          continue;
        Best.Source = std::move(Results[I].Source);
        ++Local.CandidatesKept;
        Progress = true;
        break; // re-enumerate over the smaller program
      }
    }
  }

  Local.FinalLines = countCodeLines(Best.Source);
  if (Stats)
    *Stats = Local;
  return Best;
}
