//===- Oracle.h - Differential and metamorphic test oracles -----*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's two oracles:
///
///  * *random differential testing* (§3.2/§7.3): a configuration
///    produces a wrong code result for a kernel if, among all results
///    computed for the kernel, there is a majority of at least 3 among
///    the non-{bf,c,to} results, and the configuration's non-{bf,c,to}
///    result disagrees with it;
///
///  * *EMI voting* (§7.4): a base program induces a wrong code result
///    for a configuration if two of its variants terminate with
///    different values; bad bases (no variant terminates), induced
///    bf/c/to and stability are classified per the paper.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_ORACLE_ORACLE_H
#define CLFUZZ_ORACLE_ORACLE_H

#include "device/Driver.h"

#include <map>
#include <optional>
#include <vector>

namespace clfuzz {

/// Verdict for one (test, configuration, opt) result after voting.
enum class Verdict : uint8_t {
  Wrong,        ///< w: disagreed with the majority
  BuildFailure, ///< bf
  Crash,        ///< c
  Timeout,      ///< to
  Pass,         ///< check-mark in Table 4
  NoMajority,   ///< result computed, but no majority exists
};

const char *verdictName(Verdict V);

/// Finds the majority output among Ok outcomes. Requires at least
/// \p MinMajority agreeing results (the paper uses 3).
std::optional<uint64_t>
majorityOutput(const std::vector<RunOutcome> &Outcomes,
               unsigned MinMajority = 3);

/// Classifies every outcome against the majority of the whole set.
std::vector<Verdict>
classifyAgainstMajority(const std::vector<RunOutcome> &Outcomes,
                        unsigned MinMajority = 3);

/// One Table 4 cell: counts per verdict plus the wrong-code
/// percentage w% = w / (w + pass) (§7.3).
struct OutcomeCounts {
  unsigned W = 0;
  unsigned BF = 0;
  unsigned C = 0;
  unsigned TO = 0;
  unsigned Pass = 0;

  void add(Verdict V) {
    switch (V) {
    case Verdict::Wrong:
      ++W;
      break;
    case Verdict::BuildFailure:
      ++BF;
      break;
    case Verdict::Crash:
      ++C;
      break;
    case Verdict::Timeout:
      ++TO;
      break;
    case Verdict::Pass:
    case Verdict::NoMajority:
      ++Pass;
      break;
    }
  }

  unsigned total() const { return W + BF + C + TO + Pass; }
  double wrongPct() const {
    unsigned Computed = W + Pass;
    return Computed == 0 ? 0.0 : 100.0 * W / Computed;
  }
  /// Fraction of failing results (bf, c, to or w) used by the §7.1
  /// reliability threshold.
  double failureFraction() const {
    unsigned T = total();
    return T == 0 ? 0.0 : static_cast<double>(W + BF + C + TO) / T;
  }
};

/// Result of EMI-variant voting for one (base, configuration, opt):
/// the paper's Table 5 rows.
struct EmiBaseVerdict {
  bool BadBase = false;  ///< no variant terminated with a value
  bool Wrong = false;    ///< two variants computed different values
  bool InducedBF = false;
  bool InducedCrash = false;
  bool InducedTimeout = false;
  bool Stable = false;   ///< all variants terminated, uniform value
};

/// Classifies the outcomes of all variants of one base program.
EmiBaseVerdict classifyEmiVariants(const std::vector<RunOutcome> &Vs);

} // namespace clfuzz

#endif // CLFUZZ_ORACLE_ORACLE_H
