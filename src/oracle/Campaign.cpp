//===- Campaign.cpp - Testing campaign drivers -------------------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// All three campaign drivers submit their (kernel, configuration, opt)
// cells to the ExecutionEngine instead of looping inline. Batches are
// aggregated strictly by submission index, so a campaign's tables are
// bit-identical for any worker count; Settings.Exec.Threads == 1
// reproduces the historical serial path exactly.
//
//===----------------------------------------------------------------------===//

#include "oracle/Campaign.h"
#include "support/Rng.h"

#include <algorithm>

using namespace clfuzz;

namespace {

/// Generates the campaign's test set for one mode, optionally
/// pre-filtering on configuration 1+ as §7.3 prescribes. Candidate
/// generation and the prefilter runs execute as engine jobs in waves;
/// acceptance scans the wave in seed order, so the chosen set matches
/// a serial scan of the same seed sequence for any thread count.
std::vector<TestCase>
generateTestSet(GenMode Mode, const CampaignSettings &Settings,
                const DeviceConfig *Config1, ExecutionEngine &Engine) {
  std::vector<TestCase> Tests;
  uint64_t Seed = Settings.SeedBase +
                  static_cast<uint64_t>(Mode) * 1000003ULL;
  unsigned Attempts = 0;
  const unsigned MaxAttempts = Settings.KernelsPerMode * 4;
  const bool Filter = Settings.PrefilterOnConfig1 && Config1;

  while (Tests.size() < Settings.KernelsPerMode &&
         Attempts < MaxAttempts) {
    unsigned Needed =
        Settings.KernelsPerMode - static_cast<unsigned>(Tests.size());
    unsigned Wave = std::min(MaxAttempts - Attempts,
                             std::max(Needed, Engine.threadCount()));

    std::vector<TestCase> Candidates(Wave);
    std::vector<uint8_t> Accepted(Wave, 1);
    Engine.forEachIndex(Wave, [&](size_t I) {
      GenOptions GO = Settings.BaseGen;
      GO.Mode = Mode;
      GO.Seed = Seed + I;
      Candidates[I] = TestCase::fromGenerated(generateKernel(GO));
      if (Filter) {
        RunOutcome O = runExecJob(ExecJob::onConfig(
            Candidates[I], *Config1, /*Opt=*/true, Settings.Run));
        if (O.Status == RunStatus::BuildFailure ||
            O.Status == RunStatus::Timeout)
          Accepted[I] = 0;
      }
    });

    for (unsigned I = 0;
         I != Wave && Tests.size() < Settings.KernelsPerMode; ++I) {
      ++Attempts;
      if (Accepted[I])
        Tests.push_back(std::move(Candidates[I]));
    }
    Seed += Wave;
  }
  return Tests;
}

/// Submits every (test, config, opt) cell of one mode and returns the
/// outcomes, indexed [test * cells + cell]. Tests are batched in
/// groups sized to keep every worker busy, and \p OnTestsDone (tests
/// finished so far in this mode) fires on the calling thread between
/// groups, so a Progress consumer sees a live campaign rather than one
/// jump at the end of the mode. With a serial engine the group size is
/// one test — the historical per-test progress cadence.
std::vector<RunOutcome>
runModeBatch(const std::vector<TestCase> &Tests,
             const std::vector<DeviceConfig> &Configs,
             const RunSettings &Run, ExecutionEngine &Engine,
             const std::function<void(unsigned)> &OnTestsDone) {
  const size_t CellsPerTest = Configs.size() * 2;
  std::vector<RunOutcome> All;
  All.reserve(Tests.size() * CellsPerTest);

  const size_t GroupTests =
      Engine.threadCount() == 1
          ? 1
          : std::max<size_t>(1, Engine.threadCount() * 8 /
                                    std::max<size_t>(CellsPerTest, 1));
  for (size_t Start = 0; Start < Tests.size(); Start += GroupTests) {
    size_t N = std::min(GroupTests, Tests.size() - Start);
    std::vector<ExecJob> Jobs;
    Jobs.reserve(N * CellsPerTest);
    for (size_t TI = Start; TI != Start + N; ++TI)
      for (const DeviceConfig &C : Configs)
        for (bool Opt : {false, true})
          Jobs.push_back(ExecJob::onConfig(Tests[TI], C, Opt, Run));
    std::vector<RunOutcome> Group = Engine.runBatch(Jobs);
    All.insert(All.end(), std::make_move_iterator(Group.begin()),
               std::make_move_iterator(Group.end()));
    if (OnTestsDone)
      OnTestsDone(static_cast<unsigned>(Start + N));
  }
  return All;
}

} // namespace

std::vector<ModeTable> clfuzz::runDifferentialCampaign(
    const std::vector<DeviceConfig> &Configs,
    const std::vector<GenMode> &Modes, const CampaignSettings &Settings) {
  const DeviceConfig *Config1 = nullptr;
  for (const DeviceConfig &C : Configs)
    if (C.Id == 1)
      Config1 = &C;

  ExecutionEngine Engine(Settings.Exec);

  unsigned TotalTests =
      static_cast<unsigned>(Modes.size()) * Settings.KernelsPerMode;
  unsigned Done = 0;
  const size_t CellsPerTest = Configs.size() * 2;

  std::vector<ModeTable> Tables;
  for (GenMode Mode : Modes) {
    ModeTable Table;
    Table.Mode = Mode;
    std::vector<TestCase> Tests =
        generateTestSet(Mode, Settings, Config1, Engine);
    Table.NumTests = static_cast<unsigned>(Tests.size());

    std::vector<RunOutcome> Batch = runModeBatch(
        Tests, Configs, Settings.Run, Engine, [&](unsigned InMode) {
          if (Settings.Progress)
            Settings.Progress(Done + InMode, TotalTests);
        });

    // Vote per test over the whole result set (the paper votes "among
    // all the results computed for the kernel"), in submission order.
    for (size_t TI = 0; TI != Tests.size(); ++TI) {
      std::vector<RunOutcome> Outcomes(
          Batch.begin() + TI * CellsPerTest,
          Batch.begin() + (TI + 1) * CellsPerTest);
      std::vector<Verdict> Verdicts = classifyAgainstMajority(Outcomes);
      size_t VI = 0;
      for (const DeviceConfig &C : Configs)
        for (bool Opt : {false, true})
          Table.Cells[ConfigKey{C.Id, Opt}].add(Verdicts[VI++]);
    }
    Done += static_cast<unsigned>(Tests.size());
    Tables.push_back(std::move(Table));
  }
  return Tables;
}

std::vector<ReliabilityRow>
clfuzz::classifyConfigurations(const std::vector<DeviceConfig> &Configs,
                               const CampaignSettings &Settings,
                               double Threshold) {
  static const GenMode AllModes[] = {
      GenMode::Basic,         GenMode::Vector,
      GenMode::Barrier,       GenMode::AtomicSection,
      GenMode::AtomicReduction, GenMode::All};

  CampaignSettings S = Settings;
  S.PrefilterOnConfig1 = false; // the initial set is unfiltered (§7.1)

  ExecutionEngine Engine(S.Exec);

  std::map<int, OutcomeCounts> PerConfig;
  unsigned TotalTests = 6 * S.KernelsPerMode;
  unsigned Done = 0;
  const size_t CellsPerTest = Configs.size() * 2;
  for (GenMode Mode : AllModes) {
    std::vector<TestCase> Tests =
        generateTestSet(Mode, S, nullptr, Engine);
    std::vector<RunOutcome> Batch =
        runModeBatch(Tests, Configs, S.Run, Engine, [&](unsigned InMode) {
          if (S.Progress)
            S.Progress(Done + InMode, TotalTests);
        });
    for (size_t TI = 0; TI != Tests.size(); ++TI) {
      std::vector<RunOutcome> Outcomes(
          Batch.begin() + TI * CellsPerTest,
          Batch.begin() + (TI + 1) * CellsPerTest);
      std::vector<Verdict> Verdicts = classifyAgainstMajority(Outcomes);
      size_t VI = 0;
      for (const DeviceConfig &C : Configs)
        for (bool Opt : {false, true})
          PerConfig[C.Id].add(Verdicts[VI++]);
    }
    Done += static_cast<unsigned>(Tests.size());
  }

  std::vector<ReliabilityRow> Rows;
  for (const DeviceConfig &C : Configs) {
    ReliabilityRow Row;
    Row.ConfigId = C.Id;
    Row.Counts = PerConfig[C.Id];
    Row.AboveThreshold = Row.Counts.failureFraction() <= Threshold;
    Rows.push_back(Row);
  }
  return Rows;
}

std::vector<EmiCampaignColumn>
clfuzz::runEmiCampaign(const std::vector<DeviceConfig> &Configs,
                       const EmiCampaignSettings &Settings,
                       unsigned &UsableBases) {
  const CampaignSettings &CS = Settings.Base;
  ExecutionEngine Engine(CS.Exec);

  // --- collect usable base programs (§7.4). Each candidate needs two
  // reference runs (normal and dead-array-inverted); candidates are
  // evaluated in waves and accepted in seed order, so the base set is
  // thread-count-invariant. The per-candidate block-count draw comes
  // from Rng::forkForJob so no wave job shares random state. Note this
  // reseeds base sampling relative to the pre-engine code (which
  // advanced one sequential stream per attempt): the same SeedBase
  // selects a different base set than before this refactor, at every
  // thread count — the invariance guarantee is across thread counts,
  // not across that code change.
  std::vector<GenOptions> Bases;
  uint64_t Seed = CS.SeedBase + 777;
  unsigned Attempts = 0;
  const unsigned MaxAttempts = Settings.NumBases * 8;
  const Rng BlockCount(CS.SeedBase ^ 0xb10cULL);

  while (Bases.size() < Settings.NumBases && Attempts < MaxAttempts) {
    unsigned Needed =
        Settings.NumBases - static_cast<unsigned>(Bases.size());
    unsigned Wave = std::min(MaxAttempts - Attempts,
                             std::max(Needed, Engine.threadCount()));

    std::vector<GenOptions> Candidates(Wave);
    std::vector<uint8_t> Usable(Wave, 0);
    Engine.forEachIndex(Wave, [&](size_t I) {
      GenOptions GO = CS.BaseGen;
      GO.Mode = GenMode::All;
      GO.Seed = Seed + I;
      Rng JobRng = BlockCount.forkForJob(Attempts + I);
      GO.NumEmiBlocks = static_cast<unsigned>(JobRng.range(
          Settings.MinEmiBlocks, Settings.MaxEmiBlocks));
      Candidates[I] = GO;
      TestCase T = TestCase::fromGenerated(generateKernel(GO));

      // The base must compute a value on the reference.
      RunOutcome Normal =
          runExecJob(ExecJob::onReference(T, /*Opt=*/true, CS.Run));
      if (!Normal.ok())
        return;
      // Inverting the dead array must change the result: otherwise
      // every EMI block sits in code that is already dead and variants
      // cannot exercise anything (§7.4 discards such candidates).
      RunSettings Inverted = CS.Run;
      Inverted.InvertDead = true;
      RunOutcome Live =
          runExecJob(ExecJob::onReference(T, /*Opt=*/true, Inverted));
      if (Live.ok() && Live.OutputHash == Normal.OutputHash)
        return;
      Usable[I] = 1;
    });

    for (unsigned I = 0;
         I != Wave && Bases.size() < Settings.NumBases; ++I) {
      ++Attempts;
      if (Usable[I])
        Bases.push_back(Candidates[I]);
    }
    Seed += Wave;
  }
  UsableBases = static_cast<unsigned>(Bases.size());

  // --- per-base variant sweep
  std::map<ConfigKey, EmiCampaignColumn> Columns;
  for (const DeviceConfig &C : Configs)
    for (bool Opt : {false, true}) {
      ConfigKey K{C.Id, Opt};
      Columns[K].Key = K;
    }

  unsigned Done = 0;
  for (const GenOptions &BaseGO : Bases) {
    std::vector<PruneOptions> Sweep = paperPruneSweep(BaseGO.Seed * 41);

    // Variant construction (regenerate + prune) is pure per variant
    // and CPU-heavy, so it runs through the engine too.
    std::vector<TestCase> Variants(Sweep.size());
    Engine.forEachIndex(Sweep.size(), [&](size_t I) {
      Variants[I] = makeEmiVariant(BaseGO, Sweep[I]);
    });

    // One batch for the base's whole (config, opt, variant) cube,
    // indexed [cell * variants + variant].
    std::vector<ExecJob> Jobs;
    Jobs.reserve(Configs.size() * 2 * Variants.size());
    for (const DeviceConfig &C : Configs)
      for (bool Opt : {false, true})
        for (const TestCase &V : Variants)
          Jobs.push_back(ExecJob::onConfig(V, C, Opt, CS.Run));
    std::vector<RunOutcome> Batch = Engine.runBatch(Jobs);

    size_t Cell = 0;
    for (const DeviceConfig &C : Configs) {
      for (bool Opt : {false, true}) {
        std::vector<RunOutcome> Outcomes(
            Batch.begin() + Cell * Variants.size(),
            Batch.begin() + (Cell + 1) * Variants.size());
        ++Cell;
        EmiBaseVerdict Verdict = classifyEmiVariants(Outcomes);
        EmiCampaignColumn &Col = Columns[ConfigKey{C.Id, Opt}];
        Col.BaseFails += Verdict.BadBase;
        Col.Wrong += Verdict.Wrong;
        Col.InducedBF += Verdict.InducedBF && !Verdict.BadBase;
        Col.InducedCrash += Verdict.InducedCrash && !Verdict.BadBase;
        Col.InducedTimeout += Verdict.InducedTimeout && !Verdict.BadBase;
        Col.Stable += Verdict.Stable;
      }
    }
    ++Done;
    if (CS.Progress)
      CS.Progress(Done, static_cast<unsigned>(Bases.size()));
  }

  std::vector<EmiCampaignColumn> Result;
  for (auto &[K, Col] : Columns)
    Result.push_back(Col);
  return Result;
}
