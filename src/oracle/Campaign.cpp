//===- Campaign.cpp - Testing campaign drivers -------------------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "oracle/Campaign.h"
#include "support/Rng.h"

using namespace clfuzz;

namespace {

/// Generates the campaign's test set for one mode, optionally
/// pre-filtering on configuration 1+ as §7.3 prescribes.
std::vector<TestCase>
generateTestSet(GenMode Mode, const CampaignSettings &Settings,
                const DeviceConfig *Config1) {
  std::vector<TestCase> Tests;
  uint64_t Seed = Settings.SeedBase +
                  static_cast<uint64_t>(Mode) * 1000003ULL;
  unsigned Attempts = 0;
  while (Tests.size() < Settings.KernelsPerMode &&
         Attempts < Settings.KernelsPerMode * 4) {
    ++Attempts;
    GenOptions GO = Settings.BaseGen;
    GO.Mode = Mode;
    GO.Seed = Seed++;
    TestCase T = TestCase::fromGenerated(generateKernel(GO));
    if (Settings.PrefilterOnConfig1 && Config1) {
      RunOutcome O = runTestOnConfig(T, *Config1, /*OptEnabled=*/true,
                                     Settings.Run);
      if (O.Status == RunStatus::BuildFailure ||
          O.Status == RunStatus::Timeout)
        continue;
    }
    Tests.push_back(std::move(T));
  }
  return Tests;
}

} // namespace

std::vector<ModeTable> clfuzz::runDifferentialCampaign(
    const std::vector<DeviceConfig> &Configs,
    const std::vector<GenMode> &Modes, const CampaignSettings &Settings) {
  const DeviceConfig *Config1 = nullptr;
  for (const DeviceConfig &C : Configs)
    if (C.Id == 1)
      Config1 = &C;

  unsigned TotalTests =
      static_cast<unsigned>(Modes.size()) * Settings.KernelsPerMode;
  unsigned Done = 0;

  std::vector<ModeTable> Tables;
  for (GenMode Mode : Modes) {
    ModeTable Table;
    Table.Mode = Mode;
    std::vector<TestCase> Tests =
        generateTestSet(Mode, Settings, Config1);
    Table.NumTests = static_cast<unsigned>(Tests.size());

    for (const TestCase &T : Tests) {
      // Run the kernel on every (config, opt) pair, then vote over the
      // whole result set (the paper votes "among all the results
      // computed for the kernel").
      std::vector<RunOutcome> Outcomes;
      std::vector<ConfigKey> Keys;
      for (const DeviceConfig &C : Configs) {
        for (bool Opt : {false, true}) {
          Outcomes.push_back(runTestOnConfig(T, C, Opt, Settings.Run));
          Keys.push_back(ConfigKey{C.Id, Opt});
        }
      }
      std::vector<Verdict> Verdicts = classifyAgainstMajority(Outcomes);
      for (size_t I = 0; I != Keys.size(); ++I)
        Table.Cells[Keys[I]].add(Verdicts[I]);
      ++Done;
      if (Settings.Progress)
        Settings.Progress(Done, TotalTests);
    }
    Tables.push_back(std::move(Table));
  }
  return Tables;
}

std::vector<ReliabilityRow>
clfuzz::classifyConfigurations(const std::vector<DeviceConfig> &Configs,
                               const CampaignSettings &Settings,
                               double Threshold) {
  static const GenMode AllModes[] = {
      GenMode::Basic,         GenMode::Vector,
      GenMode::Barrier,       GenMode::AtomicSection,
      GenMode::AtomicReduction, GenMode::All};

  CampaignSettings S = Settings;
  S.PrefilterOnConfig1 = false; // the initial set is unfiltered (§7.1)

  std::map<int, OutcomeCounts> PerConfig;
  unsigned TotalTests = 6 * S.KernelsPerMode;
  unsigned Done = 0;
  for (GenMode Mode : AllModes) {
    std::vector<TestCase> Tests = generateTestSet(Mode, S, nullptr);
    for (const TestCase &T : Tests) {
      std::vector<RunOutcome> Outcomes;
      std::vector<int> Ids;
      for (const DeviceConfig &C : Configs) {
        for (bool Opt : {false, true}) {
          Outcomes.push_back(runTestOnConfig(T, C, Opt, S.Run));
          Ids.push_back(C.Id);
        }
      }
      std::vector<Verdict> Verdicts = classifyAgainstMajority(Outcomes);
      for (size_t I = 0; I != Ids.size(); ++I)
        PerConfig[Ids[I]].add(Verdicts[I]);
      ++Done;
      if (S.Progress)
        S.Progress(Done, TotalTests);
    }
  }

  std::vector<ReliabilityRow> Rows;
  for (const DeviceConfig &C : Configs) {
    ReliabilityRow Row;
    Row.ConfigId = C.Id;
    Row.Counts = PerConfig[C.Id];
    Row.AboveThreshold = Row.Counts.failureFraction() <= Threshold;
    Rows.push_back(Row);
  }
  return Rows;
}

std::vector<EmiCampaignColumn>
clfuzz::runEmiCampaign(const std::vector<DeviceConfig> &Configs,
                       const EmiCampaignSettings &Settings,
                       unsigned &UsableBases) {
  const CampaignSettings &CS = Settings.Base;

  // --- collect usable base programs (§7.4)
  std::vector<GenOptions> Bases;
  uint64_t Seed = CS.SeedBase + 777;
  unsigned Attempts = 0;
  Rng BlockCount(CS.SeedBase ^ 0xb10cULL);
  while (Bases.size() < Settings.NumBases &&
         Attempts < Settings.NumBases * 8) {
    ++Attempts;
    GenOptions GO = CS.BaseGen;
    GO.Mode = GenMode::All;
    GO.Seed = Seed++;
    GO.NumEmiBlocks = static_cast<unsigned>(BlockCount.range(
        Settings.MinEmiBlocks, Settings.MaxEmiBlocks));
    TestCase T = TestCase::fromGenerated(generateKernel(GO));

    // The base must compute a value on the reference.
    RunOutcome Normal = runTestOnReference(T, /*Optimize=*/true, CS.Run);
    if (!Normal.ok())
      continue;
    // Inverting the dead array must change the result: otherwise every
    // EMI block sits in code that is already dead and variants cannot
    // exercise anything (§7.4 discards such candidates).
    RunSettings Inverted = CS.Run;
    Inverted.InvertDead = true;
    RunOutcome Live = runTestOnReference(T, true, Inverted);
    if (Live.ok() && Live.OutputHash == Normal.OutputHash)
      continue;
    Bases.push_back(GO);
  }
  UsableBases = static_cast<unsigned>(Bases.size());

  // --- per-base variant sweep
  std::map<ConfigKey, EmiCampaignColumn> Columns;
  for (const DeviceConfig &C : Configs)
    for (bool Opt : {false, true}) {
      ConfigKey K{C.Id, Opt};
      Columns[K].Key = K;
    }

  unsigned Done = 0;
  for (const GenOptions &BaseGO : Bases) {
    std::vector<PruneOptions> Sweep = paperPruneSweep(BaseGO.Seed * 41);
    std::vector<TestCase> Variants;
    Variants.reserve(Sweep.size());
    for (const PruneOptions &P : Sweep)
      Variants.push_back(makeEmiVariant(BaseGO, P));

    for (const DeviceConfig &C : Configs) {
      for (bool Opt : {false, true}) {
        std::vector<RunOutcome> Outcomes;
        Outcomes.reserve(Variants.size());
        for (const TestCase &V : Variants)
          Outcomes.push_back(runTestOnConfig(V, C, Opt, CS.Run));
        EmiBaseVerdict Verdict = classifyEmiVariants(Outcomes);
        EmiCampaignColumn &Col = Columns[ConfigKey{C.Id, Opt}];
        Col.BaseFails += Verdict.BadBase;
        Col.Wrong += Verdict.Wrong;
        Col.InducedBF += Verdict.InducedBF && !Verdict.BadBase;
        Col.InducedCrash += Verdict.InducedCrash && !Verdict.BadBase;
        Col.InducedTimeout += Verdict.InducedTimeout && !Verdict.BadBase;
        Col.Stable += Verdict.Stable;
      }
    }
    ++Done;
    if (CS.Progress)
      CS.Progress(Done, static_cast<unsigned>(Bases.size()));
  }

  std::vector<EmiCampaignColumn> Result;
  for (auto &[K, Col] : Columns)
    Result.push_back(Col);
  return Result;
}
