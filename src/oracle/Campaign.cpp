//===- Campaign.cpp - Testing campaign drivers -------------------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
//
// The three campaign drivers are thin compositions of the streaming
// pipeline: a TestSource generates kernels in bounded shards, an
// ExecBackend (inline / thread pool / isolated worker processes) runs
// the (kernel, configuration, opt) cells, and a ResultSink votes over
// each test's outcomes as they stream past. Aggregation is keyed
// strictly by submission index, so a campaign's tables are
// bit-identical for every backend, worker count and shard size;
// Settings.Exec with one inline/thread worker reproduces the
// historical serial path exactly.
//
//===----------------------------------------------------------------------===//

#include "oracle/Campaign.h"
#include "support/Rng.h"

#include <algorithm>

using namespace clfuzz;

namespace {

/// The fixed cell order every driver expands a test into: configs in
/// registry order, optimisations off then on.
std::vector<ConfigKey> cellKeys(const std::vector<DeviceConfig> &Configs) {
  std::vector<ConfigKey> Keys;
  Keys.reserve(Configs.size() * 2);
  for (const DeviceConfig &C : Configs)
    for (bool Opt : {false, true})
      Keys.push_back(ConfigKey{C.Id, Opt});
  return Keys;
}

/// Appends one test's cell cube in cellKeys() order.
std::function<void(size_t, const TestCase &, std::vector<ExecJob> &)>
cubeExpander(const std::vector<DeviceConfig> &Configs,
             const RunSettings &Run) {
  return [&Configs, Run](size_t, const TestCase &T,
                         std::vector<ExecJob> &Jobs) {
    for (const DeviceConfig &C : Configs)
      for (bool Opt : {false, true})
        Jobs.push_back(ExecJob::onConfig(T, C, Opt, Run));
  };
}

/// Streams Table 1/4-style majority voting: per test, every cell's
/// outcome is classified against the majority of the whole set ("among
/// all the results computed for the kernel", §7.3) and tallied into
/// its (configuration, opt) cell. State is one OutcomeCounts per cell
/// — independent of the campaign's length.
class MajorityVoteSink final : public ResultSink {
public:
  explicit MajorityVoteSink(std::vector<ConfigKey> Keys)
      : Keys(std::move(Keys)) {}

  void consumeTest(size_t, const TestCase &,
                   const std::vector<RunOutcome> &Outcomes) override {
    std::vector<Verdict> Verdicts = classifyAgainstMajority(Outcomes);
    for (size_t I = 0; I != Keys.size(); ++I)
      Cells[Keys[I]].add(Verdicts[I]);
  }

  std::vector<ConfigKey> Keys;
  std::map<ConfigKey, OutcomeCounts> Cells;
};

/// Streams one EMI base's variant cube: outcomes are regrouped per
/// (configuration, opt) cell in variant order, then each cell is
/// classified with the §7.4 EMI vote once the base's variants drain.
/// State is outcomes-per-cell for one base — never the variants
/// themselves, which stream through shard by shard.
class EmiCellSink final : public ResultSink {
public:
  explicit EmiCellSink(size_t NumCells) : PerCell(NumCells) {}

  void consumeTest(size_t, const TestCase &,
                   const std::vector<RunOutcome> &Outcomes) override {
    for (size_t Cell = 0; Cell != PerCell.size(); ++Cell)
      PerCell[Cell].push_back(Outcomes[Cell]);
  }

  std::vector<std::vector<RunOutcome>> PerCell;
};

} // namespace

std::vector<ModeTable> clfuzz::runDifferentialCampaign(
    const std::vector<DeviceConfig> &Configs,
    const std::vector<GenMode> &Modes, const CampaignSettings &Settings) {
  const DeviceConfig *Config1 = nullptr;
  for (const DeviceConfig &C : Configs)
    if (C.Id == 1)
      Config1 = &C;

  std::unique_ptr<ExecBackend> Backend = makeBackend(Settings.Exec);
  const unsigned ShardSize = Settings.Exec.resolvedShardSize();

  unsigned TotalTests =
      static_cast<unsigned>(Modes.size()) * Settings.KernelsPerMode;
  unsigned Done = 0;

  std::vector<ModeTable> Tables;
  for (GenMode Mode : Modes) {
    GeneratorSource Source(Mode, Settings.BaseGen,
                           Settings.SeedBase +
                               static_cast<uint64_t>(Mode) * 1000003ULL,
                           Settings.KernelsPerMode,
                           Settings.PrefilterOnConfig1, Config1,
                           Settings.Run, *Backend);
    MajorityVoteSink Sink(cellKeys(Configs));

    PipelineStats Stats = runShardedCampaign(
        Source, *Backend, ShardSize, cubeExpander(Configs, Settings.Run),
        Sink, [&](size_t InMode) {
          if (Settings.Progress)
            Settings.Progress(Done + static_cast<unsigned>(InMode),
                              TotalTests);
        });

    ModeTable Table;
    Table.Mode = Mode;
    Table.NumTests = static_cast<unsigned>(Stats.Tests);
    Table.Cells = std::move(Sink.Cells);
    Done += static_cast<unsigned>(Stats.Tests);
    Tables.push_back(std::move(Table));
  }
  return Tables;
}

std::vector<ReliabilityRow>
clfuzz::classifyConfigurations(const std::vector<DeviceConfig> &Configs,
                               const CampaignSettings &Settings,
                               double Threshold) {
  static const GenMode AllModes[] = {
      GenMode::Basic,         GenMode::Vector,
      GenMode::Barrier,       GenMode::AtomicSection,
      GenMode::AtomicReduction, GenMode::All};

  std::unique_ptr<ExecBackend> Backend = makeBackend(Settings.Exec);
  const unsigned ShardSize = Settings.Exec.resolvedShardSize();

  std::map<int, OutcomeCounts> PerConfig;
  unsigned TotalTests = 6 * Settings.KernelsPerMode;
  unsigned Done = 0;
  for (GenMode Mode : AllModes) {
    // The initial set is unfiltered (§7.1).
    GeneratorSource Source(Mode, Settings.BaseGen,
                           Settings.SeedBase +
                               static_cast<uint64_t>(Mode) * 1000003ULL,
                           Settings.KernelsPerMode, /*Prefilter=*/false,
                           /*Config1=*/nullptr, Settings.Run, *Backend);
    MajorityVoteSink Sink(cellKeys(Configs));

    PipelineStats Stats = runShardedCampaign(
        Source, *Backend, ShardSize, cubeExpander(Configs, Settings.Run),
        Sink, [&](size_t InMode) {
          if (Settings.Progress)
            Settings.Progress(Done + static_cast<unsigned>(InMode),
                              TotalTests);
        });

    // Table 1 pools both opt levels per configuration; verdict counts
    // are additive, so summing the two cells matches voting directly
    // into a per-config pool.
    for (const auto &[Key, Counts] : Sink.Cells) {
      OutcomeCounts &Pool = PerConfig[Key.ConfigId];
      Pool.W += Counts.W;
      Pool.BF += Counts.BF;
      Pool.C += Counts.C;
      Pool.TO += Counts.TO;
      Pool.Pass += Counts.Pass;
    }
    Done += static_cast<unsigned>(Stats.Tests);
  }

  std::vector<ReliabilityRow> Rows;
  for (const DeviceConfig &C : Configs) {
    ReliabilityRow Row;
    Row.ConfigId = C.Id;
    Row.Counts = PerConfig[C.Id];
    Row.AboveThreshold = Row.Counts.failureFraction() <= Threshold;
    Rows.push_back(Row);
  }
  return Rows;
}

std::vector<EmiCampaignColumn>
clfuzz::runEmiCampaign(const std::vector<DeviceConfig> &Configs,
                       const EmiCampaignSettings &Settings,
                       unsigned &UsableBases) {
  const CampaignSettings &CS = Settings.Base;
  std::unique_ptr<ExecBackend> Backend = makeBackend(CS.Exec);
  const unsigned ShardSize = CS.Exec.resolvedShardSize();

  // --- collect usable base programs (§7.4). Each candidate needs two
  // reference runs (normal and dead-array-inverted); candidates are
  // generated in-process, their reference runs go through the backend,
  // and acceptance scans in seed order — so the base set is invariant
  // across backends, worker counts and wave sizes. The per-candidate
  // block-count draw comes from Rng::forkForJob(scan position), which
  // is baked into the candidate's GenOptions before any job is
  // submitted: the stream survives the subprocess boundary because the
  // serialized descriptor carries its result, not the generator.
  std::vector<GenOptions> Bases;
  uint64_t Seed = CS.SeedBase + 777;
  unsigned ScanPos = 0;
  const unsigned MaxAttempts = Settings.NumBases * 8;
  const Rng BlockCount(CS.SeedBase ^ 0xb10cULL);

  while (Bases.size() < Settings.NumBases && ScanPos < MaxAttempts) {
    unsigned Needed =
        Settings.NumBases - static_cast<unsigned>(Bases.size());
    unsigned Wave = std::min(MaxAttempts - ScanPos,
                             std::max(Needed, Backend->concurrency()));

    std::vector<GenOptions> Candidates(Wave);
    std::vector<TestCase> Tests(Wave);
    Backend->forEachIndex(Wave, [&](size_t I) {
      GenOptions GO = CS.BaseGen;
      GO.Mode = GenMode::All;
      GO.Seed = Seed + I;
      Rng JobRng = BlockCount.forkForJob(ScanPos + I);
      GO.NumEmiBlocks = static_cast<unsigned>(JobRng.range(
          Settings.MinEmiBlocks, Settings.MaxEmiBlocks));
      Candidates[I] = GO;
      Tests[I] = TestCase::fromGenerated(generateKernel(GO));
    });

    RunSettings Inverted = CS.Run;
    Inverted.InvertDead = true;
    std::vector<ExecJob> Jobs;
    Jobs.reserve(2 * Wave);
    for (const TestCase &T : Tests) {
      Jobs.push_back(ExecJob::onReference(T, /*Opt=*/true, CS.Run));
      Jobs.push_back(ExecJob::onReference(T, /*Opt=*/true, Inverted));
    }
    std::vector<RunOutcome> Outs = Backend->run(Jobs);

    for (unsigned I = 0;
         I != Wave && Bases.size() < Settings.NumBases; ++I) {
      ++ScanPos;
      // The base must compute a value on the reference, and inverting
      // the dead array must change the result: otherwise every EMI
      // block sits in code that is already dead and variants cannot
      // exercise anything (§7.4 discards such candidates).
      const RunOutcome &Normal = Outs[2 * I];
      const RunOutcome &Live = Outs[2 * I + 1];
      if (!Normal.ok())
        continue;
      if (Live.ok() && Live.OutputHash == Normal.OutputHash)
        continue;
      Bases.push_back(Candidates[I]);
    }
    Seed += Wave;
  }
  UsableBases = static_cast<unsigned>(Bases.size());

  // --- per-base variant sweep: the 40 prune variants stream through
  // the pipeline shard by shard, regrouped per (config, opt) cell and
  // EMI-voted when the base drains.
  std::map<ConfigKey, EmiCampaignColumn> Columns;
  for (const ConfigKey &K : cellKeys(Configs))
    Columns[K].Key = K;

  unsigned Done = 0;
  for (const GenOptions &BaseGO : Bases) {
    EmiVariantSource Source(BaseGO, *Backend);
    const std::vector<ConfigKey> Keys = cellKeys(Configs);
    EmiCellSink Sink(Keys.size());
    runShardedCampaign(Source, *Backend, ShardSize,
                       cubeExpander(Configs, CS.Run), Sink);

    for (size_t Cell = 0; Cell != Keys.size(); ++Cell) {
      EmiBaseVerdict Verdict = classifyEmiVariants(Sink.PerCell[Cell]);
      EmiCampaignColumn &Col = Columns[Keys[Cell]];
      Col.BaseFails += Verdict.BadBase;
      Col.Wrong += Verdict.Wrong;
      Col.InducedBF += Verdict.InducedBF && !Verdict.BadBase;
      Col.InducedCrash += Verdict.InducedCrash && !Verdict.BadBase;
      Col.InducedTimeout += Verdict.InducedTimeout && !Verdict.BadBase;
      Col.Stable += Verdict.Stable;
    }
    ++Done;
    if (CS.Progress)
      CS.Progress(Done, static_cast<unsigned>(Bases.size()));
  }

  std::vector<EmiCampaignColumn> Result;
  for (auto &[K, Col] : Columns)
    Result.push_back(Col);
  return Result;
}
