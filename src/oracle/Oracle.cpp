//===- Oracle.cpp - Differential and metamorphic test oracles ---------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "oracle/Oracle.h"

using namespace clfuzz;

const char *clfuzz::verdictName(Verdict V) {
  switch (V) {
  case Verdict::Wrong:
    return "w";
  case Verdict::BuildFailure:
    return "bf";
  case Verdict::Crash:
    return "c";
  case Verdict::Timeout:
    return "to";
  case Verdict::Pass:
    return "ok";
  case Verdict::NoMajority:
    return "ok?";
  }
  return "?";
}

std::optional<uint64_t>
clfuzz::majorityOutput(const std::vector<RunOutcome> &Outcomes,
                       unsigned MinMajority) {
  std::map<uint64_t, unsigned> Counts;
  for (const RunOutcome &O : Outcomes)
    if (O.ok())
      ++Counts[O.OutputHash];
  const std::pair<const uint64_t, unsigned> *Best = nullptr;
  bool Tie = false;
  for (const auto &Entry : Counts) {
    if (!Best || Entry.second > Best->second) {
      Best = &Entry;
      Tie = false;
    } else if (Entry.second == Best->second) {
      Tie = true;
    }
  }
  if (!Best || Tie || Best->second < MinMajority)
    return std::nullopt;
  return Best->first;
}

std::vector<Verdict>
clfuzz::classifyAgainstMajority(const std::vector<RunOutcome> &Outcomes,
                                unsigned MinMajority) {
  std::optional<uint64_t> Majority =
      majorityOutput(Outcomes, MinMajority);
  std::vector<Verdict> Verdicts;
  Verdicts.reserve(Outcomes.size());
  for (const RunOutcome &O : Outcomes) {
    switch (O.Status) {
    case RunStatus::BuildFailure:
      Verdicts.push_back(Verdict::BuildFailure);
      continue;
    case RunStatus::Crash:
      Verdicts.push_back(Verdict::Crash);
      continue;
    case RunStatus::Timeout:
      Verdicts.push_back(Verdict::Timeout);
      continue;
    case RunStatus::Ok:
      break;
    }
    if (!Majority)
      Verdicts.push_back(Verdict::NoMajority);
    else if (O.OutputHash == *Majority)
      Verdicts.push_back(Verdict::Pass);
    else
      Verdicts.push_back(Verdict::Wrong);
  }
  return Verdicts;
}

EmiBaseVerdict
clfuzz::classifyEmiVariants(const std::vector<RunOutcome> &Vs) {
  EmiBaseVerdict R;
  std::optional<uint64_t> FirstValue;
  bool AnyValue = false;
  bool AllValues = true;
  for (const RunOutcome &O : Vs) {
    switch (O.Status) {
    case RunStatus::BuildFailure:
      R.InducedBF = true;
      AllValues = false;
      break;
    case RunStatus::Crash:
      R.InducedCrash = true;
      AllValues = false;
      break;
    case RunStatus::Timeout:
      R.InducedTimeout = true;
      AllValues = false;
      break;
    case RunStatus::Ok:
      AnyValue = true;
      if (!FirstValue)
        FirstValue = O.OutputHash;
      else if (*FirstValue != O.OutputHash)
        R.Wrong = true;
      break;
    }
  }
  if (!AnyValue) {
    // No variant terminated with a computed value: bad base; induced
    // observations are not counted further (§7.4).
    R = EmiBaseVerdict();
    R.BadBase = true;
    return R;
  }
  R.Stable = AllValues && !R.Wrong;
  return R;
}
