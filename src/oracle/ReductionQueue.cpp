//===- ReductionQueue.cpp - Background reduction job queue -------------------===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//

#include "oracle/ReductionQueue.h"

#include <algorithm>

using namespace clfuzz;

ReductionQueue::ReductionQueue(ReducerOptions Opts, unsigned Workers,
                               bool CaptureTrace)
    : Opts(std::move(Opts)), CaptureTrace(CaptureTrace) {
  // Workers == 0 is the scheduler-driven mode: a passive store with no
  // threads, serviced by runNextPending().
  Threads.reserve(Workers);
  for (unsigned I = 0; I != Workers; ++I)
    Threads.emplace_back([this] { workerLoop(); });
}

ReductionQueue::~ReductionQueue() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Stopping = true;
  }
  CV.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void ReductionQueue::submit(ReductionJob Job) {
  {
    std::lock_guard<std::mutex> Lock(M);
    Pending.push_back(std::move(Job));
    ++Submitted;
  }
  CV.notify_one();
}

size_t ReductionQueue::submitted() const {
  std::lock_guard<std::mutex> Lock(M);
  return Submitted;
}

bool ReductionQueue::hasPending() const {
  std::lock_guard<std::mutex> Lock(M);
  return !Pending.empty();
}

bool ReductionQueue::allDone() const {
  std::lock_guard<std::mutex> Lock(M);
  return Finished == Submitted;
}

bool ReductionQueue::runNextPending() {
  ReductionJob Job;
  {
    std::lock_guard<std::mutex> Lock(M);
    if (Pending.empty())
      return false;
    Job = std::move(Pending.front());
    Pending.pop_front();
  }
  runJob(std::move(Job));
  return true;
}

void ReductionQueue::waitAll() {
  std::unique_lock<std::mutex> Lock(M);
  DoneCV.wait(Lock, [this] { return Finished == Submitted; });
}

std::vector<ReductionResult> ReductionQueue::drain() {
  std::unique_lock<std::mutex> Lock(M);
  DoneCV.wait(Lock, [this] { return Finished == Submitted; });
  std::vector<ReductionResult> Out = std::move(Results);
  Results.clear();
  std::sort(Out.begin(), Out.end(),
            [](const ReductionResult &A, const ReductionResult &B) {
              return A.OrderKey != B.OrderKey ? A.OrderKey < B.OrderKey
                                              : A.Label < B.Label;
            });
  return Out;
}

void ReductionQueue::runJob(ReductionJob Job) {
  ReductionResult R;
  R.OrderKey = Job.OrderKey;
  R.Label = Job.Label;

  // Each job reduces with its own backend (reduceTest builds one from
  // Opts.Exec) unless Opts.Backend injects a shared one — the
  // scheduler does that, and serializes jobs so the share is safe.
  ReducerOptions JobOpts = Opts;
  if (CaptureTrace)
    JobOpts.Trace = [&R, &Job](const ReduceTraceEvent &E) {
      R.Trace += renderReduceTraceJsonl(E, Job.Label);
    };
  try {
    R.Reduced = reduceTest(Job.Witness, *Job.Oracle, JobOpts, &R.Stats);
    if (Job.Triage) {
      // Bisection probes ride the job's own scheduling: same backend,
      // same dispatch priority, same run settings as the reduction's
      // candidate probes — cache- and remote-transparent by
      // construction.
      TriageOptions TO;
      TO.Exec = JobOpts.Exec;
      TO.Backend = JobOpts.Backend;
      TO.DispatchPriority = JobOpts.DispatchPriority;
      TO.Run = JobOpts.Run;
      R.Triage = triageWitness(R.Reduced, Job.Triage->Config,
                               Job.Triage->Opt, TO);
    }
  } catch (const std::exception &E) {
    // A reduction that dies (its backend failing to fork, or the
    // whole remote fleet unreachable) is one failed result, not a
    // std::terminate for the whole hunt.
    R.Reduced = std::move(Job.Witness);
    R.Error = E.what();
  } catch (...) {
    // Anything escaping a worker thread would terminate the
    // process; record it instead.
    R.Reduced = std::move(Job.Witness);
    R.Error = "unknown reduction failure";
  }

  {
    std::lock_guard<std::mutex> Lock(M);
    Results.push_back(std::move(R));
    ++Finished;
  }
  DoneCV.notify_all();
}

void ReductionQueue::workerLoop() {
  for (;;) {
    ReductionJob Job;
    {
      std::unique_lock<std::mutex> Lock(M);
      CV.wait(Lock, [this] { return Stopping || !Pending.empty(); });
      if (Pending.empty())
        return; // Stopping, nothing left to do
      Job = std::move(Pending.front());
      Pending.pop_front();
    }
    runJob(std::move(Job));
  }
}
