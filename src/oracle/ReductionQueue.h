//===- ReductionQueue.h - Background reduction job queue --------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A background job queue that shrinks wrong-code witnesses while the
/// campaign that found them keeps hunting at full speed - reduction is
/// just another scheduled workload over the shared backend machinery,
/// not a blocking epilogue. `clfuzz hunt --reduce` submits every
/// witness here and drains the queue after the campaign; each worker
/// thread runs reduceTest with its own ExecBackend (--reduce-backend),
/// so crashy witnesses can reduce under process isolation while the
/// campaign proper stays on a faster backend — and with
/// --reduce-backend=remote each background job dials its own
/// connections to the `clfuzz worker` fleet (exec/RemoteBackend.h),
/// farming candidate probes off-machine entirely. A backend failure
/// (the whole fleet unreachable, say) is contained: it surfaces as
/// that job's ReductionResult::Error, never as a dead campaign.
/// docs/reduction.md documents the full design.
///
/// Two execution modes:
///
///  * Threaded (Workers >= 1): the historical mode. A fixed pool of
///    background threads pops jobs FIFO, each reducing with its own
///    backend built from Opts.Exec.
///  * Scheduler-driven (Workers == 0): no threads are spawned; the
///    queue is a passive job store and the campaign scheduler
///    (src/sched/) pulls jobs one at a time via runNextPending() on
///    its own thread — the queue's priority lane. In this mode
///    ReducerOptions::Backend typically points at the scheduler's
///    shared backend, which is safe precisely because the scheduler
///    serializes steps.
///
/// Determinism: each job's reduction is bit-identical regardless of
/// which worker runs it or when (reduceTest's contract), and drain()
/// returns results sorted by (OrderKey, Label) - so a hunt's report is
/// byte-identical however the background work interleaves.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_ORACLE_REDUCTIONQUEUE_H
#define CLFUZZ_ORACLE_REDUCTIONQUEUE_H

#include "oracle/Reducer.h"
#include "triage/Triage.h"

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

namespace clfuzz {

/// Asks the queue to triage the reduced witness after reduction
/// succeeds (src/triage/): bisection probes ride the job's own
/// scheduling — the job's backend, priority and run settings — so
/// triage works identically threaded and scheduler-driven.
struct TriageRequest {
  DeviceConfig Config; ///< the configuration the witness misbehaves on
  bool Opt = false;    ///< the misbehaving opt level
};

/// One witness awaiting reduction.
struct ReductionJob {
  /// Primary sort key for deterministic drain order (hunt uses the
  /// witness's test index).
  uint64_t OrderKey = 0;
  /// Human-readable witness tag ("seed 102 config 12+"); secondary
  /// sort key and the trace's "job" field.
  std::string Label;
  TestCase Witness;
  std::shared_ptr<const ReductionOracle> Oracle;
  /// When set, the reduced witness is triaged in the same job
  /// (`hunt --reduce --triage`, `clfuzz triage`).
  std::optional<TriageRequest> Triage;
};

/// A finished reduction.
struct ReductionResult {
  uint64_t OrderKey = 0;
  std::string Label;
  TestCase Reduced;
  ReduceStats Stats;
  /// The triage verdict, when the job requested one and reduction
  /// succeeded.
  std::optional<TriageResult> Triage;
  /// The job's JSONL trace (only when the queue captures traces).
  std::string Trace;
  /// Non-empty when the reduction aborted (e.g. its backend failed);
  /// Reduced is then the unreduced witness. A failed background job
  /// never takes the campaign down.
  std::string Error;
};

/// Pool of reduction workers fed from a FIFO — or, with Workers == 0,
/// a passive store the campaign scheduler services.
class ReductionQueue {
public:
  /// \p Workers background threads reduce jobs with \p Opts; with
  /// Workers == 0 no threads are spawned and jobs only run when a
  /// driver calls runNextPending() (the scheduler-driven mode above).
  /// When \p CaptureTrace is set, each job's JSONL trace is buffered
  /// and returned with its result (any ReducerOptions::Trace in
  /// \p Opts is replaced).
  ReductionQueue(ReducerOptions Opts, unsigned Workers,
                 bool CaptureTrace = false);
  ~ReductionQueue();

  ReductionQueue(const ReductionQueue &) = delete;
  ReductionQueue &operator=(const ReductionQueue &) = delete;

  /// Enqueues a witness; returns immediately.
  void submit(ReductionJob Job);

  /// Number of jobs submitted so far.
  size_t submitted() const;

  /// True while at least one submitted job has not been picked up yet.
  bool hasPending() const;

  /// True once every submitted job has finished (trivially true when
  /// nothing was submitted).
  bool allDone() const;

  /// Runs the oldest pending job to completion on the calling thread;
  /// returns false if nothing was pending. The scheduler's service
  /// entry point in Workers == 0 mode; also safe (but unusual) beside
  /// worker threads — the FIFO pop is atomic either way.
  bool runNextPending();

  /// Blocks until every submitted job finished. With Workers == 0 this
  /// only returns once some thread ran the jobs via runNextPending();
  /// a solo (threaded) driver uses it as its wait-for-quiet point.
  void waitAll();

  /// Blocks until every submitted job finished; returns all results
  /// accumulated since the last drain, sorted by (OrderKey, Label).
  std::vector<ReductionResult> drain();

private:
  void workerLoop();
  void runJob(ReductionJob Job);

  ReducerOptions Opts;
  bool CaptureTrace;
  std::vector<std::thread> Threads;

  mutable std::mutex M;
  std::condition_variable CV;     ///< workers: work available / stop
  std::condition_variable DoneCV; ///< drain(): all jobs finished
  std::deque<ReductionJob> Pending;
  std::vector<ReductionResult> Results;
  size_t Submitted = 0;
  size_t Finished = 0;
  bool Stopping = false;
};

} // namespace clfuzz

#endif // CLFUZZ_ORACLE_REDUCTIONQUEUE_H
