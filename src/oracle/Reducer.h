//===- Reducer.h - Backend-driven test-case reduction -----------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A delta-debugging reducer for compiler-bug witnesses - the paper's
/// §8 notes that a reducer for OpenCL "would require a
/// concurrency-aware static analysis to avoid introducing data races";
/// ours revalidates every candidate dynamically instead: a reduction
/// step is kept only if the candidate (a) still parses and
/// sema-checks, (b) still runs cleanly on the reference configuration
/// with race detection and divergence checking enabled, and (c) is
/// still interesting per the caller's oracle (typically "this
/// configuration still miscompiles it").
///
/// Reduction is a first-class pipeline citizen: every candidate probe
/// is an ExecJob scheduled on an ExecBackend, so reducing a
/// crash-or-timeout witness under ExecOptions::Backend ==
/// BackendKind::Procs runs fork-isolated exactly like campaign cells
/// do - a candidate that kills the VM kills one disposable worker and
/// is judged from its Crash outcome. Each round's speculative
/// candidates stream through the same runShardedCampaign path as
/// campaigns (a ReductionCandidateSource / ReductionAcceptSink pair),
/// with deterministic first-accepted-in-submission-order acceptance:
/// the reduction sequence, the stats and the trace are bit-identical
/// on every backend at every worker count.
///
/// Search is priority-guided: mutation classes (statement deletion,
/// if-to-then, else-branch removal, loop unwrapping, dead-function
/// removal) are ordered by expected shrinkage learned from the
/// accepted-delta history, and when single-step rounds stall the
/// reducer escalates to multi-mutation candidates (2, then 4 joint
/// steps) before giving up - the classic ddmin move that unsticks
/// mutually-dependent statements.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_ORACLE_REDUCER_H
#define CLFUZZ_ORACLE_REDUCER_H

#include "device/Driver.h"
#include "exec/ExecBackend.h"

#include <cstdio>
#include <functional>

namespace clfuzz {

/// Declarative interestingness test, the backend-schedulable
/// replacement for an opaque predicate closure: the oracle expands a
/// candidate into probe jobs (which the reducer runs on its
/// ExecBackend, fork-isolated under procs) and judges the outcomes.
/// judge() must be a pure function of the outcomes - it runs on the
/// reducer's calling thread and its verdict, not the probe execution,
/// is what the deterministic acceptance order hangs off.
class ReductionOracle {
public:
  virtual ~ReductionOracle();

  /// Appends the candidate's probe jobs. Called once per candidate on
  /// the calling thread; the jobs may execute on any worker.
  virtual void expandJobs(const TestCase &Candidate,
                          std::vector<ExecJob> &Jobs) const = 0;

  /// Classifies the probe outcomes (in expandJobs order): true = the
  /// candidate is still interesting.
  virtual bool judge(const std::vector<RunOutcome> &Outcomes) const = 0;

  /// True when the oracle's own probes already enforce the §8
  /// reference validation (clean, race-free reference run); the
  /// reducer then skips its separate validation job instead of
  /// running the reference twice per candidate.
  virtual bool selfValidates() const { return false; }
};

/// "Configuration \p Config at \p Opt still miscompiles it": the
/// candidate computes a value on both the reference and the
/// configuration, and the values disagree. The reference probe runs
/// with race detection and doubles as the §8 validation, so each
/// candidate costs exactly two jobs.
class DifferentialReductionOracle final : public ReductionOracle {
public:
  DifferentialReductionOracle(DeviceConfig Config, bool Opt,
                              RunSettings Run = RunSettings())
      : Config(std::move(Config)), Opt(Opt), Run(std::move(Run)) {}

  void expandJobs(const TestCase &Candidate,
                  std::vector<ExecJob> &Jobs) const override;
  bool judge(const std::vector<RunOutcome> &Outcomes) const override;
  bool selfValidates() const override { return true; }

private:
  DeviceConfig Config;
  bool Opt;
  RunSettings Run;
};

/// "Configuration \p Config at \p Opt still fails the same way": the
/// candidate's run still ends in \p Want (Crash, Timeout or
/// BuildFailure). Under the procs backend a candidate that kills its
/// worker is judged from the isolated Crash outcome, so crashy
/// witnesses reduce to completion without taking the reducer with
/// them.
class StatusReductionOracle final : public ReductionOracle {
public:
  StatusReductionOracle(DeviceConfig Config, bool Opt, RunStatus Want,
                        RunSettings Run = RunSettings())
      : Config(std::move(Config)), Opt(Opt), Want(Want),
        Run(std::move(Run)) {}

  void expandJobs(const TestCase &Candidate,
                  std::vector<ExecJob> &Jobs) const override;
  bool judge(const std::vector<RunOutcome> &Outcomes) const override;

private:
  DeviceConfig Config;
  bool Opt;
  RunStatus Want;
  RunSettings Run;
};

/// One observable reduction event, emitted in deterministic
/// (submission) order: trace streams are bit-identical across
/// backends, worker counts and pipelining.
struct ReduceTraceEvent {
  enum class Kind : uint8_t {
    Witness, ///< the input's own interestingness probe
    Round,   ///< a round of speculative candidates begins
    Reject,  ///< a candidate was evaluated and judged uninteresting
    Accept,  ///< a candidate was kept; the round restarts on it
    Finish,  ///< reduction ended
  };
  Kind K = Kind::Round;
  unsigned Round = 0;
  unsigned Candidate = 0;          ///< 1-based tried-candidate number
  const char *MutationClass = ""; ///< Reject/Accept: first class in combo
  unsigned Combo = 1;              ///< mutations per candidate this round
  unsigned Enumerated = 0;         ///< Round: candidate groups this round
  unsigned Lines = 0;              ///< current best's code lines
  bool Interesting = false;        ///< Witness: probe verdict
  unsigned Tried = 0, Kept = 0, Skipped = 0; ///< Finish totals
  unsigned Rounds = 0, Escalations = 0;      ///< Finish totals
};

using ReduceTraceFn = std::function<void(const ReduceTraceEvent &)>;

/// Renders one event as a JSONL object; \p Tag (when non-empty) is
/// prepended as a "job" field so multi-witness traces stay
/// attributable.
std::string renderReduceTraceJsonl(const ReduceTraceEvent &E,
                                   const std::string &Tag = {});

/// Trace sink streaming JSONL lines to \p Out.
ReduceTraceFn makeJsonlReduceTrace(std::FILE *Out, std::string Tag = {});

/// Reducer tuning.
struct ReducerOptions {
  /// Upper bound on candidate evaluations (probe-job rounds actually
  /// submitted; cache-skipped candidates are free).
  unsigned MaxCandidates = 400;
  RunSettings Run;
  /// Candidate evaluation scheduling: Exec.Backend picks the
  /// ExecBackend (inline / threads / fork-isolated procs) and
  /// Exec.Threads the worker count. With more than one worker,
  /// candidates are evaluated speculatively in chunks and the
  /// first-in-submission-order success is kept, so the reduction
  /// sequence (and the stats, and the trace) match a serial run
  /// exactly on every backend.
  ExecOptions Exec;
  /// Require every candidate to stay a clean, race-free deterministic
  /// kernel on the reference configuration (the §8 concurrency-aware
  /// validation). On by default; costs one reference run per
  /// candidate.
  bool ValidateOnReference = true;
  /// Overlap the next chunk's candidate enumeration/printing with the
  /// current chunk's backend evaluation. Never changes results - only
  /// wall-clock time (bench/reduction_throughput.cpp measures it).
  bool Pipeline = true;
  /// After this many consecutive single-mutation rounds without an
  /// acceptance, escalate to multi-mutation candidates.
  unsigned EscalateAfterStalls = 1;
  /// Largest number of mutations combined into one candidate during
  /// escalation (combo sizes double: 2, 4, ... up to this cap).
  unsigned MaxMultiMutations = 4;
  /// When set, candidate probes run on this caller-owned backend and
  /// Exec only tunes shard size; when null (the default) the reducer
  /// builds its own backend from Exec. The campaign scheduler injects
  /// its shared backend here — safe because it serializes every step
  /// it grants, so no two reductions (or a reduction and a campaign
  /// shard) ever contend for the batch state. Threaded ReductionQueue
  /// workers must leave this null: concurrent jobs sharing one
  /// backend would race.
  ExecBackend *Backend = nullptr;
  /// Dispatch priority for the candidate-probe batches (see
  /// ExecBackend::runColumnsPrioritized). The scheduler's reduction
  /// lane sets this nonzero so reduction probes enter a contended
  /// backend's in-flight window ahead of priority-0 work; outcomes —
  /// and therefore the reduction — are byte-identical at any value.
  unsigned DispatchPriority = 0;
  /// Optional deterministic trace sink.
  ReduceTraceFn Trace;
};

/// Statistics from one reduction.
struct ReduceStats {
  unsigned CandidatesTried = 0;   ///< evaluated through the backend
  unsigned CandidatesKept = 0;
  unsigned CandidatesSkipped = 0; ///< unprintable / duplicate / cached
  unsigned Rounds = 0;
  unsigned Escalations = 0;       ///< multi-mutation rounds entered
  unsigned InitialLines = 0;
  unsigned FinalLines = 0;
  /// False when the input itself failed its interestingness probe (the
  /// reduction returns the input unchanged).
  bool WitnessWasInteresting = true;
};

/// Shrinks \p Input while \p Oracle keeps judging candidates
/// interesting and the candidate remains a valid deterministic kernel
/// (see file comment). Returns the smallest interesting test found.
/// The result, the stats and the trace are bit-identical for every
/// ExecOptions::Backend and worker count.
TestCase reduceTest(const TestCase &Input, const ReductionOracle &Oracle,
                    const ReducerOptions &Opts, ReduceStats *Stats = nullptr);

/// Closure-predicate compatibility form: probe jobs carry only the
/// reference validation run; \p StillInteresting executes on the
/// calling thread and must be a pure function of the candidate. Use
/// the oracle form when the interestingness test itself should run
/// under backend isolation.
TestCase reduceTest(const TestCase &Input,
                    const std::function<bool(const TestCase &)>
                        &StillInteresting,
                    const ReducerOptions &Opts, ReduceStats *Stats = nullptr);

} // namespace clfuzz

#endif // CLFUZZ_ORACLE_REDUCER_H
