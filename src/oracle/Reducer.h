//===- Reducer.h - Concurrency-aware test-case reduction --------*- C++ -*-===//
//
// Part of the clfuzz project: a reproduction of "Many-Core Compiler
// Fuzzing" (PLDI 2015).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A delta-debugging reducer for miscompilation witnesses - the
/// paper's §8 notes that a reducer for OpenCL "would require a
/// concurrency-aware static analysis to avoid introducing data races";
/// ours revalidates every candidate dynamically instead: a reduction
/// step is kept only if the candidate (a) still parses and
/// sema-checks, (b) still runs cleanly on the reference configuration
/// with race detection and divergence checking enabled, and (c) still
/// satisfies the caller's interestingness predicate (typically "this
/// configuration still miscompiles it").
///
/// Reduction steps: statement deletion, if-to-then replacement, loop
/// body unwrapping, and else-branch removal.
///
//===----------------------------------------------------------------------===//

#ifndef CLFUZZ_ORACLE_REDUCER_H
#define CLFUZZ_ORACLE_REDUCER_H

#include "device/Driver.h"
#include "exec/ExecutionEngine.h"

#include <functional>

namespace clfuzz {

/// Reducer tuning.
struct ReducerOptions {
  /// Upper bound on candidate evaluations.
  unsigned MaxCandidates = 400;
  RunSettings Run;
  /// Candidate evaluation scheduling. With more than one worker,
  /// candidates are evaluated speculatively in chunks and the
  /// first-in-enumeration-order success is kept, so the reduction
  /// sequence (and the stats) match a serial run exactly; the
  /// StillInteresting predicate must then be thread-safe (the usual
  /// "this configuration still miscompiles it" predicate is a pure
  /// driver run, which is).
  ExecOptions Exec;
};

/// Statistics from one reduction.
struct ReduceStats {
  unsigned CandidatesTried = 0;
  unsigned CandidatesKept = 0;
  unsigned InitialLines = 0;
  unsigned FinalLines = 0;
};

/// Shrinks \p Input while \p StillInteresting holds on the candidate
/// and the candidate remains a valid deterministic kernel (see file
/// comment). Returns the smallest interesting test found.
TestCase reduceTest(const TestCase &Input,
                    const std::function<bool(const TestCase &)>
                        &StillInteresting,
                    const ReducerOptions &Opts, ReduceStats *Stats = nullptr);

} // namespace clfuzz

#endif // CLFUZZ_ORACLE_REDUCER_H
